// Command adascale-bench regenerates the paper's tables and figures on the
// synthetic substrate, and doubles as the repo's benchmark regression
// tool.
//
// Usage:
//
//	adascale-bench [-dataset vid|ytbb] [-exp all|table1,table2,...] \
//	               [-train N] [-val N] [-seed N] [-workers N] \
//	               [-faults 0,0.05,0.1,0.2] [-deadline-ms 0] \
//	               [-json report.json] [-baseline BENCH_4.json] \
//	               [-bench-time 0] [-max-time-regress 25] [-accuracy-only] \
//	               [-trace trace.txt] [-trace-wall] [-pprof localhost:6060] \
//	               [-cpuprofile cpu.out] [-memprofile mem.out]
//	adascale-bench -diff baseline.json -diff-to candidate.json [-accuracy-only]
//
// Experiments: table1, table2, table3, fig5, fig6, fig7, fig9, fig10,
// qualitative, robustness, serving, batching, chaos, cluster. The robustness sweep injects the
// -faults rates into the validation split and compares fixed-scale, naive
// AdaScale and the resilient runner (optionally deadline-constrained via
// -deadline-ms). The serving sweep loads the multi-stream server at
// increasing stream counts against latency SLOs. The chaos sweep injects
// seeded system fault plans (worker kills/stalls, node blackouts, queue
// saturation) at increasing intensity and compares the supervised serving
// layer against naive failover on recovery time, SLO damage and effective
// coverage. The cluster sweep shards 1k-100k streams across simulated node
// fleets under churn (joins, leaves, blackouts, migrations) and reports the
// capacity-planning curve: SLO damage and recovery time per fleet size,
// with zero lost frames. The batching sweep serves the identical load at
// increasing cross-stream batch caps, verifies the outputs byte-identical
// at every cap, and reports wall ns/frame with the detect-stage share
// split out. The master -seed pins the dataset and every
// derived fault/load stream (see internal/cli).
//
// -json measures every selected experiment (warmup + timed iterations, see
// internal/regress.Measure) and writes a machine-readable report: ns/op,
// allocs/op and the experiment's accuracy metrics (mAP, mean scale, ...),
// stamped with the machine context. -baseline compares the fresh report
// against a committed one and exits non-zero on a time regression beyond
// -max-time-regress percent or any regression of a guarded (map*) accuracy
// metric. -diff/-diff-to compare two existing report files without running
// anything — the mode scripts/benchdiff.sh wraps.
//
// In report mode every experiment additionally runs under the pipeline
// tracer and its ns/op is apportioned across stages by the deterministic
// virtual-time shares (schema v2, Entry.Stages), so a time regression can
// be localised to a stage; allocs/op is apportioned the same way (schema
// v3, Entry.StageAllocs) and gated at -max-alloc-regress percent (default
// 10). Comparisons refuse reports measured on
// different machines unless -accuracy-only disables the (meaningless)
// cross-machine time gate and compares only the deterministic accuracy
// metrics — the mode CI uses against the committed baseline.
// -cpuprofile/-memprofile dump pprof profiles of the benchmark run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"adascale/internal/cli"
	"adascale/internal/experiments"
	"adascale/internal/obs"
	"adascale/internal/regress"
)

// experimentRun is one named experiment: it regenerates the result and
// reports the accuracy metrics the regression gate tracks for it.
type experimentRun struct {
	name string
	run  func() (experiments.Printer, map[string]float64, error)
}

// experimentRuns enumerates every experiment in canonical order with its
// metric extraction. Metric keys with the "map" prefix are guarded by
// regress.Compare (any decrease is a regression); the rest are trajectory.
func experimentRuns(b *experiments.Bundle, rates []float64, deadlineMS float64) []experimentRun {
	ok := func(p experiments.Printer, m map[string]float64) (experiments.Printer, map[string]float64, error) {
		return p, m, nil
	}
	return []experimentRun{
		{"qualitative", func() (experiments.Printer, map[string]float64, error) {
			q := b.Qualitative(8)
			return ok(q, map[string]float64{"downscale_fraction": q.DownscaleFraction})
		}},
		{"table1", func() (experiments.Printer, map[string]float64, error) {
			t1 := b.Table1()
			ada := t1.Rows[len(t1.Rows)-1]
			return ok(t1, map[string]float64{
				"map/adascale":        ada.MAP,
				"mean_scale/adascale": ada.MeanScale,
				"runtime_ms/adascale": ada.RuntimeMS,
				"runtime_ms/ss_fixed": t1.Rows[0].RuntimeMS,
			})
		}},
		{"table2", func() (experiments.Printer, map[string]float64, error) {
			t2 := b.Table2()
			full := t2.Entries[0]
			return ok(t2, map[string]float64{
				"map/ada_full_strain":        full.Ada.MAP,
				"runtime_ms/ada_full_strain": full.Ada.RuntimeMS,
			})
		}},
		{"table3", func() (experiments.Printer, map[string]float64, error) {
			t3 := b.Table3()
			k13 := t3.Entries[1] // kernels {1,3}, the paper's default
			return ok(t3, map[string]float64{
				"map/kernels13":        k13.Ada.MAP,
				"mean_scale/kernels13": k13.Ada.MeanScale,
			})
		}},
		{"fig5", func() (experiments.Printer, map[string]float64, error) {
			f5 := b.Fig5()
			mean, n := 0.0, 0
			for ci := range f5.Categories {
				mean += f5.AP[ci][len(f5.Methods)-1] // MS/AdaScale
				n++
			}
			if n > 0 {
				mean /= float64(n)
			}
			return ok(f5, map[string]float64{"map/fig5_adascale_mean": mean})
		}},
		{"fig6", func() (experiments.Printer, map[string]float64, error) {
			f6 := b.Fig6()
			last := len(f6.Methods) - 1
			return ok(f6, map[string]float64{
				"tp_ratio/adascale": f6.TotalTP[last],
				"fp_ratio/adascale": f6.TotalFP[last],
			})
		}},
		{"fig7", func() (experiments.Printer, map[string]float64, error) {
			f7 := b.Fig7()
			m := map[string]float64{}
			for _, p := range f7.Points {
				if p.Name == "R-FCN+AdaScale" {
					m["map/rfcn_adascale"] = p.MAP
					m["fps/rfcn_adascale"] = p.FPS
				}
			}
			return ok(f7, m)
		}},
		{"fig9", func() (experiments.Printer, map[string]float64, error) {
			f9 := b.Fig9()
			m := map[string]float64{}
			for _, c := range f9.Clips {
				lo, hi := c.Scales[0], c.Scales[0]
				for _, s := range c.Scales {
					if s < lo {
						lo = s
					}
					if s > hi {
						hi = s
					}
				}
				key := strings.ReplaceAll(c.Name, " ", "_")
				m["scale_spread/"+key] = float64(hi - lo)
			}
			return ok(f9, m)
		}},
		{"fig10", func() (experiments.Printer, map[string]float64, error) {
			f10 := b.Fig10()
			return ok(f10, map[string]float64{
				"mean_scale/full_strain": f10.Entries[0].MeanScale,
			})
		}},
		{"robustness", func() (experiments.Printer, map[string]float64, error) {
			res, err := b.Robustness(rates, deadlineMS)
			if err != nil {
				return nil, nil, err
			}
			worst := res.Rows[len(res.Rows)-1]
			return ok(res, map[string]float64{
				"map/resilient_worst":        worst.Resilient.MAP,
				"map/naive_worst":            worst.Naive.MAP,
				"runtime_ms/resilient_worst": worst.Resilient.RuntimeMS,
			})
		}},
		{"serving", func() (experiments.Printer, map[string]float64, error) {
			res, err := b.Serving(experiments.DefaultServingConfig())
			if err != nil {
				return nil, nil, err
			}
			last := res.Rows[len(res.Rows)-1]
			return ok(res, map[string]float64{
				"map/serving_last":       last.MAP,
				"p99_ms/serving_last":    last.P99,
				"drop_rate/serving_last": last.DropRate,
			})
		}},
		{"batching", func() (experiments.Printer, map[string]float64, error) {
			res, err := b.Batching(experiments.DefaultBatchingConfig())
			if err != nil {
				return nil, nil, err
			}
			return ok(res, res.Metrics())
		}},
		{"chaos", func() (experiments.Printer, map[string]float64, error) {
			res, err := b.Chaos(experiments.DefaultChaosConfig())
			if err != nil {
				return nil, nil, err
			}
			worst := res.Rows[len(res.Rows)-1]
			return ok(res, map[string]float64{
				"coverage/supervised_worst":    worst.Supervised.Coverage,
				"coverage/naive_worst":         worst.Naive.Coverage,
				"recovery_ms/supervised_worst": worst.Supervised.RecoveryMS,
				"lost/supervised_worst":        float64(worst.Supervised.Lost),
			})
		}},
		{"cluster", func() (experiments.Printer, map[string]float64, error) {
			res, err := b.Cluster(experiments.DefaultClusterSweepConfig())
			if err != nil {
				return nil, nil, err
			}
			lost := 0
			for _, row := range res.Rows {
				for _, cell := range row.Cells {
					lost += cell.Lost
				}
			}
			last := res.Rows[len(res.Rows)-1]
			first, best := last.Cells[0], last.Cells[len(last.Cells)-1]
			return ok(res, map[string]float64{
				"slo_miss/cluster_worst": first.SLOMissRate,
				"slo_miss/cluster_best":  best.SLOMissRate,
				"p95_ms/cluster_best":    best.P95,
				"lost/cluster_sweep":     float64(lost),
			})
		}},
	}
}

func main() {
	var common cli.Common
	common.Register(60, 30)
	exp := flag.String("exp", "all", "comma-separated experiments or 'all'")
	faultRates := flag.String("faults", "0,0.05,0.1,0.2", "fault rates for the robustness sweep")
	deadlineMS := flag.Float64("deadline-ms", 0, "per-frame deadline for the resilient runner (0 = off)")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark report (JSON) to this path")
	baseline := flag.String("baseline", "", "compare the fresh report against this baseline report; exit non-zero on regression")
	diffBase := flag.String("diff", "", "compare-only: baseline report file (use with -diff-to; runs no benchmarks)")
	diffTo := flag.String("diff-to", "", "compare-only: candidate report file")
	benchTime := flag.Duration("bench-time", 0, "minimum timed duration per benchmark in -json/-baseline mode (0 = one iteration)")
	maxTimePct := flag.Float64("max-time-regress", 25, "allowed ns/op increase in percent before a comparison fails")
	maxAllocPct := flag.Float64("max-alloc-regress", 10, "allowed allocs/op increase in percent before a comparison fails")
	accuracyOnly := flag.Bool("accuracy-only", false, "gate only on accuracy metrics; skip the ns/op time gates (for cross-machine comparisons)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()
	common.Apply("adascale-bench")

	fail := func(err error) { cli.Fail("adascale-bench", err) }
	opts := regress.CompareOptions{MaxTimeRegressPct: *maxTimePct, MaxAllocRegressPct: *maxAllocPct, IgnoreTime: *accuracyOnly}

	// Compare-only mode: no dataset, no benchmarks — just the gate.
	if *diffBase != "" || *diffTo != "" {
		if *diffBase == "" || *diffTo == "" {
			fail(fmt.Errorf("-diff and -diff-to must be used together"))
		}
		os.Exit(runDiff(*diffBase, *diffTo, opts))
	}

	// Profiles bracket the benchmark work and are finalised explicitly
	// after the experiment loop (not deferred: the gate paths os.Exit).
	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fail(err)
		}
		stopCPU = stop
	}

	rates, err := cli.ParseFloats(*faultRates)
	if err != nil {
		fail(err)
	}

	cfg := experiments.Config{
		Dataset:       common.Dataset,
		TrainSnippets: common.Train,
		ValSnippets:   common.Val,
		Seed:          common.Seed,
	}
	b, err := experiments.Prepare(cfg)
	if err != nil {
		fail(err)
	}
	// The bundle traces through the user's -trace tracer when given; in
	// report mode without -trace, a private virtual-time tracer still runs
	// so every report carries the per-stage ns/op apportionment. In report
	// mode the tracer is reset per experiment for attribution, so a -trace
	// file written alongside -json holds the last experiment's spans only.
	b.Trace = common.Tracer()
	if b.Trace == nil && (*jsonPath != "" || *baseline != "") {
		b.Trace = obs.NewTracer()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	w := os.Stdout

	var report *regress.Report
	if *jsonPath != "" || *baseline != "" {
		report = regress.NewReport(map[string]string{
			"dataset": b.Cfg.Dataset,
			"train":   strconv.Itoa(b.Cfg.TrainSnippets),
			"val":     strconv.Itoa(b.Cfg.ValSnippets),
			"seed":    strconv.FormatInt(b.Cfg.Seed, 10),
			"exp":     *exp,
		})
	}

	for _, er := range experimentRuns(b, rates, *deadlineMS) {
		if !all && !want[er.name] {
			continue
		}
		start := time.Now()
		var p experiments.Printer
		var metrics map[string]float64
		runOnce := func() {
			var err error
			if p, metrics, err = er.run(); err != nil {
				fail(err)
			}
		}
		if report != nil {
			b.Trace.Reset()
			sample := regress.Measure(runOnce, *benchTime)
			report.Add(er.name, sample, metrics)
			report.SetStages(er.name,
				stagePerOp(sample.NsPerOp, b.Trace),
				stagePerOp(sample.AllocsPerOp, b.Trace))
		} else {
			runOnce()
		}
		p.Print(w)
		fmt.Fprintf(w, "[%s completed in %v]\n\n", er.name, time.Since(start).Round(time.Millisecond))
	}

	if err := stopCPU(); err != nil {
		fail(err)
	}
	if *memProfile != "" {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			fail(err)
		}
	}
	common.WriteTrace("adascale-bench")

	if report == nil {
		return
	}
	if len(report.Entries) == 0 {
		fail(fmt.Errorf("no experiments selected by -exp %q; nothing to report", *exp))
	}
	if *jsonPath != "" {
		if err := report.WriteFile(*jsonPath); err != nil {
			fail(err)
		}
		fmt.Fprintf(w, "benchmark report: %d entries written to %s\n", len(report.Entries), *jsonPath)
	}
	if *baseline != "" {
		base, err := regress.LoadReport(*baseline)
		if err != nil {
			fail(err)
		}
		if !opts.IgnoreTime && !base.Machine.Equal(report.Machine) {
			fail(fmt.Errorf("baseline %s measured on a different machine:\n  baseline:  %s\n  this run:  %s\nwall-clock comparison across machines is meaningless — pass -accuracy-only to gate on accuracy metrics only, or regenerate the baseline on this machine (see README)", *baseline, base.Machine, report.Machine))
		}
		regs := regress.Compare(base, report, opts)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "regression: %s\n", r)
		}
		if len(regs) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(w, "benchdiff: OK — no regressions against %s (%d entries)\n", *baseline, len(base.Entries))
	}
}

// stagePerOp apportions one benchmark's per-op total (ns/op or allocs/op)
// across pipeline stages by the tracer's virtual-time shares. The
// breakdown accumulates over the warmup and every timed iteration, but the
// shares are ratio-invariant under the deterministic pipeline, so
// stage_value = value_per_op × stage_ms / total_ms holds regardless of the
// iteration count.
func stagePerOp(perOp int64, tr *obs.Tracer) map[string]int64 {
	bd := tr.Breakdown()
	total := 0.0
	for _, ms := range bd {
		total += ms
	}
	if total <= 0 {
		return nil
	}
	out := make(map[string]int64, len(bd))
	for st, ms := range bd {
		if ms <= 0 {
			continue
		}
		out[obs.Stage(st).String()] = int64(float64(perOp) * ms / total)
	}
	return out
}

// runDiff compares two report files and returns the process exit code.
func runDiff(basePath, candPath string, opts regress.CompareOptions) int {
	base, err := regress.LoadReport(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adascale-bench: %v\n", err)
		return 2
	}
	cand, err := regress.LoadReport(candPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adascale-bench: %v\n", err)
		return 2
	}
	if !opts.IgnoreTime && !base.Machine.Equal(cand.Machine) {
		fmt.Fprintf(os.Stderr, "adascale-bench: reports measured on different machines:\n  baseline:  %s\n  candidate: %s\nwall-clock comparison across machines is meaningless — pass -accuracy-only to gate on accuracy metrics only, or regenerate the baseline on this machine (see README)\n", base.Machine, cand.Machine)
		return 2
	}
	regs := regress.Compare(base, cand, opts)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "regression: %s\n", r)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) of %s against %s\n", len(regs), candPath, basePath)
		return 1
	}
	fmt.Printf("benchdiff: OK — %d entries, no regressions (%s vs %s)\n", len(base.Entries), candPath, basePath)
	return 0
}
