// Command adascale-bench regenerates the paper's tables and figures on the
// synthetic substrate.
//
// Usage:
//
//	adascale-bench [-dataset vid|ytbb] [-exp all|table1,table2,...] \
//	               [-train N] [-val N] [-seed N] [-workers N] \
//	               [-faults 0,0.05,0.1,0.2] [-deadline-ms 0]
//
// Experiments: table1, table2, table3, fig5, fig6, fig7, fig9, fig10,
// qualitative, robustness. The robustness sweep injects the -faults rates
// into the validation split and compares fixed-scale, naive AdaScale and
// the resilient runner (optionally deadline-constrained via -deadline-ms).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"adascale/internal/experiments"
	"adascale/internal/parallel"
)

func main() {
	dataset := flag.String("dataset", "vid", "dataset: vid or ytbb")
	exp := flag.String("exp", "all", "comma-separated experiments or 'all'")
	train := flag.Int("train", 60, "training snippets")
	val := flag.Int("val", 30, "validation snippets")
	seed := flag.Int64("seed", 5, "dataset seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	faultRates := flag.String("faults", "0,0.05,0.1,0.2", "fault rates for the robustness sweep")
	deadlineMS := flag.Float64("deadline-ms", 0, "per-frame deadline for the resilient runner (0 = off)")
	flag.Parse()
	parallel.SetWorkers(*workers)

	rates, err := parseRates(*faultRates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adascale-bench:", err)
		os.Exit(1)
	}

	cfg := experiments.Config{
		Dataset:       *dataset,
		TrainSnippets: *train,
		ValSnippets:   *val,
		Seed:          *seed,
	}
	b, err := experiments.Prepare(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adascale-bench:", err)
		os.Exit(1)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	w := os.Stdout

	run := func(name string, f func()) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		f()
		fmt.Fprintf(w, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("qualitative", func() { b.Qualitative(8).Print(w) })
	run("table1", func() { b.Table1().Print(w) })
	run("table2", func() { b.Table2().Print(w) })
	run("table3", func() { b.Table3().Print(w) })
	run("fig5", func() { b.Fig5().Print(w) })
	run("fig6", func() { b.Fig6().Print(w) })
	run("fig7", func() { b.Fig7().Print(w) })
	run("fig9", func() { b.Fig9().Print(w) })
	run("fig10", func() { b.Fig10().Print(w) })
	run("robustness", func() {
		res, err := b.Robustness(rates, *deadlineMS)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adascale-bench:", err)
			os.Exit(1)
		}
		res.Print(w)
	})
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad fault-rate list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
