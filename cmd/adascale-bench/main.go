// Command adascale-bench regenerates the paper's tables and figures on the
// synthetic substrate.
//
// Usage:
//
//	adascale-bench [-dataset vid|ytbb] [-exp all|table1,table2,...] \
//	               [-train N] [-val N] [-seed N] [-workers N] \
//	               [-faults 0,0.05,0.1,0.2] [-deadline-ms 0]
//
// Experiments: table1, table2, table3, fig5, fig6, fig7, fig9, fig10,
// qualitative, robustness, serving. The robustness sweep injects the
// -faults rates into the validation split and compares fixed-scale, naive
// AdaScale and the resilient runner (optionally deadline-constrained via
// -deadline-ms). The serving sweep loads the multi-stream server at
// increasing stream counts against latency SLOs. The master -seed pins the
// dataset and every derived fault/load stream (see internal/cli).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adascale/internal/cli"
	"adascale/internal/experiments"
)

func main() {
	var common cli.Common
	common.Register(60, 30)
	exp := flag.String("exp", "all", "comma-separated experiments or 'all'")
	faultRates := flag.String("faults", "0,0.05,0.1,0.2", "fault rates for the robustness sweep")
	deadlineMS := flag.Float64("deadline-ms", 0, "per-frame deadline for the resilient runner (0 = off)")
	flag.Parse()
	common.Apply()

	fail := func(err error) { cli.Fail("adascale-bench", err) }

	rates, err := cli.ParseFloats(*faultRates)
	if err != nil {
		fail(err)
	}

	cfg := experiments.Config{
		Dataset:       common.Dataset,
		TrainSnippets: common.Train,
		ValSnippets:   common.Val,
		Seed:          common.Seed,
	}
	b, err := experiments.Prepare(cfg)
	if err != nil {
		fail(err)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	w := os.Stdout

	run := func(name string, f func()) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		f()
		fmt.Fprintf(w, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("qualitative", func() { b.Qualitative(8).Print(w) })
	run("table1", func() { b.Table1().Print(w) })
	run("table2", func() { b.Table2().Print(w) })
	run("table3", func() { b.Table3().Print(w) })
	run("fig5", func() { b.Fig5().Print(w) })
	run("fig6", func() { b.Fig6().Print(w) })
	run("fig7", func() { b.Fig7().Print(w) })
	run("fig9", func() { b.Fig9().Print(w) })
	run("fig10", func() { b.Fig10().Print(w) })
	run("robustness", func() {
		res, err := b.Robustness(rates, *deadlineMS)
		if err != nil {
			fail(err)
		}
		res.Print(w)
	})
	run("serving", func() {
		res, err := b.Serving(experiments.DefaultServingConfig())
		if err != nil {
			fail(err)
		}
		res.Print(w)
	})
}
