// Command adascale-serve runs the multi-stream serving simulation: it
// trains a small AdaScale system on the synthetic corpus, generates N
// concurrent open-loop video streams, and serves them through the
// internal/serve scheduler — bounded per-stream queues with drop-oldest
// backpressure, per-worker detector/regressor clones, and a per-frame
// latency SLO that walks overloaded streams down the scale ladder.
//
// Usage:
//
//	adascale-serve [-streams 8] [-workers 4] [-slo-ms 50] [-queue 8] \
//	               [-batch 1] \
//	               [-max-streams 0] [-rate 30] [-frames 60] [-tick-ms 500] \
//	               [-dataset vid|ytbb] [-train 12] [-val 8] [-seed 5] \
//	               [-faults 0] [-chaos 0] [-chaos-seed 0] [-smoke] \
//	               [-cluster] [-nodes 4] [-epoch-ms 500] [-model-only] \
//	               [-trace trace.txt] [-trace-wall] [-pprof localhost:6060] \
//	               [-http addr] [-rate-limit 0] [-burst 0] [-tenant-streams 0]
//
// -http <addr> switches the command from the offline simulation into the
// network serving mode (internal/server): it trains the same system, then
// listens on addr and serves the HTTP API — stream admission, frame
// ingestion, results, health probes and Prometheus /metrics — until
// SIGTERM/SIGINT, when it drains gracefully (admission closes, every
// admitted frame is flushed, then the listener stops) and prints the
// accounting line `drain: offered=N served=M dropped=K lost=0` plus the
// final metrics snapshot. -rate-limit/-burst bound each tenant's request
// rate (token bucket); -tenant-streams caps streams per tenant; -queue,
// -slo-ms, -max-streams and -workers keep their meanings.
//
// -batch <cap> enables cross-stream detector batching in the offline
// simulation: frames from different streams that are in flight together on
// the same scale rung share one batched backbone pass of at most cap
// frames (internal/serve BatchCap). Batching changes wall-clock compute
// only — the virtual schedule, the served outputs and every non-batch/*
// metric are byte-identical to -batch 1, the property scripts/batch-smoke.sh
// gates.
//
// -cluster switches to the cluster-scale simulation (internal/cluster): the
// offered streams are sharded across -nodes simulated nodes by a
// bounded-load consistent-hash ring, each node runs its own scheduler +
// supervisor over -epoch-ms placement epochs, and the cluster report rolls
// the fleet up (per-node serving totals, joins/leaves/blackouts, stream
// migrations and cross-node failovers carrying session checkpoints). In
// this mode -chaos <rate> generates the *cluster* event plan — node joins,
// graceful leaves, node blackouts and forced stream migrations at the
// given events/second — instead of the single-node system fault plan, and
// -model-only skips detector compute (frames still cost their modelled
// virtual service time) so 1k-100k stream fleets run in seconds. Under
// -smoke the cluster gate asserts the conservation identity: lost=0,
// offered = served + dropped exactly, with at least one node standing.
//
// -chaos <rate> injects a seeded *system* fault plan on top of the load:
// worker kills and stalls (Poisson at the given intensity), node
// blackouts and queue-saturation windows, all on the virtual clock, with
// the supervision layer (retry + backoff, circuit breakers, watchdog,
// stream migration) recovering. The plan seed derives from the master
// -seed unless -chaos-seed pins it directly. Chaos runs force an explicit
// worker count (default 4 when -workers is 0), since the plan targets
// worker indices.
//
// The master -seed drives the dataset, the fault injection, the arrival
// schedules and the chaos plan; for a fixed flag set the served outputs
// and every printed metric snapshot are byte-identical across runs and
// machines (timings go to stderr). -smoke exits non-zero unless the run
// served every offered frame with no drops and produced a non-empty
// snapshot — the repo's serve-smoke gate. Under -chaos, the smoke gate
// instead asserts zero *lost* streams and frames (drops are expected
// inside saturation windows): every stream keeps serving, and
// offered = served + dropped exactly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"adascale/internal/adascale"
	"adascale/internal/cli"
	"adascale/internal/cluster"
	"adascale/internal/faults"
	"adascale/internal/serve"
	"adascale/internal/server"
	"adascale/internal/synth"
)

func main() {
	var common cli.Common
	common.Register(12, 8)
	streams := flag.Int("streams", 8, "concurrent video sessions to offer")
	sloMS := flag.Float64("slo-ms", 50, "per-frame end-to-end latency SLO in virtual ms (0 = off)")
	queue := flag.Int("queue", 8, "per-stream frame queue depth (drop-oldest beyond it)")
	batch := flag.Int("batch", 1, "cross-stream detector batch cap: frames in flight together on the same scale rung share one backbone pass (1 = off; outputs are identical at any cap)")
	maxStreams := flag.Int("max-streams", 0, "admission-control capacity (0 = admit all)")
	rate := flag.Float64("rate", 30, "mean per-stream arrival rate, frames/second")
	frames := flag.Int("frames", 60, "frames offered per stream")
	tickMS := flag.Float64("tick-ms", 500, "virtual ms between metric snapshots (0 = final only)")
	faultRate := flag.Float64("faults", 0, "per-frame fault rate injected into the stream content")
	chaosRate := flag.Float64("chaos", 0, "system fault intensity: worker kills/stalls, blackouts, queue saturation (0 = off)")
	chaosSeed := flag.Int64("chaos-seed", 0, "chaos plan seed (0 = derive from -seed)")
	smoke := flag.Bool("smoke", false, "gate mode: exit non-zero on any drop (or, under -chaos, any lost stream/frame) or an empty snapshot")
	clusterMode := flag.Bool("cluster", false, "shard the streams across a simulated node fleet (internal/cluster) instead of one server")
	nodes := flag.Int("nodes", 4, "cluster: initial node count")
	epochMS := flag.Float64("epoch-ms", 500, "cluster: placement epoch length in virtual ms")
	modelOnly := flag.Bool("model-only", false, "cluster: skip detector compute; frames cost modelled virtual time only")
	httpAddr := flag.String("http", "", "serve the HTTP API on this address instead of running the offline simulation (e.g. 127.0.0.1:8080)")
	rateLimit := flag.Float64("rate-limit", 0, "http: per-tenant request rate limit, req/s (0 = off)")
	burst := flag.Int("burst", 0, "http: token-bucket burst for -rate-limit")
	tenantStreams := flag.Int("tenant-streams", 0, "http: max streams per tenant (0 = unlimited)")
	flag.Parse()
	common.Apply("adascale-serve")

	fail := func(err error) { cli.Fail("adascale-serve", err) }
	start := time.Now()

	dcfg, err := common.SynthConfig()
	if err != nil {
		fail(err)
	}
	ds, err := synth.Generate(dcfg, common.Train, common.Val)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset %s: %d train / %d val snippets, seed %d\n",
		dcfg.Name, len(ds.Train), len(ds.Val), common.Seed)

	sys := adascale.Build(ds, adascale.DefaultBuildConfig())
	fmt.Printf("system ready: regressor %v\n", sys.Regressor)

	if *httpAddr != "" {
		serveHTTP(sys, server.Config{
			Seed:          common.Seed,
			Workers:       common.Workers,
			QueueDepth:    *queue,
			MaxStreams:    *maxStreams,
			TenantStreams: *tenantStreams,
			SLOMS:         *sloMS,
			Rate:          server.RateLimit{RPS: *rateLimit, Burst: *burst},
			Resilient:     adascale.DefaultResilientConfig(),
		}, *httpAddr, fail)
		return
	}

	content := ds.Val
	if *faultRate > 0 {
		if content, err = faults.Inject(ds.Val, faults.Mixed(*faultRate, common.FaultSeed())); err != nil {
			fail(err)
		}
		fmt.Printf("injected faults at rate %.2f\n", *faultRate)
	}

	load, err := serve.GenLoad(content, serve.LoadConfig{
		Streams:         *streams,
		FPS:             *rate,
		FramesPerStream: *frames,
		Seed:            common.LoadSeed(),
	})
	if err != nil {
		fail(err)
	}

	if *clusterMode {
		seed := *chaosSeed
		if seed == 0 {
			seed = common.ChaosSeed()
		}
		runCluster(sys, load, clusterRun{
			nodes: *nodes, epochMS: *epochMS, modelOnly: *modelOnly,
			eventRate: *chaosRate, planSeed: seed, workers: common.Workers,
			queue: *queue, sloMS: *sloMS, smoke: *smoke,
		}, fail)
		fmt.Fprintf(os.Stderr, "wall time: %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	cfg := serve.Config{
		Workers:    common.Workers,
		QueueDepth: *queue,
		BatchCap:   *batch,
		MaxStreams: *maxStreams,
		SLOMS:      *sloMS,
		Resilient:  adascale.DefaultResilientConfig(),
		TickMS:     *tickMS,
		Tracer:     common.Tracer(),
	}
	if *chaosRate > 0 {
		if cfg.Workers <= 0 {
			// The plan targets worker indices; GOMAXPROCS-derived capacity
			// would make the chaos schedule machine-dependent.
			cfg.Workers = 4
			fmt.Println("chaos: forcing -workers 4 (plans need an explicit worker count)")
		}
		seed := *chaosSeed
		if seed == 0 {
			seed = common.ChaosSeed()
		}
		horizon := 0.0
		for _, st := range load {
			for _, f := range st.Frames {
				if f.ArrivalMS > horizon {
					horizon = f.ArrivalMS
				}
			}
		}
		plan, err := faults.GenSystemPlan(faults.ScaledSystemConfig(*chaosRate, seed, horizon+500, cfg.Workers))
		if err != nil {
			fail(err)
		}
		cfg.Chaos = plan
		fmt.Printf("chaos: %s\n", plan)
	}
	if *tickMS > 0 {
		cfg.OnTick = func(simMS float64, m *serve.Metrics) {
			fmt.Printf("--- t=%.0fms served=%d dropped=%d p99=%.1fms ---\n",
				simMS, m.Counter("frames/served"), m.Counter("frames/dropped"),
				m.Quantile("latency/ms", 0.99))
		}
	}
	srv, err := serve.New(sys.Detector, sys.Regressor, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("serving %d streams at %.0f fps, %d frames each, SLO %.0f ms, queue %d\n",
		*streams, *rate, *frames, *sloMS, *queue)
	rep := srv.Run(load)

	fmt.Printf("\n=== final metrics (t=%.1fms virtual) ===\n", rep.DurationMS)
	snapshot := rep.Metrics.Snapshot()
	fmt.Print(snapshot)
	if len(rep.Rejected) > 0 {
		fmt.Printf("rejected streams: %v\n", rep.Rejected)
	}
	fmt.Printf("health: %v\n", rep.Summary)
	fmt.Fprintf(os.Stderr, "wall time: %v\n", time.Since(start).Round(time.Millisecond))

	if *smoke {
		if snapshot == "" {
			fail(fmt.Errorf("smoke: empty metrics snapshot"))
		}
		if *chaosRate > 0 {
			// Chaos gate: drops are legitimate (saturation windows collapse
			// the queues), lost streams or frames never are.
			if n := rep.Lost(); n != 0 {
				fail(fmt.Errorf("smoke: %d frames lost (neither served nor dropped)", n))
			}
			for _, sr := range rep.Streams {
				if len(sr.Outputs) == 0 {
					fail(fmt.Errorf("smoke: stream %d lost to the fault plan (served nothing)", sr.ID))
				}
			}
			fmt.Println("chaos smoke: OK")
		} else {
			if n := rep.TotalDropped(); n != 0 {
				fail(fmt.Errorf("smoke: %d frames dropped at an unloaded rate", n))
			}
			if served := rep.Metrics.Counter("frames/served"); served != int64(*streams**frames) {
				fail(fmt.Errorf("smoke: served %d frames, want %d", served, *streams**frames))
			}
			fmt.Println("serve smoke: OK")
		}
	}

	common.WriteTrace("adascale-serve")
}

// clusterRun bundles the cluster-mode knobs main hands to runCluster.
type clusterRun struct {
	nodes     int
	epochMS   float64
	modelOnly bool
	eventRate float64
	planSeed  int64
	workers   int
	queue     int
	sloMS     float64
	smoke     bool
}

// runCluster shards the generated load across a simulated node fleet and
// prints the cluster report plus the merged metrics snapshot. For a fixed
// flag set the entire stdout stream is byte-identical across runs and
// machines — the property scripts/cluster-smoke.sh diffs.
func runCluster(sys *adascale.System, load []serve.Stream, opt clusterRun, fail func(error)) {
	if opt.workers <= 0 {
		// Cluster placement needs an explicit per-node capacity;
		// GOMAXPROCS-derived capacity would shard machine-dependently.
		opt.workers = 4
		fmt.Println("cluster: forcing -workers 4 (nodes need an explicit worker count)")
	}
	cfg := cluster.Config{
		Nodes:   opt.nodes,
		EpochMS: opt.epochMS,
		Node: serve.Config{
			Workers:    opt.workers,
			QueueDepth: opt.queue,
			SLOMS:      opt.sloMS,
			Resilient:  adascale.DefaultResilientConfig(),
			ModelOnly:  opt.modelOnly,
			// Per-stream metric keys would make the snapshot O(streams);
			// the cluster rollup keeps the fleet-level series instead.
			CompactMetrics: true,
		},
	}
	if opt.eventRate > 0 {
		horizon := 0.0
		for _, st := range load {
			for _, f := range st.Frames {
				if f.ArrivalMS > horizon {
					horizon = f.ArrivalMS
				}
			}
		}
		plan, err := cluster.GenPlan(cluster.PlanConfig{
			Seed:      opt.planSeed,
			HorizonMS: horizon + opt.epochMS,
			Rate:      opt.eventRate,
			Nodes:     opt.nodes,
			Streams:   len(load),
		})
		if err != nil {
			fail(err)
		}
		cfg.Plan = plan
		fmt.Printf("cluster events: %s\n", plan)
	}
	cl, err := cluster.New(sys.Detector, sys.Regressor, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("cluster: sharding %d streams across %d nodes, epoch %.0f ms, %d workers/node\n",
		len(load), opt.nodes, opt.epochMS, opt.workers)
	rep := cl.Run(load)

	fmt.Printf("\n=== cluster report (t=%.1fms virtual) ===\n", rep.DurationMS)
	fmt.Print(rep.String())
	fmt.Printf("\n=== final metrics ===\n")
	snapshot := rep.Metrics.Snapshot()
	fmt.Print(snapshot)

	if opt.smoke {
		if snapshot == "" {
			fail(fmt.Errorf("smoke: empty metrics snapshot"))
		}
		if n := rep.Lost(); n != 0 {
			fail(fmt.Errorf("smoke: %d frames lost (offered=%d served=%d dropped=%d)",
				n, rep.Offered, rep.Served, rep.Dropped))
		}
		if rep.FinalNodes < 1 {
			fail(fmt.Errorf("smoke: cluster ended with %d nodes", rep.FinalNodes))
		}
		fmt.Println("cluster smoke: OK")
	}
}

// serveHTTP runs the network serving mode: listen, serve the API, drain
// gracefully on SIGTERM/SIGINT, and account for every admitted frame.
func serveHTTP(sys *adascale.System, cfg server.Config, addr string, fail func(error)) {
	srv, err := server.New(sys.Detector, sys.Regressor, cfg)
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	// The resolved address line is the contract scripts/http-smoke.sh (and
	// any operator using :0) parse to find the ephemeral port.
	fmt.Printf("http: listening on %s\n", ln.Addr())

	ctx, stop := cli.SignalContext(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills a wedged drain
		fmt.Println("http: signal received, draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			fail(fmt.Errorf("shutdown: %w", err))
		}
		if serveErr := <-done; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			fail(serveErr)
		}
	case err := <-done:
		stop()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}

	offered, served, dropped := srv.Stats()
	fmt.Printf("drain: offered=%d served=%d dropped=%d lost=%d\n",
		offered, served, dropped, offered-served-dropped)
	fmt.Printf("\n=== final metrics ===\n")
	fmt.Print(srv.Metrics().Snapshot())
	if lost := offered - served - dropped; lost != 0 {
		fail(fmt.Errorf("drain lost %d admitted frames", lost))
	}
}
