// Command adascale-serve runs the multi-stream serving simulation: it
// trains a small AdaScale system on the synthetic corpus, generates N
// concurrent open-loop video streams, and serves them through the
// internal/serve scheduler — bounded per-stream queues with drop-oldest
// backpressure, per-worker detector/regressor clones, and a per-frame
// latency SLO that walks overloaded streams down the scale ladder.
//
// Usage:
//
//	adascale-serve [-streams 8] [-workers 4] [-slo-ms 50] [-queue 8] \
//	               [-max-streams 0] [-rate 30] [-frames 60] [-tick-ms 500] \
//	               [-dataset vid|ytbb] [-train 12] [-val 8] [-seed 5] \
//	               [-faults 0] [-chaos 0] [-chaos-seed 0] [-smoke] \
//	               [-trace trace.txt] [-trace-wall] [-pprof localhost:6060] \
//	               [-http addr] [-rate-limit 0] [-burst 0] [-tenant-streams 0]
//
// -http <addr> switches the command from the offline simulation into the
// network serving mode (internal/server): it trains the same system, then
// listens on addr and serves the HTTP API — stream admission, frame
// ingestion, results, health probes and Prometheus /metrics — until
// SIGTERM/SIGINT, when it drains gracefully (admission closes, every
// admitted frame is flushed, then the listener stops) and prints the
// accounting line `drain: offered=N served=M dropped=K lost=0` plus the
// final metrics snapshot. -rate-limit/-burst bound each tenant's request
// rate (token bucket); -tenant-streams caps streams per tenant; -queue,
// -slo-ms, -max-streams and -workers keep their meanings.
//
// -chaos <rate> injects a seeded *system* fault plan on top of the load:
// worker kills and stalls (Poisson at the given intensity), node
// blackouts and queue-saturation windows, all on the virtual clock, with
// the supervision layer (retry + backoff, circuit breakers, watchdog,
// stream migration) recovering. The plan seed derives from the master
// -seed unless -chaos-seed pins it directly. Chaos runs force an explicit
// worker count (default 4 when -workers is 0), since the plan targets
// worker indices.
//
// The master -seed drives the dataset, the fault injection, the arrival
// schedules and the chaos plan; for a fixed flag set the served outputs
// and every printed metric snapshot are byte-identical across runs and
// machines (timings go to stderr). -smoke exits non-zero unless the run
// served every offered frame with no drops and produced a non-empty
// snapshot — the repo's serve-smoke gate. Under -chaos, the smoke gate
// instead asserts zero *lost* streams and frames (drops are expected
// inside saturation windows): every stream keeps serving, and
// offered = served + dropped exactly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"adascale/internal/adascale"
	"adascale/internal/cli"
	"adascale/internal/faults"
	"adascale/internal/serve"
	"adascale/internal/server"
	"adascale/internal/synth"
)

func main() {
	var common cli.Common
	common.Register(12, 8)
	streams := flag.Int("streams", 8, "concurrent video sessions to offer")
	sloMS := flag.Float64("slo-ms", 50, "per-frame end-to-end latency SLO in virtual ms (0 = off)")
	queue := flag.Int("queue", 8, "per-stream frame queue depth (drop-oldest beyond it)")
	maxStreams := flag.Int("max-streams", 0, "admission-control capacity (0 = admit all)")
	rate := flag.Float64("rate", 30, "mean per-stream arrival rate, frames/second")
	frames := flag.Int("frames", 60, "frames offered per stream")
	tickMS := flag.Float64("tick-ms", 500, "virtual ms between metric snapshots (0 = final only)")
	faultRate := flag.Float64("faults", 0, "per-frame fault rate injected into the stream content")
	chaosRate := flag.Float64("chaos", 0, "system fault intensity: worker kills/stalls, blackouts, queue saturation (0 = off)")
	chaosSeed := flag.Int64("chaos-seed", 0, "chaos plan seed (0 = derive from -seed)")
	smoke := flag.Bool("smoke", false, "gate mode: exit non-zero on any drop (or, under -chaos, any lost stream/frame) or an empty snapshot")
	httpAddr := flag.String("http", "", "serve the HTTP API on this address instead of running the offline simulation (e.g. 127.0.0.1:8080)")
	rateLimit := flag.Float64("rate-limit", 0, "http: per-tenant request rate limit, req/s (0 = off)")
	burst := flag.Int("burst", 0, "http: token-bucket burst for -rate-limit")
	tenantStreams := flag.Int("tenant-streams", 0, "http: max streams per tenant (0 = unlimited)")
	flag.Parse()
	common.Apply("adascale-serve")

	fail := func(err error) { cli.Fail("adascale-serve", err) }
	start := time.Now()

	dcfg, err := common.SynthConfig()
	if err != nil {
		fail(err)
	}
	ds, err := synth.Generate(dcfg, common.Train, common.Val)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset %s: %d train / %d val snippets, seed %d\n",
		dcfg.Name, len(ds.Train), len(ds.Val), common.Seed)

	sys := adascale.Build(ds, adascale.DefaultBuildConfig())
	fmt.Printf("system ready: regressor %v\n", sys.Regressor)

	if *httpAddr != "" {
		serveHTTP(sys, server.Config{
			Seed:          common.Seed,
			Workers:       common.Workers,
			QueueDepth:    *queue,
			MaxStreams:    *maxStreams,
			TenantStreams: *tenantStreams,
			SLOMS:         *sloMS,
			Rate:          server.RateLimit{RPS: *rateLimit, Burst: *burst},
			Resilient:     adascale.DefaultResilientConfig(),
		}, *httpAddr, fail)
		return
	}

	content := ds.Val
	if *faultRate > 0 {
		if content, err = faults.Inject(ds.Val, faults.Mixed(*faultRate, common.FaultSeed())); err != nil {
			fail(err)
		}
		fmt.Printf("injected faults at rate %.2f\n", *faultRate)
	}

	load, err := serve.GenLoad(content, serve.LoadConfig{
		Streams:         *streams,
		FPS:             *rate,
		FramesPerStream: *frames,
		Seed:            common.LoadSeed(),
	})
	if err != nil {
		fail(err)
	}

	cfg := serve.Config{
		Workers:    common.Workers,
		QueueDepth: *queue,
		MaxStreams: *maxStreams,
		SLOMS:      *sloMS,
		Resilient:  adascale.DefaultResilientConfig(),
		TickMS:     *tickMS,
		Tracer:     common.Tracer(),
	}
	if *chaosRate > 0 {
		if cfg.Workers <= 0 {
			// The plan targets worker indices; GOMAXPROCS-derived capacity
			// would make the chaos schedule machine-dependent.
			cfg.Workers = 4
			fmt.Println("chaos: forcing -workers 4 (plans need an explicit worker count)")
		}
		seed := *chaosSeed
		if seed == 0 {
			seed = common.ChaosSeed()
		}
		horizon := 0.0
		for _, st := range load {
			for _, f := range st.Frames {
				if f.ArrivalMS > horizon {
					horizon = f.ArrivalMS
				}
			}
		}
		plan, err := faults.GenSystemPlan(faults.ScaledSystemConfig(*chaosRate, seed, horizon+500, cfg.Workers))
		if err != nil {
			fail(err)
		}
		cfg.Chaos = plan
		fmt.Printf("chaos: %s\n", plan)
	}
	if *tickMS > 0 {
		cfg.OnTick = func(simMS float64, m *serve.Metrics) {
			fmt.Printf("--- t=%.0fms served=%d dropped=%d p99=%.1fms ---\n",
				simMS, m.Counter("frames/served"), m.Counter("frames/dropped"),
				m.Quantile("latency/ms", 0.99))
		}
	}
	srv, err := serve.New(sys.Detector, sys.Regressor, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("serving %d streams at %.0f fps, %d frames each, SLO %.0f ms, queue %d\n",
		*streams, *rate, *frames, *sloMS, *queue)
	rep := srv.Run(load)

	fmt.Printf("\n=== final metrics (t=%.1fms virtual) ===\n", rep.DurationMS)
	snapshot := rep.Metrics.Snapshot()
	fmt.Print(snapshot)
	if len(rep.Rejected) > 0 {
		fmt.Printf("rejected streams: %v\n", rep.Rejected)
	}
	fmt.Printf("health: %v\n", rep.Summary)
	fmt.Fprintf(os.Stderr, "wall time: %v\n", time.Since(start).Round(time.Millisecond))

	if *smoke {
		if snapshot == "" {
			fail(fmt.Errorf("smoke: empty metrics snapshot"))
		}
		if *chaosRate > 0 {
			// Chaos gate: drops are legitimate (saturation windows collapse
			// the queues), lost streams or frames never are.
			if n := rep.Lost(); n != 0 {
				fail(fmt.Errorf("smoke: %d frames lost (neither served nor dropped)", n))
			}
			for _, sr := range rep.Streams {
				if len(sr.Outputs) == 0 {
					fail(fmt.Errorf("smoke: stream %d lost to the fault plan (served nothing)", sr.ID))
				}
			}
			fmt.Println("chaos smoke: OK")
		} else {
			if n := rep.TotalDropped(); n != 0 {
				fail(fmt.Errorf("smoke: %d frames dropped at an unloaded rate", n))
			}
			if served := rep.Metrics.Counter("frames/served"); served != int64(*streams**frames) {
				fail(fmt.Errorf("smoke: served %d frames, want %d", served, *streams**frames))
			}
			fmt.Println("serve smoke: OK")
		}
	}

	common.WriteTrace("adascale-serve")
}

// serveHTTP runs the network serving mode: listen, serve the API, drain
// gracefully on SIGTERM/SIGINT, and account for every admitted frame.
func serveHTTP(sys *adascale.System, cfg server.Config, addr string, fail func(error)) {
	srv, err := server.New(sys.Detector, sys.Regressor, cfg)
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	// The resolved address line is the contract scripts/http-smoke.sh (and
	// any operator using :0) parse to find the ephemeral port.
	fmt.Printf("http: listening on %s\n", ln.Addr())

	ctx, stop := cli.SignalContext(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills a wedged drain
		fmt.Println("http: signal received, draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			fail(fmt.Errorf("shutdown: %w", err))
		}
		if serveErr := <-done; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			fail(serveErr)
		}
	case err := <-done:
		stop()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}

	offered, served, dropped := srv.Stats()
	fmt.Printf("drain: offered=%d served=%d dropped=%d lost=%d\n",
		offered, served, dropped, offered-served-dropped)
	fmt.Printf("\n=== final metrics ===\n")
	fmt.Print(srv.Metrics().Snapshot())
	if lost := offered - served - dropped; lost != 0 {
		fail(fmt.Errorf("drain lost %d admitted frames", lost))
	}
}
