// Command adascale-train runs the Fig. 2 training methodology: generate
// the synthetic dataset, configure the multi-scale detector, produce
// optimal-scale labels with the Sec. 3.1 metric, train the scale regressor
// and save its weights.
//
// Usage:
//
//	adascale-train [-dataset vid|ytbb] [-train N] [-seed N] \
//	               [-kernels 1,3] [-epochs 2] [-lr 0.01] [-o weights.bin] \
//	               [-workers N] [-faults 0] [-deadline-ms 0] \
//	               [-trace trace.txt] [-trace-wall] [-pprof localhost:6060]
//
// With -faults > 0 a post-training smoke check runs the freshly trained
// system through the resilient pipeline on a small fault-injected split
// and prints its health summary — a quick sanity gate that the system
// degrades gracefully before the weights ship (-deadline-ms adds the
// per-frame deadline). The master -seed pins the dataset and the derived
// fault stream (see internal/cli).
package main

import (
	"flag"
	"fmt"
	"os"

	"adascale/internal/adascale"
	"adascale/internal/cli"
	"adascale/internal/faults"
	"adascale/internal/synth"
)

func main() {
	var common cli.Common
	common.Register(60, -1)
	kernels := flag.String("kernels", "1,3", "regressor branch kernels")
	epochs := flag.Int("epochs", 2, "training epochs")
	lr := flag.Float64("lr", 0.01, "base learning rate")
	out := flag.String("o", "adascale-regressor.bin", "output weights file")
	faultRate := flag.Float64("faults", 0, "fault rate for the post-training resilience smoke check (0 = off)")
	deadlineMS := flag.Float64("deadline-ms", 0, "per-frame deadline for the smoke check (0 = off)")
	flag.Parse()
	common.Apply("adascale-train")

	fail := func(err error) { cli.Fail("adascale-train", err) }

	cfg, err := common.SynthConfig()
	if err != nil {
		fail(err)
	}
	ks, err := cli.ParseInts(*kernels)
	if err != nil {
		fail(err)
	}

	ds, err := synth.Generate(cfg, common.Train, 0)
	if err != nil {
		fail(err)
	}
	fmt.Printf("generated %d training snippets (%d frames) of %s\n",
		len(ds.Train), len(synth.Frames(ds.Train)), cfg.Name)

	bc := adascale.DefaultBuildConfig()
	bc.Kernels = ks
	bc.Train.Epochs = *epochs
	bc.Train.BaseLR = *lr
	fmt.Printf("building: S_train=%v, S_reg=%v, kernels=%v, %d epochs at lr %g\n",
		bc.TrainScales, bc.RegScales, bc.Kernels, bc.Train.Epochs, bc.Train.BaseLR)
	sys := adascale.Build(ds, bc)

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := sys.Regressor.Save(f); err != nil {
		fail(err)
	}
	fmt.Printf("trained %v, weights saved to %s\n", sys.Regressor, *out)

	if *faultRate > 0 || *deadlineMS > 0 {
		if err := resilienceSmoke(sys, cfg, &common, *faultRate, *deadlineMS); err != nil {
			fail(err)
		}
	}

	common.WriteTrace("adascale-train")
}

// resilienceSmoke runs the freshly trained system through the resilient
// pipeline on a small fault-injected split and prints the degradation
// accounting — the last gate before the weights are considered usable.
func resilienceSmoke(sys *adascale.System, cfg synth.Config, common *cli.Common, rate, deadlineMS float64) error {
	ds, err := synth.Generate(cfg, 0, 8)
	if err != nil {
		return err
	}
	val, err := faults.Inject(ds.Val, faults.Mixed(rate, common.FaultSeed()))
	if err != nil {
		return err
	}
	rcfg := adascale.DefaultResilientConfig()
	rcfg.DeadlineMS = deadlineMS
	rcfg.Tracer = common.Tracer()
	outs, errs := adascale.RunDatasetPartial(val, adascale.ResilientRunner(sys.Detector, sys.Regressor, rcfg))
	for _, e := range errs {
		fmt.Printf("smoke check: recovered %v\n", e)
	}
	s := adascale.Summarize(outs)
	fmt.Printf("resilience smoke (rate %.2f, deadline %.0f ms): %v\n", rate, deadlineMS, s)
	if s.Unaccounted > 0 {
		return fmt.Errorf("resilience smoke check failed: %d unaccounted frames", s.Unaccounted)
	}
	fmt.Println("resilience smoke: OK")
	return nil
}
