// Command adascale-eval evaluates the paper's testing protocols (SS/SS,
// MS/SS, MS/MS, MS/Random, MS/AdaScale) on a validation split, optionally
// loading regressor weights produced by adascale-train.
//
// Usage:
//
//	adascale-eval [-dataset vid|ytbb] [-train N] [-val N] [-seed N] \
//	              [-weights weights.bin] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"adascale/internal/experiments"
	"adascale/internal/parallel"
)

func main() {
	dataset := flag.String("dataset", "vid", "dataset: vid or ytbb")
	train := flag.Int("train", 60, "training snippets")
	val := flag.Int("val", 30, "validation snippets")
	seed := flag.Int64("seed", 5, "dataset seed")
	weights := flag.String("weights", "", "optional regressor weights from adascale-train")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()
	parallel.SetWorkers(*workers)

	b, err := experiments.Prepare(experiments.Config{
		Dataset: *dataset, TrainSnippets: *train, ValSnippets: *val, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adascale-eval:", err)
		os.Exit(1)
	}
	if *weights != "" {
		f, err := os.Open(*weights)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adascale-eval:", err)
			os.Exit(1)
		}
		// Build the default system, then overwrite its regressor weights.
		sys := b.DefaultSystem()
		if err := sys.Regressor.Load(f); err != nil {
			fmt.Fprintln(os.Stderr, "adascale-eval: loading weights:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("loaded regressor weights from %s\n", *weights)
	}

	rows := b.StandardMethods()
	header := fmt.Sprintf("%-12s %8s %12s %12s", "method", "mAP", "runtime(ms)", "mean scale")
	fmt.Println(header)
	for range header {
		fmt.Print("-")
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-12s %8.1f %12.1f %12.0f\n", r.Name, r.MAP*100, r.RuntimeMS, r.MeanScale)
	}
}
