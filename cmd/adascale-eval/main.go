// Command adascale-eval evaluates the paper's testing protocols (SS/SS,
// MS/SS, MS/MS, MS/Random, MS/AdaScale) on a validation split, optionally
// loading regressor weights produced by adascale-train.
//
// Usage:
//
//	adascale-eval [-dataset vid|ytbb] [-train N] [-val N] [-seed N] \
//	              [-weights weights.bin] [-workers N] \
//	              [-faults 0.1] [-deadline-ms 0]
//
// With -faults > 0 the validation split is additionally corrupted with the
// deterministic fault injector at that per-frame rate and the protocols
// are compared against the resilient runner on the corrupted stream
// (-deadline-ms enables its per-frame deadline).
package main

import (
	"flag"
	"fmt"
	"os"

	"adascale/internal/experiments"
	"adascale/internal/parallel"
)

func main() {
	dataset := flag.String("dataset", "vid", "dataset: vid or ytbb")
	train := flag.Int("train", 60, "training snippets")
	val := flag.Int("val", 30, "validation snippets")
	seed := flag.Int64("seed", 5, "dataset seed")
	weights := flag.String("weights", "", "optional regressor weights from adascale-train")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	faultRate := flag.Float64("faults", 0, "per-frame fault rate for the robustness comparison (0 = off)")
	deadlineMS := flag.Float64("deadline-ms", 0, "per-frame deadline for the resilient runner (0 = off)")
	flag.Parse()
	parallel.SetWorkers(*workers)

	b, err := experiments.Prepare(experiments.Config{
		Dataset: *dataset, TrainSnippets: *train, ValSnippets: *val, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adascale-eval:", err)
		os.Exit(1)
	}
	if *weights != "" {
		f, err := os.Open(*weights)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adascale-eval:", err)
			os.Exit(1)
		}
		// Build the default system, then overwrite its regressor weights.
		sys := b.DefaultSystem()
		if err := sys.Regressor.Load(f); err != nil {
			fmt.Fprintln(os.Stderr, "adascale-eval: loading weights:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("loaded regressor weights from %s\n", *weights)
	}

	rows := b.StandardMethods()
	header := fmt.Sprintf("%-12s %8s %12s %12s", "method", "mAP", "runtime(ms)", "mean scale")
	fmt.Println(header)
	for range header {
		fmt.Print("-")
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-12s %8.1f %12.1f %12.0f\n", r.Name, r.MAP*100, r.RuntimeMS, r.MeanScale)
	}

	if *faultRate > 0 || *deadlineMS > 0 {
		fmt.Println()
		res, err := b.Robustness([]float64{0, *faultRate}, *deadlineMS)
		if err != nil {
			fmt.Fprintln(os.Stderr, "adascale-eval:", err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
	}
}
