// Command adascale-eval evaluates the paper's testing protocols (SS/SS,
// MS/SS, MS/MS, MS/Random, MS/AdaScale) on a validation split, optionally
// loading regressor weights produced by adascale-train.
//
// Usage:
//
//	adascale-eval [-dataset vid|ytbb] [-train N] [-val N] [-seed N] \
//	              [-weights weights.bin] [-workers N] \
//	              [-faults 0.1] [-deadline-ms 0] \
//	              [-trace trace.txt] [-trace-wall] [-pprof localhost:6060]
//
// With -faults > 0 the validation split is additionally corrupted with the
// deterministic fault injector at that per-frame rate and the protocols
// are compared against the resilient runner on the corrupted stream
// (-deadline-ms enables its per-frame deadline). The master -seed pins the
// dataset and every derived fault stream (see internal/cli).
package main

import (
	"flag"
	"fmt"
	"os"

	"adascale/internal/cli"
	"adascale/internal/experiments"
)

func main() {
	var common cli.Common
	common.Register(60, 30)
	weights := flag.String("weights", "", "optional regressor weights from adascale-train")
	faultRate := flag.Float64("faults", 0, "per-frame fault rate for the robustness comparison (0 = off)")
	deadlineMS := flag.Float64("deadline-ms", 0, "per-frame deadline for the resilient runner (0 = off)")
	flag.Parse()
	common.Apply("adascale-eval")

	b, err := experiments.Prepare(experiments.Config{
		Dataset: common.Dataset, TrainSnippets: common.Train, ValSnippets: common.Val, Seed: common.Seed,
	})
	if err != nil {
		cli.Fail("adascale-eval", err)
	}
	b.Trace = common.Tracer()
	if *weights != "" {
		f, err := os.Open(*weights)
		if err != nil {
			cli.Fail("adascale-eval", err)
		}
		// Build the default system, then overwrite its regressor weights.
		sys := b.DefaultSystem()
		if err := sys.Regressor.Load(f); err != nil {
			cli.Fail("adascale-eval", fmt.Errorf("loading weights: %w", err))
		}
		f.Close()
		fmt.Printf("loaded regressor weights from %s\n", *weights)
	}

	rows := b.StandardMethods()
	header := fmt.Sprintf("%-12s %8s %12s %12s", "method", "mAP", "runtime(ms)", "mean scale")
	fmt.Println(header)
	for range header {
		fmt.Print("-")
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-12s %8.1f %12.1f %12.0f\n", r.Name, r.MAP*100, r.RuntimeMS, r.MeanScale)
	}

	if *faultRate > 0 || *deadlineMS > 0 {
		fmt.Println()
		res, err := b.Robustness([]float64{0, *faultRate}, *deadlineMS)
		if err != nil {
			cli.Fail("adascale-eval", err)
		}
		res.Print(os.Stdout)
	}

	common.WriteTrace("adascale-eval")
}
