// Quickstart: train an AdaScale system on a small synthetic VID-like
// corpus, run Algorithm 1 over the validation videos and compare it with
// fixed-scale testing — the paper's headline result in ~40 lines.
package main

import (
	"fmt"

	"adascale"
)

func main() {
	// 1. Generate a labelled synthetic video dataset (ImageNet-VID-like:
	//    30 classes, 1280×720 frames, temporally consistent snippets).
	cfg := adascale.VIDLike(1)
	ds, err := adascale.Generate(cfg, 40, 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dataset: %d train / %d val snippets\n", len(ds.Train), len(ds.Val))

	// 2. Build the system: multi-scale detector + scale regressor trained
	//    on optimal-scale labels (the paper's Fig. 2 methodology).
	sys := adascale.Build(ds, adascale.DefaultBuildConfig())

	// 3. Baseline: the detector at the conventional fixed scale 600.
	//    RunDataset fans snippets across a worker pool (bound it with
	//    adascale.SetWorkers or the adascale-bench -workers flag); each
	//    worker gets its own detector clone, and the output is identical
	//    for any worker count.
	ssDet := adascale.NewSSDetector(&ds.Config)
	fixed := adascale.RunDataset(ds.Val, adascale.FixedRunner(ssDet, 600))

	// 4. AdaScale: Algorithm 1 — the regressor picks each next frame's
	//    scale from the current frame's deep features.
	ada := adascale.RunDataset(ds.Val, adascale.AdaScaleRunner(sys.Detector, sys.Regressor))

	// 5. Score both.
	n := len(cfg.Classes)
	fixedRes := adascale.Evaluate(adascale.ToEval(fixed), n)
	adaRes := adascale.Evaluate(adascale.ToEval(ada), n)

	fmt.Printf("fixed 600 : mAP %.1f%%  %.0f ms/frame\n",
		fixedRes.MAP*100, adascale.MeanRuntimeMS(fixed))
	fmt.Printf("AdaScale  : mAP %.1f%%  %.0f ms/frame (mean scale %.0f)\n",
		adaRes.MAP*100, adascale.MeanRuntimeMS(ada), adascale.MeanScale(ada))
	fmt.Printf("speedup %.2fx with %+.1f mAP\n",
		adascale.MeanRuntimeMS(fixed)/adascale.MeanRuntimeMS(ada),
		(adaRes.MAP-fixedRes.MAP)*100)
}
