// Drivingcam: AdaScale on a dash-cam-style workload. Traffic scenes film
// vehicles large and close (lead cars fill the frame), exactly the content
// the paper says benefits from down-scaling: oversized objects re-enter the
// detector's competent size band and high-resolution clutter stops spawning
// false positives. The example builds a custom dataset from user-defined
// class profiles — the same extension point a downstream user would use for
// their own domain.
package main

import (
	"fmt"

	"adascale"
)

func main() {
	// A driving-domain class set: near vehicles are large (high SizeFrac),
	// streets are cluttered, pedestrians are small and hard.
	classes := []adascale.ClassProfile{
		{Name: "lead car", BaseQuality: 0.85, SizeFrac: 0.45, SizeSpread: 0.30, Texture: adascale.TextureGradient, Clutter: 0.65},
		{Name: "truck", BaseQuality: 0.82, SizeFrac: 0.40, SizeSpread: 0.30, Texture: adascale.TextureGradient, Clutter: 0.55},
		{Name: "oncoming car", BaseQuality: 0.75, SizeFrac: 0.22, SizeSpread: 0.35, Texture: adascale.TextureGradient, Clutter: 0.60},
		{Name: "pedestrian", BaseQuality: 0.45, SizeFrac: 0.12, SizeSpread: 0.40, Texture: adascale.TextureChecker, Clutter: 0.70},
		{Name: "cyclist", BaseQuality: 0.55, SizeFrac: 0.18, SizeSpread: 0.35, Texture: adascale.TextureChecker, Clutter: 0.65},
		{Name: "traffic sign", BaseQuality: 0.80, SizeFrac: 0.10, SizeSpread: 0.30, Texture: adascale.TextureSolid, Clutter: 0.45},
	}
	cfg := adascale.DatasetConfig{
		Name: "drivingcam", Classes: classes,
		NativeW: 1280, NativeH: 720, RenderDiv: 4,
		FramesPerSnippet: 16, MaxObjects: 3, Seed: 7,
	}
	ds, err := adascale.Generate(cfg, 36, 18)
	if err != nil {
		panic(err)
	}

	sys := adascale.Build(ds, adascale.DefaultBuildConfig())
	ssDet := adascale.NewSSDetector(&ds.Config)

	fixed := adascale.RunDataset(ds.Val, adascale.FixedRunner(ssDet, 600))
	ada := adascale.RunDataset(ds.Val, adascale.AdaScaleRunner(sys.Detector, sys.Regressor))

	n := len(classes)
	fr := adascale.Evaluate(adascale.ToEval(fixed), n)
	ar := adascale.Evaluate(adascale.ToEval(ada), n)

	fmt.Println("dash-cam workload (vehicle-heavy, cluttered streets)")
	fmt.Printf("%-12s mAP %5.1f%%  %5.1f ms/frame (%4.1f FPS)\n",
		"fixed 600:", fr.MAP*100, adascale.MeanRuntimeMS(fixed), 1000/adascale.MeanRuntimeMS(fixed))
	fmt.Printf("%-12s mAP %5.1f%%  %5.1f ms/frame (%4.1f FPS), mean scale %.0f\n",
		"AdaScale:", ar.MAP*100, adascale.MeanRuntimeMS(ada), 1000/adascale.MeanRuntimeMS(ada),
		adascale.MeanScale(ada))

	fmt.Println("\nper-class AP (fixed → AdaScale):")
	for c, p := range classes {
		fmt.Printf("  %-13s %5.1f -> %5.1f\n", p.Name, fr.PerClass[c].AP*100, ar.PerClass[c].AP*100)
	}

	// Show one snippet's scale trace: large lead vehicles should pull the
	// scale down and keep it there.
	outs := adascale.RunAdaScale(sys.Detector, sys.Regressor, &ds.Val[0])
	fmt.Print("\nscale trace of first validation clip:")
	for _, o := range outs {
		fmt.Printf(" %d", o.Scale)
	}
	fmt.Println()
}
