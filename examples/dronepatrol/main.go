// Dronepatrol: AdaScale on an aerial-surveillance workload, the adversarial
// case for down-scaling — objects filmed from altitude are small, so the
// regressor must learn to *stay at high scales*: blind down-scaling (the
// usual speed knob) destroys recall here. The example contrasts AdaScale
// with a naive fixed low scale to show the regressor spends resolution only
// where it pays.
package main

import (
	"fmt"

	"adascale"
)

func main() {
	classes := []adascale.ClassProfile{
		{Name: "person", BaseQuality: 0.60, SizeFrac: 0.10, SizeSpread: 0.30, Texture: adascale.TextureChecker, Clutter: 0.40},
		{Name: "car", BaseQuality: 0.78, SizeFrac: 0.13, SizeSpread: 0.30, Texture: adascale.TextureGradient, Clutter: 0.35},
		{Name: "truck", BaseQuality: 0.82, SizeFrac: 0.18, SizeSpread: 0.30, Texture: adascale.TextureGradient, Clutter: 0.30},
		{Name: "boat", BaseQuality: 0.70, SizeFrac: 0.15, SizeSpread: 0.35, Texture: adascale.TextureSolid, Clutter: 0.25},
		{Name: "animal", BaseQuality: 0.55, SizeFrac: 0.09, SizeSpread: 0.40, Texture: adascale.TextureDots, Clutter: 0.35},
	}
	cfg := adascale.DatasetConfig{
		Name: "dronepatrol", Classes: classes,
		NativeW: 1280, NativeH: 720, RenderDiv: 4,
		FramesPerSnippet: 16, MaxObjects: 3, Seed: 11,
	}
	ds, err := adascale.Generate(cfg, 30, 15)
	if err != nil {
		panic(err)
	}

	sys := adascale.Build(ds, adascale.DefaultBuildConfig())
	n := len(classes)

	score := func(outs []adascale.FrameOutput) (float64, float64) {
		return adascale.Evaluate(adascale.ToEval(outs), n).MAP, adascale.MeanRuntimeMS(outs)
	}

	full, fullMS := score(adascale.RunDataset(ds.Val, adascale.FixedRunner(sys.Detector, 600)))
	low, lowMS := score(adascale.RunDataset(ds.Val, adascale.FixedRunner(sys.Detector, 240)))
	adaOuts := adascale.RunDataset(ds.Val, adascale.AdaScaleRunner(sys.Detector, sys.Regressor))
	ada, adaMS := score(adaOuts)

	fmt.Println("aerial workload (small, distant objects)")
	fmt.Printf("fixed 600   : mAP %5.1f%%  %5.1f ms/frame\n", full*100, fullMS)
	fmt.Printf("fixed 240   : mAP %5.1f%%  %5.1f ms/frame  <- cheap but blind\n", low*100, lowMS)
	fmt.Printf("AdaScale    : mAP %5.1f%%  %5.1f ms/frame  (mean scale %.0f)\n",
		ada*100, adaMS, adascale.MeanScale(adaOuts))
	fmt.Println()
	if ada > low {
		fmt.Println("the regressor learned that this content needs resolution:")
		fmt.Printf("it keeps a mean scale of %.0f instead of blindly down-sampling,\n",
			adascale.MeanScale(adaOuts))
		fmt.Printf("recovering %.1f mAP over the naive low-scale speed knob.\n", (ada-low)*100)
	}
}
