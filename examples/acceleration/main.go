// Acceleration: compose AdaScale with the video-acceleration systems of the
// paper's Sec. 4.6 — Deep Feature Flow (key-frame detection + optical-flow
// propagation) and Seq-NMS (cross-frame rescoring) — and print the
// resulting speed/accuracy Pareto points (paper Fig. 7).
package main

import (
	"fmt"

	"adascale"
)

func main() {
	cfg := adascale.VIDLike(3)
	ds, err := adascale.Generate(cfg, 40, 20)
	if err != nil {
		panic(err)
	}
	sys := adascale.Build(ds, adascale.DefaultBuildConfig())
	ssDet := adascale.NewSSDetector(&ds.Config)
	n := len(cfg.Classes)
	dffCfg := adascale.DefaultDFFConfig()

	// seqnmsed composes Seq-NMS rescoring onto a base runner factory; the
	// wrapper preserves the base factory's per-worker isolation.
	seqnmsed := func(base adascale.RunnerFactory) adascale.RunnerFactory {
		return func() adascale.SnippetRunner {
			run := base()
			return func(sn *adascale.Snippet) []adascale.FrameOutput {
				outs := run(sn)
				perFrame := make([][]adascale.Detection, len(outs))
				for i := range outs {
					perFrame[i] = outs[i].Detections
				}
				rescored := adascale.ApplySeqNMS(perFrame, adascale.SeqNMSOptions{})
				for i := range outs {
					outs[i].Detections = rescored[i]
					outs[i].OverheadMS += 1.5 // amortised post-processing
				}
				return outs
			}
		}
	}

	systems := []struct {
		name    string
		factory adascale.RunnerFactory
	}{
		{"R-FCN @600", adascale.FixedRunner(ssDet, 600)},
		{"+AdaScale", adascale.AdaScaleRunner(sys.Detector, sys.Regressor)},
		{"DFF", adascale.DFFRunner(sys.Detector, 600, dffCfg)},
		{"DFF+AdaScale", adascale.DFFAdaptiveRunner(sys.Detector, sys.Regressor, dffCfg)},
		{"SeqNMS", seqnmsed(adascale.FixedRunner(ssDet, 600))},
		{"SeqNMS+AdaScale", seqnmsed(adascale.AdaScaleRunner(sys.Detector, sys.Regressor))},
	}

	fmt.Printf("%-17s %8s %12s %8s\n", "system", "mAP", "ms/frame", "FPS")
	for _, s := range systems {
		outs := adascale.RunDataset(ds.Val, s.factory)
		res := adascale.Evaluate(adascale.ToEval(outs), n)
		ms := adascale.MeanRuntimeMS(outs)
		fmt.Printf("%-17s %7.1f%% %12.1f %8.1f\n", s.name, res.MAP*100, ms, 1000/ms)
	}
	fmt.Println("\nAdaScale composes with both accelerators: it changes *what the")
	fmt.Println("detector sees* (the input scale), so any system that still runs the")
	fmt.Println("detector — on every frame or only on key frames — inherits the win.")
}
