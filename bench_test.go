package adascale_test

// Benchmark harness: one benchmark per paper table/figure (regenerating the
// experiment on a reduced corpus) plus micro-benchmarks for the hot
// components. The experiment benchmarks exist to measure the cost of the
// full regeneration path; the printed tables themselves come from
// cmd/adascale-bench.

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"adascale"
	"adascale/internal/experiments"
	"adascale/internal/flow"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/seqnms"
	"adascale/internal/synth"
	"adascale/internal/tensor"
)

// benchBundle is a reduced-size experiment bundle shared by the table/
// figure benchmarks (building it trains a regressor, so it is done once).
var (
	benchOnce   sync.Once
	benchBundle *experiments.Bundle
	benchSys    *adascale.System
	benchDS     *adascale.Dataset
)

func bundle(b *testing.B) *experiments.Bundle {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchBundle, err = experiments.Prepare(experiments.Config{
			Dataset: "vid", TrainSnippets: 16, ValSnippets: 8, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchSys = benchBundle.DefaultSystem()
		benchDS = benchBundle.DS
	})
	return benchBundle
}

// --- Experiment benchmarks (one per table / figure) ---

func BenchmarkTable1a(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Table1().Print(io.Discard)
	}
}

func BenchmarkTable1bMiniYTBB(b *testing.B) {
	yb, err := experiments.Prepare(experiments.Config{
		Dataset: "ytbb", TrainSnippets: 12, ValSnippets: 6, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	yb.DefaultSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yb.Table1().Print(io.Discard)
	}
}

func BenchmarkTable2StrainAblation(b *testing.B) {
	bb := bundle(b)
	bb.Table2() // warm the per-S_train systems outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Table2().Print(io.Discard)
	}
}

func BenchmarkTable3RegressorAblation(b *testing.B) {
	bb := bundle(b)
	bb.Table3()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Table3().Print(io.Discard)
	}
}

func BenchmarkFig5PRCurves(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Fig5().Print(io.Discard)
	}
}

func BenchmarkFig6TPFP(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Fig6().Print(io.Discard)
	}
}

func BenchmarkFig7Pareto(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Fig7().Print(io.Discard)
	}
}

func BenchmarkFig9ScaleDynamics(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Fig9().Print(io.Discard)
	}
}

func BenchmarkFig10ScaleDistribution(b *testing.B) {
	bb := bundle(b)
	bb.Table2() // systems shared with Table 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Fig10().Print(io.Discard)
	}
}

func BenchmarkQualitativeFig1(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Qualitative(8).Print(io.Discard)
	}
}

// --- Pipeline benchmarks ---

func BenchmarkAlgorithm1Snippet(b *testing.B) {
	bundle(b)
	sn := &benchDS.Val[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adascale.RunAdaScale(benchSys.Detector, benchSys.Regressor, sn)
	}
}

func BenchmarkFixedScaleSnippet(b *testing.B) {
	bundle(b)
	sn := &benchDS.Val[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adascale.RunFixed(benchSys.Detector, sn, 600)
	}
}

func BenchmarkDFFSnippet(b *testing.B) {
	bundle(b)
	sn := &benchDS.Val[0]
	cfg := adascale.DefaultDFFConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adascale.RunDFF(benchSys.Detector, sn, 600, cfg)
	}
}

// BenchmarkRunDatasetSerial is the single-goroutine reference for the
// dataset runner on the Table 1a workload (AdaScale over the val split).
func BenchmarkRunDatasetSerial(b *testing.B) {
	bundle(b)
	run := adascale.AdaScaleRunner(benchSys.Detector, benchSys.Regressor)()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adascale.RunDatasetSerial(benchDS.Val, run)
	}
}

// BenchmarkRunDatasetParallel fans the same workload across the worker
// pool (sub-benchmarks pin the worker count; speedup needs multiple cores
// — with GOMAXPROCS=1 the pool falls back to the serial path).
func BenchmarkRunDatasetParallel(b *testing.B) {
	bundle(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			adascale.SetWorkers(workers)
			b.Cleanup(func() { adascale.SetWorkers(0) })
			factory := adascale.AdaScaleRunner(benchSys.Detector, benchSys.Regressor)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				adascale.RunDataset(benchDS.Val, factory)
			}
		})
	}
}

// BenchmarkMatMulParallel measures the row-tiled matmul kernel above its
// parallel threshold; workers=1 is the serial reference.
func BenchmarkMatMulParallel(b *testing.B) {
	const m, k, n = 256, 256, 256
	rng := rand.New(rand.NewSource(1))
	a := tensor.New(m, k)
	c := tensor.New(k, n)
	for _, t := range []*tensor.Tensor{a, c} {
		d := t.Data()
		for i := range d {
			d[i] = rng.Float32()
		}
	}
	dst := tensor.New(m, n)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			adascale.SetWorkers(workers)
			b.Cleanup(func() { adascale.SetWorkers(0) })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(dst, a, c)
			}
		})
	}
}

// --- Component micro-benchmarks ---

func BenchmarkDetect600(b *testing.B) {
	bundle(b)
	f := &benchDS.Val[0].Frames[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSys.Detector.Detect(f, 600)
	}
}

func BenchmarkDetect240(b *testing.B) {
	bundle(b)
	f := &benchDS.Val[0].Frames[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSys.Detector.Detect(f, 240)
	}
}

func BenchmarkBackboneFeatures600(b *testing.B) {
	bundle(b)
	f := &benchDS.Val[0].Frames[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSys.Detector.Features(f, 600)
	}
}

func BenchmarkRegressorForward(b *testing.B) {
	bundle(b)
	f := &benchDS.Val[0].Frames[0]
	feats := benchSys.Detector.Features(f, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSys.Regressor.Forward(feats)
	}
}

func BenchmarkRegressorTrainEpoch(b *testing.B) {
	bundle(b)
	frames := synth.Frames(benchDS.Train)[:8]
	labels := regressor.GenerateLabelsAllScales(benchSys.Detector, frames, regressor.SReg)
	cfg := regressor.DefaultTrainConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := regressor.New(rand.New(rand.NewSource(1)), regressor.DefaultKernels)
		reg.Fit(labels, cfg)
	}
}

func BenchmarkOptimalScaleLabel(b *testing.B) {
	bundle(b)
	frames := synth.Frames(benchDS.Train)[:1]
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regressor.GenerateLabels(benchSys.Detector, frames, regressor.SReg, rng)
	}
}

func BenchmarkFrameRender(b *testing.B) {
	bundle(b)
	f := &benchDS.Val[0].Frames[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Render(150, 8000, 4)
	}
}

func BenchmarkOpticalFlow(b *testing.B) {
	bundle(b)
	prev := benchDS.Val[0].Frames[0].Render(90, 8000, 4)
	cur := benchDS.Val[0].Frames[1].Render(90, 8000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Estimate(prev, cur, 8, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNMS300(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dets := make([]adascale.Detection, 300)
	for i := range dets {
		x, y := rng.Float64()*1000, rng.Float64()*600
		dets[i] = adascale.Detection{
			Box:   adascale.Box{X1: x, Y1: y, X2: x + 50 + rng.Float64()*100, Y2: y + 50 + rng.Float64()*100},
			Class: rng.Intn(30), Score: rng.Float64(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adascale.NMS(dets, rfcn.NMSThreshold, rfcn.TopK)
	}
}

func BenchmarkSeqNMSSnippet(b *testing.B) {
	bundle(b)
	outs := adascale.RunFixed(benchSys.Detector, &benchDS.Val[0], 600)
	frames := make([][]adascale.Detection, len(outs))
	for i := range outs {
		frames[i] = outs[i].Detections
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seqnms.Apply(frames, seqnms.Options{})
	}
}

func BenchmarkEvaluateMAP(b *testing.B) {
	bundle(b)
	outs := adascale.RunDataset(benchDS.Val, adascale.FixedRunner(benchSys.Detector, 600))
	frames := adascale.ToEval(outs)
	n := len(benchDS.Config.Classes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adascale.Evaluate(frames, n)
	}
}
