# Tier-1 gate: everything a commit must pass. `make check` is what CI and
# reviewers run; scripts/check.sh is the same thing for environments
# without make.

GO ?= go

.PHONY: check ci fmt vet build test race bench microbench fuzz-smoke serve-smoke chaos-smoke batch-smoke http-smoke cluster-smoke benchdiff golden

check: fmt vet build race fuzz-smoke serve-smoke chaos-smoke batch-smoke http-smoke cluster-smoke benchdiff

# CI entry point: the same gates as `check` but fail-slow — every gate
# runs even after a failure so one push reports all breakage at once,
# with GitHub Actions error annotations (and no color/TTY decoration).
ci:
	CHECK_CI_MODE=1 ./scripts/check.sh

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run is the point of the gate: the dataset runner, label
# generation and snippet synthesis fan out across the worker pool by
# default, and -race proves the per-worker clones isolate the stateful
# nn layers. -shuffle=on randomizes test order within each package so
# leaked package-level state (e.g. a SetWorkers override that survived a
# t.Fatal) fails loudly instead of depending on declaration order.
race:
	$(GO) test -race -shuffle=on -timeout 60m ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem .

# Kernel-level microbenchmarks: matmul (serial vs packed), im2col, the
# fused convolution vs the historical im2col+matmul lowering, and the
# arena pool. Informational — run on hot-path kernel changes and in CI
# for the log; the end-to-end gate is benchdiff on BENCH_4.json.
microbench:
	$(GO) test -run=^$$ -bench=. -benchmem ./internal/tensor

# Brief randomized fuzzing on top of the committed seed corpus (the seeds
# themselves already run as regular tests). `go test -fuzz` accepts one
# target per invocation, hence one line per harness.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=^FuzzNMS$$ -fuzztime=5s ./internal/detect
	$(GO) test -run=^$$ -fuzz=^FuzzEvaluate$$ -fuzztime=5s ./internal/eval
	$(GO) test -run=^$$ -fuzz=^FuzzLoadgen$$ -fuzztime=5s ./internal/serve
	$(GO) test -run=^$$ -fuzz=^FuzzIngestDecode$$ -fuzztime=5s ./internal/server
	$(GO) test -run=^$$ -fuzz=^FuzzClusterEvents$$ -fuzztime=5s ./internal/cluster

# End-to-end serving gate under the race detector: 200 simulated frames
# across 4 streams at an unloaded rate must serve with zero drops and a
# non-empty metrics snapshot (-smoke exits non-zero otherwise).
serve-smoke:
	$(GO) run -race ./cmd/adascale-serve -streams 4 -frames 50 -rate 5 \
		-slo-ms 0 -tick-ms 0 -train 8 -val 4 -workers 4 -seed 5 -smoke

# Fault-tolerance gate: a seeded chaos run (worker kills/stalls, node
# blackout, queue saturation) under -race, twice — once at default
# parallelism, once at GOMAXPROCS=1 — asserting zero lost streams/frames
# and byte-identical output across the two runs.
chaos-smoke:
	./scripts/chaos-smoke.sh

# Batching gate: a loaded multi-stream serve with -batch 8 under -race,
# asserting zero loss, byte-identical output across core counts, and —
# after stripping the batch/* occupancy keys — byte-identical output and
# metrics against the same run with batching off (DESIGN.md §4k).
batch-smoke:
	./scripts/batch-smoke.sh

# HTTP transport gate: boot `adascale-serve -http` on an ephemeral port
# under -race, curl the whole API (admission, ingestion, results, probes,
# Prometheus /metrics), then SIGTERM and require a zero-loss graceful
# drain (offered == served + dropped through shutdown).
http-smoke:
	./scripts/http-smoke.sh

# Cluster-scale gate: a 1k-stream / 4-node model-only cluster run under
# -race, twice — asserting zero lost frames through sharding, blackout
# failover and migration, and byte-identical reports across the two runs.
cluster-smoke:
	./scripts/cluster-smoke.sh

# Benchmark-report gates: the diff tool must localise a synthetic
# single-stage regression (its own self-validation), and the committed
# BENCH_4.json baseline must parse, carry a known schema, and
# self-compare clean (zero regressions). Fresh reports are compared
# against it out-of-band (see README) because wall-clock deltas across
# machines are not a commit gate — CI uses `benchdiff.sh -accuracy-only`.
benchdiff:
	./scripts/benchdiff.sh -selftest
	./scripts/benchdiff.sh BENCH_4.json BENCH_4.json

# Regenerate every committed conformance artifact after a deliberate
# behaviour change in one pass: the golden traces (including the
# per-stage breakdown and serving stage-snapshot goldens), a verifying
# re-run, and the schema-v3 benchmark baseline with per-stage ns/op and
# allocs/op.
# Review the diff like any other code change.
golden:
	$(GO) test ./internal/regress -update
	$(GO) test ./internal/regress
	$(GO) run ./cmd/adascale-bench -train 16 -val 8 -seed 5 -json BENCH_4.json
