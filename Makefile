# Tier-1 gate: everything a commit must pass. `make check` is what CI and
# reviewers run; scripts/check.sh is the same thing for environments
# without make.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run is the point of the gate: the dataset runner, label
# generation and snippet synthesis fan out across the worker pool by
# default, and -race proves the per-worker clones isolate the stateful
# nn layers.
race:
	$(GO) test -race -timeout 60m ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem .
