// Package adascale is a from-scratch Go reproduction of "AdaScale: Towards
// Real-time Video Object Detection Using Adaptive Scaling" (Chin, Ding,
// Marculescu — SysML/MLSys 2019).
//
// AdaScale's insight is that image down-scaling is not a pure
// speed/accuracy trade-off: a small regressor reading the detector's own
// deep features can predict, per frame, the scale at which the detector is
// both faster and more accurate. This package is the public facade over the
// implementation: synthetic video datasets (standing in for ImageNet VID
// and mini YouTube-BB), the behavioural R-FCN detector, the Sec. 3.1
// optimal-scale metric, the Fig. 4 scale regressor trained with a real SGD
// framework, Algorithm 1's video pipeline, the DFF and Seq-NMS baselines it
// composes with, VOC-style evaluation, and the experiment harness that
// regenerates every table and figure of the paper. See DESIGN.md for the
// full substitution map and EXPERIMENTS.md for paper-vs-measured results.
//
// Quickstart:
//
//	cfg := adascale.VIDLike(1)
//	ds, _ := adascale.Generate(cfg, 60, 30)
//	sys := adascale.Build(ds, adascale.DefaultBuildConfig())
//	adascale.SetWorkers(4) // optional: bound the worker pool (0 = GOMAXPROCS)
//	outs := adascale.RunDataset(ds.Val, adascale.AdaScaleRunner(sys.Detector, sys.Regressor))
//	res := adascale.Evaluate(adascale.ToEval(outs), len(cfg.Classes))
//	fmt.Printf("mAP %.1f at %.0f ms/frame\n", res.MAP*100, adascale.MeanRuntimeMS(outs))
//
// RunDataset fans snippets across a worker pool; each worker runs an
// independent runner built by the RunnerFactory (cloned detector and
// regressor), and outputs are concatenated in snippet order, so results are
// identical for any worker count.
package adascale

import (
	"math/rand"

	"adascale/internal/adascale"
	"adascale/internal/cluster"
	"adascale/internal/detect"
	"adascale/internal/dff"
	"adascale/internal/eval"
	"adascale/internal/faults"
	"adascale/internal/parallel"
	"adascale/internal/raster"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/seqnms"
	"adascale/internal/serve"
	"adascale/internal/server"
	"adascale/internal/synth"
)

// Core vocabulary.
type (
	// Box is an axis-aligned bounding box in native frame coordinates.
	Box = detect.Box
	// Detection is one detector output (box, class, confidence).
	Detection = detect.Detection
	// GroundTruth is one annotated object.
	GroundTruth = detect.GroundTruth
)

// Synthetic datasets (the ImageNet VID / mini YouTube-BB stand-ins).
type (
	// DatasetConfig parameterises generation.
	DatasetConfig = synth.Config
	// Dataset is a generated train/val corpus.
	Dataset = synth.Dataset
	// Snippet is one video snippet.
	Snippet = synth.Snippet
	// Frame is one video frame.
	Frame = synth.Frame
	// ClassProfile calibrates one object category.
	ClassProfile = synth.ClassProfile
)

// VIDLike returns the 30-class ImageNet-VID-like dataset configuration.
func VIDLike(seed int64) DatasetConfig { return synth.VIDLike(seed) }

// MiniYTBBLike returns the 23-class mini YouTube-BB-like configuration.
func MiniYTBBLike(seed int64) DatasetConfig { return synth.MiniYTBBLike(seed) }

// Generate builds a dataset with the given number of train/val snippets.
func Generate(cfg DatasetConfig, train, val int) (*Dataset, error) {
	return synth.Generate(cfg, train, val)
}

// Detector and regressor.
type (
	// Detector is the behavioural R-FCN object detector.
	Detector = rfcn.Detector
	// DetectorResult is one detector invocation's output.
	DetectorResult = rfcn.Result
	// Regressor is the trainable scale-regression module (Fig. 4).
	Regressor = regressor.Regressor
	// RegressorTrainConfig is the regressor training recipe.
	RegressorTrainConfig = regressor.TrainConfig
	// Label is one regressor training example.
	Label = regressor.Label
)

// NewSSDetector creates the single-scale (600) baseline detector.
func NewSSDetector(data *DatasetConfig) *Detector { return rfcn.NewSS(data) }

// NewMSDetector creates the paper's default multi-scale detector
// (S_train = {600, 480, 360, 240}).
func NewMSDetector(data *DatasetConfig) *Detector { return rfcn.NewMS(data) }

// NewDetector creates a detector trained at an arbitrary scale set.
func NewDetector(data *DatasetConfig, trainScales []int) *Detector {
	return rfcn.New(data, trainScales)
}

// NewRegressor creates an untrained scale regressor with the given branch
// kernel sizes (nil selects the paper's {1, 3}).
func NewRegressor(rng *rand.Rand, kernels []int) *Regressor { return regressor.New(rng, kernels) }

// EncodeTarget computes the Eq. 3 normalised relative-scale target.
func EncodeTarget(m, mOpt int) float64 { return regressor.EncodeTarget(m, mOpt) }

// DecodeScale inverts Eq. 3, rounding and clipping to [128, 600]
// (Algorithm 1's decode step).
func DecodeScale(t float64, baseSize int) int { return regressor.DecodeScale(t, baseSize) }

// SReg is the paper's label-generation scale set {600, 480, 360, 240, 128}.
func SReg() []int { return append([]int(nil), regressor.SReg...) }

// Pipeline (Algorithm 1 and the comparison protocols).
type (
	// System is a trained AdaScale deployment (detector + regressor).
	System = adascale.System
	// BuildConfig parameterises the Fig. 2 training methodology.
	BuildConfig = adascale.BuildConfig
	// FrameOutput is one frame's detections plus cost accounting.
	FrameOutput = adascale.FrameOutput
)

// DefaultBuildConfig returns the paper's configuration.
func DefaultBuildConfig() BuildConfig { return adascale.DefaultBuildConfig() }

// Build runs the full Fig. 2 methodology: configure the multi-scale
// detector, generate optimal-scale labels with the Sec. 3.1 metric, and
// train the scale regressor.
func Build(ds *Dataset, cfg BuildConfig) *System { return adascale.Build(ds, cfg) }

// RunFixed detects every frame at a fixed scale (SS testing).
func RunFixed(det *Detector, sn *Snippet, scale int) []FrameOutput {
	return adascale.RunFixed(det, sn, scale)
}

// RunAdaScale runs Algorithm 1 over a snippet.
func RunAdaScale(det *Detector, reg *Regressor, sn *Snippet) []FrameOutput {
	return adascale.RunAdaScale(det, reg, sn)
}

// RunRandom tests each frame at a random scale from scales (MS/Random).
func RunRandom(det *Detector, sn *Snippet, scales []int, rng *rand.Rand) []FrameOutput {
	return adascale.RunRandom(det, sn, scales, rng)
}

// RunMultiShot tests each frame at every scale and NMS-merges (MS/MS).
func RunMultiShot(det *Detector, sn *Snippet, scales []int) []FrameOutput {
	return adascale.RunMultiShot(det, sn, scales)
}

// Parallel execution.
type (
	// SnippetRunner runs one testing protocol over one snippet.
	SnippetRunner = adascale.SnippetRunner
	// RunnerFactory yields one independent SnippetRunner per worker.
	RunnerFactory = adascale.RunnerFactory
)

// FixedRunner returns a per-worker factory for SS testing at scale.
func FixedRunner(det *Detector, scale int) RunnerFactory {
	return adascale.FixedRunner(det, scale)
}

// AdaScaleRunner returns a per-worker factory for Algorithm 1.
func AdaScaleRunner(det *Detector, reg *Regressor) RunnerFactory {
	return adascale.AdaScaleRunner(det, reg)
}

// MultiShotRunner returns a per-worker factory for MS/MS testing.
func MultiShotRunner(det *Detector, scales []int) RunnerFactory {
	return adascale.MultiShotRunner(det, scales)
}

// RandomRunner returns a per-worker factory for MS/Random testing with
// deterministic per-snippet scale draws derived from seed.
func RandomRunner(det *Detector, scales []int, seed int64) RunnerFactory {
	return adascale.RandomRunner(det, scales, seed)
}

// SharedRunner adapts a goroutine-safe runner into a RunnerFactory without
// cloning anything.
func SharedRunner(run SnippetRunner) RunnerFactory { return adascale.SharedRunner(run) }

// Fault injection and graceful degradation.
type (
	// FaultConfig parameterises the deterministic fault injector: per-frame
	// rates for dropped, stale, blacked-out, overexposed, noisy and
	// time-jittered frames.
	FaultConfig = faults.Config
	// Fault tags an injected sensor fault on a frame.
	Fault = synth.Fault
	// FaultKind enumerates the fault taxonomy.
	FaultKind = synth.FaultKind
	// ResilientConfig tunes the degradation ladder.
	ResilientConfig = adascale.ResilientConfig
	// Health is one frame's fault/degradation accounting.
	Health = adascale.Health
	// HealthSummary aggregates Health records over an output stream.
	HealthSummary = adascale.HealthSummary
	// Fallback identifies a degradation-ladder rung.
	Fallback = adascale.Fallback
	// SnippetError reports a snippet recovered from a runner panic.
	SnippetError = adascale.SnippetError
)

// MixedFaults splits a total per-frame fault rate evenly across the fault
// taxonomy (the standard robustness-sweep configuration).
func MixedFaults(rate float64, seed int64) FaultConfig { return faults.Mixed(rate, seed) }

// Inject returns a deep copy of the snippets with deterministic, seeded
// faults applied: same seed and config give a bit-identical stream at any
// worker count. Frame ground truth is preserved (synth.Frame.GroundTruth),
// so injected streams evaluate against reality.
func Inject(snippets []Snippet, cfg FaultConfig) ([]Snippet, error) {
	return faults.Inject(snippets, cfg)
}

// DefaultResilientConfig returns the standard degradation-ladder tuning.
func DefaultResilientConfig() ResilientConfig { return adascale.DefaultResilientConfig() }

// RunResilient runs Algorithm 1 over a snippet behind the degradation
// ladder: sensor-observable faults propagate last-good detections,
// invalid regressor predictions fall back to the last good scale, and an
// optional per-frame deadline (ResilientConfig.DeadlineMS) forces lower
// test scales when the rolling budget is exceeded.
func RunResilient(det *Detector, reg *Regressor, sn *Snippet, cfg ResilientConfig) []FrameOutput {
	return adascale.RunResilient(det, reg, sn, cfg)
}

// ResilientRunner returns a per-worker factory for the resilient pipeline.
func ResilientRunner(det *Detector, reg *Regressor, cfg ResilientConfig) RunnerFactory {
	return adascale.ResilientRunner(det, reg, cfg)
}

// Summarize folds per-frame Health records into a HealthSummary.
func Summarize(outputs []FrameOutput) HealthSummary { return adascale.Summarize(outputs) }

// RunDatasetPartial is RunDataset with panic recovery: a snippet whose
// runner panics is reported as a SnippetError and emitted as explicit
// placeholder frames instead of taking down the whole run.
func RunDatasetPartial(snippets []Snippet, factory RunnerFactory) ([]FrameOutput, []SnippetError) {
	return adascale.RunDatasetPartial(snippets, factory)
}

// DFFRunner returns a per-worker factory for fixed-scale DFF.
func DFFRunner(det *Detector, keyScale int, cfg DFFConfig) RunnerFactory {
	return dff.Runner(det, keyScale, cfg)
}

// DFFAdaptiveRunner returns a per-worker factory for DFF + AdaScale.
func DFFAdaptiveRunner(det *Detector, reg *Regressor, cfg DFFConfig) RunnerFactory {
	return dff.AdaptiveRunner(det, reg, cfg)
}

// RunDataset fans the snippets of a split across the worker pool — one
// runner per worker, built by factory — and concatenates the per-snippet
// outputs in snippet order. The output stream is identical to
// RunDatasetSerial for any worker count.
func RunDataset(snippets []Snippet, factory RunnerFactory) []FrameOutput {
	return adascale.RunDataset(snippets, factory)
}

// RunDatasetSerial applies a per-snippet runner across a split on the
// calling goroutine.
func RunDatasetSerial(snippets []Snippet, run SnippetRunner) []FrameOutput {
	return adascale.RunDatasetSerial(snippets, run)
}

// SetWorkers bounds the worker pool used by RunDataset and the parallel
// tensor kernels; n <= 0 restores the GOMAXPROCS default.
func SetWorkers(n int) { parallel.SetWorkers(n) }

// Workers reports the effective worker count.
func Workers() int { return parallel.Workers() }

// MeanRuntimeMS averages the modelled per-frame runtime.
func MeanRuntimeMS(outputs []FrameOutput) float64 { return adascale.MeanRuntimeMS(outputs) }

// MeanScale averages the tested scale.
func MeanScale(outputs []FrameOutput) float64 { return adascale.MeanScale(outputs) }

// Multi-stream serving.
type (
	// ServeConfig parameterises the multi-stream server: serving capacity,
	// per-stream queue depth (drop-oldest beyond it), admission-control
	// limit, the per-frame latency SLO that walks overloaded streams
	// down the scale ladder, and the cross-stream detector batch cap
	// (BatchCap — wall-clock compute only; outputs are identical at any
	// cap, DESIGN.md §4k).
	ServeConfig = serve.Config
	// Server schedules N concurrent video sessions onto the worker pool.
	Server = serve.Server
	// ServeReport is one serving run's outcome: per-stream outputs, drops,
	// SLO misses, and the deterministic metrics registry.
	ServeReport = serve.Report
	// ServeStreamReport is one admitted stream's outcome.
	ServeStreamReport = serve.StreamReport
	// ServeMetrics is the dependency-free counter/gauge/histogram registry.
	ServeMetrics = serve.Metrics
	// ServeStream is one session's workload: an ordered arrival schedule.
	ServeStream = serve.Stream
	// TimedFrame is one frame with its open-loop arrival time.
	TimedFrame = serve.TimedFrame
	// LoadConfig parameterises the deterministic load generator.
	LoadConfig = serve.LoadConfig
)

// NewServer creates a multi-stream server over a trained system. Time is
// virtual: the scheduler is a discrete-event simulation over the modelled
// runtime clock, while detector/regressor compute fans out across real
// goroutines with per-worker clones — so the served outputs and the final
// metrics snapshot are byte-identical across runs and core counts.
func NewServer(det *Detector, reg *Regressor, cfg ServeConfig) (*Server, error) {
	return serve.New(det, reg, cfg)
}

// GenLoad builds deterministic per-stream open-loop arrival schedules
// (exponential inter-arrival times at LoadConfig.FPS) over a snippet set.
func GenLoad(snippets []Snippet, cfg LoadConfig) ([]ServeStream, error) {
	return serve.GenLoad(snippets, cfg)
}

// NewServeMetrics creates an empty serving metrics registry.
func NewServeMetrics() *ServeMetrics { return serve.NewMetrics() }

// System fault tolerance: deterministic chaos plans for the serving layer
// and the supervision machinery that survives them.
type (
	// SystemPlan is a seeded, sorted schedule of system fault events in
	// virtual time (ServeConfig.Chaos injects it into a serving run).
	SystemPlan = faults.SystemPlan
	// SystemEvent is one scheduled system fault.
	SystemEvent = faults.SystemEvent
	// SystemEventKind enumerates worker kill, worker stall, node blackout
	// and queue saturation.
	SystemEventKind = faults.SystemEventKind
	// SystemConfig parameterises chaos plan generation.
	SystemConfig = faults.SystemConfig
	// SupervisorConfig tunes the serving layer's recovery machinery:
	// retry with exponential backoff and deterministic jitter, per-stream
	// circuit breakers that shed to propagation-only while open, the
	// watchdog that reassigns stalled dispatches, and worker rebuild time.
	SupervisorConfig = serve.SupervisorConfig
	// ServeConfigError is the typed validation error ServeConfig reports,
	// naming the offending field.
	ServeConfigError = serve.ConfigError
	// ResilientSession runs the degradation ladder over one ordered frame
	// stream with checkpoint/restore support for stream migration.
	ResilientSession = adascale.ResilientSession
	// SessionCheckpoint is a self-contained snapshot of a session's
	// recovery-relevant state; Restore replays it into a fresh session on
	// another node byte-identically.
	SessionCheckpoint = adascale.SessionCheckpoint
)

// GenSystemPlan builds the deterministic system fault schedule for the
// config: same seed and config give the identical plan on any machine.
func GenSystemPlan(cfg SystemConfig) (*SystemPlan, error) { return faults.GenSystemPlan(cfg) }

// ScaledSystemConfig returns the standard mixed chaos condition at the
// given intensity (rate 0 = no events, 1 = moderate, 2 = doubled), the
// knob the chaos sweep and adascale-serve -chaos drive.
func ScaledSystemConfig(rate float64, seed int64, horizonMS float64, workers int) SystemConfig {
	return faults.ScaledSystemConfig(rate, seed, horizonMS, workers)
}

// NewResilientSession creates a degradation-ladder session over a stream.
func NewResilientSession(kernels []int, cfg ResilientConfig) *ResilientSession {
	return adascale.NewResilientSession(kernels, cfg)
}

// HTTP serving front end (internal/server): the network surface over the
// serving core — stream admission with SLO/queue/quota, frame ingestion,
// results, health probes and Prometheus /metrics, with graceful drain.
type (
	// HTTPConfig parameterises the HTTP server: worker pool, per-stream
	// queue depth, stream quotas, default SLO, per-tenant rate limit, and
	// the clock bridge that stamps arrivals onto the virtual serving clock.
	HTTPConfig = server.Config
	// HTTPServer is the stdlib-only net/http front end.
	HTTPServer = server.Server
	// HTTPRateLimit is the per-tenant token-bucket rate limit.
	HTTPRateLimit = server.RateLimit
	// HTTPConfigError is the typed validation error HTTPConfig reports.
	HTTPConfigError = server.ConfigError
	// HTTPRequestError is the typed 400 the ingestion decoders report.
	HTTPRequestError = server.RequestError
	// HTTPClock maps transport arrivals onto the virtual serving clock.
	HTTPClock = server.Clock
	// HTTPWallClock is the production bridge (wall ms since start).
	HTTPWallClock = server.WallClock
	// HTTPScriptClock is the deterministic bridge for recorded scripts.
	HTTPScriptClock = server.ScriptClock
)

// NewHTTPServer creates the HTTP serving front end over a trained system.
// Underneath it is the same virtual-time machinery as NewServer: frame
// costs come from the modelled runtime clock, arrivals are stamped through
// HTTPConfig.Clock, and with a ScriptClock the responses to a recorded
// request script are byte-identical across runs and worker counts.
func NewHTTPServer(det *Detector, reg *Regressor, cfg HTTPConfig) (*HTTPServer, error) {
	return server.New(det, reg, cfg)
}

// NewHTTPWallClock starts a wall-clock bridge at virtual time zero.
func NewHTTPWallClock() *HTTPWallClock { return server.NewWallClock() }

// NewHTTPScriptClock starts a scripted clock at virtual time zero.
func NewHTTPScriptClock() *HTTPScriptClock { return server.NewScriptClock() }

// Cluster-scale simulation (internal/cluster): shard streams across a
// fleet of simulated serving nodes on one virtual clock — bounded-load
// consistent hashing, epoch-based placement, blackout failover carrying
// session checkpoints, p95-driven autoscaling — with a cluster-wide report
// that proves the conservation invariant (offered = served + dropped,
// lost = 0).
type (
	// ClusterConfig parameterises a cluster run: initial fleet size,
	// placement epoch, ring/autoscale policies, the optional event plan,
	// and the per-node serving template (which must pin Workers).
	ClusterConfig = cluster.Config
	// Cluster is the virtual-time fleet simulator.
	Cluster = cluster.Cluster
	// ClusterReport is the fleet rollup: frame conservation totals,
	// membership churn, migrations/failovers, per-node serving lines and
	// the merged cluster-wide metrics.
	ClusterReport = cluster.Report
	// ClusterNodeReport is one node's serving rollup inside the report.
	ClusterNodeReport = cluster.NodeReport
	// ClusterAutoscale is the p95-queue-delay-driven fleet sizing policy.
	ClusterAutoscale = cluster.Autoscale
	// ClusterRing is the bounded-load consistent-hash ring that assigns
	// streams to nodes with minimal remapping on membership change.
	ClusterRing = cluster.Ring
	// ClusterRingConfig tunes the ring (vnode replicas, load factor, seed).
	ClusterRingConfig = cluster.RingConfig
	// ClusterPlan is a seeded, sorted schedule of cluster events.
	ClusterPlan = cluster.Plan
	// ClusterEvent is one scheduled cluster event.
	ClusterEvent = cluster.Event
	// ClusterEventKind enumerates node join, graceful leave, node blackout
	// and forced stream migration.
	ClusterEventKind = cluster.EventKind
	// ClusterPlanConfig parameterises cluster event-plan generation.
	ClusterPlanConfig = cluster.PlanConfig
)

// NewCluster creates a fleet simulator over a trained system. Every node
// runs the same scheduler + supervisor as NewServer; placement, failover
// and autoscaling happen at epoch boundaries on the shared virtual clock,
// so a cluster run is byte-identical across runs and worker counts.
func NewCluster(det *Detector, reg *Regressor, cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(det, reg, cfg)
}

// NewClusterRing builds an empty bounded-load consistent-hash ring; Add
// nodes, then Assign keys.
func NewClusterRing(cfg ClusterRingConfig) *ClusterRing {
	return cluster.NewRing(cfg)
}

// GenClusterPlan builds the deterministic cluster event schedule for the
// config: same seed and config give the identical plan on any machine.
func GenClusterPlan(cfg ClusterPlanConfig) (*ClusterPlan, error) { return cluster.GenPlan(cfg) }

// DecodeClusterPlan decodes an arbitrary byte string into a structurally
// valid cluster event plan (total: every input decodes), the adversarial
// entry point the cluster fuzz harness drives.
func DecodeClusterPlan(data []byte, nodes, streams int, horizonMS float64) *ClusterPlan {
	return cluster.DecodePlan(data, nodes, streams, horizonMS)
}

// Video-acceleration baselines.
type (
	// DFFConfig parameterises Deep Feature Flow.
	DFFConfig = dff.Config
	// SeqNMSOptions parameterises Seq-NMS.
	SeqNMSOptions = seqnms.Options
)

// DefaultDFFConfig mirrors the DFF paper's operating point.
func DefaultDFFConfig() DFFConfig { return dff.DefaultConfig() }

// RunDFF runs Deep Feature Flow with fixed-scale key frames.
func RunDFF(det *Detector, sn *Snippet, keyScale int, cfg DFFConfig) []FrameOutput {
	return dff.Run(det, sn, keyScale, cfg)
}

// RunDFFAdaptive composes DFF with AdaScale (adaptive key-frame scales).
func RunDFFAdaptive(det *Detector, reg *Regressor, sn *Snippet, cfg DFFConfig) []FrameOutput {
	return dff.RunAdaptive(det, reg, sn, cfg)
}

// ApplySeqNMS rescoring over per-frame detections of one snippet.
func ApplySeqNMS(frames [][]Detection, opts SeqNMSOptions) [][]Detection {
	return seqnms.Apply(frames, opts)
}

// Evaluation.
type (
	// FrameDetections pairs detections with ground truth for scoring.
	FrameDetections = eval.FrameDetections
	// EvalResult is a full evaluation (per-class AP, mAP, PR curves).
	EvalResult = eval.Result
	// PRPoint is one precision-recall point.
	PRPoint = eval.PRPoint
)

// Evaluate scores detections with VOC-style AP/mAP at IoU ≥ 0.5.
func Evaluate(frames []FrameDetections, nClasses int) *EvalResult {
	return eval.Evaluate(frames, nClasses)
}

// ToEval converts pipeline outputs into evaluation inputs.
func ToEval(outputs []FrameOutput) []FrameDetections {
	out := make([]FrameDetections, len(outputs))
	for i, o := range outputs {
		out[i] = FrameDetections{Detections: o.Detections, GroundTruth: o.Frame.GroundTruth()}
	}
	return out
}

// IoU returns the Jaccard overlap of two boxes.
func IoU(a, b Box) float64 { return detect.IoU(a, b) }

// NMS performs class-wise greedy non-maximum suppression.
func NMS(dets []Detection, iouThreshold float64, topK int) []Detection {
	return detect.NMS(dets, iouThreshold, topK)
}

// Texture selects a synthetic object's fill pattern (its complexity is one
// of the signals the scale regressor reacts to).
type Texture = raster.Texture

// Texture kinds, ordered by spatial-frequency content.
const (
	TextureSolid    = raster.TextureSolid
	TextureGradient = raster.TextureGradient
	TextureStripes  = raster.TextureStripes
	TextureChecker  = raster.TextureChecker
	TextureDots     = raster.TextureDots
)
