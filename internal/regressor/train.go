package regressor

import (
	"math"
	"math/rand"

	"adascale/internal/nn"
	"adascale/internal/parallel"
	"adascale/internal/rfcn"
	"adascale/internal/scaleopt"
	"adascale/internal/synth"
	"adascale/internal/tensor"
)

// Label is one regressor training example: the detector's deep features for
// a frame rasterised at InputScale, with the Eq. 3 target towards the
// frame's optimal scale.
type Label struct {
	Frame      *synth.Frame
	InputScale int
	OptScale   int
	Target     float64
	Features   *tensor.Tensor
}

// GenerateLabels implements the label-generation stage of Fig. 2: for every
// frame, the optimal scale m_opt is computed with the Sec. 3.1 metric over
// sReg; the training input scale is drawn uniformly from sReg ("to best
// train the regressor, we should scale the image to every possible scale
// for the regressor to learn the dynamics"), and the target is Eq. 3's
// t(m, m_opt). Deep features are extracted once here and cached on the
// label.
// Frames are processed in parallel with per-worker detector clones; the
// random input scales are drawn serially up front, so the labels (and the
// rng stream consumed) are identical to the historical serial loop.
func GenerateLabels(det *rfcn.Detector, frames []*synth.Frame, sReg []int, rng *rand.Rand) []Label {
	scales := make([]int, len(frames))
	for i := range scales {
		scales[i] = sReg[rng.Intn(len(sReg))]
	}
	return parallel.MapWorkers(len(frames), det.Clone, func(d *rfcn.Detector, i int) Label {
		f := frames[i]
		mOpt, _ := scaleopt.OptimalScale(d, f, sReg, scaleopt.DefaultLambda)
		m := scales[i]
		return Label{
			Frame:      f,
			InputScale: m,
			OptScale:   mOpt,
			Target:     EncodeTarget(m, mOpt),
			Features:   d.Features(f, m),
		}
	})
}

// GenerateLabelsAllScales is a densified variant of GenerateLabels: every
// frame contributes one label per scale in sReg instead of one at a random
// scale. The paper draws a single random scale per image per pass; with a
// synthetic corpus far smaller than ImageNet VID, enumerating the scales
// provides the same coverage of "the dynamics between 600 and 128" with
// less variance.
// Frames are processed in parallel with per-worker detector clones and the
// per-frame label groups concatenated in frame order, matching the
// historical serial loop exactly.
func GenerateLabelsAllScales(det *rfcn.Detector, frames []*synth.Frame, sReg []int) []Label {
	perFrame := parallel.MapWorkers(len(frames), det.Clone, func(d *rfcn.Detector, i int) []Label {
		f := frames[i]
		mOpt, _ := scaleopt.OptimalScale(d, f, sReg, scaleopt.DefaultLambda)
		group := make([]Label, 0, len(sReg))
		for _, m := range sReg {
			group = append(group, Label{
				Frame:      f,
				InputScale: m,
				OptScale:   mOpt,
				Target:     EncodeTarget(m, mOpt),
				Features:   d.Features(f, m),
			})
		}
		return group
	})
	labels := make([]Label, 0, len(frames)*len(sReg))
	for _, group := range perFrame {
		labels = append(labels, group...)
	}
	return labels
}

// TrainConfig holds the regressor training recipe.
type TrainConfig struct {
	Epochs    int
	BaseLR    float64
	LRDrops   []float64 // progress fractions where LR divides by 10
	BatchSize int
	Seed      int64
}

// PaperTrainConfig returns the paper's recipe: two epochs, initial learning
// rate 1e-4 divided by 10 after 1.3 epochs, batch size 2 (one image per
// GPU on two GPUs).
func PaperTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 2, BaseLR: 1e-4, LRDrops: []float64{1.3 / 2.0}, BatchSize: 2, Seed: 1}
}

// DefaultTrainConfig keeps the paper's schedule shape (two epochs, one ÷10
// drop at 65% progress, batch 2) but raises the base learning rate: the
// absolute value 1e-4 is tied to the paper's MXNet feature magnitudes; our
// frozen backbone produces differently-scaled activations, and a sweep
// shows 1e-2 converges to the label-noise floor where 1e-4 underfits in two
// epochs.
func DefaultTrainConfig() TrainConfig {
	c := PaperTrainConfig()
	c.BaseLR = 1e-2
	return c
}

// Fit trains the regressor on cached-feature labels with SGD + momentum and
// the Eq. 4 mean-squared-error objective, returning the mean training loss
// of each epoch.
func (r *Regressor) Fit(labels []Label, cfg TrainConfig) []float64 {
	if len(labels) == 0 {
		return nil
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sched := nn.StepSchedule{Base: cfg.BaseLR, Drops: cfg.LRDrops}
	opt := nn.NewSGD(cfg.BaseLR)
	params := r.Params()

	order := make([]int, len(labels))
	for i := range order {
		order[i] = i
	}

	epochLoss := make([]float64, 0, cfg.Epochs)
	steps := 0
	totalSteps := cfg.Epochs * ((len(labels) + cfg.BatchSize - 1) / cfg.BatchSize)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			opt.LR = sched.LR(float64(steps) / float64(totalSteps))
			nn.ZeroGrads(params)
			for _, idx := range order[start:end] {
				lb := labels[idx]
				pred := r.Forward(lb.Features)
				diff := pred - lb.Target
				sum += 0.5 * diff * diff
				// d(½(pred-t)²)/dpred, averaged over the batch.
				r.Backward(diff / float64(end-start))
			}
			clipGradients(params, 5)
			opt.Step(params)
			steps++
		}
		epochLoss = append(epochLoss, sum/float64(len(labels)))
	}
	return epochLoss
}

// MSE evaluates the Eq. 4 loss of the regressor on labels without updating
// weights.
func (r *Regressor) MSE(labels []Label) float64 {
	if len(labels) == 0 {
		return 0
	}
	var sum float64
	for _, lb := range labels {
		d := r.Forward(lb.Features) - lb.Target
		sum += 0.5 * d * d
	}
	return sum / float64(len(labels))
}

// clipGradients rescales all gradients so their global L2 norm does not
// exceed maxNorm — cheap insurance against the occasional exploding step
// that can kill a ReLU branch for good.
func clipGradients(params []*nn.Param, maxNorm float64) {
	var sq float64
	for _, p := range params {
		n := p.Grad.L2Norm()
		sq += n * n
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm {
		return
	}
	scale := float32(maxNorm / norm)
	for _, p := range params {
		p.Grad.ScaleInPlace(scale)
	}
}
