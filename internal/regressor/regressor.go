// Package regressor implements the AdaScale scale-regressor module
// (Sec. 3.2, Fig. 4 of the paper) — the paper's core contribution — and
// trains it for real with SGD on labels produced by the optimal-scale
// metric.
//
// Architecture (Fig. 4): parallel convolution branches over the detector's
// deep features — a 1×1 branch capturing per-position size information and
// a 3×3 branch capturing local patch complexity (the kernel set is
// configurable for the Table 3 ablation) — each followed by a ReLU and
// global average pooling ("a voting process"), concatenated and fed to a
// fully-connected layer that regresses a single scalar.
//
// The regressed value is not the optimal scale itself but the normalised
// relative scale t of Eq. 3, in [-1, 1]: "what matters is the content
// instead of the image size itself", so the module learns to react —
// up-sample, down-sample or stay — to the current content.
package regressor

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"adascale/internal/nn"
	"adascale/internal/rfcn"
	"adascale/internal/tensor"
)

// Scale-set constants from the paper.
var (
	// SReg is the label-generation scale set; 128 is included because it
	// is the smallest RPN anchor, "to push the image to an as small as
	// possible scale for the largest potential speed improvement".
	SReg = []int{600, 480, 360, 240, 128}

	// DefaultKernels is the paper's chosen branch kernel set (Table 3's
	// speed/accuracy sweet spot).
	DefaultKernels = []int{1, 3}
)

// Scale bounds of Eq. 3.
const (
	MinScale = 128
	MaxScale = 600
)

// branchChannels is the output depth of each convolution branch.
const branchChannels = 8

// EncodeTarget computes Eq. 3: the normalised relative scale target
// t(m, m_opt) in [-1, 1] for an image currently at scale m whose optimal
// scale is mOpt.
func EncodeTarget(m, mOpt int) float64 {
	rMin := float64(MinScale) / float64(MaxScale)
	rMax := float64(MaxScale) / float64(MinScale)
	return 2*(float64(mOpt)/float64(m)-rMin)/(rMax-rMin) - 1
}

// DecodeScale inverts Eq. 3 (Algorithm 1's decode step): given the
// regressed t and the current image's base size (shortest side), it
// recovers the target scale in floating point, rounds it to an integer and
// clips it to [MinScale, MaxScale]. A non-finite t (NaN/Inf from a
// corrupted regressor or garbage features) would otherwise round into an
// arbitrary int; it instead falls back to the clipped base size — "keep
// the scale that was already in use".
func DecodeScale(t float64, baseSize int) int {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return clipScale(baseSize)
	}
	rMin := float64(MinScale) / float64(MaxScale)
	rMax := float64(MaxScale) / float64(MinScale)
	ratio := (t+1)/2*(rMax-rMin) + rMin
	return clipScale(int(math.Round(ratio * float64(baseSize))))
}

// clipScale clips a scale to the paper's [MinScale, MaxScale] test range.
func clipScale(s int) int {
	if s < MinScale {
		return MinScale
	}
	if s > MaxScale {
		return MaxScale
	}
	return s
}

// Regressor is the trainable scale-regression module.
type Regressor struct {
	Kernels []int

	branches []*nn.Conv2D
	relus    []*nn.ReLU
	pools    []*nn.GlobalAvgPool
	fc       *nn.Dense

	lastPooled []*tensor.Tensor

	// scratch recycles branch activation buffers across Predict calls.
	// Per-regressor (clones get their own), so workers never contend.
	scratch *tensor.Pool
}

// New creates a regressor over rfcn.FeatureChannels-deep features with one
// convolution branch per kernel size.
func New(rng *rand.Rand, kernels []int) *Regressor {
	if len(kernels) == 0 {
		kernels = DefaultKernels
	}
	r := &Regressor{Kernels: append([]int(nil), kernels...), scratch: tensor.NewPool()}
	for _, k := range kernels {
		conv := nn.NewConv2D(rng, rfcn.FeatureChannels, branchChannels, k, 1, -1)
		// Slightly positive biases keep the ReLU branches alive through the
		// first noisy SGD steps (global average pooling makes a fully-dead
		// branch unrecoverable).
		conv.Bias.W.Fill(0.1)
		r.branches = append(r.branches, conv)
		r.relus = append(r.relus, nn.NewReLU())
		r.pools = append(r.pools, nn.NewGlobalAvgPool())
	}
	r.fc = nn.NewDense(rng, branchChannels*len(kernels), 1)
	return r
}

// Clone returns an independent regressor with identical weights. All
// parameters are deep-copied and activation caches start empty, so a clone
// can run Forward (or even train) concurrently with the original without
// sharing any mutable state.
func (r *Regressor) Clone() *Regressor {
	c := &Regressor{
		Kernels: append([]int(nil), r.Kernels...),
		fc:      r.fc.Clone(),
		scratch: tensor.NewPool(),
	}
	for i := range r.branches {
		c.branches = append(c.branches, r.branches[i].Clone())
		c.relus = append(c.relus, r.relus[i].Clone())
		c.pools = append(c.pools, r.pools[i].Clone())
	}
	return c
}

// Forward regresses t from a deep feature map (C×H×W, any spatial size —
// global pooling absorbs the scale-dependent resolution).
func (r *Regressor) Forward(features *tensor.Tensor) float64 {
	concat := tensor.New(branchChannels * len(r.branches))
	r.lastPooled = r.lastPooled[:0]
	for i := range r.branches {
		v := r.pools[i].Forward(r.relus[i].Forward(r.branches[i].Forward(features)))
		copy(concat.Data()[i*branchChannels:], v.Data())
		r.lastPooled = append(r.lastPooled, v)
	}
	out := r.fc.Forward(concat)
	return float64(out.At(0))
}

// Predict regresses t through the inference-only fast path: fused pooled
// convolutions, in-place rectification and an inlined fully-connected
// head. It is bit-identical to Forward, allocates nothing in steady
// state, touches no activation caches (so it cannot be followed by
// Backward) and is safe for concurrent use on clones.
func (r *Regressor) Predict(features *tensor.Tensor) float64 {
	var concat [3 * branchChannels]float32 // supports up to 3 branches
	if len(r.branches) > len(concat)/branchChannels {
		return r.Forward(features)
	}
	for i, branch := range r.branches {
		v := branch.Infer(features, r.scratch)
		d := v.Data()
		// ReLU in place, then the global average — the same ascending
		// summation order as GlobalAvgPool.Forward.
		n := v.Dim(1) * v.Dim(2)
		inv := 1 / float32(n)
		for ch := 0; ch < branchChannels; ch++ {
			var s float32
			for _, x := range d[ch*n : (ch+1)*n] {
				if x > 0 {
					s += x
				}
			}
			concat[i*branchChannels+ch] = s * inv
		}
		r.scratch.PutTensor(v)
	}
	// Inlined Dense head: y = W·concat + b, ascending-index accumulation
	// exactly as the serial matmul kernel computes it.
	wd := r.fc.Weight.W.Data()
	var s float32
	for p := 0; p < branchChannels*len(r.branches); p++ {
		s += wd[p] * concat[p]
	}
	return float64(s + r.fc.Bias.W.Data()[0])
}

// Backward propagates the scalar loss gradient dt through the module,
// accumulating parameter gradients. Must follow Forward.
func (r *Regressor) Backward(dt float64) {
	if len(r.lastPooled) == 0 {
		panic("regressor: Backward called before Forward")
	}
	dconcat := r.fc.Backward(tensor.FromSlice([]float32{float32(dt)}, 1))
	for i := range r.branches {
		dv := tensor.FromSlice(
			append([]float32(nil), dconcat.Data()[i*branchChannels:(i+1)*branchChannels]...),
			branchChannels)
		r.branches[i].Backward(r.relus[i].Backward(r.pools[i].Backward(dv)))
	}
}

// Params returns all trainable parameters.
func (r *Regressor) Params() []*nn.Param {
	var ps []*nn.Param
	for _, b := range r.branches {
		ps = append(ps, b.Params()...)
	}
	return append(ps, r.fc.Params()...)
}

// Save serialises the regressor weights.
func (r *Regressor) Save(w io.Writer) error { return nn.SaveParams(w, r.Params()) }

// Load restores weights saved by Save into a regressor of identical
// architecture.
func (r *Regressor) Load(rd io.Reader) error { return nn.LoadParams(rd, r.Params()) }

// String describes the architecture.
func (r *Regressor) String() string {
	return fmt.Sprintf("Regressor(kernels=%v, params=%d)", r.Kernels, nn.CountParams(r.Params()))
}
