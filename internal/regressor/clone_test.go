package regressor

import (
	"math/rand"
	"testing"
)

// TestCloneProducesIdenticalPredictions: a cloned regressor must predict
// exactly what the original predicts on the same features.
func TestCloneProducesIdenticalPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := New(rng, DefaultKernels)
	c := r.Clone()
	for i := 0; i < 5; i++ {
		feats := randFeatures(rng, 4+i, 5+i)
		if got, want := c.Forward(feats), r.Forward(feats); got != want {
			t.Fatalf("clone predicts %v, original %v", got, want)
		}
	}
}

// TestCloneIsIndependent: training the clone must leave the original's
// weights (and therefore its predictions) untouched, and vice versa.
func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	r := New(rng, DefaultKernels)
	feats := randFeatures(rng, 6, 6)
	want := r.Forward(feats)

	c := r.Clone()
	labels := []Label{
		{Target: 0.8, Features: randFeatures(rng, 6, 6)},
		{Target: -0.5, Features: randFeatures(rng, 6, 6)},
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	c.Fit(labels, cfg)

	if got := r.Forward(feats); got != want {
		t.Fatalf("training the clone moved the original: %v -> %v", want, got)
	}
	if c.Forward(feats) == want {
		t.Fatal("training the clone did not change the clone (suspicious sharing)")
	}

	// The clone must not share Param objects with the original.
	rp, cp := r.Params(), c.Params()
	if len(rp) != len(cp) {
		t.Fatalf("param counts differ: %d vs %d", len(rp), len(cp))
	}
	for i := range rp {
		if rp[i] == cp[i] {
			t.Fatalf("param %d (%s) is shared between clone and original", i, rp[i].Name)
		}
	}
}

// TestCloneHasNoSharedActivationState: interleaving forward/backward on the
// original and the clone must not corrupt either — the property the
// per-worker clones in the parallel runner rely on.
func TestCloneHasNoSharedActivationState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := New(rng, DefaultKernels)
	c := r.Clone()

	fa := randFeatures(rng, 5, 7)
	fb := randFeatures(rng, 9, 3)

	wantA, wantB := r.Forward(fa), r.Forward(fb)
	gotA := c.Forward(fa)
	// Interleave: original forwards fb while the clone still holds fa's
	// cached activations, then both backprop.
	if got := r.Forward(fb); got != wantB {
		t.Fatalf("original disturbed by clone activity: %v vs %v", got, wantB)
	}
	c.Backward(0.1)
	r.Backward(0.2)
	if gotA != wantA {
		t.Fatalf("clone prediction %v, want %v", gotA, wantA)
	}
}
