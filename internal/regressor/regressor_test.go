package regressor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adascale/internal/rfcn"
	"adascale/internal/synth"
	"adascale/internal/tensor"
)

func TestEncodeTargetRange(t *testing.T) {
	// Extremes of Eq. 3: m=600→m_opt=128 is the strongest down-scale,
	// m=128→m_opt=600 the strongest up-scale.
	if got := EncodeTarget(MaxScale, MinScale); math.Abs(got-(-1)) > 1e-12 {
		t.Fatalf("t(600,128) = %v, want -1", got)
	}
	if got := EncodeTarget(MinScale, MaxScale); math.Abs(got-1) > 1e-12 {
		t.Fatalf("t(128,600) = %v, want +1", got)
	}
	mid := EncodeTarget(480, 480)
	if mid <= -1 || mid >= 1 {
		t.Fatalf("t(480,480) = %v out of (-1,1)", mid)
	}
}

// Property: decode(encode(m, mOpt), m) recovers mOpt for any scale pair in
// range (up to the rounding the paper also performs).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MinScale + rng.Intn(MaxScale-MinScale+1)
		mOpt := MinScale + rng.Intn(MaxScale-MinScale+1)
		return DecodeScale(EncodeTarget(m, mOpt), m) == mOpt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeScaleClips(t *testing.T) {
	if got := DecodeScale(1.5, 600); got != MaxScale {
		t.Fatalf("decode(+1.5) = %d, want clip to %d", got, MaxScale)
	}
	if got := DecodeScale(-1.5, 600); got != MinScale {
		t.Fatalf("decode(-1.5) = %d, want clip to %d", got, MinScale)
	}
	// Identity direction: t for "stay" decodes back to ≈ the base size.
	stay := EncodeTarget(360, 360)
	if got := DecodeScale(stay, 360); got != 360 {
		t.Fatalf("stay decode = %d, want 360", got)
	}
}

func TestDecodeScaleNonFinite(t *testing.T) {
	// A poisoned regressor (NaN/Inf weights) must not poison the scale
	// schedule: a non-finite prediction decodes to the clipped base size,
	// i.e. "keep the current scale".
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := DecodeScale(bad, 360); got != 360 {
			t.Fatalf("decode(%v, 360) = %d, want 360", bad, got)
		}
		// A base outside the test range still comes back clipped.
		if got := DecodeScale(bad, 10_000); got != MaxScale {
			t.Fatalf("decode(%v, 10000) = %d, want %d", bad, got, MaxScale)
		}
		if got := DecodeScale(bad, 1); got != MinScale {
			t.Fatalf("decode(%v, 1) = %d, want %d", bad, got, MinScale)
		}
	}
}

// Property: decoded scale is monotone in t for a fixed base.
func TestDecodeMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 2 || math.Abs(b) > 2 {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return DecodeScale(lo, 400) <= DecodeScale(hi, 400)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randFeatures(rng *rand.Rand, h, w int) *tensor.Tensor {
	f := tensor.New(rfcn.FeatureChannels, h, w)
	f.RandUniform(rng, 0, 1)
	return f
}

func TestForwardScaleAgnostic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := New(rng, DefaultKernels)
	// Different spatial sizes (features from different test scales) must
	// both be accepted — global pooling absorbs the difference.
	_ = r.Forward(randFeatures(rng, 18, 32))
	_ = r.Forward(randFeatures(rng, 4, 7))
}

func TestArchitectureVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kernels := range [][]int{{1}, {1, 3}, {1, 3, 5}} {
		r := New(rng, kernels)
		if len(r.Kernels) != len(kernels) {
			t.Fatalf("kernel set %v not stored", kernels)
		}
		out := r.Forward(randFeatures(rng, 10, 10))
		if math.IsNaN(out) {
			t.Fatalf("NaN output for kernels %v", kernels)
		}
	}
	// Empty kernel list falls back to the paper default.
	r := New(rng, nil)
	if len(r.Kernels) != 2 {
		t.Fatalf("default kernels = %v", r.Kernels)
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	r := New(rand.New(rand.NewSource(3)), DefaultKernels)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Backward(1)
}

func TestFitLearnsSyntheticMapping(t *testing.T) {
	// Features whose mean encodes the target: the module must be able to
	// learn a clean linear relationship.
	rng := rand.New(rand.NewSource(4))
	var labels []Label
	for i := 0; i < 60; i++ {
		target := -0.8 + 1.6*rng.Float64()
		f := tensor.New(rfcn.FeatureChannels, 6, 6)
		f.RandUniform(rng, 0, 0.2)
		for c := 0; c < 4; c++ {
			for j := 0; j < 36; j++ {
				f.Data()[c*36+j] += float32(0.5 + 0.5*target)
			}
		}
		labels = append(labels, Label{Target: target, Features: f})
	}
	r := New(rng, DefaultKernels)
	before := r.MSE(labels)
	losses := r.Fit(labels, TrainConfig{Epochs: 20, BaseLR: 0.05, LRDrops: []float64{0.8}, BatchSize: 2, Seed: 9})
	after := r.MSE(labels)
	if after >= before {
		t.Fatalf("training did not reduce loss: %v → %v", before, after)
	}
	if after > 0.01 {
		t.Fatalf("final MSE %v too high for a linear mapping", after)
	}
	if len(losses) != 20 {
		t.Fatalf("expected 20 epoch losses, got %d", len(losses))
	}
}

func TestFitEmptyAndBatchClamp(t *testing.T) {
	r := New(rand.New(rand.NewSource(5)), DefaultKernels)
	if got := r.Fit(nil, DefaultTrainConfig()); got != nil {
		t.Fatal("fitting no labels must be a no-op")
	}
	rng := rand.New(rand.NewSource(6))
	labels := []Label{{Target: 0, Features: randFeatures(rng, 3, 3)}}
	cfg := DefaultTrainConfig()
	cfg.BatchSize = 0 // must clamp to 1 rather than divide by zero
	r.Fit(labels, cfg)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(rng, DefaultKernels)
	feats := randFeatures(rng, 8, 8)
	want := a.Forward(feats)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(rand.New(rand.NewSource(99)), DefaultKernels)
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := b.Forward(feats); got != want {
		t.Fatalf("loaded regressor predicts %v, want %v", got, want)
	}
	// Architecture mismatch must fail.
	var buf2 bytes.Buffer
	if err := a.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	c := New(rng, []int{1, 3, 5})
	if err := c.Load(&buf2); err == nil {
		t.Fatal("loading mismatched architecture must error")
	}
}

func TestGenerateLabels(t *testing.T) {
	cfg := synth.VIDLike(31)
	cfg.FramesPerSnippet = 3
	ds, _ := synth.Generate(cfg, 4, 0)
	det := rfcn.NewMS(&ds.Config)
	rng := rand.New(rand.NewSource(8))
	labels := GenerateLabels(det, synth.Frames(ds.Train), SReg, rng)
	if len(labels) != 12 {
		t.Fatalf("labels = %d, want 12", len(labels))
	}
	for _, lb := range labels {
		if lb.Target < -1-1e-9 || lb.Target > 1+1e-9 {
			t.Fatalf("target %v outside [-1,1]", lb.Target)
		}
		if !containsInt(SReg, lb.InputScale) {
			t.Fatalf("input scale %d not in SReg", lb.InputScale)
		}
		if !containsInt(SReg, lb.OptScale) {
			t.Fatalf("optimal scale %d not in SReg", lb.OptScale)
		}
		if lb.Features == nil || lb.Features.Dim(0) != rfcn.FeatureChannels {
			t.Fatal("labels must carry cached features")
		}
		if got := EncodeTarget(lb.InputScale, lb.OptScale); got != lb.Target {
			t.Fatalf("target %v inconsistent with Eq.3 (%v)", lb.Target, got)
		}
	}
}

// Integration: trained on real generated labels, the regressor must beat
// the best constant predictor on held-out data — i.e. it extracts signal
// from the deep features.
func TestTrainedRegressorBeatsConstant(t *testing.T) {
	if testing.Short() {
		t.Skip("training integration test")
	}
	cfg := synth.VIDLike(33)
	cfg.FramesPerSnippet = 4
	ds, err := synth.Generate(cfg, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	det := rfcn.NewMS(&ds.Config)
	rng := rand.New(rand.NewSource(10))
	train := GenerateLabelsAllScales(det, synth.Frames(ds.Train), SReg)
	val := GenerateLabelsAllScales(det, synth.Frames(ds.Val), SReg)

	r := New(rng, DefaultKernels)
	r.Fit(train, DefaultTrainConfig())
	got := r.MSE(val)

	// Best constant predictor (mean of validation targets) as baseline.
	var mean float64
	for _, lb := range val {
		mean += lb.Target
	}
	mean /= float64(len(val))
	var constMSE float64
	for _, lb := range val {
		d := mean - lb.Target
		constMSE += 0.5 * d * d
	}
	constMSE /= float64(len(val))

	if got >= constMSE {
		t.Fatalf("trained regressor MSE %v not better than constant baseline %v", got, constMSE)
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
