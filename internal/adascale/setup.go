package adascale

import (
	"math/rand"

	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/synth"
)

// System bundles a trained AdaScale deployment: the (multi-scale
// fine-tuned) detector and its trained scale regressor.
type System struct {
	Detector  *rfcn.Detector
	Regressor *regressor.Regressor
}

// BuildConfig parameterises the Fig. 2 methodology.
type BuildConfig struct {
	// TrainScales is S_train for detector fine-tuning; the paper default
	// is {600, 480, 360, 240}.
	TrainScales []int

	// RegScales is S_reg for label generation; the paper default adds 128.
	RegScales []int

	// Kernels selects the regressor branch architecture (Table 3).
	Kernels []int

	// Train overrides the regressor training recipe; zero value means
	// regressor.DefaultTrainConfig.
	Train regressor.TrainConfig

	// Seed drives regressor initialisation and label-scale sampling.
	Seed int64

	// DenseLabels enumerates every S_reg scale per frame instead of the
	// paper's one-random-scale-per-image draw (useful on small synthetic
	// corpora; see regressor.GenerateLabelsAllScales).
	DenseLabels bool
}

// DefaultBuildConfig returns the paper's configuration with dense labels
// enabled for the synthetic corpus.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		TrainScales: []int{600, 480, 360, 240},
		RegScales:   regressor.SReg,
		Kernels:     regressor.DefaultKernels,
		Train:       regressor.DefaultTrainConfig(),
		Seed:        1,
		DenseLabels: true,
	}
}

// Build runs the full Fig. 2 methodology on a dataset: multi-scale
// fine-tune the detector (behavioural: configure its training scales),
// generate optimal-scale labels over the training split with the Sec. 3.1
// metric, and train the scale regressor. It returns the deployable system.
func Build(ds *synth.Dataset, cfg BuildConfig) *System {
	if len(cfg.TrainScales) == 0 {
		cfg.TrainScales = []int{600, 480, 360, 240}
	}
	if len(cfg.RegScales) == 0 {
		cfg.RegScales = regressor.SReg
	}
	if cfg.Train.Epochs == 0 {
		cfg.Train = regressor.DefaultTrainConfig()
	}
	det := rfcn.New(&ds.Config, cfg.TrainScales)
	rng := rand.New(rand.NewSource(cfg.Seed))
	frames := synth.Frames(ds.Train)
	var labels []regressor.Label
	if cfg.DenseLabels {
		labels = regressor.GenerateLabelsAllScales(det, frames, cfg.RegScales)
	} else {
		labels = regressor.GenerateLabels(det, frames, cfg.RegScales, rng)
	}
	reg := regressor.New(rng, cfg.Kernels)
	reg.Fit(labels, cfg.Train)
	return &System{Detector: det, Regressor: reg}
}
