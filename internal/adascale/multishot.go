package adascale

import (
	"adascale/internal/detect"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// This file implements the extension the paper explicitly leaves as future
// work (Sec. 2.1): "our method could possibly be extended to a multi-shot
// version, i.e., adaptively select multiple scales for a given image".
//
// RunAdaScaleMultiShot keeps Algorithm 1's primary adaptive scale but takes
// a second shot at the top scale whenever the regressor has committed to an
// aggressive down-scale: heavy down-sampling is where small objects are at
// risk, and the paper's own Fig. 9 analysis shows mixed-size frames make the
// regressor jitter. The two shots merge with the detector's NMS. The result
// sits between MS/AdaScale and MS/MS on both axes — most of the multi-shot
// accuracy at a fraction of its cost.

// MultiShotConfig tunes the adaptive multi-shot policy.
type MultiShotConfig struct {
	// SecondShotBelow triggers the extra top-scale shot when the regressed
	// primary scale falls below this value.
	SecondShotBelow int

	// TopScale is the scale of the safety shot.
	TopScale int

	// MinSecondScore gates the safety shot's detections: high resolution
	// re-introduces the clutter false positives AdaScale just removed, so
	// only confident recoveries are merged.
	MinSecondScore float64
}

// DefaultMultiShotConfig triggers the safety shot below scale 360.
func DefaultMultiShotConfig() MultiShotConfig {
	return MultiShotConfig{SecondShotBelow: 360, TopScale: 600, MinSecondScore: 0.55}
}

// RunAdaScaleMultiShot runs the adaptive multi-shot pipeline over a
// snippet. The regressor reads the primary shot's deep features, exactly as
// in Algorithm 1.
func RunAdaScaleMultiShot(det *rfcn.Detector, reg *regressor.Regressor, sn *synth.Snippet, cfg MultiShotConfig) []FrameOutput {
	if cfg.TopScale == 0 {
		cfg = DefaultMultiShotConfig()
	}
	overhead := simclock.RegressorMS(reg.Kernels)
	outputs := make([]FrameOutput, 0, len(sn.Frames))
	targetScale := InitialScale
	for i := range sn.Frames {
		f := &sn.Frames[i]
		r := det.DetectWithFeatures(f, targetScale)
		dets := r.PlainDetections()
		cost := r.RuntimeMS

		if targetScale < cfg.SecondShotBelow {
			second := det.Detect(f, cfg.TopScale)
			cost += second.RuntimeMS
			for i := range second.Detections {
				if d := second.Detections[i].Detection; d.Score >= cfg.MinSecondScore {
					dets = append(dets, d)
				}
			}
			second.Release()
			dets = detect.NMS(dets, rfcn.NMSThreshold, rfcn.TopK)
		}

		outputs = append(outputs, FrameOutput{
			Frame: f, Scale: targetScale,
			Detections: dets,
			DetectorMS: cost,
			OverheadMS: overhead,
		})
		targetScale = regressor.DecodeScale(reg.Predict(r.Features), targetScale)
		det.Recycle(r.Features)
		r.Features = nil
		r.Release()
	}
	return outputs
}
