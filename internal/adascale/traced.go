package adascale

import (
	"adascale/internal/obs"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// This file connects the pipeline's cost accounting to the obs tracing
// layer. Every FrameOutput already carries the modelled cost of its frame
// (DetectorMS, OverheadMS, SeqNMSMS); frameSpans decomposes those numbers
// into per-stage spans on a per-snippet virtual clock, so a trace is a
// pure function of the outputs — byte-identical across runs and worker
// counts — and the stage durations sum exactly to the frame's TotalMS.
//
// There are two ways to attach a tracer and they must not be combined on
// the same runner (spans would record twice):
//
//   - TracedRunner wraps any RunnerFactory and derives spans from the
//     finished outputs. This is what the experiments layer and the bench
//     harness use: it works for every method uniformly.
//   - ResilientConfig.Tracer makes sessions record live from Step, which
//     additionally supports wall-clock measurement of the detect/regress
//     stages (obs.NewWallTracer) for profiling on hardware.

// frameSpans appends one frame's pipeline-stage spans to buf, advancing
// the snippet-local virtual clock, and returns the grown buffer and new
// clock. Stages that cost nothing on this frame are omitted, except
// fault-inject, which is recorded at zero duration whenever a fault was
// observed (injection is modelled as free but the trace should show it).
// detWallMS/regWallMS are optional wall measurements; tr.Dur prefers them
// only in wall mode.
func frameSpans(tr *obs.Tracer, buf []obs.Span, stream, frame int, clockMS float64, o FrameOutput, detWallMS, regWallMS float64) ([]obs.Span, float64) {
	decodeMS, rescaleMS, backboneMS := simclock.SplitDetectMS(o.DetectorMS)
	add := func(st obs.Stage, durMS float64) {
		buf = append(buf, obs.Span{Stream: stream, Frame: frame, Stage: st, StartMS: clockMS, DurMS: durMS})
		clockMS += durMS
	}
	if decodeMS > 0 {
		add(obs.StageDecode, decodeMS)
	}
	if o.Health.Fault != synth.FaultNone {
		add(obs.StageFaultInject, 0)
	}
	if rescaleMS > 0 {
		add(obs.StageRescale, rescaleMS)
	}
	if backboneMS > 0 || detWallMS > 0 {
		add(obs.StageDetect, tr.Dur(backboneMS, detWallMS))
	}
	if o.OverheadMS > 0 || regWallMS > 0 {
		add(obs.StageRegress, tr.Dur(o.OverheadMS, regWallMS))
	}
	if o.SeqNMSMS > 0 {
		add(obs.StageSeqNMS, o.SeqNMSMS)
	}
	return buf, clockMS
}

// FrameSpans returns one finished frame's pipeline-stage spans starting at
// startMS on the caller's clock — the entry point for callers that own
// their own notion of time, like the serving scheduler, whose frames start
// at true event-loop timestamps rather than on a snippet-local clock.
func FrameSpans(tr *obs.Tracer, stream, frame int, startMS float64, o FrameOutput, detWallMS, regWallMS float64) []obs.Span {
	spans, _ := frameSpans(tr, nil, stream, frame, startMS, o, detWallMS, regWallMS)
	return spans
}

// TracedRunner wraps a factory so every runner it produces records
// pipeline-stage spans into tr, derived from each snippet's finished
// outputs (stream = snippet ID, frame = index within the snippet, clock
// starting at 0 per snippet). Each worker buffers its snippet's spans
// locally and merges them with one Add, so the tracer's canonical order —
// and therefore Format() — is identical at any worker count. A nil tracer
// returns the factory unchanged.
func TracedRunner(factory RunnerFactory, tr *obs.Tracer) RunnerFactory {
	if tr == nil {
		return factory
	}
	return func() SnippetRunner {
		run := factory()
		return func(sn *synth.Snippet) []FrameOutput {
			outs := run(sn)
			spans := make([]obs.Span, 0, 4*len(outs))
			clock := 0.0
			for i := range outs {
				spans, clock = frameSpans(tr, spans, sn.ID, i, clock, outs[i], 0, 0)
			}
			tr.Add(spans)
			return outs
		}
	}
}
