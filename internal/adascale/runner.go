package adascale

import (
	"fmt"
	"math/rand"

	"adascale/internal/parallel"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/synth"
)

// SnippetRunner runs one testing protocol over one snippet.
type SnippetRunner func(*synth.Snippet) []FrameOutput

// RunnerFactory yields an independent SnippetRunner per worker. The
// parallel dataset runner calls the factory once per worker goroutine, so a
// factory that clones its detector/regressor makes the whole fan-out safe:
// the nn layers cache activations between calls and must not be shared.
type RunnerFactory func() SnippetRunner

// SharedRunner adapts a goroutine-safe runner (one that touches no mutable
// state) into a RunnerFactory without cloning anything.
func SharedRunner(run SnippetRunner) RunnerFactory {
	return func() SnippetRunner { return run }
}

// FixedRunner returns a factory for RunFixed at the given scale. Each
// worker gets its own detector clone.
func FixedRunner(det *rfcn.Detector, scale int) RunnerFactory {
	return func() SnippetRunner {
		d := det.Clone()
		return func(sn *synth.Snippet) []FrameOutput { return RunFixed(d, sn, scale) }
	}
}

// AdaScaleRunner returns a factory for Algorithm 1. Each worker gets its
// own detector and regressor clones (both drive stateful layers).
func AdaScaleRunner(det *rfcn.Detector, reg *regressor.Regressor) RunnerFactory {
	return func() SnippetRunner {
		d, r := det.Clone(), reg.Clone()
		return func(sn *synth.Snippet) []FrameOutput { return RunAdaScale(d, r, sn) }
	}
}

// AdaScaleMultiShotRunner returns a factory for the adaptive multi-shot
// extension.
func AdaScaleMultiShotRunner(det *rfcn.Detector, reg *regressor.Regressor, cfg MultiShotConfig) RunnerFactory {
	return func() SnippetRunner {
		d, r := det.Clone(), reg.Clone()
		return func(sn *synth.Snippet) []FrameOutput { return RunAdaScaleMultiShot(d, r, sn, cfg) }
	}
}

// MultiShotRunner returns a factory for MS/MS testing over scales.
func MultiShotRunner(det *rfcn.Detector, scales []int) RunnerFactory {
	s := append([]int(nil), scales...)
	return func() SnippetRunner {
		d := det.Clone()
		return func(sn *synth.Snippet) []FrameOutput { return RunMultiShot(d, sn, s) }
	}
}

// RandomRunner returns a factory for MS/Random testing. Unlike RunRandom's
// shared stream, the scale draws are seeded per snippet (mixed from seed
// and the snippet ID), so the output is identical for any worker count or
// snippet schedule.
func RandomRunner(det *rfcn.Detector, scales []int, seed int64) RunnerFactory {
	s := append([]int(nil), scales...)
	return func() SnippetRunner {
		d := det.Clone()
		return func(sn *synth.Snippet) []FrameOutput {
			rng := rand.New(rand.NewSource(snippetSeed(seed, sn.ID)))
			return RunRandom(d, sn, s, rng)
		}
	}
}

// snippetSeed mixes a base seed and a snippet ID (splitmix64 finaliser)
// into an independent per-snippet stream.
func snippetSeed(base int64, id int) int64 {
	z := uint64(base) + uint64(id)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// RunDataset fans the snippets of a split across the worker pool (see
// internal/parallel; the -workers flag and parallel.SetWorkers bound it)
// and concatenates the per-snippet outputs in snippet order. Snippets are
// independent by construction — all detector randomness derives from
// per-frame seeds — so the output stream is identical to RunDatasetSerial
// for any worker count.
func RunDataset(snippets []synth.Snippet, factory RunnerFactory) []FrameOutput {
	perSnippet := parallel.MapWorkers(len(snippets), factory,
		func(run SnippetRunner, i int) []FrameOutput { return run(&snippets[i]) })
	out := make([]FrameOutput, 0, totalFrames(snippets))
	for _, outs := range perSnippet {
		out = append(out, outs...)
	}
	return out
}

// SnippetError reports a snippet whose runner panicked during
// RunDatasetPartial; the run continued without it.
type SnippetError struct {
	// Index is the snippet's position in the input slice; ID its synth ID.
	Index int
	ID    int
	Err   error
}

// Error implements the error interface.
func (e SnippetError) Error() string {
	return fmt.Sprintf("snippet %d (index %d): %v", e.ID, e.Index, e.Err)
}

// RunDatasetPartial is RunDataset with graceful degradation: a snippet
// whose runner panics is recovered into a SnippetError (the last rung of
// the degradation ladder) and its frames are emitted as explicit
// FallbackPanic placeholders — no detections, but full accounting — so one
// poisoned snippet cannot take down a whole evaluation. Errors come back
// sorted by snippet index. With no panics the output is byte-identical to
// RunDataset.
func RunDatasetPartial(snippets []synth.Snippet, factory RunnerFactory) ([]FrameOutput, []SnippetError) {
	perSnippet, itemErrs := parallel.MapWorkersPartial(len(snippets), factory,
		func(run SnippetRunner, i int) []FrameOutput { return run(&snippets[i]) })
	errs := make([]SnippetError, len(itemErrs))
	for k, ie := range itemErrs {
		errs[k] = SnippetError{Index: ie.Index, ID: snippets[ie.Index].ID, Err: ie.Err}
		// Replace the zero-value slot with per-frame placeholders so the
		// output stream still accounts for every frame of the dataset.
		sn := &snippets[ie.Index]
		outs := make([]FrameOutput, len(sn.Frames))
		for j := range sn.Frames {
			f := &sn.Frames[j]
			var h Health
			if f.Fault != nil {
				h.Fault = f.Fault.Kind
			}
			h.Fallback = FallbackPanic
			outs[j] = FrameOutput{Frame: f, Scale: InitialScale, Health: h}
		}
		perSnippet[ie.Index] = outs
	}
	out := make([]FrameOutput, 0, totalFrames(snippets))
	for _, outs := range perSnippet {
		out = append(out, outs...)
	}
	return out, errs
}

// RunDatasetSerial applies a per-snippet runner across a split on the
// calling goroutine and concatenates the outputs — the reference the
// determinism tests compare the parallel runner against.
func RunDatasetSerial(snippets []synth.Snippet, run SnippetRunner) []FrameOutput {
	out := make([]FrameOutput, 0, totalFrames(snippets))
	for i := range snippets {
		out = append(out, run(&snippets[i])...)
	}
	return out
}

// totalFrames pre-sizes dataset-runner outputs: one output per frame.
func totalFrames(snippets []synth.Snippet) int {
	n := 0
	for i := range snippets {
		n += len(snippets[i].Frames)
	}
	return n
}
