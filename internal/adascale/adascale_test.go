package adascale

import (
	"math/rand"
	"sync"
	"testing"

	"adascale/internal/detect"
	"adascale/internal/eval"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/synth"
)

// sharedSystem builds one trained system on a mid-size VID-like corpus and
// reuses it across the tests in this package (building costs several
// seconds of detector sweeps + regressor training).
var (
	buildOnce sync.Once
	sharedDS  *synth.Dataset
	sharedSys *System
)

func system(t *testing.T) (*synth.Dataset, *System) {
	t.Helper()
	buildOnce.Do(func() {
		cfg := synth.VIDLike(5)
		ds, err := synth.Generate(cfg, 60, 30)
		if err != nil {
			t.Fatal(err)
		}
		sharedDS = ds
		sharedSys = Build(ds, DefaultBuildConfig())
	})
	return sharedDS, sharedSys
}

// ToEval converts outputs for the eval package (kept as a test helper here;
// the experiments package has the canonical converter).
func toEval(outputs []FrameOutput) []eval.FrameDetections {
	out := make([]eval.FrameDetections, len(outputs))
	for i, o := range outputs {
		out[i] = eval.FrameDetections{Detections: o.Detections, GroundTruth: o.Frame.GroundTruth()}
	}
	return out
}

func TestRunFixedUsesRequestedScale(t *testing.T) {
	ds, sys := system(t)
	outs := RunFixed(sys.Detector, &ds.Val[0], 360)
	if len(outs) != len(ds.Val[0].Frames) {
		t.Fatalf("outputs %d, frames %d", len(outs), len(ds.Val[0].Frames))
	}
	for _, o := range outs {
		if o.Scale != 360 {
			t.Fatalf("scale %d, want 360", o.Scale)
		}
		if o.OverheadMS != 0 {
			t.Fatal("fixed-scale testing has no regressor overhead")
		}
	}
}

func TestAlgorithm1StartsAt600AndAdapts(t *testing.T) {
	ds, sys := system(t)
	adapted := false
	for i := range ds.Val {
		outs := RunAdaScale(sys.Detector, sys.Regressor, &ds.Val[i])
		if outs[0].Scale != InitialScale {
			t.Fatalf("first frame scale %d, want %d", outs[0].Scale, InitialScale)
		}
		for _, o := range outs {
			if o.Scale < regressor.MinScale || o.Scale > regressor.MaxScale {
				// The initial 600 is exactly MaxScale, so any violation is
				// a decode/clip bug.
				t.Fatalf("scale %d outside [%d, %d]", o.Scale, regressor.MinScale, regressor.MaxScale)
			}
			if o.OverheadMS <= 0 {
				t.Fatal("AdaScale must charge the regressor overhead")
			}
			if o.Scale != InitialScale {
				adapted = true
			}
		}
	}
	if !adapted {
		t.Fatal("the regressor never changed the scale on any validation snippet")
	}
}

func TestAdaScaleDeterministic(t *testing.T) {
	ds, sys := system(t)
	a := RunAdaScale(sys.Detector, sys.Regressor, &ds.Val[1])
	b := RunAdaScale(sys.Detector, sys.Regressor, &ds.Val[1])
	for i := range a {
		if a[i].Scale != b[i].Scale || len(a[i].Detections) != len(b[i].Detections) {
			t.Fatal("AdaScale run not deterministic")
		}
	}
}

// The headline result (Table 1 shape): MS/AdaScale improves mAP over SS/SS
// while being substantially faster, MS/SS sits slightly below SS/SS, and
// MS/Random falls short of AdaScale.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	ds, sys := system(t)
	nC := len(ds.Config.Classes)
	ssDet := rfcn.NewSS(&ds.Config)

	ss := RunDataset(ds.Val, FixedRunner(ssDet, 600))
	ms := RunDataset(ds.Val, FixedRunner(sys.Detector, 600))
	ada := RunDataset(ds.Val, AdaScaleRunner(sys.Detector, sys.Regressor))
	rnd := RunDataset(ds.Val, RandomRunner(sys.Detector, regressor.SReg, 7))

	mAP := func(outs []FrameOutput) float64 { return eval.Evaluate(toEval(outs), nC).MAP }
	ssMAP, msMAP, adaMAP, rndMAP := mAP(ss), mAP(ms), mAP(ada), mAP(rnd)

	if adaMAP <= ssMAP {
		t.Fatalf("MS/AdaScale (%.3f) must beat SS/SS (%.3f)", adaMAP, ssMAP)
	}
	if adaMAP <= msMAP {
		t.Fatalf("MS/AdaScale (%.3f) must beat MS/SS (%.3f)", adaMAP, msMAP)
	}
	// The paper's MS/SS dip below SS/SS is small (−0.9 mAP); assert only
	// that multi-scale training does not meaningfully beat SS at 600.
	if msMAP >= ssMAP+0.01 {
		t.Fatalf("MS/SS (%.3f) should not exceed SS/SS (%.3f) by ≥1 point (Table 1a)", msMAP, ssMAP)
	}
	if rndMAP >= adaMAP {
		t.Fatalf("MS/Random (%.3f) must not reach MS/AdaScale (%.3f)", rndMAP, adaMAP)
	}

	ssMS, adaMS := MeanRuntimeMS(ss), MeanRuntimeMS(ada)
	if speedup := ssMS / adaMS; speedup < 1.3 {
		t.Fatalf("AdaScale speedup %.2f× too small (paper: 1.6×)", speedup)
	}
}

func TestRunRandomDrawsFromGivenScales(t *testing.T) {
	ds, sys := system(t)
	rng := rand.New(rand.NewSource(1))
	scales := []int{600, 240}
	outs := RunRandom(sys.Detector, &ds.Val[2], scales, rng)
	seen := map[int]bool{}
	for _, o := range outs {
		if o.Scale != 600 && o.Scale != 240 {
			t.Fatalf("scale %d not in the requested set", o.Scale)
		}
		seen[o.Scale] = true
	}
	if len(seen) < 2 {
		t.Log("warning: random runner drew a single scale on a short snippet")
	}
}

func TestRunMultiShotMergesAndSumsCost(t *testing.T) {
	ds, sys := system(t)
	scales := []int{600, 360}
	outs := RunMultiShot(sys.Detector, &ds.Val[3], scales)
	single := RunFixed(sys.Detector, &ds.Val[3], 600)
	for i, o := range outs {
		if o.DetectorMS <= single[i].DetectorMS {
			t.Fatal("multi-shot cost must exceed single-scale cost")
		}
		// Merged output respects NMS: no same-class heavy overlaps.
		for a := range o.Detections {
			for b := a + 1; b < len(o.Detections); b++ {
				da, db := o.Detections[a], o.Detections[b]
				if da.Class == db.Class && detect.IoU(da.Box, db.Box) > rfcn.NMSThreshold {
					t.Fatal("multi-shot merge left overlapping same-class boxes")
				}
			}
		}
	}
}

func TestMeanHelpers(t *testing.T) {
	if MeanRuntimeMS(nil) != 0 || MeanScale(nil) != 0 {
		t.Fatal("means of no outputs must be 0")
	}
	outs := []FrameOutput{
		{Scale: 600, DetectorMS: 70, OverheadMS: 2},
		{Scale: 200, DetectorMS: 26, OverheadMS: 2},
	}
	if got := MeanRuntimeMS(outs); got != 50 {
		t.Fatalf("MeanRuntimeMS = %v", got)
	}
	if got := MeanScale(outs); got != 400 {
		t.Fatalf("MeanScale = %v", got)
	}
}

func TestBuildConfigDefaults(t *testing.T) {
	ds, _ := system(t)
	// A zero-value BuildConfig must be filled with the paper defaults.
	small := &synth.Dataset{Config: ds.Config, Train: ds.Train[:2]}
	sys := Build(small, BuildConfig{})
	if !sys.Detector.MultiScale() {
		t.Fatal("default build must use the multi-scale detector")
	}
	if got := len(sys.Detector.TrainScales); got != 4 {
		t.Fatalf("default S_train size %d, want 4", got)
	}
	if len(sys.Regressor.Kernels) != 2 {
		t.Fatalf("default kernels %v", sys.Regressor.Kernels)
	}
}
