package adascale

import (
	"testing"

	"adascale/internal/eval"
)

func TestMultiShotBetweenAdaScaleAndMultiScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	ds, sys := system(t)
	nC := len(ds.Config.Classes)

	ada := RunDataset(ds.Val, AdaScaleRunner(sys.Detector, sys.Regressor))
	multi := RunDataset(ds.Val, AdaScaleMultiShotRunner(sys.Detector, sys.Regressor, DefaultMultiShotConfig()))
	full := RunDataset(ds.Val, MultiShotRunner(sys.Detector, []int{600, 480, 360, 240}))

	mAP := func(outs []FrameOutput) float64 { return eval.Evaluate(toEval(outs), nC).MAP }
	adaM, multiM, fullM := mAP(ada), mAP(multi), mAP(full)
	adaMS, multiMS, fullMS := MeanRuntimeMS(ada), MeanRuntimeMS(multi), MeanRuntimeMS(full)

	// Measured finding (recorded in EXPERIMENTS.md): the safety shot
	// roughly breaks even — its recall gains are offset by the confident
	// high-resolution false positives it re-introduces, consistent with
	// the paper leaving multi-shot as future work rather than claiming a
	// win. Assert it stays within a point of single-shot AdaScale.
	if multiM < adaM-0.01 {
		t.Fatalf("adaptive multi-shot mAP %.3f fell more than a point below single-shot %.3f", multiM, adaM)
	}
	if multiMS <= adaMS {
		t.Fatalf("the safety shot must cost something: %.1f vs %.1f ms", multiMS, adaMS)
	}
	if multiMS >= fullMS {
		t.Fatalf("adaptive multi-shot (%.1f ms) must stay well below full MS/MS (%.1f ms)", multiMS, fullMS)
	}
	if fullM < multiM-0.02 {
		t.Fatalf("full multi-shot (%.3f) should not be clearly beaten by the adaptive variant (%.3f)", fullM, multiM)
	}
}

func TestMultiShotZeroConfigUsesDefaults(t *testing.T) {
	ds, sys := system(t)
	outs := RunAdaScaleMultiShot(sys.Detector, sys.Regressor, &ds.Val[0], MultiShotConfig{})
	if len(outs) != len(ds.Val[0].Frames) {
		t.Fatal("output count mismatch")
	}
	for _, o := range outs {
		if o.Scale < 360 && o.DetectorMS < 75 {
			t.Fatal("aggressive down-scale frames must include the safety shot cost")
		}
	}
}
