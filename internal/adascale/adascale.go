// Package adascale is the paper's deployment pipeline: Algorithm 1 (video
// object detection with adaptive scaling) plus the comparison methods of
// Sec. 4.3 — single-scale testing (SS), multi-scale multi-shot testing
// (MS/MS), and random-scale testing (MS/Random).
//
// Algorithm 1 exploits temporal consistency: the regressor reads the
// current frame's deep features (computed at the scale the frame was just
// detected at) and predicts the scale for the *next* frame; the first frame
// of every snippet starts at scale 600.
package adascale

import (
	"math/rand"

	"adascale/internal/detect"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// InitialScale is Algorithm 1's starting scale for every video snippet.
const InitialScale = 600

// FrameOutput is one frame's detection outcome plus cost accounting.
type FrameOutput struct {
	Frame *synth.Frame
	Scale int

	Detections []detect.Detection

	// DetectorMS is the modelled detection cost; OverheadMS is any extra
	// per-frame cost (scale regressor, flow); SeqNMSMS is the Seq-NMS
	// post-processing cost, kept separate so the tracer can attribute it
	// as its own pipeline stage.
	DetectorMS float64
	OverheadMS float64
	SeqNMSMS   float64

	// Health records the frame's fault/degradation accounting (resilient.go).
	// The zero value means "clean frame, no fallback".
	Health Health
}

// TotalMS returns the frame's full modelled runtime.
func (o FrameOutput) TotalMS() float64 { return o.DetectorMS + o.OverheadMS + o.SeqNMSMS }

// MeanRuntimeMS averages total per-frame runtime over outputs.
func MeanRuntimeMS(outputs []FrameOutput) float64 {
	if len(outputs) == 0 {
		return 0
	}
	var sum float64
	for _, o := range outputs {
		sum += o.TotalMS()
	}
	return sum / float64(len(outputs))
}

// MeanScale averages the tested scale over outputs.
func MeanScale(outputs []FrameOutput) float64 {
	if len(outputs) == 0 {
		return 0
	}
	var sum float64
	for _, o := range outputs {
		sum += float64(o.Scale)
	}
	return sum / float64(len(outputs))
}

// RunFixed detects every frame of the snippet at a fixed scale (the SS
// testing protocol; scale 600 reproduces the SS/SS and MS/SS baselines).
func RunFixed(det *rfcn.Detector, sn *synth.Snippet, scale int) []FrameOutput {
	outputs := make([]FrameOutput, 0, len(sn.Frames))
	for i := range sn.Frames {
		f := &sn.Frames[i]
		r := det.Detect(f, scale)
		outputs = append(outputs, FrameOutput{
			Frame: f, Scale: scale,
			Detections: r.PlainDetections(),
			DetectorMS: r.RuntimeMS,
		})
		r.Release()
	}
	return outputs
}

// RunAdaScale implements Algorithm 1. The regressor's per-frame overhead is
// charged according to its kernel set.
func RunAdaScale(det *rfcn.Detector, reg *regressor.Regressor, sn *synth.Snippet) []FrameOutput {
	overhead := simclock.RegressorMS(reg.Kernels)
	outputs := make([]FrameOutput, 0, len(sn.Frames))
	targetScale := InitialScale
	for i := range sn.Frames {
		f := &sn.Frames[i]
		// image = resize(image, targetScale); detect with deep features.
		r := det.DetectWithFeatures(f, targetScale)
		outputs = append(outputs, FrameOutput{
			Frame: f, Scale: targetScale,
			Detections: r.PlainDetections(),
			DetectorMS: r.RuntimeMS,
			OverheadMS: overhead,
		})
		// Regress t, invert Eq. 3 against the current base size, then
		// round and clip — the scale for the next frame.
		t := reg.Predict(r.Features)
		det.Recycle(r.Features)
		r.Features = nil
		r.Release()
		targetScale = regressor.DecodeScale(t, targetScale)
	}
	return outputs
}

// RunRandom detects each frame at a scale drawn uniformly from scales — the
// MS/Random control of Fig. 5/6 showing AdaScale's gains are not an
// artefact of merely varying the scale.
func RunRandom(det *rfcn.Detector, sn *synth.Snippet, scales []int, rng *rand.Rand) []FrameOutput {
	outputs := make([]FrameOutput, 0, len(sn.Frames))
	for i := range sn.Frames {
		f := &sn.Frames[i]
		scale := scales[rng.Intn(len(scales))]
		r := det.Detect(f, scale)
		outputs = append(outputs, FrameOutput{
			Frame: f, Scale: scale,
			Detections: r.PlainDetections(),
			DetectorMS: r.RuntimeMS,
		})
		r.Release()
	}
	return outputs
}

// RunMultiShot is MS/MS testing: every frame is detected at all the given
// scales and the union of detections is merged with NMS. Accuracy-oriented
// and expensive — the detector cost is the sum over scales.
func RunMultiShot(det *rfcn.Detector, sn *synth.Snippet, scales []int) []FrameOutput {
	outputs := make([]FrameOutput, 0, len(sn.Frames))
	var all []detect.Detection // union buffer, reused across frames
	for i := range sn.Frames {
		f := &sn.Frames[i]
		all = all[:0]
		var cost float64
		for _, s := range scales {
			r := det.Detect(f, s)
			all = r.AppendDetections(all)
			cost += r.RuntimeMS
			r.Release()
		}
		merged := detect.NMS(all, rfcn.NMSThreshold, rfcn.TopK)
		outputs = append(outputs, FrameOutput{
			Frame: f, Scale: scales[0],
			Detections: merged,
			DetectorMS: cost,
		})
	}
	return outputs
}
