package adascale

import (
	"testing"

	"adascale/internal/parallel"
)

// assertSameOutputs compares two FrameOutput streams for identical order
// and values (frame identity, scale, costs, and full detection lists).
func assertSameOutputs(t *testing.T, want, got []FrameOutput) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("output length %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Frame != g.Frame {
			t.Fatalf("output %d: frame pointer mismatch", i)
		}
		if w.Scale != g.Scale || w.DetectorMS != g.DetectorMS || w.OverheadMS != g.OverheadMS {
			t.Fatalf("output %d: (scale %d, det %v, over %v), want (%d, %v, %v)",
				i, g.Scale, g.DetectorMS, g.OverheadMS, w.Scale, w.DetectorMS, w.OverheadMS)
		}
		if len(w.Detections) != len(g.Detections) {
			t.Fatalf("output %d: %d detections, want %d", i, len(g.Detections), len(w.Detections))
		}
		for j := range w.Detections {
			if w.Detections[j] != g.Detections[j] {
				t.Fatalf("output %d detection %d: %+v, want %+v", i, j, g.Detections[j], w.Detections[j])
			}
		}
	}
}

// TestRunDatasetParallelMatchesSerial is the determinism contract of the
// parallel execution engine: for every protocol, fanning the snippets
// across workers with per-worker clones must reproduce the serial output
// stream exactly — order and values.
func TestRunDatasetParallelMatchesSerial(t *testing.T) {
	ds, sys := system(t)

	factories := map[string]RunnerFactory{
		"fixed":     FixedRunner(sys.Detector, 480),
		"adascale":  AdaScaleRunner(sys.Detector, sys.Regressor),
		"multishot": MultiShotRunner(sys.Detector, []int{600, 360}),
		"random":    RandomRunner(sys.Detector, []int{600, 480, 360, 240, 128}, 42),
	}
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			t.Cleanup(func() { parallel.SetWorkers(0) }) // guard the t.Fatal paths below
			serial := RunDatasetSerial(ds.Val, factory())
			for _, workers := range []int{2, 4, 7} {
				parallel.SetWorkers(workers)
				got := RunDataset(ds.Val, factory)
				parallel.SetWorkers(0)
				assertSameOutputs(t, serial, got)
			}
		})
	}
}

// TestRunDatasetEmptySplit covers the zero-snippet edge of both paths.
func TestRunDatasetEmptySplit(t *testing.T) {
	_, sys := system(t)
	factory := FixedRunner(sys.Detector, 600)
	if got := RunDataset(nil, factory); len(got) != 0 {
		t.Fatalf("parallel: %d outputs from empty split", len(got))
	}
	if got := RunDatasetSerial(nil, factory()); len(got) != 0 {
		t.Fatalf("serial: %d outputs from empty split", len(got))
	}
}

// TestRandomRunnerDeterministicPerSnippet ensures the per-snippet seeding
// gives the same scales no matter how often or in what order snippets run.
func TestRandomRunnerDeterministicPerSnippet(t *testing.T) {
	ds, sys := system(t)
	factory := RandomRunner(sys.Detector, []int{600, 360, 128}, 9)
	run := factory()
	a := run(&ds.Val[3])
	b := factory()(&ds.Val[3])
	for i := range a {
		if a[i].Scale != b[i].Scale {
			t.Fatalf("frame %d: scale %d vs %d across repeated runs", i, a[i].Scale, b[i].Scale)
		}
	}
}
