package adascale

import (
	"strings"
	"testing"

	"adascale/internal/detect"
	"adascale/internal/synth"
)

// TestTraceLineFormatStable pins the canonical trace grammar: the golden
// conformance files (internal/regress/testdata/golden) are written in this
// format, so any change here must be deliberate and regenerate them.
func TestTraceLineFormatStable(t *testing.T) {
	sn := synth.Snippet{ID: 12, Frames: make([]synth.Frame, 1)}
	sn.Frames[0] = synth.Frame{SnippetID: 12, Index: 3}
	o := FrameOutput{
		Frame: &sn.Frames[0],
		Scale: 480,
		Detections: []detect.Detection{
			{Box: detect.Box{X1: 1, Y1: 2, X2: 30, Y2: 40}, Class: 5, Score: 0.875},
		},
		DetectorMS: 50,
		OverheadMS: 2,
	}
	got := TraceLine(&o)
	want := "s012/03 scale=480 dets=1 digest=" // prefix before the hash
	if !strings.HasPrefix(got, want) {
		t.Fatalf("TraceLine = %q, want prefix %q", got, want)
	}
	if !strings.HasSuffix(got, " ms=52.000 fb=none fault=none") {
		t.Fatalf("TraceLine suffix wrong: %q", got)
	}
	if got != TraceLine(&o) {
		t.Fatal("TraceLine not reproducible")
	}
}

// TestDetectionDigestSensitivity: the digest must move when any emitted
// field moves, and must not depend on anything but the detections.
func TestDetectionDigestSensitivity(t *testing.T) {
	base := []detect.Detection{
		{Box: detect.Box{X1: 1, Y1: 2, X2: 30, Y2: 40}, Class: 5, Score: 0.875},
		{Box: detect.Box{X1: 5, Y1: 5, X2: 9, Y2: 9}, Class: 1, Score: 0.25},
	}
	ref := DetectionDigest(base)
	if DetectionDigest(nil) == ref {
		t.Fatal("empty set digests like a populated one")
	}
	mutations := []func(d []detect.Detection){
		func(d []detect.Detection) { d[0].Class = 6 },
		func(d []detect.Detection) { d[0].Score += 0.001 },
		func(d []detect.Detection) { d[1].Box.X2 += 0.5 },
		func(d []detect.Detection) { d[0], d[1] = d[1], d[0] }, // order matters
	}
	for i, mutate := range mutations {
		dets := append([]detect.Detection(nil), base...)
		mutate(dets)
		if DetectionDigest(dets) == ref {
			t.Errorf("mutation %d did not change the digest", i)
		}
	}
	// GTIndex is diagnostic, not output: it must not affect the digest.
	dets := append([]detect.Detection(nil), base...)
	dets[0].GTIndex = 7
	if DetectionDigest(dets) != ref {
		t.Error("GTIndex leaked into the digest")
	}
}

// TestFormatTraceOneLinePerFrame checks the stream serialization shape.
func TestFormatTraceOneLinePerFrame(t *testing.T) {
	sn := synth.Snippet{ID: 1, Frames: make([]synth.Frame, 3)}
	var outs []FrameOutput
	for i := range sn.Frames {
		sn.Frames[i] = synth.Frame{SnippetID: 1, Index: i}
		outs = append(outs, FrameOutput{Frame: &sn.Frames[i], Scale: 600})
	}
	got := FormatTrace(outs)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("FormatTrace emitted %d lines for 3 frames:\n%s", len(lines), got)
	}
	if FormatTrace(nil) != "" {
		t.Fatal("empty stream must serialize to empty trace")
	}
}
