package adascale

import (
	"fmt"
	"math"
	"strings"

	"adascale/internal/detect"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// This file is the graceful-degradation wrapper around Algorithm 1. The
// plain AdaScale loop assumes a pristine camera feed and a well-behaved
// regressor; deployed vision systems get neither. RunResilient keeps
// producing detections — degraded, not absent — through a fixed fallback
// order (the degradation ladder):
//
//  1. Sensor-observable faults (dropped / stale / blacked-out frames, see
//     synth.Fault.SensorObservable) never reach the detector: the last
//     good detections are propagated with a confidence decay.
//  2. A detector pass that comes back empty on a degraded frame
//     (overexposure, noise burst) also propagates the last good
//     detections instead of emitting nothing.
//  3. Every regressor prediction is validated: out-of-range t is clamped;
//     a non-finite t falls back to the last scale that produced
//     detections, then to the InitialScale default.
//  4. A per-frame deadline (modelled runtime, internal/simclock.Budget)
//     forces the next-lower test scale while the rolling budget is
//     exceeded, and relaxes one rung at a time when headroom returns.
//  5. A panicking snippet runner is recovered into a structured error with
//     placeholder outputs (RunDatasetPartial), so partial results survive.
//
// Every frame carries a Health record, so no frame is ever emitted without
// detections or explicit degradation accounting.

// Fallback identifies which rung of the degradation ladder produced a
// frame's output.
type Fallback uint8

const (
	// FallbackNone: the normal detect→regress path ran.
	FallbackNone Fallback = iota

	// FallbackPropagate: last-good detections were propagated in place of
	// running the detector on garbage (or in place of an empty result on a
	// degraded frame).
	FallbackPropagate

	// FallbackEmpty: propagation was wanted but there were no last-good
	// detections (or the propagation horizon was exhausted); the frame
	// explicitly emits no detections.
	FallbackEmpty

	// FallbackLastScale: the regressor prediction was invalid and the next
	// frame reuses the last scale that produced detections.
	FallbackLastScale

	// FallbackDefaultScale: the prediction was invalid with no last-good
	// scale to fall back to; the next frame uses InitialScale.
	FallbackDefaultScale

	// FallbackPanic: the snippet runner panicked; this is a recovered
	// placeholder output (RunDatasetPartial).
	FallbackPanic

	numFallbacks
)

// NumFallbacks sizes per-rung counter arrays.
const NumFallbacks = int(numFallbacks)

// String names the fallback rung for reports.
func (f Fallback) String() string {
	switch f {
	case FallbackNone:
		return "none"
	case FallbackPropagate:
		return "propagate"
	case FallbackEmpty:
		return "empty"
	case FallbackLastScale:
		return "last-scale"
	case FallbackDefaultScale:
		return "default-scale"
	case FallbackPanic:
		return "panic"
	default:
		return fmt.Sprintf("fallback(%d)", uint8(f))
	}
}

// Health is one frame's fault and degradation accounting.
type Health struct {
	// Fault is the injected fault observed on the frame (synth.FaultNone
	// for a clean frame).
	Fault synth.FaultKind

	// Fallback is the degradation-ladder rung that produced the output.
	Fallback Fallback

	// Propagated marks detections carried over from the last good frame.
	Propagated bool

	// PredictionClamped marks an invalid (non-finite or out-of-range)
	// regressor prediction that was clamped or replaced.
	PredictionClamped bool

	// DeadlineForced marks a frame whose test scale was forced down by the
	// per-frame deadline budget.
	DeadlineForced bool

	// RecoveredAfter is set on the first content-clean frame after a run
	// of degraded frames: the length of that run (frames-to-recover).
	RecoveredAfter int
}

// Degraded reports whether the frame needed any rung of the ladder.
func (h Health) Degraded() bool {
	return h.Fault != synth.FaultNone || h.Fallback != FallbackNone ||
		h.Propagated || h.PredictionClamped || h.DeadlineForced
}

// ResilientConfig tunes the degradation ladder.
type ResilientConfig struct {
	// DeadlineMS is the per-frame modelled-runtime deadline; 0 disables
	// deadline enforcement.
	DeadlineMS float64

	// BudgetWindow is the rolling window (frames) of the deadline budget;
	// 0 means 8.
	BudgetWindow int

	// PropagateDecay is the per-propagated-frame confidence decay applied
	// to carried-over detections; 0 means 0.9.
	PropagateDecay float64

	// MaxPropagate bounds consecutive propagated frames before the ladder
	// gives up and emits an explicitly-empty frame (stale detections
	// eventually do more harm than good); 0 means 12.
	MaxPropagate int
}

// DefaultResilientConfig returns the standard ladder tuning.
func DefaultResilientConfig() ResilientConfig {
	return ResilientConfig{PropagateDecay: 0.9, BudgetWindow: 8, MaxPropagate: 12}
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.BudgetWindow <= 0 {
		c.BudgetWindow = 8
	}
	if c.PropagateDecay <= 0 || c.PropagateDecay > 1 {
		c.PropagateDecay = 0.9
	}
	if c.MaxPropagate <= 0 {
		c.MaxPropagate = 12
	}
	return c
}

// deadlineLadder is the scale ladder the deadline enforcement walks — the
// paper's S_reg test-scale set, descending.
var deadlineLadder = []int{600, 480, 360, 240, 128}

// nextLowerScale returns the largest ladder scale strictly below s (s if
// already at the bottom).
func nextLowerScale(s int) int {
	for _, v := range deadlineLadder {
		if v < s {
			return v
		}
	}
	return s
}

// nextHigherScale returns the smallest ladder scale strictly above s (s if
// already at the top).
func nextHigherScale(s int) int {
	for i := len(deadlineLadder) - 1; i >= 0; i-- {
		if deadlineLadder[i] > s {
			return deadlineLadder[i]
		}
	}
	return s
}

// RunResilient runs Algorithm 1 over a snippet with the degradation
// ladder. With a clean stream, a finite regressor and no deadline it emits
// exactly what RunAdaScale emits (pinned by test), so resilience costs
// nothing when nothing goes wrong.
func RunResilient(det *rfcn.Detector, reg *regressor.Regressor, sn *synth.Snippet, cfg ResilientConfig) []FrameOutput {
	cfg = cfg.withDefaults()
	overhead := simclock.RegressorMS(reg.Kernels)
	budget := simclock.NewBudget(cfg.DeadlineMS, cfg.BudgetWindow)
	outputs := make([]FrameOutput, 0, len(sn.Frames))

	targetScale := InitialScale
	scaleCap := regressor.MaxScale // deadline enforcement lowers this
	lastGoodScale := 0             // last scale that produced detections (0 = none yet)
	var lastDets []detect.Detection
	propagated := 0  // consecutive propagated frames
	degradedRun := 0 // consecutive content-degraded frames (frames-to-recover)

	propagate := func(h *Health) []detect.Detection {
		if len(lastDets) == 0 || propagated >= cfg.MaxPropagate {
			h.Fallback = FallbackEmpty
			propagated++
			return nil
		}
		propagated++
		decay := math.Pow(cfg.PropagateDecay, float64(propagated))
		out := make([]detect.Detection, len(lastDets))
		for i, d := range lastDets {
			d.Score *= decay
			out[i] = d
		}
		h.Fallback = FallbackPropagate
		h.Propagated = true
		return out
	}

	for i := range sn.Frames {
		f := &sn.Frames[i]
		var h Health
		var jitterMS float64
		if f.Fault != nil {
			h.Fault = f.Fault.Kind
			jitterMS = f.Fault.JitterMS
		}

		// Rung 4: deadline enforcement. While the rolling budget is
		// exceeded, tighten the scale cap one rung; relax one rung only
		// with wide headroom (> 50% of the deadline) — the asymmetric
		// hysteresis keeps the cap from oscillating across a rung whose
		// cost sits just under the deadline.
		if cfg.DeadlineMS > 0 {
			if budget.Exceeded() {
				scaleCap = nextLowerScale(scaleCap)
			} else if budget.Headroom() > 0.5*cfg.DeadlineMS && scaleCap < regressor.MaxScale {
				scaleCap = nextHigherScale(scaleCap)
			}
		}
		applied := targetScale
		if applied > scaleCap {
			applied = scaleCap
			h.DeadlineForced = true
		}

		// Rung 1: sensor-observable faults never reach the detector; the
		// frame costs only the fixed per-frame bookkeeping.
		if f.Fault.SensorObservable() {
			dets := propagate(&h)
			degradedRun++
			cost := simclock.DetectorBaseMS
			budget.Charge(cost + jitterMS)
			outputs = append(outputs, FrameOutput{
				Frame: f, Scale: applied,
				Detections: dets,
				DetectorMS: cost,
				Health:     h,
			})
			continue
		}

		r := det.DetectWithFeatures(f, applied)
		dets := r.PlainDetections()

		// Rung 3: validate the prediction for the next frame before
		// emitting, so the fallback is visible on the frame that caused
		// it. Out-of-range t is normal operation (DecodeScale clips it,
		// Eq. 3); only a non-finite prediction is a fault.
		t := reg.Forward(r.Features)
		if math.IsNaN(t) || math.IsInf(t, 0) {
			h.PredictionClamped = true
			if lastGoodScale > 0 {
				h.Fallback = FallbackLastScale
				targetScale = lastGoodScale
			} else {
				h.Fallback = FallbackDefaultScale
				targetScale = InitialScale
			}
		} else {
			targetScale = regressor.DecodeScale(t, applied)
		}

		// Rung 2: an empty result propagates rather than emitting nothing
		// when the frame is content-degraded, or when we were tracking
		// objects a moment ago (detector flicker: in continuous video a
		// sudden empty set after non-empty ones is itself a fault signal).
		if len(dets) == 0 && (f.Fault.ContentFault() || len(lastDets) > 0) {
			dets = propagate(&h)
		} else if len(dets) > 0 {
			lastDets = dets
			lastGoodScale = applied
			propagated = 0
		}

		if f.Fault.ContentFault() {
			degradedRun++
		} else {
			if degradedRun > 0 {
				h.RecoveredAfter = degradedRun
			}
			degradedRun = 0
		}

		budget.Charge(r.RuntimeMS + overhead + jitterMS)
		outputs = append(outputs, FrameOutput{
			Frame: f, Scale: applied,
			Detections: dets,
			DetectorMS: r.RuntimeMS,
			OverheadMS: overhead,
			Health:     h,
		})
	}
	return outputs
}

// ResilientRunner returns a factory for the resilient pipeline; detector
// and regressor are cloned per worker like AdaScaleRunner.
func ResilientRunner(det *rfcn.Detector, reg *regressor.Regressor, cfg ResilientConfig) RunnerFactory {
	return func() SnippetRunner {
		d, r := det.Clone(), reg.Clone()
		return func(sn *synth.Snippet) []FrameOutput { return RunResilient(d, r, sn, cfg) }
	}
}

// HealthSummary aggregates Health records over an output stream. It is a
// pure fold over the ordered stream, so for a deterministic runner it is
// identical at any worker count. The struct is comparable with ==.
type HealthSummary struct {
	// Frames is the total frame count; Degraded counts frames that needed
	// any ladder rung; WithDetections counts frames emitting ≥ 1 box.
	Frames         int
	Degraded       int
	WithDetections int

	// FaultCounts counts frames per observed fault kind (FaultNone =
	// clean); FallbackCounts counts frames per ladder rung.
	FaultCounts    [synth.NumFaultKinds]int
	FallbackCounts [NumFallbacks]int

	// PredictionClamped and DeadlineForced count their Health flags.
	PredictionClamped int
	DeadlineForced    int

	// Recoveries counts degraded→clean transitions; RecoveryFrames sums
	// the lengths of the degraded runs they ended.
	Recoveries     int
	RecoveryFrames int

	// Unaccounted counts frames that emitted no detections without any
	// degradation accounting — zero by construction for RunResilient (the
	// acceptance invariant), typically non-zero for naive runners on a
	// faulted stream.
	Unaccounted int
}

// Summarize folds the per-frame Health records of an output stream.
func Summarize(outputs []FrameOutput) HealthSummary {
	var s HealthSummary
	for i := range outputs {
		h := outputs[i].Health
		s.Frames++
		s.FaultCounts[h.Fault]++
		s.FallbackCounts[h.Fallback]++
		if h.Degraded() {
			s.Degraded++
		}
		if h.PredictionClamped {
			s.PredictionClamped++
		}
		if h.DeadlineForced {
			s.DeadlineForced++
		}
		if h.RecoveredAfter > 0 {
			s.Recoveries++
			s.RecoveryFrames += h.RecoveredAfter
		}
		if len(outputs[i].Detections) > 0 {
			s.WithDetections++
		} else if !h.Degraded() && len(outputs[i].Frame.GroundTruth()) > 0 {
			s.Unaccounted++
		}
	}
	return s
}

// MeanRecoveryFrames returns the average length of a degraded run that
// ended in recovery (0 when none ended).
func (s HealthSummary) MeanRecoveryFrames() float64 {
	if s.Recoveries == 0 {
		return 0
	}
	return float64(s.RecoveryFrames) / float64(s.Recoveries)
}

// String renders the summary compactly for reports.
func (s HealthSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frames=%d degraded=%d with-dets=%d", s.Frames, s.Degraded, s.WithDetections)
	for k := 1; k < synth.NumFaultKinds; k++ {
		if n := s.FaultCounts[k]; n > 0 {
			fmt.Fprintf(&b, " %v=%d", synth.FaultKind(k), n)
		}
	}
	for k := 1; k < NumFallbacks; k++ {
		if n := s.FallbackCounts[k]; n > 0 {
			fmt.Fprintf(&b, " fb/%v=%d", Fallback(k), n)
		}
	}
	if s.PredictionClamped > 0 {
		fmt.Fprintf(&b, " clamped=%d", s.PredictionClamped)
	}
	if s.DeadlineForced > 0 {
		fmt.Fprintf(&b, " deadline-forced=%d", s.DeadlineForced)
	}
	if s.Recoveries > 0 {
		fmt.Fprintf(&b, " recoveries=%d (mean %.1f frames)", s.Recoveries, s.MeanRecoveryFrames())
	}
	if s.Unaccounted > 0 {
		fmt.Fprintf(&b, " UNACCOUNTED=%d", s.Unaccounted)
	}
	return b.String()
}
