package adascale

import (
	"fmt"
	"math"
	"strings"

	"adascale/internal/detect"
	"adascale/internal/obs"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// This file is the graceful-degradation wrapper around Algorithm 1. The
// plain AdaScale loop assumes a pristine camera feed and a well-behaved
// regressor; deployed vision systems get neither. RunResilient keeps
// producing detections — degraded, not absent — through a fixed fallback
// order (the degradation ladder):
//
//  1. Sensor-observable faults (dropped / stale / blacked-out frames, see
//     synth.Fault.SensorObservable) never reach the detector: the last
//     good detections are propagated with a confidence decay.
//  2. A detector pass that comes back empty on a degraded frame
//     (overexposure, noise burst) also propagates the last good
//     detections instead of emitting nothing.
//  3. Every regressor prediction is validated: out-of-range t is clamped;
//     a non-finite t falls back to the last scale that produced
//     detections, then to the InitialScale default.
//  4. A per-frame deadline (modelled runtime, internal/simclock.Budget)
//     forces the next-lower test scale while the rolling budget is
//     exceeded, and relaxes one rung at a time when headroom returns.
//  5. A panicking snippet runner is recovered into a structured error with
//     placeholder outputs (RunDatasetPartial), so partial results survive.
//
// Every frame carries a Health record, so no frame is ever emitted without
// detections or explicit degradation accounting.

// Fallback identifies which rung of the degradation ladder produced a
// frame's output.
type Fallback uint8

const (
	// FallbackNone: the normal detect→regress path ran.
	FallbackNone Fallback = iota

	// FallbackPropagate: last-good detections were propagated in place of
	// running the detector on garbage (or in place of an empty result on a
	// degraded frame).
	FallbackPropagate

	// FallbackEmpty: propagation was wanted but there were no last-good
	// detections (or the propagation horizon was exhausted); the frame
	// explicitly emits no detections.
	FallbackEmpty

	// FallbackLastScale: the regressor prediction was invalid and the next
	// frame reuses the last scale that produced detections.
	FallbackLastScale

	// FallbackDefaultScale: the prediction was invalid with no last-good
	// scale to fall back to; the next frame uses InitialScale.
	FallbackDefaultScale

	// FallbackPanic: the snippet runner panicked; this is a recovered
	// placeholder output (RunDatasetPartial).
	FallbackPanic

	numFallbacks
)

// NumFallbacks sizes per-rung counter arrays.
const NumFallbacks = int(numFallbacks)

// String names the fallback rung for reports.
func (f Fallback) String() string {
	switch f {
	case FallbackNone:
		return "none"
	case FallbackPropagate:
		return "propagate"
	case FallbackEmpty:
		return "empty"
	case FallbackLastScale:
		return "last-scale"
	case FallbackDefaultScale:
		return "default-scale"
	case FallbackPanic:
		return "panic"
	default:
		return fmt.Sprintf("fallback(%d)", uint8(f))
	}
}

// Health is one frame's fault and degradation accounting.
type Health struct {
	// Fault is the injected fault observed on the frame (synth.FaultNone
	// for a clean frame).
	Fault synth.FaultKind

	// Fallback is the degradation-ladder rung that produced the output.
	Fallback Fallback

	// Propagated marks detections carried over from the last good frame.
	Propagated bool

	// PredictionClamped marks an invalid (non-finite or out-of-range)
	// regressor prediction that was clamped or replaced.
	PredictionClamped bool

	// DeadlineForced marks a frame whose test scale was forced down by the
	// per-frame deadline budget.
	DeadlineForced bool

	// RecoveredAfter is set on the first content-clean frame after a run
	// of degraded frames: the length of that run (frames-to-recover).
	RecoveredAfter int
}

// Degraded reports whether the frame needed any rung of the ladder.
func (h Health) Degraded() bool {
	return h.Fault != synth.FaultNone || h.Fallback != FallbackNone ||
		h.Propagated || h.PredictionClamped || h.DeadlineForced
}

// ResilientConfig tunes the degradation ladder.
type ResilientConfig struct {
	// DeadlineMS is the per-frame modelled-runtime deadline; 0 disables
	// deadline enforcement.
	DeadlineMS float64

	// BudgetWindow is the rolling window (frames) of the deadline budget;
	// 0 means 8.
	BudgetWindow int

	// PropagateDecay is the per-propagated-frame confidence decay applied
	// to carried-over detections; 0 means 0.9.
	PropagateDecay float64

	// MaxPropagate bounds consecutive propagated frames before the ladder
	// gives up and emits an explicitly-empty frame (stale detections
	// eventually do more harm than good); 0 means 12.
	MaxPropagate int

	// Tracer, when non-nil, makes sessions built from this config record
	// per-frame pipeline spans live from Step — including wall-clock
	// detect/regress measurement when the tracer is in wall mode. Never
	// combine with TracedRunner on the same factory: every span would be
	// recorded twice. The serving layer ignores this field (the scheduler
	// records its own spans with true event-loop timestamps).
	Tracer *obs.Tracer
}

// DefaultResilientConfig returns the standard ladder tuning.
func DefaultResilientConfig() ResilientConfig {
	return ResilientConfig{PropagateDecay: 0.9, BudgetWindow: 8, MaxPropagate: 12}
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.BudgetWindow <= 0 {
		c.BudgetWindow = 8
	}
	if c.PropagateDecay <= 0 || c.PropagateDecay > 1 {
		c.PropagateDecay = 0.9
	}
	if c.MaxPropagate <= 0 {
		c.MaxPropagate = 12
	}
	return c
}

// deadlineLadder is the scale ladder the deadline enforcement walks — the
// paper's S_reg test-scale set, descending.
var deadlineLadder = []int{600, 480, 360, 240, 128}

// nextLowerScale returns the largest ladder scale strictly below s (s if
// already at the bottom).
func nextLowerScale(s int) int {
	for _, v := range deadlineLadder {
		if v < s {
			return v
		}
	}
	return s
}

// nextHigherScale returns the smallest ladder scale strictly above s (s if
// already at the top).
func nextHigherScale(s int) int {
	for i := len(deadlineLadder) - 1; i >= 0; i-- {
		if deadlineLadder[i] > s {
			return deadlineLadder[i]
		}
	}
	return s
}

// ResilientSession is the per-stream state of the degradation ladder: the
// temporally-consistent scale schedule (target scale, deadline cap), the
// last-good detections that propagation rungs re-emit, and the rolling
// deadline budget. RunResilient drives one session over one snippet; the
// serving layer (internal/serve) keeps one long-lived session per video
// stream and feeds it frame by frame.
//
// A session is strictly sequential — Plan and Finish must alternate in
// frame order on a single goroutine. It is NOT safe for concurrent use;
// concurrency comes from running independent sessions on independent
// streams.
type ResilientSession struct {
	cfg      ResilientConfig
	overhead float64
	budget   *simclock.Budget
	tracer   *obs.Tracer

	targetScale   int
	scaleCap      int // deadline enforcement lowers this
	lastGoodScale int // last scale that produced detections (0 = none yet)
	lastDets      []detect.Detection
	propagated    int // consecutive propagated frames
	degradedRun   int // consecutive content-degraded frames (frames-to-recover)

	trStream int     // stream id stamped on recorded spans
	trFrame  int     // next frame index on the trace clock
	clockMS  float64 // snippet-local virtual clock for span start times
}

// NewResilientSession creates a fresh session for one stream. kernels is
// the regressor's branch kernel set (charged as per-frame overhead).
func NewResilientSession(kernels []int, cfg ResilientConfig) *ResilientSession {
	cfg = cfg.withDefaults()
	s := &ResilientSession{
		cfg:      cfg,
		overhead: simclock.RegressorMS(kernels),
		budget:   simclock.NewBudget(cfg.DeadlineMS, cfg.BudgetWindow),
		tracer:   cfg.Tracer,
	}
	s.reset()
	return s
}

// Reset returns the session to its just-constructed state so it can be
// reused for a new stream: target scale back to InitialScale, deadline cap
// released, last-good detections and scale cleared, budget emptied.
// Without the reset, detections and scale state from the previous stream
// would leak into the first frames of the next one.
func (s *ResilientSession) Reset() { s.reset() }

func (s *ResilientSession) reset() {
	s.budget.Reset()
	s.targetScale = InitialScale
	s.scaleCap = regressor.MaxScale
	s.lastGoodScale = 0
	s.lastDets = nil
	s.propagated = 0
	s.degradedRun = 0
	s.trFrame = 0
	s.clockMS = 0
}

// SetTraceStream stamps subsequent recorded spans with the given stream id
// and rewinds the session's trace clock to frame 0 at time 0 — called at
// the start of every snippet (or stream) the session serves.
func (s *ResilientSession) SetTraceStream(id int) {
	s.trStream = id
	s.trFrame = 0
	s.clockMS = 0
}

// traceStep records one finished frame's spans on the session's trace
// clock. No-op without a tracer.
func (s *ResilientSession) traceStep(o FrameOutput, detWallMS, regWallMS float64) {
	if s.tracer == nil {
		return
	}
	var spans []obs.Span
	spans, s.clockMS = frameSpans(s.tracer, spans, s.trStream, s.trFrame, s.clockMS, o, detWallMS, regWallMS)
	s.trFrame++
	s.tracer.Add(spans)
}

// Overhead returns the per-frame regressor overhead the session charges on
// detector frames (the serving layer adds it to modelled service time).
func (s *ResilientSession) Overhead() float64 { return s.overhead }

// SessionCheckpoint is the complete externalised ladder state of a
// ResilientSession: everything the next frame's Plan/Finish depend on. A
// checkpoint taken after frame k, restored into a fresh session, makes
// that session serve frame k+1 onward exactly as the original would have —
// the property that lets the serving supervisor migrate a stream to a new
// session (a stand-in for a healthy node) after a node failure without
// losing scale-ladder state or the last-good detections it propagates.
// The trace clock is deliberately not part of the checkpoint: spans belong
// to whoever is recording them, not to the stream.
type SessionCheckpoint struct {
	// TargetScale, ScaleCap and LastGoodScale are the scale-ladder state
	// (the next frame's target, the deadline-enforcement cap, and the last
	// scale that produced detections).
	TargetScale, ScaleCap, LastGoodScale int

	// LastDets are the detections the propagation rungs re-emit.
	LastDets []detect.Detection

	// Propagated and DegradedRun are the consecutive-propagation and
	// frames-to-recover counters.
	Propagated, DegradedRun int

	// BudgetCharges is the rolling deadline-budget window, oldest first.
	BudgetCharges []float64
}

// Checkpoint captures the session's ladder state. The returned checkpoint
// is independent of the session: mutating the session afterwards does not
// alter it.
func (s *ResilientSession) Checkpoint() SessionCheckpoint {
	return SessionCheckpoint{
		TargetScale:   s.targetScale,
		ScaleCap:      s.scaleCap,
		LastGoodScale: s.lastGoodScale,
		LastDets:      append([]detect.Detection(nil), s.lastDets...),
		Propagated:    s.propagated,
		DegradedRun:   s.degradedRun,
		BudgetCharges: s.budget.Charges(),
	}
}

// Restore replaces the session's ladder state with the checkpoint's,
// resetting everything first so a partially-advanced session cannot leak
// state past the restore. The checkpoint is not retained: restoring the
// same checkpoint into two sessions gives two independent streams.
func (s *ResilientSession) Restore(cp SessionCheckpoint) {
	s.reset()
	s.targetScale = cp.TargetScale
	s.scaleCap = cp.ScaleCap
	s.lastGoodScale = cp.LastGoodScale
	s.lastDets = append([]detect.Detection(nil), cp.LastDets...)
	if len(s.lastDets) == 0 {
		s.lastDets = nil
	}
	s.propagated = cp.Propagated
	s.degradedRun = cp.DegradedRun
	for _, c := range cp.BudgetCharges {
		s.budget.Charge(c)
	}
}

// FramePlan is the scheduling decision for one frame: the scale to test at
// and whether the detector pass is skipped (rung 1: sensor-observable
// fault). The serving layer uses it to cost the frame before dispatching
// the compute to a worker; Finish consumes it to complete the frame.
type FramePlan struct {
	// Scale is the applied test scale (target capped by the deadline cap).
	Scale int

	// Skip marks a sensor-observable fault: the detector never runs and
	// the frame costs only fixed per-frame bookkeeping.
	Skip bool

	// JitterMS is the frame's extra arrival latency (FaultJitter).
	JitterMS float64

	health Health // partial accounting (Fault, DeadlineForced)
}

// Plan opens frame f: steps the deadline cap (rung 4, with the asymmetric
// hysteresis), applies it to the target scale, and decides whether the
// detector runs at all (rung 1). It must be followed by exactly one Finish
// for the same frame.
func (s *ResilientSession) Plan(f *synth.Frame) FramePlan {
	var p FramePlan
	if f.Fault != nil {
		p.health.Fault = f.Fault.Kind
		p.JitterMS = f.Fault.JitterMS
	}

	// Rung 4: deadline enforcement. While the rolling budget is exceeded,
	// tighten the scale cap one rung; relax one rung only with wide
	// headroom (> 50% of the deadline) — the asymmetric hysteresis keeps
	// the cap from oscillating across a rung whose cost sits just under
	// the deadline.
	if s.cfg.DeadlineMS > 0 {
		if s.budget.Exceeded() {
			s.scaleCap = nextLowerScale(s.scaleCap)
		} else if s.budget.Headroom() > 0.5*s.cfg.DeadlineMS && s.scaleCap < regressor.MaxScale {
			s.scaleCap = nextHigherScale(s.scaleCap)
		}
	}
	p.Scale = s.targetScale
	if p.Scale > s.scaleCap {
		p.Scale = s.scaleCap
		p.health.DeadlineForced = true
	}

	// Rung 1: sensor-observable faults never reach the detector.
	p.Skip = f.Fault.SensorObservable()
	return p
}

// propagate re-emits the last good detections with confidence decay, or an
// explicitly-empty frame once the horizon is exhausted (rungs 1 and 2).
func (s *ResilientSession) propagate(h *Health) []detect.Detection {
	if len(s.lastDets) == 0 || s.propagated >= s.cfg.MaxPropagate {
		h.Fallback = FallbackEmpty
		s.propagated++
		return nil
	}
	s.propagated++
	decay := math.Pow(s.cfg.PropagateDecay, float64(s.propagated))
	out := make([]detect.Detection, len(s.lastDets))
	for i, d := range s.lastDets {
		d.Score *= decay
		out[i] = d
	}
	h.Fallback = FallbackPropagate
	h.Propagated = true
	return out
}

// Finish closes the frame opened by Plan: validates the regressor
// prediction (rung 3), applies propagation (rungs 1/2), updates the
// last-good state and charges chargeMS against the deadline budget. For a
// skipped plan r and t are ignored (pass nil, 0). chargeMS is the frame's
// cost as the budget should see it — modelled runtime for the offline
// runner, end-to-end latency for the serving layer, whose deadline is a
// latency SLO rather than a compute budget.
func (s *ResilientSession) Finish(f *synth.Frame, p FramePlan, r *rfcn.Result, t float64, chargeMS float64) FrameOutput {
	h := p.health
	if p.Skip || r == nil {
		dets := s.propagate(&h)
		s.degradedRun++
		s.budget.Charge(chargeMS)
		return FrameOutput{
			Frame: f, Scale: p.Scale,
			Detections: dets,
			DetectorMS: simclock.DetectorBaseMS,
			Health:     h,
		}
	}

	dets := r.PlainDetections()

	// Rung 3: validate the prediction for the next frame before emitting,
	// so the fallback is visible on the frame that caused it. Out-of-range
	// t is normal operation (DecodeScale clips it, Eq. 3); only a
	// non-finite prediction is a fault.
	if math.IsNaN(t) || math.IsInf(t, 0) {
		h.PredictionClamped = true
		if s.lastGoodScale > 0 {
			h.Fallback = FallbackLastScale
			s.targetScale = s.lastGoodScale
		} else {
			h.Fallback = FallbackDefaultScale
			s.targetScale = InitialScale
		}
	} else {
		s.targetScale = regressor.DecodeScale(t, p.Scale)
	}

	// Rung 2: an empty result propagates rather than emitting nothing
	// when the frame is content-degraded, or when we were tracking
	// objects a moment ago (detector flicker: in continuous video a
	// sudden empty set after non-empty ones is itself a fault signal).
	if len(dets) == 0 && (f.Fault.ContentFault() || len(s.lastDets) > 0) {
		dets = s.propagate(&h)
	} else if len(dets) > 0 {
		s.lastDets = dets
		s.lastGoodScale = p.Scale
		s.propagated = 0
	}

	if f.Fault.ContentFault() {
		s.degradedRun++
	} else {
		if s.degradedRun > 0 {
			h.RecoveredAfter = s.degradedRun
		}
		s.degradedRun = 0
	}

	s.budget.Charge(chargeMS)
	return FrameOutput{
		Frame: f, Scale: p.Scale,
		Detections: dets,
		DetectorMS: r.RuntimeMS,
		OverheadMS: s.overhead,
		Health:     h,
	}
}

// Step runs one frame through the full ladder on the calling goroutine:
// Plan, the detector/regressor pass (unless skipped), Finish with the
// frame's modelled cost. The offline runners are loops over Step.
func (s *ResilientSession) Step(det *rfcn.Detector, reg *regressor.Regressor, f *synth.Frame) FrameOutput {
	p := s.Plan(f)
	if p.Skip {
		out := s.Finish(f, p, nil, 0, simclock.DetectorBaseMS+p.JitterMS)
		s.traceStep(out, 0, 0)
		return out
	}
	ref := s.tracer.Now()
	r := det.DetectWithFeatures(f, p.Scale)
	detWall := s.tracer.SinceMS(ref)
	ref = s.tracer.Now()
	t := reg.Predict(r.Features)
	det.Recycle(r.Features)
	r.Features = nil
	regWall := s.tracer.SinceMS(ref)
	out := s.Finish(f, p, r, t, r.RuntimeMS+s.overhead+p.JitterMS)
	s.traceStep(out, detWall, regWall)
	return out
}

// RunResilient runs Algorithm 1 over a snippet with the degradation
// ladder. With a clean stream, a finite regressor and no deadline it emits
// exactly what RunAdaScale emits (pinned by test), so resilience costs
// nothing when nothing goes wrong.
func RunResilient(det *rfcn.Detector, reg *regressor.Regressor, sn *synth.Snippet, cfg ResilientConfig) []FrameOutput {
	sess := NewResilientSession(reg.Kernels, cfg)
	return runSession(sess, det, reg, sn)
}

// runSession drives an already-reset session over one snippet.
func runSession(sess *ResilientSession, det *rfcn.Detector, reg *regressor.Regressor, sn *synth.Snippet) []FrameOutput {
	sess.SetTraceStream(sn.ID)
	outputs := make([]FrameOutput, 0, len(sn.Frames))
	for i := range sn.Frames {
		outputs = append(outputs, sess.Step(det, reg, &sn.Frames[i]))
	}
	return outputs
}

// ResilientRunner returns a factory for the resilient pipeline; detector
// and regressor are cloned per worker like AdaScaleRunner. Each worker
// reuses one session across the snippets it processes, with a Reset
// between snippets so no scale or detection state leaks from one stream
// into the next (pinned by TestResilientSessionResetNoLeak).
func ResilientRunner(det *rfcn.Detector, reg *regressor.Regressor, cfg ResilientConfig) RunnerFactory {
	return func() SnippetRunner {
		d, r := det.Clone(), reg.Clone()
		sess := NewResilientSession(r.Kernels, cfg)
		return func(sn *synth.Snippet) []FrameOutput {
			sess.Reset()
			return runSession(sess, d, r, sn)
		}
	}
}

// HealthSummary aggregates Health records over an output stream. It is a
// pure fold over the ordered stream, so for a deterministic runner it is
// identical at any worker count. The struct is comparable with ==.
type HealthSummary struct {
	// Frames is the total frame count; Degraded counts frames that needed
	// any ladder rung; WithDetections counts frames emitting ≥ 1 box.
	Frames         int
	Degraded       int
	WithDetections int

	// FaultCounts counts frames per observed fault kind (FaultNone =
	// clean); FallbackCounts counts frames per ladder rung.
	FaultCounts    [synth.NumFaultKinds]int
	FallbackCounts [NumFallbacks]int

	// PredictionClamped and DeadlineForced count their Health flags.
	PredictionClamped int
	DeadlineForced    int

	// Recoveries counts degraded→clean transitions; RecoveryFrames sums
	// the lengths of the degraded runs they ended.
	Recoveries     int
	RecoveryFrames int

	// Unaccounted counts frames that emitted no detections without any
	// degradation accounting — zero by construction for RunResilient (the
	// acceptance invariant), typically non-zero for naive runners on a
	// faulted stream.
	Unaccounted int
}

// Summarize folds the per-frame Health records of an output stream.
func Summarize(outputs []FrameOutput) HealthSummary {
	var s HealthSummary
	for i := range outputs {
		h := outputs[i].Health
		s.Frames++
		s.FaultCounts[h.Fault]++
		s.FallbackCounts[h.Fallback]++
		if h.Degraded() {
			s.Degraded++
		}
		if h.PredictionClamped {
			s.PredictionClamped++
		}
		if h.DeadlineForced {
			s.DeadlineForced++
		}
		if h.RecoveredAfter > 0 {
			s.Recoveries++
			s.RecoveryFrames += h.RecoveredAfter
		}
		if len(outputs[i].Detections) > 0 {
			s.WithDetections++
		} else if !h.Degraded() && len(outputs[i].Frame.GroundTruth()) > 0 {
			s.Unaccounted++
		}
	}
	return s
}

// MeanRecoveryFrames returns the average length of a degraded run that
// ended in recovery (0 when none ended).
func (s HealthSummary) MeanRecoveryFrames() float64 {
	if s.Recoveries == 0 {
		return 0
	}
	return float64(s.RecoveryFrames) / float64(s.Recoveries)
}

// String renders the summary compactly for reports.
func (s HealthSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frames=%d degraded=%d with-dets=%d", s.Frames, s.Degraded, s.WithDetections)
	for k := 1; k < synth.NumFaultKinds; k++ {
		if n := s.FaultCounts[k]; n > 0 {
			fmt.Fprintf(&b, " %v=%d", synth.FaultKind(k), n)
		}
	}
	for k := 1; k < NumFallbacks; k++ {
		if n := s.FallbackCounts[k]; n > 0 {
			fmt.Fprintf(&b, " fb/%v=%d", Fallback(k), n)
		}
	}
	if s.PredictionClamped > 0 {
		fmt.Fprintf(&b, " clamped=%d", s.PredictionClamped)
	}
	if s.DeadlineForced > 0 {
		fmt.Fprintf(&b, " deadline-forced=%d", s.DeadlineForced)
	}
	if s.Recoveries > 0 {
		fmt.Fprintf(&b, " recoveries=%d (mean %.1f frames)", s.Recoveries, s.MeanRecoveryFrames())
	}
	if s.Unaccounted > 0 {
		fmt.Fprintf(&b, " UNACCOUNTED=%d", s.Unaccounted)
	}
	return b.String()
}
