package adascale

import (
	"fmt"
	"hash/fnv"
	"strings"

	"adascale/internal/detect"
)

// This file is the canonical trace serialization the golden-trace
// conformance suite (internal/regress) pins the pipelines with. A trace is
// one line per frame: the scale decision Algorithm 1 made, a digest of the
// emitted detections, the modelled cost and the Health accounting. The
// format is append-only by convention — adding fields breaks every
// committed golden, which is the point: any behavioural drift in the
// per-frame decisions must show up as a reviewed golden diff, never as a
// silent change.

// TraceLine renders one frame's output as a canonical fixed-format record.
// Every numeric field is formatted with explicit precision so the line is
// byte-identical across runs, worker counts and machines whenever the
// pipeline itself is deterministic.
func TraceLine(o *FrameOutput) string {
	return fmt.Sprintf("s%03d/%02d scale=%d dets=%d digest=%016x ms=%.3f fb=%s fault=%s",
		o.Frame.SnippetID, o.Frame.Index, o.Scale, len(o.Detections),
		DetectionDigest(o.Detections), o.TotalMS(), o.Health.Fallback, o.Health.Fault)
}

// FormatTrace renders an output stream as one TraceLine per frame.
func FormatTrace(outputs []FrameOutput) string {
	var b strings.Builder
	for i := range outputs {
		b.WriteString(TraceLine(&outputs[i]))
		b.WriteByte('\n')
	}
	return b.String()
}

// DetectionDigest hashes a detection set into a 64-bit FNV-1a digest over
// fixed-precision renderings of each box. Two detection sets that differ in
// class, score (to 1e-4) or geometry (to 1e-2 px) digest differently; the
// digest keeps golden traces compact without losing sensitivity to the
// detections actually emitted.
func DetectionDigest(dets []detect.Detection) uint64 {
	h := fnv.New64a()
	for _, d := range dets {
		fmt.Fprintf(h, "%d|%.4f|%.2f,%.2f,%.2f,%.2f;", d.Class, d.Score, d.Box.X1, d.Box.Y1, d.Box.X2, d.Box.Y2)
	}
	return h.Sum64()
}
