package adascale

import (
	"math"
	"testing"

	"adascale/internal/eval"
	"adascale/internal/faults"
	"adascale/internal/parallel"
	"adascale/internal/regressor"
	"adascale/internal/synth"
)

// faulted injects the standard mixed fault soup into the validation split.
func faulted(t *testing.T, ds *synth.Dataset, rate float64, seed int64) []synth.Snippet {
	t.Helper()
	out, err := faults.Inject(ds.Val, faults.Mixed(rate, seed))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestResilientMatchesAdaScaleOnCleanStream pins the "resilience is free"
// contract: with no faults, a finite regressor and no deadline,
// RunResilient follows exactly RunAdaScale's scale schedule and costs, and
// emits identical detections on every frame where the detector produced
// any — the only permitted divergence is bridging a detector flicker
// (naive emits empty, resilient propagates with explicit accounting).
func TestResilientMatchesAdaScaleOnCleanStream(t *testing.T) {
	ds, sys := system(t)
	for i := range ds.Val {
		want := RunAdaScale(sys.Detector, sys.Regressor, &ds.Val[i])
		got := RunResilient(sys.Detector, sys.Regressor, &ds.Val[i], DefaultResilientConfig())
		if len(want) != len(got) {
			t.Fatalf("snippet %d: %d outputs, want %d", i, len(got), len(want))
		}
		for j := range want {
			w, g := want[j], got[j]
			if w.Frame != g.Frame || w.Scale != g.Scale || w.DetectorMS != g.DetectorMS || w.OverheadMS != g.OverheadMS {
				t.Fatalf("snippet %d frame %d: (scale %d, det %v, over %v), want (%d, %v, %v)",
					i, j, g.Scale, g.DetectorMS, g.OverheadMS, w.Scale, w.DetectorMS, w.OverheadMS)
			}
			if len(w.Detections) == 0 {
				if len(g.Detections) != 0 && !g.Health.Propagated {
					t.Fatalf("snippet %d frame %d: unaccounted extra detections on a flickered frame", i, j)
				}
				continue
			}
			if len(w.Detections) != len(g.Detections) {
				t.Fatalf("snippet %d frame %d: %d detections, want %d", i, j, len(g.Detections), len(w.Detections))
			}
			for k := range w.Detections {
				if w.Detections[k] != g.Detections[k] {
					t.Fatalf("snippet %d frame %d det %d: %+v, want %+v", i, j, k, g.Detections[k], w.Detections[k])
				}
			}
			if g.Health.Degraded() {
				t.Fatalf("snippet %d frame %d: degradation accounting %+v on a clean detected frame", i, j, g.Health)
			}
		}
	}
}

// TestResilientSurvivesPoisonedRegressor poisons every regressor weight
// with NaN: the ladder must keep the scale schedule in range (falling back
// to the last good scale, then the 600 default) and keep detecting.
func TestResilientSurvivesPoisonedRegressor(t *testing.T) {
	ds, sys := system(t)
	bad := sys.Regressor.Clone()
	for _, p := range bad.Params() {
		p.W.Fill(float32(math.NaN()))
	}
	outs := RunResilient(sys.Detector, bad, &ds.Val[0], DefaultResilientConfig())
	clamped := 0
	for i, o := range outs {
		if o.Scale < regressor.MinScale || o.Scale > regressor.MaxScale {
			t.Fatalf("frame %d: scale %d escaped [%d, %d]", i, o.Scale, regressor.MinScale, regressor.MaxScale)
		}
		if o.Scale != InitialScale {
			t.Fatalf("frame %d: scale %d; a fully poisoned regressor must hold the default", i, o.Scale)
		}
		if o.Health.PredictionClamped {
			clamped++
			switch o.Health.Fallback {
			case FallbackLastScale, FallbackDefaultScale:
			default:
				t.Fatalf("frame %d: clamped prediction with fallback %v", i, o.Health.Fallback)
			}
		}
	}
	if clamped != len(outs) {
		t.Fatalf("%d/%d frames flagged PredictionClamped; NaN output should flag all", clamped, len(outs))
	}
	s := Summarize(outs)
	if s.FallbackCounts[FallbackDefaultScale] == 0 || s.FallbackCounts[FallbackLastScale] == 0 {
		t.Fatalf("expected both scale fallbacks to fire: %v", s)
	}
}

// TestResilientAccountsEveryFrame is the acceptance invariant: under mixed
// faults, no frame is emitted without detections or explicit degradation
// accounting, and sensor-observable faults never reach the detector.
func TestResilientAccountsEveryFrame(t *testing.T) {
	ds, sys := system(t)
	val := faulted(t, ds, 0.10, 99)
	outs := RunDatasetSerial(val, ResilientRunner(sys.Detector, sys.Regressor, DefaultResilientConfig())())
	s := Summarize(outs)
	if s.Unaccounted != 0 {
		t.Fatalf("%d unaccounted frames (no detections, no degradation record): %v", s.Unaccounted, s)
	}
	if s.Frames != len(outs) || s.Frames == 0 {
		t.Fatalf("summary frames %d, outputs %d", s.Frames, len(outs))
	}
	for i, o := range outs {
		f := o.Frame.Fault
		if f.SensorObservable() {
			if o.Health.Fallback != FallbackPropagate && o.Health.Fallback != FallbackEmpty {
				t.Fatalf("frame %d: sensor fault %v handled by %v", i, f.Kind, o.Health.Fallback)
			}
			if o.DetectorMS > 10 {
				t.Fatalf("frame %d: sensor-faulted frame charged %v ms — the detector ran on garbage", i, o.DetectorMS)
			}
		}
		if o.Health.Fault != kindOf(f) {
			t.Fatalf("frame %d: health fault %v, frame fault %v", i, o.Health.Fault, kindOf(f))
		}
	}
	if s.Recoveries == 0 || s.MeanRecoveryFrames() <= 0 {
		t.Fatalf("expected recovery accounting under 10%% faults: %v", s)
	}
}

func kindOf(f *synth.Fault) synth.FaultKind {
	if f == nil {
		return synth.FaultNone
	}
	return f.Kind
}

// TestResilientDeterministicAcrossWorkers: same seed + config ⇒ identical
// output stream and identical HealthSummary at any worker count.
func TestResilientDeterministicAcrossWorkers(t *testing.T) {
	ds, sys := system(t)
	val := faulted(t, ds, 0.12, 7)
	cfg := DefaultResilientConfig()
	cfg.DeadlineMS = 60
	factory := ResilientRunner(sys.Detector, sys.Regressor, cfg)
	serial := RunDatasetSerial(val, factory())
	ref := Summarize(serial)
	t.Cleanup(func() { parallel.SetWorkers(0) }) // guard the t.Fatal paths below
	for _, workers := range []int{1, 2, 5} {
		parallel.SetWorkers(workers)
		got := RunDataset(val, factory)
		parallel.SetWorkers(0)
		assertSameOutputs(t, serial, got)
		if s := Summarize(got); s != ref {
			t.Fatalf("workers=%d: summary diverged:\n  %v\nvs %v", workers, s, ref)
		}
	}
}

// TestResilientBeatsNaiveUnderFaults is the headline robustness claim:
// under 10% mixed faults the resilient runner retains strictly more mAP
// than naive AdaScale run blind over the same corrupted stream.
func TestResilientBeatsNaiveUnderFaults(t *testing.T) {
	ds, sys := system(t)
	val := faulted(t, ds, 0.10, 42)
	nC := len(ds.Config.Classes)

	naive := RunDataset(val, AdaScaleRunner(sys.Detector, sys.Regressor))
	res := RunDataset(val, ResilientRunner(sys.Detector, sys.Regressor, DefaultResilientConfig()))

	naiveMAP := eval.Evaluate(toEval(naive), nC).MAP
	resMAP := eval.Evaluate(toEval(res), nC).MAP
	if resMAP <= naiveMAP {
		t.Fatalf("resilient mAP %.4f must beat naive %.4f under 10%% faults", resMAP, naiveMAP)
	}
}

// TestResilientDeadlineForcesScaleDown: a deadline below the scale-600
// cost must force the ladder down and land the rolling mean at or under
// the deadline once the window fills.
func TestResilientDeadlineForcesScaleDown(t *testing.T) {
	ds, sys := system(t)
	cfg := DefaultResilientConfig()
	cfg.DeadlineMS = 40
	cfg.BudgetWindow = 4
	outs := RunResilient(sys.Detector, sys.Regressor, &ds.Val[0], cfg)
	free := RunResilient(sys.Detector, sys.Regressor, &ds.Val[0], DefaultResilientConfig())

	s := Summarize(outs)
	if s.DeadlineForced == 0 {
		t.Fatalf("a 40 ms deadline must force scales down: %v", s)
	}
	if got, ref := MeanRuntimeMS(outs), MeanRuntimeMS(free); got >= ref {
		t.Fatalf("deadline-capped mean runtime %v not below unconstrained %v", got, ref)
	}
	// The tail of the snippet (ladder settled) must respect the deadline.
	tail := outs[len(outs)/2:]
	if got := MeanRuntimeMS(tail); got > cfg.DeadlineMS*1.1 {
		t.Fatalf("settled mean runtime %v ms over the %v ms deadline", got, cfg.DeadlineMS)
	}
	for _, o := range outs {
		if o.Health.DeadlineForced && o.Scale >= InitialScale {
			t.Fatalf("deadline-forced frame still at scale %d", o.Scale)
		}
	}
}

// TestResilientSessionResetNoLeak is the cross-stream isolation
// regression test: a session reused for a second stream (ResilientRunner
// reuses one session per worker, the serving layer reuses sessions across
// stream restarts) must behave exactly like a fresh session — no last-good
// detections, scale schedule, deadline cap or budget state may leak from
// the previous stream.
func TestResilientSessionResetNoLeak(t *testing.T) {
	ds, sys := system(t)
	// A faulted first stream with a tight deadline maximises leakable
	// state: propagated detections, a lowered scale cap, a full budget.
	val := faulted(t, ds, 0.25, 31)
	cfg := DefaultResilientConfig()
	cfg.DeadlineMS = 40

	sess := NewResilientSession(sys.Regressor.Kernels, cfg)
	_ = runSession(sess, sys.Detector, sys.Regressor, &val[0])

	// Reused with Reset: byte-identical to a fresh session on stream 2.
	sess.Reset()
	got := runSession(sess, sys.Detector, sys.Regressor, &val[1])
	want := RunResilient(sys.Detector, sys.Regressor, &val[1], cfg)
	assertSameOutputs(t, want, got)
	if s, w := Summarize(got), Summarize(want); s != w {
		t.Fatalf("reused session summary diverged:\n  %v\nvs %v", s, w)
	}

	// Reused WITHOUT Reset the leak is observable (this is the bug the
	// Reset fixes): the first frame must start at InitialScale on a fresh
	// stream, while the dirty session carries the previous stream's
	// schedule and deadline cap.
	dirty := runSession(sess, sys.Detector, sys.Regressor, &val[1])
	if dirty[0].Scale == InitialScale && !dirty[0].Health.DeadlineForced {
		t.Fatalf("dirty session started stream 2 at the clean initial state — leak test lost its teeth")
	}

	// The factory contract: every snippet a reused worker runner processes
	// matches a fresh RunResilient (sequential reuse across sessions).
	run := ResilientRunner(sys.Detector, sys.Regressor, cfg)()
	for i := range val[:3] {
		assertSameOutputs(t, RunResilient(sys.Detector, sys.Regressor, &val[i], cfg), run(&val[i]))
	}
}

// TestRunDatasetPartialRecoversPanickingSnippet: one poisoned snippet is
// recovered into a SnippetError with explicit FallbackPanic placeholder
// frames; every other snippet is identical to the clean run.
func TestRunDatasetPartialRecoversPanickingSnippet(t *testing.T) {
	ds, sys := system(t)
	poison := ds.Val[2].ID
	factory := func() SnippetRunner {
		run := AdaScaleRunner(sys.Detector, sys.Regressor)()
		return func(sn *synth.Snippet) []FrameOutput {
			if sn.ID == poison {
				panic("simulated runner bug")
			}
			return run(sn)
		}
	}
	t.Cleanup(func() { parallel.SetWorkers(0) }) // guard the t.Fatal paths below
	for _, workers := range []int{1, 3} {
		parallel.SetWorkers(workers)
		outs, errs := RunDatasetPartial(ds.Val, factory)
		parallel.SetWorkers(0)
		if len(errs) != 1 || errs[0].Index != 2 || errs[0].ID != poison {
			t.Fatalf("workers=%d: errs = %v, want exactly snippet index 2", workers, errs)
		}
		if len(outs) != totalFrames(ds.Val) {
			t.Fatalf("workers=%d: %d outputs, want every frame accounted (%d)", workers, len(outs), totalFrames(ds.Val))
		}
		s := Summarize(outs)
		if got := s.FallbackCounts[FallbackPanic]; got != len(ds.Val[2].Frames) {
			t.Fatalf("workers=%d: %d panic placeholders, want %d", workers, got, len(ds.Val[2].Frames))
		}
	}
	// Clean factories take the same path as RunDataset.
	outs, errs := RunDatasetPartial(ds.Val, AdaScaleRunner(sys.Detector, sys.Regressor))
	if len(errs) != 0 {
		t.Fatalf("clean run produced errors: %v", errs)
	}
	assertSameOutputs(t, RunDataset(ds.Val, AdaScaleRunner(sys.Detector, sys.Regressor)), outs)
}

// TestHealthSummaryString keeps the report renderer stable on the parts
// the experiment logs depend on.
func TestHealthSummaryString(t *testing.T) {
	var s HealthSummary
	s.Frames = 3
	s.FaultCounts[synth.FaultDrop] = 1
	s.FallbackCounts[FallbackPropagate] = 1
	got := s.String()
	for _, want := range []string{"frames=3", "drop=1", "fb/propagate=1"} {
		if !contains(got, want) {
			t.Fatalf("summary %q missing %q", got, want)
		}
	}
	if s.MeanRecoveryFrames() != 0 {
		t.Fatal("no recoveries ⇒ mean 0")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSessionCheckpointRoundTrip is the stream-migration contract: a
// checkpoint taken after frame k, restored into a fresh session, must
// serve frames k+1..n exactly as the uninterrupted original — scales,
// detections, health accounting and deadline-cap decisions all equal —
// on a faulted stream under a tight deadline (so every ladder rung and
// the budget window are live state at the cut point).
func TestSessionCheckpointRoundTrip(t *testing.T) {
	ds, sys := system(t)
	snips := faulted(t, ds, 0.3, 17)
	cfg := DefaultResilientConfig()
	cfg.DeadlineMS = 60

	for _, cut := range []int{1, 4, 9} {
		orig := NewResilientSession(sys.Regressor.Kernels, cfg)
		frames := snips[0].Frames
		if cut >= len(frames)-1 {
			t.Fatalf("cut %d leaves no frames to compare (snippet has %d)", cut, len(frames))
		}
		for i := 0; i <= cut; i++ {
			orig.Step(sys.Detector, sys.Regressor, &frames[i])
		}
		cp := orig.Checkpoint()
		migrated := NewResilientSession(sys.Regressor.Kernels, cfg)
		migrated.Restore(cp)

		for i := cut + 1; i < len(frames); i++ {
			w := orig.Step(sys.Detector, sys.Regressor, &frames[i])
			g := migrated.Step(sys.Detector, sys.Regressor, &frames[i])
			if w.Scale != g.Scale || w.Health != g.Health || w.DetectorMS != g.DetectorMS {
				t.Fatalf("cut %d frame %d: migrated (scale %d, health %+v), original (scale %d, health %+v)",
					cut, i, g.Scale, g.Health, w.Scale, w.Health)
			}
			if len(w.Detections) != len(g.Detections) {
				t.Fatalf("cut %d frame %d: %d detections, original %d", cut, i, len(g.Detections), len(w.Detections))
			}
			for k := range w.Detections {
				if w.Detections[k] != g.Detections[k] {
					t.Fatalf("cut %d frame %d det %d diverges after restore", cut, i, k)
				}
			}
		}
	}
}

// TestSessionCheckpointIndependence: the checkpoint deep-copies its state
// — mutating the session after Checkpoint (or restoring the same
// checkpoint twice) must not alias detections or budget state.
func TestSessionCheckpointIndependence(t *testing.T) {
	ds, sys := system(t)
	cfg := DefaultResilientConfig()
	s := NewResilientSession(sys.Regressor.Kernels, cfg)
	frames := ds.Val[0].Frames
	for i := 0; i < 4; i++ {
		s.Step(sys.Detector, sys.Regressor, &frames[i])
	}
	cp := s.Checkpoint()
	if len(cp.LastDets) == 0 {
		t.Fatal("checkpoint captured no last-good detections; the aliasing check needs some")
	}
	want := cp.LastDets[0]

	// Drive the original on; the checkpoint must not move.
	for i := 4; i < len(frames); i++ {
		s.Step(sys.Detector, sys.Regressor, &frames[i])
	}
	if cp.LastDets[0] != want {
		t.Fatal("checkpoint detections aliased the live session")
	}

	// Two sessions restored from one checkpoint evolve independently.
	a := NewResilientSession(sys.Regressor.Kernels, cfg)
	b := NewResilientSession(sys.Regressor.Kernels, cfg)
	a.Restore(cp)
	b.Restore(cp)
	a.Step(sys.Detector, sys.Regressor, &frames[4])
	if got := b.Checkpoint().LastDets[0]; got != want {
		t.Fatal("stepping one restored session mutated the other's state")
	}
}
