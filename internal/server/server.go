// Package server is the HTTP serving front end over the AdaScale engine:
// the network surface that turns the deterministic virtual-time serving
// core (internal/serve, internal/adascale) into a thing you can curl.
//
// The API is deliberately small and stdlib-only:
//
//	POST /v1/streams                 admit a stream (tenant, SLO, queue)
//	POST /v1/streams/{id}/frames     ingest a batch of frames
//	GET  /v1/streams/{id}/results    read detection outputs + accounting
//	GET  /healthz                    liveness (always 200 while the process lives)
//	GET  /readyz                     readiness (503 once draining)
//	GET  /metrics                    internal/obs registry, Prometheus text format
//
// Middleware layers per-tenant token-bucket rate limiting and stream
// quotas, request logging into the obs registry, and panic-to-503
// recovery; all limits are validated up front with typed ConfigErrors.
//
// Determinism boundary: the only wall-clock dependence in the whole stack
// is the Clock bridge (clock.go) that stamps arrivals. Under a
// ScriptClock every response — including the /metrics body — is a pure
// function of the request script, which is how the handler layer is
// golden-tested with recorded scripts over httptest (internal/regress).
// Graceful drain on SIGTERM follows the same contract as the batch
// scheduler's chaos gate: stop admission, flush every admitted frame
// through the pipeline, and only then close — offered == served + dropped
// holds through shutdown.
package server

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"

	"adascale/internal/adascale"
	"adascale/internal/obs"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
)

// ConfigError is the typed error Validate returns for a rejected server
// configuration — the same shape as serve.ConfigError, so callers treat
// transport misconfiguration and scheduler misconfiguration uniformly.
type ConfigError struct {
	Field  string // the Config field that was rejected
	Reason string // why
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("server: invalid config: %s: %s", e.Field, e.Reason)
}

// RateLimit is the per-tenant token bucket: RPS tokens per virtual second
// refill a bucket of Burst capacity; each admission or ingestion request
// spends one token. RPS 0 disables limiting.
type RateLimit struct {
	RPS   float64
	Burst int
}

// Config parameterises the HTTP server.
type Config struct {
	// Seed drives the deterministic randomness base of ingested frames
	// (synth.NewFrame); for a fixed seed the detections served for a
	// recorded request script are byte-identical.
	Seed int64

	// Workers sizes the compute pool backing all streams. 0 means
	// parallel.Workers().
	Workers int

	// QueueDepth is the default per-stream arrival queue bound (streams
	// may request their own at admission); beyond it the oldest queued
	// frame is dropped. 0 means 8; negative is rejected.
	QueueDepth int

	// MaxStreams caps admitted streams across all tenants (0 = unlimited).
	MaxStreams int

	// TenantStreams caps admitted streams per tenant (0 = unlimited).
	TenantStreams int

	// SLOMS is the default per-frame end-to-end latency SLO in virtual ms
	// (0 disables; streams may request their own at admission).
	SLOMS float64

	// Rate is the per-tenant token-bucket rate limit on admission and
	// ingestion requests.
	Rate RateLimit

	// Resilient tunes each stream's degradation ladder; its DeadlineMS is
	// overridden per stream by the effective SLO.
	Resilient adascale.ResilientConfig

	// Clock is the transport→virtual-time bridge. nil means a WallClock
	// started at construction; tests install a ScriptClock.
	Clock Clock

	// Sync makes ingestion process frames inline in the handler instead
	// of on per-stream consumer goroutines — the mode the golden tests
	// replay recorded scripts in, where responses must already carry the
	// frame's outcome.
	Sync bool

	// Metrics is the registry the server records into (shared with
	// /metrics). nil means a fresh registry.
	Metrics *obs.Metrics
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.Clock == nil {
		c.Clock = NewWallClock()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// Validate reports configuration errors. Zero values that mean "default"
// (QueueDepth, Workers, Clock, Metrics) pass; values that cannot mean
// anything (negative capacities, non-finite or negative rates) are
// rejected with a typed *ConfigError naming the field.
func (c *Config) Validate() error {
	if c.Workers < 0 {
		return &ConfigError{Field: "Workers", Reason: fmt.Sprintf("negative worker count %d", c.Workers)}
	}
	if c.QueueDepth < 0 {
		return &ConfigError{Field: "QueueDepth", Reason: fmt.Sprintf("negative queue depth %d cannot admit a frame", c.QueueDepth)}
	}
	if c.MaxStreams < 0 {
		return &ConfigError{Field: "MaxStreams", Reason: fmt.Sprintf("negative MaxStreams %d", c.MaxStreams)}
	}
	if c.TenantStreams < 0 {
		return &ConfigError{Field: "TenantStreams", Reason: fmt.Sprintf("negative TenantStreams %d", c.TenantStreams)}
	}
	if math.IsNaN(c.SLOMS) || math.IsInf(c.SLOMS, 0) || c.SLOMS < 0 {
		return &ConfigError{Field: "SLOMS", Reason: fmt.Sprintf("SLO %v ms is not a usable deadline", c.SLOMS)}
	}
	if math.IsNaN(c.Rate.RPS) || math.IsInf(c.Rate.RPS, 0) || c.Rate.RPS < 0 {
		return &ConfigError{Field: "Rate.RPS", Reason: fmt.Sprintf("rate %v req/s is not a usable rate", c.Rate.RPS)}
	}
	if c.Rate.Burst < 0 {
		return &ConfigError{Field: "Rate.Burst", Reason: fmt.Sprintf("negative burst %d", c.Rate.Burst)}
	}
	if c.Rate.RPS > 0 && c.Rate.Burst == 0 {
		return &ConfigError{Field: "Rate.Burst", Reason: "a rate limit needs a positive burst (a zero-capacity bucket rejects every request)"}
	}
	return nil
}

// Server is the HTTP front end: engine + middleware + routes.
type Server struct {
	cfg     Config
	engine  *engine
	metrics *obs.Metrics
	clock   Clock
	limiter *tenantLimiter
	handler http.Handler

	mu       sync.Mutex
	draining bool
	httpSrv  *http.Server
}

// New builds a server for a trained system. The detector and regressor are
// cloned per pool worker; the originals are not touched by serving.
func New(det *rfcn.Detector, reg *regressor.Regressor, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: cfg.Metrics,
		clock:   cfg.Clock,
	}
	s.engine = newEngine(det, reg, cfg)
	s.limiter = newTenantLimiter(cfg.Rate, cfg.Clock)
	s.handler = s.routes()
	return s, nil
}

// Metrics returns the registry the server records into.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Handler returns the fully-middlewared HTTP handler — what Serve binds to
// a listener and what the golden tests drive through httptest without one.
func (s *Server) Handler() http.Handler { return s.handler }

// Draining reports whether drain has started (readiness probes flip 503).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// StartDrain closes the front door without waiting: admission and
// ingestion begin returning 503, /readyz flips to 503, already-admitted
// frames keep flowing to results.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.engine.stopAdmission()
}

// Drain performs the full graceful drain: stop admission, flush every
// queued and in-flight frame through the pipeline, close the compute
// pool. After Drain, offered == served + dropped on every stream.
func (s *Server) Drain() {
	s.StartDrain()
	s.engine.drain()
}

// Stats reports the accounting invariant's terms summed over streams.
func (s *Server) Stats() (offered, served, dropped int) { return s.engine.stats() }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.handler}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	return srv.Serve(ln)
}

// Shutdown gracefully drains and stops the listener: admission closes,
// every admitted frame is flushed, then in-flight HTTP requests get until
// ctx's deadline to complete.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}
