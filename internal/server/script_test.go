package server

import (
	"strings"
	"testing"
)

func TestParseScript(t *testing.T) {
	steps, err := ParseScript(`# a comment
@100
POST /v1/streams tenant=cam
{"tenant":"cam",
 "slo_ms":500}

GET /healthz

DRAIN
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 {
		t.Fatalf("parsed %d steps, want 4: %+v", len(steps), steps)
	}
	if !steps[0].Advance || steps[0].AdvanceMS != 100 {
		t.Fatalf("step 0: %+v", steps[0])
	}
	if steps[1].Method != "POST" || steps[1].Tenant != "cam" || !strings.Contains(steps[1].Body, "slo_ms") {
		t.Fatalf("step 1: %+v", steps[1])
	}
	if steps[2].Method != "GET" || steps[2].Body != "" {
		t.Fatalf("step 2: %+v", steps[2])
	}
	if !steps[3].Drain {
		t.Fatalf("step 3: %+v", steps[3])
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, bad := range []string{
		"@notanumber\n",
		"POST\n",
		"POST /v1/streams wat=1\n",
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Fatalf("ParseScript(%q) accepted a malformed script", bad)
		}
	}
}

func TestReplayNeedsClockForAdvance(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, Sync: true, Clock: NewScriptClock()})
	if _, err := srv.ReplayScript("@10\n", nil); err == nil {
		t.Fatal("Replay accepted a clock advance with no ScriptClock")
	}
}

func TestCanonMetricsSortsWithinFamilies(t *testing.T) {
	in := "# HELP m counter x\n# TYPE m counter\nm_b 2\nm_a 1\n# HELP n gauge y\n# TYPE n gauge\nn 3\n"
	want := "# HELP m counter x\n# TYPE m counter\nm_a 1\nm_b 2\n# HELP n gauge y\n# TYPE n gauge\nn 3\n"
	if got := CanonMetrics(in); got != want {
		t.Fatalf("CanonMetrics:\n%q\nwant\n%q", got, want)
	}
	// Idempotent, and stable on already-sorted input.
	if got := CanonMetrics(want); got != want {
		t.Fatalf("CanonMetrics not idempotent:\n%q", got)
	}
}
