package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"adascale/internal/adascale"
	"adascale/internal/synth"
)

var (
	buildOnce sync.Once
	sharedSys *adascale.System
)

// system builds one small trained system shared across the package's tests.
func system(t *testing.T) *adascale.System {
	t.Helper()
	buildOnce.Do(func() {
		cfg := synth.VIDLike(5)
		ds, err := synth.Generate(cfg, 12, 6)
		if err != nil {
			t.Fatal(err)
		}
		sharedSys = adascale.Build(ds, adascale.DefaultBuildConfig())
	})
	return sharedSys
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	sys := system(t)
	srv, err := New(sys.Detector, sys.Regressor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// do drives one request through the full middleware chain.
func do(t *testing.T, srv *Server, method, path, tenant, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

// admit admits a stream and returns its ID.
func admit(t *testing.T, srv *Server, tenant string) int {
	t.Helper()
	rec := do(t, srv, "POST", "/v1/streams", tenant, fmt.Sprintf(`{"tenant":%q}`, tenant))
	if rec.Code != http.StatusCreated {
		t.Fatalf("admit status = %d, body %s", rec.Code, rec.Body)
	}
	var reply AdmitReply
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	return reply.StreamID
}

// frameBody is a minimal valid one-frame ingestion body.
const frameBody = `{"frames":[{"w":320,"h":240,"objects":[{"id":1,"class":0,"x1":40,"y1":40,"x2":120,"y2":120}]}]}`

// TestConfigValidate is the table-driven contract for the typed
// ConfigError validation of the rate-limit and quota knobs.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		wantField string // "" means valid
	}{
		{"zero value ok", Config{}, ""},
		{"defaults ok", Config{Workers: 2, QueueDepth: 4, SLOMS: 80, Rate: RateLimit{RPS: 10, Burst: 5}}, ""},
		{"negative workers", Config{Workers: -1}, "Workers"},
		{"negative queue depth", Config{QueueDepth: -3}, "QueueDepth"},
		{"negative max streams", Config{MaxStreams: -1}, "MaxStreams"},
		{"negative tenant quota", Config{TenantStreams: -2}, "TenantStreams"},
		{"negative slo", Config{SLOMS: -10}, "SLOMS"},
		{"nan slo", Config{SLOMS: math.NaN()}, "SLOMS"},
		{"inf slo", Config{SLOMS: math.Inf(1)}, "SLOMS"},
		{"negative rate", Config{Rate: RateLimit{RPS: -1, Burst: 1}}, "Rate.RPS"},
		{"nan rate", Config{Rate: RateLimit{RPS: math.NaN(), Burst: 1}}, "Rate.RPS"},
		{"inf rate", Config{Rate: RateLimit{RPS: math.Inf(1), Burst: 1}}, "Rate.RPS"},
		{"negative burst", Config{Rate: RateLimit{Burst: -1}}, "Rate.Burst"},
		{"rate without burst", Config{Rate: RateLimit{RPS: 5}}, "Rate.Burst"},
		{"burst without rate ok", Config{Rate: RateLimit{Burst: 5}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var cerr *ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if cerr.Field != tc.wantField {
				t.Fatalf("ConfigError.Field = %q, want %q", cerr.Field, tc.wantField)
			}
			if !strings.Contains(cerr.Error(), tc.wantField) {
				t.Fatalf("Error() %q does not name the field", cerr.Error())
			}
		})
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	sys := system(t)
	if _, err := New(sys.Detector, sys.Regressor, Config{Workers: -1}); err == nil {
		t.Fatal("New accepted a negative worker count")
	}
}

// TestEmptyTenantRejected pins the typed 400 for admission with no tenant.
func TestEmptyTenantRejected(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, Sync: true, Clock: NewScriptClock()})
	rec := do(t, srv, "POST", "/v1/streams", "", `{"tenant":""}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "tenant") {
		t.Fatalf("error body %q does not name the tenant field", rec.Body)
	}
}

// TestServeEndToEnd walks the happy path through the full chain: admit,
// ingest, read results, scrape metrics.
func TestServeEndToEnd(t *testing.T) {
	clock := NewScriptClock()
	srv := newServer(t, Config{Workers: 1, Sync: true, Clock: clock, SLOMS: 1000})
	id := admit(t, srv, "cam")

	rec := do(t, srv, "POST", fmt.Sprintf("/v1/streams/%d/frames", id), "cam", frameBody)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest status = %d, body %s", rec.Code, rec.Body)
	}
	var ing IngestReply
	if err := json.Unmarshal(rec.Body.Bytes(), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Accepted != 1 || ing.Dropped != 0 || ing.Queued != 0 {
		t.Fatalf("ingest reply = %+v, want 1 accepted, 0 dropped, 0 queued (sync)", ing)
	}

	rec = do(t, srv, "GET", fmt.Sprintf("/v1/streams/%d/results", id), "cam", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("results status = %d", rec.Code)
	}
	var res ResultsReply
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Served != 1 || len(res.Results) != 1 {
		t.Fatalf("results = %+v, want one served frame", res)
	}
	if res.Results[0].Scale <= 0 {
		t.Fatalf("served frame has no scale: %+v", res.Results[0])
	}

	rec = do(t, srv, "GET", "/metrics", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	for _, want := range []string{"adascale_frames_served 1", "# TYPE adascale_frames_served counter"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("metrics body missing %q:\n%s", want, rec.Body)
		}
	}
}

// TestResultsFromOffset pins the from= pagination contract.
func TestResultsFromOffset(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, Sync: true, Clock: NewScriptClock()})
	id := admit(t, srv, "cam")
	for i := 0; i < 3; i++ {
		if rec := do(t, srv, "POST", fmt.Sprintf("/v1/streams/%d/frames", id), "cam", frameBody); rec.Code != http.StatusAccepted {
			t.Fatalf("ingest %d: status %d", i, rec.Code)
		}
	}
	rec := do(t, srv, "GET", fmt.Sprintf("/v1/streams/%d/results?from=2", id), "cam", "")
	var res ResultsReply
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.From != 2 || len(res.Results) != 1 || res.Served != 3 {
		t.Fatalf("results from=2: %+v", res)
	}
	if res.Results[0].Index != 2 {
		t.Fatalf("paged result has index %d, want 2", res.Results[0].Index)
	}
	if rec := do(t, srv, "GET", fmt.Sprintf("/v1/streams/%d/results?from=-1", id), "cam", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative from: status %d, want 400", rec.Code)
	}
}

// TestErrorMapping pins the HTTP status for each error family.
func TestErrorMapping(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, Sync: true, Clock: NewScriptClock()})
	if rec := do(t, srv, "POST", "/v1/streams/99/frames", "cam", frameBody); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown stream: status %d, want 404", rec.Code)
	}
	if rec := do(t, srv, "GET", "/v1/streams/notanint/results", "cam", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d, want 400", rec.Code)
	}
	id := admit(t, srv, "cam")
	if rec := do(t, srv, "POST", fmt.Sprintf("/v1/streams/%d/frames", id), "cam", `{"frames":[]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", rec.Code)
	}
	if rec := do(t, srv, "POST", fmt.Sprintf("/v1/streams/%d/frames", id), "cam", `not json`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", rec.Code)
	}
}

// TestQuotas pins both admission-control rejections as 429s.
func TestQuotas(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, Sync: true, Clock: NewScriptClock(), MaxStreams: 2, TenantStreams: 1})
	admit(t, srv, "a")
	if rec := do(t, srv, "POST", "/v1/streams", "a", `{"tenant":"a"}`); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("tenant quota: status %d, want 429", rec.Code)
	}
	admit(t, srv, "b")
	if rec := do(t, srv, "POST", "/v1/streams", "c", `{"tenant":"c"}`); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("capacity: status %d, want 429", rec.Code)
	}
	if got := srv.Metrics().Counter("admission/rejected_quota"); got != 1 {
		t.Fatalf("admission/rejected_quota = %d, want 1", got)
	}
	if got := srv.Metrics().Counter("admission/rejected_capacity"); got != 1 {
		t.Fatalf("admission/rejected_capacity = %d, want 1", got)
	}
}

// TestRateLimit drives the token bucket with a scripted clock: a tenant
// with burst 2 gets two requests, is throttled, then recovers exactly when
// virtual time has refilled one token — and a second tenant is unaffected.
func TestRateLimit(t *testing.T) {
	clock := NewScriptClock()
	srv := newServer(t, Config{
		Workers: 1, Sync: true, Clock: clock,
		Rate: RateLimit{RPS: 1, Burst: 2},
	})
	id := admit(t, srv, "a") // spends token 1
	path := fmt.Sprintf("/v1/streams/%d/frames", id)
	if rec := do(t, srv, "POST", path, "a", frameBody); rec.Code != http.StatusAccepted {
		t.Fatalf("second request: status %d, want 202", rec.Code)
	}
	if rec := do(t, srv, "POST", path, "a", frameBody); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("bucket empty: status %d, want 429", rec.Code)
	}
	if got := srv.Metrics().Counter("ratelimit/throttled"); got != 1 {
		t.Fatalf("ratelimit/throttled = %d, want 1", got)
	}
	// Another tenant has its own bucket.
	if rec := do(t, srv, "POST", "/v1/streams", "b", `{"tenant":"b"}`); rec.Code != http.StatusCreated {
		t.Fatalf("tenant b: status %d, want 201", rec.Code)
	}
	// One virtual second refills one token for tenant a.
	clock.AdvanceTo(1000)
	if rec := do(t, srv, "POST", path, "a", frameBody); rec.Code != http.StatusAccepted {
		t.Fatalf("after refill: status %d, want 202", rec.Code)
	}
	// Probes and scrapes bypass the limiter even for a throttled tenant.
	if rec := do(t, srv, "POST", path, "a", frameBody); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("bucket empty again: status %d, want 429", rec.Code)
	}
	for _, p := range []string{"/healthz", "/metrics"} {
		if rec := do(t, srv, "GET", p, "a", ""); rec.Code != http.StatusOK {
			t.Fatalf("%s throttled: status %d, want 200", p, rec.Code)
		}
	}
}

// TestQueueDropOldest pins bounded-queue accounting through the HTTP
// surface: overflowing a depth-2 queue drops the oldest frames and reports
// them in both the reply and the registry.
func TestQueueDropOldest(t *testing.T) {
	clock := NewScriptClock()
	// Async server whose consumer can't run: workers exist but the queue
	// fills faster than the virtual clock lets frames complete. Use sync
	// mode off and drain later — here we only check the push-side
	// accounting, so use a stream with depth 2 and a 5-frame batch.
	srv := newServer(t, Config{Workers: 1, Clock: clock, QueueDepth: 2})
	rec := do(t, srv, "POST", "/v1/streams", "cam", `{"tenant":"cam","queue":2}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("admit: %d", rec.Code)
	}
	var ad AdmitReply
	if err := json.Unmarshal(rec.Body.Bytes(), &ad); err != nil {
		t.Fatal(err)
	}
	frames := `{"frames":[` + strings.Repeat(`{"w":64,"h":64},`, 4) + `{"w":64,"h":64}]}`
	rec = do(t, srv, "POST", fmt.Sprintf("/v1/streams/%d/frames", ad.StreamID), "cam", frames)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	var ing IngestReply
	if err := json.Unmarshal(rec.Body.Bytes(), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Accepted != 5 || ing.Dropped < 3 {
		t.Fatalf("ingest reply %+v: want 5 accepted with >=3 dropped at depth 2", ing)
	}
	srv.Drain()
	offered, served, dropped := srv.Stats()
	if offered != 5 || offered != served+dropped {
		t.Fatalf("accounting: offered=%d served=%d dropped=%d", offered, served, dropped)
	}
}

// TestDrainInvariant is the zero-loss shutdown gate in async mode: many
// tenants ingesting concurrently, drain mid-flight, and every admitted
// frame must be accounted served or dropped — offered == served + dropped —
// with post-drain traffic refused.
func TestDrainInvariant(t *testing.T) {
	srv := newServer(t, Config{Workers: 4, SLOMS: 500})
	const streams = 4
	ids := make([]int, streams)
	for i := range ids {
		ids[i] = admit(t, srv, fmt.Sprintf("t%d", i))
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Post-drain rejections are fine; accepted frames must not be lost.
				do(t, srv, "POST", fmt.Sprintf("/v1/streams/%d/frames", id), "x", frameBody)
			}
		}(id)
	}
	wg.Wait()
	srv.Drain()
	offered, served, dropped := srv.Stats()
	if offered == 0 {
		t.Fatal("no frames offered; test drove nothing")
	}
	if offered != served+dropped {
		t.Fatalf("drain lost frames: offered=%d served=%d dropped=%d lost=%d",
			offered, served, dropped, offered-served-dropped)
	}
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if rec := do(t, srv, "POST", "/v1/streams", "late", `{"tenant":"late"}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain admission: status %d, want 503", rec.Code)
	}
	if rec := do(t, srv, "GET", "/readyz", "", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain readyz: status %d, want 503", rec.Code)
	}
	// Results stay readable after drain.
	if rec := do(t, srv, "GET", fmt.Sprintf("/v1/streams/%d/results", ids[0]), "x", ""); rec.Code != http.StatusOK {
		t.Fatalf("post-drain results: status %d, want 200", rec.Code)
	}
}

// TestProbes pins the liveness/readiness split.
func TestProbes(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, Sync: true, Clock: NewScriptClock()})
	if rec := do(t, srv, "GET", "/healthz", "", ""); rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body)
	}
	if rec := do(t, srv, "GET", "/readyz", "", ""); rec.Code != http.StatusOK || rec.Body.String() != "ready\n" {
		t.Fatalf("readyz: %d %q", rec.Code, rec.Body)
	}
	srv.StartDrain()
	if rec := do(t, srv, "GET", "/healthz", "", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200 (liveness is not readiness)", rec.Code)
	}
	if rec := do(t, srv, "GET", "/readyz", "", ""); rec.Code != http.StatusServiceUnavailable || rec.Body.String() != "draining\n" {
		t.Fatalf("readyz while draining: %d %q", rec.Code, rec.Body)
	}
	srv.Drain()
}

// TestRecoverMiddleware pins panic-to-503: a handler panic becomes a JSON
// 503 and a counter, not a dead connection.
func TestRecoverMiddleware(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, Sync: true, Clock: NewScriptClock()})
	boom := srv.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("panic status = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "boom") {
		t.Fatalf("panic body %q does not carry the cause", rec.Body)
	}
	if got := srv.Metrics().Counter("http/panic"); got != 1 {
		t.Fatalf("http/panic = %d, want 1", got)
	}
}

// TestRequestLogging pins that the logging middleware buckets statuses.
func TestRequestLogging(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, Sync: true, Clock: NewScriptClock()})
	admit(t, srv, "cam")
	do(t, srv, "POST", "/v1/streams/99/frames", "cam", frameBody) // 404
	m := srv.Metrics()
	if got := m.Counter("http/requests"); got != 2 {
		t.Fatalf("http/requests = %d, want 2", got)
	}
	if m.Counter("http/status/2xx") != 1 || m.Counter("http/status/4xx") != 1 {
		t.Fatalf("status buckets: 2xx=%d 4xx=%d, want 1 and 1",
			m.Counter("http/status/2xx"), m.Counter("http/status/4xx"))
	}
}

// TestSyncReplayDeterministic replays the same script twice against fresh
// servers and requires byte-identical transcripts — the property the
// committed goldens in internal/regress build on.
func TestSyncReplayDeterministic(t *testing.T) {
	script := `# two-stream replay
POST /v1/streams tenant=cam
{"tenant":"cam","slo_ms":500}

@40
POST /v1/streams/0/frames tenant=cam
{"frames":[{"w":320,"h":240,"objects":[{"id":1,"class":0,"x1":30,"y1":30,"x2":110,"y2":128}]}]}

@90
GET /v1/streams/0/results tenant=cam

DRAIN
GET /metrics
`
	run := func() string {
		clock := NewScriptClock()
		srv := newServer(t, Config{Workers: 1, Sync: true, Clock: clock, Seed: 11})
		out, err := srv.ReplayScript(script, clock)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay transcripts diverge:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, want := range []string{"### DRAIN", "lost=0", "### GET /metrics", "adascale_frames_served 1"} {
		if !strings.Contains(a, want) {
			t.Fatalf("transcript missing %q:\n%s", want, a)
		}
	}
}
