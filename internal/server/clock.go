package server

import (
	"sync"
	"time"
)

// The clock bridge is the determinism boundary of the HTTP front end. The
// scheduler core underneath (internal/serve, internal/adascale,
// internal/simclock) lives entirely in virtual milliseconds; the transport
// has to stamp each arriving frame with *some* instant on that clock. A
// real deployment stamps wall time since process start (WallClock); the
// handler golden tests stamp scripted instants (ScriptClock), which makes
// every response — admission acks, results, even the /metrics scrape — a
// pure function of the recorded request script. Nothing below the bridge
// ever reads the wall clock.

// Clock maps transport arrivals onto the virtual serving clock.
type Clock interface {
	// NowMS returns the current instant in virtual milliseconds. It must
	// be monotonically non-decreasing and safe for concurrent use.
	NowMS() float64
}

// WallClock is the production bridge: virtual time is wall time elapsed
// since construction, in milliseconds.
type WallClock struct {
	start time.Time
}

// NewWallClock starts a wall-clock bridge at virtual time zero.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// NowMS implements Clock.
func (c *WallClock) NowMS() float64 {
	return float64(time.Since(c.start)) / float64(time.Millisecond)
}

// ScriptClock is the deterministic bridge for tests and recorded request
// scripts: time advances only when the script says so.
type ScriptClock struct {
	mu    sync.Mutex
	nowMS float64
}

// NewScriptClock starts a scripted clock at virtual time zero.
func NewScriptClock() *ScriptClock { return &ScriptClock{} }

// NowMS implements Clock.
func (c *ScriptClock) NowMS() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nowMS
}

// AdvanceTo moves the clock forward to ms. Moves backwards are ignored —
// the bridge contract is monotonic, so a script that rewinds time is
// clamped rather than breaking every latency computation downstream.
func (c *ScriptClock) AdvanceTo(ms float64) {
	c.mu.Lock()
	if ms > c.nowMS {
		c.nowMS = ms
	}
	c.mu.Unlock()
}
