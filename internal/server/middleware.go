package server

import (
	"fmt"
	"net/http"
	"sync"
)

// Middleware for the serving front end. The chain, outermost first, is
// recovery → logging → rate limiting: a panic anywhere below becomes a
// 503 instead of a dead connection, every request lands in the obs
// registry whatever its fate, and tenants are throttled before their
// request touches the engine.

// recoverMiddleware converts handler panics into 503 responses and counts
// them, mirroring the compute pool's panic containment: one bad request
// must not take down the server or silently close the connection.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Inc("http/panic", 1)
				writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("internal panic: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusRecorder captures the status code a handler wrote so the logging
// middleware can bucket it after the fact.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// logMiddleware records every request into the obs registry: a total
// counter, a per-status-class counter, and (under a deterministic clock)
// nothing that would perturb golden replays — virtual timestamps come from
// the same bridge as frame arrivals, so no wall time leaks in.
func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.metrics.Inc("http/requests", 1)
		s.metrics.Inc(fmt.Sprintf("http/status/%dxx", rec.status/100), 1)
	})
}

// tenantLimiter applies a token bucket per tenant, refilled from the clock
// bridge. Virtual time, not wall time, drives refill — so under a
// ScriptClock the limiter's decisions are part of the recorded script,
// and under a WallClock it behaves like any production limiter.
type tenantLimiter struct {
	rate  RateLimit
	clock Clock

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64 // current fill, <= Burst
	lastMS float64 // virtual instant of the last refill
}

func newTenantLimiter(rate RateLimit, clock Clock) *tenantLimiter {
	return &tenantLimiter{rate: rate, clock: clock, buckets: make(map[string]*bucket)}
}

// allow spends one token from tenant's bucket, reporting whether one was
// available. A zero-RPS limiter admits everything.
func (l *tenantLimiter) allow(tenant string) bool {
	if l.rate.RPS <= 0 {
		return true
	}
	now := l.clock.NowMS()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		// A new tenant starts with a full burst.
		b = &bucket{tokens: float64(l.rate.Burst), lastMS: now}
		l.buckets[tenant] = b
	}
	refill := (now - b.lastMS) / 1000 * l.rate.RPS
	if refill > 0 {
		b.tokens += refill
		if max := float64(l.rate.Burst); b.tokens > max {
			b.tokens = max
		}
		b.lastMS = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// rateLimitMiddleware throttles admission and ingestion per tenant. The
// tenant is taken from the X-Tenant header on ingestion/results routes and
// from the admission body by the admission handler itself — so here,
// header-less requests fall into the shared "" bucket.
func (s *Server) rateLimitMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.limiter.allow(r.Header.Get("X-Tenant")) {
			s.metrics.Inc("ratelimit/throttled", 1)
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// chain applies the standard middleware stack to the API routes.
func (s *Server) chain(h http.Handler) http.Handler {
	return s.recoverMiddleware(s.logMiddleware(s.rateLimitMiddleware(h)))
}
