package server

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

const testClasses = 8

func TestDecodeIngestAccepts(t *testing.T) {
	body := `{"frames":[
		{"w":320,"h":240},
		{"w":64,"h":64,"clutter":0.5,"blur":2.5,
		 "objects":[{"id":3,"class":7,"x1":1,"y1":2,"x2":30,"y2":40,
		             "texture":2,"intensity":0.4,"speed":12}]}
	]}`
	req, err := DecodeIngest([]byte(body), testClasses)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Frames) != 2 || len(req.Frames[1].Objects) != 1 {
		t.Fatalf("decoded %+v", req)
	}
}

func TestDecodeIngestRejects(t *testing.T) {
	obj := func(field, val string) string {
		o := map[string]string{"id": "1", "class": "0", "x1": "10", "y1": "10", "x2": "50", "y2": "50"}
		o[field] = val
		return fmt.Sprintf(`{"id":%s,"class":%s,"x1":%s,"y1":%s,"x2":%s,"y2":%s,"texture":%s,"intensity":%s,"speed":%s}`,
			pick(o, "id"), pick(o, "class"), pick(o, "x1"), pick(o, "y1"), pick(o, "x2"), pick(o, "y2"),
			pick(o, "texture"), pick(o, "intensity"), pick(o, "speed"))
	}
	withObj := func(o string) string {
		return `{"frames":[{"w":320,"h":240,"objects":[` + o + `]}]}`
	}
	cases := []struct {
		name, body, wantField string
	}{
		{"not json", `nope`, "body"},
		{"trailing document", `{"frames":[{"w":64,"h":64}]}{"frames":[]}`, "body"},
		{"unknown field", `{"frames":[{"w":64,"h":64,"wat":1}]}`, "body"},
		{"empty batch", `{"frames":[]}`, "frames"},
		{"missing frames", `{}`, "frames"},
		{"width too small", `{"frames":[{"w":8,"h":64}]}`, "frames[0].w"},
		{"height too big", `{"frames":[{"w":64,"h":9999}]}`, "frames[0].h"},
		{"clutter out of range", `{"frames":[{"w":64,"h":64,"clutter":1.5}]}`, "frames[0].clutter"},
		{"blur negative", `{"frames":[{"w":64,"h":64,"blur":-1}]}`, "frames[0].blur"},
		{"class out of vocab", withObj(obj("class", "99")), "frames[0].objects[0].class"},
		{"class negative", withObj(obj("class", "-1")), "frames[0].objects[0].class"},
		{"degenerate box", withObj(obj("x2", "10")), "frames[0].objects[0].x2"},
		{"far coordinate", withObj(obj("x1", "-99999")), "frames[0].objects[0].x1"},
		{"bad texture", withObj(obj("texture", "9")), "frames[0].objects[0].texture"},
		{"bad intensity", withObj(obj("intensity", "2")), "frames[0].objects[0].intensity"},
		{"bad speed", withObj(obj("speed", "-5")), "frames[0].objects[0].speed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeIngest([]byte(tc.body), testClasses)
			var rerr *RequestError
			if !errors.As(err, &rerr) {
				t.Fatalf("DecodeIngest() err = %v, want *RequestError", err)
			}
			if rerr.Field != tc.wantField {
				t.Fatalf("RequestError.Field = %q, want %q", rerr.Field, tc.wantField)
			}
		})
	}
}

// pick exists so the object template above reads as a table.
func pick(m map[string]string, k string) string {
	if v, ok := m[k]; ok {
		return v
	}
	return "0"
}

func TestDecodeIngestBatchLimit(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"frames":[`)
	for i := 0; i <= MaxFramesPerRequest; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"w":64,"h":64}`)
	}
	b.WriteString(`]}`)
	_, err := DecodeIngest([]byte(b.String()), testClasses)
	var rerr *RequestError
	if !errors.As(err, &rerr) || rerr.Field != "frames" {
		t.Fatalf("oversized batch: err = %v", err)
	}
}

// TestFrameSeedDeterminism pins the wire→synth bridge: the randomness base
// is a pure function of (server seed, stream, index) — identical
// coordinates give identical seeds, any coordinate changing reseeds the
// frame, and the track seed is shared by every frame of the stream.
func TestFrameSeedDeterminism(t *testing.T) {
	spec := FrameSpec{W: 64, H: 48, Clutter: 0.3,
		Objects: []ObjectSpec{{ID: 1, Class: 2, X1: 4, Y1: 4, X2: 40, Y2: 40}}}
	a := spec.frame(7, 0, 3)
	b := spec.frame(7, 0, 3)
	if a.W != 64 || a.H != 48 || a.Index != 3 || len(a.Objects) != 1 {
		t.Fatalf("frame %+v", a)
	}
	if a.Seed() != b.Seed() || a.TrackSeed() != b.TrackSeed() {
		t.Fatalf("same (seed, stream, index) gave different randomness bases: %d/%d vs %d/%d",
			a.Seed(), a.TrackSeed(), b.Seed(), b.TrackSeed())
	}
	if c := spec.frame(8, 0, 3); c.Seed() == a.Seed() {
		t.Fatal("changing the server seed did not reseed the frame")
	}
	if c := spec.frame(7, 1, 3); c.Seed() == a.Seed() || c.TrackSeed() == a.TrackSeed() {
		t.Fatal("changing the stream did not reseed the frame and its track")
	}
	if c := spec.frame(7, 0, 4); c.Seed() == a.Seed() {
		t.Fatal("changing the index did not reseed the frame")
	}
	if c := spec.frame(7, 0, 4); c.TrackSeed() != a.TrackSeed() {
		t.Fatal("frames of one stream must share the track seed")
	}
}

func TestFrameDefaultIntensity(t *testing.T) {
	spec := FrameSpec{W: 64, H: 64,
		Objects: []ObjectSpec{{ID: 1, Class: 0, X1: 4, Y1: 4, X2: 40, Y2: 40}}}
	fr := spec.frame(1, 0, 0)
	if got := fr.Objects[0].Intensity; got != 0.8 {
		t.Fatalf("default intensity = %v, want 0.8", got)
	}
}
