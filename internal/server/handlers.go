package server

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
)

// Route handlers. Error mapping is uniform: *RequestError → 400,
// ErrNoSuchStream → 404, *QuotaError and rate-limit rejections → 429,
// ErrDraining → 503. Every response body — success or error — is a single
// JSON document terminated by a newline, so recorded transcripts diff
// cleanly.

// errorReply is the JSON body of every non-2xx response.
type errorReply struct {
	Error string `json:"error"`
}

// AdmitRequest is the body of POST /v1/streams.
type AdmitRequest struct {
	Tenant string  `json:"tenant"`
	SLOMS  float64 `json:"slo_ms,omitempty"` // 0 means the server default
	Queue  int     `json:"queue,omitempty"`  // 0 means the server default
}

// AdmitReply acknowledges an admitted stream.
type AdmitReply struct {
	StreamID int     `json:"stream_id"`
	Tenant   string  `json:"tenant"`
	SLOMS    float64 `json:"slo_ms"`
	Queue    int     `json:"queue"`
}

// writeJSON writes v as the complete response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // Encode appends the trailing newline transcripts rely on
}

// writeError writes a uniform JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorReply{Error: msg})
}

// writeEngineError maps engine and decode errors onto HTTP statuses.
func writeEngineError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	var quotaErr *QuotaError
	switch {
	case errors.As(err, &reqErr):
		writeError(w, http.StatusBadRequest, reqErr.Error())
	case errors.As(err, &quotaErr):
		writeError(w, http.StatusTooManyRequests, quotaErr.Error())
	case errors.Is(err, ErrNoSuchStream):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// readBody drains a bounded request body; too-large bodies become 400s via
// the typed error path rather than connection resets.
func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return nil, &RequestError{Field: "body", Reason: err.Error()}
	}
	return body, nil
}

// routes assembles the ServeMux. API routes go through the middleware
// chain; the probes and /metrics stay outside the rate limiter so a
// throttled tenant cannot starve health checking or scraping.
func (s *Server) routes() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/streams", s.handleAdmit)
	api.HandleFunc("POST /v1/streams/{id}/frames", s.handleFrames)
	api.HandleFunc("GET /v1/streams/{id}/results", s.handleResults)

	root := http.NewServeMux()
	root.Handle("/v1/", s.chain(api))
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	return s.recoverMiddleware(root)
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	var req AdmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeEngineError(w, &RequestError{Field: "body", Reason: err.Error()})
		return
	}
	if req.Tenant == "" {
		writeEngineError(w, &RequestError{Field: "tenant", Reason: "empty tenant"})
		return
	}
	if math.IsNaN(req.SLOMS) || math.IsInf(req.SLOMS, 0) || req.SLOMS < 0 {
		writeEngineError(w, &RequestError{Field: "slo_ms", Reason: "not a usable deadline"})
		return
	}
	if req.Queue < 0 {
		writeEngineError(w, &RequestError{Field: "queue", Reason: "negative queue depth"})
		return
	}
	id, effSLO, effQueue, err := s.engine.admit(req.Tenant, req.SLOMS, req.Queue)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, AdmitReply{
		StreamID: id,
		Tenant:   req.Tenant,
		SLOMS:    effSLO,
		Queue:    effQueue,
	})
}

func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeEngineError(w, &RequestError{Field: "id", Reason: "stream id is not an integer"})
		return
	}
	body, err := readBody(r)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	req, err := DecodeIngest(body, s.engine.numClasses)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	reply, err := s.engine.ingest(id, req.Frames)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, reply)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeEngineError(w, &RequestError{Field: "id", Reason: "stream id is not an integer"})
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		from, err = strconv.Atoi(v)
		if err != nil || from < 0 {
			writeEngineError(w, &RequestError{Field: "from", Reason: "not a non-negative integer"})
			return
		}
	}
	reply, err := s.engine.results(id, from)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ready\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, s.metrics.Prometheus("adascale"))
}
