package server

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"adascale/internal/adascale"
	"adascale/internal/obs"
	"adascale/internal/parallel"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/serve"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// The engine is the serving core behind the HTTP handlers: per-stream
// resilient scale-state sessions (adascale.ResilientSession) fed through
// the shared bounded drop-oldest queues (serve.FrameQueue), with the real
// detector/regressor compute fanned out over a persistent parallel.Pool of
// per-worker clones — the same building blocks the virtual-time batch
// scheduler composes, re-plumbed for open-ended network arrival.
//
// Time stays virtual underneath: a frame's arrival instant comes from the
// clock bridge, its service time is the modelled detector cost at the
// scale the session chose, and its completion chains on the stream's
// virtual busy horizon (streams are strictly sequential — frame k+1's
// scale depends on frame k's regressor output). Latency, SLO accounting
// and every metric are therefore pure functions of (admitted requests,
// arrival stamps), which is what makes the handler layer golden-testable
// under a scripted clock while the same engine serves wall-clock traffic.
//
// Accounting invariant: every admitted frame is offered, and ends up
// served (possibly via the degradation ladder) or dropped (queue
// eviction) — offered == served + dropped once the engine has drained,
// the same zero-lost-frames contract the batch scheduler's chaos gate
// asserts, here held through SIGTERM.

// Sentinel errors the handlers map onto HTTP statuses.
var (
	// ErrDraining rejects admission and ingestion once drain has begun.
	ErrDraining = errors.New("server: draining; not accepting new work")
	// ErrNoSuchStream rejects operations on unknown stream IDs.
	ErrNoSuchStream = errors.New("server: no such stream")
)

// QuotaError is the typed rejection for admission-control limits (global
// capacity, per-tenant stream quota); handlers map it to 429.
type QuotaError struct {
	Tenant string
	Reason string
}

// Error implements the error interface.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("server: quota: tenant %q: %s", e.Tenant, e.Reason)
}

// FrameResult is one served frame's outcome as the results endpoint
// reports it.
type FrameResult struct {
	Index     int             `json:"index"`
	Scale     int             `json:"scale"`
	LatencyMS float64         `json:"latency_ms"`
	SLOMiss   bool            `json:"slo_miss,omitempty"`
	Fault     string          `json:"fault,omitempty"`
	Fallback  string          `json:"fallback,omitempty"`
	Dets      []DetectionJSON `json:"detections"`
}

// DetectionJSON is one detection on the wire.
type DetectionJSON struct {
	Class int     `json:"class"`
	Score float64 `json:"score"`
	X1    float64 `json:"x1"`
	Y1    float64 `json:"y1"`
	X2    float64 `json:"x2"`
	Y2    float64 `json:"y2"`
}

// IngestReply is the ingestion endpoint's accounting answer.
type IngestReply struct {
	StreamID int `json:"stream_id"`
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
	Queued   int `json:"queued"`
}

// ResultsReply is the results endpoint's answer: served outputs from the
// requested offset plus the stream's running accounting.
type ResultsReply struct {
	StreamID  int           `json:"stream_id"`
	From      int           `json:"from"`
	Offered   int           `json:"offered"`
	Served    int           `json:"served"`
	Dropped   int           `json:"dropped"`
	Queued    int           `json:"queued"`
	SLOMisses int           `json:"slo_misses"`
	Results   []FrameResult `json:"results"`
}

// stream is one admitted video session.
type stream struct {
	id     int
	tenant string
	sloMS  float64
	depth  int
	sess   *adascale.ResilientSession

	queue   serve.FrameQueue
	running bool // a frame of this stream is in compute right now
	done    bool // consumer goroutine exited (drain finished)

	nextIndex   int     // frame index assigner (keys the seed derivation)
	busyUntilMS float64 // virtual completion horizon of the last frame

	offered, served, dropped, sloMiss int
	results                           []FrameResult
}

// workerState is one pool worker's private detector/regressor clones;
// every clone computes identical values, so which worker serves which
// frame cannot affect any response.
type workerState struct {
	det *rfcn.Detector
	reg *regressor.Regressor
}

// computeResult is what a pool worker hands back for one frame.
type computeResult struct {
	r   *rfcn.Result
	t   float64
	err error
}

// engine owns the admitted streams, the compute pool and the registry.
type engine struct {
	cfg        Config
	clock      Clock
	metrics    *obs.Metrics
	pool       *parallel.Pool[workerState]
	numClasses int
	kernels    []int // regressor branch kernels, for per-stream sessions

	mu       sync.Mutex
	cond     *sync.Cond
	streams  []*stream
	byTenant map[string]int
	draining bool
}

// newEngine builds the engine for a validated, defaulted config.
func newEngine(det *rfcn.Detector, reg *regressor.Regressor, cfg Config) *engine {
	e := &engine{
		cfg:        cfg,
		clock:      cfg.Clock,
		metrics:    cfg.Metrics,
		numClasses: len(det.Data.Classes),
		kernels:    reg.Kernels,
		byTenant:   map[string]int{},
	}
	e.cond = sync.NewCond(&e.mu)
	e.pool = parallel.NewPoolHooked(cfg.Workers, func() workerState {
		return workerState{det: det.Clone(), reg: reg.Clone()}
	}, func(any) { e.metrics.Inc("pool/panic_rebuild", 1) })
	return e
}

// admit creates a stream for tenant under the quota rules, returning its
// ID and the effective SLO and queue depth (zero inputs take the server
// defaults).
func (e *engine) admit(tenant string, sloMS float64, depth int) (id int, effSLO float64, effDepth int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		e.metrics.Inc("admission/rejected_draining", 1)
		return 0, 0, 0, ErrDraining
	}
	if e.cfg.MaxStreams > 0 && len(e.streams) >= e.cfg.MaxStreams {
		e.metrics.Inc("admission/rejected_capacity", 1)
		return 0, 0, 0, &QuotaError{Tenant: tenant, Reason: fmt.Sprintf("server at capacity (%d streams)", e.cfg.MaxStreams)}
	}
	if e.cfg.TenantStreams > 0 && e.byTenant[tenant] >= e.cfg.TenantStreams {
		e.metrics.Inc("admission/rejected_quota", 1)
		return 0, 0, 0, &QuotaError{Tenant: tenant, Reason: fmt.Sprintf("tenant stream quota %d reached", e.cfg.TenantStreams)}
	}
	if sloMS == 0 {
		sloMS = e.cfg.SLOMS
	}
	if depth == 0 {
		depth = e.cfg.QueueDepth
	}
	rcfg := e.cfg.Resilient
	rcfg.DeadlineMS = sloMS
	s := &stream{
		id:     len(e.streams),
		tenant: tenant,
		sloMS:  sloMS,
		depth:  depth,
		sess:   adascale.NewResilientSession(e.kernels, rcfg),
	}
	e.streams = append(e.streams, s)
	e.byTenant[tenant]++
	e.metrics.Inc("sessions/accepted", 1)
	e.metrics.Set("streams/live", float64(len(e.streams)))
	if !e.cfg.Sync {
		go e.consume(s)
	}
	return s.id, sloMS, depth, nil
}

// tenantOf resolves a stream ID to its admitting tenant (for the
// rate-limit middleware on stream-scoped routes).
func (e *engine) tenantOf(id int) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id < 0 || id >= len(e.streams) {
		return "", false
	}
	return e.streams[id].tenant, true
}

// ingest admits a validated batch of frame specs into stream id's bounded
// queue, stamping each with the bridge clock's current instant. In sync
// mode the queue is then flushed inline before returning; otherwise the
// stream's consumer goroutine is woken.
func (e *engine) ingest(id int, frames []FrameSpec) (IngestReply, error) {
	e.mu.Lock()
	if id < 0 || id >= len(e.streams) {
		e.mu.Unlock()
		return IngestReply{}, ErrNoSuchStream
	}
	if e.draining {
		e.mu.Unlock()
		return IngestReply{}, ErrDraining
	}
	s := e.streams[id]
	now := e.clock.NowMS()
	reply := IngestReply{StreamID: id, Accepted: len(frames)}
	for i := range frames {
		fr := frames[i].frame(e.cfg.Seed, id, s.nextIndex)
		s.nextIndex++
		s.offered++
		e.metrics.Inc("frames/offered", 1)
		if dropped := s.queue.Push(serve.QueuedFrame{Frame: fr, ArrivalMS: now}, s.depth); dropped != nil {
			s.dropped++
			reply.Dropped++
			e.metrics.Inc("frames/dropped", 1)
			e.metrics.Inc(fmt.Sprintf("stream/%d/dropped", id), 1)
		}
	}
	e.metrics.Observe("queue/depth", float64(s.queue.Len()))
	e.metrics.SetMax("queue/peak_depth", float64(s.queue.Len()))
	if e.cfg.Sync {
		for s.queue.Len() > 0 {
			e.processLocked(s)
		}
	} else {
		e.cond.Broadcast()
	}
	reply.Queued = s.queue.Len()
	e.mu.Unlock()
	return reply, nil
}

// results returns stream id's served outputs from offset `from` on, plus
// its running accounting.
func (e *engine) results(id, from int) (ResultsReply, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id < 0 || id >= len(e.streams) {
		return ResultsReply{}, ErrNoSuchStream
	}
	s := e.streams[id]
	if from < 0 {
		from = 0
	}
	if from > len(s.results) {
		from = len(s.results)
	}
	out := make([]FrameResult, len(s.results)-from)
	copy(out, s.results[from:])
	return ResultsReply{
		StreamID: id, From: from,
		Offered: s.offered, Served: s.served, Dropped: s.dropped,
		Queued: s.queue.Len(), SLOMisses: s.sloMiss,
		Results: out,
	}, nil
}

// consume is stream s's serializer goroutine (async mode): it drains the
// queue one frame at a time — sessions are strictly sequential — until
// drain is requested and the queue is empty.
func (e *engine) consume(s *stream) {
	e.mu.Lock()
	for {
		for !e.draining && s.queue.Len() == 0 {
			e.cond.Wait()
		}
		if s.queue.Len() == 0 {
			break
		}
		e.processLocked(s)
	}
	s.done = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// processLocked serves the head frame of s: plans the scale, costs the
// frame on the virtual clock, runs the real compute on the pool (lock
// released around it), and settles the output through the resilient
// ladder with the frame's end-to-end virtual latency as the SLO charge.
// Called with e.mu held; returns with it held.
func (e *engine) processLocked(s *stream) {
	qf := s.queue.Pop()
	plan := s.sess.Plan(qf.Frame)
	startMS := math.Max(qf.ArrivalMS, s.busyUntilMS)
	serviceMS := simclock.DetectorBaseMS + plan.JitterMS
	if !plan.Skip {
		serviceMS = simclock.DetectMS(qf.Frame.W, qf.Frame.H, plan.Scale) + s.sess.Overhead() + plan.JitterMS
	}
	doneMS := startMS + serviceMS
	s.busyUntilMS = doneMS
	s.running = true
	e.mu.Unlock()

	var cr computeResult
	if !plan.Skip {
		res := make(chan computeResult, 1)
		frame, scale := qf.Frame, plan.Scale
		submitted := e.pool.Submit(func(w workerState) {
			// A panicking frame must still deliver a result — the consumer
			// blocks on res — and must still count against the pool (state
			// rebuild), hence the re-panic.
			defer func() {
				if r := recover(); r != nil {
					res <- computeResult{err: fmt.Errorf("server: frame compute panicked: %v", r)}
					panic(r)
				}
			}()
			r := w.det.DetectWithFeatures(frame, scale)
			t := w.reg.Predict(r.Features)
			w.det.Recycle(r.Features)
			r.Features = nil
			res <- computeResult{r: r, t: t}
		})
		if submitted {
			cr = <-res
		} else {
			// Pool already closed (drain raced a straggler): degrade to
			// propagation rather than losing the frame.
			cr = computeResult{err: errors.New("server: compute pool closed")}
		}
	}

	e.mu.Lock()
	latency := doneMS - qf.ArrivalMS
	r, t := cr.r, cr.t
	if cr.err != nil {
		r, t = nil, 0
		e.metrics.Inc("frames/panic", 1)
	}
	out := s.sess.Finish(qf.Frame, plan, r, t, latency)
	s.running = false
	s.served++
	e.metrics.Inc("frames/served", 1)
	e.metrics.Inc(fmt.Sprintf("stream/%d/served", s.id), 1)
	e.metrics.Inc(fmt.Sprintf("scale/%d", out.Scale), 1)
	e.metrics.Observe("latency/ms", latency)
	e.metrics.Observe("service/ms", serviceMS)
	e.metrics.Observe("queue/wait_ms", startMS-qf.ArrivalMS)
	if plan.Skip {
		e.metrics.Inc("frames/skipped", 1)
	}
	if out.Health.Fault != synth.FaultNone {
		e.metrics.Inc("fault/"+out.Health.Fault.String(), 1)
	}
	if out.Health.Fallback != adascale.FallbackNone {
		e.metrics.Inc("fallback/"+out.Health.Fallback.String(), 1)
	}
	fr := FrameResult{
		Index:     qf.Frame.Index,
		Scale:     out.Scale,
		LatencyMS: latency,
	}
	if s.sloMS > 0 && latency > s.sloMS {
		fr.SLOMiss = true
		s.sloMiss++
		e.metrics.Inc("slo/miss", 1)
		e.metrics.Inc(fmt.Sprintf("stream/%d/slo_miss", s.id), 1)
	}
	if out.Health.Fault != synth.FaultNone {
		fr.Fault = out.Health.Fault.String()
	}
	if out.Health.Fallback != adascale.FallbackNone {
		fr.Fallback = out.Health.Fallback.String()
	}
	fr.Dets = make([]DetectionJSON, len(out.Detections))
	for i, d := range out.Detections {
		fr.Dets[i] = DetectionJSON{
			Class: d.Class, Score: d.Score,
			X1: d.Box.X1, Y1: d.Box.Y1, X2: d.Box.X2, Y2: d.Box.Y2,
		}
	}
	s.results = append(s.results, fr)
	e.cond.Broadcast()
}

// stopAdmission closes the front door: admission and ingestion start
// returning ErrDraining, consumers begin draining their queues.
func (e *engine) stopAdmission() {
	e.mu.Lock()
	e.draining = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// drain stops admission, flushes every queued and in-flight frame through
// the pipeline, then closes the compute pool. After drain returns, offered
// == served + dropped on every stream — no admitted frame is lost to
// shutdown — and the engine accepts no further work.
func (e *engine) drain() {
	e.stopAdmission()
	e.mu.Lock()
	if e.cfg.Sync {
		// No consumers in sync mode; flush any residue inline.
		for _, s := range e.streams {
			for s.queue.Len() > 0 {
				e.processLocked(s)
			}
			s.done = true
		}
	} else {
		for {
			alive := false
			for _, s := range e.streams {
				if !s.done {
					alive = true
					break
				}
			}
			if !alive {
				break
			}
			e.cond.Wait()
		}
	}
	e.mu.Unlock()
	e.pool.Close()
}

// stats sums the accounting invariant's three terms across streams.
func (e *engine) stats() (offered, served, dropped int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.streams {
		offered += s.offered
		served += s.served
		dropped += s.dropped
	}
	return offered, served, dropped
}
