package server

import (
	"testing"
)

// FuzzIngestDecode holds the ingestion decoder to "reject or accept, never
// panic": whatever bytes arrive on the wire, DecodeIngest either returns a
// typed *RequestError or an IngestRequest every frame of which survives
// the full validation gauntlet — the property that makes it safe to hand
// decoded frames straight to the detector.
func FuzzIngestDecode(f *testing.F) {
	seeds := []string{
		`{"frames":[{"w":320,"h":240}]}`,
		`{"frames":[{"w":64,"h":64,"clutter":0.5,"blur":2,"objects":[{"id":1,"class":0,"x1":4,"y1":4,"x2":40,"y2":40,"texture":1,"intensity":0.7,"speed":3}]}]}`,
		`{"frames":[]}`,
		`{"frames":[{"w":8,"h":8}]}`,
		`{"frames":[{"w":64,"h":64,"objects":[{"class":99,"x1":0,"y1":0,"x2":1,"y2":1}]}]}`,
		`{"frames":[{"w":64,"h":64,"clutter":1e308}]}`,
		`not json at all`,
		`{"frames":[{"w":64,"h":64}]}{"frames":[{"w":64,"h":64}]}`,
		`{"frames":[{"w":64,"h":64,"unknown":true}]}`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeIngest(data, testClasses)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			if _, ok := err.(*RequestError); !ok {
				t.Fatalf("decode error is not a *RequestError: %T %v", err, err)
			}
			return
		}
		// Accepted input must be fully materialisable: every frame builds
		// without panicking and respects the validated bounds.
		if len(req.Frames) == 0 || len(req.Frames) > MaxFramesPerRequest {
			t.Fatalf("accepted batch of %d frames", len(req.Frames))
		}
		for i := range req.Frames {
			fs := &req.Frames[i]
			if fs.W < MinFrameDim || fs.W > MaxFrameDim || fs.H < MinFrameDim || fs.H > MaxFrameDim {
				t.Fatalf("accepted frame %d with geometry %dx%d", i, fs.W, fs.H)
			}
			fr := fs.frame(1, 0, i)
			if fr.W != fs.W || fr.H != fs.H || len(fr.Objects) != len(fs.Objects) {
				t.Fatalf("materialised frame diverges from spec: %+v vs %+v", fr, fs)
			}
			for _, o := range fr.Objects {
				if o.Class < 0 || o.Class >= testClasses {
					t.Fatalf("accepted class %d outside vocabulary", o.Class)
				}
			}
		}
	})
}
