package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"adascale/internal/detect"
	"adascale/internal/raster"
	"adascale/internal/synth"
)

// This file is the frame-ingestion wire format: the JSON a camera client
// POSTs to /v1/streams/{id}/frames, its decoder, and the bridge into
// synth.NewFrame. The decoder is strict — unknown fields, non-finite
// numbers, out-of-range geometry and oversized batches are all typed
// errors, never best-effort repairs — because everything it accepts flows
// straight into the detector on a pool worker, and the fuzz harness
// (FuzzIngestDecode) holds it to "reject or serve, never panic".

// Ingestion bounds. They cap the work one request can buy: frames per
// batch, objects per frame, and frame geometry the rasteriser and the
// simclock cost model are calibrated for.
const (
	MaxFramesPerRequest = 256
	MaxObjectsPerFrame  = 64
	MaxFrameDim         = 4096
	MinFrameDim         = 16
	maxBodyBytes        = 1 << 20 // request bodies beyond 1 MiB are refused
)

// ObjectSpec is one object of an ingested frame, in native coordinates.
type ObjectSpec struct {
	ID        int     `json:"id"`
	Class     int     `json:"class"`
	X1        float64 `json:"x1"`
	Y1        float64 `json:"y1"`
	X2        float64 `json:"x2"`
	Y2        float64 `json:"y2"`
	Texture   int     `json:"texture,omitempty"`   // raster.Texture ordinal (0..4)
	Intensity float64 `json:"intensity,omitempty"` // [0, 1]; 0 means default 0.8
	Speed     float64 `json:"speed,omitempty"`     // native px/frame, drives blur
}

// FrameSpec is one ingested frame: geometry, content and rendering
// parameters. The deterministic randomness base is *not* on the wire — it
// derives from (server seed, stream, index), so a replayed request script
// reproduces detections exactly.
type FrameSpec struct {
	W       int          `json:"w"`
	H       int          `json:"h"`
	Clutter float64      `json:"clutter,omitempty"` // [0, 1]
	Blur    float64      `json:"blur,omitempty"`    // native px, [0, 64]
	Objects []ObjectSpec `json:"objects,omitempty"`
}

// IngestRequest is the body of POST /v1/streams/{id}/frames.
type IngestRequest struct {
	Frames []FrameSpec `json:"frames"`
}

// RequestError is the typed error the decoders return for a rejected
// request body, so handlers can map it to 400 with the offending field.
type RequestError struct {
	Field  string // which part of the request was rejected
	Reason string // why
}

// Error implements the error interface.
func (e *RequestError) Error() string {
	return fmt.Sprintf("server: invalid request: %s: %s", e.Field, e.Reason)
}

// finite reports whether v is a usable number (not NaN or ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// DecodeIngest parses and validates a frame-ingestion body against the
// serving system's class vocabulary. It returns a typed *RequestError on
// any rejection; a nil error guarantees every frame in the request is safe
// to hand to the detector.
func DecodeIngest(body []byte, numClasses int) (*IngestRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, &RequestError{Field: "body", Reason: err.Error()}
	}
	// A second document after the first is a malformed request, not
	// trailing noise to ignore.
	if dec.More() {
		return nil, &RequestError{Field: "body", Reason: "trailing data after JSON document"}
	}
	if len(req.Frames) == 0 {
		return nil, &RequestError{Field: "frames", Reason: "empty batch"}
	}
	if len(req.Frames) > MaxFramesPerRequest {
		return nil, &RequestError{Field: "frames", Reason: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Frames), MaxFramesPerRequest)}
	}
	for i := range req.Frames {
		if err := validateFrame(&req.Frames[i], i, numClasses); err != nil {
			return nil, err
		}
	}
	return &req, nil
}

// validateFrame checks one frame spec; i names it in errors.
func validateFrame(f *FrameSpec, i, numClasses int) error {
	bad := func(field, format string, args ...any) error {
		return &RequestError{Field: fmt.Sprintf("frames[%d].%s", i, field), Reason: fmt.Sprintf(format, args...)}
	}
	if f.W < MinFrameDim || f.W > MaxFrameDim {
		return bad("w", "width %d outside [%d, %d]", f.W, MinFrameDim, MaxFrameDim)
	}
	if f.H < MinFrameDim || f.H > MaxFrameDim {
		return bad("h", "height %d outside [%d, %d]", f.H, MinFrameDim, MaxFrameDim)
	}
	if !finite(f.Clutter) || f.Clutter < 0 || f.Clutter > 1 {
		return bad("clutter", "%v outside [0, 1]", f.Clutter)
	}
	if !finite(f.Blur) || f.Blur < 0 || f.Blur > 64 {
		return bad("blur", "%v outside [0, 64]", f.Blur)
	}
	if len(f.Objects) > MaxObjectsPerFrame {
		return bad("objects", "%d objects exceed limit %d", len(f.Objects), MaxObjectsPerFrame)
	}
	for j, o := range f.Objects {
		obad := func(field, format string, args ...any) error {
			return bad(fmt.Sprintf("objects[%d].%s", j, field), format, args...)
		}
		if o.Class < 0 || o.Class >= numClasses {
			return obad("class", "class %d outside the serving system's %d classes", o.Class, numClasses)
		}
		for _, c := range [...]struct {
			name string
			v    float64
		}{{"x1", o.X1}, {"y1", o.Y1}, {"x2", o.X2}, {"y2", o.Y2}} {
			if !finite(c.v) || c.v < -float64(MaxFrameDim) || c.v > 2*float64(MaxFrameDim) {
				return obad(c.name, "coordinate %v not finite or far outside the frame", c.v)
			}
		}
		if o.X2 <= o.X1 || o.Y2 <= o.Y1 {
			return obad("x2", "degenerate box [%v,%v,%v,%v]", o.X1, o.Y1, o.X2, o.Y2)
		}
		if o.Texture < int(raster.TextureSolid) || o.Texture > int(raster.TextureDots) {
			return obad("texture", "texture %d outside [0, %d]", o.Texture, int(raster.TextureDots))
		}
		if !finite(o.Intensity) || o.Intensity < 0 || o.Intensity > 1 {
			return obad("intensity", "%v outside [0, 1]", o.Intensity)
		}
		if !finite(o.Speed) || o.Speed < 0 || o.Speed > 1000 {
			return obad("speed", "%v outside [0, 1000]", o.Speed)
		}
	}
	return nil
}

// frame materialises the validated spec as a synth.Frame for (stream,
// index), deriving the deterministic randomness base from the server seed.
func (f *FrameSpec) frame(seed int64, stream, index int) *synth.Frame {
	objs := make([]synth.Object, len(f.Objects))
	for j, o := range f.Objects {
		intensity := o.Intensity
		if intensity == 0 {
			intensity = 0.8
		}
		objs[j] = synth.Object{
			ID:        o.ID,
			Class:     o.Class,
			Box:       detect.Box{X1: o.X1, Y1: o.Y1, X2: o.X2, Y2: o.Y2},
			Texture:   raster.Texture(o.Texture),
			Intensity: float32(intensity),
			Speed:     o.Speed,
		}
	}
	fr := synth.NewFrame(seed, synth.FrameSpec{
		Stream: stream, Index: index,
		W: f.W, H: f.H,
		Objects: objs,
		Clutter: f.Clutter,
		Blur:    f.Blur,
	})
	return &fr
}
