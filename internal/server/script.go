package server

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
)

// Recorded request scripts: the replay format the handler golden tests
// run. A script is plain text —
//
//	# comment                      (ignored, as are blank lines between requests)
//	@250                           advance the ScriptClock to 250 virtual ms
//	DRAIN                          begin graceful drain (the SIGTERM path)
//	POST /v1/streams tenant=cam    one request; optional tenant= sets X-Tenant
//	{"tenant":"cam"}               body lines until the next blank line
//
// Replay drives each request through the server's full middleware chain
// via httptest (no sockets) and appends to a transcript:
//
//	### POST /v1/streams
//	201
//	{"stream_id":0,...}
//
// Under a ScriptClock and a Sync server, the transcript is a pure
// function of (script, config, trained system) — which is exactly what
// the committed goldens in internal/regress assert, at every worker
// count.

// ScriptStep is one parsed directive of a request script.
type ScriptStep struct {
	// Exactly one of the following shapes is set.
	AdvanceMS float64 // valid when Advance
	Advance   bool
	Drain     bool

	Method string
	Path   string
	Tenant string // optional X-Tenant header
	Body   string
}

// ParseScript parses the replay format. Errors name the offending line.
func ParseScript(text string) ([]ScriptStep, error) {
	lines := strings.Split(text, "\n")
	var steps []ScriptStep
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "@"):
			ms, err := strconv.ParseFloat(line[1:], 64)
			if err != nil {
				return nil, fmt.Errorf("script line %d: bad clock directive %q: %v", i+1, line, err)
			}
			steps = append(steps, ScriptStep{Advance: true, AdvanceMS: ms})
		case line == "DRAIN":
			steps = append(steps, ScriptStep{Drain: true})
		default:
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("script line %d: want `METHOD PATH [tenant=...]`, got %q", i+1, line)
			}
			step := ScriptStep{Method: fields[0], Path: fields[1]}
			for _, f := range fields[2:] {
				t, ok := strings.CutPrefix(f, "tenant=")
				if !ok {
					return nil, fmt.Errorf("script line %d: unknown request attribute %q", i+1, f)
				}
				step.Tenant = t
			}
			// Body: subsequent non-directive lines up to the next blank line.
			var body []string
			for i+1 < len(lines) {
				next := lines[i+1]
				if strings.TrimSpace(next) == "" {
					break
				}
				body = append(body, next)
				i++
			}
			step.Body = strings.Join(body, "\n")
			steps = append(steps, step)
		}
	}
	return steps, nil
}

// Replay runs a parsed script against the server's handler and returns the
// transcript. clock may be nil when the script has no @ directives.
func (s *Server) Replay(steps []ScriptStep, clock *ScriptClock) (string, error) {
	var b strings.Builder
	h := s.Handler()
	for _, step := range steps {
		switch {
		case step.Advance:
			if clock == nil {
				return "", fmt.Errorf("script advances the clock but no ScriptClock was supplied")
			}
			clock.AdvanceTo(step.AdvanceMS)
		case step.Drain:
			s.Drain()
			fmt.Fprintf(&b, "### DRAIN\n")
			offered, served, dropped := s.Stats()
			fmt.Fprintf(&b, "offered=%d served=%d dropped=%d lost=%d\n\n",
				offered, served, dropped, offered-served-dropped)
		default:
			req := httptest.NewRequest(step.Method, step.Path, strings.NewReader(step.Body))
			if step.Tenant != "" {
				req.Header.Set("X-Tenant", step.Tenant)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			fmt.Fprintf(&b, "### %s %s\n%d\n", step.Method, step.Path, rec.Code)
			body := rec.Body.String()
			if step.Path == "/metrics" {
				body = CanonMetrics(body)
			}
			b.WriteString(body)
			if !strings.HasSuffix(body, "\n") {
				b.WriteString("\n")
			}
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

// CanonMetrics canonicalises a /metrics body for transcripts: histogram
// summaries over wall-clock-free data are already deterministic, but the
// exposition as a whole is only stable if line order is — so sort the
// lines within each metric family block, keeping HELP/TYPE headers first.
// Under a ScriptClock the body is already deterministic; canonicalising
// anyway makes the goldens robust to map-iteration-order refactors in the
// renderer.
func CanonMetrics(body string) string {
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	type family struct {
		header []string // # HELP / # TYPE lines, original order
		sample []string
	}
	var fams []*family
	cur := &family{}
	flush := func() {
		if len(cur.header) > 0 || len(cur.sample) > 0 {
			sort.Strings(cur.sample)
			fams = append(fams, cur)
			cur = &family{}
		}
	}
	for _, l := range lines {
		if strings.HasPrefix(l, "# HELP") {
			flush()
			cur.header = append(cur.header, l)
			continue
		}
		if strings.HasPrefix(l, "#") {
			cur.header = append(cur.header, l)
			continue
		}
		cur.sample = append(cur.sample, l)
	}
	flush()
	var b strings.Builder
	for _, f := range fams {
		for _, l := range f.header {
			b.WriteString(l)
			b.WriteString("\n")
		}
		for _, l := range f.sample {
			b.WriteString(l)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ReplayScript parses and replays text in one call.
func (s *Server) ReplayScript(text string, clock *ScriptClock) (string, error) {
	steps, err := ParseScript(text)
	if err != nil {
		return "", err
	}
	return s.Replay(steps, clock)
}
