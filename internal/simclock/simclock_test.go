package simclock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDetectMSCalibration(t *testing.T) {
	// The paper's reference point: R-FCN at scale 600 runs in 75 ms.
	if got := DetectMS(1280, 720, 600); math.Abs(got-75) > 1e-9 {
		t.Fatalf("DetectMS(600) = %v, want 75", got)
	}
}

func TestDetectMSMonotoneInScale(t *testing.T) {
	f := func(seed int64) bool {
		a := 128 + int(uint64(seed)%400)
		b := a + 1 + int(uint64(seed)>>32%50)
		return DetectMS(1280, 720, a) < DetectMS(1280, 720, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectMSFloorsAtBase(t *testing.T) {
	if got := DetectMS(1280, 720, 1); got < DetectorBaseMS {
		t.Fatalf("runtime %v below fixed overhead", got)
	}
}

func TestDetectMSLongSideCap(t *testing.T) {
	// An extreme panorama hits the 2000-px cap, so raising the requested
	// scale beyond the cap point must not increase cost.
	capped := DetectMS(8000, 500, 480)
	more := DetectMS(8000, 500, 500)
	if more > capped+1e-9 {
		t.Fatalf("cost grew past the longest-side cap: %v → %v", capped, more)
	}
}

func TestRegressorMS(t *testing.T) {
	if RegressorMS(nil) != 0 {
		t.Fatal("no regressor, no overhead")
	}
	k1 := RegressorMS([]int{1})
	k13 := RegressorMS([]int{1, 3})
	k135 := RegressorMS([]int{1, 3, 5})
	if !(k1 < k13 && k13 < k135) {
		t.Fatalf("kernel overheads not increasing: %v %v %v", k1, k13, k135)
	}
	if k13 != 2.0 {
		t.Fatalf("paper's {1,3} module costs 2 ms, got %v", k13)
	}
}

func TestFPS(t *testing.T) {
	if got := FPS(75); math.Abs(got-13.333333333333334) > 1e-9 {
		t.Fatalf("FPS(75) = %v, want ≈ 13.3 (paper's R-FCN)", got)
	}
	if FPS(0) != 0 {
		t.Fatal("FPS(0) must be 0, not Inf")
	}
}

func TestBudgetRollingMean(t *testing.T) {
	b := NewBudget(50, 4)
	if b.Exceeded() {
		t.Fatal("empty budget must not report exceeded")
	}
	for _, ms := range []float64{40, 40, 40, 40} {
		b.Charge(ms)
	}
	if got := b.MeanMS(); math.Abs(got-40) > 1e-12 {
		t.Fatalf("mean = %v, want 40", got)
	}
	if b.Exceeded() {
		t.Fatal("40 ms mean under a 50 ms deadline must not exceed")
	}
	// Two expensive frames push the window mean over the deadline...
	b.Charge(90)
	b.Charge(90)
	if !b.Exceeded() {
		t.Fatalf("mean %v over deadline 50 must report exceeded", b.MeanMS())
	}
	// ...and cheap frames roll them back out of the window.
	for i := 0; i < 4; i++ {
		b.Charge(10)
	}
	if b.Exceeded() {
		t.Fatalf("window should have recovered, mean = %v", b.MeanMS())
	}
	if got := b.Headroom(); math.Abs(got-40) > 1e-12 {
		t.Fatalf("headroom = %v, want 40", got)
	}
}

func TestBudgetReset(t *testing.T) {
	b := NewBudget(50, 4)
	for i := 0; i < 6; i++ {
		b.Charge(90)
	}
	if !b.Exceeded() {
		t.Fatal("setup: budget should be exceeded before reset")
	}
	b.Reset()
	if b.Exceeded() {
		t.Fatal("reset budget must not report exceeded")
	}
	if got := b.MeanMS(); got != 0 {
		t.Fatalf("reset budget mean = %v, want 0", got)
	}
	if got := b.DeadlineMS(); got != 50 {
		t.Fatalf("reset must keep the deadline: got %v", got)
	}
	// The reset budget behaves exactly like a fresh one.
	b.Charge(40)
	if got := b.MeanMS(); math.Abs(got-40) > 1e-12 {
		t.Fatalf("post-reset mean = %v, want 40", got)
	}
}

func TestBudgetDisabled(t *testing.T) {
	b := NewBudget(0, 4)
	b.Charge(1e9)
	if b.Exceeded() {
		t.Fatal("deadline 0 disables enforcement")
	}
	if !math.IsInf(b.Headroom(), 1) {
		t.Fatalf("disabled budget headroom = %v, want +Inf", b.Headroom())
	}
	// window < 1 falls back to the default length instead of panicking.
	if NewBudget(30, 0) == nil {
		t.Fatal("NewBudget with window 0 must still construct")
	}
}
