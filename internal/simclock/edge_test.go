package simclock

import (
	"math"
	"testing"
)

// TestBudgetDeadlineBoundary pins the strict-inequality contract: a rolling
// mean exactly at the deadline is still on budget; only crossing it trips
// Exceeded. The resilient runner downshifts scale on Exceeded, so an
// off-by-epsilon here would make a perfectly-paced stream degrade for no
// reason.
func TestBudgetDeadlineBoundary(t *testing.T) {
	cases := []struct {
		name     string
		charges  []float64
		exceeded bool
		headroom float64
	}{
		{"no charges", nil, false, 40},
		{"under", []float64{30, 30}, false, 10},
		{"exactly at deadline", []float64{40, 40, 40}, false, 0},
		{"just over", []float64{40, 40, 40.003}, true, -0.001},
		{"spike averaged away", []float64{10, 10, 10, 100}, false, 7.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBudget(40, 8)
			for _, ms := range tc.charges {
				b.Charge(ms)
			}
			if got := b.Exceeded(); got != tc.exceeded {
				t.Fatalf("Exceeded = %v, want %v (mean %v)", got, tc.exceeded, b.MeanMS())
			}
			if got := b.Headroom(); math.Abs(got-tc.headroom) > 1e-9 {
				t.Fatalf("Headroom = %v, want %v", got, tc.headroom)
			}
		})
	}
}

// TestBudgetWindowEviction: once the ring is full, each Charge evicts the
// oldest entry, so the mean tracks only the last `window` frames.
func TestBudgetWindowEviction(t *testing.T) {
	b := NewBudget(100, 2)
	b.Charge(10)
	b.Charge(10)
	if got := b.MeanMS(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("mean before eviction = %v, want 10", got)
	}
	b.Charge(40) // evicts the first 10 → window holds {10, 40}
	if got := b.MeanMS(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("mean after eviction = %v, want 25", got)
	}
	b.Charge(40) // window holds {40, 40}
	if got := b.MeanMS(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("mean after second eviction = %v, want 40", got)
	}
}

// TestBudgetResetAfterExhaustion: Reset must return an exceeded budget to
// its just-constructed state so a session reused for a new stream is not
// penalised for the previous stream's charges.
func TestBudgetResetAfterExhaustion(t *testing.T) {
	b := NewBudget(20, 4)
	for i := 0; i < 6; i++ {
		b.Charge(90)
	}
	if !b.Exceeded() {
		t.Fatal("budget should be exhausted before Reset")
	}
	b.Reset()
	if b.Exceeded() {
		t.Fatal("Exceeded survived Reset")
	}
	if got := b.MeanMS(); got != 0 {
		t.Fatalf("MeanMS after Reset = %v, want 0", got)
	}
	if got := b.Headroom(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("Headroom after Reset = %v, want the full deadline 20", got)
	}
	// And the ring must work normally again after the reset.
	b.Charge(5)
	if got := b.MeanMS(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("first post-Reset charge gives mean %v, want 5", got)
	}
}

// TestBudgetDisabledDeadline: deadline <= 0 means "no enforcement" — never
// exceeded, infinite headroom — regardless of what gets charged.
func TestBudgetDisabledDeadline(t *testing.T) {
	for _, deadline := range []float64{0, -7} {
		b := NewBudget(deadline, 4)
		b.Charge(1e9)
		if b.Exceeded() {
			t.Fatalf("deadline %v: Exceeded with enforcement disabled", deadline)
		}
		if got := b.Headroom(); !math.IsInf(got, 1) {
			t.Fatalf("deadline %v: Headroom = %v, want +Inf", deadline, got)
		}
		if got := b.MeanMS(); math.Abs(got-1e9) > 1e-3 {
			t.Fatalf("deadline %v: accounting stopped: mean %v", deadline, got)
		}
	}
}

// TestBudgetWindowDefault: window < 1 falls back to 8 frames. Charging 8
// ones then a nine must evict exactly one of the ones.
func TestBudgetWindowDefault(t *testing.T) {
	for _, window := range []int{0, -3} {
		b := NewBudget(100, window)
		for i := 0; i < 8; i++ {
			b.Charge(1)
		}
		b.Charge(9) // ring of 8 now holds {1×7, 9} → mean 2
		if got := b.MeanMS(); math.Abs(got-2) > 1e-9 {
			t.Fatalf("window %d: mean = %v, want 2 (default ring of 8)", window, got)
		}
	}
}
