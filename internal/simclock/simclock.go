// Package simclock models inference runtime. The paper reports wall-clock
// on a GTX 1080 Ti (R-FCN: 75 ms at scale 600 on ImageNet VID; scale
// regressor: 2 ms, "3% of the runtime of R-FCN"). Our substrate is a CPU
// simulator, so absolute wall-clock is meaningless for comparison; instead
// this cost model converts the *scale decisions* an algorithm makes — the
// real output of AdaScale — into milliseconds on the paper's reference
// hardware. Detector cost is an affine function of the number of input
// pixels, which is how convolutional backbone FLOPs scale.
package simclock

import "adascale/internal/raster"

// Reference calibration points from the paper.
const (
	// DetectorBaseMS is the fixed per-image overhead (RPN/head bookkeeping,
	// NMS, memory traffic) independent of resolution.
	DetectorBaseMS = 8.0

	// detectorAt600MS is the paper's measured R-FCN runtime at scale 600.
	detectorAt600MS = 75.0

	// RegressorKernel overheads measured by the paper's Table 3 trend: the
	// {1,3} module costs 2 ms; {1} is cheaper, {1,3,5} costs more.
	Regressor1MS   = 1.0
	Regressor13MS  = 2.0
	Regressor135MS = 3.8

	// FlowMS is the cost of optical-flow estimation plus feature warping in
	// Deep Feature Flow. DFF's FlowNet runs roughly an order of magnitude
	// faster than the detection network.
	FlowMS = 9.5

	// SeqNMSPerFrameMS is the amortised per-frame cost of Seq-NMS linkage
	// and rescoring (CPU post-processing overlapped with GPU inference).
	SeqNMSPerFrameMS = 1.5
)

// refPixels is the pixel count of a 16:9 frame resized to scale 600 with
// the 2000-px longest-side cap (600 × 1067).
var refPixels = pixelsAtScale(1280, 720, 600, 2000)

func pixelsAtScale(w, h, scale, maxLong int) float64 {
	f := raster.ScaleFactor(w, h, scale, maxLong)
	return float64(w) * f * float64(h) * f
}

// DetectMS returns the modelled detector runtime in milliseconds for a
// native w×h frame tested at the given shortest-side scale.
func DetectMS(w, h, scale int) float64 {
	px := pixelsAtScale(w, h, scale, 2000)
	return DetectorBaseMS + (detectorAt600MS-DetectorBaseMS)*px/refPixels
}

// RegressorMS returns the scale-regressor overhead for the given kernel
// set (e.g. []int{1,3}; the paper's default).
func RegressorMS(kernels []int) float64 {
	switch len(kernels) {
	case 0:
		return 0
	case 1:
		return Regressor1MS
	case 2:
		return Regressor13MS
	default:
		return Regressor135MS
	}
}

// FPS converts an average per-frame time in milliseconds to frames/second.
func FPS(avgMS float64) float64 {
	if avgMS <= 0 {
		return 0
	}
	return 1000 / avgMS
}
