// Package simclock models inference runtime. The paper reports wall-clock
// on a GTX 1080 Ti (R-FCN: 75 ms at scale 600 on ImageNet VID; scale
// regressor: 2 ms, "3% of the runtime of R-FCN"). Our substrate is a CPU
// simulator, so absolute wall-clock is meaningless for comparison; instead
// this cost model converts the *scale decisions* an algorithm makes — the
// real output of AdaScale — into milliseconds on the paper's reference
// hardware. Detector cost is an affine function of the number of input
// pixels, which is how convolutional backbone FLOPs scale.
package simclock

import (
	"math"

	"adascale/internal/raster"
)

// Reference calibration points from the paper.
const (
	// DetectorBaseMS is the fixed per-image overhead (RPN/head bookkeeping,
	// NMS, memory traffic) independent of resolution.
	DetectorBaseMS = 8.0

	// detectorAt600MS is the paper's measured R-FCN runtime at scale 600.
	detectorAt600MS = 75.0

	// RegressorKernel overheads measured by the paper's Table 3 trend: the
	// {1,3} module costs 2 ms; {1} is cheaper, {1,3,5} costs more.
	Regressor1MS   = 1.0
	Regressor13MS  = 2.0
	Regressor135MS = 3.8

	// FlowMS is the cost of optical-flow estimation plus feature warping in
	// Deep Feature Flow. DFF's FlowNet runs roughly an order of magnitude
	// faster than the detection network.
	FlowMS = 9.5

	// SeqNMSPerFrameMS is the amortised per-frame cost of Seq-NMS linkage
	// and rescoring (CPU post-processing overlapped with GPU inference).
	SeqNMSPerFrameMS = 1.5
)

// refPixels is the pixel count of a 16:9 frame resized to scale 600 with
// the 2000-px longest-side cap (600 × 1067).
var refPixels = pixelsAtScale(1280, 720, 600, 2000)

func pixelsAtScale(w, h, scale, maxLong int) float64 {
	f := raster.ScaleFactor(w, h, scale, maxLong)
	return float64(w) * f * float64(h) * f
}

// DetectMS returns the modelled detector runtime in milliseconds for a
// native w×h frame tested at the given shortest-side scale.
func DetectMS(w, h, scale int) float64 {
	px := pixelsAtScale(w, h, scale, 2000)
	return DetectorBaseMS + (detectorAt600MS-DetectorBaseMS)*px/refPixels
}

// rescaleShare is the fraction of the resolution-dependent detector cost
// attributed to image rescaling (resize + normalise + layout) rather than
// the backbone + head; preprocessing is memory-bound and scales with
// pixels just like the convolutions, at roughly a tenth of their cost.
const rescaleShare = 0.1

// SplitDetectMS decomposes a DetectMS result into the stage costs the
// tracer attributes: decode (the fixed per-image bookkeeping,
// DetectorBaseMS), rescale (preprocessing share of the pixel term) and
// backbone (the rest — backbone + detection head). The three parts sum
// exactly to detectorMS, so a stage breakdown never invents or loses time
// relative to the end-to-end cost model.
func SplitDetectMS(detectorMS float64) (decodeMS, rescaleMS, backboneMS float64) {
	decodeMS = DetectorBaseMS
	if detectorMS < decodeMS {
		decodeMS = detectorMS
	}
	if decodeMS < 0 {
		decodeMS = 0
	}
	px := detectorMS - decodeMS
	rescaleMS = px * rescaleShare
	backboneMS = px - rescaleMS
	return decodeMS, rescaleMS, backboneMS
}

// RegressorMS returns the scale-regressor overhead for the given kernel
// set (e.g. []int{1,3}; the paper's default).
func RegressorMS(kernels []int) float64 {
	switch len(kernels) {
	case 0:
		return 0
	case 1:
		return Regressor1MS
	case 2:
		return Regressor13MS
	default:
		return Regressor135MS
	}
}

// Budget tracks modelled per-frame runtime against a per-frame deadline
// over a rolling window — the accounting a deadline-aware runner uses to
// decide when to force the next-lower test scale. A zero/negative deadline
// disables enforcement (Exceeded is always false).
type Budget struct {
	deadlineMS float64
	window     []float64 // ring buffer of recent per-frame charges
	next       int       // ring write position
	filled     int       // number of valid entries
	sum        float64   // sum of valid entries
}

// NewBudget creates a budget for the given per-frame deadline with the
// given rolling window length (frames); window < 1 means 8.
func NewBudget(deadlineMS float64, window int) *Budget {
	if window < 1 {
		window = 8
	}
	return &Budget{deadlineMS: deadlineMS, window: make([]float64, window)}
}

// DeadlineMS returns the configured per-frame deadline (0 = disabled).
func (b *Budget) DeadlineMS() float64 { return b.deadlineMS }

// Charge records one frame's modelled cost in milliseconds (detector +
// overheads + arrival jitter).
func (b *Budget) Charge(ms float64) {
	if b.filled == len(b.window) {
		b.sum -= b.window[b.next]
	} else {
		b.filled++
	}
	b.window[b.next] = ms
	b.sum += ms
	b.next = (b.next + 1) % len(b.window)
}

// Reset clears every recorded charge, returning the budget to its
// just-constructed state (deadline and window length are kept). A session
// reused for a new stream must reset its budget: rolling charges from the
// previous stream would otherwise force the scale cap down on a stream
// that has not yet cost anything.
func (b *Budget) Reset() {
	for i := range b.window {
		b.window[i] = 0
	}
	b.next, b.filled, b.sum = 0, 0, 0
}

// Charges returns the recorded window contents oldest-first — the state a
// checkpoint must carry so a restored budget resumes with the same rolling
// mean (replay them through Charge after a Reset).
func (b *Budget) Charges() []float64 {
	out := make([]float64, 0, b.filled)
	start := b.next - b.filled
	if start < 0 {
		start += len(b.window)
	}
	for i := 0; i < b.filled; i++ {
		out = append(out, b.window[(start+i)%len(b.window)])
	}
	return out
}

// MeanMS returns the rolling mean per-frame cost (0 before any charge).
func (b *Budget) MeanMS() float64 {
	if b.filled == 0 {
		return 0
	}
	return b.sum / float64(b.filled)
}

// Exceeded reports whether the rolling mean is over the deadline.
func (b *Budget) Exceeded() bool {
	return b.deadlineMS > 0 && b.filled > 0 && b.MeanMS() > b.deadlineMS
}

// Headroom returns deadline − rolling mean (positive = under budget);
// +Inf when the deadline is disabled.
func (b *Budget) Headroom() float64 {
	if b.deadlineMS <= 0 {
		return math.Inf(1)
	}
	return b.deadlineMS - b.MeanMS()
}

// FPS converts an average per-frame time in milliseconds to frames/second.
func FPS(avgMS float64) float64 {
	if avgMS <= 0 {
		return 0
	}
	return 1000 / avgMS
}
