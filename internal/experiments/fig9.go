package experiments

import (
	"fmt"
	"io"

	"adascale/internal/adascale"
	"adascale/internal/detect"
	"adascale/internal/raster"
	"adascale/internal/synth"
)

// Fig9Clip is one crafted clip with the per-frame scales AdaScale chose.
type Fig9Clip struct {
	Name   string
	Scales []int
}

// Fig9Result reproduces the paper's scale-dynamics investigation: AdaScale
// should (i) stably down-sample a clip with one large object, (ii) stay at
// high scales for a small object, and (iii) jitter when multiple objects of
// very different sizes share the frame.
type Fig9Result struct {
	Clips []Fig9Clip
}

// Fig9 builds the three characteristic clips and runs Algorithm 1 on each.
func (b *Bundle) Fig9() *Fig9Result {
	sys := b.DefaultSystem()
	cfg := b.DS.Config
	cfg.FramesPerSnippet = 16
	cfg.Seed += 999

	mkClip := func(name string, sizes []float64) Fig9Clip {
		tmp, _ := synth.Generate(cfg, 1, 0)
		sn := &tmp.Train[0]
		for i := range sn.Frames {
			f := &sn.Frames[i]
			f.Clutter = 0.5
			f.Blur = 0
			var objs []synth.Object
			for k, size := range sizes {
				cx := float64(f.W) * (0.25 + 0.5*float64(k)/float64(len(sizes)))
				cy := float64(f.H) * 0.5
				// Gentle drift keeps temporal consistency realistic.
				cx += float64(i) * 3
				objs = append(objs, synth.Object{
					ID: k, Class: (k * 7) % len(cfg.Classes), Texture: raster.TextureStripes,
					Intensity: 0.8,
					Box: detect.Box{
						X1: cx - size/2, Y1: cy - size/2,
						X2: cx + size/2, Y2: cy + size/2,
					},
				})
			}
			f.Objects = objs
		}
		outs := adascale.RunAdaScale(sys.Detector, sys.Regressor, sn)
		scales := make([]int, len(outs))
		for i, o := range outs {
			scales[i] = o.Scale
		}
		return Fig9Clip{Name: name, Scales: scales}
	}

	return &Fig9Result{Clips: []Fig9Clip{
		mkClip("single large object", []float64{480}),
		mkClip("single small object", []float64{90}),
		mkClip("mixed sizes", []float64{440, 100}),
	}}
}

// Print writes the per-frame scale traces.
func (f *Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 9: AdaScale scale dynamics over three characteristic clips")
	for _, c := range f.Clips {
		fmt.Fprintf(w, "%-22s %v  (mean %.0f, spread %d)\n", c.Name, c.Scales, meanInt(c.Scales), spread(c.Scales))
	}
	fmt.Fprintln(w, "(paper: stable low scale for large objects, stable high scale for small, jitter for mixed sizes)")
	fmt.Fprintln(w)
}

func meanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// spread is max-min, a crude jitter measure (the first frame is always 600
// by Algorithm 1 and is excluded).
func spread(xs []int) int {
	if len(xs) < 2 {
		return 0
	}
	lo, hi := xs[1], xs[1]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
