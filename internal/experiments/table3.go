package experiments

import (
	"fmt"
	"io"

	"adascale/internal/adascale"
)

// Table3Kernels are the regressor branch architectures of the paper's
// Table 3.
var Table3Kernels = [][]int{{1}, {1, 3}, {1, 3, 5}}

// Table3Entry is one regressor architecture's result.
type Table3Entry struct {
	Kernels []int
	Ada     MethodRow
}

// Table3Result is the regressor-architecture ablation: both the module's
// accuracy (which drives the scale decisions and with them detector cost)
// and its own overhead affect the end-to-end numbers.
type Table3Result struct {
	Entries []Table3Entry
}

// Table3 retrains the regressor per kernel set over the default detector.
func (b *Bundle) Table3() *Table3Result {
	res := &Table3Result{}
	for _, kernels := range Table3Kernels {
		sys := b.System([]int{600, 480, 360, 240}, kernels)
		ada := b.evaluateMethod("kernels "+scalesString(kernels), adascale.AdaScaleRunner(sys.Detector, sys.Regressor))
		res.Entries = append(res.Entries, Table3Entry{Kernels: kernels, Ada: ada})
	}
	return res
}

// Print writes the paper's Table 3 layout.
func (t *Table3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 3: mAP and runtime for different regressor architectures")
	header := fmt.Sprintf("%-14s %10s %12s %12s", "kernel size", "mAP", "runtime(ms)", "mean scale")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	for _, e := range t.Entries {
		fmt.Fprintf(w, "%-14s %10.1f %12.0f %12.0f\n",
			scalesString(e.Kernels), e.Ada.MAP*100, e.Ada.RuntimeMS, e.Ada.MeanScale)
	}
	fmt.Fprintln(w, "(paper: mAP 75.3/75.5/75.5 and runtime 51/47/50 ms — {1,3} is the sweet spot)")
	fmt.Fprintln(w)
}
