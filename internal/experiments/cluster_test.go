package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestClusterSweepShape pins the capacity sweep's acceptance shape: every
// cell conserves frames (lost == 0) through the injected cluster events,
// adding nodes at a fixed stream count never increases the drop rate, the
// sweep is deterministic, and the rendered table carries the planning
// columns.
func TestClusterSweepShape(t *testing.T) {
	b := testBundle(t)
	cfg := ClusterSweepConfig{
		Streams:         []int{40, 120},
		Nodes:           []int{2, 6},
		FPS:             10,
		FramesPerStream: 6,
		Workers:         2,
		EventRate:       2,
	}
	res, err := b.Cluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Rows[0].Cells) != 2 {
		t.Fatalf("sweep shape %dx%d, want 2x2", len(res.Rows), len(res.Rows[0].Cells))
	}
	for i, row := range res.Rows {
		offered := cfg.Streams[i] * cfg.FramesPerStream
		for j, cell := range row.Cells {
			if cell.Lost != 0 {
				t.Fatalf("cell (%d streams, %d nodes) lost %d frames", row.Streams, cfg.Nodes[j], cell.Lost)
			}
			if cell.Offered != offered {
				t.Fatalf("cell (%d streams, %d nodes) offered %d frames, want %d", row.Streams, cfg.Nodes[j], cell.Offered, offered)
			}
			if cell.FinalNodes < 1 {
				t.Fatalf("cell (%d streams, %d nodes) ended with %d nodes", row.Streams, cfg.Nodes[j], cell.FinalNodes)
			}
		}
		// The capacity-planning reading: more nodes, no worse shedding.
		if first, last := row.Cells[0], row.Cells[len(row.Cells)-1]; last.DropRate > first.DropRate {
			t.Fatalf("at %d streams, growing the fleet raised the drop rate %.3f -> %.3f",
				row.Streams, first.DropRate, last.DropRate)
		}
	}

	again, err := b.Cluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		for j := range res.Rows[i].Cells {
			if res.Rows[i].Cells[j] != again.Rows[i].Cells[j] {
				t.Fatalf("cell (%d,%d) diverges across identical sweeps: %+v vs %+v",
					i, j, res.Rows[i].Cells[j], again.Rows[i].Cells[j])
			}
		}
	}

	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Cluster capacity (vid)", "streams", "recovery(ms)", "fover", "lost"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed sweep missing %q:\n%s", want, out)
		}
	}
}
