package experiments

import (
	"fmt"
	"io"

	"adascale/internal/adascale"
	"adascale/internal/faults"
	"adascale/internal/serve"
)

// ChaosConfig sizes the system fault-tolerance sweep.
type ChaosConfig struct {
	// Rates are the system fault intensities to sweep (the argument to
	// faults.ScaledSystemConfig); defaults to {0, 1, 2, 4}.
	Rates []float64

	// Streams / FPS / FramesPerStream shape the offered load; default to
	// 4 streams at 12 fps, 24 frames each.
	Streams         int
	FPS             float64
	FramesPerStream int

	// Workers is the explicit serving capacity the fault plans target;
	// defaults to 2 so kills and stalls bite hard.
	Workers int

	// QueueDepth bounds each stream's queue; defaults to 4.
	QueueDepth int

	// SLOMS is the per-frame latency SLO (virtual ms); defaults to 80.
	SLOMS float64

	// BreakerThreshold is the supervised mode's consecutive-failure trip
	// point; defaults to 1 (trip on first failure). The sweep's fault
	// windows are short and dense relative to a frame's service time, so
	// a stream rarely fails twice in a row — a production threshold of 2
	// would leave the breaker path untested at these horizons.
	BreakerThreshold int

	// PlanSeed seeds the fault plans; zero derives from the bundle seed.
	PlanSeed int64
}

// DefaultChaosConfig returns the standard sweep sizing.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Rates:            []float64{0, 1, 2, 4},
		Streams:          4,
		FPS:              12,
		FramesPerStream:  24,
		Workers:          2,
		QueueDepth:       4,
		SLOMS:            80,
		BreakerThreshold: 1,
	}
}

func (c ChaosConfig) withDefaults(bundleSeed int64) ChaosConfig {
	if len(c.Rates) == 0 {
		c.Rates = []float64{0, 1, 2, 4}
	}
	if c.Streams <= 0 {
		c.Streams = 4
	}
	if c.FPS <= 0 {
		c.FPS = 12
	}
	if c.FramesPerStream <= 0 {
		c.FramesPerStream = 24
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	if c.SLOMS < 0 {
		c.SLOMS = 0
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 1
	}
	if c.PlanSeed == 0 {
		c.PlanSeed = bundleSeed + 577
	}
	return c
}

// ChaosCell scores one (fault rate, supervision mode) serving run.
type ChaosCell struct {
	// RecoveryMS is the mean virtual time from a dispatch's first failure
	// to the frame finally settling (served or abandoned to propagation).
	RecoveryMS float64

	// P99 is the end-to-end latency p99 (virtual ms) over served frames.
	P99 float64

	// DropRate is dropped/offered; SLOMissRate is misses/served — the SLO
	// damage the fault plan inflicts.
	DropRate, SLOMissRate float64

	// Coverage is the effective detection coverage: the fraction of
	// offered frames that were served carrying at least one detection
	// (real or propagated). Dropped, abandoned-to-empty and lost frames
	// all count against it.
	Coverage float64

	// Retries, Sheds and Migrations count supervised recovery actions;
	// Lost counts frames neither served nor dropped (must be zero).
	Retries, Sheds, Migrations, Lost int
}

// ChaosRow is one fault rate of the sweep: the supervised serving layer
// (retry + breaker + watchdog + migration) against naive failover (same
// retry/migration machinery with the circuit breakers disabled).
type ChaosRow struct {
	Rate              float64
	Plan              *faults.SystemPlan
	Supervised, Naive ChaosCell
}

// ChaosResult is the fault-rate sweep of the system fault-tolerance
// experiment.
type ChaosResult struct {
	Dataset string
	Cfg     ChaosConfig
	Rows    []ChaosRow
}

// Chaos sweeps system fault intensity × supervision mode: each rate
// generates a seeded fault plan (worker kills/stalls, node blackouts,
// queue-saturation windows) and serves the identical open-loop load
// through internal/serve twice — once with the full supervision layer,
// once with circuit breakers disabled (naive failover) — scoring recovery
// time, SLO damage and effective detection coverage. The sweep is a pure
// function of the bundle seed and the sweep config.
func (b *Bundle) Chaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults(b.Cfg.Seed)
	sys := b.DefaultSystem()
	res := &ChaosResult{Dataset: b.Cfg.Dataset, Cfg: cfg}

	load, err := serve.GenLoad(b.DS.Val, serve.LoadConfig{
		Streams:         cfg.Streams,
		FPS:             cfg.FPS,
		FramesPerStream: cfg.FramesPerStream,
		Seed:            b.Cfg.Seed + 433,
	})
	if err != nil {
		return nil, err
	}
	horizon := 0.0
	for _, st := range load {
		for _, f := range st.Frames {
			if f.ArrivalMS > horizon {
				horizon = f.ArrivalMS
			}
		}
	}

	for _, rate := range cfg.Rates {
		plan, err := faults.GenSystemPlan(faults.ScaledSystemConfig(rate, cfg.PlanSeed, horizon+500, cfg.Workers))
		if err != nil {
			return nil, err
		}
		row := ChaosRow{Rate: rate, Plan: plan}
		for _, naive := range []bool{false, true} {
			scfg := serve.Config{
				Workers:    cfg.Workers,
				QueueDepth: cfg.QueueDepth,
				SLOMS:      cfg.SLOMS,
				Resilient:  adascale.DefaultResilientConfig(),
				Chaos:      plan,
			}
			if naive {
				scfg.Supervisor.BreakerThreshold = -1
			} else {
				scfg.Supervisor.BreakerThreshold = cfg.BreakerThreshold
				// Cooldown sized past the plan's blackout windows (400 ms
				// of dead workers): an opened breaker then sheds the
				// backlog through the recovery tail instead of expiring
				// mid-outage before it could serve a single cheap frame.
				scfg.Supervisor.BreakerCooldownMS = 600
			}
			srv, err := serve.New(sys.Detector, sys.Regressor, scfg)
			if err != nil {
				return nil, err
			}
			cell := scoreChaos(srv.Run(load))
			if naive {
				row.Naive = cell
			} else {
				row.Supervised = cell
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// scoreChaos folds one chaos serving report into a sweep cell.
func scoreChaos(rep *serve.Report) ChaosCell {
	offered, covered, misses, served := 0, 0, 0, 0
	for _, sr := range rep.Streams {
		offered += sr.Offered
		misses += sr.SLOMisses
		served += len(sr.Outputs)
		for _, o := range sr.Outputs {
			if len(o.Detections) > 0 {
				covered++
			}
		}
	}
	cell := ChaosCell{
		RecoveryMS: rep.Metrics.Mean("recovery/ms"),
		P99:        rep.Metrics.Quantile("latency/ms", 0.99),
		Retries:    int(rep.Metrics.Counter("retry/dispatched")),
		Sheds:      int(rep.Metrics.Counter("breaker/shed")),
		Migrations: int(rep.Metrics.Counter("migrations")),
		Lost:       rep.Lost(),
	}
	if offered > 0 {
		cell.DropRate = float64(rep.TotalDropped()) / float64(offered)
		cell.Coverage = float64(covered) / float64(offered)
	}
	if served > 0 {
		cell.SLOMissRate = float64(misses) / float64(served)
	}
	return cell
}

// Print writes the fault-tolerance sweep in paper-table style: one
// supervised and one naive row per fault rate, then the coverage retained
// by the breaker mode over naive failover at the highest rate.
func (r *ChaosResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Chaos (%s): %d streams x %d frames at %.0f fps, %d workers, queue %d, SLO %.0f ms\n",
		r.Dataset, r.Cfg.Streams, r.Cfg.FramesPerStream, r.Cfg.FPS,
		r.Cfg.Workers, r.Cfg.QueueDepth, r.Cfg.SLOMS)
	header := fmt.Sprintf("%-5s %-10s %7s %12s %9s %7s %9s %7s %6s %5s %4s",
		"rate", "mode", "faults", "recovery(ms)", "p99(ms)", "drop%", "SLOmiss%", "cover%", "retry", "shed", "lost")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	for _, row := range r.Rows {
		for _, m := range []struct {
			name string
			cell ChaosCell
		}{{"supervised", row.Supervised}, {"naive", row.Naive}} {
			fmt.Fprintf(w, "%-5.2g %-10s %7d %12.1f %9.1f %7.1f %9.1f %7.1f %6d %5d %4d\n",
				row.Rate, m.name, len(row.Plan.Events),
				m.cell.RecoveryMS, m.cell.P99,
				m.cell.DropRate*100, m.cell.SLOMissRate*100, m.cell.Coverage*100,
				m.cell.Retries, m.cell.Sheds, m.cell.Lost)
		}
	}
	if n := len(r.Rows); n > 0 {
		last := r.Rows[n-1]
		fmt.Fprintf(w, "At rate %.2g the breaker mode retains %+.1f%% effective coverage over naive failover.\n\n",
			last.Rate, (last.Supervised.Coverage-last.Naive.Coverage)*100)
	}
}
