package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	once sync.Once
	tb   *Bundle
)

func testBundle(t *testing.T) *Bundle {
	t.Helper()
	once.Do(func() {
		b, err := Prepare(Config{Dataset: "vid", TrainSnippets: 32, ValSnippets: 12, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		tb = b
	})
	return tb
}

func TestPrepareRejectsUnknownDataset(t *testing.T) {
	if _, err := Prepare(Config{Dataset: "coco"}); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestPrepareDefaultsAndYTBB(t *testing.T) {
	b, err := Prepare(Config{Dataset: "ytbb", TrainSnippets: 2, ValSnippets: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Classes()) != 23 {
		t.Fatalf("ytbb classes = %d", len(b.Classes()))
	}
	if b.SS.MultiScale() {
		t.Fatal("SS baseline must be single-scale")
	}
}

func TestSystemMemoised(t *testing.T) {
	b := testBundle(t)
	s1 := b.System([]int{600, 480, 360, 240}, []int{1, 3})
	s2 := b.System([]int{600, 480, 360, 240}, []int{1, 3})
	if s1 != s2 {
		t.Fatal("System must memoise")
	}
	s3 := b.System([]int{600}, []int{1, 3})
	if s3 == s1 {
		t.Fatal("different S_train must build a different system")
	}
}

func TestTable1Structure(t *testing.T) {
	b := testBundle(t)
	res := b.Table1()
	if len(res.Rows) != 3 {
		t.Fatalf("Table 1 rows = %d, want 3", len(res.Rows))
	}
	names := []string{"SS/SS", "MS/SS", "MS/AdaScale"}
	for i, r := range res.Rows {
		if r.Name != names[i] {
			t.Fatalf("row %d = %q, want %q", i, r.Name, names[i])
		}
		if len(r.PerClassAP) != len(res.ClassNames) {
			t.Fatal("per-class AP length mismatch")
		}
		if r.MAP < 0 || r.MAP > 1 {
			t.Fatalf("mAP %v out of range", r.MAP)
		}
	}
	ss, ada := res.Rows[0], res.Rows[2]
	if ada.RuntimeMS >= ss.RuntimeMS {
		t.Fatalf("AdaScale (%v ms) must be faster than SS/SS (%v ms)", ada.RuntimeMS, ss.RuntimeMS)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "mAP") || !strings.Contains(buf.String(), "MS/AdaScale") {
		t.Fatal("Print output incomplete")
	}
}

func TestTable2Structure(t *testing.T) {
	b := testBundle(t)
	res := b.Table2()
	if len(res.Entries) != 4 {
		t.Fatalf("Table 2 entries = %d", len(res.Entries))
	}
	full := res.Entries[0]
	only600 := res.Entries[3]
	// Every SS row is fixed-600 testing: 75 ms by calibration.
	for _, e := range res.Entries {
		if e.SS.RuntimeMS < 74 || e.SS.RuntimeMS > 76 {
			t.Fatalf("SS runtime %v, want ≈75", e.SS.RuntimeMS)
		}
	}
	// The paper's speed trend: the full S_train set runs fastest under
	// AdaScale; the {600}-only detector barely down-scales.
	if full.Ada.RuntimeMS >= only600.Ada.RuntimeMS {
		t.Fatalf("full S_train AdaScale (%v ms) should beat {600} (%v ms)",
			full.Ada.RuntimeMS, only600.Ada.RuntimeMS)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "{600,480,360,240}") {
		t.Fatal("Print output missing S_train sets")
	}
}

func TestTable3Structure(t *testing.T) {
	b := testBundle(t)
	res := b.Table3()
	if len(res.Entries) != 3 {
		t.Fatalf("Table 3 entries = %d", len(res.Entries))
	}
	for _, e := range res.Entries {
		if e.Ada.MAP <= 0 || e.Ada.RuntimeMS <= 0 {
			t.Fatalf("degenerate entry %+v", e)
		}
	}
	// All three architectures should land in the same mAP ballpark — a
	// collapsed regressor (the dead-ReLU failure) would show up as a huge
	// spread.
	lo, hi := res.Entries[0].Ada.MAP, res.Entries[0].Ada.MAP
	for _, e := range res.Entries {
		if e.Ada.MAP < lo {
			lo = e.Ada.MAP
		}
		if e.Ada.MAP > hi {
			hi = e.Ada.MAP
		}
	}
	if hi-lo > 0.1 {
		t.Fatalf("architecture spread %.3f implausibly large (%v..%v)", hi-lo, lo, hi)
	}
}

func TestFig5Structure(t *testing.T) {
	b := testBundle(t)
	res := b.Fig5()
	if len(res.Categories) != len(Fig5VIDCategories) {
		t.Fatalf("Fig 5 categories = %d", len(res.Categories))
	}
	if len(res.Methods) != 5 {
		t.Fatalf("Fig 5 methods = %d", len(res.Methods))
	}
	for ci := range res.Categories {
		for mi := range res.Methods {
			if ap := res.AP[ci][mi]; ap < 0 || ap > 1 {
				t.Fatalf("AP %v out of range", ap)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "red panda") {
		t.Fatal("Print missing categories")
	}
}

func TestFig6NormalisedToSS(t *testing.T) {
	b := testBundle(t)
	res := b.Fig6()
	if res.Methods[0] != "SS/SS" || res.TotalTP[0] != 1 || res.TotalFP[0] != 1 {
		t.Fatalf("Fig 6 must normalise to SS/SS: %+v", res)
	}
	// Multi-scale training slashes false positives (the paper's key
	// observation in Fig. 6).
	msIdx := -1
	for i, m := range res.Methods {
		if m == "MS/SS" {
			msIdx = i
		}
	}
	if msIdx < 0 || res.TotalFP[msIdx] >= 1 {
		t.Fatalf("MS/SS FP ratio %v, want < 1", res.TotalFP[msIdx])
	}
}

func TestFig7Structure(t *testing.T) {
	b := testBundle(t)
	res := b.Fig7()
	if len(res.Points) != 6 {
		t.Fatalf("Fig 7 points = %d", len(res.Points))
	}
	byName := map[string]ParetoPoint{}
	for _, p := range res.Points {
		byName[p.Name] = p
		if p.FPS <= 0 {
			t.Fatalf("degenerate FPS for %s", p.Name)
		}
	}
	if byName["DFF"].FPS <= byName["R-FCN"].FPS {
		t.Fatal("DFF must be faster than per-frame R-FCN")
	}
	if byName["R-FCN+AdaScale"].FPS <= byName["R-FCN"].FPS {
		t.Fatal("AdaScale must speed up R-FCN")
	}
	if byName["SeqNMS+AdaScale"].FPS <= byName["SeqNMS"].FPS {
		t.Fatal("AdaScale must speed up SeqNMS")
	}
	if byName["DFF+AdaScale"].FPS <= byName["DFF"].FPS {
		t.Fatal("AdaScale must speed up DFF (the paper's +25%)")
	}
}

func TestFig9Dynamics(t *testing.T) {
	b := testBundle(t)
	res := b.Fig9()
	if len(res.Clips) != 3 {
		t.Fatalf("Fig 9 clips = %d", len(res.Clips))
	}
	large, small := res.Clips[0], res.Clips[1]
	if meanInt(large.Scales[1:]) >= meanInt(small.Scales[1:]) {
		t.Fatalf("large-object clip (mean %.0f) must use smaller scales than small-object clip (mean %.0f)",
			meanInt(large.Scales[1:]), meanInt(small.Scales[1:]))
	}
	for _, c := range res.Clips {
		if c.Scales[0] != 600 {
			t.Fatal("every clip must start at 600 (Algorithm 1)")
		}
	}
}

func TestFig10Distribution(t *testing.T) {
	b := testBundle(t)
	res := b.Fig10()
	if len(res.Entries) != 4 {
		t.Fatalf("Fig 10 entries = %d", len(res.Entries))
	}
	nFrames := 0
	for _, sn := range b.DS.Val {
		nFrames += len(sn.Frames)
	}
	for _, e := range res.Entries {
		total := 0
		for _, c := range e.Counts {
			total += c
		}
		if total != nFrames {
			t.Fatalf("S_train %v histogram covers %d frames, want %d", e.Strain, total, nFrames)
		}
	}
	// The paper's Fig. 10: richer training sets shift mass to lower scales.
	if res.Entries[0].MeanScale >= res.Entries[3].MeanScale {
		t.Fatalf("full S_train mean scale %v should be below {600}'s %v",
			res.Entries[0].MeanScale, res.Entries[3].MeanScale)
	}
}

func TestQualitative(t *testing.T) {
	b := testBundle(t)
	res := b.Qualitative(5)
	if res.DownscaleFraction <= 0 || res.DownscaleFraction > 1 {
		t.Fatalf("downscale fraction %v", res.DownscaleFraction)
	}
	if len(res.Examples) == 0 {
		t.Fatal("expected at least one down-scale example (Fig. 1's premise)")
	}
	if len(res.Examples) > 5 {
		t.Fatal("maxExamples not honoured")
	}
	for _, e := range res.Examples {
		if e.OptimalScale >= 600 {
			t.Fatalf("example optimal scale %d not below 600", e.OptimalScale)
		}
		if e.LossOpt >= e.Loss600 {
			t.Fatalf("optimal-scale loss %v must beat 600's %v", e.LossOpt, e.Loss600)
		}
	}
}

func TestScalesString(t *testing.T) {
	if got := scalesString([]int{600, 360}); got != "{600,360}" {
		t.Fatalf("scalesString = %q", got)
	}
	if got := scalesString(nil); got != "{}" {
		t.Fatalf("scalesString(nil) = %q", got)
	}
}

func TestRobustnessSweep(t *testing.T) {
	b := testBundle(t)
	res, err := b.Robustness([]float64{0, 0.10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	clean, faulty := res.Rows[0], res.Rows[1]
	if clean.Summary.FaultCounts[0] != clean.Summary.Frames {
		t.Fatalf("rate 0 must inject nothing: %v", clean.Summary)
	}
	if faulty.Summary.Frames == clean.Summary.FaultCounts[0] && faulty.Summary.Degraded == 0 {
		t.Fatal("rate 0.10 injected no faults")
	}
	// The headline: the resilient runner out-scores naive AdaScale on the
	// identical corrupted stream, and every frame is accounted for.
	if faulty.Resilient.MAP <= faulty.Naive.MAP {
		t.Fatalf("resilient %.4f must beat naive %.4f at rate 0.10",
			faulty.Resilient.MAP, faulty.Naive.MAP)
	}
	if faulty.Summary.Unaccounted != 0 {
		t.Fatalf("unaccounted frames in resilient run: %v", faulty.Summary)
	}
	// Faults cost every method accuracy relative to the clean stream.
	if faulty.Naive.MAP >= clean.Naive.MAP {
		t.Fatalf("faults should hurt naive AdaScale: %.4f vs clean %.4f",
			faulty.Naive.MAP, clean.Naive.MAP)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Resilient", "health:", "retains"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print output missing %q:\n%s", want, out)
		}
	}
}
