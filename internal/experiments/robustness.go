package experiments

import (
	"fmt"
	"io"

	"adascale/internal/adascale"
	"adascale/internal/faults"
)

// RobustnessRow is one point of the mAP-degradation curve: all methods
// evaluated on the same fault-injected copy of the validation split.
type RobustnessRow struct {
	// Rate is the total per-frame fault rate injected (faults.Mixed).
	Rate float64

	// Fixed, Naive and Resilient score fixed-scale 600, naive AdaScale and
	// the resilient runner on the corrupted stream (against true ground
	// truth, synth.Frame.GroundTruth).
	Fixed, Naive, Resilient MethodRow

	// Summary is the resilient runner's aggregate health accounting.
	Summary adascale.HealthSummary
}

// RobustnessResult is the fault-rate sweep of the robustness experiment.
type RobustnessResult struct {
	Dataset    string
	DeadlineMS float64
	Rows       []RobustnessRow
}

// Robustness sweeps fault rate × runner: each rate injects a deterministic
// mixed fault soup (internal/faults) into the validation split and scores
// fixed-scale, naive AdaScale and the resilient runner on the identical
// corrupted stream. deadlineMS > 0 additionally enables the resilient
// runner's per-frame deadline. Rates default to {0, 0.05, 0.10, 0.20}.
func (b *Bundle) Robustness(rates []float64, deadlineMS float64) (*RobustnessResult, error) {
	if len(rates) == 0 {
		rates = []float64{0, 0.05, 0.10, 0.20}
	}
	sys := b.DefaultSystem()
	rcfg := adascale.DefaultResilientConfig()
	rcfg.DeadlineMS = deadlineMS

	res := &RobustnessResult{Dataset: b.Cfg.Dataset, DeadlineMS: deadlineMS}
	for _, rate := range rates {
		cfg := faults.Mixed(rate, b.Cfg.Seed+271)
		val, err := faults.Inject(b.DS.Val, cfg)
		if err != nil {
			return nil, err
		}
		resilient := b.evaluateMethodOn("MS/Resilient", val, adascale.ResilientRunner(sys.Detector, sys.Regressor, rcfg))
		res.Rows = append(res.Rows, RobustnessRow{
			Rate:      rate,
			Fixed:     b.evaluateMethodOn("MS/SS", val, adascale.FixedRunner(sys.Detector, 600)),
			Naive:     b.evaluateMethodOn("MS/AdaScale", val, adascale.AdaScaleRunner(sys.Detector, sys.Regressor)),
			Resilient: resilient,
			Summary:   adascale.Summarize(resilient.Outputs()),
		})
	}
	return res, nil
}

// Print writes the mAP-degradation curve plus the resilient runner's
// health accounting per fault rate.
func (r *RobustnessResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Robustness (%s): mAP (%%) under injected faults", r.Dataset)
	if r.DeadlineMS > 0 {
		fmt.Fprintf(w, ", %.0f ms deadline", r.DeadlineMS)
	}
	fmt.Fprintln(w)
	header := fmt.Sprintf("%-7s %8s %8s %12s %12s", "rate", "MS/SS", "AdaScale", "Resilient", "runtime(ms)")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-7.2f %8.1f %8.1f %12.1f %12.1f\n",
			row.Rate, row.Fixed.MAP*100, row.Naive.MAP*100, row.Resilient.MAP*100, row.Resilient.RuntimeMS)
	}
	for _, row := range r.Rows {
		if row.Rate > 0 {
			fmt.Fprintf(w, "  rate %.2f health: %v\n", row.Rate, row.Summary)
		}
	}
	if n := len(r.Rows); n > 1 {
		last := r.Rows[n-1]
		fmt.Fprintf(w, "At rate %.2f the resilient runner retains %+.1f mAP over naive AdaScale.\n\n",
			last.Rate, (last.Resilient.MAP-last.Naive.MAP)*100)
	}
}
