package experiments

import (
	"fmt"
	"io"

	"adascale/internal/adascale"
	"adascale/internal/eval"
	"adascale/internal/serve"
)

// ServingConfig sizes the multi-stream serving sweep.
type ServingConfig struct {
	// StreamCounts are the concurrency levels to sweep; defaults to
	// {2, 4, 8, 16} — from comfortably inside to well past the capacity of
	// the default worker count.
	StreamCounts []int

	// SLOs are the per-frame latency SLOs (virtual ms) to sweep at each
	// concurrency; 0 disables enforcement. Defaults to {0, 150, 40}.
	SLOs []float64

	// Workers is the serving capacity; defaults to 4 so the sweep's load
	// shape is machine-independent.
	Workers int

	// FPS is the mean per-stream arrival rate; defaults to 8 (a stream is
	// serial in the scheduler, so its own capacity is ~1/service-time).
	FPS float64

	// FramesPerStream sizes each stream; defaults to 40.
	FramesPerStream int

	// QueueDepth bounds each stream's queue; defaults to 8.
	QueueDepth int
}

// DefaultServingConfig returns the standard sweep sizing.
func DefaultServingConfig() ServingConfig {
	return ServingConfig{
		StreamCounts:    []int{2, 4, 8, 16},
		SLOs:            []float64{0, 150, 40},
		Workers:         4,
		FPS:             8,
		FramesPerStream: 40,
		QueueDepth:      8,
	}
}

func (c ServingConfig) withDefaults() ServingConfig {
	if len(c.StreamCounts) == 0 {
		c.StreamCounts = []int{2, 4, 8, 16}
	}
	if len(c.SLOs) == 0 {
		c.SLOs = []float64{0, 150, 40}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.FPS <= 0 {
		c.FPS = 8
	}
	if c.FramesPerStream <= 0 {
		c.FramesPerStream = 40
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	return c
}

// ServingRow is one (stream count, SLO) point of the serving sweep.
type ServingRow struct {
	Streams int
	SLOMS   float64

	// P50 and P99 are end-to-end frame latency quantiles (virtual ms) over
	// every served frame.
	P50, P99 float64

	// DropRate is dropped/offered; SLOMissRate is misses/served.
	DropRate, SLOMissRate float64

	// MAP is the serving-quality proxy: served detections scored against
	// ground truth with every dropped frame counted as an empty detection
	// set — load shedding pays in recall, visibly.
	MAP float64

	// MeanScale is the mean served test scale (SLO pressure pushes it down).
	MeanScale float64
}

// ServingResult is the streams × SLO grid of the serving experiment.
type ServingResult struct {
	Dataset string
	Cfg     ServingConfig
	Rows    []ServingRow
}

// Serving sweeps concurrency × SLO through the multi-stream server on the
// validation split: each point generates the same seeded open-loop arrival
// schedule, serves it through internal/serve at the configured capacity,
// and scores achieved latency, drop rate and the mAP proxy. The sweep is a
// pure function of the bundle seed and the sweep config.
func (b *Bundle) Serving(cfg ServingConfig) (*ServingResult, error) {
	cfg = cfg.withDefaults()
	sys := b.DefaultSystem()
	res := &ServingResult{Dataset: b.Cfg.Dataset, Cfg: cfg}

	for _, streams := range cfg.StreamCounts {
		load, err := serve.GenLoad(b.DS.Val, serve.LoadConfig{
			Streams:         streams,
			FPS:             cfg.FPS,
			FramesPerStream: cfg.FramesPerStream,
			Seed:            b.Cfg.Seed + 433,
		})
		if err != nil {
			return nil, err
		}
		for _, slo := range cfg.SLOs {
			srv, err := serve.New(sys.Detector, sys.Regressor, serve.Config{
				Workers:    cfg.Workers,
				QueueDepth: cfg.QueueDepth,
				SLOMS:      slo,
				Resilient:  adascale.DefaultResilientConfig(),
				// The bundle tracer (when attached, e.g. in report mode)
				// gives the serving entry a per-stage ns/op and allocs/op
				// apportionment in BENCH_4.json, so a serving regression is
				// localised to decode vs backbone vs seqnms instead of only
				// the total.
				Tracer: b.Trace,
			})
			if err != nil {
				return nil, err
			}
			rep := srv.Run(load)
			res.Rows = append(res.Rows, scoreServing(b, rep, streams, slo))
		}
	}
	return res, nil
}

// scoreServing folds one serving report into a sweep row.
func scoreServing(b *Bundle, rep *serve.Report, streams int, slo float64) ServingRow {
	outputs := rep.Served()
	frames := ToEval(outputs)
	misses := 0
	for _, sr := range rep.Streams {
		misses += sr.SLOMisses
		for _, f := range sr.Dropped {
			frames = append(frames, eval.FrameDetections{GroundTruth: f.GroundTruth()})
		}
	}
	offered := len(outputs) + rep.TotalDropped()

	row := ServingRow{
		Streams:   streams,
		SLOMS:     slo,
		P50:       rep.Metrics.Quantile("latency/ms", 0.50),
		P99:       rep.Metrics.Quantile("latency/ms", 0.99),
		MAP:       eval.Evaluate(frames, len(b.DS.Config.Classes)).MAP,
		MeanScale: adascale.MeanScale(outputs),
	}
	if offered > 0 {
		row.DropRate = float64(rep.TotalDropped()) / float64(offered)
	}
	if len(outputs) > 0 {
		row.SLOMissRate = float64(misses) / float64(len(outputs))
	}
	return row
}

// Print writes the serving grid in paper-table style.
func (r *ServingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Serving (%s): %d workers, %.0f fps/stream, queue %d\n",
		r.Dataset, r.Cfg.Workers, r.Cfg.FPS, r.Cfg.QueueDepth)
	header := fmt.Sprintf("%-8s %8s %9s %9s %7s %9s %8s %10s",
		"streams", "SLO(ms)", "p50(ms)", "p99(ms)", "drop%", "SLOmiss%", "mAP", "mean scale")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	for _, row := range r.Rows {
		sloLabel := "off"
		if row.SLOMS > 0 {
			sloLabel = fmt.Sprintf("%.0f", row.SLOMS)
		}
		fmt.Fprintf(w, "%-8d %8s %9.1f %9.1f %7.1f %9.1f %8.1f %10.0f\n",
			row.Streams, sloLabel, row.P50, row.P99,
			row.DropRate*100, row.SLOMissRate*100, row.MAP*100, row.MeanScale)
	}
	fmt.Fprintln(w)
}
