package experiments

import (
	"fmt"
	"io"
)

// Table1Result reproduces Table 1 (a: ImageNet VID-like, b: mini
// YouTube-BB-like): per-class AP, mAP and runtime for SS/SS, MS/SS and
// MS/AdaScale.
type Table1Result struct {
	Dataset    string
	ClassNames []string
	Rows       []MethodRow
}

// Table1 evaluates the three main methods of the paper's Table 1 on the
// bundle's validation split.
func (b *Bundle) Table1() *Table1Result {
	all := b.StandardMethods()
	// Table 1 reports SS/SS, MS/SS and MS/AdaScale (the other two methods
	// appear in Figs. 5-6).
	rows := []MethodRow{all[0], all[1], all[4]}
	return &Table1Result{Dataset: b.Cfg.Dataset, ClassNames: b.Classes(), Rows: rows}
}

// Print writes the table in the paper's layout: one row per method with
// per-class AP, mAP and runtime. Per-class cells that improve (≥1 AP) over
// SS/SS are marked '+', degradations '-' (the paper uses blue/red text).
func (t *Table1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 1 (%s): per-class AP (%%), mAP (%%) and runtime (ms)\n", t.Dataset)
	header := fmt.Sprintf("%-12s", "method")
	for _, n := range t.ClassNames {
		header += fmt.Sprintf(" %6.6s", n)
	}
	header += fmt.Sprintf(" | %6s %11s", "mAP", "runtime(ms)")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	base := t.Rows[0]
	for _, r := range t.Rows {
		line := fmt.Sprintf("%-12s", r.Name)
		for c := range t.ClassNames {
			mark := " "
			diff := (r.PerClassAP[c] - base.PerClassAP[c]) * 100
			if r.Name != base.Name {
				if diff >= 1 {
					mark = "+"
				} else if diff <= -1 {
					mark = "-"
				}
			}
			line += fmt.Sprintf(" %5.1f%s", r.PerClassAP[c]*100, mark)
		}
		line += fmt.Sprintf(" | %6.1f %11.0f", r.MAP*100, r.RuntimeMS)
		fmt.Fprintln(w, line)
	}
	ada, ss := t.Rows[len(t.Rows)-1], t.Rows[0]
	fmt.Fprintf(w, "AdaScale vs SS/SS: %+.1f mAP, %.2fx speedup (paper: +1.3 mAP / 1.6x on VID, +2.7 / 1.8x on mini YTBB)\n\n",
		(ada.MAP-ss.MAP)*100, ss.RuntimeMS/ada.RuntimeMS)
}
