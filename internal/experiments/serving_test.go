package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestServingSweepShape pins the serving experiment's acceptance shape: at
// low concurrency p99 stays under a loose SLO with no drops; past capacity
// the server sheds load (drops > 0) instead of letting latency diverge,
// and the sweep itself is deterministic.
func TestServingSweepShape(t *testing.T) {
	b := testBundle(t)
	cfg := ServingConfig{
		StreamCounts:    []int{1, 24},
		SLOs:            []float64{0, 60},
		Workers:         2,
		FPS:             6,
		FramesPerStream: 20,
	}
	res, err := b.Serving(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 stream counts x 2 SLOs)", len(res.Rows))
	}

	rows := map[[2]int]ServingRow{}
	for _, r := range res.Rows {
		rows[[2]int{r.Streams, int(r.SLOMS)}] = r
	}

	low := rows[[2]int{1, 60}]
	if low.DropRate != 0 {
		t.Fatalf("drop rate %.2f at 1 stream on 2 workers; want 0", low.DropRate)
	}
	if low.P99 > 200 {
		t.Fatalf("p99 %.1fms at 1 unloaded stream", low.P99)
	}
	if low.MAP <= 0 {
		t.Fatal("zero mAP proxy on an unloaded stream")
	}

	over := rows[[2]int{24, 60}]
	if over.DropRate == 0 {
		t.Fatal("no drops at 24 streams on 2 workers; overload is not shedding")
	}
	if over.MAP >= low.MAP {
		t.Fatalf("mAP proxy %.3f under overload >= %.3f unloaded: dropped frames are not being charged", over.MAP, low.MAP)
	}
	// SLO pressure under overload pushes the served scale down the ladder.
	overOff := rows[[2]int{24, 0}]
	if over.MeanScale >= overOff.MeanScale {
		t.Fatalf("mean scale %.0f with a 60ms SLO >= %.0f without: the SLO is not stepping scale caps", over.MeanScale, overOff.MeanScale)
	}

	again, err := b.Serving(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Fatalf("row %d diverges across identical sweeps: %+v vs %+v", i, res.Rows[i], again.Rows[i])
		}
	}

	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Serving (vid)", "streams", "p99(ms)", "drop%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed sweep missing %q:\n%s", want, out)
		}
	}
}
