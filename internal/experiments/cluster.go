package experiments

import (
	"fmt"
	"io"

	"adascale/internal/adascale"
	"adascale/internal/cluster"
	"adascale/internal/serve"
)

// ClusterSweepConfig sizes the cluster capacity-planning sweep.
type ClusterSweepConfig struct {
	// Streams are the concurrent stream counts to sweep; default
	// {1000, 10000, 100000} — the "millions of users" planning axis.
	Streams []int

	// Nodes are the cluster sizes each stream count is served on; default
	// {16, 64, 256}.
	Nodes []int

	// FPS / FramesPerStream shape each stream's open-loop schedule;
	// default 10 fps, 4 frames (capacity planning needs breadth across
	// streams, not depth per stream; 10 fps against a 3-deep queue makes
	// both damage axes live — saturated nodes shed as well as queue).
	FPS             float64
	FramesPerStream int

	// Workers is each node's explicit virtual serving capacity; default 8.
	Workers int

	// QueueDepth bounds each stream's queue; default 3.
	QueueDepth int

	// SLOMS is the per-frame latency SLO (virtual ms); default 80.
	SLOMS float64

	// EpochMS is the cluster placement epoch; default 500.
	EpochMS float64

	// EventRate is the cluster event plan's intensity (joins, leaves,
	// blackouts, migrations per virtual second); default 2 — enough that
	// every cell exercises failover, not just steady-state sharding.
	EventRate float64

	// PlanSeed seeds the cluster event plans; zero derives from the
	// bundle seed.
	PlanSeed int64
}

// DefaultClusterSweepConfig returns the full capacity-planning sizing.
func DefaultClusterSweepConfig() ClusterSweepConfig {
	return ClusterSweepConfig{
		Streams: []int{1000, 10000, 100000},
		Nodes:   []int{16, 64, 256},
	}
}

func (c ClusterSweepConfig) withDefaults(bundleSeed int64) ClusterSweepConfig {
	if len(c.Streams) == 0 {
		c.Streams = []int{1000, 10000, 100000}
	}
	if len(c.Nodes) == 0 {
		c.Nodes = []int{16, 64, 256}
	}
	if c.FPS <= 0 {
		c.FPS = 10
	}
	if c.FramesPerStream <= 0 {
		c.FramesPerStream = 4
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 3
	}
	if c.SLOMS < 0 {
		c.SLOMS = 0
	}
	if c.SLOMS == 0 {
		c.SLOMS = 80
	}
	if c.EpochMS <= 0 {
		c.EpochMS = 500
	}
	if c.EventRate < 0 {
		c.EventRate = 0
	} else if c.EventRate == 0 {
		c.EventRate = 2
	}
	if c.PlanSeed == 0 {
		c.PlanSeed = bundleSeed + 911
	}
	return c
}

// ClusterCell scores one (streams, nodes) cluster run.
type ClusterCell struct {
	// Offered / Served / Dropped / Lost are cluster frame totals; Lost
	// must be zero (the conservation invariant).
	Offered, Served, Dropped, Lost int

	// DropRate is dropped/offered; SLOMissRate is misses/served.
	DropRate, SLOMissRate float64

	// P95 is the end-to-end latency p95 (virtual ms) over served frames.
	P95 float64

	// RecoveryMS is the mean first-failure→settle time across the
	// blackout windows (0 when no dispatch ever failed).
	RecoveryMS float64

	// Blackouts / Migrations / Failovers count the cluster events the
	// cell absorbed; FinalNodes is the fleet size at the end.
	Blackouts, Migrations, Failovers, FinalNodes int
}

// ClusterRow is one stream count across every cluster size.
type ClusterRow struct {
	Streams int
	Cells   []ClusterCell // one per cfg.Nodes entry, in order
}

// ClusterResult is the capacity-planning sweep.
type ClusterResult struct {
	Dataset string
	Cfg     ClusterSweepConfig
	Rows    []ClusterRow
}

// Cluster sweeps stream count × cluster size over the virtual-time cluster
// simulator: every cell shards the same seeded open-loop load across the
// given node count, injects the same-rate cluster event plan (joins,
// leaves, blackouts forcing cross-node failover, stream migrations), and
// scores SLO damage, recovery time and fleet outcomes. Runs are model-only
// — frames cost their modelled virtual service time but no real detector
// compute — which is what makes the 100k-stream column tractable; queue
// dynamics, drops, latency and recovery are exactly what the full run
// would produce. The sweep is a pure function of the bundle seed and the
// sweep config.
func (b *Bundle) Cluster(cfg ClusterSweepConfig) (*ClusterResult, error) {
	cfg = cfg.withDefaults(b.Cfg.Seed)
	sys := b.DefaultSystem()
	res := &ClusterResult{Dataset: b.Cfg.Dataset, Cfg: cfg}

	for _, streams := range cfg.Streams {
		load, err := serve.GenLoad(b.DS.Val, serve.LoadConfig{
			Streams:         streams,
			FPS:             cfg.FPS,
			FramesPerStream: cfg.FramesPerStream,
			Seed:            b.Cfg.Seed + 433,
		})
		if err != nil {
			return nil, err
		}
		horizon := 0.0
		for _, st := range load {
			if n := len(st.Frames); n > 0 && st.Frames[n-1].ArrivalMS > horizon {
				horizon = st.Frames[n-1].ArrivalMS
			}
		}
		row := ClusterRow{Streams: streams}
		for _, nodes := range cfg.Nodes {
			plan, err := cluster.GenPlan(cluster.PlanConfig{
				Seed:      cfg.PlanSeed,
				HorizonMS: horizon + cfg.EpochMS,
				Rate:      cfg.EventRate,
				Nodes:     nodes,
				Streams:   streams,
			})
			if err != nil {
				return nil, err
			}
			cl, err := cluster.New(sys.Detector, sys.Regressor, cluster.Config{
				Nodes:   nodes,
				EpochMS: cfg.EpochMS,
				Plan:    plan,
				Node: serve.Config{
					Workers:        cfg.Workers,
					QueueDepth:     cfg.QueueDepth,
					SLOMS:          cfg.SLOMS,
					Resilient:      adascale.DefaultResilientConfig(),
					ModelOnly:      true,
					CompactMetrics: true,
				},
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, scoreCluster(cl.Run(load)))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// scoreCluster folds one cluster report into a sweep cell.
func scoreCluster(rep *cluster.Report) ClusterCell {
	cell := ClusterCell{
		Offered:    rep.Offered,
		Served:     rep.Served,
		Dropped:    rep.Dropped,
		Lost:       rep.Lost(),
		P95:        rep.Metrics.Quantile("latency/ms", 0.95),
		RecoveryMS: rep.Metrics.Mean("recovery/ms"),
		Blackouts:  rep.Blackouts,
		Migrations: rep.Migrations,
		Failovers:  rep.Failovers,
		FinalNodes: rep.FinalNodes,
	}
	if rep.Offered > 0 {
		cell.DropRate = float64(rep.Dropped) / float64(rep.Offered)
	}
	if rep.Served > 0 {
		cell.SLOMissRate = float64(rep.SLOMisses) / float64(rep.Served)
	}
	return cell
}

// Print writes the capacity-planning sweep in paper-table style: one line
// per (streams, nodes) cell, grouped by stream count — the SLO-damage and
// recovery-time curves a capacity planner reads across each group to pick
// the smallest fleet meeting the SLO target.
func (r *ClusterResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Cluster capacity (%s): %.0f fps x %d frames/stream, %d workers/node, queue %d, SLO %.0f ms, epoch %.0f ms, event rate %.2g/s\n",
		r.Dataset, r.Cfg.FPS, r.Cfg.FramesPerStream, r.Cfg.Workers,
		r.Cfg.QueueDepth, r.Cfg.SLOMS, r.Cfg.EpochMS, r.Cfg.EventRate)
	header := fmt.Sprintf("%-8s %-6s %9s %7s %9s %9s %12s %6s %6s %5s %4s",
		"streams", "nodes", "offered", "drop%", "SLOmiss%", "p95(ms)", "recovery(ms)", "blkout", "migr", "fover", "lost")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	for _, row := range r.Rows {
		for i, cell := range row.Cells {
			fmt.Fprintf(w, "%-8d %-6d %9d %7.1f %9.1f %9.1f %12.1f %6d %6d %5d %4d\n",
				row.Streams, r.Cfg.Nodes[i], cell.Offered,
				cell.DropRate*100, cell.SLOMissRate*100, cell.P95, cell.RecoveryMS,
				cell.Blackouts, cell.Migrations, cell.Failovers, cell.Lost)
		}
	}
	if n := len(r.Rows); n > 0 && len(r.Rows[n-1].Cells) > 1 {
		last := r.Rows[n-1]
		first, best := last.Cells[0], last.Cells[len(last.Cells)-1]
		fmt.Fprintf(w, "At %d streams, growing %d -> %d nodes cuts SLO misses %.1f%% -> %.1f%% and p95 %.1f -> %.1f ms.\n\n",
			last.Streams, r.Cfg.Nodes[0], r.Cfg.Nodes[len(r.Cfg.Nodes)-1],
			first.SLOMissRate*100, best.SLOMissRate*100, first.P95, best.P95)
	}
}
