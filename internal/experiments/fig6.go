package experiments

import (
	"fmt"
	"io"
)

// Fig6Result holds true/false-positive counts per method, normalised to
// SS/SS, overall and for the paper's six focus categories.
type Fig6Result struct {
	Methods []string

	// TotalTP / TotalFP are normalised to the SS/SS method (index 0 of
	// Methods is SS/SS with value 1.0 by construction).
	TotalTP, TotalFP []float64

	Categories []string
	// CatTP[catIdx][methodIdx], CatFP likewise, normalised per category.
	CatTP, CatFP [][]float64
}

// Fig6 counts detections: the paper's analysis of *where* AdaScale's gain
// comes from — multi-scale training slashes false positives, AdaScale
// removes even more while keeping true positives at the SS/SS level.
func (b *Bundle) Fig6() *Fig6Result {
	rows := b.StandardMethods()
	res := &Fig6Result{}
	baseTP, baseFP := rows[0].Result().TPFPCounts()
	for _, r := range rows {
		res.Methods = append(res.Methods, r.Name)
		tp, fp := r.Result().TPFPCounts()
		res.TotalTP = append(res.TotalTP, ratio(tp, baseTP))
		res.TotalFP = append(res.TotalFP, ratio(fp, baseFP))
	}
	for _, cat := range Fig5VIDCategories {
		ci := b.classIndex(cat)
		if ci < 0 {
			continue
		}
		res.Categories = append(res.Categories, cat)
		bTP := rows[0].Result().PerClass[ci].TP
		bFP := rows[0].Result().PerClass[ci].FP
		var tps, fps []float64
		for i := range rows {
			c := rows[i].Result().PerClass[ci]
			tps = append(tps, ratio(c.TP, bTP))
			fps = append(fps, ratio(c.FP, bFP))
		}
		res.CatTP = append(res.CatTP, tps)
		res.CatFP = append(res.CatFP, fps)
	}
	return res
}

func ratio(v, base int) float64 {
	if base == 0 {
		return 0
	}
	return float64(v) / float64(base)
}

// Print writes the normalised counts.
func (f *Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 6: true/false positives normalised to SS/SS")
	header := fmt.Sprintf("%-12s %8s %8s", "method", "TP", "FP")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	for i, m := range f.Methods {
		fmt.Fprintf(w, "%-12s %8.2f %8.2f\n", m, f.TotalTP[i], f.TotalFP[i])
	}
	for ci, cat := range f.Categories {
		fmt.Fprintf(w, "category %q:\n", cat)
		for mi, m := range f.Methods {
			fmt.Fprintf(w, "  %-12s TP=%.2f FP=%.2f\n", m, f.CatTP[ci][mi], f.CatFP[ci][mi])
		}
	}
	fmt.Fprintln(w, "(paper: MS training cuts FPs dramatically; MS/AdaScale cuts even more with TPs comparable to SS/SS)")
	fmt.Fprintln(w)
}
