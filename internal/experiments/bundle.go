// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic substrate: Table 1a/1b (main
// results), Table 2 (S_train ablation), Table 3 (regressor architecture
// ablation), Fig. 5 (precision-recall curves), Fig. 6 (normalised TP/FP),
// Fig. 7 (speed/accuracy Pareto with DFF and Seq-NMS), Fig. 9 (scale
// dynamics), Fig. 10 (regressed-scale distributions), and the Fig. 1/8
// qualitative examples. Each experiment returns a structured result and
// can print the paper-style rows.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"adascale/internal/adascale"
	"adascale/internal/eval"
	"adascale/internal/obs"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/synth"
)

// Config sizes an experiment bundle.
type Config struct {
	// Dataset selects "vid" (default) or "ytbb".
	Dataset string

	// TrainSnippets / ValSnippets size the corpus; zero values pick
	// defaults that run in tens of seconds on a laptop CPU.
	TrainSnippets, ValSnippets int

	Seed int64
}

// DefaultConfig returns the standard experiment sizing.
func DefaultConfig() Config {
	return Config{Dataset: "vid", TrainSnippets: 60, ValSnippets: 30, Seed: 5}
}

// Bundle holds the dataset and trained systems shared across experiments.
// Systems per S_train set and per regressor architecture are built lazily
// and memoised.
type Bundle struct {
	Cfg Config
	DS  *synth.Dataset

	// SS is the single-scale baseline detector (trained at 600 only).
	SS *rfcn.Detector

	// Trace, when non-nil, records pipeline-stage spans for every method
	// any experiment evaluates (each runner factory is wrapped with
	// adascale.TracedRunner) plus one aggregate eval span per scoring
	// pass. The caller owns the tracer's lifecycle — the bench harness
	// resets it between experiments to attribute stage time per
	// experiment.
	Trace *obs.Tracer

	systems map[string]*adascale.System
}

// Prepare generates the dataset and the SS baseline.
func Prepare(cfg Config) (*Bundle, error) {
	if cfg.TrainSnippets == 0 {
		cfg.TrainSnippets = 60
	}
	if cfg.ValSnippets == 0 {
		cfg.ValSnippets = 30
	}
	var dcfg synth.Config
	switch cfg.Dataset {
	case "", "vid":
		cfg.Dataset = "vid"
		dcfg = synth.VIDLike(cfg.Seed)
	case "ytbb":
		dcfg = synth.MiniYTBBLike(cfg.Seed)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q (want vid or ytbb)", cfg.Dataset)
	}
	ds, err := synth.Generate(dcfg, cfg.TrainSnippets, cfg.ValSnippets)
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Cfg:     cfg,
		DS:      ds,
		SS:      rfcn.NewSS(&ds.Config),
		systems: map[string]*adascale.System{},
	}, nil
}

// System returns (building and memoising on first use) the trained AdaScale
// system for the given S_train set and regressor kernel set.
func (b *Bundle) System(trainScales, kernels []int) *adascale.System {
	key := fmt.Sprintf("%v|%v", trainScales, kernels)
	if sys, ok := b.systems[key]; ok {
		return sys
	}
	bc := adascale.DefaultBuildConfig()
	bc.TrainScales = trainScales
	bc.Kernels = kernels
	sys := adascale.Build(b.DS, bc)
	b.systems[key] = sys
	return sys
}

// DefaultSystem returns the paper's default configuration: S_train =
// {600,480,360,240}, kernels {1,3}.
func (b *Bundle) DefaultSystem() *adascale.System {
	return b.System([]int{600, 480, 360, 240}, regressor.DefaultKernels)
}

// Classes returns the dataset's class names.
func (b *Bundle) Classes() []string {
	names := make([]string, len(b.DS.Config.Classes))
	for i, c := range b.DS.Config.Classes {
		names[i] = c.Name
	}
	return names
}

// MethodRow is one evaluated method: mAP, modelled runtime, per-class AP.
type MethodRow struct {
	Name       string
	MAP        float64
	RuntimeMS  float64
	MeanScale  float64
	PerClassAP []float64

	outputs []adascale.FrameOutput
	result  *eval.Result
}

// Outputs exposes the raw per-frame outputs (for follow-on analyses).
func (m *MethodRow) Outputs() []adascale.FrameOutput { return m.outputs }

// Result exposes the full evaluation (PR curves, TP/FP counts).
func (m *MethodRow) Result() *eval.Result { return m.result }

// ToEval converts pipeline outputs into evaluation inputs.
func ToEval(outputs []adascale.FrameOutput) []eval.FrameDetections {
	out := make([]eval.FrameDetections, len(outputs))
	for i, o := range outputs {
		out[i] = eval.FrameDetections{Detections: o.Detections, GroundTruth: o.Frame.GroundTruth()}
	}
	return out
}

// evaluateMethod runs a per-snippet runner factory over the validation
// split (in parallel, one runner per worker) and scores it.
func (b *Bundle) evaluateMethod(name string, factory adascale.RunnerFactory) MethodRow {
	return b.evaluateMethodOn(name, b.DS.Val, factory)
}

// evaluateMethodOn is evaluateMethod over an arbitrary snippet set — the
// robustness sweep scores the same runners on fault-injected copies of the
// validation split.
func (b *Bundle) evaluateMethodOn(name string, snippets []synth.Snippet, factory adascale.RunnerFactory) MethodRow {
	outputs := adascale.RunDataset(snippets, adascale.TracedRunner(factory, b.Trace))
	// The scoring pass is traced as one whole-dataset aggregate span
	// (stream/frame = -1): evaluation is not part of the deployed
	// pipeline's runtime, so it carries no modelled cost — zero duration
	// in virtual mode, measured duration in wall mode.
	ref := b.Trace.Now()
	res := eval.Evaluate(ToEval(outputs), len(b.DS.Config.Classes))
	b.Trace.Record(-1, -1, obs.StageEval, 0, b.Trace.SinceMS(ref))
	per := make([]float64, len(res.PerClass))
	for i, c := range res.PerClass {
		per[i] = c.AP
	}
	return MethodRow{
		Name:       name,
		MAP:        res.MAP,
		RuntimeMS:  adascale.MeanRuntimeMS(outputs),
		MeanScale:  adascale.MeanScale(outputs),
		PerClassAP: per,
		outputs:    outputs,
		result:     res,
	}
}

// StandardMethods evaluates the five methods of Sec. 4.3 on the validation
// split: SS/SS, MS/SS, MS/MS, MS/Random and MS/AdaScale.
func (b *Bundle) StandardMethods() []MethodRow {
	sys := b.DefaultSystem()
	return []MethodRow{
		b.evaluateMethod("SS/SS", adascale.FixedRunner(b.SS, 600)),
		b.evaluateMethod("MS/SS", adascale.FixedRunner(sys.Detector, 600)),
		b.evaluateMethod("MS/MS", adascale.MultiShotRunner(sys.Detector, []int{600, 480, 360, 240})),
		b.evaluateMethod("MS/Random", adascale.RandomRunner(sys.Detector, regressor.SReg, b.Cfg.Seed+101)),
		b.evaluateMethod("MS/AdaScale", adascale.AdaScaleRunner(sys.Detector, sys.Regressor)),
	}
}

// classIndex returns the index of the named class, or -1.
func (b *Bundle) classIndex(name string) int {
	for i, c := range b.DS.Config.Classes {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// printRuler writes a separator line sized to the preceding header.
func printRuler(w io.Writer, n int) {
	line := make([]byte, n)
	for i := range line {
		line[i] = '-'
	}
	fmt.Fprintf(w, "%s\n", line)
}

// sortedKeys is a small helper for deterministic map iteration in reports.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// scalesString renders a scale set compactly, e.g. "{600,480,360,240}".
func scalesString(scales []int) string {
	s := "{"
	for i, v := range scales {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + "}"
}
