package experiments

import (
	"fmt"
	"io"

	"adascale/internal/adascale"
	"adascale/internal/regressor"
)

// Fig10Bins are the histogram bin edges (scales) for the regressed-scale
// distribution.
var Fig10Bins = []int{128, 240, 360, 480, 600}

// Fig10Entry is one S_train set's regressed-scale histogram over the
// validation split.
type Fig10Entry struct {
	Strain []int
	// Counts[i] counts frames whose tested scale fell in
	// [Fig10Bins[i], Fig10Bins[i+1]) — the last bin is [480, 600].
	Counts    []int
	MeanScale float64
}

// Fig10Result reproduces the regressed-scale distributions of Fig. 10:
// richer S_train sets let the regressor push more frames to lower scales.
type Fig10Result struct {
	Entries []Fig10Entry
}

// Fig10 runs AdaScale with each Table-2 system over the validation split
// and histograms the chosen scales.
func (b *Bundle) Fig10() *Fig10Result {
	res := &Fig10Result{}
	for _, strain := range Table2Strains {
		sys := b.System(strain, regressor.DefaultKernels)
		outs := adascale.RunDataset(b.DS.Val, adascale.AdaScaleRunner(sys.Detector, sys.Regressor))
		counts := make([]int, len(Fig10Bins)-1)
		for _, o := range outs {
			for i := len(Fig10Bins) - 2; i >= 0; i-- {
				if o.Scale >= Fig10Bins[i] {
					counts[i]++
					break
				}
			}
		}
		res.Entries = append(res.Entries, Fig10Entry{
			Strain:    strain,
			Counts:    counts,
			MeanScale: adascale.MeanScale(outs),
		})
	}
	return res
}

// Print writes the histograms as text bars.
func (f *Fig10Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 10: regressed-scale distribution per S_train")
	for _, e := range f.Entries {
		fmt.Fprintf(w, "S_train %v (mean scale %.0f):\n", e.Strain, e.MeanScale)
		total := 0
		for _, c := range e.Counts {
			total += c
		}
		for i, c := range e.Counts {
			frac := 0.0
			if total > 0 {
				frac = float64(c) / float64(total)
			}
			fmt.Fprintf(w, "  [%3d-%3d) %5.1f%% %s\n", Fig10Bins[i], Fig10Bins[i+1], frac*100, bar(frac))
		}
	}
	fmt.Fprintln(w, "(paper: larger S_train shifts mass to smaller scales — higher speed at equal or better mAP)")
	fmt.Fprintln(w)
}

func bar(frac float64) string {
	n := int(frac * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
