package experiments

import (
	"fmt"
	"io"

	"adascale/internal/adascale"
	"adascale/internal/regressor"
)

// Table2Strains are the paper's four detector training-scale sets.
var Table2Strains = [][]int{
	{600, 480, 360, 240},
	{600, 480, 360},
	{600, 360},
	{600},
}

// Table2Entry is one S_train column: single-scale testing vs AdaScale.
type Table2Entry struct {
	Strain []int
	SS     MethodRow // tested at 600
	Ada    MethodRow // AdaScale testing
}

// Table2Result is the S_train ablation (paper Sec. 4.7, Table 2): larger
// multi-scale training sets should improve both AdaScale's mAP and speed.
type Table2Result struct {
	Entries []Table2Entry
}

// Table2 retrains the system for every S_train set and evaluates both
// testing protocols.
func (b *Bundle) Table2() *Table2Result {
	res := &Table2Result{}
	for _, strain := range Table2Strains {
		sys := b.System(strain, regressor.DefaultKernels)
		ss := b.evaluateMethod(scalesString(strain)+"/SS", adascale.FixedRunner(sys.Detector, 600))
		ada := b.evaluateMethod(scalesString(strain)+"/Ada", adascale.AdaScaleRunner(sys.Detector, sys.Regressor))
		res.Entries = append(res.Entries, Table2Entry{Strain: strain, SS: ss, Ada: ada})
	}
	return res
}

// Print writes the paper's Table 2 layout.
func (t *Table2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 2: mAP and runtime for different multi-scale training settings")
	header := fmt.Sprintf("%-18s %10s %10s %12s %12s", "S_train", "SS mAP", "Ada mAP", "SS ms", "Ada ms")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	for _, e := range t.Entries {
		fmt.Fprintf(w, "%-18s %10.1f %10.1f %12.0f %12.0f\n",
			scalesString(e.Strain), e.SS.MAP*100, e.Ada.MAP*100, e.SS.RuntimeMS, e.Ada.RuntimeMS)
	}
	fmt.Fprintln(w, "(paper: Ada mAP 75.5/74.8/74.8/74.2 and runtime 47/55/57/68 ms — larger S_train is both more accurate and faster)")
	fmt.Fprintln(w)
}
