package experiments

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"time"

	"adascale/internal/adascale"
	"adascale/internal/obs"
	"adascale/internal/serve"
)

// BatchingConfig sizes the cross-stream batching sweep.
type BatchingConfig struct {
	// StreamCounts are the concurrency levels to sweep; defaults to
	// {8, 16}.
	StreamCounts []int

	// Caps are the BatchCap values to sweep at each concurrency. The
	// first cap is the identity baseline every other cap is checked
	// against; defaults to {1, 4, 8}.
	Caps []int

	// Workers is the serving capacity; defaults to 8 so batches have
	// enough simultaneously-in-flight frames to coalesce.
	Workers int

	// FPS is the mean per-stream arrival rate; defaults to 30 — past the
	// default worker capacity at both stream counts, so frames actually
	// overlap in flight (an unloaded sweep has nothing to coalesce).
	FPS float64

	// FramesPerStream sizes each stream; defaults to 40.
	FramesPerStream int

	// QueueDepth bounds each stream's queue; defaults to 8.
	QueueDepth int
}

// DefaultBatchingConfig returns the standard sweep sizing.
func DefaultBatchingConfig() BatchingConfig {
	return BatchingConfig{
		StreamCounts:    []int{8, 16},
		Caps:            []int{1, 4, 8},
		Workers:         8,
		FPS:             30,
		FramesPerStream: 40,
		QueueDepth:      8,
	}
}

func (c BatchingConfig) withDefaults() BatchingConfig {
	if len(c.StreamCounts) == 0 {
		c.StreamCounts = []int{8, 16}
	}
	if len(c.Caps) == 0 {
		c.Caps = []int{1, 4, 8}
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.FPS <= 0 {
		c.FPS = 30
	}
	if c.FramesPerStream <= 0 {
		c.FramesPerStream = 40
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	return c
}

// BatchingRow is one (stream count, batch cap) cell of the sweep.
type BatchingRow struct {
	Streams int
	Cap     int

	// NsPerFrame and AllocsPerFrame are measured wall time and heap
	// allocations per served frame for the whole serving run — machine-
	// dependent throughput numbers, not accuracy metrics.
	NsPerFrame     float64
	AllocsPerFrame float64

	// DetectNsPerFrame localises the win: NsPerFrame apportioned to the
	// detect stage by the run's deterministic virtual-time share (the
	// same apportionment BENCH_4.json stage breakdowns use), so the
	// batching delta is read off the stage it targets.
	DetectNsPerFrame float64

	// Occupancy is the mean frames per batched backbone pass (1 when
	// batching is off).
	Occupancy float64
}

// BatchingResult is the streams × cap grid of the batching experiment.
type BatchingResult struct {
	Dataset string
	Cfg     BatchingConfig
	Rows    []BatchingRow
}

// Batching sweeps cross-stream detector batching: for each concurrency it
// serves the identical seeded load at every BatchCap and measures wall
// time and allocations per frame, with the detect-stage share split out.
// Before reporting, every cell is checked byte-identical to the cap
// baseline — same served outputs, same metric snapshot minus the batch/*
// occupancy keys — so the sweep doubles as an end-to-end proof of the
// zero-added-latency contract; any divergence is an error, not a row.
func (b *Bundle) Batching(cfg BatchingConfig) (*BatchingResult, error) {
	cfg = cfg.withDefaults()
	sys := b.DefaultSystem()
	res := &BatchingResult{Dataset: b.Cfg.Dataset, Cfg: cfg}

	for _, streams := range cfg.StreamCounts {
		load, err := serve.GenLoad(b.DS.Val, serve.LoadConfig{
			Streams:         streams,
			FPS:             cfg.FPS,
			FramesPerStream: cfg.FramesPerStream,
			Seed:            b.Cfg.Seed + 619,
		})
		if err != nil {
			return nil, err
		}
		var baseOut []adascale.FrameOutput
		var baseSnap string
		for ci, cap := range cfg.Caps {
			// Each cell gets its own virtual tracer: the detect-stage
			// share it yields is deterministic and identical across caps
			// (virtual spans never see wall time), which is exactly what
			// lets the wall-clock delta be attributed to the stage.
			tr := obs.NewTracer()
			srv, err := serve.New(sys.Detector, sys.Regressor, serve.Config{
				Workers:    cfg.Workers,
				QueueDepth: cfg.QueueDepth,
				BatchCap:   cap,
				Resilient:  adascale.DefaultResilientConfig(),
				Tracer:     tr,
			})
			if err != nil {
				return nil, err
			}
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			rep := srv.Run(load)
			wallNS := float64(time.Since(start).Nanoseconds())
			runtime.ReadMemStats(&ms1)

			outputs := rep.Served()
			snap := stripBatchKeys(rep.Metrics.Snapshot())
			if ci == 0 {
				baseOut, baseSnap = outputs, snap
			} else if err := sameServed(baseOut, outputs); err != nil {
				return nil, fmt.Errorf("experiments: batching cap %d diverges from cap %d at %d streams: %w",
					cap, cfg.Caps[0], streams, err)
			} else if snap != baseSnap {
				return nil, fmt.Errorf("experiments: batching cap %d snapshot diverges from cap %d at %d streams:\n--- cap %d ---\n%s\n--- cap %d ---\n%s",
					cap, cfg.Caps[0], streams, cfg.Caps[0], baseSnap, cap, snap)
			}

			served := len(outputs)
			if served == 0 {
				return nil, fmt.Errorf("experiments: batching served no frames at %d streams, cap %d", streams, cap)
			}
			row := BatchingRow{
				Streams:        streams,
				Cap:            cap,
				NsPerFrame:     wallNS / float64(served),
				AllocsPerFrame: float64(ms1.Mallocs-ms0.Mallocs) / float64(served),
				Occupancy:      1,
			}
			bd := tr.Breakdown()
			total := 0.0
			for _, ms := range bd {
				total += ms
			}
			if total > 0 {
				row.DetectNsPerFrame = row.NsPerFrame * bd[obs.StageDetect] / total
			}
			if occ := rep.Metrics.Gauge("batch/occupancy"); occ > 0 {
				row.Occupancy = occ
			}
			if b.Trace != nil {
				// Feed the cell spans to the bundle tracer so report mode
				// apportions this experiment's ns/op across stages too.
				b.Trace.Add(tr.Spans())
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// stripBatchKeys drops the batch/* metric lines — the only keys batching
// may add — from a snapshot ("<kind> <name> <value...>" per line).
func stripBatchKeys(snap string) string {
	var kept []string
	for _, line := range strings.Split(snap, "\n") {
		if f := strings.Fields(line); len(f) >= 2 && strings.HasPrefix(f[1], "batch/") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// sameServed reports the first difference between two served-output
// sequences: count, scale, health accounting or the detections themselves.
func sameServed(a, b []adascale.FrameOutput) error {
	if len(a) != len(b) {
		return fmt.Errorf("served %d vs %d frames", len(a), len(b))
	}
	for i := range a {
		if a[i].Scale != b[i].Scale || a[i].Health != b[i].Health ||
			!reflect.DeepEqual(a[i].Detections, b[i].Detections) {
			return fmt.Errorf("output %d differs", i)
		}
	}
	return nil
}

// Metrics flattens the grid into report metrics: per-cell ns/frame,
// allocs/frame, detect-stage ns/frame and batch occupancy (all wall-clock
// throughput numbers, unguarded), plus the detect-stage improvement of the
// largest cap over the cap baseline per stream count.
func (r *BatchingResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	base := map[int]BatchingRow{}
	last := map[int]BatchingRow{}
	for _, row := range r.Rows {
		key := fmt.Sprintf("s%d_b%d", row.Streams, row.Cap)
		m["ns_frame/"+key] = row.NsPerFrame
		m["allocs_frame/"+key] = row.AllocsPerFrame
		m["detect_ns_frame/"+key] = row.DetectNsPerFrame
		m["occupancy/"+key] = row.Occupancy
		if _, ok := base[row.Streams]; !ok {
			base[row.Streams] = row
		}
		last[row.Streams] = row
	}
	for streams, b := range base {
		if l := last[streams]; b.DetectNsPerFrame > 0 && l.Cap != b.Cap {
			m[fmt.Sprintf("detect_improvement_pct/s%d", streams)] =
				100 * (1 - l.DetectNsPerFrame/b.DetectNsPerFrame)
		}
	}
	return m
}

// Print writes the batching grid in paper-table style.
func (r *BatchingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Batching (%s): %d workers, %.0f fps/stream, %d frames/stream — identical outputs at every cap (verified)\n",
		r.Dataset, r.Cfg.Workers, r.Cfg.FPS, r.Cfg.FramesPerStream)
	header := fmt.Sprintf("%-8s %5s %12s %14s %14s %10s",
		"streams", "cap", "ns/frame", "detect ns/fr", "allocs/frame", "occupancy")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %5d %12.0f %14.0f %14.1f %10.2f\n",
			row.Streams, row.Cap, row.NsPerFrame, row.DetectNsPerFrame,
			row.AllocsPerFrame, row.Occupancy)
	}
	fmt.Fprintln(w)
}
