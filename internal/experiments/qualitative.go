package experiments

import (
	"fmt"
	"io"
	"sort"

	"adascale/internal/scaleopt"
	"adascale/internal/synth"
)

// QualitativeExample is one validation frame where the optimal-scale
// metric prefers a down-sampled image — the paper's Fig. 1 / Fig. 8
// motivating evidence, rendered as text.
type QualitativeExample struct {
	SnippetID, FrameIndex int
	OptimalScale          int
	Loss600, LossOpt      float64
	Detections600         int
	FPs600, FPsOpt        int
}

// QualitativeResult lists frames whose optimal scale is below 600.
type QualitativeResult struct {
	Examples []QualitativeExample
	// Fraction of validation frames whose metric-optimal scale is < 600 —
	// the headline motivation: down-sampling often *helps*.
	DownscaleFraction float64
}

// Qualitative scans the validation split with the Sec. 3.1 metric and the
// SS detector (matching Fig. 1, which uses the scale-600-trained model).
func (b *Bundle) Qualitative(maxExamples int) *QualitativeResult {
	res := &QualitativeResult{}
	frames := synth.Frames(b.DS.Val)
	scales := []int{600, 480, 360, 240}
	down := 0
	for _, f := range frames {
		best, evals := scaleopt.OptimalScale(b.SS, f, scales, scaleopt.DefaultLambda)
		if best >= 600 {
			continue
		}
		down++
		if len(res.Examples) >= maxExamples {
			continue
		}
		var l600, lOpt float64
		for _, e := range evals {
			if e.Scale == 600 {
				l600 = e.Loss
			}
			if e.Scale == best {
				lOpt = e.Loss
			}
		}
		r600 := b.SS.Detect(f, 600)
		rOpt := b.SS.Detect(f, best)
		fp600, fpOpt := 0, 0
		for _, d := range r600.Detections {
			if d.GTIndex < 0 {
				fp600++
			}
		}
		for _, d := range rOpt.Detections {
			if d.GTIndex < 0 {
				fpOpt++
			}
		}
		res.Examples = append(res.Examples, QualitativeExample{
			SnippetID: f.SnippetID, FrameIndex: f.Index,
			OptimalScale: best,
			Loss600:      l600, LossOpt: lOpt,
			Detections600: len(r600.Detections),
			FPs600:        fp600, FPsOpt: fpOpt,
		})
	}
	res.DownscaleFraction = float64(down) / float64(len(frames))
	sort.Slice(res.Examples, func(i, j int) bool {
		return res.Examples[i].Loss600-res.Examples[i].LossOpt > res.Examples[j].Loss600-res.Examples[j].LossOpt
	})
	return res
}

// Print writes the examples.
func (q *QualitativeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig 1/8 (qualitative): %.0f%% of validation frames have a metric-optimal scale below 600\n",
		q.DownscaleFraction*100)
	for _, e := range q.Examples {
		fmt.Fprintf(w, "  snippet %d frame %d: optimal scale %d (loss %.3f vs %.3f at 600), FPs %d -> %d\n",
			e.SnippetID, e.FrameIndex, e.OptimalScale, e.LossOpt, e.Loss600, e.FPs600, e.FPsOpt)
	}
	fmt.Fprintln(w)
}
