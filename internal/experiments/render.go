package experiments

import (
	"io"
	"strings"
)

// Printer is any experiment result that renders the paper-style report.
// Every table and figure result in this package implements it, which is
// what lets the golden-trace conformance suite (internal/regress) pin each
// report's exact bytes and the bench command drive them uniformly.
type Printer interface {
	Print(io.Writer)
}

// Render returns a result's printed report as a string — the stable
// serialization the golden files commit. Print methods write only values
// derived from the deterministic pipeline (no timestamps, no map-order
// iteration), so for a fixed bundle the rendering is byte-identical across
// runs, machines and worker counts.
func Render(p Printer) string {
	var b strings.Builder
	p.Print(&b)
	return b.String()
}
