package experiments

import (
	"fmt"
	"io"

	"adascale/internal/eval"
)

// Fig5VIDCategories are the six categories the paper plots in Fig. 5:
// three most-improved, one on-par, two most-degraded.
var Fig5VIDCategories = []string{"lion", "squirrel", "horse", "airplane", "red panda", "bear"}

// Fig5Result holds precision-recall curves per selected category per
// method.
type Fig5Result struct {
	Categories []string
	Methods    []string
	// Curves[catIdx][methodIdx] is the PR curve.
	Curves [][][]eval.PRPoint
	// AP[catIdx][methodIdx] is the per-category AP.
	AP [][]float64
}

// Fig5 evaluates the five standard methods and extracts PR curves for the
// paper's six focus categories (categories missing from the dataset are
// skipped, so the same code serves the YTBB-like bundle).
func (b *Bundle) Fig5() *Fig5Result {
	rows := b.StandardMethods()
	res := &Fig5Result{}
	for _, r := range rows {
		res.Methods = append(res.Methods, r.Name)
	}
	for _, cat := range Fig5VIDCategories {
		ci := b.classIndex(cat)
		if ci < 0 {
			continue
		}
		res.Categories = append(res.Categories, cat)
		var curves [][]eval.PRPoint
		var aps []float64
		for i := range rows {
			curves = append(curves, rows[i].Result().CurveAt(ci))
			aps = append(aps, rows[i].PerClassAP[ci])
		}
		res.Curves = append(res.Curves, curves)
		res.AP = append(res.AP, aps)
	}
	return res
}

// Print writes per-category AP and a coarse sampling of each PR curve as
// CSV-style series (recall, precision pairs at recall deciles).
func (f *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 5: precision-recall curves for selected categories")
	for ci, cat := range f.Categories {
		fmt.Fprintf(w, "category %q  AP:", cat)
		for mi, m := range f.Methods {
			fmt.Fprintf(w, "  %s=%.3f", m, f.AP[ci][mi])
		}
		fmt.Fprintln(w)
		for mi, m := range f.Methods {
			fmt.Fprintf(w, "  %-12s precision@recall:", m)
			curve := f.Curves[ci][mi]
			for _, target := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
				fmt.Fprintf(w, " %.2f:%.2f", target, precisionAt(curve, target))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "(paper: MS/AdaScale tracks MS/MS closely and dominates MS/Random on every category)")
	fmt.Fprintln(w)
}

// precisionAt reads the interpolated precision at a recall level (0 when
// the curve never reaches it).
func precisionAt(curve []eval.PRPoint, recall float64) float64 {
	best := 0.0
	for _, p := range curve {
		if p.Recall >= recall && p.Precision > best {
			best = p.Precision
		}
	}
	return best
}
