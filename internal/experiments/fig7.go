package experiments

import (
	"fmt"
	"io"

	"adascale/internal/adascale"
	"adascale/internal/detect"
	"adascale/internal/dff"
	"adascale/internal/seqnms"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// ParetoPoint is one system on the Fig. 7 speed/accuracy plane.
type ParetoPoint struct {
	Name      string
	MAP       float64
	RuntimeMS float64
	FPS       float64
}

// Fig7Result is the paper's comparison with prior video-acceleration work:
// R-FCN, DFF and Seq-NMS, each with and without AdaScale.
type Fig7Result struct {
	Points []ParetoPoint
}

// Fig7 evaluates the six Pareto points of the paper's Fig. 7.
func (b *Bundle) Fig7() *Fig7Result {
	sys := b.DefaultSystem()
	dffCfg := dff.DefaultConfig()

	methods := []struct {
		name    string
		factory adascale.RunnerFactory
	}{
		{name: "R-FCN", factory: adascale.FixedRunner(b.SS, 600)},
		{name: "R-FCN+AdaScale", factory: adascale.AdaScaleRunner(sys.Detector, sys.Regressor)},
		{name: "DFF", factory: dff.Runner(sys.Detector, 600, dffCfg)},
		{name: "DFF+AdaScale", factory: dff.AdaptiveRunner(sys.Detector, sys.Regressor, dffCfg)},
		{name: "SeqNMS", factory: withSeqNMS(adascale.FixedRunner(b.SS, 600))},
		{name: "SeqNMS+AdaScale", factory: withSeqNMS(adascale.AdaScaleRunner(sys.Detector, sys.Regressor))},
	}

	res := &Fig7Result{}
	for _, m := range methods {
		row := b.evaluateMethod(m.name, m.factory)
		res.Points = append(res.Points, ParetoPoint{
			Name:      m.name,
			MAP:       row.MAP,
			RuntimeMS: row.RuntimeMS,
			FPS:       simclock.FPS(row.RuntimeMS),
		})
	}
	return res
}

// withSeqNMS composes Seq-NMS post-processing onto a base runner factory.
// Seq-NMS itself touches no shared state, so wrapping preserves the base
// factory's per-worker isolation.
func withSeqNMS(base adascale.RunnerFactory) adascale.RunnerFactory {
	return func() adascale.SnippetRunner {
		run := base()
		return func(sn *synth.Snippet) []adascale.FrameOutput {
			return applySeqNMS(run(sn))
		}
	}
}

// applySeqNMS reruns Seq-NMS over one snippet's outputs and charges its
// amortised per-frame post-processing cost.
func applySeqNMS(outputs []adascale.FrameOutput) []adascale.FrameOutput {
	frames := make([][]detect.Detection, len(outputs))
	for i, o := range outputs {
		frames[i] = o.Detections
	}
	rescored := seqnms.Apply(frames, seqnms.Options{})
	out := make([]adascale.FrameOutput, len(outputs))
	copy(out, outputs)
	for i := range out {
		out[i].Detections = rescored[i]
		// Charged to the dedicated SeqNMSMS field (not OverheadMS) so the
		// tracer attributes it as the seqnms stage; TotalMS is unchanged.
		out[i].SeqNMSMS += simclock.SeqNMSPerFrameMS
	}
	return out
}

// Print writes the Pareto points.
func (f *Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 7: mAP and speed comparison with prior work")
	header := fmt.Sprintf("%-18s %8s %12s %8s", "system", "mAP", "runtime(ms)", "FPS")
	fmt.Fprintln(w, header)
	printRuler(w, len(header))
	for _, p := range f.Points {
		fmt.Fprintf(w, "%-18s %8.1f %12.1f %8.1f\n", p.Name, p.MAP*100, p.RuntimeMS, p.FPS)
	}
	speedup := func(a, b string) float64 {
		var fa, fb float64
		for _, p := range f.Points {
			if p.Name == a {
				fa = p.FPS
			}
			if p.Name == b {
				fb = p.FPS
			}
		}
		if fb == 0 {
			return 0
		}
		return fa / fb
	}
	fmt.Fprintf(w, "AdaScale extra speedup: DFF %.2fx (paper 1.25x), SeqNMS %.2fx (paper 1.61x)\n\n",
		speedup("DFF+AdaScale", "DFF"), speedup("SeqNMS+AdaScale", "SeqNMS"))
}
