package flow

import (
	"math"
	"testing"

	"adascale/internal/raster"
)

// TestEstimateRejectsMalformedPairs: nil or size-mismatched frames must
// error, not panic — the DFF runner degrades on these instead of dying.
func TestEstimateRejectsMalformedPairs(t *testing.T) {
	im := raster.New(8, 8)
	other := raster.New(8, 6)
	cases := []struct {
		name      string
		prev, cur *raster.Image
	}{
		{"nil prev", nil, im},
		{"nil cur", im, nil},
		{"both nil", nil, nil},
		{"height mismatch", im, other},
		{"width mismatch", raster.New(6, 8), im},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if f, err := Estimate(tc.prev, tc.cur, 4, 1); err == nil {
				t.Fatalf("Estimate accepted malformed pair, returned %+v", f)
			}
		})
	}
}

// TestEstimateDegenerateGeometry: a 1×1 frame, a block larger than the
// frame, and a sub-minimum block size must all produce a well-formed field
// (single cell, zero motion for identical frames) rather than dividing by
// zero or indexing out of range.
func TestEstimateDegenerateGeometry(t *testing.T) {
	cases := []struct {
		name          string
		w, h          int
		block, radius int
		wantCols      int
		wantRows      int
	}{
		{"1x1 frame", 1, 1, 4, 1, 1, 1},
		{"block larger than frame", 4, 4, 16, 1, 1, 1},
		{"block below minimum", 6, 6, 1, 1, 3, 3}, // block clamps to 2
		{"single row", 9, 1, 3, 2, 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			im := raster.New(tc.w, tc.h)
			im.Fill(0.25)
			f, err := Estimate(im, im, tc.block, tc.radius)
			if err != nil {
				t.Fatal(err)
			}
			if f.Cols != tc.wantCols || f.Rows != tc.wantRows {
				t.Fatalf("grid %dx%d, want %dx%d", f.Cols, f.Rows, tc.wantCols, tc.wantRows)
			}
			if n := f.Cols * f.Rows; len(f.U) != n || len(f.V) != n || len(f.Residual) != n {
				t.Fatalf("field slices sized %d/%d/%d, want %d", len(f.U), len(f.V), len(f.Residual), n)
			}
			// Identical frames: zero motion everywhere (ties prefer the
			// smaller displacement), zero residual.
			for i := range f.U {
				if f.U[i] != 0 || f.V[i] != 0 {
					t.Fatalf("cell %d reports motion (%v, %v) between identical frames", i, f.U[i], f.V[i])
				}
				if f.Residual[i] != 0 {
					t.Fatalf("cell %d residual %v between identical frames", i, f.Residual[i])
				}
			}
			if got := f.MeanMagnitude(); got != 0 {
				t.Fatalf("MeanMagnitude = %v, want 0", got)
			}
		})
	}
}

// TestFieldAtBorderCells pins exactly which cell each out-of-range pixel
// query clamps to (flow_test.go checks non-panicking; this checks values).
func TestFieldAtBorderCells(t *testing.T) {
	f := &Field{Cols: 2, Rows: 2, Block: 4,
		U: []float32{1, 2, 3, 4}, V: []float32{10, 20, 30, 40},
		Residual: make([]float32, 4)}
	cases := []struct {
		name  string
		x, y  int
		wantU float32
	}{
		{"inside first cell", 0, 0, 1},
		{"negative coords", -100, -100, 1},
		{"past right edge", 1000, 0, 2},
		{"past bottom edge", 0, 1000, 3},
		{"past both edges", 1000, 1000, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u, v := f.At(tc.x, tc.y)
			if u != tc.wantU || v != tc.wantU*10 {
				t.Fatalf("At(%d, %d) = (%v, %v), want (%v, %v)", tc.x, tc.y, u, v, tc.wantU, tc.wantU*10)
			}
		})
	}
}

// TestEmptyFieldStats: the zero-cell field (never produced by Estimate, but
// reachable through manual construction) must not divide by zero.
func TestEmptyFieldStats(t *testing.T) {
	f := &Field{Block: 4}
	if got := f.MeanMagnitude(); got != 0 {
		t.Fatalf("MeanMagnitude on empty field = %v", got)
	}
	if got := f.MeanResidual(); got != 0 {
		t.Fatalf("MeanResidual on empty field = %v", got)
	}
	if math.IsNaN(f.MeanMagnitude()) || math.IsNaN(f.MeanResidual()) {
		t.Fatal("empty field stats produced NaN")
	}
}
