// Package flow implements block-matching optical flow between grayscale
// frames. Deep Feature Flow (Zhu et al., 2017b) uses a small flow network
// (FlowNet) to propagate deep features from key frames; this package is the
// classical equivalent — sum-of-absolute-differences block search — which
// provides the same interface a learned flow would: a dense-ish motion
// field that can warp boxes and report its own reliability.
package flow

import (
	"fmt"
	"math"

	"adascale/internal/detect"
	"adascale/internal/raster"
)

// Field is a coarse optical-flow field: one (u, v) displacement per
// Block×Block cell of the image the flow was estimated on.
type Field struct {
	// Cols, Rows are the grid dimensions; Block the cell size in pixels.
	Cols, Rows, Block int

	// U, V hold per-cell displacement in pixels (row-major), prev → cur.
	U, V []float32

	// Residual holds the per-cell matched SAD per pixel — a flow-quality
	// signal (high residual = unreliable motion, e.g. occlusion).
	Residual []float32
}

// Estimate computes block-matching flow from prev to cur. Both images must
// have identical dimensions. block is the cell size, radius the maximum
// displacement searched (both in pixels). A malformed frame pair (nil or
// mismatched sizes) returns an error rather than panicking, so one bad
// frame cannot kill a whole evaluation — callers degrade instead (the DFF
// runner propagates unwarped detections).
func Estimate(prev, cur *raster.Image, block, radius int) (*Field, error) {
	if prev == nil || cur == nil {
		return nil, fmt.Errorf("flow: nil frame (prev=%v cur=%v)", prev != nil, cur != nil)
	}
	if prev.W != cur.W || prev.H != cur.H {
		return nil, fmt.Errorf("flow: frame sizes differ (%dx%d vs %dx%d)", prev.W, prev.H, cur.W, cur.H)
	}
	if block < 2 {
		block = 2
	}
	cols := (prev.W + block - 1) / block
	rows := (prev.H + block - 1) / block
	f := &Field{
		Cols: cols, Rows: rows, Block: block,
		U: make([]float32, cols*rows), V: make([]float32, cols*rows),
		Residual: make([]float32, cols*rows),
	}
	for by := 0; by < rows; by++ {
		for bx := 0; bx < cols; bx++ {
			x0, y0 := bx*block, by*block
			bestDX, bestDY, bestSAD := 0, 0, math.Inf(1)
			// Spiral-free full search: fine for the small radii used here.
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					sad := blockSAD(prev, cur, x0, y0, dx, dy, block, bestSAD)
					// Prefer the smaller displacement on ties so static
					// regions report zero motion.
					if sad < bestSAD-1e-9 ||
						(sad < bestSAD+1e-9 && dx*dx+dy*dy < bestDX*bestDX+bestDY*bestDY) {
						bestSAD, bestDX, bestDY = sad, dx, dy
					}
				}
			}
			// Sub-pixel refinement: fit a parabola through the SAD values
			// around the integer optimum on each axis. Without it, the
			// quantisation error of ±0.5 px per estimation accumulates into
			// significant drift when propagating boxes over many frames.
			du := subpixel(
				blockSAD(prev, cur, x0, y0, bestDX-1, bestDY, block, math.Inf(1)),
				bestSAD,
				blockSAD(prev, cur, x0, y0, bestDX+1, bestDY, block, math.Inf(1)),
			)
			dv := subpixel(
				blockSAD(prev, cur, x0, y0, bestDX, bestDY-1, block, math.Inf(1)),
				bestSAD,
				blockSAD(prev, cur, x0, y0, bestDX, bestDY+1, block, math.Inf(1)),
			)
			i := by*cols + bx
			f.U[i] = float32(float64(bestDX) + du)
			f.V[i] = float32(float64(bestDY) + dv)
			f.Residual[i] = float32(bestSAD / float64(block*block))
		}
	}
	return f, nil
}

// blockSAD computes the sum of absolute differences between the block at
// (x0,y0) in prev and the block displaced by (dx,dy) in cur. Out-of-bounds
// pixels are compared against 0.5 (mid-gray), penalising displacements off
// the frame. Aborts early once the running sum exceeds limit.
func blockSAD(prev, cur *raster.Image, x0, y0, dx, dy, block int, limit float64) float64 {
	var sad float64
	for y := y0; y < y0+block; y++ {
		for x := x0; x < x0+block; x++ {
			var a, b float32
			if x < prev.W && y < prev.H {
				a = prev.Pix[y*prev.W+x]
			} else {
				continue // block hangs off the frame edge; skip those pixels
			}
			cx, cy := x+dx, y+dy
			if cx >= 0 && cx < cur.W && cy >= 0 && cy < cur.H {
				b = cur.Pix[cy*cur.W+cx]
			} else {
				b = 0.5
			}
			d := float64(a - b)
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad > limit {
			return math.Inf(1)
		}
	}
	return sad
}

// subpixel returns the parabolic-interpolated offset of the minimum given
// the cost at -1, 0, +1; clamped to [-0.5, 0.5]. Degenerate (flat or
// non-finite) neighbourhoods return 0.
func subpixel(l, c, r float64) float64 {
	if math.IsInf(l, 1) || math.IsInf(r, 1) {
		return 0
	}
	if c <= 1e-9 {
		return 0 // exact match at the integer optimum
	}
	den := l - 2*c + r
	if den <= 1e-12 {
		return 0
	}
	d := 0.5 * (l - r) / den
	if d > 0.5 {
		d = 0.5
	}
	if d < -0.5 {
		d = -0.5
	}
	return d
}

// At returns the flow at pixel (x, y) of the estimation image.
func (f *Field) At(x, y int) (u, v float32) {
	bx, by := x/f.Block, y/f.Block
	if bx < 0 {
		bx = 0
	}
	if by < 0 {
		by = 0
	}
	if bx >= f.Cols {
		bx = f.Cols - 1
	}
	if by >= f.Rows {
		by = f.Rows - 1
	}
	i := by*f.Cols + bx
	return f.U[i], f.V[i]
}

// MeanMagnitude returns the average displacement magnitude over all cells.
func (f *Field) MeanMagnitude() float64 {
	if len(f.U) == 0 {
		return 0
	}
	var s float64
	for i := range f.U {
		s += math.Hypot(float64(f.U[i]), float64(f.V[i]))
	}
	return s / float64(len(f.U))
}

// MeanResidual returns the average per-pixel matching residual — the flow
// quality metric DFF-style systems use to decide how trustworthy
// propagation is.
func (f *Field) MeanResidual() float64 {
	if len(f.Residual) == 0 {
		return 0
	}
	var s float64
	for _, r := range f.Residual {
		s += float64(r)
	}
	return s / float64(len(f.Residual))
}

// WarpBox translates a box (given in the estimation image's coordinates) by
// the mean flow over the cells it covers and returns the result.
func (f *Field) WarpBox(b detect.Box) detect.Box {
	bx0 := int(b.X1) / f.Block
	by0 := int(b.Y1) / f.Block
	bx1 := int(b.X2) / f.Block
	by1 := int(b.Y2) / f.Block
	var du, dv float64
	n := 0
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			if bx < 0 || bx >= f.Cols || by < 0 || by >= f.Rows {
				continue
			}
			du += float64(f.U[by*f.Cols+bx])
			dv += float64(f.V[by*f.Cols+bx])
			n++
		}
	}
	if n == 0 {
		return b
	}
	return b.Shifted(du/float64(n), dv/float64(n))
}
