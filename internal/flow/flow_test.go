package flow

import (
	"math"
	"math/rand"
	"testing"

	"adascale/internal/detect"
	"adascale/internal/raster"
)

// texturedImage builds a random-texture image so block matching has
// structure to lock onto.
func texturedImage(rng *rand.Rand, w, h int) *raster.Image {
	im := raster.New(w, h)
	for i := range im.Pix {
		im.Pix[i] = rng.Float32()
	}
	return im.BoxBlur(1) // correlate neighbours slightly
}

// shifted returns a copy of im translated by (dx, dy), filling new pixels
// with mid-gray.
func shifted(im *raster.Image, dx, dy int) *raster.Image {
	out := raster.New(im.W, im.H)
	out.Fill(0.5)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sx, sy := x-dx, y-dy
			if sx >= 0 && sx < im.W && sy >= 0 && sy < im.H {
				out.Pix[y*im.W+x] = im.Pix[sy*im.W+sx]
			}
		}
	}
	return out
}

// mustEstimate is the test-side wrapper over Estimate for well-formed
// inputs.
func mustEstimate(t *testing.T, prev, cur *raster.Image, block, radius int) *Field {
	t.Helper()
	f, err := Estimate(prev, cur, block, radius)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestZeroFlowOnIdenticalFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := texturedImage(rng, 48, 32)
	f := mustEstimate(t, im, im, 8, 4)
	if f.MeanMagnitude() != 0 {
		t.Fatalf("identical frames must give zero flow, got %v", f.MeanMagnitude())
	}
	if f.MeanResidual() != 0 {
		t.Fatalf("identical frames must match perfectly, residual %v", f.MeanResidual())
	}
}

func TestRecoversGlobalTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := texturedImage(rng, 64, 48)
	for _, shift := range [][2]int{{3, 0}, {0, -2}, {2, 2}, {-3, 1}} {
		cur := shifted(im, shift[0], shift[1])
		f := mustEstimate(t, im, cur, 8, 4)
		// Interior blocks (away from borders where fill dominates) must
		// recover the exact displacement.
		okCount, total := 0, 0
		for by := 1; by < f.Rows-1; by++ {
			for bx := 1; bx < f.Cols-1; bx++ {
				i := by*f.Cols + bx
				total++
				if int(f.U[i]) == shift[0] && int(f.V[i]) == shift[1] {
					okCount++
				}
			}
		}
		if float64(okCount) < 0.8*float64(total) {
			t.Fatalf("shift %v: only %d/%d interior blocks recovered", shift, okCount, total)
		}
	}
}

func TestFieldAtClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	im := texturedImage(rng, 32, 32)
	f := mustEstimate(t, im, shifted(im, 1, 0), 8, 2)
	// Out-of-range lookups clamp to border cells rather than panicking.
	u1, v1 := f.At(-5, -5)
	u2, v2 := f.At(0, 0)
	if u1 != u2 || v1 != v2 {
		t.Fatal("negative lookup must clamp to cell (0,0)")
	}
	f.At(1000, 1000) // must not panic
}

func TestWarpBoxFollowsMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	im := texturedImage(rng, 64, 64)
	cur := shifted(im, 3, 2)
	f := mustEstimate(t, im, cur, 8, 4)
	b := detect.Box{X1: 16, Y1: 16, X2: 40, Y2: 40}
	w := f.WarpBox(b)
	if math.Abs(w.X1-b.X1-3) > 1.5 || math.Abs(w.Y1-b.Y1-2) > 1.5 {
		t.Fatalf("warped box %v does not follow the (3,2) motion from %v", w, b)
	}
	// A box fully outside the field is returned unchanged.
	out := detect.Box{X1: -100, Y1: -100, X2: -90, Y2: -90}
	if f.WarpBox(out) != out {
		t.Fatal("out-of-field box must be unchanged")
	}
}

func TestResidualSignalsUnreliableFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prev := texturedImage(rng, 48, 48)
	// Completely unrelated next frame: no displacement explains it.
	unrelated := texturedImage(rand.New(rand.NewSource(99)), 48, 48)
	translated := shifted(prev, 2, 0)
	fBad := mustEstimate(t, prev, unrelated, 8, 3)
	fGood := mustEstimate(t, prev, translated, 8, 3)
	if fBad.MeanResidual() <= fGood.MeanResidual() {
		t.Fatalf("unrelated frames should have higher residual: %v vs %v",
			fBad.MeanResidual(), fGood.MeanResidual())
	}
}

// TestMalformedFramesReturnError pins the hardened contract: a malformed
// frame pair is an error, never a panic, so one bad frame cannot kill a
// whole evaluation.
func TestMalformedFramesReturnError(t *testing.T) {
	if _, err := Estimate(raster.New(10, 10), raster.New(20, 10), 4, 2); err == nil {
		t.Fatal("mismatched sizes must return an error")
	}
	if _, err := Estimate(nil, raster.New(10, 10), 4, 2); err == nil {
		t.Fatal("nil prev must return an error")
	}
	if _, err := Estimate(raster.New(10, 10), nil, 4, 2); err == nil {
		t.Fatal("nil cur must return an error")
	}
}

func TestSmallBlockClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	im := texturedImage(rng, 16, 16)
	f := mustEstimate(t, im, im, 1, 1) // block clamps to 2
	if f.Block != 2 {
		t.Fatalf("block = %d, want clamp to 2", f.Block)
	}
}
