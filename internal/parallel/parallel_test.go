package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestSetWorkersOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative override must reset to GOMAXPROCS, got %d", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got := MapN(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestZeroItems(t *testing.T) {
	if got := MapN(4, 0, func(i int) int { t.Error("task ran"); return 0 }); len(got) != 0 {
		t.Fatalf("Map over 0 items returned %d results", len(got))
	}
	if err := ForEachN(4, 0, func(int) { t.Error("task ran") }); err != nil {
		t.Fatalf("ForEach over 0 items: %v", err)
	}
	if got := MapWorkersN(4, 0, func() int { t.Error("newWorker ran"); return 0 },
		func(int, int) int { return 0 }); len(got) != 0 {
		t.Fatalf("MapWorkers over 0 items returned %d results", len(got))
	}
}

func TestMoreWorkersThanItems(t *testing.T) {
	var calls atomic.Int64
	got := MapN(64, 3, func(i int) int {
		calls.Add(1)
		return i + 1
	})
	if calls.Load() != 3 {
		t.Fatalf("ran %d tasks, want 3", calls.Load())
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestPanicSurfacesAsErrorNotDeadlock(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- ForEachN(4, 100, func(i int) {
			if i == 13 {
				panic("boom")
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("panicking task must surface as an error")
		}
		pe, ok := err.(*PanicError)
		if !ok {
			t.Fatalf("error type %T, want *PanicError", err)
		}
		if pe.Value != "boom" {
			t.Fatalf("panic value %v, want boom", pe.Value)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pool deadlocked on a panicking task")
	}
}

func TestPanicSerialPathAlsoErrors(t *testing.T) {
	err := ForEachN(1, 5, func(i int) {
		if i == 2 {
			panic("serial boom")
		}
	})
	if err == nil {
		t.Fatal("serial path must also convert panics to errors")
	}
}

func TestMapRepanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Map must re-raise task panics")
		}
		if _, ok := r.(*PanicError); !ok {
			t.Fatalf("repanic type %T, want *PanicError", r)
		}
	}()
	MapN(4, 10, func(i int) int {
		if i == 5 {
			panic("map boom")
		}
		return i
	})
}

func TestMapWorkersPerWorkerState(t *testing.T) {
	var created atomic.Int64
	type state struct{ id int64 }
	got := MapWorkersN(4, 200, func() *state {
		return &state{id: created.Add(1)}
	}, func(s *state, i int) int64 {
		if s == nil {
			t.Error("nil worker state")
		}
		return s.id
	})
	n := created.Load()
	if n < 1 || n > 4 {
		t.Fatalf("created %d worker states, want 1..4", n)
	}
	// Every result must come from one of the created states.
	for i, v := range got {
		if v < 1 || v > n {
			t.Fatalf("got[%d] = %d, outside state ids 1..%d", i, v, n)
		}
	}
}

func TestForEachCompletesAllItems(t *testing.T) {
	seen := make([]atomic.Bool, 500)
	if err := ForEachN(8, len(seen), func(i int) { seen[i].Store(true) }); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("item %d never ran", i)
		}
	}
}

func TestMapWorkersPartialRecoversPerItem(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		out, errs := MapWorkersPartialN(workers, 20,
			func() int { return 7 },
			func(s, i int) int {
				if i%5 == 3 {
					panic("poisoned item")
				}
				return s * i
			})
		if len(errs) != 4 {
			t.Fatalf("workers=%d: %d errors, want 4: %v", workers, len(errs), errs)
		}
		for k, e := range errs {
			if e.Index != 5*k+3 {
				t.Fatalf("workers=%d: errs[%d].Index = %d, want %d (sorted)", workers, k, e.Index, 5*k+3)
			}
			var pe *PanicError
			if !errorsAs(e.Err, &pe) {
				t.Fatalf("workers=%d: error not a *PanicError: %v", workers, e.Err)
			}
		}
		for i, v := range out {
			want := 7 * i
			if i%5 == 3 {
				want = 0 // zero-value placeholder for the failed item
			}
			if v != want {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

// errorsAs is a tiny local stand-in so the test file keeps its import list.
func errorsAs(err error, target **PanicError) bool {
	pe, ok := err.(*PanicError)
	if ok {
		*target = pe
	}
	return ok
}

func TestMapWorkersPartialRebuildsStateAfterPanic(t *testing.T) {
	var built atomic.Int64
	out, errs := MapWorkersPartialN(1, 5,
		func() int64 { return built.Add(1) },
		func(s int64, i int) int64 {
			if i == 1 {
				panic("corrupt the worker")
			}
			return s
		})
	if len(errs) != 1 || errs[0].Index != 1 {
		t.Fatalf("errs = %v, want exactly item 1", errs)
	}
	// Items 0..1 ran on state #1; after the recovered panic the worker must
	// rebuild, so items 2..4 run on state #2.
	if built.Load() != 2 {
		t.Fatalf("newWorker called %d times, want 2 (rebuild after panic)", built.Load())
	}
	want := []int64{1, 0, 2, 2, 2}
	for i, v := range out {
		if v != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestMapWorkersPartialCleanRunMatchesMapWorkers(t *testing.T) {
	ref := MapWorkersN(3, 50, func() int { return 1 }, func(s, i int) int { return s + i })
	got, errs := MapWorkersPartialN(3, 50, func() int { return 1 }, func(s, i int) int { return s + i })
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("partial diverged from MapWorkers at %d: %d vs %d", i, got[i], ref[i])
		}
	}
}

// --- Pool: the persistent serving-shape pool ---

// TestPoolRunsJobsWithPerWorkerState: every submitted job runs, on a
// worker state built by newWorker, and Close drains everything.
func TestPoolRunsJobsWithPerWorkerState(t *testing.T) {
	var built atomic.Int64
	p := NewPool(3, func() int { return int(built.Add(1)) })
	var ran atomic.Int64
	var badState atomic.Int64
	for i := 0; i < 50; i++ {
		if !p.Submit(func(s int) {
			if s < 1 || s > 3 {
				badState.Add(1)
			}
			ran.Add(1)
		}) {
			t.Fatal("Submit refused on an open pool")
		}
	}
	p.Close()
	if ran.Load() != 50 {
		t.Fatalf("ran %d jobs, want 50", ran.Load())
	}
	if badState.Load() != 0 {
		t.Fatalf("%d jobs saw a state no newWorker built", badState.Load())
	}
	if built.Load() != 3 {
		t.Fatalf("built %d worker states, want exactly 3", built.Load())
	}
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", p.Workers())
	}
}

// TestPoolZeroJobs: a pool opened and closed without any Submit — the
// serving shape of a server with no admitted streams — must not hang or
// leak.
func TestPoolZeroJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4, func() struct{} { return struct{}{} })
	p.Close()
	assertNoGoroutineLeak(t, before)
}

// TestPoolMoreWorkersThanJobs: worker count far above the number of jobs
// (an over-provisioned server on a quiet stream set) still runs every job
// exactly once and drains cleanly.
func TestPoolMoreWorkersThanJobs(t *testing.T) {
	p := NewPool(16, func() struct{} { return struct{}{} })
	var ran atomic.Int64
	for i := 0; i < 3; i++ {
		p.Submit(func(struct{}) { ran.Add(1) })
	}
	p.Close()
	if ran.Load() != 3 {
		t.Fatalf("ran %d jobs, want 3", ran.Load())
	}
}

// TestPoolPanicRecoveryRebuildsState: a panicking job is counted, the
// worker survives with a freshly built state, and later jobs still run.
func TestPoolPanicRecoveryRebuildsState(t *testing.T) {
	var built atomic.Int64
	p := NewPool(1, func() int { return int(built.Add(1)) })
	done := make(chan int, 2)
	p.Submit(func(int) { panic("poisoned frame") })
	p.Submit(func(s int) { done <- s })
	p.Close()
	if p.Panics() != 1 {
		t.Fatalf("Panics() = %d, want 1", p.Panics())
	}
	if got := <-done; got != 2 {
		t.Fatalf("job after panic saw state %d, want the rebuilt state 2", got)
	}
}

// TestPoolCloseIdempotentAndRefusesLateSubmits: double Close is safe and
// Submit after Close reports false without running the job.
func TestPoolCloseIdempotentAndRefusesLateSubmits(t *testing.T) {
	p := NewPool(2, func() struct{} { return struct{}{} })
	p.Close()
	p.Close()
	if p.Submit(func(struct{}) { t.Error("job ran on a closed pool") }) {
		t.Fatal("Submit on a closed pool must return false")
	}
}

// TestPoolShutdownNoGoroutineLeak is the scheduler-shutdown contract:
// cancelling mid-stream (Close with jobs still flowing from another
// goroutine's perspective) leaves no pool goroutine behind, asserted with
// a NumGoroutine delta.
func TestPoolShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		p := NewPool(8, func() struct{} { return struct{}{} })
		for i := 0; i < 100; i++ {
			p.Submit(func(struct{}) { time.Sleep(50 * time.Microsecond) })
		}
		p.Close() // mid-stream: workers still draining when Close starts
	}
	assertNoGoroutineLeak(t, before)
}

// assertNoGoroutineLeak waits (with retries: exiting goroutines need a
// beat to be reaped) until the goroutine count is back at or below the
// baseline, and fails after a bounded patience.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMapWorkersPartialZeroItemsAndExcessWorkers covers the remaining
// serving shapes on the batch API: zero items (no worker state is built)
// and worker count above item count.
func TestMapWorkersPartialZeroItemsAndExcessWorkers(t *testing.T) {
	out, errs := MapWorkersPartialN(4, 0, func() int { t.Error("newWorker ran"); return 0 },
		func(int, int) int { return 0 })
	if len(out) != 0 || len(errs) != 0 {
		t.Fatalf("zero items: out %d errs %d", len(out), len(errs))
	}
	out, errs = MapWorkersPartialN(32, 3, func() int { return 0 }, func(_, i int) int { return i * i })
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestPoolHookedPanicMidBatch is the serving layer's pool-recovery
// contract at workers 1 and 4: killing a worker mid-batch (a job that
// panics) fires the onPanic hook exactly once per kill, rebuilds the
// worker's state, and every surviving job still delivers its result —
// with per-job result channels drained in submit order, so the batch's
// observable ordering is unchanged by the panic.
func TestPoolHookedPanicMidBatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const jobs = 24
		const killAt = 11 // the mid-batch job that kills its worker

		var hookCalls atomic.Int64
		var hookValue atomic.Value
		var built atomic.Int64
		p := NewPoolHooked(workers, func() int { return int(built.Add(1)) }, func(v any) {
			hookCalls.Add(1)
			hookValue.Store(v)
		})

		results := make([]chan int, jobs)
		for i := 0; i < jobs; i++ {
			i := i
			results[i] = make(chan int, 1)
			p.Submit(func(state int) {
				if i == killAt {
					panic("killed worker mid-batch")
				}
				results[i] <- i
			})
		}
		p.Close()

		// Every surviving job delivered, and draining the per-job channels
		// in submit order yields the submit-order indices: the panic did
		// not reorder or drop any other job's result.
		for i := 0; i < jobs; i++ {
			if i == killAt {
				select {
				case v := <-results[i]:
					t.Fatalf("workers=%d: killed job delivered %d", workers, v)
				default:
				}
				continue
			}
			select {
			case v := <-results[i]:
				if v != i {
					t.Fatalf("workers=%d: slot %d holds result %d", workers, i, v)
				}
			default:
				t.Fatalf("workers=%d: job %d lost its result after the mid-batch kill", workers, i)
			}
		}
		if p.Panics() != 1 {
			t.Fatalf("workers=%d: Panics() = %d, want 1", workers, p.Panics())
		}
		if hookCalls.Load() != 1 {
			t.Fatalf("workers=%d: onPanic fired %d times, want 1", workers, hookCalls.Load())
		}
		if got, _ := hookValue.Load().(string); got != "killed worker mid-batch" {
			t.Fatalf("workers=%d: onPanic saw %v, want the panic value", workers, hookValue.Load())
		}
		// The killed worker rebuilt its state: more states were built than
		// workers exist.
		if built.Load() != int64(workers)+1 {
			t.Fatalf("workers=%d: built %d states, want %d (one rebuild)", workers, built.Load(), workers+1)
		}
	}
}

// TestPoolNilHookStillCounts: NewPoolHooked with a nil hook behaves like
// NewPool — panics counted, no crash dereferencing the hook.
func TestPoolNilHookStillCounts(t *testing.T) {
	p := NewPoolHooked(1, func() struct{} { return struct{}{} }, nil)
	p.Submit(func(struct{}) { panic("boom") })
	done := make(chan struct{}, 1)
	p.Submit(func(struct{}) { done <- struct{}{} })
	p.Close()
	if p.Panics() != 1 {
		t.Fatalf("Panics() = %d, want 1", p.Panics())
	}
	<-done
}
