// Package parallel provides the bounded worker pool underlying every
// concurrent stage of the pipeline: dataset generation, label generation,
// the dataset runner and the tiled matrix kernels. Work items are indexed
// [0, n) and results are collected in index order, so a parallel stage is
// observationally identical to its serial loop whenever the per-item work
// is deterministic — the invariant the determinism tests in
// internal/adascale assert end to end.
//
// The worker count honours GOMAXPROCS by default and can be overridden
// globally with SetWorkers (wired to the -workers flag of the commands) or
// per call with the *N variants. A pool is created per call and never
// outlives it; nested parallel calls are safe, they simply share the CPUs.
package parallel

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// workerOverride holds the global worker-count override; 0 means "use
// GOMAXPROCS".
var workerOverride atomic.Int64

// SetWorkers overrides the number of workers used by Map, MapWorkers and
// ForEach. n <= 0 removes the override, restoring the GOMAXPROCS default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
}

// Workers returns the effective worker count: the SetWorkers override if
// set, otherwise GOMAXPROCS.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a panic recovered from a pool task so it can surface as
// an ordinary error instead of deadlocking or killing the process.
type PanicError struct {
	// Value is the value the task panicked with.
	Value any
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task panicked: %v", e.Value)
}

// run executes task(i) for every i in [0, n) on up to workers goroutines.
// Indices are handed out through an atomic counter, so the pool is bounded
// and work-stealing-free. The first task panic is recovered and returned as
// a *PanicError; remaining workers stop picking up new work, and the pool
// always drains (no deadlock).
func run(workers, n int, task func(int)) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return runSerial(n, task)
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		err     error
		wg      sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		// A recover here catches at most one panic per worker; the worker
		// then exits, which is fine — the other workers keep draining.
		defer func() {
			if r := recover(); r != nil {
				errOnce.Do(func() { err = &PanicError{Value: r} })
				failed.Store(true)
			}
		}()
		for !failed.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			task(i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	return err
}

// runSerial is the single-worker path: no goroutines, same error contract.
func runSerial(n int, task func(int)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	for i := 0; i < n; i++ {
		task(i)
	}
	return nil
}

// ForEach runs fn(i) for every i in [0, n) across Workers() goroutines.
// A panicking task surfaces as a *PanicError.
func ForEach(n int, fn func(int)) error { return ForEachN(Workers(), n, fn) }

// ForEachN is ForEach with an explicit worker count (capped at n).
func ForEachN(workers, n int, fn func(int)) error { return run(workers, n, fn) }

// Map runs fn(i) for every i in [0, n) across Workers() goroutines and
// returns the results in index order. A task panic is re-raised on the
// calling goroutine (wrapped in *PanicError), matching the behaviour of the
// equivalent serial loop closely enough for drop-in use.
func Map[R any](n int, fn func(int) R) []R { return MapN(Workers(), n, fn) }

// MapN is Map with an explicit worker count.
func MapN[R any](workers, n int, fn func(int) R) []R {
	out := make([]R, n)
	if err := run(workers, n, func(i int) { out[i] = fn(i) }); err != nil {
		panic(err)
	}
	return out
}

// MapWorkers runs fn across Workers() goroutines with per-worker state:
// each worker calls newWorker once and passes the value to every task it
// executes. This is how the pipeline gives each worker its own detector /
// regressor clone (the nn layers cache activations and are not safe to
// share). Results are collected in index order; task panics re-raise on the
// calling goroutine.
func MapWorkers[S, R any](n int, newWorker func() S, fn func(S, int) R) []R {
	return MapWorkersN(Workers(), n, newWorker, fn)
}

// ItemError pairs a work-item index with the error its task produced —
// the structured form a recovered per-item panic surfaces as.
type ItemError struct {
	Index int
	Err   error
}

// Error implements the error interface.
func (e ItemError) Error() string {
	return fmt.Sprintf("parallel: item %d: %v", e.Index, e.Err)
}

// MapWorkersPartial is MapWorkers with graceful degradation: a panicking
// task is recovered into an ItemError for its index (zero value in the
// result slot) and the remaining items still execute, so one poisoned work
// item cannot take down a whole run. After a recovered panic the worker
// rebuilds its per-worker state with newWorker — the panic may have left
// the old state (e.g. a half-updated activation cache) corrupted. Errors
// are returned sorted by item index; results keep index order as always.
func MapWorkersPartial[S, R any](n int, newWorker func() S, fn func(S, int) R) ([]R, []ItemError) {
	return MapWorkersPartialN(Workers(), n, newWorker, fn)
}

// MapWorkersPartialN is MapWorkersPartial with an explicit worker count.
func MapWorkersPartialN[S, R any](workers, n int, newWorker func() S, fn func(S, int) R) ([]R, []ItemError) {
	out := make([]R, n)
	if n <= 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		next atomic.Int64
		mu   sync.Mutex
		errs []ItemError
		wg   sync.WaitGroup
	)
	// runOne isolates a single task so a panic loses only that item.
	runOne := func(s S, i int) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				errs = append(errs, ItemError{Index: i, Err: &PanicError{Value: r}})
				mu.Unlock()
			}
		}()
		out[i] = fn(s, i)
		return true
	}
	worker := func() {
		defer wg.Done()
		s := newWorker()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if !runOne(s, i) {
				s = newWorker()
			}
		}
	}
	if workers == 1 {
		wg.Add(1)
		worker()
	} else {
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go worker()
		}
		wg.Wait()
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	return out, errs
}

// Pool is a persistent bounded worker pool with per-worker state — the
// serving substrate's counterpart to the per-call MapWorkers pools. Each
// worker owns one S (detector/regressor clones in the serving layer),
// built once at start; jobs submitted with Submit run on whichever worker
// picks them up. Unlike the Map* helpers a Pool outlives any single batch:
// the serving scheduler keeps it running for the lifetime of the server
// and feeds it frames as streams make them ready.
//
// A job that panics is recovered: the panic is counted (Panics) and the
// worker rebuilds its state with newWorker before picking up more work, so
// one poisoned frame cannot take a worker — let alone the pool — down.
// Jobs that must report completion should do so themselves (e.g. by
// sending on a channel in a defer), since Submit is fire-and-forget.
type Pool[S any] struct {
	jobs    chan func(S)
	wg      sync.WaitGroup
	workers int
	panics  atomic.Int64
	closed  atomic.Bool
	onPanic func(v any)

	batchedJobs  atomic.Int64
	batchedItems atomic.Int64
}

// NewPool starts workers goroutines, each holding its own newWorker()
// state. workers < 1 means Workers(). The queue is unbuffered: Submit
// hands the job directly to an idle worker or blocks until one frees —
// backpressure belongs to the caller's queues, not a hidden channel.
func NewPool[S any](workers int, newWorker func() S) *Pool[S] {
	return NewPoolHooked(workers, newWorker, nil)
}

// NewPoolHooked is NewPool with a recovery hook: onPanic (nil is allowed
// and ignored) is called with the recovered value once per job panic,
// after the panic is counted and before the worker rebuilds its state.
// The hook runs on the panicking worker's goroutine, so it must be safe
// for concurrent use — the serving layer points it at an obs counter,
// which is how a pool rebuild becomes visible in metric snapshots.
func NewPoolHooked[S any](workers int, newWorker func() S, onPanic func(v any)) *Pool[S] {
	if workers < 1 {
		workers = Workers()
	}
	p := &Pool[S]{jobs: make(chan func(S)), workers: workers, onPanic: onPanic}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(newWorker)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool[S]) Workers() int { return p.workers }

// Panics returns the number of recovered job panics since start.
func (p *Pool[S]) Panics() int { return int(p.panics.Load()) }

func (p *Pool[S]) worker(newWorker func() S) {
	defer p.wg.Done()
	s := newWorker()
	for job := range p.jobs {
		if !p.runJob(s, job) {
			// The panic may have left the state (e.g. a half-updated
			// activation cache) corrupted: rebuild it.
			s = newWorker()
		}
	}
}

// runJob isolates one job so a panic loses only that job.
func (p *Pool[S]) runJob(s S, job func(S)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			if p.onPanic != nil {
				p.onPanic(r)
			}
		}
	}()
	job(s)
	return true
}

// Submit enqueues one job. It blocks until a worker accepts it and returns
// true, or returns false if the pool is closed (the job is not run).
// Submitting concurrently with Close is the caller's race to avoid; the
// scheduler's single-threaded event loop does both, so it never races.
func (p *Pool[S]) Submit(job func(S)) bool {
	if p.closed.Load() {
		return false
	}
	p.jobs <- job
	return true
}

// SubmitBatch submits a job that processes items units of work in one
// worker invocation — the serving scheduler's cross-stream batches. It has
// exactly Submit's semantics and just additionally feeds the batch
// counters, so occupancy (items per job) stays observable at the pool.
func (p *Pool[S]) SubmitBatch(job func(S), items int) bool {
	if !p.Submit(job) {
		return false
	}
	p.batchedJobs.Add(1)
	p.batchedItems.Add(int64(items))
	return true
}

// BatchedJobs returns the number of jobs accepted through SubmitBatch.
func (p *Pool[S]) BatchedJobs() int { return int(p.batchedJobs.Load()) }

// BatchedItems returns the total work items accepted through SubmitBatch.
func (p *Pool[S]) BatchedItems() int { return int(p.batchedItems.Load()) }

// Close stops accepting jobs, waits for in-flight and queued jobs to
// drain, and stops every worker goroutine. It is idempotent. After Close
// returns, no pool goroutine remains (pinned by the scheduler-shutdown
// leak test).
func (p *Pool[S]) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
	}
	p.wg.Wait()
}

// MapWorkersN is MapWorkers with an explicit worker count.
func MapWorkersN[S, R any](workers, n int, newWorker func() S, fn func(S, int) R) []R {
	out := make([]R, n)
	if n <= 0 {
		return out
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := newWorker()
		if err := runSerial(n, func(i int) { out[i] = fn(s, i) }); err != nil {
			panic(err)
		}
		return out
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		err     error
		wg      sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				errOnce.Do(func() { err = &PanicError{Value: r} })
				failed.Store(true)
			}
		}()
		s := newWorker()
		for !failed.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			out[i] = fn(s, i)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if err != nil {
		panic(err)
	}
	return out
}
