package rfcn

import (
	"math"
	"testing"

	"adascale/internal/detect"
	"adascale/internal/raster"
	"adascale/internal/synth"
)

func testDataset(t *testing.T, seed int64, train, val int) *synth.Dataset {
	t.Helper()
	cfg := synth.VIDLike(seed)
	cfg.FramesPerSnippet = 4
	ds, err := synth.Generate(cfg, train, val)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// frameWithObject builds a single-frame scene with one object of the given
// native shortest side.
func frameWithObject(size float64, class int, clutter float64) *synth.Frame {
	cfg := synth.VIDLike(1)
	cfg.FramesPerSnippet = 1
	cfg.MaxObjects = 1
	ds, _ := synth.Generate(cfg, 1, 0)
	fr := &ds.Train[0].Frames[0]
	fr.Clutter = clutter
	fr.Blur = 0
	cx, cy := 640.0, 360.0
	fr.Objects = []synth.Object{{
		ID: 0, Class: class, Texture: raster.TextureSolid, Intensity: 0.8,
		Box: detect.Box{X1: cx - size/2, Y1: cy - size/2, X2: cx + size/2, Y2: cy + size/2},
	}}
	return fr
}

func countFPs(r *Result) int {
	n := 0
	for _, d := range r.Detections {
		if d.GTIndex < 0 {
			n++
		}
	}
	return n
}

func countTPs(r *Result) int {
	n := 0
	for _, d := range r.Detections {
		if d.GTIndex >= 0 {
			n++
		}
	}
	return n
}

func TestDetectDeterministic(t *testing.T) {
	ds := testDataset(t, 1, 2, 0)
	det := NewSS(&ds.Config)
	fr := &ds.Train[0].Frames[0]
	a := det.Detect(fr, 600)
	b := det.Detect(fr, 600)
	if len(a.Detections) != len(b.Detections) {
		t.Fatal("detection count not deterministic")
	}
	for i := range a.Detections {
		if a.Detections[i].Box != b.Detections[i].Box || a.Detections[i].Score != b.Detections[i].Score {
			t.Fatal("detections not deterministic")
		}
	}
}

func TestDetectionsNearGroundTruth(t *testing.T) {
	ds := testDataset(t, 2, 5, 0)
	det := NewSS(&ds.Config)
	matched, total := 0, 0
	for _, fr := range synth.Frames(ds.Train) {
		r := det.Detect(fr, 600)
		for _, d := range r.Detections {
			if d.GTIndex >= 0 && d.Score > 0.5 {
				total++
				if detect.IoU(d.Box, fr.Objects[d.GTIndex].Box) >= 0.5 {
					matched++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no true-positive detections at scale 600")
	}
	if frac := float64(matched) / float64(total); frac < 0.8 {
		t.Fatalf("only %.0f%% of TP detections localise with IoU ≥ 0.5", frac*100)
	}
}

func TestFalsePositivesGrowWithScale(t *testing.T) {
	ds := testDataset(t, 3, 8, 0)
	det := NewSS(&ds.Config)
	fps := map[int]int{}
	for _, fr := range synth.Frames(ds.Train) {
		for _, scale := range []int{240, 600} {
			fps[scale] += countFPs(det.Detect(fr, scale))
		}
	}
	if fps[600] <= fps[240] {
		t.Fatalf("false positives must grow with scale: fp(600)=%d fp(240)=%d", fps[600], fps[240])
	}
}

func TestMultiScaleTrainingReducesFalsePositives(t *testing.T) {
	ds := testDataset(t, 4, 8, 0)
	ss, ms := NewSS(&ds.Config), NewMS(&ds.Config)
	ssFP, msFP := 0, 0
	for _, fr := range synth.Frames(ds.Train) {
		ssFP += countFPs(ss.Detect(fr, 600))
		msFP += countFPs(ms.Detect(fr, 600))
	}
	if msFP >= ssFP {
		t.Fatalf("MS training must reduce FPs: ss=%d ms=%d", ssFP, msFP)
	}
	if ssFP == 0 {
		t.Fatal("SS detector produced no FPs at 600 — clutter model broken")
	}
}

func TestOverLargeObjectDetectedBetterWhenDownscaled(t *testing.T) {
	// A 560-px object at 600 has apparent size ≈ 467 px — far above the
	// band. At 240 it is ≈ 187 px — inside. Paper source (ii).
	fr := frameWithObject(560, 15 /* lion */, 0)
	det := NewMS(&synth.Config{})
	det.Data = func() *synth.Config { c := synth.VIDLike(1); return &c }()
	hi, lo := 0, 0
	// The detection draw is a single coin flip per frame seed; average over
	// reseeded copies of the same geometry.
	cfg := synth.VIDLike(1)
	cfg.FramesPerSnippet = 40
	cfg.MaxObjects = 1
	ds, _ := synth.Generate(cfg, 1, 0)
	for i := range ds.Train[0].Frames {
		f := &ds.Train[0].Frames[i]
		f.Clutter, f.Blur = 0, 0
		f.Objects = fr.Objects
		if countTPs(det.Detect(f, 600)) > 0 {
			hi++
		}
		if countTPs(det.Detect(f, 240)) > 0 {
			lo++
		}
	}
	if lo <= hi {
		t.Fatalf("over-large object should detect more often at 240 (%d) than 600 (%d)", lo, hi)
	}
}

func TestSmallObjectNeedsHighScale(t *testing.T) {
	cfg := synth.VIDLike(5)
	cfg.FramesPerSnippet = 40
	cfg.MaxObjects = 1
	ds, _ := synth.Generate(cfg, 1, 0)
	small := frameWithObject(70, 0, 0)
	det := NewMS(&ds.Config)
	hi, lo := 0, 0
	for i := range ds.Train[0].Frames {
		f := &ds.Train[0].Frames[i]
		f.Clutter, f.Blur = 0, 0
		f.Objects = small.Objects
		if countTPs(det.Detect(f, 600)) > 0 {
			hi++
		}
		if countTPs(det.Detect(f, 128)) > 0 {
			lo++
		}
	}
	if hi <= lo {
		t.Fatalf("small object should need high scale: detected %d@600 vs %d@128", hi, lo)
	}
}

func TestRuntimeDecreasesWithScale(t *testing.T) {
	ds := testDataset(t, 6, 1, 0)
	det := NewSS(&ds.Config)
	fr := &ds.Train[0].Frames[0]
	var prev float64 = math.Inf(1)
	for _, scale := range []int{600, 480, 360, 240, 128} {
		r := det.Detect(fr, scale)
		if r.RuntimeMS >= prev {
			t.Fatalf("runtime must decrease with scale: %v at %d", r.RuntimeMS, scale)
		}
		prev = r.RuntimeMS
	}
	if r := det.Detect(fr, 600); math.Abs(r.RuntimeMS-75) > 1 {
		t.Fatalf("runtime at 600 = %v, want ≈ 75 (paper calibration)", r.RuntimeMS)
	}
}

func TestClassProbsWellFormed(t *testing.T) {
	ds := testDataset(t, 7, 3, 0)
	det := NewMS(&ds.Config)
	for _, fr := range synth.Frames(ds.Train) {
		r := det.Detect(fr, 480)
		for _, d := range r.Detections {
			if d.ClassProbs == nil {
				t.Fatal("detection missing class probabilities")
			}
			if len(d.ClassProbs) != len(ds.Config.Classes)+1 {
				t.Fatalf("probs length %d", len(d.ClassProbs))
			}
			var sum float64
			for _, p := range d.ClassProbs {
				if p < 0 {
					t.Fatal("negative probability")
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("probs sum to %v", sum)
			}
			if d.Score > 0.5 && d.ClassProbs[1+d.Class] < d.ClassProbs[0] {
				t.Fatal("a confident box's class should dominate background")
			}
		}
	}
}

func TestNMSAppliedNoHeavyOverlaps(t *testing.T) {
	ds := testDataset(t, 8, 4, 0)
	det := NewSS(&ds.Config)
	for _, fr := range synth.Frames(ds.Train) {
		r := det.Detect(fr, 600)
		for i := range r.Detections {
			for j := i + 1; j < len(r.Detections); j++ {
				a, b := r.Detections[i], r.Detections[j]
				if a.Class == b.Class && detect.IoU(a.Box, b.Box) > NMSThreshold {
					t.Fatalf("NMS left overlapping same-class boxes (IoU %v)", detect.IoU(a.Box, b.Box))
				}
			}
		}
	}
}

func TestFeaturesShapeAndScaleDependence(t *testing.T) {
	ds := testDataset(t, 9, 1, 0)
	det := NewSS(&ds.Config)
	fr := &ds.Train[0].Frames[0]
	f600 := det.Features(fr, 600)
	f240 := det.Features(fr, 240)
	if f600.Dim(0) != FeatureChannels {
		t.Fatalf("feature channels = %d", f600.Dim(0))
	}
	if f600.Dim(1) <= f240.Dim(1) || f600.Dim(2) <= f240.Dim(2) {
		t.Fatalf("features at 600 (%v) must be larger than at 240 (%v)", f600.Shape(), f240.Shape())
	}
	// ≈ render size / backbone stride.
	wantH := (600 / ds.Config.RenderDiv) / backboneStride
	if math.Abs(float64(f600.Dim(1)-wantH)) > 2 {
		t.Fatalf("feature height %d, want ≈ %d", f600.Dim(1), wantH)
	}
	if f600.MaxAbs() == 0 {
		t.Fatal("features are all zero")
	}
}

func TestDetectWithFeaturesAttaches(t *testing.T) {
	ds := testDataset(t, 10, 1, 0)
	det := NewSS(&ds.Config)
	fr := &ds.Train[0].Frames[0]
	r := det.DetectWithFeatures(fr, 360)
	if r.Features == nil {
		t.Fatal("DetectWithFeatures must attach features")
	}
	if det.Detect(fr, 360).Features != nil {
		t.Fatal("plain Detect must not rasterise")
	}
}

func TestBackboneDeterministic(t *testing.T) {
	ds := testDataset(t, 11, 1, 0)
	fr := &ds.Train[0].Frames[0]
	im := fr.Render(60, 8000, 4)
	a := NewBackbone().Extract(im)
	b := NewBackbone().Extract(im)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("backbone not deterministic across instances")
		}
	}
}

func TestTrainScalesSortedAndMS(t *testing.T) {
	d := New(&synth.Config{}, []int{240, 600, 360})
	if d.TrainScales[0] != 600 || d.TrainScales[2] != 240 {
		t.Fatalf("train scales not sorted descending: %v", d.TrainScales)
	}
	if !d.MultiScale() {
		t.Fatal("3-scale detector must report MultiScale")
	}
	if NewSS(&synth.Config{}).MultiScale() {
		t.Fatal("SS detector must not report MultiScale")
	}
}

func TestPlainDetections(t *testing.T) {
	ds := testDataset(t, 12, 1, 0)
	det := NewSS(&ds.Config)
	r := det.Detect(&ds.Train[0].Frames[0], 600)
	plain := r.PlainDetections()
	if len(plain) != len(r.Detections) {
		t.Fatal("PlainDetections length mismatch")
	}
	for i := range plain {
		if plain[i] != r.Detections[i].Detection {
			t.Fatal("PlainDetections content mismatch")
		}
	}
}

func TestResponseCurveShape(t *testing.T) {
	ss := []int{600}
	ms := []int{600, 480, 360, 240}
	// Peak of the band beats both tails.
	if sizeResponse(150, ss) < 0.95 {
		t.Fatalf("mid-band response %v too low", sizeResponse(150, ss))
	}
	if sizeResponse(15, ss) > 0.1 || sizeResponse(600, ss) > 0.1 {
		t.Fatal("tails must be suppressed")
	}
	// MS extends the lower edge.
	if sizeResponse(35, ms) <= sizeResponse(35, ss) {
		t.Fatal("MS training must improve small-size response")
	}
	// FP factor decreases with training diversity.
	if !(fpTrainingFactor(ms) < fpTrainingFactor([]int{600, 360}) &&
		fpTrainingFactor([]int{600, 360}) < fpTrainingFactor(ss)) {
		t.Fatal("fpTrainingFactor not monotone in scale-set size")
	}
}
