package rfcn

import (
	"math/rand"

	"adascale/internal/nn"
	"adascale/internal/raster"
	"adascale/internal/tensor"
)

// Deep-feature layout. A real detector's last convolutional layer encodes
// both image appearance and the size/placement evidence its heads decode
// boxes from; here the first backboneChannels planes carry appearance
// (conv stack below) and the last detChannels planes carry size-selective
// response maps rasterised from the detector's own outputs (rfcn.go) — the
// honest equivalent of what R-FCN's position-sensitive score maps contain.
const (
	backboneChannels = 12
	detChannels      = 4

	// FeatureChannels is the depth of the full deep-feature map — the
	// "deep features" of Fig. 4 that the scale regressor reads.
	FeatureChannels = backboneChannels + detChannels
)

// backboneStride is the total spatial down-sampling of the backbone.
const backboneStride = 8

// backboneSeed fixes the random projection filters; the backbone is
// "pre-trained and frozen", mirroring the paper's setup where only the
// scale-regressor module trains (Sec. 4.2).
const backboneSeed = 0x777

// Backbone is a small frozen convolutional feature extractor. The first
// layer uses hand-designed oriented-edge / centre-surround / smoothing
// filters so the features carry interpretable size and texture energy; the
// deeper layers are fixed random projections (extreme-learning style),
// which preserve information for the trainable regressor head. The
// nonlinearity is the magnitude |x| rather than ReLU: edge polarity is
// irrelevant for size/texture energy and rectifying by magnitude keeps
// twice the signal for the frozen random projections.
//
// A Backbone is not safe for concurrent use (layers cache activations);
// create one per goroutine via NewBackbone.
type Backbone struct {
	conv1, conv2, conv3 *nn.Conv2D

	// pool recycles the feature-map buffers across Extract calls so
	// steady-state serving allocates nothing here. Per-backbone (and the
	// parallel runners clone per worker), so Get/Put never contend.
	pool *tensor.Pool

	// xhdr is the reusable header wrapping the input image for Extract
	// (Backbone is single-goroutine by contract, so one suffices).
	xhdr *tensor.Tensor

	// xhdrs are the reusable input headers for ExtractBatch, which needs
	// one live wrap per batched image; grown on demand, never shrunk.
	xhdrs []*tensor.Tensor
}

// featureGain rescales the final feature map so globally-pooled values land
// around O(0.1–1), where the regressor head trains well.
const featureGain = 8

// NewBackbone builds the frozen extractor with deterministic weights.
func NewBackbone() *Backbone {
	rng := rand.New(rand.NewSource(backboneSeed))
	b := &Backbone{
		conv1: nn.NewConv2D(rng, 1, 8, 3, 2, 1),
		conv2: nn.NewConv2D(rng, 8, backboneChannels, 3, 2, 1),
		conv3: nn.NewConv2D(rng, backboneChannels, backboneChannels, 3, 2, 1),
		pool:  tensor.NewPool(),
	}
	b.installEdgeFilters()
	return b
}

// installEdgeFilters overwrites conv1 with hand-designed kernels:
// horizontal, vertical and two diagonal edges, a Laplacian
// (centre-surround), a box smoother, and two seeded random filters.
func (b *Backbone) installEdgeFilters() {
	k := [][9]float32{
		{-1, -1, -1, 0, 0, 0, 1, 1, 1},                // horizontal edge
		{-1, 0, 1, -1, 0, 1, -1, 0, 1},                // vertical edge
		{0, 1, 1, -1, 0, 1, -1, -1, 0},                // diagonal /
		{1, 1, 0, 1, 0, -1, 0, -1, -1},                // diagonal \
		{0, -1, 0, -1, 4, -1, 0, -1, 0},               // Laplacian
		{.11, .11, .11, .11, .11, .11, .11, .11, .11}, // box smoother
	}
	w := b.conv1.Weight.W
	for f := range k {
		for i, v := range k[f] {
			w.Data()[f*9+i] = v * 0.5
		}
	}
	b.conv1.Bias.W.Zero()
}

// Clone returns an independent backbone with identical (frozen) weights
// and empty activation caches, safe to use from another goroutine.
func (b *Backbone) Clone() *Backbone {
	return &Backbone{
		conv1: b.conv1.Clone(),
		conv2: b.conv2.Clone(),
		conv3: b.conv3.Clone(),
		pool:  tensor.NewPool(),
	}
}

// Extract converts a rendered grayscale image to a backboneChannels×h×w
// appearance feature map, where h ≈ H/8 and w ≈ W/8 of the input image.
// Detector.Features stacks the detection-response planes on top.
// The returned tensor is backed by the backbone's buffer pool: the caller
// owns it and should hand it back via Recycle once done (keeping it
// forever is safe, it just isn't recycled).
func (b *Backbone) Extract(im *raster.Image) *tensor.Tensor {
	// Wrapping im.Pix is safe: the convolutions only read their input and
	// nothing below retains x.
	x := tensor.FromSliceInto(b.xhdr, im.Pix, 1, im.H, im.W)
	b.xhdr = x
	t1 := abs(b.conv1.Infer(x, b.pool))
	t2 := abs(b.conv2.Infer(t1, b.pool))
	b.pool.PutTensor(t1)
	t3 := abs(b.conv3.Infer(t2, b.pool))
	b.pool.PutTensor(t2)
	t3.ScaleInPlace(featureGain)
	return t3
}

// ExtractBatch extracts appearance features for a batch of rendered images
// in one pass, returning one tensor per image (pool-backed, caller-owned,
// release via Recycle). Results are bit-identical to calling Extract per
// image: conv1 runs fused per image exactly as Extract does (its
// hand-designed filters are sparse, where the fused kernel's zero-skip
// wins), while conv2 and conv3 — the dense layers that dominate the cost —
// run through the N-stacked im2col + packed-matmul kernel
// (tensor.ConvBatchInto), whose output is documented and property-tested
// bit-identical to the per-image path. Images of different sizes are
// grouped by shape; each same-shape group shares its stacked passes.
// Like Extract, not safe for concurrent use.
func (b *Backbone) ExtractBatch(ims []*raster.Image) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(ims))
	if len(ims) == 0 {
		return outs
	}
	for len(b.xhdrs) < len(ims) {
		b.xhdrs = append(b.xhdrs, nil)
	}
	// Group image indices by shape, preserving first-seen order so the
	// work schedule is a pure function of the input sequence.
	type shape struct{ h, w int }
	groups := make(map[shape][]int, 4)
	var order []shape
	for i, im := range ims {
		s := shape{im.H, im.W}
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], i)
	}
	for _, s := range order {
		idx := groups[s]
		// Bound the sub-group so all its live activations (dominated by the
		// conv1 outputs) stay cache-resident across the stacked layers:
		// letting a large group's first-layer outputs pile up before conv2
		// runs evicts everything and costs more than stacking saves. Small
		// rendered sizes (low serving scales) get wide stacks; full-scale
		// images degenerate to one image at a time, which still takes the
		// cache-blocked batched kernels.
		t1Floats := 8 * tensor.ConvOutSize(s.h, 3, 2, 1) * tensor.ConvOutSize(s.w, 3, 2, 1)
		sub := extractGroupBudget / t1Floats
		if sub < 1 {
			sub = 1
		}
		for lo := 0; lo < len(idx); lo += sub {
			hi := lo + sub
			if hi > len(idx) {
				hi = len(idx)
			}
			b.extractGroup(outs, ims, idx[lo:hi])
		}
	}
	return outs
}

// extractGroupBudget caps a sub-group's pooled conv1 activations, in
// floats (1<<17 floats = 512 KiB of float32).
const extractGroupBudget = 1 << 17

// extractGroup runs the batched conv stack over one same-shape sub-group,
// writing each image's feature map into outs at its original index.
func (b *Backbone) extractGroup(outs []*tensor.Tensor, ims []*raster.Image, idx []int) {
	t1s := make([]*tensor.Tensor, len(idx))
	for j, i := range idx {
		im := ims[i]
		x := tensor.FromSliceInto(b.xhdrs[j], im.Pix, 1, im.H, im.W)
		b.xhdrs[j] = x
		t1s[j] = abs(b.conv1.Infer(x, b.pool))
	}
	t2s := b.conv2.InferBatchAbs(t1s, b.pool)
	for _, t := range t1s {
		b.pool.PutTensor(t)
	}
	t3s := b.conv3.InferBatchAbs(t2s, b.pool)
	for _, t := range t2s {
		b.pool.PutTensor(t)
	}
	for j, i := range idx {
		t3s[j].ScaleInPlace(featureGain)
		outs[i] = t3s[j]
	}
}

// Recycle returns a tensor obtained from Extract (or Detector.Features)
// to the backbone's buffer pool. The tensor must not be used afterwards.
func (b *Backbone) Recycle(t *tensor.Tensor) { b.pool.PutTensor(t) }

// abs rectifies a tensor by magnitude in place and returns it.
func abs(t *tensor.Tensor) *tensor.Tensor {
	d := t.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = -v
		}
	}
	return t
}
