package rfcn

import (
	"fmt"
	"testing"

	"adascale/internal/parallel"
	"adascale/internal/raster"
	"adascale/internal/synth"
	"adascale/internal/tensor"
)

// batchFrames pulls n distinct frames (cycling snippets) out of a dataset.
func batchFrames(t *testing.T, ds *synth.Dataset, n int) []*synth.Frame {
	t.Helper()
	var frames []*synth.Frame
	for len(frames) < n {
		for si := range ds.Train {
			for fi := range ds.Train[si].Frames {
				frames = append(frames, &ds.Train[si].Frames[fi])
				if len(frames) == n {
					return frames
				}
			}
		}
	}
	return frames
}

func tensorsEqual(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("%s: length %d != %d", label, len(gd), len(wd))
	}
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: element %d: %v != %v", label, i, gd[i], wd[i])
		}
	}
}

// TestDetectBatchMatchesSequential pins the serving batcher's core
// guarantee: DetectBatch is bit-identical to N sequential
// DetectWithFeatures calls — detections, runtime model and feature maps —
// across batch sizes, mixed scales (distinct rendered shapes exercise the
// shape-grouping path) and matmul worker counts.
func TestDetectBatchMatchesSequential(t *testing.T) {
	ds := testDataset(t, 31, 6, 0)
	defer parallel.SetWorkers(0)
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		for _, n := range []int{1, 2, 7, 16} {
			t.Run(fmt.Sprintf("w%d_n%d", workers, n), func(t *testing.T) {
				frames := batchFrames(t, ds, n)
				scales := make([]int, n)
				for i := range scales {
					// Mix of rungs, including repeats that batch together
					// and odd scales that render to odd shapes.
					scales[i] = []int{600, 400, 600, 320, 480, 600, 400}[i%7]
				}
				seqDet := New(&ds.Config, []int{600})
				batDet := New(&ds.Config, []int{600})
				want := make([]*Result, n)
				for i := range frames {
					want[i] = seqDet.DetectWithFeatures(frames[i], scales[i])
				}
				got := batDet.DetectBatch(frames, scales)
				for i := range frames {
					g, w := got[i], want[i]
					if len(g.Detections) != len(w.Detections) {
						t.Fatalf("frame %d: %d detections != %d", i, len(g.Detections), len(w.Detections))
					}
					for j := range g.Detections {
						if g.Detections[j].Detection != w.Detections[j].Detection {
							t.Fatalf("frame %d detection %d differs", i, j)
						}
					}
					if g.RuntimeMS != w.RuntimeMS {
						t.Fatalf("frame %d runtime %v != %v", i, g.RuntimeMS, w.RuntimeMS)
					}
					tensorsEqual(t, fmt.Sprintf("frame %d features", i), g.Features, w.Features)
				}
			})
		}
	}
}

// TestExtractBatchMatchesExtract checks the backbone layer directly,
// including a batch whose images span several distinct sizes (so both the
// singleton path and the grouped batched path run).
func TestExtractBatchMatchesExtract(t *testing.T) {
	ds := testDataset(t, 32, 4, 0)
	frames := batchFrames(t, ds, 7)
	det := NewSS(&ds.Config)
	scales := []int{600, 600, 400, 320, 400, 600, 240}
	ims := make([]*raster.Image, len(frames))
	for i, f := range frames {
		ims[i] = det.renderForScale(f, scales[i])
	}
	seq := NewBackbone()
	bat := NewBackbone()
	want := make([]*tensor.Tensor, len(ims))
	for i, im := range ims {
		want[i] = seq.Extract(im)
	}
	got := bat.ExtractBatch(ims)
	for i := range ims {
		tensorsEqual(t, fmt.Sprintf("image %d (%dx%d)", i, ims[i].H, ims[i].W), got[i], want[i])
	}
}

// TestDetectBatchSteadyStateAllocs proves the pool actually recycles the
// batched path's buffers: after warm-up, repeated DetectBatch calls on the
// same frames keep the backbone/feature side near allocation-free (the
// remaining small allocations are the per-call result slices and Detect's
// own bookkeeping, identical to the sequential path).
func TestDetectBatchSteadyStateAllocs(t *testing.T) {
	ds := testDataset(t, 33, 4, 0)
	frames := batchFrames(t, ds, 8)
	scales := make([]int, len(frames))
	for i := range scales {
		scales[i] = 600
	}
	det := NewSS(&ds.Config)
	run := func() {
		rs := det.DetectBatch(frames, scales)
		for _, r := range rs {
			det.Recycle(r.Features)
			r.Release()
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm pools and render caches
	}
	allocs := testing.AllocsPerRun(5, run)
	// Sequential DetectWithFeatures costs ~a few dozen small allocations per
	// frame from Detect's modelling; the batched feature path must not add
	// tensor-sized allocations on top. 150 per frame is far below one
	// feature-map allocation (the smallest pooled tensor here is tens of KiB,
	// and a leak would show up as thousands of floats per frame).
	if perFrame := allocs / float64(len(frames)); perFrame > 150 {
		t.Fatalf("steady-state DetectBatch allocates %.1f objects/frame; pooling is broken", perFrame)
	}
}

// BenchmarkDetectBatch compares the batched detector path against N
// sequential DetectWithFeatures calls at serving-realistic scales; the
// per-frame numbers localise the cross-stream batching win to the backbone.
func BenchmarkDetectBatch(b *testing.B) {
	cfg := synth.VIDLike(41)
	cfg.FramesPerSnippet = 4
	ds, err := synth.Generate(cfg, 6, 0)
	if err != nil {
		b.Fatal(err)
	}
	var frames []*synth.Frame
	for si := range ds.Train {
		for fi := range ds.Train[si].Frames {
			frames = append(frames, &ds.Train[si].Frames[fi])
		}
	}
	for _, scale := range []int{600, 400, 320, 240} {
		for _, n := range []int{1, 2, 4, 8} {
			fs := frames[:n]
			scales := make([]int, n)
			for i := range scales {
				scales[i] = scale
			}
			b.Run(fmt.Sprintf("seq/s%d/n%d", scale, n), func(b *testing.B) {
				det := NewSS(&ds.Config)
				for i := 0; i < b.N; i++ {
					for j := range fs {
						r := det.DetectWithFeatures(fs[j], scales[j])
						det.Recycle(r.Features)
						r.Release()
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/frame")
			})
			b.Run(fmt.Sprintf("batch/s%d/n%d", scale, n), func(b *testing.B) {
				det := NewSS(&ds.Config)
				for i := 0; i < b.N; i++ {
					rs := det.DetectBatch(fs, scales)
					for _, r := range rs {
						det.Recycle(r.Features)
						r.Release()
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/frame")
			})
		}
	}
}
