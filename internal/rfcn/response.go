package rfcn

import "math"

// The behavioural response model. A CNN detector is competent over a band
// of apparent object sizes (pixels at the tested scale): below the band the
// RPN's smallest anchor (128 px in the paper, with proposals degrading well
// before that) under-covers the object; above it the object exceeds the
// receptive field / anchor range and confidence drops. The paper's key
// observation — down-sampling sometimes *increases* accuracy — falls out of
// this band: over-large objects re-enter it when the image shrinks
// (source (ii) in Sec. 1), and high-resolution distracting detail that
// spawns false positives disappears (source (i)).

// Single-scale (600) training response band, in apparent pixels.
const (
	ssSizeLo      = 45.0  // lower band edge
	ssSizeLoWidth = 12.0  // lower edge softness
	ssSizeHi      = 330.0 // upper band edge
	ssSizeHiWidth = 70.0  // upper edge softness
)

// Multi-scale training effects.
const (
	// msQualityTax is the peak-quality cost of spreading model capacity
	// over scales (why MS/SS mAP dips below SS/SS in Table 1).
	msQualityTax = 0.05

	// msUpperWidth widens the upper band edge: the detector has seen each
	// object at several apparent sizes.
	msUpperWidth = 90.0

	blurPenaltyCoeff = 0.015
)

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// plateau is a soft band-pass over apparent size a, normalised so its peak
// is exactly 1 — BaseQuality then maps directly to in-band detectability.
func plateau(a, lo, loW, hi, hiW float64) float64 {
	return rawPlateau(a, lo, loW, hi, hiW) / plateauPeak(lo, loW, hi, hiW)
}

func rawPlateau(a, lo, loW, hi, hiW float64) float64 {
	return sigmoid((a-lo)/loW) * sigmoid((hi-a)/hiW)
}

// plateauPeak finds the band-pass maximum by grid search between the edges.
func plateauPeak(lo, loW, hi, hiW float64) float64 {
	peak := 0.0
	for i := 0; i <= 64; i++ {
		a := lo + (hi-lo)*float64(i)/64
		if v := rawPlateau(a, lo, loW, hi, hiW); v > peak {
			peak = v
		}
	}
	if peak <= 0 {
		return 1
	}
	return peak
}

// sizeResponse returns the detectability multiplier for an object of
// apparent size a under a detector trained at the given scales.
func sizeResponse(a float64, trainScales []int) float64 {
	if len(trainScales) <= 1 {
		return plateau(a, ssSizeLo, ssSizeLoWidth, ssSizeHi, ssSizeHiWidth)
	}
	// Multi-scale training shows each object at sizes down to
	// native·(s_min/600), pushing the competent band's lower edge down
	// proportionally (partially — small objects remain intrinsically hard).
	smin := minScale(trainScales)
	lo := ssSizeLo * (0.35 + 0.65*float64(smin)/600.0)
	return plateau(a, lo, ssSizeLoWidth, ssSizeHi+25, msUpperWidth)
}

// fpTrainingFactor scales the false-positive rate by training diversity:
// multi-scale training stops the classifier from using absolute scale as a
// discriminative feature, which the paper's Fig. 6 shows slashes false
// positives.
func fpTrainingFactor(trainScales []int) float64 {
	switch len(trainScales) {
	case 0, 1:
		return 1.0
	case 2:
		return 0.72
	case 3:
		return 0.58
	default:
		return 0.48
	}
}

// blurPenalty models motion blur / camera-focus failure: blur measured in
// test-scale pixels mildly suppresses confidence.
func blurPenalty(blurTestPx float64) float64 {
	return 1 / (1 + blurPenaltyCoeff*blurTestPx)
}

// scaleFamiliarity penalises testing at scales the detector never saw in
// training — the paper's core premise that CNN detectors are not
// scale-invariant. Inside the convex hull of the training scales the
// penalty is mild (interpolation); outside it grows with distance. This is
// what makes AdaScale on a {600}-only detector learn to stay near 600
// (Table 2's last column) while the full S_train lets it roam.
func scaleFamiliarity(m int, trainScales []int) float64 {
	lo, hi := trainScales[0], trainScales[0]
	dNear := math.Inf(1)
	for _, s := range trainScales {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
		if d := math.Abs(float64(m - s)); d < dNear {
			dNear = d
		}
	}
	if m >= lo && m <= hi {
		return 1 - 0.12*math.Min(1, dNear/200)
	}
	return 1 - 0.2*math.Min(1, dNear/400)
}

func minScale(scales []int) int {
	m := scales[0]
	for _, s := range scales[1:] {
		if s < m {
			m = s
		}
	}
	return m
}
