package rfcn

import (
	"testing"
)

// TestCloneProducesIdenticalOutputs: a clone must reproduce the original's
// detections and features exactly (the parallel dataset runner relies on
// clones being behaviourally indistinguishable).
func TestCloneProducesIdenticalOutputs(t *testing.T) {
	ds := testDataset(t, 31, 2, 1)
	det := NewMS(&ds.Config)
	clone := det.Clone()

	for _, scale := range []int{600, 360} {
		for i := range ds.Val[0].Frames {
			f := &ds.Val[0].Frames[i]
			a := det.DetectWithFeatures(f, scale)
			b := clone.DetectWithFeatures(f, scale)
			ap, bp := a.PlainDetections(), b.PlainDetections()
			if len(ap) != len(bp) {
				t.Fatalf("frame %d scale %d: %d vs %d detections", i, scale, len(ap), len(bp))
			}
			for j := range ap {
				if ap[j] != bp[j] {
					t.Fatalf("frame %d scale %d detection %d differs", i, scale, j)
				}
			}
			ad, bd := a.Features.Data(), b.Features.Data()
			if len(ad) != len(bd) {
				t.Fatalf("feature sizes differ: %d vs %d", len(ad), len(bd))
			}
			for j := range ad {
				if ad[j] != bd[j] {
					t.Fatalf("frame %d scale %d feature %d: %v vs %v", i, scale, j, ad[j], bd[j])
				}
			}
		}
	}
}

// TestCloneIsIndependent: mutating a clone's backbone weights must not leak
// into the original (and vice versa) — the isolation the per-worker clones
// depend on.
func TestCloneIsIndependent(t *testing.T) {
	ds := testDataset(t, 32, 2, 1)
	det := NewMS(&ds.Config)
	f := &ds.Val[0].Frames[0]
	before := det.DetectWithFeatures(f, 480)

	clone := det.Clone()
	w := clone.backbone.conv2.Weight.W.Data()
	for i := range w {
		w[i] += 7
	}
	clone.TrainScales[0] = -1

	after := det.DetectWithFeatures(f, 480)
	bp, ap := before.PlainDetections(), after.PlainDetections()
	if len(bp) != len(ap) {
		t.Fatal("mutating the clone changed the original's detections")
	}
	for j := range bp {
		if bp[j] != ap[j] {
			t.Fatal("mutating the clone changed the original's detections")
		}
	}
	bd, ad := before.Features.Data(), after.Features.Data()
	for j := range bd {
		if bd[j] != ad[j] {
			t.Fatal("mutating the clone changed the original's features")
		}
	}
	if det.TrainScales[0] == -1 {
		t.Fatal("TrainScales is shared between clone and original")
	}
}
