// Package rfcn is the behavioural stand-in for the paper's R-FCN object
// detector (ResNet-101 backbone, trained in MXNet on ImageNet DET+VID).
// Training and running a deep detector is the hardware/data gate flagged by
// this paper's reproduction band, so the detector's externally observable
// behaviour is modelled instead: given a synthetic frame's ground truth and
// a test scale, it emits detections whose quality follows a calibrated
// scale-response model (response.go), plus clutter- and detail-driven false
// positives whose rate grows with resolution. All stochastic choices are
// derived deterministically from the frame seed via common random numbers,
// so detections vary smoothly and reproducibly across test scales — exactly
// what the optimal-scale metric (Sec. 3.1) and the scale regressor
// (Sec. 3.2) need to observe.
//
// The deep features the regressor consumes are real: frames are rasterised
// and pushed through a frozen convolutional backbone (backbone.go).
package rfcn

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"adascale/internal/detect"
	"adascale/internal/raster"
	"adascale/internal/simclock"
	"adascale/internal/synth"
	"adascale/internal/tensor"
)

// rngScratch recycles *rand.Rand instances across Detect calls. Detect
// draws from three deterministically re-seeded generators per frame (plus
// two per object); allocating them fresh was a top-five allocation site.
// Re-seeding a recycled generator reproduces exactly the sequence of
// rand.New(rand.NewSource(seed)), so common random numbers are preserved.
// A sync.Pool (not a Detector field) keeps Detect safe for concurrent use
// on a shared detector, as documented on Clone.
var rngScratch = sync.Pool{New: func() any { return rand.New(rand.NewSource(1)) }}

// detScratch holds Detect's per-call candidate lists (pre-NMS detections,
// their class-prob references, and the NMS survivors). All three are
// re-sliced to length 0 before reuse and their contents copied out before
// the scratch is pooled, so recycling is invisible to callers. Pooled
// rather than Detector-owned for the same concurrency reason as rngScratch.
type detScratch struct {
	raw   []detect.Detection
	probs [][]float64
	kept  []detect.Detection
}

var detScratchPool = sync.Pool{New: func() any { return new(detScratch) }}

func seededRng(seed int64) *rand.Rand {
	r := rngScratch.Get().(*rand.Rand)
	r.Seed(seed)
	return r
}

// probArena hands out []float64 probability vectors carved at increasing
// offsets from one backing buffer, collapsing the per-detection ClassProbs
// allocations into at most one growth per Detect call. Handed-out vectors
// are capacity-limited subslices and are never re-carved by the arena, so
// retaining them in Result is safe for as long as the Result lives. The
// buffer itself recycles through Result.Release: if a growth reallocates
// mid-call, already-issued vectors keep aliasing the old buffer (which then
// simply dies with the Result) and only the newest buffer is retained.
type probArena struct {
	buf []float64
	off int
}

func (a *probArena) take(n int) []float64 {
	if a.off+n > len(a.buf) {
		grow := 2 * len(a.buf)
		if grow < 64*n {
			grow = 64 * n
		}
		a.buf = make([]float64, grow)
		a.off = 0
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// Paper constants.
const (
	// NMSThreshold is the paper's NMS IoU threshold (Sec. 4.2).
	NMSThreshold = 0.3
	// TopK is the paper's post-NMS detection cap (Sec. 4.2).
	TopK = 300
	// MaxLongSide is the Fast R-CNN resize protocol's longest-side bound.
	MaxLongSide = 2000
	// AnchorFloor is the smallest RPN anchor (the paper picks 128 as the
	// minimum test scale because of it).
	AnchorFloor = 128
)

// Detector is a behavioural R-FCN. Construct with New; the zero value is
// not usable.
type Detector struct {
	// Data is the dataset configuration the detector was "trained" on
	// (class profiles drive per-class quality).
	Data *synth.Config

	// TrainScales is S_train: {600} for single-scale training, the paper's
	// default multi-scale set is {600, 480, 360, 240}.
	TrainScales []int

	backbone *Backbone
}

// New creates a detector for the given dataset trained at the given scales.
func New(data *synth.Config, trainScales []int) *Detector {
	scales := append([]int(nil), trainScales...)
	sort.Sort(sort.Reverse(sort.IntSlice(scales)))
	return &Detector{Data: data, TrainScales: scales, backbone: NewBackbone()}
}

// NewSS creates the SS baseline: trained at scale 600 only.
func NewSS(data *synth.Config) *Detector { return New(data, []int{600}) }

// NewMS creates the paper's default multi-scale detector.
func NewMS(data *synth.Config) *Detector { return New(data, []int{600, 480, 360, 240}) }

// MultiScale reports whether the detector was multi-scale trained.
func (d *Detector) MultiScale() bool { return len(d.TrainScales) > 1 }

// Clone returns an independent detector producing identical outputs. The
// backbone (whose conv layers cache activations between calls) and the
// training-scale set are deep-copied; the dataset configuration is shared,
// as it is immutable after generation. Detect is read-only and safe to
// share, but DetectWithFeatures and Features drive the backbone — the
// parallel dataset runner therefore gives every worker its own clone.
func (d *Detector) Clone() *Detector {
	return &Detector{
		Data:        d.Data,
		TrainScales: append([]int(nil), d.TrainScales...),
		backbone:    d.backbone.Clone(),
	}
}

// RawDetection is a pre-evaluation detection with the classifier's
// probability vector (index 0 = background, 1+c = class c) retained for the
// loss-based optimal-scale metric.
type RawDetection struct {
	detect.Detection
	ClassProbs []float64
}

// Result is the output of one detector invocation. Boxes are in native
// frame coordinates so results at different scales are directly comparable.
type Result struct {
	Frame *synth.Frame
	Scale int

	// Detections are the post-NMS outputs (≤ TopK, native coordinates).
	Detections []RawDetection

	// Features is the backbone's deep feature map at the tested scale;
	// nil unless DetectWithFeatures was used. It is backed by the
	// detector's buffer pool: hand it back via Detector.Recycle when done
	// (steady-state serving then allocates nothing here); retaining it —
	// as label generation does — is also safe, it just isn't recycled.
	Features *tensor.Tensor

	// RuntimeMS is the modelled detector runtime at this scale.
	RuntimeMS float64

	// proposals are RPN-stage objectness boxes (native coordinates). The
	// region proposal network fires on object-like blobs even when the
	// classification head fails, so these survive for over-large objects —
	// evidence the deep features genuinely contain and the scale regressor
	// needs (features painting in features()).
	proposals []detect.Box

	// probBuf is the arena backing the Detections' ClassProbs vectors; it
	// travels with the Result so Release can recycle it.
	probBuf []float64
}

// resultPool recycles Result structs together with their detection,
// proposal and class-prob storage. Detect draws from it and Release feeds
// it; results that are never released are simply collected by the GC.
var resultPool = sync.Pool{New: func() any { return new(Result) }}

// Release returns the result's storage to the detector's pools. The result
// and every slice obtained from it — Detections, ClassProbs — must not be
// used afterwards (PlainDetections/AppendDetections copies are unaffected),
// and a result must not be released twice. Features is NOT recycled here:
// hand it to Detector.Recycle first. Hot eval loops release each frame's
// result after copying out the survivors; callers that retain results
// (label generation, serving traces) just skip the call.
func (r *Result) Release() {
	if r == nil {
		return
	}
	for i := range r.Detections {
		r.Detections[i].ClassProbs = nil
	}
	*r = Result{
		Detections: r.Detections[:0],
		proposals:  r.proposals[:0],
		probBuf:    r.probBuf,
	}
	resultPool.Put(r)
}

// PlainDetections strips the raw detections to the evaluation type.
func (r *Result) PlainDetections() []detect.Detection {
	return r.AppendDetections(make([]detect.Detection, 0, len(r.Detections)))
}

// AppendDetections appends the plain detections to dst and returns the
// extended slice; the copies stay valid after the result is released.
func (r *Result) AppendDetections(dst []detect.Detection) []detect.Detection {
	for i := range r.Detections {
		dst = append(dst, r.Detections[i].Detection)
	}
	return dst
}

// Detect runs the behavioural detector on frame f at the given test scale
// (shortest side in pixels, clipped to [AnchorFloor, 600]... callers may
// exceed 600; the model extrapolates). It does not rasterise the frame.
func (d *Detector) Detect(f *synth.Frame, scale int) *Result {
	if scale < 1 {
		scale = 1
	}
	factor := scaleToFactor(f, scale)
	nClasses := len(d.Data.Classes)

	// Candidate lists live only for the duration of this call (the output
	// copies the survivors), so the backing arrays come from a pool and
	// steady-state detection allocates only what the Result retains — and
	// even that recycles when the caller hands the Result back via Release.
	res := resultPool.Get().(*Result)
	sc := detScratchPool.Get().(*detScratch)
	raw := sc.raw[:0]     // candidate detections, pre-NMS
	probs := sc.probs[:0] // index in raw → class probs
	proposals := res.proposals[:0]
	arena := probArena{buf: res.probBuf}

	// True-positive candidates (plus near-duplicates for NMS to prune).
	for gi, obj := range f.Objects {
		rng := seededRng(f.Seed() ^ int64(obj.ID+1)*0x5DEECE66D)
		uFrame := rng.Float64()
		uMix := rng.Float64()
		// Detection outcomes are temporally correlated: on most frames the
		// draw is the track-level one (a hard object stays missed across
		// the snippet); occasionally it re-rolls. The mixture keeps the
		// marginal distribution exactly uniform.
		trackRng := seededRng(f.TrackSeed() ^ int64(obj.ID+1)*0x5DEECE66D)
		uDet := trackRng.Float64()
		rngScratch.Put(trackRng)
		if uMix >= 0.6 {
			uDet = uFrame
		}
		uScore := rng.Float64()
		uCls := rng.Float64()
		z := [4]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		uPart1, uPart2 := rng.Float64(), rng.Float64()
		dupJitter := [2]float64{rng.NormFloat64(), rng.NormFloat64()}
		rngScratch.Put(rng)

		p := d.Data.Classes[obj.Class]
		q := d.quality(obj, p, f, factor)

		// RPN proposal: high recall across a wide size range (anchors run
		// 128..512 at the training scale), independent of whether the
		// classification head succeeds below.
		apparentShort := obj.Box.Shortest() * factor
		uProp := frac(uFrame*31 + uMix*17)
		pProp := 0.95 * sigmoid((apparentShort-25)/8) * sigmoid((560-apparentShort)/60)
		if uProp < pProp {
			proposals = append(proposals, obj.Box)
		}

		if uDet >= q {
			continue // missed at this scale
		}
		// Confidence sits well above the false-positive score band so that
		// ranking (and with it AP) is driven by recall, as for a detector
		// with a well-calibrated classifier.
		score := clamp01(0.35 + 0.6*q + 0.1*(uScore-0.5))

		// Classification: mostly correct; multi-scale confusion classes
		// flip more often (Sec. 4.3's red panda / bear effect).
		pCorrect := 0.99 - 0.05*(1-q)
		if d.MultiScale() {
			pCorrect -= 2.0 * p.MSConfusion
		}
		class := obj.Class
		if uCls >= clamp01(pCorrect) {
			class = (obj.Class + 1 + int(uCls*1e6)%(nClasses-1)) % nClasses
		}

		// Localisation: error is roughly constant in test-scale pixels, so
		// it grows in native coordinates as the image shrinks.
		errStd := (1.2 + (1-q)*4.5) / factor
		box := detect.Box{
			X1: obj.Box.X1 + z[0]*errStd,
			Y1: obj.Box.Y1 + z[1]*errStd,
			X2: obj.Box.X2 + z[2]*errStd,
			Y2: obj.Box.Y2 + z[3]*errStd,
		}
		if box.X2 <= box.X1+1 || box.Y2 <= box.Y1+1 {
			box = obj.Box
		}
		raw = append(raw, detect.Detection{Box: box, Class: class, Score: score, GTIndex: gi})
		probs = append(probs, classProbs(&arena, nClasses, class, score))

		// A weaker duplicate proposal that NMS should suppress.
		dup := box.Shifted(dupJitter[0]*errStd*1.5, dupJitter[1]*errStd*1.5)
		raw = append(raw, detect.Detection{Box: dup, Class: class, Score: score * 0.8, GTIndex: gi})
		probs = append(probs, classProbs(&arena, nClasses, class, score*0.8))

		// Detail-driven part false positives: at high resolution, textured
		// parts of a large object are detected as spurious objects
		// (paper Fig. 1's motivating failure).
		apparent := obj.Box.Shortest() * factor
		partIntensity := obj.Texture.Complexity() * 0.8 * sigmoid((apparent-180)/60)
		for pi, u := range []float64{uPart1, uPart2} {
			if u >= partIntensity {
				continue
			}
			pw, ph := obj.Box.W(), obj.Box.H()
			px := obj.Box.X1 + (0.15+0.5*u)*pw
			py := obj.Box.Y1 + (0.15+0.4*frac(u*7))*ph
			ps := 0.25 * math.Min(pw, ph) * (0.8 + 0.6*frac(u*13))
			pBox := detect.Box{X1: px, Y1: py, X2: px + ps, Y2: py + ps*0.9}
			pClass := (obj.Class + 3 + pi) % nClasses
			pScore := clamp01(0.15 + 0.35*frac(u*29))
			raw = append(raw, detect.Detection{Box: pBox, Class: pClass, Score: pScore, GTIndex: -1})
			probs = append(probs, classProbs(&arena, nClasses, pClass, pScore))
		}
	}

	// Clutter-driven false positives: candidates activate as resolution
	// (and with it distracting background detail) increases. Sensor faults
	// modulate the intensity: empty frames spawn nothing, noise bursts
	// activate extra spurious responses.
	fpIntensity := 0.4 * f.Clutter * fpTrainingFactor(d.TrainScales) *
		math.Pow(float64(scale)/600.0, 1.2) * f.Fault.FPFactor()
	frng := seededRng(f.Seed() ^ 0x4FD1EB)
	const nCandidates = 28
	for j := 0; j < nCandidates; j++ {
		tau := (float64(j) + frng.Float64()) / nCandidates
		uPos1, uPos2 := frng.Float64(), frng.Float64()
		uSize := frng.Float64()
		uClass := frng.Float64()
		uScore := frng.Float64()
		if tau >= fpIntensity {
			continue
		}
		size := 40 + uSize*110
		cx := uPos1 * float64(f.W)
		cy := uPos2 * float64(f.H)
		box := detect.Box{X1: cx - size/2, Y1: cy - size/2, X2: cx + size/2, Y2: cy + size*0.45}
		if overlapsGT(box, f) {
			// Slide away from ground truth so this stays a false positive.
			box = box.Shifted(size*1.5, size*1.2)
		}
		class := fpClass(f, nClasses, uClass)
		score := 0.12 + 0.5*uScore*uScore
		if uScore > 0.95 {
			score += 0.3 // occasional confident false positive
		}
		raw = append(raw, detect.Detection{Box: box, Class: class, Score: score, GTIndex: -1})
		probs = append(probs, classProbs(&arena, nClasses, class, score))
	}
	rngScratch.Put(frng)

	kept := detect.NMSAppend(sc.kept[:0], raw, NMSThreshold, TopK)
	out := res.Detections[:0]
	for _, k := range kept {
		out = append(out, RawDetection{Detection: k, ClassProbs: matchProbs(raw, probs, k)})
	}
	// The prob vectors escape into out's ClassProbs (carved from the
	// result's arena buffer); drop the scratch container's references
	// before pooling it so the pool never pins a retired buffer.
	for i := range probs {
		probs[i] = nil
	}
	sc.raw, sc.probs, sc.kept = raw[:0], probs[:0], kept[:0]
	detScratchPool.Put(sc)
	*res = Result{
		Frame:      f,
		Scale:      scale,
		Detections: out,
		RuntimeMS:  simclock.DetectMS(f.W, f.H, scale),
		proposals:  proposals,
		probBuf:    arena.buf,
	}
	return res
}

// Recycle returns a feature map obtained from DetectWithFeatures or
// Features to the detector's buffer pool. The tensor must not be used
// afterwards.
func (d *Detector) Recycle(t *tensor.Tensor) { d.backbone.Recycle(t) }

// DetectWithFeatures runs Detect and additionally rasterises the frame at
// the test scale and extracts deep features through the frozen backbone,
// stacking the detection-response planes from this very detection pass.
func (d *Detector) DetectWithFeatures(f *synth.Frame, scale int) *Result {
	r := d.Detect(f, scale)
	r.Features = d.features(f, scale, r)
	return r
}

// DetectBatch runs DetectWithFeatures for a batch of (frame, scale) pairs,
// sharing one batched backbone pass (Backbone.ExtractBatch) across all
// rendered images of the same size. Every Result — detections, runtime
// model and feature map — is bit-identical to len(frames) sequential
// DetectWithFeatures calls in the same order: detection and feature
// painting already run per frame, and the batched conv kernels are
// property-tested bit-identical to the per-image ones. Like
// DetectWithFeatures it drives the backbone, so it is not safe for
// concurrent use on one detector.
func (d *Detector) DetectBatch(frames []*synth.Frame, scales []int) []*Result {
	if len(frames) != len(scales) {
		panic("rfcn: DetectBatch got mismatched frames and scales")
	}
	rs := make([]*Result, len(frames))
	ims := make([]*raster.Image, len(frames))
	for i, f := range frames {
		rs[i] = d.Detect(f, scales[i])
		ims[i] = d.renderForScale(f, scales[i])
	}
	apps := d.backbone.ExtractBatch(ims)
	for i, r := range rs {
		r.Features = d.assembleFeatures(frames[i], scales[i], r, apps[i])
	}
	return rs
}

// Features rasterises frame f at the given test scale and returns the deep
// feature map (FeatureChannels × H/8 × W/8 of the rendered image): the
// frozen backbone's appearance planes plus size-selective response planes
// painted from the detector's outputs at this scale — everything a
// deployed system has available when Algorithm 1 regresses the next scale.
func (d *Detector) Features(f *synth.Frame, scale int) *tensor.Tensor {
	return d.features(f, scale, d.Detect(f, scale))
}

func (d *Detector) features(f *synth.Frame, scale int, r *Result) *tensor.Tensor {
	im := d.renderForScale(f, scale)
	app := d.backbone.Extract(im)
	return d.assembleFeatures(f, scale, r, app)
}

// renderShortFor maps a test scale to the rendered shortest side (the
// raster works at 1/RenderDiv of the test resolution, floored at 16).
func (d *Detector) renderShortFor(scale int) int {
	renderShort := scale / d.Data.RenderDiv
	if renderShort < 16 {
		renderShort = 16
	}
	return renderShort
}

// RenderSize reports the rendered image dimensions the backbone would see
// for frame f at the given test scale, without rendering anything. Two
// (frame, scale) pairs with equal RenderSize take the stacked path through
// one ExtractBatch group — the coalescing key the serving layer's
// cross-stream batcher uses. Pure arithmetic; safe for concurrent use.
func (d *Detector) RenderSize(f *synth.Frame, scale int) (h, w int) {
	rw, rh := f.RenderDims(d.renderShortFor(scale), MaxLongSide*d.Data.RenderDiv, d.Data.RenderDiv)
	return rh, rw
}

// renderForScale rasterises frame f at the test scale's render resolution.
func (d *Detector) renderForScale(f *synth.Frame, scale int) *raster.Image {
	return f.Render(d.renderShortFor(scale), MaxLongSide*d.Data.RenderDiv, d.Data.RenderDiv)
}

// assembleFeatures stacks the detection-response planes from result r on
// top of the backbone's appearance map app (which it consumes — the tensor
// is recycled before returning) and returns the full deep-feature map.
func (d *Detector) assembleFeatures(f *synth.Frame, scale int, r *Result, app *tensor.Tensor) *tensor.Tensor {
	renderShort := d.renderShortFor(scale)
	h, w := app.Dim(1), app.Dim(2)
	out := d.backbone.pool.GetTensor(FeatureChannels, h, w)
	copy(out.Data()[:backboneChannels*h*w], app.Data())
	clear(out.Data()[backboneChannels*h*w:])
	d.backbone.Recycle(app)

	// Paint the detection-response planes. Boxes are converted from native
	// coordinates to feature-map cells (render factor / backbone stride);
	// the channels encode apparent size, confidence, objectness density and
	// area coverage — the quantities R-FCN's position-sensitive maps carry.
	renderFactor := raster.ScaleFactor(f.W, f.H, renderShort*d.Data.RenderDiv, MaxLongSide*d.Data.RenderDiv) / float64(d.Data.RenderDiv)
	testFactor := scaleToFactor(f, scale)
	cell := renderFactor / backboneStride
	od := out.Data()
	plane := func(c int) []float32 { return od[c*h*w : (c+1)*h*w] }
	sizeP, scoreP, objP, areaP := plane(backboneChannels), plane(backboneChannels+1), plane(backboneChannels+2), plane(backboneChannels+3)
	for _, b := range r.proposals {
		x0 := clampInt(int(b.X1*cell), 0, w-1)
		x1 := clampInt(int(b.X2*cell), 0, w-1)
		y0 := clampInt(int(b.Y1*cell), 0, h-1)
		y1 := clampInt(int(b.Y2*cell), 0, h-1)
		apparent := float32(b.Shortest() * testFactor / 330.0 * 10)
		areaFrac := float32(b.W() * b.H() * cell * cell / float64(h*w) * 20)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				i := y*w + x
				if apparent > sizeP[i] {
					sizeP[i] = apparent
				}
				if areaFrac > areaP[i] {
					areaP[i] = areaFrac
				}
			}
		}
	}
	for _, det := range r.Detections {
		x0 := clampInt(int(det.Box.X1*cell), 0, w-1)
		x1 := clampInt(int(det.Box.X2*cell), 0, w-1)
		y0 := clampInt(int(det.Box.Y1*cell), 0, h-1)
		y1 := clampInt(int(det.Box.Y2*cell), 0, h-1)
		// Magnitudes are balanced so the globally-pooled detection planes
		// land in the same range as the appearance planes; otherwise the
		// regressor's shared learning rate under-trains these channels.
		score := float32(det.Score * 5)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				i := y*w + x
				if score > scoreP[i] {
					scoreP[i] = score
				}
				objP[i] += 2
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// quality returns the probability the detector fires on obj at this scale.
// BaseQuality is a *target AP* calibration; the concave lift compensates
// for the AP the evaluation pipeline inevitably loses to false positives,
// duplicates and misclassification, so emergent per-class AP lands near
// BaseQuality while the size response keeps its full scale sensitivity.
func (d *Detector) quality(obj synth.Object, p synth.ClassProfile, f *synth.Frame, factor float64) float64 {
	apparent := obj.Box.Shortest() * factor
	q := math.Pow(p.BaseQuality, 0.35) * sizeResponse(apparent, d.TrainScales) * blurPenalty(f.Blur*factor)
	q *= scaleFamiliarity(testScaleOf(f, factor), d.TrainScales)
	if d.MultiScale() {
		q *= 1 - msQualityTax - 0.5*p.MSConfusion
	}
	// Sensor faults degrade the response (overexposure washes objects out,
	// noise bursts drown them) in proportion to severity.
	q *= f.Fault.QualityFactor()
	return clamp01(q)
}

// testScaleOf recovers the tested shortest-side scale from the resize
// factor (the inverse of scaleToFactor, exact when the longest-side cap
// did not bind).
func testScaleOf(f *synth.Frame, factor float64) int {
	short := f.W
	if f.H < short {
		short = f.H
	}
	return int(math.Round(float64(short) * factor))
}

// scaleToFactor maps a native frame to the resize factor for a test scale.
func scaleToFactor(f *synth.Frame, scale int) float64 {
	short := f.W
	if f.H < short {
		short = f.H
	}
	fac := float64(scale) / float64(short)
	long := f.W
	if f.H > long {
		long = f.H
	}
	if float64(long)*fac > MaxLongSide {
		fac = MaxLongSide / float64(long)
	}
	return fac
}

// classProbs builds a classifier probability vector: index 0 is background,
// index 1+c is class c. The predicted class receives the score mass; the
// remainder splits between background and the other classes.
func classProbs(arena *probArena, nClasses, class int, score float64) []float64 {
	probs := arena.take(nClasses + 1)
	rest := 1 - score
	probs[0] = rest * 0.6
	other := rest * 0.4 / float64(nClasses-1)
	for c := 0; c < nClasses; c++ {
		if c == class {
			probs[1+c] = score
		} else {
			probs[1+c] = other
		}
	}
	return probs
}

// matchProbs finds the probability vector of the raw detection that
// survived NMS (NMS copies values, so match on content).
func matchProbs(raw []detect.Detection, probs [][]float64, k detect.Detection) []float64 {
	for i, r := range raw {
		if r.Box == k.Box && r.Class == k.Class && r.Score == k.Score {
			return probs[i]
		}
	}
	return nil
}

func overlapsGT(b detect.Box, f *synth.Frame) bool {
	for _, o := range f.Objects {
		if detect.IoU(b, o.Box) > 0.3 {
			return true
		}
	}
	return false
}

// fpClass picks a false positive's class: biased towards classes present in
// the frame (context confusions), otherwise uniform.
func fpClass(f *synth.Frame, nClasses int, u float64) int {
	if u < 0.6 && len(f.Objects) > 0 {
		return f.Objects[int(u*1e6)%len(f.Objects)].Class
	}
	return int(u*1e6) % nClasses
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func frac(v float64) float64 { return v - math.Floor(v) }
