package scaleopt

import (
	"math"

	"adascale/internal/detect"
	"adascale/internal/rfcn"
)

// This file implements the *naive* scale comparison the paper argues
// against (Sec. 3.1): summing Eq. 1 over all predicted boxes without
// foreground-count equalisation. Because background boxes contribute no
// regression loss and foreground boxes contribute a positive one, the naive
// total "will favor the image scale with fewer foreground bounding boxes" —
// i.e. scales that simply detect less. It exists so the ablation
// (experiments and tests) can demonstrate the bias the paper's metric
// fixes.

// NaiveLoss sums Eq. 1 over every detection of the result, foreground and
// background alike.
func NaiveLoss(r *rfcn.Result, gts []detect.GroundTruth, lambda float64) float64 {
	assign := detect.AssignForeground(r.PlainDetections(), gts)
	var sum float64
	for i, d := range r.Detections {
		sum += BoxLoss(d, gts, assign[i], lambda)
	}
	return sum
}

// CompareNaive selects the scale minimising the naive total loss. Results
// order follows the input; ties resolve to the earlier entry.
func CompareNaive(results []*rfcn.Result, gts []detect.GroundTruth, lambda float64) ([]Evaluation, int) {
	evals := make([]Evaluation, len(results))
	bestIdx, bestLoss := 0, math.Inf(1)
	for i, r := range results {
		fg := 0
		assign := detect.AssignForeground(r.PlainDetections(), gts)
		for _, a := range assign {
			if a >= 0 {
				fg++
			}
		}
		loss := NaiveLoss(r, gts, lambda)
		evals[i] = Evaluation{Scale: r.Scale, Foreground: fg, Loss: loss}
		if loss < bestLoss {
			bestIdx, bestLoss = i, loss
		}
	}
	return evals, evals[bestIdx].Scale
}
