package scaleopt

import (
	"testing"

	"adascale/internal/detect"
	"adascale/internal/rfcn"
	"adascale/internal/synth"
)

// TestNaiveMetricFavoursFewerForegrounds reproduces the failure mode the
// paper designs around: scale A detects both objects well (two foreground
// boxes, each contributing cls+reg loss); scale B detects only one. The
// naive sum rewards B for detecting less; the equalised metric does not.
func TestNaiveMetricFavoursFewerForegrounds(t *testing.T) {
	gts := []detect.GroundTruth{
		{Box: detect.Box{X1: 0, Y1: 0, X2: 100, Y2: 100}, Class: 0},
		{Box: detect.Box{X1: 300, Y1: 300, X2: 400, Y2: 400}, Class: 1},
	}
	good := func(b detect.Box, class int) rfcn.RawDetection { return det(b, class, 0.9, 3) }

	rBoth := buildResult(600,
		good(detect.Box{X1: 1, Y1: 1, X2: 100, Y2: 100}, 0),
		good(detect.Box{X1: 301, Y1: 301, X2: 400, Y2: 400}, 1),
	)
	rOne := buildResult(240,
		good(detect.Box{X1: 1, Y1: 1, X2: 100, Y2: 100}, 0),
	)

	_, naiveBest := CompareNaive([]*rfcn.Result{rBoth, rOne}, gts, DefaultLambda)
	if naiveBest != 240 {
		t.Fatalf("naive metric should favour the under-detecting scale, picked %d", naiveBest)
	}

	_, fairBest := Compare([]*rfcn.Result{rBoth, rOne}, gts, DefaultLambda)
	if fairBest != 600 {
		t.Fatalf("equalised metric should not punish detecting both objects, picked %d", fairBest)
	}
}

// TestNaiveVsEqualisedOnDataset: across a synthetic corpus the naive metric
// must systematically choose smaller scales than the paper's metric (the
// bias direction the paper states).
func TestNaiveVsEqualisedOnDataset(t *testing.T) {
	cfg := synth.VIDLike(41)
	cfg.FramesPerSnippet = 4
	ds, err := synth.Generate(cfg, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	detr := rfcn.NewMS(&ds.Config)
	scales := []int{600, 480, 360, 240}
	var naiveSum, fairSum float64
	n := 0
	for _, f := range synth.Frames(ds.Train) {
		results := make([]*rfcn.Result, len(scales))
		for i, s := range scales {
			results[i] = detr.Detect(f, s)
		}
		gts := f.GroundTruth()
		_, nb := CompareNaive(results, gts, DefaultLambda)
		_, fb := Compare(results, gts, DefaultLambda)
		naiveSum += float64(nb)
		fairSum += float64(fb)
		n++
	}
	if naiveSum/float64(n) >= fairSum/float64(n) {
		t.Fatalf("naive metric mean scale %.0f should sit below the equalised metric's %.0f",
			naiveSum/float64(n), fairSum/float64(n))
	}
}

func TestNaiveLossPositive(t *testing.T) {
	gts := []detect.GroundTruth{{Box: detect.Box{X1: 0, Y1: 0, X2: 50, Y2: 50}, Class: 0}}
	r := buildResult(600, det(gts[0].Box, 0, 0.8, 3))
	if NaiveLoss(r, gts, DefaultLambda) <= 0 {
		t.Fatal("naive loss of a non-empty result must be positive")
	}
	if NaiveLoss(buildResult(600), gts, DefaultLambda) != 0 {
		t.Fatal("empty result has zero naive loss (the bias in miniature)")
	}
}
