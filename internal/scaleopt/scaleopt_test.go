package scaleopt

import (
	"math"
	"testing"

	"adascale/internal/detect"
	"adascale/internal/raster"
	"adascale/internal/rfcn"
	"adascale/internal/synth"
)

func det(box detect.Box, class int, score float64, nClasses int) rfcn.RawDetection {
	probs := make([]float64, nClasses+1)
	rest := (1 - score) / float64(nClasses)
	for i := range probs {
		probs[i] = rest
	}
	probs[1+class] = score
	probs[0] += rest*float64(nClasses) - rest*float64(nClasses) // keep simple; normalise below
	var sum float64
	for _, p := range probs {
		sum += p
	}
	for i := range probs {
		probs[i] /= sum
	}
	return rfcn.RawDetection{
		Detection:  detect.Detection{Box: box, Class: class, Score: score},
		ClassProbs: probs,
	}
}

func TestFastRCNNOffsetsZeroForPerfect(t *testing.T) {
	b := detect.Box{X1: 10, Y1: 20, X2: 50, Y2: 90}
	for _, v := range FastRCNNOffsets(b, b) {
		if v != 0 {
			t.Fatalf("perfect prediction must have zero offsets, got %v", v)
		}
	}
}

func TestFastRCNNOffsetsDirections(t *testing.T) {
	pred := detect.Box{X1: 0, Y1: 0, X2: 10, Y2: 10}
	gt := detect.Box{X1: 5, Y1: 0, X2: 15, Y2: 10} // shifted right
	off := FastRCNNOffsets(pred, gt)
	if off[0] <= 0 {
		t.Fatalf("tx should be positive for a rightward shift, got %v", off[0])
	}
	if off[2] != 0 || off[3] != 0 {
		t.Fatal("same-size boxes must have zero log-size offsets")
	}
	big := detect.Box{X1: 0, Y1: 0, X2: 20, Y2: 20}
	off = FastRCNNOffsets(pred, big)
	if math.Abs(off[2]-math.Log(2)) > 1e-12 {
		t.Fatalf("tw = %v, want ln 2", off[2])
	}
}

func TestBoxLossBackgroundHasNoRegression(t *testing.T) {
	gts := []detect.GroundTruth{{Box: detect.Box{X1: 0, Y1: 0, X2: 10, Y2: 10}, Class: 2}}
	d := det(detect.Box{X1: 500, Y1: 500, X2: 520, Y2: 520}, 1, 0.9, 5)
	bg := BoxLoss(d, gts, -1, DefaultLambda)
	// Background loss is -log p(background); a confident wrong box has
	// low background probability, hence high loss.
	if bg <= 0 {
		t.Fatalf("background loss %v must be positive", bg)
	}
	dPerfect := det(gts[0].Box, 2, 0.9, 5)
	fg := BoxLoss(dPerfect, gts, 0, DefaultLambda)
	// Perfect localisation: regression term 0, so loss is pure cls.
	if math.Abs(fg-(-math.Log(dPerfect.ClassProbs[3]))) > 1e-9 {
		t.Fatalf("perfect fg box loss %v should equal its cls loss", fg)
	}
}

func TestBoxLossPenalisesBadLocalisation(t *testing.T) {
	gts := []detect.GroundTruth{{Box: detect.Box{X1: 0, Y1: 0, X2: 100, Y2: 100}, Class: 0}}
	good := det(detect.Box{X1: 1, Y1: 1, X2: 99, Y2: 99}, 0, 0.9, 3)
	bad := det(detect.Box{X1: 20, Y1: 20, X2: 100, Y2: 100}, 0, 0.9, 3)
	lg := BoxLoss(good, gts, 0, DefaultLambda)
	lb := BoxLoss(bad, gts, 0, DefaultLambda)
	if lb <= lg {
		t.Fatalf("worse localisation must cost more: %v vs %v", lb, lg)
	}
	// λ = 0 removes the regression term entirely.
	if BoxLoss(bad, gts, 0, 0) != BoxLoss(good, gts, 0, 0) {
		t.Fatal("with λ=0, equally-confident boxes must tie")
	}
}

func TestBoxLossPenalisesWrongClass(t *testing.T) {
	gts := []detect.GroundTruth{{Box: detect.Box{X1: 0, Y1: 0, X2: 100, Y2: 100}, Class: 0}}
	right := det(gts[0].Box, 0, 0.8, 3)
	wrong := det(gts[0].Box, 1, 0.8, 3)
	if BoxLoss(wrong, gts, 0, 1) <= BoxLoss(right, gts, 0, 1) {
		t.Fatal("wrong class must cost more")
	}
}

// buildResult fabricates a detector result at a given scale.
func buildResult(scale int, dets ...rfcn.RawDetection) *rfcn.Result {
	return &rfcn.Result{Scale: scale, Detections: dets}
}

func TestCompareEqualisesForegroundCount(t *testing.T) {
	gts := []detect.GroundTruth{
		{Box: detect.Box{X1: 0, Y1: 0, X2: 100, Y2: 100}, Class: 0},
		{Box: detect.Box{X1: 300, Y1: 300, X2: 400, Y2: 400}, Class: 1},
	}
	// Scale 600 finds both objects but with sloppy boxes; scale 240 finds
	// only one, nearly perfectly. Without equalisation 600's total loss
	// (2 boxes) would beat nothing; with n_min = 1, each scale is judged by
	// its single best box and 240 must win.
	r600 := buildResult(600,
		det(detect.Box{X1: 10, Y1: 10, X2: 100, Y2: 100}, 0, 0.6, 3),
		det(detect.Box{X1: 310, Y1: 310, X2: 400, Y2: 400}, 1, 0.6, 3),
	)
	r240 := buildResult(240,
		det(detect.Box{X1: 0, Y1: 0, X2: 100, Y2: 100}, 0, 0.95, 3),
	)
	evals, best := Compare([]*rfcn.Result{r600, r240}, gts, DefaultLambda)
	if evals[0].Foreground != 2 || evals[1].Foreground != 1 {
		t.Fatalf("foreground counts %d/%d", evals[0].Foreground, evals[1].Foreground)
	}
	if best != 240 {
		t.Fatalf("optimal scale %d, want 240 (evals %+v)", best, evals)
	}
	// Each loss must be over exactly n_min = 1 box, so both are single-box
	// losses — the 600 loss must be that of its better box only.
	if evals[0].Loss >= evals[1].Loss*50 {
		t.Fatalf("600 loss %v implausibly large for a single box", evals[0].Loss)
	}
}

func TestCompareZeroForegroundScaleExcluded(t *testing.T) {
	gts := []detect.GroundTruth{{Box: detect.Box{X1: 0, Y1: 0, X2: 100, Y2: 100}, Class: 0}}
	rGood := buildResult(600, det(detect.Box{X1: 0, Y1: 0, X2: 100, Y2: 100}, 0, 0.9, 3))
	rEmpty := buildResult(128)
	evals, best := Compare([]*rfcn.Result{rGood, rEmpty}, gts, DefaultLambda)
	if best != 600 {
		t.Fatalf("optimal = %d, want 600", best)
	}
	if !math.IsInf(evals[1].Loss, 1) {
		t.Fatal("empty scale must have +Inf loss")
	}
}

func TestCompareAllEmptyFallsBackToLargest(t *testing.T) {
	gts := []detect.GroundTruth{{Box: detect.Box{X1: 0, Y1: 0, X2: 100, Y2: 100}, Class: 0}}
	_, best := Compare([]*rfcn.Result{buildResult(360), buildResult(600), buildResult(128)}, gts, DefaultLambda)
	if best != 600 {
		t.Fatalf("fallback = %d, want the largest scale", best)
	}
}

func TestForegroundLossesSorted(t *testing.T) {
	gts := []detect.GroundTruth{
		{Box: detect.Box{X1: 0, Y1: 0, X2: 100, Y2: 100}, Class: 0},
		{Box: detect.Box{X1: 300, Y1: 300, X2: 400, Y2: 400}, Class: 1},
	}
	r := buildResult(600,
		det(detect.Box{X1: 20, Y1: 20, X2: 100, Y2: 100}, 0, 0.5, 3), // sloppy but IoU 0.64
		det(detect.Box{X1: 300, Y1: 300, X2: 400, Y2: 400}, 1, 0.95, 3),
		det(detect.Box{X1: 900, Y1: 900, X2: 950, Y2: 950}, 0, 0.9, 3), // background: excluded
	)
	losses := ForegroundLosses(r, gts, DefaultLambda)
	if len(losses) != 2 {
		t.Fatalf("foreground losses = %d, want 2", len(losses))
	}
	if losses[0] > losses[1] {
		t.Fatal("losses must be sorted ascending")
	}
}

// End-to-end: for a frame holding one over-large, high-texture object the
// metric should prefer a downscaled image, and for a small object it should
// keep a large scale — the paper's two improvement sources.
func TestOptimalScaleEndToEnd(t *testing.T) {
	cfg := synth.VIDLike(77)
	cfg.FramesPerSnippet = 30
	cfg.MaxObjects = 1
	ds, _ := synth.Generate(cfg, 1, 0)
	detector := rfcn.NewMS(&ds.Config)
	scales := []int{600, 480, 360, 240, 128}

	place := func(f *synth.Frame, size float64) {
		f.Clutter = 0.5
		f.Blur = 0
		f.Objects = []synth.Object{{
			ID: 0, Class: 15, Texture: raster.TextureChecker, Intensity: 0.8,
			Box: detect.Box{X1: 640 - size/2, Y1: 360 - size/2, X2: 640 + size/2, Y2: 360 + size/2},
		}}
	}

	sumLarge, sumSmall, n := 0.0, 0.0, 0
	for i := range ds.Train[0].Frames {
		f := &ds.Train[0].Frames[i]
		place(f, 600) // apparent 500 at scale 600 — over-large
		bigOpt, _ := OptimalScale(detector, f, scales, DefaultLambda)
		place(f, 100) // apparent 83 at scale 600 — needs resolution
		smallOpt, _ := OptimalScale(detector, f, scales, DefaultLambda)
		sumLarge += float64(bigOpt)
		sumSmall += float64(smallOpt)
		n++
	}
	if sumLarge/float64(n) >= sumSmall/float64(n) {
		t.Fatalf("mean optimal scale for over-large objects (%v) should be below small objects (%v)",
			sumLarge/float64(n), sumSmall/float64(n))
	}
}
