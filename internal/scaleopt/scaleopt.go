// Package scaleopt implements Section 3.1 of the paper: the loss-based
// metric that decides which test scale is optimal for an image.
//
// Mean average precision is too sparse to compare scales on a single image,
// so the paper scores each scale with the detector's training loss (Eq. 1,
// classification + λ·[u≥1]·bounding-box regression). Because the plain loss
// assigns background boxes zero regression loss, it would favour scales
// that simply produce fewer foreground boxes; the paper's fix — implemented
// here exactly — compares every scale on the *same number* of foreground
// boxes: n_min, the minimum foreground count across scales, taking each
// scale's n_min lowest-loss foreground boxes (Fig. 3). The optimal scale is
// the argmin of that equalised loss (Eq. 2).
package scaleopt

import (
	"math"
	"sort"

	"adascale/internal/detect"
	"adascale/internal/nn"
	"adascale/internal/rfcn"
	"adascale/internal/synth"
)

// DefaultLambda is the regression-loss weight λ in Eq. 1; Fast R-CNN and
// R-FCN use 1.
const DefaultLambda = 1.0

// BoxLoss evaluates Eq. 1 for one predicted box. gtIndex is the foreground
// assignment (index into gts, or -1 for background). For background boxes
// only the classification term contributes ([u ≥ 1] gates regression).
func BoxLoss(d rfcn.RawDetection, gts []detect.GroundTruth, gtIndex int, lambda float64) float64 {
	u := 0 // background label
	if gtIndex >= 0 {
		u = 1 + gts[gtIndex].Class
	}
	cls := nn.CrossEntropy(d.ClassProbs, u)
	if gtIndex < 0 {
		return cls
	}
	reg := 0.0
	for _, t := range FastRCNNOffsets(d.Box, gts[gtIndex].Box) {
		reg += nn.SmoothL1Scalar(t)
	}
	return cls + lambda*reg
}

// FastRCNNOffsets returns the (tx, ty, tw, th) regression targets between a
// predicted box and its ground truth, in the Fast R-CNN parameterisation.
// A perfect prediction has all-zero offsets, hence zero regression loss.
func FastRCNNOffsets(pred, gt detect.Box) [4]float64 {
	pw, ph := math.Max(pred.W(), 1), math.Max(pred.H(), 1)
	gw, gh := math.Max(gt.W(), 1), math.Max(gt.H(), 1)
	pcx, pcy := pred.Center()
	gcx, gcy := gt.Center()
	return [4]float64{
		(gcx - pcx) / pw,
		(gcy - pcy) / ph,
		math.Log(gw / pw),
		math.Log(gh / ph),
	}
}

// ForegroundLosses returns the Eq. 1 losses of the result's foreground
// boxes (IoU ≥ 0.5 with some ground truth), sorted ascending.
func ForegroundLosses(r *rfcn.Result, gts []detect.GroundTruth, lambda float64) []float64 {
	assign := detect.AssignForeground(r.PlainDetections(), gts)
	var losses []float64
	for i, d := range r.Detections {
		if assign[i] >= 0 {
			losses = append(losses, BoxLoss(d, gts, assign[i], lambda))
		}
	}
	sort.Float64s(losses)
	return losses
}

// Evaluation is the per-scale outcome of the metric for one image.
type Evaluation struct {
	Scale      int
	Foreground int     // n_m: foreground box count at this scale
	Loss       float64 // L̂ᵢᵐ over the n_min lowest-loss foreground boxes
}

// Compare computes L̂ᵢᵐ for each scale from precomputed detector results and
// returns the evaluations in the order of results plus the optimal scale.
//
// Deviation from the paper (which leaves the corner case unspecified): a
// scale with zero foreground boxes cannot be compared by the metric and is
// assigned +Inf loss; n_min is then taken over the scales that detected
// anything. If no scale produced a foreground box the largest scale is
// returned, the conservative choice for recovering the object.
func Compare(results []*rfcn.Result, gts []detect.GroundTruth, lambda float64) ([]Evaluation, int) {
	evals := make([]Evaluation, len(results))
	perScale := make([][]float64, len(results))
	nMin := math.MaxInt
	for i, r := range results {
		perScale[i] = ForegroundLosses(r, gts, lambda)
		evals[i] = Evaluation{Scale: r.Scale, Foreground: len(perScale[i])}
		if n := len(perScale[i]); n > 0 && n < nMin {
			nMin = n
		}
	}
	if nMin == math.MaxInt {
		best := 0
		for i, e := range evals {
			evals[i].Loss = math.Inf(1)
			if e.Scale > evals[best].Scale {
				best = i
			}
		}
		return evals, evals[best].Scale
	}
	bestIdx, bestLoss := -1, math.Inf(1)
	for i := range results {
		if len(perScale[i]) == 0 {
			evals[i].Loss = math.Inf(1)
			continue
		}
		sum := 0.0
		for _, l := range perScale[i][:nMin] {
			sum += l
		}
		evals[i].Loss = sum
		// Strict less-than: ties resolve to the earlier (by convention the
		// larger, detector-friendlier) scale in the results order.
		if sum < bestLoss {
			bestIdx, bestLoss = i, sum
		}
	}
	return evals, evals[bestIdx].Scale
}

// OptimalScale runs the detector on frame f at every scale in scales and
// returns the metric's optimal scale (Eq. 2) with the per-scale
// evaluations. scales are evaluated in the given order; list larger scales
// first so ties resolve conservatively.
func OptimalScale(det *rfcn.Detector, f *synth.Frame, scales []int, lambda float64) (int, []Evaluation) {
	results := make([]*rfcn.Result, len(scales))
	for i, s := range scales {
		results[i] = det.Detect(f, s)
	}
	evals, best := Compare(results, f.GroundTruth(), lambda)
	return best, evals
}
