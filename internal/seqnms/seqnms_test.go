package seqnms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adascale/internal/detect"
)

func box(x, y, s float64) detect.Box {
	return detect.Box{X1: x, Y1: y, X2: x + s, Y2: y + s}
}

func TestChainAverageRescoring(t *testing.T) {
	// One object tracked over three frames with scores 0.9 / 0.3 / 0.6:
	// average rescoring lifts the weak middle member to 0.6.
	frames := [][]detect.Detection{
		{{Box: box(0, 0, 20), Class: 1, Score: 0.9}},
		{{Box: box(1, 0, 20), Class: 1, Score: 0.3}},
		{{Box: box(2, 0, 20), Class: 1, Score: 0.6}},
	}
	out := Apply(frames, Options{})
	for tIdx, dets := range out {
		if len(dets) != 1 {
			t.Fatalf("frame %d has %d detections", tIdx, len(dets))
		}
		if math.Abs(dets[0].Score-0.6) > 1e-12 {
			t.Fatalf("frame %d score %v, want chain average 0.6", tIdx, dets[0].Score)
		}
	}
}

func TestMaxRescoring(t *testing.T) {
	frames := [][]detect.Detection{
		{{Box: box(0, 0, 20), Class: 1, Score: 0.9}},
		{{Box: box(1, 0, 20), Class: 1, Score: 0.3}},
	}
	out := Apply(frames, Options{Rescoring: RescoreMax})
	if out[1][0].Score != 0.9 {
		t.Fatalf("max rescoring gave %v", out[1][0].Score)
	}
}

func TestUnlinkedDetectionsKeepScores(t *testing.T) {
	// Flickering false positives at unrelated positions never link.
	frames := [][]detect.Detection{
		{{Box: box(0, 0, 10), Class: 0, Score: 0.4}},
		{{Box: box(500, 500, 10), Class: 0, Score: 0.5}},
	}
	out := Apply(frames, Options{})
	if out[0][0].Score != 0.4 || out[1][0].Score != 0.5 {
		t.Fatal("unlinked detections must keep their scores")
	}
}

func TestDifferentClassesNeverLink(t *testing.T) {
	frames := [][]detect.Detection{
		{{Box: box(0, 0, 20), Class: 0, Score: 0.9}},
		{{Box: box(0, 0, 20), Class: 1, Score: 0.1}},
	}
	out := Apply(frames, Options{})
	if out[1][0].Score != 0.1 {
		t.Fatal("cross-class link changed a score")
	}
}

func TestSuppressionRemovesOverlaps(t *testing.T) {
	// A strong track plus a weak same-class near-duplicate in frame 1:
	// once the track is selected, the duplicate is suppressed entirely.
	frames := [][]detect.Detection{
		{{Box: box(0, 0, 20), Class: 1, Score: 0.9},
			{Box: box(2, 2, 20), Class: 1, Score: 0.2}},
		{{Box: box(1, 0, 20), Class: 1, Score: 0.8}},
	}
	out := Apply(frames, Options{})
	if len(out[0]) != 1 {
		t.Fatalf("frame 0 kept %d detections, want 1 (duplicate suppressed)", len(out[0]))
	}
}

func TestBestChainWinsOverGreedyFrame(t *testing.T) {
	// Frame-local best (0.95 singleton) vs a 3-frame track summing higher:
	// the DP must pick the track first, but the singleton must survive
	// (it does not overlap the track).
	frames := [][]detect.Detection{
		{{Box: box(0, 0, 20), Class: 1, Score: 0.5}, {Box: box(200, 200, 20), Class: 1, Score: 0.95}},
		{{Box: box(1, 0, 20), Class: 1, Score: 0.5}},
		{{Box: box(2, 0, 20), Class: 1, Score: 0.5}},
	}
	out := Apply(frames, Options{})
	// Track members average to 0.5; singleton stays 0.95.
	found := false
	for _, d := range out[0] {
		if d.Score == 0.95 {
			found = true
		}
	}
	if !found {
		t.Fatal("non-overlapping singleton must survive")
	}
	if out[2][0].Score != 0.5 {
		t.Fatalf("track end score %v", out[2][0].Score)
	}
}

func TestEmptyAndSingleFrame(t *testing.T) {
	if out := Apply(nil, Options{}); len(out) != 0 {
		t.Fatal("nil input must give empty output")
	}
	out := Apply([][]detect.Detection{{}}, Options{})
	if len(out) != 1 || len(out[0]) != 0 {
		t.Fatal("empty frame must stay empty")
	}
	single := Apply([][]detect.Detection{{{Box: box(0, 0, 10), Class: 0, Score: 0.7}}}, Options{})
	if single[0][0].Score != 0.7 {
		t.Fatal("singleton keeps its score")
	}
}

func TestInputNotMutated(t *testing.T) {
	frames := [][]detect.Detection{
		{{Box: box(0, 0, 20), Class: 1, Score: 0.9}},
		{{Box: box(1, 0, 20), Class: 1, Score: 0.3}},
	}
	Apply(frames, Options{})
	if frames[1][0].Score != 0.3 {
		t.Fatal("Apply must not mutate its input")
	}
}

// Properties: frame count preserved, output counts never exceed input,
// scores stay within [min, max] of the input scores, output sorted.
func TestApplyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nF := 1 + rng.Intn(6)
		frames := make([][]detect.Detection, nF)
		lo, hi := 1.0, 0.0
		for t := range frames {
			for k := 0; k < rng.Intn(5); k++ {
				s := rng.Float64()
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
				frames[t] = append(frames[t], detect.Detection{
					Box:   box(rng.Float64()*100, rng.Float64()*100, 10+rng.Float64()*20),
					Class: rng.Intn(2), Score: s,
				})
			}
		}
		out := Apply(frames, Options{})
		if len(out) != nF {
			return false
		}
		for t := range out {
			if len(out[t]) > len(frames[t]) {
				return false
			}
			for i, d := range out[t] {
				if d.Score < lo-1e-9 || d.Score > hi+1e-9 {
					return false
				}
				if i > 0 && out[t][i-1].Score < d.Score {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.LinkIoU != DefaultLinkIoU || o.SuppressIoU != DefaultSuppressIoU {
		t.Fatalf("defaults not applied: %+v", o)
	}
	// Custom thresholds survive.
	o2 := Options{LinkIoU: 0.7, SuppressIoU: 0.4}.withDefaults()
	if o2.LinkIoU != 0.7 || o2.SuppressIoU != 0.4 {
		t.Fatal("custom thresholds overwritten")
	}
}
