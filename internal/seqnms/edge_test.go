package seqnms

import (
	"math"
	"reflect"
	"testing"

	"adascale/internal/detect"
)

// TestApplyDegenerateInputs drives Apply through the shapes a real pipeline
// produces at its edges: no snippet at all, frames with no detections, and
// a single-frame snippet where no temporal link is possible.
func TestApplyDegenerateInputs(t *testing.T) {
	cases := []struct {
		name   string
		frames [][]detect.Detection
	}{
		{"nil snippet", nil},
		{"empty snippet", [][]detect.Detection{}},
		{"empty frames", [][]detect.Detection{{}, {}, {}}},
		{"nil frames", [][]detect.Detection{nil, nil}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := Apply(tc.frames, Options{})
			if len(out) != len(tc.frames) {
				t.Fatalf("frame count changed: %d → %d", len(tc.frames), len(out))
			}
			for i, dets := range out {
				if len(dets) != 0 {
					t.Fatalf("frame %d invented %d detections", i, len(dets))
				}
			}
		})
	}
}

// TestApplySingleFrame: with one frame every chain has length 1, so average
// and max rescoring both leave scores untouched and nothing that does not
// overlap gets suppressed.
func TestApplySingleFrame(t *testing.T) {
	frames := [][]detect.Detection{{
		{Box: box(0, 0, 20), Class: 1, Score: 0.9},
		{Box: box(100, 100, 20), Class: 2, Score: 0.4},
	}}
	for _, mode := range []Rescoring{RescoreAverage, RescoreMax} {
		out := Apply(frames, Options{Rescoring: mode})
		if len(out) != 1 || len(out[0]) != 2 {
			t.Fatalf("mode %v: got %d frames / %d detections", mode, len(out), len(out[0]))
		}
		if math.Abs(out[0][0].Score-0.9) > 1e-12 || math.Abs(out[0][1].Score-0.4) > 1e-12 {
			t.Fatalf("mode %v: singleton chains changed scores: %+v", mode, out[0])
		}
	}
}

// TestApplyTiedScoresDeterministic: detections with identical scores must
// come out in a stable order (the sort is stable over the input order), and
// repeated runs over the same input must agree exactly — the property the
// golden conformance traces depend on.
func TestApplyTiedScoresDeterministic(t *testing.T) {
	frames := [][]detect.Detection{{
		{Box: box(0, 0, 20), Class: 1, Score: 0.5},
		{Box: box(200, 0, 20), Class: 2, Score: 0.5},
		{Box: box(400, 0, 20), Class: 3, Score: 0.5},
	}}
	first := Apply(frames, Options{})
	if len(first[0]) != 3 {
		t.Fatalf("disjoint tied detections lost: %d of 3 kept", len(first[0]))
	}
	for i, want := range []int{1, 2, 3} {
		if first[0][i].Class != want {
			t.Fatalf("tied scores reordered: got classes %+v", first[0])
		}
	}
	for i := 0; i < 5; i++ {
		if again := Apply(frames, Options{}); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d disagrees with first:\n%+v\nvs\n%+v", i, again, first)
		}
	}
}

// TestApplyTiedOverlapSuppressed: two same-class, same-score boxes on top
// of each other are one object; the chain keeps one and suppresses the
// other.
func TestApplyTiedOverlapSuppressed(t *testing.T) {
	frames := [][]detect.Detection{{
		{Box: box(0, 0, 20), Class: 1, Score: 0.7},
		{Box: box(1, 0, 20), Class: 1, Score: 0.7},
	}}
	out := Apply(frames, Options{})
	if len(out[0]) != 1 {
		t.Fatalf("near-duplicate tied detections: kept %d, want 1", len(out[0]))
	}
	if math.Abs(out[0][0].Score-0.7) > 1e-12 {
		t.Fatalf("survivor rescored to %v, want 0.7", out[0][0].Score)
	}
}
