// Package seqnms implements Seq-NMS (Han et al., 2016), the offline video
// detection post-processor the paper composes with AdaScale in Sec. 4.6.
//
// Seq-NMS links same-class detections in consecutive frames when their IoU
// exceeds a threshold, repeatedly extracts the maximum-total-score temporal
// chain by dynamic programming, rescores the chain's members (average
// rescoring), removes them, and suppresses the detections they overlap in
// their own frames. Consistent object tracks get their weak members pulled
// up the ranking, which is where the mAP gain comes from; flickering false
// positives stay unlinked and sink.
package seqnms

import (
	"sort"

	"adascale/internal/detect"
)

// Thresholds from the Seq-NMS paper.
const (
	// DefaultLinkIoU is the minimum IoU for a cross-frame link.
	DefaultLinkIoU = 0.5

	// DefaultSuppressIoU is the within-frame suppression threshold applied
	// around selected chain members (matching the detector's NMS level).
	DefaultSuppressIoU = 0.3
)

// Rescoring selects how a chain's scores are redistributed.
type Rescoring int

// Rescoring modes.
const (
	// RescoreAverage assigns every chain member the chain's mean score
	// (the Seq-NMS paper's best-performing variant).
	RescoreAverage Rescoring = iota
	// RescoreMax assigns every chain member the chain's maximum score.
	RescoreMax
)

// Options configures Apply; the zero value selects the paper defaults.
type Options struct {
	LinkIoU     float64
	SuppressIoU float64
	Rescoring   Rescoring
}

func (o Options) withDefaults() Options {
	if o.LinkIoU == 0 {
		o.LinkIoU = DefaultLinkIoU
	}
	if o.SuppressIoU == 0 {
		o.SuppressIoU = DefaultSuppressIoU
	}
	return o
}

// Apply runs Seq-NMS over a snippet's per-frame detections and returns the
// rescored per-frame detections (same frame count; detections suppressed by
// a selected chain are dropped). The input is not modified.
func Apply(frames [][]detect.Detection, opts Options) [][]detect.Detection {
	opts = opts.withDefaults()

	// Working copy with liveness flags.
	type node struct {
		det   detect.Detection
		alive bool
		taken bool // selected into a chain (final)
		score float64
	}
	work := make([][]node, len(frames))
	remaining := 0
	for t, dets := range frames {
		work[t] = make([]node, len(dets))
		for i, d := range dets {
			work[t][i] = node{det: d, alive: true, score: d.Score}
			remaining++
		}
	}

	for remaining > 0 {
		// Dynamic programming for the maximum-score chain over alive nodes:
		// best[t][i] = det score + max over linked predecessors.
		best := make([][]float64, len(work))
		prev := make([][]int, len(work))
		var maxScore float64 = -1
		maxT, maxI := -1, -1
		for t := range work {
			best[t] = make([]float64, len(work[t]))
			prev[t] = make([]int, len(work[t]))
			for i := range work[t] {
				if !work[t][i].alive {
					best[t][i] = -1
					prev[t][i] = -1
					continue
				}
				best[t][i] = work[t][i].det.Score
				prev[t][i] = -1
				if t > 0 {
					for j := range work[t-1] {
						if !work[t-1][j].alive || best[t-1][j] < 0 {
							continue
						}
						if work[t-1][j].det.Class != work[t][i].det.Class {
							continue
						}
						if detect.IoU(work[t-1][j].det.Box, work[t][i].det.Box) <= opts.LinkIoU {
							continue
						}
						if cand := best[t-1][j] + work[t][i].det.Score; cand > best[t][i] {
							best[t][i] = cand
							prev[t][i] = j
						}
					}
				}
				if best[t][i] > maxScore {
					maxScore, maxT, maxI = best[t][i], t, i
				}
			}
		}
		if maxT < 0 {
			break
		}

		// Trace the chain back.
		type ref struct{ t, i int }
		var chain []ref
		for t, i := maxT, maxI; i >= 0; {
			chain = append(chain, ref{t, i})
			pi := prev[t][i]
			t, i = t-1, pi
		}

		// Rescore.
		var sum, maxS float64
		for _, r := range chain {
			s := work[r.t][r.i].det.Score
			sum += s
			if s > maxS {
				maxS = s
			}
		}
		newScore := sum / float64(len(chain))
		if opts.Rescoring == RescoreMax {
			newScore = maxS
		}

		// Commit the chain and suppress the overlapped.
		for _, r := range chain {
			n := &work[r.t][r.i]
			n.alive = false
			n.taken = true
			n.score = newScore
			remaining--
			for j := range work[r.t] {
				o := &work[r.t][j]
				if !o.alive || o.det.Class != n.det.Class {
					continue
				}
				if detect.IoU(o.det.Box, n.det.Box) > opts.SuppressIoU {
					o.alive = false // suppressed, not emitted
					remaining--
				}
			}
		}
	}

	// Emit: chain members with their new scores; untouched nodes keep
	// their original scores; suppressed nodes are dropped.
	out := make([][]detect.Detection, len(frames))
	for t := range work {
		for i := range work[t] {
			n := work[t][i]
			if n.taken || n.alive {
				d := n.det
				d.Score = n.score
				out[t] = append(out[t], d)
			}
		}
		sort.SliceStable(out[t], func(a, b int) bool { return out[t][a].Score > out[t][b].Score })
	}
	return out
}
