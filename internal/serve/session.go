package serve

import (
	"adascale/internal/adascale"
	"adascale/internal/rfcn"
	"adascale/internal/synth"
)

// session is one admitted video stream: its resilient scale-state session,
// its bounded frame queue, and its serving accounting. All access happens
// on the scheduler's event-loop goroutine; only the compute (detector +
// regressor forward) leaves it.
type session struct {
	id   int
	sess *adascale.ResilientSession

	// queue is the bounded per-stream FIFO of frames that have arrived
	// but not been dispatched, with the configured depth enforced at push.
	queue FrameQueue

	// inflight is non-nil while one frame of this stream is being served;
	// streams are strictly sequential (frame k+1's scale depends on frame
	// k's regressor output), so at most one frame is in flight.
	inflight *inflightFrame

	outputs []adascale.FrameOutput
	dropped []*synth.Frame
	sloMiss int
}

// queuedFrame is one enqueued arrival (an alias for the exported queue
// entry; the scheduler predates the shared FrameQueue).
type queuedFrame = QueuedFrame

// inflightFrame tracks a frame from its first dispatch until its
// completion event — across retries, when the supervision layer is active.
type inflightFrame struct {
	frame     *synth.Frame
	plan      adascale.FramePlan
	arrivalMS float64
	startMS   float64 // first dispatch instant (virtual ms)

	// res delivers the worker's compute result; nil for skipped frames
	// (sensor-observable faults never reach a worker) and for breaker-shed
	// propagation-only frames.
	res chan computeResult

	// Supervision state (meaningful only when the server runs a chaos
	// plan; all zero on the plain path).
	dispID       int     // current dispatch ID (0 = not dispatched right now)
	worker       int     // virtual worker of the current dispatch (-1 = none)
	completionMS float64 // scheduled completion instant of the current dispatch
	serviceMS    float64 // modelled detector-path service time (reused on retry)
	shed         bool    // current dispatch bypasses the detector (breaker open)
	probe        bool    // current dispatch is a half-open breaker probe
	attempts     int     // failed dispatches so far
	retryReady   bool    // backoff elapsed; waiting for a free worker
	firstFailMS  float64 // first dispatch-failure instant (-1 = never failed)
}

// computeResult is what a pool worker hands back to the event loop: the
// detector pass, the regressor's scale prediction, or the recovered panic
// if the frame poisoned the worker. With a wall-mode tracer attached the
// worker also measures the real elapsed time of the two compute stages.
type computeResult struct {
	r   *rfcn.Result
	t   float64
	err error

	detWallMS float64
	regWallMS float64
}

// push enqueues an arrival under the shared bounded drop-oldest policy
// (FrameQueue, queue.go) and reports the dropped frame, if any, recording
// it in the session's drop list.
func (s *session) push(f queuedFrame, depth int) (dropped *synth.Frame) {
	if dropped = s.queue.Push(f, depth); dropped != nil {
		s.dropped = append(s.dropped, dropped)
	}
	return dropped
}

// pop removes and returns the head of the queue.
func (s *session) pop() queuedFrame { return s.queue.Pop() }

// ready reports whether the session has a dispatchable frame.
func (s *session) ready() bool { return s.inflight == nil && s.queue.Len() > 0 }
