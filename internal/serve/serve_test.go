package serve

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"adascale/internal/adascale"
	"adascale/internal/faults"
	"adascale/internal/regressor"
	"adascale/internal/synth"
)

var (
	buildOnce sync.Once
	sharedDS  *synth.Dataset
	sharedSys *adascale.System
)

// system builds one small trained system shared across the package's tests.
func system(t *testing.T) (*synth.Dataset, *adascale.System) {
	t.Helper()
	buildOnce.Do(func() {
		cfg := synth.VIDLike(5)
		ds, err := synth.Generate(cfg, 12, 6)
		if err != nil {
			t.Fatal(err)
		}
		sharedDS = ds
		sharedSys = adascale.Build(ds, adascale.DefaultBuildConfig())
	})
	return sharedDS, sharedSys
}

// load generates a standard arrival schedule over the validation snippets.
func load(t *testing.T, ds *synth.Dataset, streams int, fps float64, frames int, seed int64) []Stream {
	t.Helper()
	out, err := GenLoad(ds.Val, LoadConfig{Streams: streams, FPS: fps, FramesPerStream: frames, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func newServer(t *testing.T, sys *adascale.System, cfg Config) *Server {
	t.Helper()
	srv, err := New(sys.Detector, sys.Regressor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestGenLoadDeterministicAndOrdered pins the load generator's contract:
// same config twice gives the identical schedule, arrivals are strictly
// increasing per stream, and distinct streams draw distinct schedules.
func TestGenLoadDeterministicAndOrdered(t *testing.T) {
	ds, _ := system(t)
	a := load(t, ds, 3, 30, 40, 7)
	b := load(t, ds, 3, 30, 40, 7)
	for i := range a {
		if len(a[i].Frames) != 40 {
			t.Fatalf("stream %d: %d frames, want 40", i, len(a[i].Frames))
		}
		prev := 0.0
		for j := range a[i].Frames {
			af, bf := a[i].Frames[j], b[i].Frames[j]
			if af.Frame != bf.Frame || af.ArrivalMS != bf.ArrivalMS {
				t.Fatalf("stream %d frame %d: schedules diverge across identical runs", i, j)
			}
			if af.ArrivalMS <= prev {
				t.Fatalf("stream %d frame %d: arrival %v not after %v", i, j, af.ArrivalMS, prev)
			}
			prev = af.ArrivalMS
		}
	}
	if a[0].Frames[0].ArrivalMS == a[1].Frames[0].ArrivalMS {
		t.Fatal("streams 0 and 1 share an arrival schedule; per-stream seeds are not independent")
	}
	if _, err := GenLoad(ds.Val, LoadConfig{Streams: 0, FPS: 30, FramesPerStream: 1}); err == nil {
		t.Fatal("zero streams accepted")
	}
	if _, err := GenLoad(nil, LoadConfig{Streams: 1, FPS: 30, FramesPerStream: 1}); err == nil {
		t.Fatal("empty snippet corpus accepted")
	}
}

// TestServeDeterministicSnapshots pins the tentpole's determinism
// contract: two runs with the same seed and config produce byte-identical
// final metric snapshots and identical served outputs, even though real
// compute fans out across pool goroutines.
func TestServeDeterministicSnapshots(t *testing.T) {
	ds, sys := system(t)
	cfg := Config{Workers: 4, QueueDepth: 4, SLOMS: 100, Resilient: adascale.DefaultResilientConfig()}
	run := func() *Report {
		return newServer(t, sys, cfg).Run(load(t, ds, 8, 30, 25, 5))
	}
	a, b := run(), run()
	snapA, snapB := a.Metrics.Snapshot(), b.Metrics.Snapshot()
	if snapA == "" {
		t.Fatal("empty metrics snapshot")
	}
	if snapA != snapB {
		t.Fatalf("snapshots diverge across identical runs:\n--- run A ---\n%s\n--- run B ---\n%s", snapA, snapB)
	}
	av, bv := a.Served(), b.Served()
	if len(av) == 0 || len(av) != len(bv) {
		t.Fatalf("served %d and %d frames across identical runs", len(av), len(bv))
	}
	for i := range av {
		if av[i].Scale != bv[i].Scale || len(av[i].Detections) != len(bv[i].Detections) {
			t.Fatalf("output %d diverges across identical runs", i)
		}
	}
	for _, want := range []string{"frames/served", "latency/ms", "sessions/accepted"} {
		if !strings.Contains(snapA, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snapA)
		}
	}
}

// TestServeUnloadedNoDrops: at a rate well inside capacity, every offered
// frame is served — no drops, no SLO misses under a generous SLO.
func TestServeUnloadedNoDrops(t *testing.T) {
	ds, sys := system(t)
	cfg := Config{Workers: 4, QueueDepth: 8, SLOMS: 500, Resilient: adascale.DefaultResilientConfig()}
	streams := load(t, ds, 4, 5, 20, 3)
	rep := newServer(t, sys, cfg).Run(streams)

	offered := 4 * 20
	if got := rep.Metrics.Counter("frames/offered"); got != int64(offered) {
		t.Fatalf("offered %d frames, want %d", got, offered)
	}
	if n := rep.TotalDropped(); n != 0 {
		t.Fatalf("dropped %d frames at an unloaded rate", n)
	}
	if got := len(rep.Served()); got != offered {
		t.Fatalf("served %d frames, want %d", got, offered)
	}
	if n := rep.Metrics.Counter("slo/miss"); n != 0 {
		t.Fatalf("%d SLO misses at an unloaded rate with a generous SLO", n)
	}
	for _, sr := range rep.Streams {
		if len(sr.Outputs) != 20 {
			t.Fatalf("stream %d served %d frames, want 20", sr.ID, len(sr.Outputs))
		}
	}
}

// TestServeOverloadDropsNotStalls: under heavy overload the server sheds
// load via drop-oldest and still terminates with every offered frame
// accounted for; served-frame latency stays bounded because the queue
// keeps only the freshest frames.
func TestServeOverloadDropsNotStalls(t *testing.T) {
	ds, sys := system(t)
	cfg := Config{Workers: 1, QueueDepth: 4, Resilient: adascale.DefaultResilientConfig()}
	streams := load(t, ds, 4, 50, 30, 9)

	done := make(chan *Report, 1)
	go func() { done <- newServer(t, sys, cfg).Run(streams) }()
	var rep *Report
	select {
	case rep = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("overloaded server failed to terminate: it must drop, not stall")
	}

	offered, served, dropped := rep.Metrics.Counter("frames/offered"), int64(len(rep.Served())), int64(rep.TotalDropped())
	if offered != 4*30 {
		t.Fatalf("offered %d frames, want %d", offered, 4*30)
	}
	if dropped == 0 {
		t.Fatal("no drops under 15x overload; backpressure is not engaging")
	}
	if served+dropped != offered {
		t.Fatalf("served %d + dropped %d != offered %d", served, dropped, offered)
	}
	if dropped != rep.Metrics.Counter("frames/dropped") {
		t.Fatalf("report counts %d drops, metrics %d", dropped, rep.Metrics.Counter("frames/dropped"))
	}
	// Drop-oldest bounds staleness independently of how many frames were
	// offered: a served frame never waits behind more than the system's
	// whole backlog capacity — streams × (QueueDepth + 1 in flight) frames
	// at worst-case (~80ms + jitter) service. Unbounded FIFO growth would
	// blow through this, i.e. a stall in disguise.
	backlogMS := float64(4*(4+1)) * 120
	if maxLat := rep.Metrics.Quantile("latency/ms", 1.0); maxLat > backlogMS {
		t.Fatalf("max latency %.1fms exceeds backlog capacity %.0fms: queue is growing without bound", maxLat, backlogMS)
	}
}

// TestServeSLOStepsScaleDown: a stream that keeps missing its latency SLO
// must walk its scale cap down the S_reg ladder (PR 2 hysteresis wired to
// end-to-end latency), recording DeadlineForced health and slo/miss.
func TestServeSLOStepsScaleDown(t *testing.T) {
	ds, sys := system(t)
	tight := Config{Workers: 1, QueueDepth: 4, SLOMS: 40, Resilient: adascale.DefaultResilientConfig()}
	rep := newServer(t, sys, tight).Run(load(t, ds, 2, 25, 30, 11))

	if rep.Metrics.Counter("slo/miss") == 0 {
		t.Fatal("no SLO misses under overload with a 40ms SLO")
	}
	forced, minScale := 0, regressor.MaxScale
	for _, o := range rep.Served() {
		if o.Health.DeadlineForced {
			forced++
		}
		if o.Scale < minScale {
			minScale = o.Scale
		}
	}
	if forced == 0 {
		t.Fatal("SLO pressure never stepped a scale cap down (no DeadlineForced frames)")
	}
	if minScale >= regressor.MaxScale {
		t.Fatalf("min served scale %d: cap stepping never left the top of the ladder", minScale)
	}

	// The same workload with no SLO never reports deadline enforcement.
	loose := Config{Workers: 1, QueueDepth: 4, Resilient: adascale.DefaultResilientConfig()}
	for _, o := range newServer(t, sys, loose).Run(load(t, ds, 2, 25, 30, 11)).Served() {
		if o.Health.DeadlineForced {
			t.Fatal("DeadlineForced frame with SLO enforcement disabled")
		}
	}
}

// TestServeMatchesOfflineRunner pins serving semantics to the offline
// resilient runner: one unloaded stream over exactly one snippet, no SLO,
// must emit the same scales, detections and health as RunResilient.
func TestServeMatchesOfflineRunner(t *testing.T) {
	ds, sys := system(t)
	frames := len(ds.Val[0].Frames)
	streams := load(t, ds, 1, 2, frames, 13)
	rep := newServer(t, sys, Config{Workers: 2, QueueDepth: 8, Resilient: adascale.DefaultResilientConfig()}).Run(streams)
	want := adascale.RunResilient(sys.Detector, sys.Regressor, &ds.Val[0], adascale.DefaultResilientConfig())

	got := rep.Streams[0].Outputs
	if len(got) != len(want) {
		t.Fatalf("served %d frames, offline runner produced %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Frame != w.Frame || g.Scale != w.Scale || g.Health != w.Health {
			t.Fatalf("frame %d: served (scale %d, health %+v), offline (scale %d, health %+v)",
				i, g.Scale, g.Health, w.Scale, w.Health)
		}
		if len(g.Detections) != len(w.Detections) {
			t.Fatalf("frame %d: %d detections, offline %d", i, len(g.Detections), len(w.Detections))
		}
		for k := range w.Detections {
			if g.Detections[k] != w.Detections[k] {
				t.Fatalf("frame %d det %d: %+v, offline %+v", i, k, g.Detections[k], w.Detections[k])
			}
		}
	}
}

// TestServeAdmissionControl: streams past MaxStreams are rejected up
// front, reported, counted, and never served.
func TestServeAdmissionControl(t *testing.T) {
	ds, sys := system(t)
	cfg := Config{Workers: 2, QueueDepth: 8, MaxStreams: 2, Resilient: adascale.DefaultResilientConfig()}
	rep := newServer(t, sys, cfg).Run(load(t, ds, 5, 10, 6, 17))

	if len(rep.Streams) != 2 {
		t.Fatalf("admitted %d streams, want 2", len(rep.Streams))
	}
	if len(rep.Rejected) != 3 {
		t.Fatalf("rejected %v, want streams 2..4", rep.Rejected)
	}
	for i, id := range rep.Rejected {
		if id != i+2 {
			t.Fatalf("rejected %v, want [2 3 4]", rep.Rejected)
		}
	}
	if got := rep.Metrics.Counter("sessions/rejected"); got != 3 {
		t.Fatalf("sessions/rejected = %d, want 3", got)
	}
	if got := len(rep.Served()); got != 2*6 {
		t.Fatalf("served %d frames, want %d from the admitted streams only", got, 2*6)
	}
}

// TestServeConfigValidation rejects nonsense configs at New time with the
// typed *ConfigError, naming the offending field. Zero and negative queue
// capacities in particular must fail fast: before they were validated, a
// depth-0 stream panicked on its first arrival (evicting from an empty
// queue).
func TestServeConfigValidation(t *testing.T) {
	_, sys := system(t)
	base := func() Config {
		return Config{Workers: 2, QueueDepth: 4, Resilient: adascale.DefaultResilientConfig()}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"negative SLO", func(c *Config) { c.SLOMS = -1 }, "SLOMS"},
		{"zero queue depth", func(c *Config) { c.QueueDepth = 0 }, "QueueDepth"},
		{"negative queue depth", func(c *Config) { c.QueueDepth = -3 }, "QueueDepth"},
		{"negative max streams", func(c *Config) { c.MaxStreams = -2 }, "MaxStreams"},
		{"negative tick", func(c *Config) { c.TickMS = -5 }, "TickMS"},
		{"negative retry bound", func(c *Config) { c.Supervisor.MaxRetries = -1 }, "Supervisor.MaxRetries"},
		{"chaos without workers", func(c *Config) {
			c.Workers = 0
			c.Chaos = &faults.SystemPlan{}
		}, "Workers"},
		{"chaos targeting a missing worker", func(c *Config) {
			c.Chaos = &faults.SystemPlan{Events: []faults.SystemEvent{
				{AtMS: 10, Kind: faults.SysWorkerKill, Worker: 7},
			}}
		}, "Chaos"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		_, err := New(sys.Detector, sys.Regressor, cfg)
		if err == nil {
			t.Fatalf("%s: config accepted", tc.name)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: error %v is not a *ConfigError", tc.name, err)
		}
		if ce.Field != tc.field {
			t.Fatalf("%s: rejected field %q, want %q", tc.name, ce.Field, tc.field)
		}
	}
	if _, err := New(sys.Detector, sys.Regressor, base()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestServeTicksFireDeterministically: ticks fire at exact virtual
// instants, strictly increasing, and stop with the simulation.
func TestServeTicksFireDeterministically(t *testing.T) {
	ds, sys := system(t)
	var ticks []float64
	cfg := Config{
		Workers: 2, QueueDepth: 4, TickMS: 250,
		Resilient: adascale.DefaultResilientConfig(),
		OnTick: func(simMS float64, m *Metrics) {
			if m.Snapshot() == "" {
				t.Error("tick observed an empty registry")
			}
			ticks = append(ticks, simMS)
		},
	}
	rep := newServer(t, sys, cfg).Run(load(t, ds, 2, 10, 10, 21))
	if len(ticks) == 0 {
		t.Fatal("no ticks fired")
	}
	for i, at := range ticks {
		if want := 250 * float64(i+1); at != want {
			t.Fatalf("tick %d at %vms, want %vms", i, at, want)
		}
	}
	if last := ticks[len(ticks)-1]; last > rep.DurationMS+250 {
		t.Fatalf("tick at %vms outlived the %vms simulation", last, rep.DurationMS)
	}
}

// TestServeNoGoroutineLeak: a full serve run, including its compute pool,
// leaves no goroutines behind.
func TestServeNoGoroutineLeak(t *testing.T) {
	ds, sys := system(t)
	streams := load(t, ds, 3, 20, 10, 23)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		newServer(t, sys, Config{Workers: 4, QueueDepth: 4, Resilient: adascale.DefaultResilientConfig()}).Run(streams)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
