package serve

import (
	"reflect"
	"testing"

	"adascale/internal/adascale"
)

// TestCheckpointResume pins the cross-window session-continuity contract
// the cluster layer builds on: splitting a stream's schedule into two
// serve runs — the second seeded with the first's StreamReport.Checkpoint —
// must reproduce the unsplit run exactly: same outputs, same final ladder
// state. The load is light enough that the queue drains inside each
// window, so the split point itself adds no queueing artifacts.
func TestCheckpointResume(t *testing.T) {
	ds, sys := system(t)
	cfg := Config{Workers: 2, QueueDepth: 8, SLOMS: 100, Resilient: adascale.DefaultResilientConfig()}
	streams := load(t, ds, 1, 10, 16, 21)

	full := newServer(t, sys, cfg).Run(streams)
	if full.Lost() != 0 || len(full.Streams[0].Dropped) != 0 {
		t.Fatalf("full run not clean: lost=%d dropped=%d", full.Lost(), len(full.Streams[0].Dropped))
	}

	frames := streams[0].Frames
	half := len(frames) / 2
	first := newServer(t, sys, cfg).Run([]Stream{{ID: 0, Frames: frames[:half]}})
	cp := first.Streams[0].Checkpoint
	second := newServer(t, sys, cfg).Run([]Stream{{ID: 0, Frames: frames[half:], Checkpoint: &cp}})

	gotOut := append(first.Streams[0].Outputs, second.Streams[0].Outputs...)
	wantOut := full.Streams[0].Outputs
	if len(gotOut) != len(wantOut) {
		t.Fatalf("split run served %d frames, full run %d", len(gotOut), len(wantOut))
	}
	for i := range wantOut {
		if gotOut[i].Scale != wantOut[i].Scale {
			t.Fatalf("frame %d: split run scale %d, full run %d — ladder state did not carry", i, gotOut[i].Scale, wantOut[i].Scale)
		}
		if gotOut[i].Health.Fallback != wantOut[i].Health.Fallback {
			t.Fatalf("frame %d: split run fallback %v, full run %v", i, gotOut[i].Health.Fallback, wantOut[i].Health.Fallback)
		}
	}
	if !reflect.DeepEqual(second.Streams[0].Checkpoint, full.Streams[0].Checkpoint) {
		t.Fatalf("final checkpoints diverge:\nsplit: %+v\nfull:  %+v",
			second.Streams[0].Checkpoint, full.Streams[0].Checkpoint)
	}

	// A fresh session (no checkpoint) must NOT reproduce the full run's
	// tail in general — otherwise the checkpoint carries nothing and this
	// test proves nothing. Propagated-frame accounting differs at minimum:
	// the checkpoint carries last-good detections, a fresh session has
	// none.
	fresh := newServer(t, sys, cfg).Run([]Stream{{ID: 0, Frames: frames[half:]}})
	if reflect.DeepEqual(fresh.Streams[0].Checkpoint, second.Streams[0].Checkpoint) {
		t.Log("fresh-session tail happened to match checkpointed tail (benign on fault-free light load)")
	}
}
