package serve

import "adascale/internal/synth"

// FrameQueue is the bounded drop-oldest arrival queue shared by the
// virtual-time scheduler's sessions and the HTTP ingestion path
// (internal/server). Dropping the oldest (not the newest) frame is the
// right policy for live video: the newest frame is the one closest to the
// present, and AdaScale's temporal consistency recovers from a gap faster
// than from serving stale frames late.
//
// The zero value is an empty queue. FrameQueue is not safe for concurrent
// use; both owners serialise access (the scheduler on its event-loop
// goroutine, the HTTP engine under its mutex).
type FrameQueue struct {
	items []QueuedFrame
}

// QueuedFrame is one enqueued arrival: the frame and its arrival instant
// on the owner's virtual clock.
type QueuedFrame struct {
	Frame     *synth.Frame
	ArrivalMS float64
}

// Push enqueues an arrival under the bounded drop-oldest policy: when the
// queue already holds depth frames, the oldest is evicted to make room.
// It returns the dropped frame, or nil if nothing was evicted.
func (q *FrameQueue) Push(f QueuedFrame, depth int) (dropped *synth.Frame) {
	if len(q.items) >= depth {
		dropped = q.items[0].Frame
		copy(q.items, q.items[1:])
		q.items = q.items[:len(q.items)-1]
	}
	q.items = append(q.items, f)
	return dropped
}

// Pop removes and returns the head of the queue. It panics on an empty
// queue, like indexing an empty slice would; callers gate on Len.
func (q *FrameQueue) Pop() QueuedFrame {
	f := q.items[0]
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return f
}

// Head returns the oldest queued arrival without removing it.
func (q *FrameQueue) Head() QueuedFrame { return q.items[0] }

// Len returns the number of queued frames.
func (q *FrameQueue) Len() int { return len(q.items) }
