package serve

import (
	"math"
	"reflect"
	"testing"

	"adascale/internal/synth"
)

// fuzzSnippets is a minimal frame corpus for the load generator: GenLoad
// only takes frame pointers, so zero-value frames are enough.
func fuzzSnippets() []synth.Snippet {
	sn := make([]synth.Snippet, 2)
	for i := range sn {
		sn[i] = synth.Snippet{ID: i, Frames: make([]synth.Frame, 3)}
	}
	return sn
}

// FuzzLoadgen drives GenLoad with adversarial configs. The invariants: an
// invalid config (non-positive/NaN/Inf rate, no streams, no frames) must
// error rather than panic; a valid config must produce exactly the
// requested schedule with finite, non-negative, non-decreasing arrival
// times; and the schedule must be a pure function of the config (two calls
// agree exactly).
func FuzzLoadgen(f *testing.F) {
	f.Add(2, 8.0, 5, int64(5))
	f.Add(1, 30.0, 1, int64(0))
	f.Add(4, 0.5, 16, int64(123))
	f.Add(0, 10.0, 4, int64(9))        // invalid: no streams
	f.Add(3, 0.0, 8, int64(-7))        // invalid: zero rate
	f.Add(3, math.NaN(), 8, int64(1))  // invalid: NaN rate
	f.Add(2, math.Inf(1), 4, int64(2)) // invalid: infinite rate
	f.Add(2, 1e308, 4, int64(3))       // huge but finite rate
	f.Add(5, 1e-9, 2, int64(44))       // near-zero rate, huge gaps
	f.Add(-1, 8.0, -3, int64(77))      // invalid: negative sizes
	f.Fuzz(func(t *testing.T, streams int, fps float64, frames int, seed int64) {
		// Bound the work, not the validity: huge requests are legal, just
		// too slow/large to fuzz.
		if streams > 64 || frames > 512 {
			t.Skip("oversized workload")
		}
		snippets := fuzzSnippets()
		cfg := LoadConfig{Streams: streams, FPS: fps, FramesPerStream: frames, Seed: seed}
		out, err := GenLoad(snippets, cfg)
		if err != nil {
			return // rejected cleanly; nothing more to check
		}
		if streams <= 0 || frames <= 0 || fps <= 0 || math.IsNaN(fps) || math.IsInf(fps, 0) {
			t.Fatalf("GenLoad accepted invalid config %+v", cfg)
		}
		if len(out) != streams {
			t.Fatalf("streams = %d, want %d", len(out), streams)
		}
		for _, st := range out {
			if len(st.Frames) != frames {
				t.Fatalf("stream %d: %d frames, want %d", st.ID, len(st.Frames), frames)
			}
			prev := 0.0
			for i, tf := range st.Frames {
				a := tf.ArrivalMS
				if math.IsNaN(a) || math.IsInf(a, 0) || a < 0 {
					t.Fatalf("stream %d frame %d: bad arrival %v", st.ID, i, a)
				}
				if a < prev {
					t.Fatalf("stream %d frame %d: arrival %v before predecessor %v", st.ID, i, a, prev)
				}
				prev = a
				if tf.Frame == nil {
					t.Fatalf("stream %d frame %d: nil frame", st.ID, i)
				}
			}
		}
		again, err := GenLoad(snippets, cfg)
		if err != nil || !reflect.DeepEqual(out, again) {
			t.Fatalf("GenLoad not deterministic (err=%v)", err)
		}
	})
}
