// Package serve is the multi-stream inference server over the AdaScale
// pipeline: N concurrent video sessions, each wrapping a resilient
// per-stream scale-state session (internal/adascale.ResilientSession),
// fed through bounded per-stream frame queues with an explicit drop-oldest
// policy, scheduled onto the persistent worker pool (internal/parallel.Pool,
// per-worker detector/regressor clones) by a central event loop.
//
// Time is virtual. The scheduler is a discrete-event simulation over the
// modelled runtime clock (internal/simclock): arrivals come from the
// deterministic load generator (loadgen.go), service times are the
// modelled detector cost at the scale the session chose, and every metric
// — frame latency percentiles, queue depths, drops, SLO misses — is
// derived from virtual timestamps. Real CPU work (the behavioural
// detector and the regressor forward pass) still fans out across real
// goroutines with per-worker clones; only its *scheduling* is virtual.
// The event loop consumes each result at the frame's virtual completion,
// so the served output stream, the final metrics registry and its text
// snapshot are byte-identical across runs and machine core counts — the
// determinism contract the serving experiments and the serve-smoke gate
// assert.
//
// Per-stream latency SLOs reuse the PR 2 hysteresis machinery unchanged:
// the session's simclock.Budget is charged with each frame's end-to-end
// latency instead of its compute cost, so a stream that keeps missing its
// SLO walks its scale cap down the S_reg ladder one rung at a time (and
// back up only with wide headroom). Overload therefore degrades scale
// first and coverage second (drop-oldest), and never stalls the server.
package serve

import (
	"fmt"

	"adascale/internal/adascale"
	"adascale/internal/faults"
	"adascale/internal/obs"
	"adascale/internal/parallel"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/synth"
)

// ConfigError is the typed error Validate returns for a rejected serving
// configuration, so callers (the serve command, the experiment runners)
// can distinguish a bad config from a runtime failure.
type ConfigError struct {
	Field  string // the Config field that was rejected
	Reason string // why
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("serve: invalid config: %s: %s", e.Field, e.Reason)
}

// Config parameterises the server.
type Config struct {
	// Workers is the serving capacity: the number of frames in service at
	// once, and the size of the real compute pool backing them. 0 means
	// parallel.Workers().
	Workers int

	// QueueDepth bounds each stream's arrival queue; an arrival beyond it
	// drops the oldest queued frame. It must be positive: a zero or
	// negative capacity cannot hold the frame being admitted, and is
	// rejected by Validate with a *ConfigError rather than silently
	// rewritten (a stream with no queue would drop-panic on its first
	// arrival).
	QueueDepth int

	// BatchCap bounds cross-stream detector batching: frames from
	// different streams dispatched at the same virtual instant onto the
	// same scale rung (and rendered at the same size) are coalesced into
	// one batched backbone pass of at most BatchCap frames. Batches only
	// ever coalesce work that is already simultaneously in flight — a
	// pending frame is flushed, with its whole group, no later than its
	// own completion event — so the virtual schedule, the SLO
	// accounting and every output are byte-identical at any cap
	// (DESIGN.md §4k); only wall-clock compute changes. 0 or 1 keeps the
	// legacy single-frame dispatch path; negative values are rejected by
	// Validate.
	BatchCap int

	// MaxStreams is the admission-control capacity: streams beyond it are
	// rejected at Run start (sessions/rejected metric, Report.Rejected).
	// 0 means unlimited.
	MaxStreams int

	// SLOMS is the per-frame end-to-end latency SLO (virtual ms). While a
	// stream's rolling mean latency exceeds it, the stream's scale cap
	// steps down the S_reg ladder (the PR 2 hysteresis). 0 disables SLO
	// enforcement.
	SLOMS float64

	// Resilient tunes each session's degradation ladder. Its DeadlineMS
	// is overridden by SLOMS: in the serving layer the deadline budget
	// tracks latency, not compute.
	Resilient adascale.ResilientConfig

	// TickMS emits a periodic OnTick callback every TickMS of virtual
	// time (0 disables) — how the serve command prints periodic metric
	// snapshots at deterministic instants.
	TickMS float64

	// OnTick, if set, is called from the event loop at every tick with
	// the current virtual time and the live metrics registry.
	OnTick func(simMS float64, m *Metrics)

	// Tracer, when non-nil, makes the scheduler record one span per
	// pipeline stage per served frame (stream = stream ID, frame = index
	// within the stream, start = the frame's dispatch time on the virtual
	// clock) and adds per-stage histograms to the metrics registry:
	// stage/<name>/ms, stream/<id>/stage/<name>/ms, and — for frames that
	// missed the SLO — slo_miss/stage/<name>/ms, so an SLO investigation
	// can see which stage the missing milliseconds went to. With a
	// wall-mode tracer the detect/regress stages carry measured wall time
	// (profiling aid; not deterministic). Nil leaves the snapshot exactly
	// as it was before tracing existed.
	Tracer *obs.Tracer

	// ModelOnly serves every frame entirely on the modelled virtual clock:
	// the scheduler never creates the compute pool and never ships a
	// detector/regressor pass to a worker, so each non-skipped frame
	// settles through the session's propagation path (nil result). Queue
	// dynamics, latency/SLO accounting, drops, retries and recovery are
	// exactly what a real run would produce — only the detection content
	// is absent. The cluster capacity sweeps (internal/cluster,
	// internal/experiments.Cluster) use this to simulate 10k+ streams in
	// seconds. Note the breaker never sees a detector success in this
	// mode, so an opened breaker stays open; model-only chaos runs measure
	// scheduling, not breaker recovery.
	ModelOnly bool

	// CompactMetrics suppresses the per-stream metric keys
	// (stream/<id>/served, stream/<id>/dropped, stream/<id>/slo_miss and
	// the per-stream stage histograms): a cluster node serving tens of
	// thousands of streams would otherwise spend most of its time and
	// memory on snapshot keys nobody reads. Aggregate metrics are
	// unaffected; the default (false) keeps snapshots byte-identical to
	// the committed goldens.
	CompactMetrics bool

	// Chaos, when non-nil, runs the server under the given system fault
	// plan (faults.GenSystemPlan): worker kills, worker stalls, node
	// blackouts and queue-saturation windows are applied at their plan
	// instants on the virtual clock, and the supervision layer (retry with
	// backoff, per-stream circuit breakers, watchdog reassignment, stream
	// migration via session checkpoints) recovers from them. Chaos runs
	// require an explicit Workers count — the plan targets worker indices,
	// and determinism across machines forbids a GOMAXPROCS-derived
	// capacity. Nil runs the plain scheduler, byte-identical to a server
	// without a supervision layer at all.
	Chaos *faults.SystemPlan

	// Supervisor tunes the recovery machinery; consulted only when Chaos
	// is set. The zero value means all defaults.
	Supervisor SupervisorConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = parallel.Workers()
	}
	c.Resilient.DeadlineMS = c.SLOMS
	// The scheduler records spans itself with true event-loop timestamps;
	// a session-level tracer would record every frame twice.
	c.Resilient.Tracer = nil
	return c
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.SLOMS < 0 {
		return &ConfigError{Field: "SLOMS", Reason: fmt.Sprintf("negative SLO %v ms", c.SLOMS)}
	}
	if c.QueueDepth <= 0 {
		return &ConfigError{Field: "QueueDepth", Reason: fmt.Sprintf("queue capacity %d cannot admit a frame; need >= 1", c.QueueDepth)}
	}
	if c.BatchCap < 0 {
		return &ConfigError{Field: "BatchCap", Reason: fmt.Sprintf("negative batch cap %d; 0 or 1 disables batching", c.BatchCap)}
	}
	if c.MaxStreams < 0 {
		return &ConfigError{Field: "MaxStreams", Reason: fmt.Sprintf("negative MaxStreams %d", c.MaxStreams)}
	}
	if c.TickMS < 0 {
		return &ConfigError{Field: "TickMS", Reason: fmt.Sprintf("negative TickMS %v", c.TickMS)}
	}
	if err := c.Supervisor.Validate(); err != nil {
		return err
	}
	if c.Chaos != nil {
		if c.Workers <= 0 {
			return &ConfigError{Field: "Workers", Reason: "chaos runs need an explicit worker count (the fault plan targets worker indices)"}
		}
		for i, e := range c.Chaos.Events {
			if e.Worker >= c.Workers {
				return &ConfigError{Field: "Chaos", Reason: fmt.Sprintf("event %d targets worker %d but the server has %d", i, e.Worker, c.Workers)}
			}
		}
	}
	return nil
}

// Server owns the admitted sessions and the compute pool for one run.
type Server struct {
	cfg Config
	det *rfcn.Detector
	reg *regressor.Regressor
}

// New creates a server for a trained system. The detector and regressor
// are cloned per pool worker at Run time; the originals are not touched
// by the serving loop.
func New(det *rfcn.Detector, reg *regressor.Regressor, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg.withDefaults(), det: det, reg: reg}, nil
}

// StreamReport is one admitted stream's serving outcome.
type StreamReport struct {
	ID int

	// Offered is the number of frames the load schedule offered the
	// stream. Every offered frame is accounted for: it appears in Outputs
	// (served — possibly via propagation after retries were exhausted) or
	// in Dropped (evicted by the queue policy). Offered == len(Outputs) +
	// len(Dropped) is the zero-lost-frames invariant the chaos gate
	// asserts.
	Offered int

	// Outputs are the served frames in arrival order, with full resilient
	// Health accounting (identical semantics to the offline runners).
	Outputs []adascale.FrameOutput

	// Dropped lists the frames evicted by the drop-oldest policy; they
	// were never served.
	Dropped []*synth.Frame

	// SLOMisses counts served frames whose end-to-end latency exceeded
	// the SLO.
	SLOMisses int

	// Checkpoint is the stream's resilient-session ladder state after its
	// last served frame. Restored into a later run's Stream.Checkpoint it
	// continues the stream exactly where this run left it — the
	// cross-window (and, in the cluster layer, cross-node) migration
	// contract.
	Checkpoint adascale.SessionCheckpoint
}

// Report is the outcome of one Run.
type Report struct {
	// Streams holds one report per admitted stream, in stream-ID order.
	Streams []StreamReport

	// Rejected lists the stream IDs refused admission (capacity).
	Rejected []int

	// Metrics is the final registry; its Snapshot() is deterministic.
	Metrics *Metrics

	// DurationMS is the virtual time of the last completion.
	DurationMS float64

	// Summary folds every served frame's Health in stream-ID order.
	Summary adascale.HealthSummary
}

// Served returns all served outputs flattened in stream-ID order.
func (r *Report) Served() []adascale.FrameOutput {
	var out []adascale.FrameOutput
	for i := range r.Streams {
		out = append(out, r.Streams[i].Outputs...)
	}
	return out
}

// TotalDropped sums dropped frames across streams.
func (r *Report) TotalDropped() int {
	n := 0
	for i := range r.Streams {
		n += len(r.Streams[i].Dropped)
	}
	return n
}

// Lost returns the number of offered frames that are neither in a
// stream's outputs nor in its drop list — always zero by the scheduler's
// accounting invariant; the chaos smoke gate asserts it stays that way
// under fault injection.
func (r *Report) Lost() int {
	n := 0
	for i := range r.Streams {
		n += r.Streams[i].Offered - len(r.Streams[i].Outputs) - len(r.Streams[i].Dropped)
	}
	return n
}

// workerState is one pool worker's private clones; the nn layers cache
// activations and are not safe to share, but every clone computes
// identical values, so which worker serves which frame cannot affect any
// result.
type workerState struct {
	det *rfcn.Detector
	reg *regressor.Regressor
}

// Run serves the given streams to completion and returns the report.
// Admission control runs first: with MaxStreams > 0, streams beyond the
// capacity (in slice order) are rejected outright — a rejected session
// fails fast instead of silently degrading every admitted one.
func (s *Server) Run(streams []Stream) *Report {
	m := NewMetrics()
	rep := &Report{Metrics: m}

	admitted := streams
	if s.cfg.MaxStreams > 0 && len(streams) > s.cfg.MaxStreams {
		admitted = streams[:s.cfg.MaxStreams]
		for _, st := range streams[s.cfg.MaxStreams:] {
			rep.Rejected = append(rep.Rejected, st.ID)
		}
	}
	m.Inc("sessions/accepted", int64(len(admitted)))
	m.Inc("sessions/rejected", int64(len(rep.Rejected)))

	sessions := make([]*session, len(admitted))
	for i, st := range admitted {
		sessions[i] = &session{
			id:   st.ID,
			sess: adascale.NewResilientSession(s.reg.Kernels, s.cfg.Resilient),
		}
		if st.Checkpoint != nil {
			sessions[i].sess.Restore(*st.Checkpoint)
		}
	}

	loop := &eventLoop{
		cfg:      s.cfg,
		metrics:  m,
		streams:  admitted,
		sessions: sessions,
		// The master detector computes batch coalescing keys (pure render
		// arithmetic, never a forward pass — worker clones do those).
		det: s.det,
	}
	if !s.cfg.ModelOnly {
		// A job panic rebuilds the worker's state inside the pool; the hook
		// makes that rebuild visible in the metrics snapshot. Model-only
		// runs never submit compute, so they skip the pool (and its
		// per-worker detector/regressor clones) entirely.
		pool := parallel.NewPoolHooked(s.cfg.Workers, func() workerState {
			return workerState{det: s.det.Clone(), reg: s.reg.Clone()}
		}, func(any) { m.Inc("pool/panic_rebuild", 1) })
		defer pool.Close()
		loop.pool = pool
	}
	if s.cfg.Chaos != nil {
		loop.sup = newSupervisor(s.cfg.Chaos, s.cfg.Supervisor, s.cfg.SLOMS,
			s.reg.Kernels, s.cfg.Resilient, s.cfg.Workers, len(sessions))
	}
	loop.run()

	rep.DurationMS = loop.clockMS
	m.Set("time/final_ms", loop.clockMS)
	for i, sess := range sessions {
		rep.Streams = append(rep.Streams, StreamReport{
			ID:         sess.id,
			Offered:    len(admitted[i].Frames),
			Outputs:    sess.outputs,
			Dropped:    sess.dropped,
			SLOMisses:  sess.sloMiss,
			Checkpoint: sess.sess.Checkpoint(),
		})
	}
	rep.Summary = adascale.Summarize(rep.Served())
	return rep
}
