package serve

// The per-stream circuit breaker: when a stream's detector path keeps
// failing (worker kills, node blackouts, watchdog reassignments), the
// breaker opens and the stream sheds to propagation-only mode — frames are
// served from the session's last-good detections at DFF-propagation cost
// (flow warp + bookkeeping, no detector pass), so the stream keeps
// emitting output and draining its queue while the expensive path is
// down. After a cooldown the breaker goes half-open and probes one frame
// through the detector: success closes it, another failure re-opens it
// with a doubled cooldown (capped). All transitions happen on the
// scheduler's virtual clock, so breaker behaviour is deterministic.

// breakerState is the classic three-state machine.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for metrics.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// breaker is one stream's circuit state. The zero value is unusable; build
// with newBreaker.
type breaker struct {
	threshold     int     // consecutive failures that open the circuit; <= 0 disables
	cooldownMS    float64 // initial open interval
	maxCooldown   float64 // escalation cap
	state         breakerState
	fails         int     // consecutive detector-path failures
	openUntilMS   float64 // when an open circuit goes half-open
	curCooldown   float64 // current (escalated) cooldown
	openCount     int     // transitions into open
	closeCount    int     // transitions into closed from half-open
	shedFrames    int     // frames served in propagation-only mode
	probeFailures int     // half-open probes that failed
}

// newBreaker builds a breaker; threshold <= 0 produces a disabled breaker
// that never sheds (the "naive failover" comparison mode).
func newBreaker(threshold int, cooldownMS float64) breaker {
	return breaker{
		threshold:   threshold,
		cooldownMS:  cooldownMS,
		maxCooldown: 8 * cooldownMS,
		curCooldown: cooldownMS,
	}
}

// shouldShed reports whether a frame dispatched at nowMS must bypass the
// detector. An expired open circuit transitions to half-open here, so the
// very next dispatch is the probe.
func (b *breaker) shouldShed(nowMS float64) bool {
	if b.threshold <= 0 {
		return false
	}
	if b.state == breakerOpen {
		if nowMS >= b.openUntilMS {
			b.state = breakerHalfOpen
			return false
		}
		return true
	}
	return false
}

// onFailure records one dispatch failure at nowMS and returns whether the
// circuit transitioned into open. A failure during half-open (the probe
// died) re-opens immediately with a doubled cooldown; in closed state the
// circuit opens once the consecutive-failure threshold is reached; a
// failure while already open (e.g. a blackout killing a shed dispatch)
// extends the open window without counting a new transition.
func (b *breaker) onFailure(nowMS float64) (opened bool) {
	if b.threshold <= 0 {
		return false
	}
	b.fails++
	switch b.state {
	case breakerHalfOpen:
		b.probeFailures++
		b.curCooldown *= 2
		if b.curCooldown > b.maxCooldown {
			b.curCooldown = b.maxCooldown
		}
	case breakerClosed:
		if b.fails < b.threshold {
			return false
		}
	case breakerOpen:
		b.openUntilMS = nowMS + b.curCooldown
		return false
	}
	b.state = breakerOpen
	b.openUntilMS = nowMS + b.curCooldown
	b.openCount++
	return true
}

// onSuccess records one successful detector-path completion and returns
// whether a half-open circuit closed.
func (b *breaker) onSuccess() (closed bool) {
	b.fails = 0
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.curCooldown = b.cooldownMS
		b.closeCount++
		return true
	}
	return false
}
