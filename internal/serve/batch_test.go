package serve

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"adascale/internal/adascale"
	"adascale/internal/faults"
)

// stripBatchMetrics removes the batch/* keys from a snapshot: they are the
// only lines batching is allowed to add, so everything else must stay
// byte-identical to the unbatched run.
func stripBatchMetrics(snap string) string {
	var kept []string
	for _, line := range strings.Split(snap, "\n") {
		// Snapshot lines read "<kind> <name> <value...>".
		if f := strings.Fields(line); len(f) >= 2 && strings.HasPrefix(f[1], "batch/") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// sameOutputs fails the test unless the two runs served identical frames:
// same count, and per frame the same scale, detections (struct equality,
// which covers boxes, scores and classes) and health accounting.
func sameOutputs(t *testing.T, av, bv []adascale.FrameOutput, label string) {
	t.Helper()
	if len(av) == 0 || len(av) != len(bv) {
		t.Fatalf("%s: served %d and %d frames", label, len(av), len(bv))
	}
	for i := range av {
		if av[i].Scale != bv[i].Scale || av[i].Health != bv[i].Health ||
			!reflect.DeepEqual(av[i].Detections, bv[i].Detections) {
			t.Fatalf("%s: output %d diverges", label, i)
		}
	}
}

// TestServeBatchingByteIdentical pins the tentpole's zero-added-latency
// contract: batching only coalesces work that is already simultaneously in
// flight, so at every cap and worker count the served outputs and the
// metric snapshot (minus the batch/* occupancy keys) are byte-identical to
// the legacy single-frame dispatch path.
func TestServeBatchingByteIdentical(t *testing.T) {
	ds, sys := system(t)
	for _, workers := range []int{1, 4} {
		run := func(cap int) *Report {
			cfg := Config{
				Workers: workers, QueueDepth: 4, SLOMS: 100, BatchCap: cap,
				Resilient: adascale.DefaultResilientConfig(),
			}
			return newServer(t, sys, cfg).Run(load(t, ds, 8, 30, 20, 5))
		}
		base := run(0)
		baseSnap := base.Metrics.Snapshot()
		if strings.Contains(baseSnap, "batch/") {
			t.Fatalf("workers=%d: unbatched snapshot contains batch/* keys:\n%s", workers, baseSnap)
		}
		// Cap 1 is documented as the legacy path: snapshot identical with
		// no stripping at all.
		if snap := run(1).Metrics.Snapshot(); snap != baseSnap {
			t.Fatalf("workers=%d: BatchCap=1 snapshot differs from BatchCap=0:\n--- cap 0 ---\n%s\n--- cap 1 ---\n%s", workers, baseSnap, snap)
		}
		for _, cap := range []int{2, 4, 16} {
			r := run(cap)
			if snap := stripBatchMetrics(r.Metrics.Snapshot()); snap != stripBatchMetrics(baseSnap) {
				t.Fatalf("workers=%d cap=%d: snapshot diverges from unbatched run:\n--- cap 0 ---\n%s\n--- cap %d ---\n%s",
					workers, cap, baseSnap, cap, r.Metrics.Snapshot())
			}
			sameOutputs(t, base.Served(), r.Served(), "batched vs unbatched")
		}
	}
}

// TestServeBatchingCoalesces asserts batching actually happens under
// concurrent load — occupancy above one — and that its accounting is
// exhaustive: every frame that reached a detector went through a batch
// job, none twice.
func TestServeBatchingCoalesces(t *testing.T) {
	ds, sys := system(t)
	cfg := Config{
		Workers: 8, QueueDepth: 4, SLOMS: 100, BatchCap: 8,
		Resilient: adascale.DefaultResilientConfig(),
	}
	r := newServer(t, sys, cfg).Run(load(t, ds, 8, 30, 20, 5))
	m := r.Metrics
	flushes, frames := m.Counter("batch/flushes"), m.Counter("batch/frames")
	if flushes == 0 {
		t.Fatal("no batch flushes recorded under 8 concurrent streams")
	}
	if want := m.Counter("frames/served") - m.Counter("frames/skipped"); frames != want {
		t.Fatalf("batch/frames = %d, want %d (served minus skipped): batched dispatch must cover every detector pass exactly once", frames, want)
	}
	if occ := m.Gauge("batch/occupancy"); occ <= 1 {
		t.Fatalf("batch occupancy %v: 8 concurrent streams never shared a pass", occ)
	}
	if got := float64(frames) / float64(flushes); m.Gauge("batch/occupancy") != got {
		t.Fatalf("batch/occupancy gauge %v inconsistent with frames/flushes = %v", m.Gauge("batch/occupancy"), got)
	}
}

// TestServeBatchingUnderChaos runs the fault plan of the chaos tentpole
// with batching enabled: dispatches invalidated by kills and blackouts
// leave stale pending entries behind, retries re-park under fresh result
// channels, and the run must still be byte-identical to the unbatched
// chaos run with zero lost frames.
func TestServeBatchingUnderChaos(t *testing.T) {
	ds, sys := system(t)
	plan, err := faults.GenSystemPlan(faults.ScaledSystemConfig(1.5, 41, 1200, 2))
	if err != nil {
		t.Fatal(err)
	}
	run := func(cap int) *Report {
		cfg := chaosConfig(plan)
		cfg.BatchCap = cap
		return newServer(t, sys, cfg).Run(load(t, ds, 4, 20, 20, 31))
	}
	base, batched := run(0), run(4)
	if a, b := stripBatchMetrics(base.Metrics.Snapshot()), stripBatchMetrics(batched.Metrics.Snapshot()); a != b {
		t.Fatalf("chaos snapshots diverge between caps:\n--- cap 0 ---\n%s\n--- cap 4 ---\n%s", a, b)
	}
	sameOutputs(t, base.Served(), batched.Served(), "chaos batched vs unbatched")
	if lost := batched.Lost(); lost != 0 {
		t.Fatalf("%d frames lost under chaos with batching", lost)
	}
	if base.Metrics.Counter("retry/failures") == 0 {
		t.Fatal("no dispatch failures recorded; the plan exercised nothing")
	}
}

// TestServeBatchCapValidation pins the config contract.
func TestServeBatchCapValidation(t *testing.T) {
	cfg := Config{QueueDepth: 1, BatchCap: -1}
	err := cfg.Validate()
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "BatchCap" {
		t.Fatalf("got %v, want a *ConfigError on BatchCap", err)
	}
}
