package serve

import (
	"container/heap"
	"fmt"

	"adascale/internal/adascale"
	"adascale/internal/faults"
	"adascale/internal/parallel"
	"adascale/internal/rfcn"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// The central scheduler: a single-goroutine discrete-event loop over
// virtual time. Six event kinds exist — frame completions, system fault
// events, retry expirations, frame arrivals, watchdog checks, metric
// ticks — processed in (time, kind, stream, seq) order, so the whole
// schedule is a deterministic function of the arrival schedule, the fault
// plan and the per-session scale state. Completions sort before
// same-instant arrivals so a worker freed at t can serve a frame arriving
// at t; faults sort between them so a kill at t hits the post-completion
// state; ticks sort last so a snapshot at t observes all of t's work.
//
// Real compute runs ahead asynchronously on the parallel.Pool; the loop
// blocks on a frame's result only when its virtual completion fires. The
// virtual in-service count never exceeds the pool's worker count, so a
// Submit can never deadlock behind jobs whose results the loop has not
// yet consumed. A dispatch invalidated by a fault simply abandons its
// buffered result channel — the real worker never blocks sending into it.
const (
	kindCompletion = iota
	kindFault
	kindRetry
	kindArrival
	kindWatchdog
	kindTick
)

// event is one scheduled occurrence on the virtual clock.
type event struct {
	timeMS float64
	kind   int
	stream int // index into sessions/streams (not the stream ID)
	seq    int // arrival index, dispatch ID or plan index; stabilises ordering
}

// eventHeap is a min-heap over (timeMS, kind, stream, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.timeMS != b.timeMS {
		return a.timeMS < b.timeMS
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.stream != b.stream {
		return a.stream < b.stream
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }

// noCapacity marks "no serving slot free"; anonSlot is the sup-less path's
// placeholder worker index (capacity is a bare counter there).
const (
	noCapacity = -2
	anonSlot   = -1
)

// eventLoop is the scheduler state for one Run.
type eventLoop struct {
	cfg      Config
	metrics  *Metrics
	pool     *parallel.Pool[workerState]
	streams  []Stream
	sessions []*session
	sup      *supervisor // nil without a chaos plan
	det      *rfcn.Detector

	events      eventHeap
	clockMS     float64
	busy        int // frames virtually in service (≤ cfg.Workers)
	dispatchSeq int

	// Cross-stream batching state (BatchCap > 1 only): compute
	// submissions deferred so that simultaneously-runnable frames on the
	// same rung can share one batched backbone pass. See submitCompute.
	pending      []pendingCompute
	batchFrames  int // frames shipped through batch jobs so far
	batchFlushes int // batch jobs shipped so far
}

// pendingCompute is one deferred compute submission. res snapshots the
// inflight frame's result channel at submit time: a fault that invalidates
// the dispatch clears (or a re-dispatch replaces) inf.res, so an entry is
// live only while e.inf.res == e.res — stale entries are simply skipped at
// flush, exactly as the single-frame path abandons a buffered channel.
type pendingCompute struct {
	inf   *inflightFrame
	res   chan computeResult
	frame *synth.Frame
	scale int
	key   batchKey
}

// batchKey groups pending frames that can share one batched backbone
// pass. It is the rendered image size, not the raw planned scale: the
// regressor emits continuous scales (two frames almost never plan the
// same integer), but the raster works at 1/RenderDiv of test resolution,
// so a whole band of scales renders to identical dimensions — exactly the
// grouping Backbone.ExtractBatch stacks.
type batchKey struct {
	h, w int
}

func (e pendingCompute) live() bool { return e.inf.res == e.res }

// run drives the simulation to completion.
func (l *eventLoop) run() {
	for i := range l.streams {
		for j := range l.streams[i].Frames {
			l.events.push(event{
				timeMS: l.streams[i].Frames[j].ArrivalMS,
				kind:   kindArrival, stream: i, seq: j,
			})
		}
	}
	if l.sup != nil {
		for i, e := range l.sup.plan.Events {
			l.events.push(event{timeMS: e.AtMS, kind: kindFault, stream: -1, seq: i})
		}
	}
	if l.cfg.TickMS > 0 && l.cfg.OnTick != nil {
		l.events.push(event{timeMS: l.cfg.TickMS, kind: kindTick})
	}
	for l.events.Len() > 0 {
		ev := l.events.pop()
		if l.stale(ev) {
			// Skipped before the clock advances: an abandoned timer (a
			// watchdog for a completed dispatch, a completion superseded by
			// a fault or stall) must not stretch the run's duration.
			continue
		}
		l.clockMS = ev.timeMS
		switch ev.kind {
		case kindArrival:
			l.arrive(ev)
		case kindCompletion:
			l.complete(ev)
		case kindFault:
			l.fault(ev)
		case kindRetry:
			l.retryExpired(ev)
		case kindWatchdog:
			l.watchdog(ev)
		case kindTick:
			l.cfg.OnTick(l.clockMS, l.metrics)
			// Re-arm only while the simulation still has events: a tick
			// must never keep an otherwise-finished run alive.
			if l.events.Len() > 0 {
				l.events.push(event{timeMS: ev.timeMS + l.cfg.TickMS, kind: kindTick})
			}
		}
	}
}

// arrive enqueues a frame under the bounded drop-oldest policy. Inside a
// queue-saturation window the effective capacity collapses to one frame.
func (l *eventLoop) arrive(ev event) {
	s := l.sessions[ev.stream]
	tf := l.streams[ev.stream].Frames[ev.seq]
	l.metrics.Inc("frames/offered", 1)
	depth := l.cfg.QueueDepth
	if l.sup != nil {
		depth = l.sup.queueDepth(l.clockMS, depth)
	}
	if dropped := s.push(queuedFrame{Frame: tf.Frame, ArrivalMS: tf.ArrivalMS}, depth); dropped != nil {
		l.metrics.Inc("frames/dropped", 1)
		if !l.cfg.CompactMetrics {
			l.metrics.Inc(fmt.Sprintf("stream/%d/dropped", s.id), 1)
		}
	}
	l.metrics.Observe("queue/depth", float64(s.queue.Len()))
	l.metrics.SetMax("queue/peak_depth", float64(s.queue.Len()))
	l.dispatch()
}

// claimCapacity reports a serving slot for a new dispatch: a concrete
// healthy idle worker under supervision, the anonymous counter slot
// otherwise, or noCapacity.
func (l *eventLoop) claimCapacity() int {
	if l.sup != nil {
		if w := l.sup.freeWorker(l.clockMS); w >= 0 {
			return w
		}
		return noCapacity
	}
	if l.busy < l.cfg.Workers {
		return anonSlot
	}
	return noCapacity
}

// dispatch starts frames while serving capacity and ready streams remain.
// Open-breaker streams go first and bypass the capacity claim entirely:
// shed serving is propagation-only on the stream's session state (the DFF
// warp), not the worker pool, so those streams keep draining while the
// pool is dead or saturated — the availability contract of the shed rung.
// Then retry-ready frames (failed dispatches whose backoff has expired);
// among them, and then among fresh head frames, it picks the
// earliest-arrived frame (lowest stream index on ties) — FIFO across
// streams, so no stream starves.
func (l *eventLoop) dispatch() {
	for {
		if i := l.shedCandidate(); i >= 0 {
			l.dispatchShed(i)
			continue
		}
		w := l.claimCapacity()
		if w == noCapacity {
			return
		}
		if i := l.retryCandidate(); i >= 0 {
			l.redispatch(i, w)
			continue
		}
		best := -1
		for i, s := range l.sessions {
			if !s.ready() {
				continue
			}
			if best < 0 || s.queue.Head().ArrivalMS < l.sessions[best].queue.Head().ArrivalMS {
				best = i
			}
		}
		if best < 0 {
			return
		}
		l.start(best, w)
	}
}

// shedCandidate returns the lowest session index whose breaker is open
// and which has a dispatchable frame — a retry-ready failure or a queued
// head. shouldShed transitions an expired breaker to half-open as a side
// effect, at which point the stream stops shedding and probes the real
// detector path through the pool instead.
func (l *eventLoop) shedCandidate() int {
	if l.sup == nil {
		return -1
	}
	for i, s := range l.sessions {
		if (s.inflight == nil || !s.inflight.retryReady) && !s.ready() {
			continue
		}
		if l.sup.breakers[i].shouldShed(l.clockMS) {
			return i
		}
	}
	return -1
}

// dispatchShed serves session index i's next frame in shed mode: last-good
// detections at flow-warp cost (or the sensor-skip rung's bookkeeping cost
// when the plan already skips), never touching a worker slot. A retried
// frame keeps the plan it was first dispatched with.
func (l *eventLoop) dispatchShed(i int) {
	s := l.sessions[i]
	inf := s.inflight
	if inf != nil && inf.retryReady {
		l.metrics.Inc("retry/dispatched", 1)
	} else {
		qf := s.pop()
		inf = &inflightFrame{
			frame: qf.Frame, plan: s.sess.Plan(qf.Frame),
			arrivalMS: qf.ArrivalMS, startMS: l.clockMS,
			worker: anonSlot, firstFailMS: -1,
		}
		s.inflight = inf
		l.metrics.Observe("queue/wait_ms", l.clockMS-qf.ArrivalMS)
	}
	inf.shed, inf.probe = true, false
	inf.res = nil
	serviceMS := simclock.DetectorBaseMS + inf.plan.JitterMS
	if !inf.plan.Skip {
		serviceMS += simclock.FlowMS
		l.metrics.Inc("breaker/shed", 1)
		l.sup.breakers[i].shedFrames++
	}
	l.place(i, inf, anonSlot, serviceMS)
}

// retryCandidate returns the session index with the earliest-arrived
// retry-ready frame, or -1.
func (l *eventLoop) retryCandidate() int {
	best := -1
	for i, s := range l.sessions {
		if s.inflight == nil || !s.inflight.retryReady {
			continue
		}
		if best < 0 || s.inflight.arrivalMS < l.sessions[best].inflight.arrivalMS {
			best = i
		}
	}
	return best
}

// start dispatches the head frame of session index i on worker slot w:
// plans the scale, costs the frame on the virtual clock, and (unless the
// plan skips the detector or the stream's breaker sheds it) ships the
// compute to the pool.
func (l *eventLoop) start(i, w int) {
	s := l.sessions[i]
	qf := s.pop()
	plan := s.sess.Plan(qf.Frame)
	inf := &inflightFrame{
		frame: qf.Frame, plan: plan, arrivalMS: qf.ArrivalMS, startMS: l.clockMS,
		worker: anonSlot, firstFailMS: -1,
	}
	if !plan.Skip {
		inf.serviceMS = simclock.DetectMS(qf.Frame.W, qf.Frame.H, plan.Scale) + s.sess.Overhead() + plan.JitterMS
	}
	s.inflight = inf
	l.metrics.Observe("queue/wait_ms", l.clockMS-qf.ArrivalMS)
	l.dispatchInflight(i, w, inf)
}

// redispatch re-dispatches session index i's retry-ready frame on worker
// slot w, with the plan (and therefore the modelled cost) it was first
// dispatched with — re-planning would double-step the session's deadline
// hysteresis.
func (l *eventLoop) redispatch(i, w int) {
	l.metrics.Inc("retry/dispatched", 1)
	l.dispatchInflight(i, w, l.sessions[i].inflight)
}

// dispatchInflight places the frame on the virtual clock in its current
// mode: skip (sensor fault) or the full detector path on the pool. Shed
// dispatches never reach here — dispatch routes open-breaker streams
// through dispatchShed before any capacity is claimed.
func (l *eventLoop) dispatchInflight(i, w int, inf *inflightFrame) {
	inf.shed, inf.probe = false, l.probing(i, inf)
	inf.res = nil
	var serviceMS float64
	if inf.plan.Skip {
		// Rung 1: a sensor-observable fault costs only fixed bookkeeping
		// and never reaches a worker.
		serviceMS = simclock.DetectorBaseMS + inf.plan.JitterMS
	} else {
		serviceMS = inf.serviceMS
		if !l.cfg.ModelOnly {
			// Model-only runs leave inf.res nil, so settle takes the
			// propagation path: pure bookkeeping on the virtual clock, no
			// detector compute.
			l.submitCompute(inf)
		}
	}
	l.place(i, inf, w, serviceMS)
}

// probing reports whether this dispatch is a half-open breaker's probe:
// its success closes the breaker, its failure re-opens with a longer
// cooldown.
func (l *eventLoop) probing(i int, inf *inflightFrame) bool {
	if l.sup == nil || inf.plan.Skip {
		return false
	}
	return l.sup.breakers[i].state == breakerHalfOpen
}

// place assigns the dispatch a fresh ID, occupies the worker slot, and
// schedules the completion (and, under supervision, the watchdog).
func (l *eventLoop) place(i int, inf *inflightFrame, w int, serviceMS float64) {
	l.dispatchSeq++
	inf.dispID = l.dispatchSeq
	inf.worker = w
	inf.retryReady = false
	inf.completionMS = l.clockMS + serviceMS
	if w >= 0 {
		l.sup.workers[w].dispID = inf.dispID
		l.sup.workers[w].stream = i
	}
	if !inf.shed {
		// Shed dispatches run off-pool; busy guards only real pool
		// submissions (the Submit-never-deadlocks invariant).
		l.busy++
	}
	l.events.push(event{timeMS: inf.completionMS, kind: kindCompletion, stream: i, seq: inf.dispID})
	if l.sup != nil && l.sup.cfg.WatchdogMS > 0 && !inf.plan.Skip && !inf.shed {
		l.events.push(event{timeMS: l.clockMS + l.sup.cfg.WatchdogMS, kind: kindWatchdog, stream: i, seq: inf.dispID})
	}
}

// submitCompute ships the frame's detector + regressor pass to the pool —
// or, with BatchCap > 1, parks it on the pending list so the loop can
// coalesce it with other frames in flight on the same batch key. A
// pending group flushes eagerly the moment it reaches BatchCap, and a
// parked frame flushes (with its whole group) no later than its own
// completion event (flushFor) — so batching adds zero virtual latency:
// only work that was already simultaneously in flight ever shares a
// pass, and the virtual schedule is byte-identical at every cap.
func (l *eventLoop) submitCompute(inf *inflightFrame) {
	inf.res = make(chan computeResult, 1)
	if l.cfg.BatchCap > 1 {
		h, w := l.det.RenderSize(inf.frame, inf.plan.Scale)
		e := pendingCompute{inf: inf, res: inf.res, frame: inf.frame, scale: inf.plan.Scale, key: batchKey{h, w}}
		l.pending = append(l.pending, e)
		n := 0
		for _, p := range l.pending {
			if p.live() && p.key == e.key {
				n++
			}
		}
		if n >= l.cfg.BatchCap {
			l.flushGroup(e.key)
		}
		return
	}
	frame, scale, res, tr := inf.frame, inf.plan.Scale, inf.res, l.cfg.Tracer
	l.pool.Submit(func(w workerState) {
		// A panicking frame must still deliver a result — the loop
		// blocks on res at the completion event — and must still
		// count against the pool (state rebuild), hence the re-panic.
		defer func() {
			if r := recover(); r != nil {
				res <- computeResult{err: fmt.Errorf("serve: frame compute panicked: %v", r)}
				panic(r)
			}
		}()
		ref := tr.Now()
		r := w.det.DetectWithFeatures(frame, scale)
		detWall := tr.SinceMS(ref)
		ref = tr.Now()
		t := w.reg.Predict(r.Features)
		w.det.Recycle(r.Features)
		r.Features = nil
		res <- computeResult{r: r, t: t, detWallMS: detWall, regWallMS: tr.SinceMS(ref)}
	})
}

// flushGroup ships the pending frames of one batch group as a single
// batched pool job, compacting the survivors (other groups' entries) in
// order. Stale entries — dispatches a fault invalidated since they were
// parked — are dropped silently; nobody reads their channels.
func (l *eventLoop) flushGroup(k batchKey) {
	var batch []pendingCompute
	kept := l.pending[:0]
	for _, e := range l.pending {
		switch {
		case !e.live():
		case e.key == k:
			batch = append(batch, e)
		default:
			kept = append(kept, e)
		}
	}
	l.pending = kept
	l.submitBatch(batch)
}

// flushFor ships the pending batch group containing inf's parked
// dispatch, if any. complete calls it before blocking on inf's result:
// only the completing frame's group has to run now — every frame still in
// it was in flight at this instant, so batching them adds no virtual
// latency — while other groups stay parked, accumulating members until
// they hit BatchCap or one of their own completions fires. A frame is
// therefore computed no later than its own completion event, which is
// exactly when the loop first needs the result.
func (l *eventLoop) flushFor(inf *inflightFrame) {
	for _, e := range l.pending {
		if e.inf == inf && e.live() {
			l.flushGroup(e.key)
			return
		}
	}
}

// submitBatch ships one batched detector pass for a group of pending
// frames. Results are delivered to each frame's own buffered channel, so
// the job completes autonomously — the Submit-never-deadlocks invariant is
// untouched. A panic poisons the batch: every not-yet-delivered frame gets
// the error result (each degrades through its session's propagation path,
// no frame is lost) and the panic re-raises so the pool rebuilds the
// worker, exactly like the single-frame path.
func (l *eventLoop) submitBatch(batch []pendingCompute) {
	if len(batch) == 0 {
		return
	}
	l.batchFrames += len(batch)
	l.batchFlushes++
	l.metrics.Observe("batch/size", float64(len(batch)))
	l.metrics.Inc("batch/frames", int64(len(batch)))
	l.metrics.Inc("batch/flushes", 1)
	l.metrics.Set("batch/occupancy", float64(l.batchFrames)/float64(l.batchFlushes))
	frames := make([]*synth.Frame, len(batch))
	scales := make([]int, len(batch))
	ress := make([]chan computeResult, len(batch))
	for j, e := range batch {
		frames[j], scales[j], ress[j] = e.frame, e.scale, e.res
	}
	tr := l.cfg.Tracer
	l.pool.SubmitBatch(func(w workerState) {
		delivered := 0
		defer func() {
			if r := recover(); r != nil {
				err := fmt.Errorf("serve: frame compute panicked: %v", r)
				for _, res := range ress[delivered:] {
					res <- computeResult{err: err}
				}
				panic(r)
			}
		}()
		ref := tr.Now()
		rs := w.det.DetectBatch(frames, scales)
		// The shared backbone pass is attributed evenly: per-frame wall
		// shares are not separable once the pass is fused (wall-mode
		// profiling only; virtual spans use the modelled cost).
		detWall := tr.SinceMS(ref) / float64(len(rs))
		for j, r := range rs {
			ref = tr.Now()
			t := w.reg.Predict(r.Features)
			w.det.Recycle(r.Features)
			r.Features = nil
			ress[j] <- computeResult{r: r, t: t, detWallMS: detWall, regWallMS: tr.SinceMS(ref)}
			delivered++
		}
	}, len(batch))
}

// freeDispatch releases the frame's worker slot and invalidates its
// dispatch ID, so any already-scheduled completion or watchdog event for
// it is recognised as stale.
func (l *eventLoop) freeDispatch(inf *inflightFrame) {
	if inf.worker >= 0 {
		l.sup.workers[inf.worker].dispID = 0
	}
	inf.dispID = 0
	inf.worker = anonSlot
	if !inf.shed {
		l.busy--
	}
}

// stale recognises events whose dispatch no longer exists: a completion
// or watchdog whose dispatch ID was invalidated by a fault, or a
// completion superseded by a stall's rescheduled one (the completionMS
// check). run skips them without advancing the clock; the handlers below
// therefore only ever see live events.
func (l *eventLoop) stale(ev event) bool {
	switch ev.kind {
	case kindCompletion:
		inf := l.sessions[ev.stream].inflight
		return inf == nil || inf.dispID != ev.seq || ev.timeMS != inf.completionMS
	case kindWatchdog:
		inf := l.sessions[ev.stream].inflight
		return inf == nil || inf.dispID != ev.seq
	}
	return false
}

// complete finishes the in-flight frame of session index ev.stream.
func (l *eventLoop) complete(ev event) {
	s := l.sessions[ev.stream]
	inf := s.inflight
	l.freeDispatch(inf)
	var cr computeResult
	if inf.res != nil {
		// A still-parked dispatch must ship before the loop blocks on its
		// result (no-op when it was flushed eagerly or never parked).
		l.flushFor(inf)
		cr = <-inf.res
	}
	l.settle(ev.stream, inf, cr)
	l.dispatch()
}

// settle emits the frame's output through the resilient ladder with its
// end-to-end latency as the budget charge (the SLO rung) and records the
// serving metrics. It is the single exit for every frame: completed,
// breaker-shed, or abandoned after exhausting its retries.
func (l *eventLoop) settle(i int, inf *inflightFrame, cr computeResult) {
	s := l.sessions[i]
	s.inflight = nil

	latency := l.clockMS - inf.arrivalMS
	var out adascale.FrameOutput
	detectorRan := false
	switch {
	case inf.plan.Skip:
		l.metrics.Inc("frames/skipped", 1)
		out = s.sess.Finish(inf.frame, inf.plan, nil, 0, latency)
	case inf.res == nil:
		// Breaker-shed or abandoned: the degradation ladder propagates the
		// last-good detections with explicit accounting.
		out = s.sess.Finish(inf.frame, inf.plan, nil, 0, latency)
	case cr.err != nil:
		// A poisoned frame degrades like a sensed fault: the session
		// propagates its last good detections with explicit accounting,
		// and the panic is counted — one bad frame must not take down the
		// stream, let alone the server.
		l.metrics.Inc("frames/panic", 1)
		out = s.sess.Finish(inf.frame, inf.plan, nil, 0, latency)
	default:
		out = s.sess.Finish(inf.frame, inf.plan, cr.r, cr.t, latency)
		detectorRan = true
	}
	s.outputs = append(s.outputs, out)

	l.metrics.Inc("frames/served", 1)
	if !l.cfg.CompactMetrics {
		l.metrics.Inc(fmt.Sprintf("stream/%d/served", s.id), 1)
	}
	l.metrics.Inc(fmt.Sprintf("scale/%d", out.Scale), 1)
	l.metrics.Observe("latency/ms", latency)
	l.metrics.Observe("service/ms", l.clockMS-inf.startMS)
	if out.Health.Fault != synth.FaultNone {
		l.metrics.Inc("fault/"+out.Health.Fault.String(), 1)
	}
	if out.Health.Fallback != adascale.FallbackNone {
		l.metrics.Inc("fallback/"+out.Health.Fallback.String(), 1)
	}
	if l.sup != nil {
		if detectorRan {
			if l.sup.breakers[i].onSuccess() {
				l.metrics.Inc("breaker/close", 1)
			}
		}
		if inf.firstFailMS >= 0 {
			// Recovery time: first dispatch failure → the frame's output.
			l.metrics.Observe("recovery/ms", l.clockMS-inf.firstFailMS)
		}
	}
	sloMissed := l.cfg.SLOMS > 0 && latency > l.cfg.SLOMS
	if sloMissed {
		s.sloMiss++
		l.metrics.Inc("slo/miss", 1)
		if !l.cfg.CompactMetrics {
			l.metrics.Inc(fmt.Sprintf("stream/%d/slo_miss", s.id), 1)
		}
	}
	l.trace(s, out, cr, inf.startMS, sloMissed)
}

// fault applies one system fault event (seq indexes the plan), or — for
// seq < 0 — handles a capacity-recovery wakeup.
func (l *eventLoop) fault(ev event) {
	if ev.seq < 0 {
		l.dispatch()
		return
	}
	e := l.sup.plan.Events[ev.seq]
	l.metrics.Inc("chaos/"+e.Kind.String(), 1)
	switch e.Kind {
	case faults.SysWorkerKill:
		l.metrics.Inc("workers/rebuilt", 1)
		l.killWorker(e.Worker, l.clockMS+l.sup.cfg.RebuildMS, "kill")
	case faults.SysWorkerStall:
		l.stallWorker(e.Worker, e.DurationMS)
	case faults.SysNodeBlackout:
		until := l.clockMS + e.DurationMS
		for wi := range l.sup.workers {
			l.killWorker(wi, until, "blackout")
		}
		// The node is gone: every stream migrates — its session checkpoint
		// restored into a fresh session, as a replacement node would do
		// before replaying the stream.
		for _, s := range l.sessions {
			l.sup.migrate(s)
			l.metrics.Inc("migrations", 1)
		}
	case faults.SysQueueSaturate:
		if u := l.clockMS + e.DurationMS; u > l.sup.satUntil {
			l.sup.satUntil = u
		}
	}
	l.dispatch()
}

// killWorker takes a worker down until deadUntil; its in-flight dispatch
// (if any) is lost and routed to retry.
func (l *eventLoop) killWorker(wi int, deadUntil float64, reason string) {
	w := &l.sup.workers[wi]
	if deadUntil > w.deadUntilMS {
		w.deadUntilMS = deadUntil
	}
	if w.dispID != 0 {
		stream := w.stream
		w.dispID = 0
		l.failDispatch(stream, reason)
	}
	l.wakeAt(w.deadUntilMS)
}

// stallWorker freezes a worker for durMS; an in-flight dispatch resumes
// where it left off when the stall ends, so its completion moves out by
// the stall (the watchdog may reassign it first).
func (l *eventLoop) stallWorker(wi int, durMS float64) {
	w := &l.sup.workers[wi]
	until := l.clockMS + durMS
	if until > w.stallUntilMS {
		w.stallUntilMS = until
	}
	if w.dispID != 0 {
		inf := l.sessions[w.stream].inflight
		inf.completionMS += durMS
		l.metrics.Inc("stall/delayed", 1)
		l.events.push(event{timeMS: inf.completionMS, kind: kindCompletion, stream: w.stream, seq: inf.dispID})
	}
	l.wakeAt(w.stallUntilMS)
}

// failDispatch invalidates session index i's current dispatch: the frame
// goes to retry with exponential backoff and deterministic jitter, or —
// once MaxRetries is exhausted — is abandoned into the degradation ladder
// (propagated output; never silently lost). The breaker records the
// failure. The worker slot itself is the caller's to release.
func (l *eventLoop) failDispatch(i int, reason string) {
	s := l.sessions[i]
	inf := s.inflight
	if inf == nil || inf.dispID == 0 {
		return
	}
	inf.dispID = 0
	inf.worker = anonSlot
	if !inf.shed {
		l.busy--
	}
	inf.probe, inf.shed = false, false
	inf.res = nil // the buffered result channel is abandoned, never joined
	if inf.firstFailMS < 0 {
		inf.firstFailMS = l.clockMS
	}
	inf.attempts++
	l.metrics.Inc("retry/failures", 1)
	l.metrics.Inc("fail/"+reason, 1)
	if l.sup.breakers[i].onFailure(l.clockMS) {
		l.metrics.Inc("breaker/open", 1)
	}
	if inf.attempts > l.sup.cfg.MaxRetries {
		l.metrics.Inc("frames/abandoned", 1)
		l.settle(i, inf, computeResult{})
		return
	}
	backoff := l.sup.backoffMS(s.id, inf.attempts)
	l.metrics.Observe("retry/backoff_ms", backoff)
	l.events.push(event{timeMS: l.clockMS + backoff, kind: kindRetry, stream: i, seq: inf.attempts})
}

// retryExpired marks a failed frame dispatchable again.
func (l *eventLoop) retryExpired(ev event) {
	s := l.sessions[ev.stream]
	if inf := s.inflight; inf != nil && inf.dispID == 0 {
		inf.retryReady = true
	}
	l.dispatch()
}

// watchdog fires WatchdogMS after a dispatch; if that dispatch is still in
// flight it is presumed stalled and reassigned.
func (l *eventLoop) watchdog(ev event) {
	s := l.sessions[ev.stream]
	inf := s.inflight
	l.metrics.Inc("watchdog/reassigned", 1)
	if inf.worker >= 0 {
		// The stalled worker is abandoned to its stall; it frees when the
		// stall ends, not when the reassigned frame completes.
		l.sup.workers[inf.worker].dispID = 0
	}
	l.failDispatch(ev.stream, "watchdog")
	l.dispatch()
}

// wakeAt schedules a capacity-recovery wakeup: workers revived at t must
// be able to pick up queued or retry-ready work immediately.
func (l *eventLoop) wakeAt(t float64) {
	l.events.push(event{timeMS: t, kind: kindFault, stream: -1, seq: -1})
}

// trace records the served frame's pipeline-stage spans (start = the
// frame's dispatch time on the virtual clock) and the per-stage metric
// histograms — overall, per-stream, and per-SLO-miss, so a miss can be
// localised to the stage that ate the budget. No-op without a tracer, so
// untraced snapshots stay byte-identical to the pre-tracing format.
func (l *eventLoop) trace(s *session, out adascale.FrameOutput, cr computeResult, startMS float64, sloMissed bool) {
	tr := l.cfg.Tracer
	if tr == nil {
		return
	}
	spans := adascale.FrameSpans(tr, s.id, len(s.outputs)-1, startMS, out, cr.detWallMS, cr.regWallMS)
	tr.Add(spans)
	for _, sp := range spans {
		stage := sp.Stage.String()
		l.metrics.Observe("stage/"+stage+"/ms", sp.DurMS)
		l.metrics.Observe(fmt.Sprintf("stream/%d/stage/%s/ms", s.id, stage), sp.DurMS)
		if sloMissed {
			l.metrics.Observe("slo_miss/stage/"+stage+"/ms", sp.DurMS)
		}
	}
}
