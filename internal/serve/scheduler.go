package serve

import (
	"container/heap"
	"fmt"

	"adascale/internal/adascale"
	"adascale/internal/parallel"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// The central scheduler: a single-goroutine discrete-event loop over
// virtual time. Three event kinds exist — frame completions, frame
// arrivals, metric ticks — processed in (time, kind, stream, seq) order,
// so the whole schedule is a deterministic function of the arrival
// schedule and the per-session scale state. Completions sort before
// same-instant arrivals so a worker freed at t can serve a frame arriving
// at t; ticks sort last so a snapshot at t observes all of t's work.
//
// Real compute runs ahead asynchronously on the parallel.Pool; the loop
// blocks on a frame's result only when its virtual completion fires. The
// virtual in-service count never exceeds the pool's worker count, so a
// Submit can never deadlock behind jobs whose results the loop has not
// yet consumed.
const (
	kindCompletion = iota
	kindArrival
	kindTick
)

// event is one scheduled occurrence on the virtual clock.
type event struct {
	timeMS float64
	kind   int
	stream int // index into sessions/streams (not the stream ID)
	seq    int // arrival index or dispatch counter; stabilises ordering
}

// eventHeap is a min-heap over (timeMS, kind, stream, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.timeMS != b.timeMS {
		return a.timeMS < b.timeMS
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.stream != b.stream {
		return a.stream < b.stream
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }

// eventLoop is the scheduler state for one Run.
type eventLoop struct {
	cfg      Config
	metrics  *Metrics
	pool     *parallel.Pool[workerState]
	streams  []Stream
	sessions []*session

	events      eventHeap
	clockMS     float64
	busy        int // frames virtually in service (≤ cfg.Workers)
	dispatchSeq int
}

// run drives the simulation to completion.
func (l *eventLoop) run() {
	for i := range l.streams {
		for j := range l.streams[i].Frames {
			l.events.push(event{
				timeMS: l.streams[i].Frames[j].ArrivalMS,
				kind:   kindArrival, stream: i, seq: j,
			})
		}
	}
	if l.cfg.TickMS > 0 && l.cfg.OnTick != nil {
		l.events.push(event{timeMS: l.cfg.TickMS, kind: kindTick})
	}
	for l.events.Len() > 0 {
		ev := l.events.pop()
		l.clockMS = ev.timeMS
		switch ev.kind {
		case kindArrival:
			l.arrive(ev)
		case kindCompletion:
			l.complete(ev)
		case kindTick:
			l.cfg.OnTick(l.clockMS, l.metrics)
			// Re-arm only while the simulation still has events: a tick
			// must never keep an otherwise-finished run alive.
			if l.events.Len() > 0 {
				l.events.push(event{timeMS: ev.timeMS + l.cfg.TickMS, kind: kindTick})
			}
		}
	}
}

// arrive enqueues a frame under the bounded drop-oldest policy.
func (l *eventLoop) arrive(ev event) {
	s := l.sessions[ev.stream]
	tf := l.streams[ev.stream].Frames[ev.seq]
	l.metrics.Inc("frames/offered", 1)
	if dropped := s.push(queuedFrame{frame: tf.Frame, arrivalMS: tf.ArrivalMS}, l.cfg.QueueDepth); dropped != nil {
		l.metrics.Inc("frames/dropped", 1)
		l.metrics.Inc(fmt.Sprintf("stream/%d/dropped", s.id), 1)
	}
	l.metrics.Observe("queue/depth", float64(len(s.queue)))
	l.metrics.SetMax("queue/peak_depth", float64(len(s.queue)))
	l.dispatch()
}

// dispatch starts frames while serving capacity and ready streams remain.
// Among ready streams it picks the earliest-arrived head frame (lowest
// stream index on ties) — FIFO across streams, so no stream starves.
func (l *eventLoop) dispatch() {
	for l.busy < l.cfg.Workers {
		best := -1
		for i, s := range l.sessions {
			if !s.ready() {
				continue
			}
			if best < 0 || s.queue[0].arrivalMS < l.sessions[best].queue[0].arrivalMS {
				best = i
			}
		}
		if best < 0 {
			return
		}
		l.start(best)
	}
}

// start dispatches the head frame of session index i: plans the scale,
// costs the frame on the virtual clock, and (unless the plan skips the
// detector) ships the compute to the pool.
func (l *eventLoop) start(i int) {
	s := l.sessions[i]
	qf := s.pop()
	plan := s.sess.Plan(qf.frame)
	inf := &inflightFrame{frame: qf.frame, plan: plan, arrivalMS: qf.arrivalMS, startMS: l.clockMS}

	var serviceMS float64
	if plan.Skip {
		// Rung 1: a sensor-observable fault costs only fixed bookkeeping
		// and never reaches a worker.
		serviceMS = simclock.DetectorBaseMS + plan.JitterMS
	} else {
		serviceMS = simclock.DetectMS(qf.frame.W, qf.frame.H, plan.Scale) + s.sess.Overhead() + plan.JitterMS
		inf.res = make(chan computeResult, 1)
		frame, scale, res, tr := qf.frame, plan.Scale, inf.res, l.cfg.Tracer
		l.pool.Submit(func(w workerState) {
			// A panicking frame must still deliver a result — the loop
			// blocks on res at the completion event — and must still
			// count against the pool (state rebuild), hence the re-panic.
			defer func() {
				if r := recover(); r != nil {
					res <- computeResult{err: fmt.Errorf("serve: frame compute panicked: %v", r)}
					panic(r)
				}
			}()
			ref := tr.Now()
			r := w.det.DetectWithFeatures(frame, scale)
			detWall := tr.SinceMS(ref)
			ref = tr.Now()
			t := w.reg.Predict(r.Features)
			w.det.Recycle(r.Features)
			r.Features = nil
			res <- computeResult{r: r, t: t, detWallMS: detWall, regWallMS: tr.SinceMS(ref)}
		})
	}

	s.inflight = inf
	l.busy++
	l.metrics.Observe("queue/wait_ms", l.clockMS-qf.arrivalMS)
	l.events.push(event{timeMS: l.clockMS + serviceMS, kind: kindCompletion, stream: i, seq: l.dispatchSeq})
	l.dispatchSeq++
}

// complete finishes the in-flight frame of session index ev.stream: joins
// the worker's result, closes the frame through the resilient ladder with
// its end-to-end latency as the budget charge (the SLO rung), and records
// the serving metrics.
func (l *eventLoop) complete(ev event) {
	s := l.sessions[ev.stream]
	inf := s.inflight
	s.inflight = nil
	l.busy--

	latency := l.clockMS - inf.arrivalMS
	var out adascale.FrameOutput
	var cr computeResult
	switch {
	case inf.res == nil:
		l.metrics.Inc("frames/skipped", 1)
		out = s.sess.Finish(inf.frame, inf.plan, nil, 0, latency)
	default:
		cr = <-inf.res
		if cr.err != nil {
			// A poisoned frame degrades like a sensed fault: the session
			// propagates its last good detections with explicit
			// accounting, and the panic is counted — one bad frame must
			// not take down the stream, let alone the server.
			l.metrics.Inc("frames/panic", 1)
			out = s.sess.Finish(inf.frame, inf.plan, nil, 0, latency)
		} else {
			out = s.sess.Finish(inf.frame, inf.plan, cr.r, cr.t, latency)
		}
	}
	s.outputs = append(s.outputs, out)

	l.metrics.Inc("frames/served", 1)
	l.metrics.Inc(fmt.Sprintf("stream/%d/served", s.id), 1)
	l.metrics.Inc(fmt.Sprintf("scale/%d", out.Scale), 1)
	l.metrics.Observe("latency/ms", latency)
	l.metrics.Observe("service/ms", l.clockMS-inf.startMS)
	if out.Health.Fault != synth.FaultNone {
		l.metrics.Inc("fault/"+out.Health.Fault.String(), 1)
	}
	if out.Health.Fallback != adascale.FallbackNone {
		l.metrics.Inc("fallback/"+out.Health.Fallback.String(), 1)
	}
	sloMissed := l.cfg.SLOMS > 0 && latency > l.cfg.SLOMS
	if sloMissed {
		s.sloMiss++
		l.metrics.Inc("slo/miss", 1)
		l.metrics.Inc(fmt.Sprintf("stream/%d/slo_miss", s.id), 1)
	}
	l.trace(s, out, cr, inf.startMS, sloMissed)
	l.dispatch()
}

// trace records the served frame's pipeline-stage spans (start = the
// frame's dispatch time on the virtual clock) and the per-stage metric
// histograms — overall, per-stream, and per-SLO-miss, so a miss can be
// localised to the stage that ate the budget. No-op without a tracer, so
// untraced snapshots stay byte-identical to the pre-tracing format.
func (l *eventLoop) trace(s *session, out adascale.FrameOutput, cr computeResult, startMS float64, sloMissed bool) {
	tr := l.cfg.Tracer
	if tr == nil {
		return
	}
	spans := adascale.FrameSpans(tr, s.id, len(s.outputs)-1, startMS, out, cr.detWallMS, cr.regWallMS)
	tr.Add(spans)
	for _, sp := range spans {
		stage := sp.Stage.String()
		l.metrics.Observe("stage/"+stage+"/ms", sp.DurMS)
		l.metrics.Observe(fmt.Sprintf("stream/%d/stage/%s/ms", s.id, stage), sp.DurMS)
		if sloMissed {
			l.metrics.Observe("slo_miss/stage/"+stage+"/ms", sp.DurMS)
		}
	}
}
