package serve

import (
	"fmt"
	"math"
	"math/rand"

	"adascale/internal/adascale"
	"adascale/internal/synth"
)

// This file is the deterministic load generator: it turns a generated
// snippet corpus into per-stream open-loop arrival schedules, so a
// serving experiment is a pure function of (dataset seed, load seed,
// config) — two runs produce the same frames at the same virtual times
// and therefore the same metrics snapshot, byte for byte.

// TimedFrame is one frame with its open-loop arrival time on the server's
// virtual clock.
type TimedFrame struct {
	Frame *synth.Frame

	// ArrivalMS is when the frame reaches the server (virtual ms). The
	// generator is open-loop: arrivals do not wait for the server, which
	// is what makes overload produce queue growth and drops rather than
	// politely slowing the camera down.
	ArrivalMS float64
}

// Stream is one video session's workload: an ordered arrival schedule.
type Stream struct {
	ID     int
	Frames []TimedFrame

	// Checkpoint, when non-nil, seeds the stream's resilient session from
	// a prior run's ladder state instead of a fresh session — how the
	// cluster layer (internal/cluster) carries a stream's scale schedule,
	// last-good detections and deadline budget across epoch windows and
	// node migrations. GenLoad leaves it nil (fresh streams).
	Checkpoint *adascale.SessionCheckpoint
}

// LoadConfig parameterises the generator.
type LoadConfig struct {
	// Streams is the number of concurrent sessions to generate.
	Streams int

	// FPS is the mean per-stream arrival rate (frames/second). Arrivals
	// are Poisson-ish: exponential inter-arrival times with mean 1000/FPS
	// drawn from a per-stream seeded generator.
	FPS float64

	// FramesPerStream is the number of frames each stream offers.
	FramesPerStream int

	// Seed drives every arrival draw. Each stream draws from its own
	// generator seeded by (Seed, stream ID), so streams are independent
	// and the schedule is identical for any worker count.
	Seed int64
}

// Validate reports configuration errors.
func (c *LoadConfig) Validate() error {
	switch {
	case c.Streams <= 0:
		return fmt.Errorf("serve: load config needs at least one stream, got %d", c.Streams)
	case c.FPS <= 0 || math.IsNaN(c.FPS) || math.IsInf(c.FPS, 0):
		// The NaN/Inf arms matter: NaN fails every comparison, so a plain
		// `<= 0` check would wave a NaN rate through and poison every
		// arrival time downstream (found by FuzzLoadgen).
		return fmt.Errorf("serve: load config needs a positive finite FPS, got %v", c.FPS)
	case c.FramesPerStream <= 0:
		return fmt.Errorf("serve: load config needs frames per stream, got %d", c.FramesPerStream)
	}
	return nil
}

// GenLoad builds the per-stream arrival schedules. Stream i cycles through
// the snippet list starting at snippet i (so concurrent streams exercise
// different content), flattening frames in order; frames are referenced,
// not copied. Inter-arrival times are exponential with mean 1000/FPS.
func GenLoad(snippets []synth.Snippet, cfg LoadConfig) ([]Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(snippets) == 0 {
		return nil, fmt.Errorf("serve: no snippets to generate load from")
	}
	streams := make([]Stream, cfg.Streams)
	for id := range streams {
		rng := rand.New(rand.NewSource(loadSeed(cfg.Seed, id)))
		frames := make([]TimedFrame, 0, cfg.FramesPerStream)
		clock := 0.0
		sn, idx := id%len(snippets), 0
		for len(frames) < cfg.FramesPerStream {
			if idx >= len(snippets[sn].Frames) {
				sn, idx = (sn+1)%len(snippets), 0
				continue
			}
			clock += rng.ExpFloat64() * 1000 / cfg.FPS
			frames = append(frames, TimedFrame{Frame: &snippets[sn].Frames[idx], ArrivalMS: clock})
			idx++
		}
		streams[id] = Stream{ID: id, Frames: frames}
	}
	return streams, nil
}

// loadSeed mixes the load seed and stream ID (splitmix64 finaliser) into
// an independent per-stream arrival process, distinct from the dataset
// generation and fault-injection streams.
func loadSeed(base int64, id int) int64 {
	z := uint64(base)*0xBF58476D1CE4E5B9 + uint64(id)*0x9E3779B97F4A7C15 + 0x5EED
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}
