package serve

import (
	"fmt"

	"adascale/internal/adascale"
	"adascale/internal/faults"
)

// The supervision layer: everything the scheduler needs to survive the
// system fault plan (faults.SystemPlan). It tracks virtual worker health
// (alive / stalled / dead-rebuilding), owns the per-stream circuit
// breakers, derives deterministic retry backoff, and performs stream
// migration (checkpoint/restore of the resilient session) on node
// blackout. The supervisor holds no clock of its own — every decision is a
// pure function of the event loop's virtual time and the seeded plan, so
// chaos runs are byte-identical across runs and real core counts.

// SupervisorConfig tunes the recovery machinery of a chaos-enabled server.
// The zero value means "all defaults"; it is only consulted when
// Config.Chaos is set.
type SupervisorConfig struct {
	// MaxRetries bounds redispatch attempts per frame; once exhausted the
	// frame is abandoned into the degradation ladder (propagated output,
	// never silently lost). 0 means 4.
	MaxRetries int

	// RetryBaseMS is the first retry delay; attempt k waits
	// min(RetryBaseMS·2^(k-1), RetryMaxMS) plus deterministic jitter in
	// [0, RetryBaseMS). 0 means 20.
	RetryBaseMS float64

	// RetryMaxMS caps the exponential backoff. 0 means 8 × RetryBaseMS.
	RetryMaxMS float64

	// RetrySeed drives the jitter stream (pure function of stream ID and
	// attempt, so it is identical across runs and worker counts).
	RetrySeed int64

	// WatchdogMS is the stalled-dispatch threshold: a dispatch still in
	// flight this long after starting is presumed stalled and reassigned.
	// 0 means 4 × the SLO if one is set, else 400; negative disables.
	WatchdogMS float64

	// RebuildMS is how long a killed worker takes to rebuild before
	// accepting work again. 0 means 60.
	RebuildMS float64

	// BreakerThreshold is the consecutive-failure count that opens a
	// stream's circuit breaker. 0 means 2; negative disables the breaker
	// entirely (the naive-failover comparison mode: every retry goes back
	// through the detector path).
	BreakerThreshold int

	// BreakerCooldownMS is the initial open interval (doubled per failed
	// half-open probe, capped at 8×). 0 means 300.
	BreakerCooldownMS float64
}

func (c SupervisorConfig) withDefaults(sloMS float64) SupervisorConfig {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.RetryBaseMS <= 0 {
		c.RetryBaseMS = 20
	}
	if c.RetryMaxMS <= 0 {
		c.RetryMaxMS = 8 * c.RetryBaseMS
	}
	if c.WatchdogMS == 0 {
		if sloMS > 0 {
			c.WatchdogMS = 4 * sloMS
		} else {
			c.WatchdogMS = 400
		}
	}
	if c.RebuildMS <= 0 {
		c.RebuildMS = 60
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 2
	}
	if c.BreakerCooldownMS <= 0 {
		c.BreakerCooldownMS = 300
	}
	return c
}

// Validate reports configuration errors.
func (c *SupervisorConfig) Validate() error {
	switch {
	case c.MaxRetries < 0:
		return &ConfigError{Field: "Supervisor.MaxRetries", Reason: fmt.Sprintf("negative retry bound %d", c.MaxRetries)}
	case c.RetryBaseMS < 0 || c.RetryMaxMS < 0:
		return &ConfigError{Field: "Supervisor.RetryBaseMS", Reason: fmt.Sprintf("negative backoff (%v, %v)", c.RetryBaseMS, c.RetryMaxMS)}
	case c.RebuildMS < 0:
		return &ConfigError{Field: "Supervisor.RebuildMS", Reason: fmt.Sprintf("negative rebuild interval %v", c.RebuildMS)}
	case c.BreakerCooldownMS < 0:
		return &ConfigError{Field: "Supervisor.BreakerCooldownMS", Reason: fmt.Sprintf("negative cooldown %v", c.BreakerCooldownMS)}
	}
	return nil
}

// vworker is one virtual serving slot's health state. The scheduler's
// virtual in-service count is the number of workers with a non-zero
// dispatch; a worker accepts new work only when idle, alive and unstalled.
type vworker struct {
	deadUntilMS  float64 // rebuilding after a kill / blackout until then
	stallUntilMS float64 // frozen by a stall fault until then
	dispID       int     // the in-flight dispatch's ID; 0 = idle
	stream       int     // session index of the in-flight dispatch
}

// supervisor is the per-Run supervision state.
type supervisor struct {
	cfg      SupervisorConfig
	plan     *faults.SystemPlan
	kernels  []int                    // regressor kernels, for rebuilding sessions on migration
	rcfg     adascale.ResilientConfig // the exact session config Run used
	workers  []vworker
	breakers []breaker
	satUntil float64 // queue-saturation window end (virtual ms)
}

// newSupervisor builds the supervision state for one Run.
func newSupervisor(plan *faults.SystemPlan, cfg SupervisorConfig, sloMS float64,
	kernels []int, rcfg adascale.ResilientConfig, workers, sessions int) *supervisor {
	s := &supervisor{
		cfg:      cfg.withDefaults(sloMS),
		plan:     plan,
		kernels:  kernels,
		rcfg:     rcfg,
		workers:  make([]vworker, workers),
		breakers: make([]breaker, sessions),
	}
	for i := range s.breakers {
		s.breakers[i] = newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldownMS)
	}
	return s
}

// freeWorker returns the lowest-index idle, alive, unstalled worker at
// nowMS, or -1 when the node has no serving capacity.
func (s *supervisor) freeWorker(nowMS float64) int {
	for i := range s.workers {
		w := &s.workers[i]
		if w.dispID == 0 && nowMS >= w.deadUntilMS && nowMS >= w.stallUntilMS {
			return i
		}
	}
	return -1
}

// queueDepth returns the effective per-stream queue capacity at nowMS —
// collapsed to one frame inside a saturation window.
func (s *supervisor) queueDepth(nowMS float64, configured int) int {
	if nowMS < s.satUntil {
		return 1
	}
	return configured
}

// backoffMS returns the retry delay for a stream's attempt (1-based):
// exponential base doubling capped at RetryMaxMS, plus deterministic
// jitter in [0, RetryBaseMS) drawn from the (seed, stream, attempt) hash —
// decorrelated retries without a shared RNG, so the schedule is identical
// at any worker count.
func (s *supervisor) backoffMS(stream, attempt int) float64 {
	d := s.cfg.RetryBaseMS
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= s.cfg.RetryMaxMS {
			d = s.cfg.RetryMaxMS
			break
		}
	}
	return d + jitter01(s.cfg.RetrySeed, stream, attempt)*s.cfg.RetryBaseMS
}

// jitter01 hashes (seed, stream, attempt) to [0, 1) with a splitmix64
// finaliser.
func jitter01(seed int64, stream, attempt int) float64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream)*0xD1B54A32D192ED03 + uint64(attempt)*0x8CB92BA72F3D8DD7 + 0xBAC0FF
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// migrate replaces a session's resilient state machine with a fresh one
// restored from its checkpoint — the single-process stand-in for replaying
// the stream on a replacement node. The checkpoint round-trip is exact
// (pinned by test), so a migrated stream continues precisely where the
// dead node left it.
func (s *supervisor) migrate(sess *session) {
	cp := sess.sess.Checkpoint()
	fresh := adascale.NewResilientSession(s.kernels, s.rcfg)
	fresh.Restore(cp)
	sess.sess = fresh
}
