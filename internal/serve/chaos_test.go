package serve

import (
	"strings"
	"testing"

	"adascale/internal/adascale"
	"adascale/internal/faults"
)

// chaosConfig is the standard chaos-enabled server config the tests use.
func chaosConfig(plan *faults.SystemPlan) Config {
	return Config{
		Workers: 2, QueueDepth: 4, SLOMS: 80,
		Resilient: adascale.DefaultResilientConfig(),
		Chaos:     plan,
	}
}

// TestServeChaosDeterministicZeroLost is the tentpole's core contract: a
// seeded chaos run — worker kills, stalls, a node blackout and a
// queue-saturation window all landing mid-flight — completes with every
// offered frame accounted for on every stream, and two identical runs
// produce byte-identical metric snapshots and served outputs.
func TestServeChaosDeterministicZeroLost(t *testing.T) {
	ds, sys := system(t)
	plan, err := faults.GenSystemPlan(faults.ScaledSystemConfig(1.5, 41, 1200, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) == 0 {
		t.Fatal("chaos plan is empty; the run would not exercise recovery")
	}
	run := func() *Report {
		return newServer(t, sys, chaosConfig(plan)).Run(load(t, ds, 4, 20, 20, 31))
	}
	a, b := run(), run()

	snapA, snapB := a.Metrics.Snapshot(), b.Metrics.Snapshot()
	if snapA != snapB {
		t.Fatalf("chaos snapshots diverge across identical runs:\n--- A ---\n%s\n--- B ---\n%s", snapA, snapB)
	}
	av, bv := a.Served(), b.Served()
	if len(av) == 0 || len(av) != len(bv) {
		t.Fatalf("served %d and %d frames across identical chaos runs", len(av), len(bv))
	}
	for i := range av {
		if av[i].Scale != bv[i].Scale || len(av[i].Detections) != len(bv[i].Detections) {
			t.Fatalf("output %d diverges across identical chaos runs", i)
		}
	}

	// Zero lost streams, zero lost frames: every stream keeps producing
	// output through the faults, and offered = served + dropped exactly.
	if lost := a.Lost(); lost != 0 {
		t.Fatalf("%d frames lost (neither served nor dropped)", lost)
	}
	for _, sr := range a.Streams {
		if len(sr.Outputs) == 0 {
			t.Fatalf("stream %d served nothing: the stream was lost to the fault plan", sr.ID)
		}
		if sr.Offered != len(sr.Outputs)+len(sr.Dropped) {
			t.Fatalf("stream %d: offered %d != served %d + dropped %d",
				sr.ID, sr.Offered, len(sr.Outputs), len(sr.Dropped))
		}
	}

	// The recovery machinery must actually have engaged — otherwise the
	// plan was too gentle and the test proves nothing.
	if a.Metrics.Counter("retry/failures") == 0 {
		t.Fatal("no dispatch failures recorded under a kill+blackout plan")
	}
	blackouts := plan.Count()[faults.SysNodeBlackout]
	if want := int64(blackouts * len(a.Streams)); a.Metrics.Counter("migrations") != want {
		t.Fatalf("migrations = %d, want %d (%d blackouts x %d streams)",
			a.Metrics.Counter("migrations"), want, blackouts, len(a.Streams))
	}
	for _, counter := range []string{"chaos/worker-kill", "chaos/node-blackout", "chaos/queue-saturate"} {
		if !strings.Contains(snapA, counter) {
			t.Fatalf("snapshot missing %q:\n%s", counter, snapA)
		}
	}
}

// TestServeChaosEmptyPlanMatchesPlainPath: supervision with an event-free
// plan must reduce exactly to the unsupervised scheduler — byte-identical
// snapshot and identical outputs. This pins the "chaos off ⇒ nothing
// changed" half of the determinism contract from the supervised side.
func TestServeChaosEmptyPlanMatchesPlainPath(t *testing.T) {
	ds, sys := system(t)
	streams := load(t, ds, 3, 15, 12, 19)

	plain := chaosConfig(nil)
	plain.Chaos = nil
	a := newServer(t, sys, plain).Run(streams)
	b := newServer(t, sys, chaosConfig(&faults.SystemPlan{Seed: 1})).Run(streams)

	if sa, sb := a.Metrics.Snapshot(), b.Metrics.Snapshot(); sa != sb {
		t.Fatalf("empty chaos plan perturbed the schedule:\n--- plain ---\n%s\n--- empty plan ---\n%s", sa, sb)
	}
	av, bv := a.Served(), b.Served()
	if len(av) != len(bv) {
		t.Fatalf("served %d vs %d frames", len(av), len(bv))
	}
	for i := range av {
		if av[i].Scale != bv[i].Scale || av[i].Health != bv[i].Health {
			t.Fatalf("output %d diverges between plain and empty-plan runs", i)
		}
	}
}

// TestServeChaosBreakerLifecycle drives one stream through back-to-back
// blackouts so its dispatch fails twice in a row: the breaker must open,
// shed frames to propagation-only mode during the cooldown, probe
// half-open, and close again once the detector path recovers — all visible
// in the counters, with zero lost frames throughout.
func TestServeChaosBreakerLifecycle(t *testing.T) {
	ds, sys := system(t)
	// The second blackout lands while the first failure's retry is still
	// in flight (redispatch ≈150ms + ~70ms service), so the same frame
	// fails twice in a row and trips the threshold-2 breaker.
	plan := &faults.SystemPlan{Seed: 7, Events: []faults.SystemEvent{
		{AtMS: 100, Kind: faults.SysNodeBlackout, Worker: -1, DurationMS: 50},
		{AtMS: 200, Kind: faults.SysNodeBlackout, Worker: -1, DurationMS: 50},
	}}
	cfg := Config{
		Workers: 1, QueueDepth: 6, SLOMS: 0,
		Resilient: adascale.DefaultResilientConfig(),
		Chaos:     plan,
	}
	rep := newServer(t, sys, cfg).Run(load(t, ds, 1, 10, 40, 47))

	m := rep.Metrics
	if m.Counter("breaker/open") == 0 {
		t.Fatalf("breaker never opened after consecutive dispatch failures:\n%s", m.Snapshot())
	}
	if m.Counter("breaker/shed") == 0 {
		t.Fatalf("open breaker never shed a frame to propagation mode:\n%s", m.Snapshot())
	}
	if m.Counter("breaker/close") == 0 {
		t.Fatalf("breaker never closed after the faults stopped:\n%s", m.Snapshot())
	}
	if lost := rep.Lost(); lost != 0 {
		t.Fatalf("%d frames lost across the breaker lifecycle", lost)
	}
	// Shed frames serve through the degradation ladder — propagated
	// last-good detections, or an explicit empty frame when there are none
	// yet (here the breaker opens before the stream's first completion).
	// Either way the accounting is explicit, never a silent gap.
	degraded := 0
	for _, o := range rep.Streams[0].Outputs {
		if o.Health.Fallback == adascale.FallbackPropagate || o.Health.Fallback == adascale.FallbackEmpty {
			degraded++
		}
	}
	if degraded < int(m.Counter("breaker/shed")) {
		t.Fatalf("%d degraded outputs for %d shed frames: a shed frame served without ladder accounting",
			degraded, m.Counter("breaker/shed"))
	}
	// Naive-failover mode (breaker disabled) must never shed.
	naive := cfg
	naive.Supervisor.BreakerThreshold = -1
	nrep := newServer(t, sys, naive).Run(load(t, ds, 1, 10, 40, 47))
	if n := nrep.Metrics.Counter("breaker/shed"); n != 0 {
		t.Fatalf("disabled breaker shed %d frames", n)
	}
	if lost := nrep.Lost(); lost != 0 {
		t.Fatalf("%d frames lost in naive-failover mode", lost)
	}
}

// TestServeChaosSaturationCollapsesQueues: inside a queue-saturation
// window the effective depth is one, so a burst that would fit the
// configured queue sheds via drop-oldest instead.
func TestServeChaosSaturationCollapsesQueues(t *testing.T) {
	ds, sys := system(t)
	streams := load(t, ds, 2, 40, 30, 23)
	base := Config{
		Workers: 1, QueueDepth: 16,
		Resilient: adascale.DefaultResilientConfig(),
	}
	calm := newServer(t, sys, base).Run(streams)

	sat := base
	sat.Chaos = &faults.SystemPlan{Seed: 3, Events: []faults.SystemEvent{
		{AtMS: 50, Kind: faults.SysQueueSaturate, Worker: -1, DurationMS: 600},
	}}
	squeezed := newServer(t, sys, sat).Run(streams)

	if calm.TotalDropped() >= squeezed.TotalDropped() {
		t.Fatalf("saturation did not increase drops: calm %d, saturated %d",
			calm.TotalDropped(), squeezed.TotalDropped())
	}
	if lost := squeezed.Lost(); lost != 0 {
		t.Fatalf("%d frames lost under saturation", lost)
	}
}

// TestSupervisorBackoffDeterministic is the table-driven backoff contract:
// exponential doubling capped at RetryMaxMS, deterministic jitter — the
// same (seed, stream, attempt) always yields the same delay, different
// streams decorrelate, and a different seed moves the jitter.
func TestSupervisorBackoffDeterministic(t *testing.T) {
	mk := func(seed int64) *supervisor {
		cfg := SupervisorConfig{RetryBaseMS: 20, RetryMaxMS: 160, RetrySeed: seed}
		return &supervisor{cfg: cfg.withDefaults(0)}
	}
	s := mk(11)
	for _, tc := range []struct {
		attempt int
		baseMS  float64 // the un-jittered exponential component
	}{
		{1, 20}, {2, 40}, {3, 80}, {4, 160}, {5, 160}, {9, 160},
	} {
		got := s.backoffMS(0, tc.attempt)
		if got < tc.baseMS || got >= tc.baseMS+20 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", tc.attempt, got, tc.baseMS, tc.baseMS+20)
		}
		if again := mk(11).backoffMS(0, tc.attempt); again != got {
			t.Fatalf("attempt %d: backoff not reproducible (%v then %v)", tc.attempt, got, again)
		}
	}
	if mk(11).backoffMS(0, 1) == mk(11).backoffMS(1, 1) {
		t.Fatal("streams 0 and 1 share a retry timeline; thundering-herd jitter is not decorrelating")
	}
	if mk(11).backoffMS(0, 1) == mk(12).backoffMS(0, 1) {
		t.Fatal("jitter ignores the seed")
	}
}

// TestBreakerTransitions is the table-driven state-machine contract:
// closed → open at the failure threshold, open → half-open after the
// cooldown, half-open → closed on a successful probe, half-open → open
// (with escalated cooldown) on a failed one.
func TestBreakerTransitions(t *testing.T) {
	t.Run("full lifecycle", func(t *testing.T) {
		b := newBreaker(2, 100)
		steps := []struct {
			op    string // "fail@t", "ok", "shed@t"
			at    float64
			want  breakerState
			sheds bool
		}{
			{"fail", 0, breakerClosed, false},     // 1st failure: below threshold
			{"ok", 0, breakerClosed, false},       // success resets the count
			{"fail", 10, breakerClosed, false},    // 1st again
			{"fail", 20, breakerOpen, false},      // 2nd consecutive: opens
			{"shed", 50, breakerOpen, true},       // inside cooldown: shedding
			{"shed", 119, breakerOpen, true},      // still inside
			{"shed", 120, breakerHalfOpen, false}, // cooldown over: probe goes through
			{"ok", 120, breakerClosed, false},     // probe succeeded: closed
		}
		for i, st := range steps {
			switch st.op {
			case "fail":
				b.onFailure(st.at)
			case "ok":
				b.onSuccess()
			case "shed":
				if got := b.shouldShed(st.at); got != st.sheds {
					t.Fatalf("step %d: shouldShed(%v) = %v, want %v", i, st.at, got, st.sheds)
				}
			}
			if b.state != st.want {
				t.Fatalf("step %d (%s@%v): state %v, want %v", i, st.op, st.at, b.state, st.want)
			}
		}
		if b.openCount != 1 || b.closeCount != 1 {
			t.Fatalf("openCount %d closeCount %d, want 1 and 1", b.openCount, b.closeCount)
		}
	})

	t.Run("failed probe escalates cooldown", func(t *testing.T) {
		b := newBreaker(1, 100)
		b.onFailure(0) // opens, cooldown 100
		if !b.shouldShed(50) {
			t.Fatal("not shedding inside cooldown")
		}
		if b.shouldShed(100) {
			t.Fatal("still shedding after cooldown")
		}
		b.onFailure(100) // probe fails: re-open with doubled cooldown
		if b.state != breakerOpen {
			t.Fatalf("state %v after failed probe, want open", b.state)
		}
		if b.curCooldown != 200 {
			t.Fatalf("cooldown %v after failed probe, want 200", b.curCooldown)
		}
		if !b.shouldShed(250) || b.shouldShed(300) {
			t.Fatal("escalated cooldown window is wrong")
		}
		// Escalation caps at 8x; a success restores the base cooldown.
		for i := 0; i < 10; i++ {
			b.onFailure(float64(1000 + 200*i))
			b.state = breakerHalfOpen
		}
		if b.curCooldown != 800 {
			t.Fatalf("cooldown %v after repeated failed probes, want cap 800", b.curCooldown)
		}
		b.onSuccess()
		if b.state != breakerClosed || b.curCooldown != 100 {
			t.Fatalf("success left (state %v, cooldown %v), want (closed, 100)", b.state, b.curCooldown)
		}
	})

	t.Run("disabled breaker never opens", func(t *testing.T) {
		b := newBreaker(-1, 100)
		for i := 0; i < 20; i++ {
			if b.onFailure(float64(i)) {
				t.Fatal("disabled breaker opened")
			}
		}
		if b.shouldShed(5) {
			t.Fatal("disabled breaker shed")
		}
		if b.state != breakerClosed {
			t.Fatalf("disabled breaker left closed state: %v", b.state)
		}
	})

	t.Run("open-state failure extends without recount", func(t *testing.T) {
		b := newBreaker(1, 100)
		if !b.onFailure(0) {
			t.Fatal("threshold-1 breaker did not open on first failure")
		}
		if b.onFailure(50) {
			t.Fatal("failure while open counted as a new transition")
		}
		if b.openUntilMS != 150 {
			t.Fatalf("open window end %v, want 150 (extended from the later failure)", b.openUntilMS)
		}
		if b.openCount != 1 {
			t.Fatalf("openCount %d, want 1", b.openCount)
		}
	})
}
