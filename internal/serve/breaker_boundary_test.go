package serve

import "testing"

// Regression pin for the half-open transition boundary. The breaker's open
// window is the half-open interval [openedAt, openedAt+cooldown): a frame
// dispatched at exactly cooldown expiry is admitted as the probe — the same
// virtual tick, not the one after. These tests pin that contract at
// cooldown-1 / cooldown / cooldown+1 for the first open window, the doubled
// re-open window after a failed probe, and the escalation cap, so any future
// off-by-one in shouldShed/onFailure shows up as a table diff rather than a
// subtle golden drift.

// openBreaker returns a breaker driven into the open state at openAtMS.
func openBreaker(t *testing.T, threshold int, cooldownMS, openAtMS float64) *breaker {
	t.Helper()
	b := newBreaker(threshold, cooldownMS)
	for i := 0; i < threshold; i++ {
		opened := b.onFailure(openAtMS)
		if want := i == threshold-1; opened != want {
			t.Fatalf("onFailure #%d: opened = %v, want %v", i+1, opened, want)
		}
	}
	if b.state != breakerOpen {
		t.Fatalf("after %d failures state = %v, want open", threshold, b.state)
	}
	return &b
}

func TestBreakerCooldownBoundary(t *testing.T) {
	const (
		threshold = 2
		cooldown  = 300.0
		openAt    = 100.0
	)
	cases := []struct {
		name      string
		probeAt   float64
		wantShed  bool
		wantState breakerState
	}{
		{"cooldown-1: still shedding", openAt + cooldown - 1, true, breakerOpen},
		{"cooldown: probe admitted same tick", openAt + cooldown, false, breakerHalfOpen},
		{"cooldown+1: probe admitted", openAt + cooldown + 1, false, breakerHalfOpen},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := openBreaker(t, threshold, cooldown, openAt)
			if got := b.shouldShed(tc.probeAt); got != tc.wantShed {
				t.Errorf("shouldShed(%v) = %v, want %v", tc.probeAt, got, tc.wantShed)
			}
			if b.state != tc.wantState {
				t.Errorf("state after shouldShed(%v) = %v, want %v", tc.probeAt, b.state, tc.wantState)
			}
		})
	}
}

// TestBreakerDoubledCooldownBoundary drives a failed probe and checks the
// re-opened window is exactly [failAt, failAt+2*cooldown) — shedding at
// 2*cooldown-1, probing again at exactly 2*cooldown.
func TestBreakerDoubledCooldownBoundary(t *testing.T) {
	const (
		threshold = 2
		cooldown  = 300.0
		openAt    = 100.0
	)
	cases := []struct {
		name      string
		offset    float64 // relative to the probe-failure instant
		wantShed  bool
		wantState breakerState
	}{
		{"2*cooldown-1: still shedding", 2*cooldown - 1, true, breakerOpen},
		{"2*cooldown: second probe same tick", 2 * cooldown, false, breakerHalfOpen},
		{"2*cooldown+1: second probe", 2*cooldown + 1, false, breakerHalfOpen},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := openBreaker(t, threshold, cooldown, openAt)
			probeAt := openAt + cooldown
			if b.shouldShed(probeAt) {
				t.Fatalf("shouldShed(%v) = true, want probe admission", probeAt)
			}
			// The probe fails: the circuit re-opens immediately with a
			// doubled cooldown and no new open-transition count.
			if opened := b.onFailure(probeAt); !opened {
				t.Fatalf("onFailure on failed probe: opened = false, want true")
			}
			if b.curCooldown != 2*cooldown {
				t.Fatalf("curCooldown after failed probe = %v, want %v", b.curCooldown, 2*cooldown)
			}
			at := probeAt + tc.offset
			if got := b.shouldShed(at); got != tc.wantShed {
				t.Errorf("shouldShed(%v) = %v, want %v", at, got, tc.wantShed)
			}
			if b.state != tc.wantState {
				t.Errorf("state after shouldShed(%v) = %v, want %v", at, b.state, tc.wantState)
			}
		})
	}
}

// TestBreakerCooldownCapAndReset checks the escalation cap (8x) and that a
// successful probe resets the cooldown to its base value — so the next open
// window after recovery is the short one again.
func TestBreakerCooldownCapAndReset(t *testing.T) {
	const (
		threshold = 2
		cooldown  = 300.0
	)
	b := openBreaker(t, threshold, cooldown, 0)
	now := 0.0
	// Fail probes until the doubling saturates: 300 -> 600 -> 1200 -> 2400,
	// then pinned at the 8x cap.
	for i := 0; i < 5; i++ {
		now += b.curCooldown
		if b.shouldShed(now) {
			t.Fatalf("probe %d: shouldShed(%v) = true, want probe admission", i, now)
		}
		b.onFailure(now)
	}
	if want := 8 * cooldown; b.curCooldown != want {
		t.Fatalf("curCooldown after repeated probe failures = %v, want cap %v", b.curCooldown, want)
	}
	// The capped window still obeys the same boundary.
	if !b.shouldShed(now + 8*cooldown - 1) {
		t.Errorf("shouldShed(cap-1) = false, want shedding")
	}
	if b.shouldShed(now + 8*cooldown) {
		t.Errorf("shouldShed(cap) = true, want probe admission at exactly cap")
	}
	// A successful probe closes the circuit and resets the escalation.
	if closed := b.onSuccess(); !closed {
		t.Fatalf("onSuccess on half-open: closed = false, want true")
	}
	if b.state != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.state)
	}
	if b.curCooldown != cooldown {
		t.Errorf("curCooldown after close = %v, want base %v", b.curCooldown, cooldown)
	}
}
