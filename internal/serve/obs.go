package serve

import "adascale/internal/obs"

// The metrics registry and snapshot parser started life in this package
// and were promoted to internal/obs so the offline runners, experiments
// and benchmark harness share them. These aliases keep every serve-facing
// name working and — because they are type aliases, not wrappers — keep
// the snapshot text format and the committed golden snapshots
// byte-identical.

// Metrics is the serving layer's metrics registry (now obs.Metrics).
type Metrics = obs.Metrics

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// SnapshotCounter is one parsed counter line.
type SnapshotCounter = obs.SnapshotCounter

// SnapshotGauge is one parsed gauge line.
type SnapshotGauge = obs.SnapshotGauge

// SnapshotHist is one parsed histogram summary line.
type SnapshotHist = obs.SnapshotHist

// ParsedSnapshot is the structured form of a Metrics.Snapshot text.
type ParsedSnapshot = obs.ParsedSnapshot

// ParseSnapshot parses the text produced by Metrics.Snapshot.
func ParseSnapshot(s string) (*ParsedSnapshot, error) { return obs.ParseSnapshot(s) }
