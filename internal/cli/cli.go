// Package cli carries the flag conventions shared by every adascale
// command (adascale-train, adascale-eval, adascale-bench, adascale-serve),
// so the four binaries parse and seed identically.
//
// Seeding contract: -seed is the single master seed. It drives the
// synthetic dataset generation directly, and every derived stochastic
// stream — fault injection (internal/faults) and serving load generation
// (internal/serve) — is seeded by mixing the master seed through an
// independent splitmix64-style finaliser (FaultSeed, LoadSeed below). The
// streams are therefore decorrelated from each other but all pinned by the
// one flag: the same -seed reproduces the same dataset, the same fault
// pattern and the same arrival schedule on any machine and worker count.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"adascale/internal/obs"
	"adascale/internal/parallel"
	"adascale/internal/synth"
)

// Common is the flag block every adascale command shares.
type Common struct {
	// Dataset selects the synthetic corpus profile: "vid" or "ytbb".
	Dataset string

	// Train and Val are the corpus sizes in snippets.
	Train, Val int

	// Seed is the master seed (see the package comment for what it pins).
	Seed int64

	// Workers sizes the shared worker pool; 0 means GOMAXPROCS.
	Workers int

	// TracePath, when non-empty, collects per-frame pipeline spans during
	// the run and writes them (plus the stage breakdown) to this file at
	// exit via WriteTrace. TraceWall switches the tracer to wall-clock
	// mode — real measured detect/regress time for profiling on hardware,
	// explicitly not deterministic.
	TracePath string
	TraceWall bool

	// PprofAddr, when non-empty, serves net/http/pprof on this address
	// for the life of the process.
	PprofAddr string

	tracer *obs.Tracer
}

// Register installs the common flags on the default flag set with the
// given corpus-size defaults. Call before flag.Parse.
func (c *Common) Register(defTrain, defVal int) {
	flag.StringVar(&c.Dataset, "dataset", "vid", "dataset: vid or ytbb")
	flag.IntVar(&c.Train, "train", defTrain, "training snippets")
	if defVal >= 0 {
		flag.IntVar(&c.Val, "val", defVal, "validation snippets")
	}
	flag.Int64Var(&c.Seed, "seed", 5, "master seed: drives the dataset and every derived fault/load stream")
	flag.IntVar(&c.Workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.StringVar(&c.TracePath, "trace", "", "write per-stage pipeline trace to this file")
	flag.BoolVar(&c.TraceWall, "trace-wall", false, "trace in wall-clock mode (profiling aid; not deterministic)")
	flag.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Apply finalises parsed flags: worker pool sizing, the pprof server and
// the tracer. Call after flag.Parse; cmd names the command in messages.
func (c *Common) Apply(cmd string) {
	parallel.SetWorkers(c.Workers)
	if c.PprofAddr != "" {
		addr, err := obs.StartPprof(c.PprofAddr)
		if err != nil {
			Fail(cmd, err)
		}
		fmt.Fprintf(os.Stderr, "%s: pprof at http://%s/debug/pprof/\n", cmd, addr)
	}
	if c.TracePath != "" {
		if c.TraceWall {
			c.tracer = obs.NewWallTracer()
		} else {
			c.tracer = obs.NewTracer()
		}
	}
}

// Tracer returns the tracer Apply built from the -trace/-trace-wall flags,
// or nil when tracing is off — safe to pass anywhere, every obs.Tracer
// method is nil-safe.
func (c *Common) Tracer() *obs.Tracer { return c.tracer }

// WriteTrace writes the collected trace — canonical spans followed by the
// per-stage breakdown — to the -trace file. No-op when tracing is off.
func (c *Common) WriteTrace(cmd string) {
	if c.tracer == nil || c.TracePath == "" {
		return
	}
	var b strings.Builder
	b.WriteString(c.tracer.Format())
	if bd := c.tracer.FormatBreakdown(); bd != "" {
		b.WriteString("\n")
		b.WriteString(bd)
	}
	if err := os.WriteFile(c.TracePath, []byte(b.String()), 0o644); err != nil {
		Fail(cmd, err)
	}
	fmt.Fprintf(os.Stderr, "%s: trace written to %s (%d spans)\n", cmd, c.TracePath, c.tracer.Len())
}

// SynthConfig resolves the dataset flag to its generator configuration,
// seeded by the master seed.
func (c *Common) SynthConfig() (synth.Config, error) {
	switch c.Dataset {
	case "vid":
		return synth.VIDLike(c.Seed), nil
	case "ytbb":
		return synth.MiniYTBBLike(c.Seed), nil
	}
	return synth.Config{}, fmt.Errorf("unknown dataset %q (want vid or ytbb)", c.Dataset)
}

// FaultSeed derives the fault-injection stream's seed from the master
// seed. The constant offset keeps it decorrelated from the dataset draw
// while staying a pure function of -seed.
func (c Common) FaultSeed() int64 { return mix(c.Seed, 0xFA17) }

// LoadSeed derives the serving load generator's seed from the master seed,
// independent of both the dataset and the fault stream.
func (c Common) LoadSeed() int64 { return mix(c.Seed, 0x10AD) }

// ChaosSeed derives the system fault plan's seed (worker kills, stalls,
// blackouts — faults.GenSystemPlan) from the master seed, independent of
// the dataset, frame-fault and load streams.
func (c Common) ChaosSeed() int64 { return mix(c.Seed, 0xC405) }

// mix is a splitmix64-style finaliser over (seed, stream tag).
func mix(seed int64, tag uint64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + tag
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// Fail prints "cmd: err" to stderr and exits 1.
func Fail(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(1)
}

// ParseInts parses a comma-separated integer list ("1,3,5").
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated float list ("0,0.05,0.1").
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
