package cli

import "testing"

func TestSynthConfigSelectsDataset(t *testing.T) {
	c := Common{Dataset: "vid", Seed: 7}
	cfg, err := c.SynthConfig()
	if err != nil || cfg.Seed != 7 {
		t.Fatalf("vid config (%+v, %v), want seed 7", cfg, err)
	}
	c.Dataset = "ytbb"
	if cfg, err = c.SynthConfig(); err != nil || cfg.Seed != 7 {
		t.Fatalf("ytbb config (%+v, %v), want seed 7", cfg, err)
	}
	c.Dataset = "coco"
	if _, err = c.SynthConfig(); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// TestDerivedSeedsIndependent pins the seeding contract: fault and load
// seeds are pure functions of the master seed, distinct from it and from
// each other, and sensitive to master-seed changes.
func TestDerivedSeedsIndependent(t *testing.T) {
	a := Common{Seed: 5}
	if a.FaultSeed() != (Common{Seed: 5}).FaultSeed() {
		t.Fatal("FaultSeed not deterministic")
	}
	if a.FaultSeed() == a.LoadSeed() {
		t.Fatal("fault and load streams share a seed")
	}
	if a.FaultSeed() == a.Seed || a.LoadSeed() == a.Seed {
		t.Fatal("derived seed equals the master seed")
	}
	if a.ChaosSeed() != (Common{Seed: 5}).ChaosSeed() {
		t.Fatal("ChaosSeed not deterministic")
	}
	if a.ChaosSeed() == a.FaultSeed() || a.ChaosSeed() == a.LoadSeed() || a.ChaosSeed() == a.Seed {
		t.Fatal("chaos stream shares a seed with another stream")
	}
	b := Common{Seed: 6}
	if a.FaultSeed() == b.FaultSeed() || a.LoadSeed() == b.LoadSeed() || a.ChaosSeed() == b.ChaosSeed() {
		t.Fatal("derived seeds insensitive to the master seed")
	}
	if a.FaultSeed() < 0 || a.LoadSeed() < 0 || a.ChaosSeed() < 0 {
		t.Fatal("derived seed negative")
	}
}

func TestParseLists(t *testing.T) {
	ints, err := ParseInts(" 1, 3 ,5")
	if err != nil || len(ints) != 3 || ints[0] != 1 || ints[2] != 5 {
		t.Fatalf("ParseInts = (%v, %v)", ints, err)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Fatal("bad int accepted")
	}
	floats, err := ParseFloats("0, 0.05,0.2,")
	if err != nil || len(floats) != 3 || floats[1] != 0.05 {
		t.Fatalf("ParseFloats = (%v, %v)", floats, err)
	}
	if _, err := ParseFloats("0.1,nope"); err == nil {
		t.Fatal("bad float accepted")
	}
}
