package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on SIGTERM or SIGINT — the
// graceful-drain trigger for long-running commands (adascale-serve -http).
// Callers should invoke the stop function as soon as the context fires:
// that restores default signal handling, so a second signal during a
// wedged drain kills the process instead of being swallowed.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, syscall.SIGTERM, syscall.SIGINT, os.Interrupt)
}
