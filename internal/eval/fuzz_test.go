package eval

import (
	"encoding/binary"
	"math"
	"testing"

	"adascale/internal/detect"
)

// decodeFrames deserialises an arbitrary byte stream into evaluation
// frames: alternating detections and ground truths with fully arbitrary
// float bit patterns (NaN, ±Inf, inverted boxes) and unvalidated classes.
func decodeFrames(data []byte) []FrameDetections {
	const rec = 8 * 6 // x1 y1 x2 y2 score class
	n := len(data) / rec
	if n > 256 {
		n = 256
	}
	f := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	}
	var frames []FrameDetections
	var cur FrameDetections
	for k := 0; k < n; k++ {
		base := k * rec
		box := detect.Box{X1: f(base), Y1: f(base + 8), X2: f(base + 16), Y2: f(base + 24)}
		class := int(int16(binary.LittleEndian.Uint16(data[base+40:])))
		switch k % 3 {
		case 0, 1:
			cur.Detections = append(cur.Detections, detect.Detection{Box: box, Score: f(base + 32), Class: class})
		case 2:
			cur.GroundTruth = append(cur.GroundTruth, detect.GroundTruth{Box: box, Class: class})
			frames = append(frames, cur)
			cur = FrameDetections{}
		}
	}
	frames = append(frames, cur)
	return frames
}

// FuzzEvaluate asserts the evaluator never panics and keeps mAP/AP finite
// and in range on degenerate inputs: out-of-range detection and
// ground-truth classes, NaN scores, inverted boxes, hostile nClasses.
func FuzzEvaluate(f *testing.F) {
	f.Add([]byte{}, 30)
	f.Add(make([]byte, 8*6*6), 2)
	inf := make([]byte, 8*6*4)
	for i := 0; i < len(inf); i += 8 {
		binary.LittleEndian.PutUint64(inf[i:], 0x7ff0000000000000) // +Inf
	}
	f.Add(inf, 1)
	f.Add([]byte("out-of-range classes must be skipped, not crash........"), -3)

	f.Fuzz(func(t *testing.T, data []byte, nClasses int) {
		if nClasses > 1<<10 {
			nClasses = 1 << 10 // bound allocation, not behaviour
		}
		res := Evaluate(decodeFrames(data), nClasses)
		if math.IsNaN(res.MAP) || res.MAP < 0 || res.MAP > 1 {
			t.Fatalf("mAP %v out of [0,1]", res.MAP)
		}
		for _, cr := range res.PerClass {
			if math.IsNaN(cr.AP) || cr.AP < 0 || cr.AP > 1 {
				t.Fatalf("class %d AP %v out of [0,1]", cr.Class, cr.AP)
			}
			if cr.TP < 0 || cr.FP < 0 || cr.NumGT < 0 {
				t.Fatalf("class %d negative counts: %+v", cr.Class, cr)
			}
		}
	})
}
