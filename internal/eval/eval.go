// Package eval implements detection evaluation: VOC-style per-class
// average precision and mAP (the paper evaluates ImageNet VID with the
// standard IoU ≥ 0.5 criterion), full precision-recall curves (Fig. 5),
// and raw true/false-positive counting (Fig. 6).
package eval

import (
	"sort"

	"adascale/internal/detect"
)

// MatchIoU is the IoU threshold above which a detection matches a ground
// truth of the same class.
const MatchIoU = 0.5

// FrameDetections pairs one frame's detections with its ground truth.
type FrameDetections struct {
	Detections  []detect.Detection
	GroundTruth []detect.GroundTruth
}

// PRPoint is one point of a precision-recall curve.
type PRPoint struct {
	Recall    float64
	Precision float64
}

// ClassResult is the evaluation outcome for a single class.
type ClassResult struct {
	Class int
	AP    float64
	Curve []PRPoint

	// TP and FP count all emitted detections of this class (the Fig. 6
	// analysis); NumGT is the number of ground-truth instances.
	TP, FP int
	NumGT  int
}

// Result is a full evaluation.
type Result struct {
	PerClass []ClassResult

	// MAP is the mean AP over classes that have at least one ground-truth
	// instance.
	MAP float64
}

// Evaluate scores detections against ground truth for nClasses classes.
// Within each class, detections are sorted by descending confidence and
// greedily matched to the highest-IoU unmatched ground truth of that class
// in their frame (IoU ≥ MatchIoU); AP is the area under the
// all-points-interpolated precision-recall curve (VOC 2010+).
func Evaluate(frames []FrameDetections, nClasses int) *Result {
	if nClasses < 0 {
		nClasses = 0
	}
	res := &Result{PerClass: make([]ClassResult, nClasses)}

	type scored struct {
		score float64
		tp    bool
	}
	perClass := make([][]scored, nClasses)
	numGT := make([]int, nClasses)

	for _, fr := range frames {
		for _, gt := range fr.GroundTruth {
			// Out-of-range GT classes are skipped rather than crashing the
			// evaluation (the matching loop below never pairs them either,
			// since detection classes are range-checked).
			if gt.Class < 0 || gt.Class >= nClasses {
				continue
			}
			numGT[gt.Class]++
		}
		// Sort this frame's detections by score so greedy matching is
		// confidence-first within the frame.
		dets := append([]detect.Detection(nil), fr.Detections...)
		sort.SliceStable(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
		used := make([]bool, len(fr.GroundTruth))
		for _, d := range dets {
			if d.Class < 0 || d.Class >= nClasses {
				continue
			}
			best, bestIoU := -1, MatchIoU
			for g, gt := range fr.GroundTruth {
				if gt.Class != d.Class || used[g] {
					continue
				}
				if iou := detect.IoU(d.Box, gt.Box); iou >= bestIoU {
					best, bestIoU = g, iou
				}
			}
			tp := best >= 0
			if tp {
				used[best] = true
			}
			perClass[d.Class] = append(perClass[d.Class], scored{score: d.Score, tp: tp})
		}
	}

	var mapSum float64
	var mapN int
	for c := 0; c < nClasses; c++ {
		cr := &res.PerClass[c]
		cr.Class = c
		cr.NumGT = numGT[c]
		sort.SliceStable(perClass[c], func(i, j int) bool {
			return perClass[c][i].score > perClass[c][j].score
		})
		tp, fp := 0, 0
		var curve []PRPoint
		for _, s := range perClass[c] {
			if s.tp {
				tp++
			} else {
				fp++
			}
			if numGT[c] > 0 {
				curve = append(curve, PRPoint{
					Recall:    float64(tp) / float64(numGT[c]),
					Precision: float64(tp) / float64(tp+fp),
				})
			}
		}
		cr.TP, cr.FP = tp, fp
		cr.Curve = curve
		if numGT[c] > 0 {
			cr.AP = areaUnderPR(curve)
			mapSum += cr.AP
			mapN++
		}
	}
	if mapN > 0 {
		res.MAP = mapSum / float64(mapN)
	}
	return res
}

// areaUnderPR integrates the precision envelope over recall: precision at
// each recall level is replaced by the maximum precision at any ≥ recall
// (the standard interpolation), then summed over recall increments.
func areaUnderPR(curve []PRPoint) float64 {
	if len(curve) == 0 {
		return 0
	}
	// Envelope: running max of precision from the right.
	env := make([]float64, len(curve))
	maxP := 0.0
	for i := len(curve) - 1; i >= 0; i-- {
		if curve[i].Precision > maxP {
			maxP = curve[i].Precision
		}
		env[i] = maxP
	}
	ap := 0.0
	prevR := 0.0
	for i, p := range curve {
		if p.Recall > prevR {
			ap += (p.Recall - prevR) * env[i]
			prevR = p.Recall
		}
	}
	return ap
}

// TPFPCounts sums TP and FP over all classes — the totals the paper
// normalises in Fig. 6.
func (r *Result) TPFPCounts() (tp, fp int) {
	for _, c := range r.PerClass {
		tp += c.TP
		fp += c.FP
	}
	return tp, fp
}

// CurveAt returns the PR curve for one class (nil if the class was never
// detected or annotated).
func (r *Result) CurveAt(class int) []PRPoint {
	if class < 0 || class >= len(r.PerClass) {
		return nil
	}
	return r.PerClass[class].Curve
}
