package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adascale/internal/detect"
)

func box(x, y, s float64) detect.Box {
	return detect.Box{X1: x, Y1: y, X2: x + s, Y2: y + s}
}

func TestPerfectDetectionsGiveAPOne(t *testing.T) {
	frames := []FrameDetections{{
		GroundTruth: []detect.GroundTruth{{Box: box(0, 0, 10), Class: 0}, {Box: box(50, 50, 10), Class: 0}},
		Detections: []detect.Detection{
			{Box: box(0, 0, 10), Class: 0, Score: 0.9},
			{Box: box(50, 50, 10), Class: 0, Score: 0.8},
		},
	}}
	r := Evaluate(frames, 1)
	if r.MAP != 1 {
		t.Fatalf("mAP = %v, want 1", r.MAP)
	}
	if r.PerClass[0].TP != 2 || r.PerClass[0].FP != 0 {
		t.Fatalf("TP/FP = %d/%d", r.PerClass[0].TP, r.PerClass[0].FP)
	}
}

func TestAPKnownValue(t *testing.T) {
	// 2 ground truths; detections ranked: TP(0.9), FP(0.8), TP(0.7).
	// PR points: (0.5, 1), (0.5, 0.5), (1.0, 2/3).
	// Envelope: max precision at recall ≥ r → [1, 2/3, 2/3].
	// AP = 0.5·1 + 0.5·(2/3) = 5/6.
	frames := []FrameDetections{{
		GroundTruth: []detect.GroundTruth{{Box: box(0, 0, 10), Class: 0}, {Box: box(50, 50, 10), Class: 0}},
		Detections: []detect.Detection{
			{Box: box(0, 0, 10), Class: 0, Score: 0.9},
			{Box: box(200, 200, 10), Class: 0, Score: 0.8},
			{Box: box(50, 50, 10), Class: 0, Score: 0.7},
		},
	}}
	r := Evaluate(frames, 1)
	if math.Abs(r.MAP-5.0/6.0) > 1e-12 {
		t.Fatalf("AP = %v, want 5/6", r.MAP)
	}
}

func TestDuplicateDetectionIsFP(t *testing.T) {
	// Two detections on one ground truth: the lower-scoring one is FP.
	frames := []FrameDetections{{
		GroundTruth: []detect.GroundTruth{{Box: box(0, 0, 10), Class: 0}},
		Detections: []detect.Detection{
			{Box: box(0, 0, 10), Class: 0, Score: 0.9},
			{Box: box(1, 1, 10), Class: 0, Score: 0.8},
		},
	}}
	r := Evaluate(frames, 1)
	if r.PerClass[0].TP != 1 || r.PerClass[0].FP != 1 {
		t.Fatalf("TP/FP = %d/%d, want 1/1", r.PerClass[0].TP, r.PerClass[0].FP)
	}
}

func TestWrongClassNeverMatches(t *testing.T) {
	frames := []FrameDetections{{
		GroundTruth: []detect.GroundTruth{{Box: box(0, 0, 10), Class: 0}},
		Detections:  []detect.Detection{{Box: box(0, 0, 10), Class: 1, Score: 0.9}},
	}}
	r := Evaluate(frames, 2)
	if r.PerClass[1].FP != 1 || r.PerClass[0].TP != 0 {
		t.Fatal("wrong-class detection must be a false positive")
	}
	// Class 1 has no ground truth → excluded from mAP; class 0 AP is 0.
	if r.MAP != 0 {
		t.Fatalf("mAP = %v, want 0", r.MAP)
	}
}

func TestLowIoUIsFP(t *testing.T) {
	frames := []FrameDetections{{
		GroundTruth: []detect.GroundTruth{{Box: box(0, 0, 10), Class: 0}},
		Detections:  []detect.Detection{{Box: box(6, 6, 10), Class: 0, Score: 0.9}},
	}}
	r := Evaluate(frames, 1)
	if r.PerClass[0].TP != 0 || r.PerClass[0].FP != 1 {
		t.Fatal("IoU < 0.5 must not match")
	}
}

func TestMatchingIsConfidenceGreedy(t *testing.T) {
	// The higher-confidence detection claims the ground truth even when
	// listed second.
	gt := box(0, 0, 10)
	frames := []FrameDetections{{
		GroundTruth: []detect.GroundTruth{{Box: gt, Class: 0}},
		Detections: []detect.Detection{
			{Box: box(1, 1, 10), Class: 0, Score: 0.5},
			{Box: gt, Class: 0, Score: 0.9},
		},
	}}
	r := Evaluate(frames, 1)
	// TP must be the 0.9 one: with greedy order the curve starts at
	// precision 1.
	if len(r.PerClass[0].Curve) == 0 || r.PerClass[0].Curve[0].Precision != 1 {
		t.Fatalf("curve %v: high-confidence detection should match first", r.PerClass[0].Curve)
	}
}

func TestMAPAveragesOnlyAnnotatedClasses(t *testing.T) {
	frames := []FrameDetections{{
		GroundTruth: []detect.GroundTruth{{Box: box(0, 0, 10), Class: 0}},
		Detections:  []detect.Detection{{Box: box(0, 0, 10), Class: 0, Score: 0.9}},
	}}
	r := Evaluate(frames, 5)
	if r.MAP != 1 {
		t.Fatalf("mAP = %v; classes without ground truth must not dilute it", r.MAP)
	}
}

func TestCurveMonotoneRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var frames []FrameDetections
	for i := 0; i < 10; i++ {
		fd := FrameDetections{}
		for j := 0; j < 3; j++ {
			b := box(rng.Float64()*100, rng.Float64()*100, 10+rng.Float64()*10)
			fd.GroundTruth = append(fd.GroundTruth, detect.GroundTruth{Box: b, Class: 0})
			if rng.Float64() < 0.8 {
				fd.Detections = append(fd.Detections, detect.Detection{Box: b, Class: 0, Score: rng.Float64()})
			}
			if rng.Float64() < 0.5 {
				fd.Detections = append(fd.Detections, detect.Detection{
					Box: box(rng.Float64()*500+200, 300, 15), Class: 0, Score: rng.Float64()})
			}
		}
		frames = append(frames, fd)
	}
	r := Evaluate(frames, 1)
	curve := r.PerClass[0].Curve
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Fatal("recall must be non-decreasing along the curve")
		}
	}
}

// Properties: AP is within [0,1]; removing a false positive never lowers AP.
func TestAPProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gt := []detect.GroundTruth{{Box: box(0, 0, 20), Class: 0}, {Box: box(100, 100, 20), Class: 0}}
		var dets []detect.Detection
		for j := 0; j < 1+rng.Intn(6); j++ {
			if rng.Float64() < 0.5 {
				dets = append(dets, detect.Detection{Box: gt[rng.Intn(2)].Box, Class: 0, Score: rng.Float64()})
			} else {
				dets = append(dets, detect.Detection{Box: box(500+rng.Float64()*100, 0, 20), Class: 0, Score: rng.Float64()})
			}
		}
		full := Evaluate([]FrameDetections{{GroundTruth: gt, Detections: dets}}, 1)
		if full.MAP < 0 || full.MAP > 1 {
			return false
		}
		// Drop one far-away (false positive) detection if present.
		for i, d := range dets {
			if d.Box.X1 >= 500 {
				reduced := append(append([]detect.Detection{}, dets[:i]...), dets[i+1:]...)
				r2 := Evaluate([]FrameDetections{{GroundTruth: gt, Detections: reduced}}, 1)
				if r2.MAP < full.MAP-1e-12 {
					return false
				}
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTPFPCountsAndCurveAt(t *testing.T) {
	frames := []FrameDetections{{
		GroundTruth: []detect.GroundTruth{{Box: box(0, 0, 10), Class: 0}, {Box: box(40, 40, 10), Class: 1}},
		Detections: []detect.Detection{
			{Box: box(0, 0, 10), Class: 0, Score: 0.9},
			{Box: box(300, 300, 10), Class: 1, Score: 0.8},
		},
	}}
	r := Evaluate(frames, 2)
	tp, fp := r.TPFPCounts()
	if tp != 1 || fp != 1 {
		t.Fatalf("TPFPCounts = %d/%d", tp, fp)
	}
	if r.CurveAt(0) == nil || r.CurveAt(7) != nil || r.CurveAt(-1) != nil {
		t.Fatal("CurveAt bounds handling wrong")
	}
}

func TestEmptyInputs(t *testing.T) {
	r := Evaluate(nil, 3)
	if r.MAP != 0 {
		t.Fatalf("empty evaluation mAP = %v", r.MAP)
	}
	r = Evaluate([]FrameDetections{{}}, 3)
	if r.MAP != 0 {
		t.Fatal("frame with no gt/detections must evaluate to 0")
	}
}
