// System-level fault plans. faults.go perturbs *frames* (what the sensor
// delivers); this file perturbs the *serving system itself*: workers that
// panic and need rebuilding, workers that stall mid-dispatch, whole-node
// blackouts, and queue-memory saturation windows. A plan is a seeded,
// sorted schedule of such events on the virtual clock — the serving
// supervisor (internal/serve) replays it inside its discrete-event loop,
// so a chaos run is a pure function of (dataset seed, load seed, plan
// seed, config) and its outputs and metric snapshots are byte-identical
// across runs and real worker counts, exactly like a fault-free run.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SystemEventKind enumerates the system fault kinds a plan can schedule.
type SystemEventKind uint8

const (
	// SysWorkerKill kills one virtual worker: its in-flight dispatch is
	// lost and the worker is unavailable until the supervisor's rebuild
	// interval elapses.
	SysWorkerKill SystemEventKind = iota

	// SysWorkerStall freezes one virtual worker for DurationMS: an
	// in-flight dispatch is delayed by the stall (the watchdog may reassign
	// it first) and the worker accepts no new work until the stall ends.
	SysWorkerStall

	// SysNodeBlackout takes every worker down for DurationMS: all in-flight
	// dispatches are lost and each admitted stream is migrated — its
	// session checkpoint restored into a fresh session, as a replacement
	// node would.
	SysNodeBlackout

	// SysQueueSaturate models upstream memory pressure for DurationMS:
	// every stream's effective queue capacity collapses to one frame, so
	// arrivals during the window shed via drop-oldest.
	SysQueueSaturate

	// NumSystemEventKinds sizes per-kind counter arrays.
	NumSystemEventKinds
)

// String names the event kind for metrics and reports.
func (k SystemEventKind) String() string {
	switch k {
	case SysWorkerKill:
		return "worker-kill"
	case SysWorkerStall:
		return "worker-stall"
	case SysNodeBlackout:
		return "node-blackout"
	case SysQueueSaturate:
		return "queue-saturate"
	default:
		return fmt.Sprintf("system-event(%d)", uint8(k))
	}
}

// SystemEvent is one scheduled occurrence in a plan.
type SystemEvent struct {
	// AtMS is the event's instant on the serving layer's virtual clock.
	AtMS float64

	// Kind selects the fault.
	Kind SystemEventKind

	// Worker is the targeted virtual worker index (kill/stall); -1 for
	// node-wide events (blackout, saturation).
	Worker int

	// DurationMS is the fault window for stall, blackout and saturation
	// events; 0 for kills (the recovery time is the supervisor's rebuild
	// interval, a property of the system, not of the fault).
	DurationMS float64
}

// SystemPlan is a deterministic schedule of system faults, sorted by
// (AtMS, Kind, Worker).
type SystemPlan struct {
	Seed   int64
	Events []SystemEvent
}

// Count returns the number of events per kind.
func (p *SystemPlan) Count() (counts [NumSystemEventKinds]int) {
	for _, e := range p.Events {
		counts[e.Kind]++
	}
	return counts
}

// String summarises the plan for logs.
func (p *SystemPlan) String() string {
	c := p.Count()
	return fmt.Sprintf("system plan (seed %d): %d kills, %d stalls, %d blackouts, %d saturations",
		p.Seed, c[SysWorkerKill], c[SysWorkerStall], c[SysNodeBlackout], c[SysQueueSaturate])
}

// SystemConfig parameterises plan generation.
type SystemConfig struct {
	// Seed drives every draw; the same seed and config produce the
	// identical plan.
	Seed int64

	// HorizonMS is the virtual-time window events are placed in — usually
	// the workload's last arrival plus some slack. Events beyond the
	// horizon are never generated.
	HorizonMS float64

	// Workers is the virtual worker index space kills and stalls target.
	Workers int

	// KillsPerSec and StallsPerSec are Poisson rates (events per virtual
	// second) for worker kills and stalls.
	KillsPerSec, StallsPerSec float64

	// StallMS is the mean stall duration; 0 means the default 250.
	StallMS float64

	// Blackouts is the number of node blackout windows, spread evenly over
	// the horizon with seeded jitter.
	Blackouts int

	// BlackoutMS is each blackout's duration; 0 means the default 400.
	BlackoutMS float64

	// Saturations is the number of queue-saturation windows.
	Saturations int

	// SaturateMS is each saturation window's duration; 0 means the
	// default 300.
	SaturateMS float64
}

// Validate reports configuration errors.
func (c *SystemConfig) Validate() error {
	switch {
	case c.HorizonMS <= 0 || math.IsNaN(c.HorizonMS) || math.IsInf(c.HorizonMS, 0):
		return fmt.Errorf("faults: system plan needs a positive finite horizon, got %v ms", c.HorizonMS)
	case c.Workers <= 0:
		return fmt.Errorf("faults: system plan needs a positive worker count, got %d", c.Workers)
	case c.KillsPerSec < 0 || math.IsNaN(c.KillsPerSec):
		return fmt.Errorf("faults: negative kill rate %v", c.KillsPerSec)
	case c.StallsPerSec < 0 || math.IsNaN(c.StallsPerSec):
		return fmt.Errorf("faults: negative stall rate %v", c.StallsPerSec)
	case c.StallMS < 0 || c.BlackoutMS < 0 || c.SaturateMS < 0:
		return fmt.Errorf("faults: negative fault duration (stall %v, blackout %v, saturate %v)",
			c.StallMS, c.BlackoutMS, c.SaturateMS)
	case c.Blackouts < 0 || c.Saturations < 0:
		return fmt.Errorf("faults: negative window count (blackouts %d, saturations %d)",
			c.Blackouts, c.Saturations)
	}
	return nil
}

func (c SystemConfig) withDefaults() SystemConfig {
	if c.StallMS == 0 {
		c.StallMS = 250
	}
	if c.BlackoutMS == 0 {
		c.BlackoutMS = 400
	}
	if c.SaturateMS == 0 {
		c.SaturateMS = 300
	}
	return c
}

// ScaledSystemConfig returns the standard mixed chaos condition at the
// given intensity: rate 1 is the moderate default (≈0.8 kills and 0.5
// stalls per virtual second, one blackout, one saturation window per two
// seconds of horizon, capped at two each); rate 0 is a plan with no
// events; rate 2 doubles the event rates. The chaos sweep in
// internal/experiments sweeps this knob.
func ScaledSystemConfig(rate float64, seed int64, horizonMS float64, workers int) SystemConfig {
	windows := 0
	if rate > 0 {
		windows = int(math.Min(2, math.Ceil(rate)))
	}
	return SystemConfig{
		Seed:         seed,
		HorizonMS:    horizonMS,
		Workers:      workers,
		KillsPerSec:  0.8 * rate,
		StallsPerSec: 0.5 * rate,
		Blackouts:    windows,
		Saturations:  windows,
	}
}

// GenSystemPlan builds the deterministic event schedule for the config.
func GenSystemPlan(cfg SystemConfig) (*SystemPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(injectSeed(cfg.Seed, 0x5F5)))
	plan := &SystemPlan{Seed: cfg.Seed}

	// Kills and stalls: Poisson processes over the horizon, each event
	// targeting a uniformly drawn worker.
	poisson := func(perSec float64, emit func(atMS float64)) {
		if perSec <= 0 {
			return
		}
		for t := rng.ExpFloat64() * 1000 / perSec; t < cfg.HorizonMS; t += rng.ExpFloat64() * 1000 / perSec {
			emit(t)
		}
	}
	poisson(cfg.KillsPerSec, func(atMS float64) {
		plan.Events = append(plan.Events, SystemEvent{
			AtMS: atMS, Kind: SysWorkerKill, Worker: rng.Intn(cfg.Workers),
		})
	})
	poisson(cfg.StallsPerSec, func(atMS float64) {
		plan.Events = append(plan.Events, SystemEvent{
			AtMS: atMS, Kind: SysWorkerStall, Worker: rng.Intn(cfg.Workers),
			DurationMS: cfg.StallMS * (0.5 + rng.Float64()),
		})
	})

	// Blackouts and saturations: evenly spaced windows with ±10% jitter,
	// so repeated sweeps hit comparable phases of the workload.
	windows := func(n int, kind SystemEventKind, durMS float64) {
		for i := 0; i < n; i++ {
			at := cfg.HorizonMS * (float64(i+1) / float64(n+1)) * (0.9 + 0.2*rng.Float64())
			if at >= cfg.HorizonMS {
				at = cfg.HorizonMS * 0.99
			}
			plan.Events = append(plan.Events, SystemEvent{
				AtMS: at, Kind: kind, Worker: -1, DurationMS: durMS,
			})
		}
	}
	windows(cfg.Blackouts, SysNodeBlackout, cfg.BlackoutMS)
	windows(cfg.Saturations, SysQueueSaturate, cfg.SaturateMS)

	sort.Slice(plan.Events, func(a, b int) bool {
		x, y := plan.Events[a], plan.Events[b]
		if x.AtMS != y.AtMS {
			return x.AtMS < y.AtMS
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.Worker < y.Worker
	})
	return plan, nil
}
