package faults

import (
	"math"
	"reflect"
	"testing"

	"adascale/internal/parallel"
	"adascale/internal/synth"
)

func testSnippets(t *testing.T) []synth.Snippet {
	t.Helper()
	cfg := synth.VIDLike(11)
	cfg.FramesPerSnippet = 24
	ds, err := synth.Generate(cfg, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Val
}

// TestInjectDeterministic pins the determinism contract: same seed and
// config produce a bit-identical perturbed stream at any worker count.
func TestInjectDeterministic(t *testing.T) {
	snippets := testSnippets(t)
	cfg := Mixed(0.3, 7)
	ref, err := Inject(snippets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { parallel.SetWorkers(0) }) // guard the t.Fatal paths below
	for _, workers := range []int{1, 2, 5} {
		parallel.SetWorkers(workers)
		got, err := Inject(snippets, cfg)
		parallel.SetWorkers(0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("perturbed stream differs at %d workers", workers)
		}
	}
	if got, _ := Inject(snippets, Mixed(0.3, 8)); reflect.DeepEqual(ref, got) {
		t.Fatal("different seed produced an identical stream")
	}
}

// TestInjectDoesNotMutateInput ensures the original snippets stay pristine.
func TestInjectDoesNotMutateInput(t *testing.T) {
	snippets := testSnippets(t)
	before := make([]synth.Snippet, len(snippets))
	for i := range snippets {
		before[i] = synth.Snippet{ID: snippets[i].ID, Frames: append([]synth.Frame(nil), snippets[i].Frames...)}
	}
	if _, err := Inject(snippets, Mixed(0.5, 3)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, snippets) {
		t.Fatal("Inject mutated its input")
	}
}

// TestInjectTagsAndRates checks every perturbation is tagged, frame 0
// stays clean, stale frames reference an earlier delivered frame, dropped
// frames keep their ground truth, and the realised rate tracks the config.
func TestInjectTagsAndRates(t *testing.T) {
	snippets := testSnippets(t)
	const rate = 0.4
	out, err := Inject(snippets, Mixed(rate, 21))
	if err != nil {
		t.Fatal(err)
	}
	counts, frames := Count(out)
	faulted := frames - counts[synth.FaultNone]
	if faulted == 0 {
		t.Fatal("no faults injected at rate 0.4")
	}
	// Bursts push the realised rate above the nominal draw rate; allow a
	// generous band around it.
	realised := float64(faulted) / float64(frames)
	if realised < rate*0.5 || realised > rate*1.8 {
		t.Fatalf("realised fault rate %.2f far from nominal %.2f", realised, rate)
	}
	for k := synth.FaultKind(1); int(k) < synth.NumFaultKinds; k++ {
		if counts[k] == 0 {
			t.Fatalf("fault kind %v never injected", k)
		}
	}
	for si := range out {
		if out[si].Frames[0].Fault != nil {
			t.Fatalf("snippet %d: frame 0 faulted", si)
		}
		for fi := range out[si].Frames {
			f := &out[si].Frames[fi]
			orig := &snippets[si].Frames[fi]
			if f.Fault == nil {
				if !reflect.DeepEqual(f.Objects, orig.Objects) {
					t.Fatalf("snippet %d frame %d: clean frame content changed", si, fi)
				}
				continue
			}
			switch f.Fault.Kind {
			case synth.FaultDrop, synth.FaultBlackout:
				if len(f.Objects) != 0 {
					t.Fatalf("frame %d/%d: %v frame still senses objects", si, fi, f.Fault.Kind)
				}
				if !reflect.DeepEqual(f.Truth, orig.Objects) {
					t.Fatalf("frame %d/%d: truth lost under %v", si, fi, f.Fault.Kind)
				}
			case synth.FaultStale:
				if f.Fault.SourceIndex >= fi {
					t.Fatalf("frame %d/%d: stale source %d not earlier", si, fi, f.Fault.SourceIndex)
				}
				if f.Index != orig.Index || f.SnippetID != orig.SnippetID {
					t.Fatalf("frame %d/%d: stale frame lost its identity", si, fi)
				}
				if !reflect.DeepEqual(f.Truth, orig.Objects) {
					t.Fatalf("frame %d/%d: truth lost under stale", si, fi)
				}
			case synth.FaultOverexpose, synth.FaultNoise:
				if f.Fault.Severity <= 0 || f.Fault.Severity > 1 {
					t.Fatalf("frame %d/%d: severity %v out of range", si, fi, f.Fault.Severity)
				}
			case synth.FaultJitter:
				if f.Fault.JitterMS <= 0 {
					t.Fatalf("frame %d/%d: jitter without latency", si, fi)
				}
			}
			// Ground truth must always reflect the real scene.
			if len(f.GroundTruth()) != len(orig.GroundTruth()) {
				t.Fatalf("frame %d/%d: ground truth count changed under %v", si, fi, f.Fault.Kind)
			}
		}
	}
}

// TestInjectValidation covers config rejection.
func TestInjectValidation(t *testing.T) {
	bad := []Config{
		{Drop: -0.1},
		{Drop: 0.6, Noise: 0.6},
		{MaxSeverity: 2},
		{MaxJitterMS: -1},
		{BurstMax: -2},
	}
	for i, cfg := range bad {
		if _, err := Inject(nil, cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Inject(nil, Mixed(0, 1)); err != nil {
		t.Fatalf("zero-rate config rejected: %v", err)
	}
}

// TestFaultResponseHelpers pins the nil-safe fault response factors the
// behavioural detector relies on.
func TestFaultResponseHelpers(t *testing.T) {
	var nilFault *synth.Fault
	if nilFault.QualityFactor() != 1 || nilFault.FPFactor() != 1 || nilFault.SensorObservable() || nilFault.ContentFault() {
		t.Fatal("nil fault must behave as clean")
	}
	drop := &synth.Fault{Kind: synth.FaultDrop}
	if drop.QualityFactor() != 0 || drop.FPFactor() != 0 || !drop.SensorObservable() {
		t.Fatal("drop must sense nothing and be observable")
	}
	over := &synth.Fault{Kind: synth.FaultOverexpose, Severity: 0.5}
	if q := over.QualityFactor(); q <= 0 || q >= 1 {
		t.Fatalf("overexposure quality factor %v not a partial penalty", q)
	}
	noise := &synth.Fault{Kind: synth.FaultNoise, Severity: 0.5}
	if fp := noise.FPFactor(); fp <= 1 {
		t.Fatalf("noise FP factor %v must exceed 1", fp)
	}
	jit := &synth.Fault{Kind: synth.FaultJitter, JitterMS: 10}
	if jit.ContentFault() || jit.SensorObservable() {
		t.Fatal("jitter leaves content intact and undetectable")
	}
	mixed := Mixed(0.3, 1)
	if math.Abs(mixed.TotalRate()-0.3) > 1e-12 {
		t.Fatal("Mixed must preserve the total rate")
	}
}

// TestGenSystemPlanDeterministicAndSorted pins the chaos-plan generator:
// the same config produces the identical schedule, a different seed moves
// it, events are sorted by (AtMS, Kind, Worker), every event stays inside
// the horizon with a valid target and sane durations.
func TestGenSystemPlanDeterministicAndSorted(t *testing.T) {
	cfg := SystemConfig{
		Seed: 9, HorizonMS: 3000, Workers: 4,
		KillsPerSec: 2, StallsPerSec: 1.5, Blackouts: 2, Saturations: 2,
	}
	a, err := GenSystemPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenSystemPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Fatal("plan is empty at a 2/sec kill rate over 3 virtual seconds")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("plans differ in size across identical configs: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverges across identical configs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}

	counts := a.Count()
	if counts[SysNodeBlackout] != 2 || counts[SysQueueSaturate] != 2 {
		t.Fatalf("window counts %v, want 2 blackouts and 2 saturations", counts)
	}
	for i, e := range a.Events {
		if e.AtMS < 0 || e.AtMS >= cfg.HorizonMS {
			t.Fatalf("event %d at %vms escapes the horizon [0, %v)", i, e.AtMS, cfg.HorizonMS)
		}
		switch e.Kind {
		case SysWorkerKill:
			if e.Worker < 0 || e.Worker >= cfg.Workers || e.DurationMS != 0 {
				t.Fatalf("kill event %d malformed: %+v", i, e)
			}
		case SysWorkerStall:
			if e.Worker < 0 || e.Worker >= cfg.Workers || e.DurationMS <= 0 {
				t.Fatalf("stall event %d malformed: %+v", i, e)
			}
		case SysNodeBlackout, SysQueueSaturate:
			if e.Worker != -1 || e.DurationMS <= 0 {
				t.Fatalf("window event %d malformed: %+v", i, e)
			}
		}
		if i > 0 {
			p := a.Events[i-1]
			if e.AtMS < p.AtMS || (e.AtMS == p.AtMS && (e.Kind < p.Kind || (e.Kind == p.Kind && e.Worker < p.Worker))) {
				t.Fatalf("events %d and %d out of (AtMS, Kind, Worker) order", i-1, i)
			}
		}
	}

	moved := cfg
	moved.Seed = 10
	c, err := GenSystemPlan(moved)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 9 and 10 produced the identical plan")
	}
}

// TestScaledSystemConfig pins the chaos-sweep knob: rate 0 produces no
// events, higher rates scale the Poisson intensities, and the generated
// plan validates against its own worker space.
func TestScaledSystemConfig(t *testing.T) {
	zero, err := GenSystemPlan(ScaledSystemConfig(0, 5, 2000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Events) != 0 {
		t.Fatalf("rate 0 generated %d events", len(zero.Events))
	}
	low, err := GenSystemPlan(ScaledSystemConfig(1, 5, 20000, 2))
	if err != nil {
		t.Fatal(err)
	}
	high, err := GenSystemPlan(ScaledSystemConfig(4, 5, 20000, 2))
	if err != nil {
		t.Fatal(err)
	}
	lc, hc := low.Count(), high.Count()
	if hc[SysWorkerKill] <= lc[SysWorkerKill] {
		t.Fatalf("rate 4 produced %d kills, rate 1 produced %d — intensity is not scaling", hc[SysWorkerKill], lc[SysWorkerKill])
	}
}

// TestGenSystemPlanValidation rejects nonsense configs.
func TestGenSystemPlanValidation(t *testing.T) {
	bad := []SystemConfig{
		{HorizonMS: 0, Workers: 1},
		{HorizonMS: math.NaN(), Workers: 1},
		{HorizonMS: 1000, Workers: 0},
		{HorizonMS: 1000, Workers: 1, KillsPerSec: -1},
		{HorizonMS: 1000, Workers: 1, StallMS: -5},
		{HorizonMS: 1000, Workers: 1, Blackouts: -1},
	}
	for i, cfg := range bad {
		if _, err := GenSystemPlan(cfg); err == nil {
			t.Fatalf("config %d (%+v) accepted", i, cfg)
		}
	}
}
