// Package faults is the fault-injection harness for the video pipeline: a
// deterministic, seeded injector that perturbs a synth.Snippet stream with
// configurable per-frame fault processes — dropped frames, duplicated
// (stale) frames, sensor blackout and overexposure, additive noise bursts,
// and timestamp jitter. Every perturbed frame is tagged with a synth.Fault
// record, so downstream accounting (adascale.Health) is exact, and the
// original snippets are never mutated: Inject returns an independent copy.
//
// Determinism contract: the same seed and config produce a bit-identical
// perturbed stream. Each snippet draws from its own generator seeded by
// (config seed, snippet ID), so injection fans out across the worker pool
// with ID-ordered output identical at any worker count — the same
// construction synth.Generate uses.
package faults

import (
	"fmt"
	"math/rand"

	"adascale/internal/parallel"
	"adascale/internal/synth"
)

// Config parameterises the injector: one independent per-frame Bernoulli
// process per fault kind. Rates are probabilities in [0, 1] and their sum
// must not exceed 1 (the kinds are mutually exclusive on a frame).
type Config struct {
	Seed int64

	// Per-frame fault probabilities.
	Drop, Stale, Blackout, Overexpose, Noise, Jitter float64

	// MaxSeverity bounds the severity drawn for partial faults
	// (overexposure, noise); 0 means the default 1.0.
	MaxSeverity float64

	// MaxJitterMS bounds the arrival latency drawn for jitter faults;
	// 0 means the default 25 ms.
	MaxJitterMS float64

	// BurstMax is the maximum number of extra consecutive frames a
	// blackout or noise fault extends over (real sensor faults are bursty,
	// not i.i.d.); 0 means the default 2.
	BurstMax int
}

// Mixed returns a config that splits the given total per-frame fault rate
// evenly across all six fault kinds — the standard mixed-fault condition
// of the robustness sweep.
func Mixed(rate float64, seed int64) Config {
	r := rate / 6
	return Config{
		Seed: seed,
		Drop: r, Stale: r, Blackout: r, Overexpose: r, Noise: r, Jitter: r,
	}
}

// TotalRate returns the summed per-frame fault probability.
func (c *Config) TotalRate() float64 {
	return c.Drop + c.Stale + c.Blackout + c.Overexpose + c.Noise + c.Jitter
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	for _, r := range []float64{c.Drop, c.Stale, c.Blackout, c.Overexpose, c.Noise, c.Jitter} {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: rate %v out of [0, 1]", r)
		}
	}
	if t := c.TotalRate(); t > 1 {
		return fmt.Errorf("faults: total fault rate %v exceeds 1", t)
	}
	if c.MaxSeverity < 0 || c.MaxSeverity > 1 {
		return fmt.Errorf("faults: MaxSeverity %v out of [0, 1]", c.MaxSeverity)
	}
	if c.MaxJitterMS < 0 {
		return fmt.Errorf("faults: negative MaxJitterMS %v", c.MaxJitterMS)
	}
	if c.BurstMax < 0 {
		return fmt.Errorf("faults: negative BurstMax %d", c.BurstMax)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MaxSeverity == 0 {
		c.MaxSeverity = 1
	}
	if c.MaxJitterMS == 0 {
		c.MaxJitterMS = 25
	}
	if c.BurstMax == 0 {
		c.BurstMax = 2
	}
	return c
}

// Inject returns a perturbed copy of the snippets; the input is not
// mutated. Frame 0 of every snippet stays clean (a snippet boundary
// re-syncs the sensor), which also guarantees a stale frame always has an
// earlier delivered frame to re-deliver.
func Inject(snippets []synth.Snippet, cfg Config) ([]synth.Snippet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	out := parallel.Map(len(snippets), func(i int) synth.Snippet {
		return injectSnippet(&snippets[i], cfg)
	})
	return out, nil
}

// injectSnippet perturbs one snippet from its own deterministic stream.
func injectSnippet(sn *synth.Snippet, cfg Config) synth.Snippet {
	rng := rand.New(rand.NewSource(injectSeed(cfg.Seed, sn.ID)))
	out := synth.Snippet{ID: sn.ID, Frames: append([]synth.Frame(nil), sn.Frames...)}

	// delivered is the index (into out.Frames) of the last frame the
	// sensor actually delivered — the content a stale frame re-delivers.
	delivered := 0
	burst := 0 // extra frames the current burst fault still covers
	var burstFault synth.Fault

	for i := 1; i < len(out.Frames); i++ {
		var fault synth.Fault
		if burst > 0 {
			burst--
			fault = burstFault
		} else {
			kind := drawKind(rng, &cfg)
			if kind == synth.FaultNone {
				delivered = i
				continue
			}
			fault = synth.Fault{Kind: kind}
			switch kind {
			case synth.FaultOverexpose, synth.FaultNoise, synth.FaultBlackout:
				fault.Severity = (0.3 + 0.7*rng.Float64()) * cfg.MaxSeverity
				if kind != synth.FaultOverexpose && cfg.BurstMax > 0 {
					burst = rng.Intn(cfg.BurstMax + 1)
					burstFault = fault
				}
			case synth.FaultJitter:
				fault.JitterMS = (0.2 + 0.8*rng.Float64()) * cfg.MaxJitterMS
			}
		}
		applyFault(out.Frames, i, delivered, fault)
		if fault.Kind != synth.FaultDrop {
			delivered = i
		}
	}
	return out
}

// applyFault rewrites frame i of frames in place according to fault.
// delivered is the index of the last frame the sensor delivered.
func applyFault(frames []synth.Frame, i, delivered int, fault synth.Fault) {
	f := &frames[i]
	truth := f.Objects
	switch fault.Kind {
	case synth.FaultDrop, synth.FaultBlackout:
		// Nothing usable was sensed: no objects, and Render paints black.
		f.Objects = nil
		f.Truth = truth
	case synth.FaultStale:
		// The transport re-delivered the content of the last delivered
		// frame: copy it wholesale (sensed objects, clutter, blur, render
		// seeds), then restore this frame's identity and real scene.
		fault.SourceIndex = frames[delivered].Index
		src := frames[delivered] // struct copy carries the unexported seeds
		src.SnippetID, src.Index = f.SnippetID, f.Index
		src.Fault, src.Truth = nil, nil
		if src.Objects != nil {
			src.Objects = append([]synth.Object(nil), src.Objects...)
		}
		*f = src
		f.Truth = truth
	}
	fc := fault
	f.Fault = &fc
}

// drawKind draws at most one fault kind for a frame from the per-kind
// Bernoulli rates (mutually exclusive by construction: one uniform draw
// walks the cumulative rate intervals).
func drawKind(rng *rand.Rand, cfg *Config) synth.FaultKind {
	u := rng.Float64()
	for _, c := range []struct {
		rate float64
		kind synth.FaultKind
	}{
		{cfg.Drop, synth.FaultDrop},
		{cfg.Stale, synth.FaultStale},
		{cfg.Blackout, synth.FaultBlackout},
		{cfg.Overexpose, synth.FaultOverexpose},
		{cfg.Noise, synth.FaultNoise},
		{cfg.Jitter, synth.FaultJitter},
	} {
		if u < c.rate {
			return c.kind
		}
		u -= c.rate
	}
	return synth.FaultNone
}

// Count returns the number of faulted frames per kind across the snippets
// (index by synth.FaultKind) and the total frame count.
func Count(snippets []synth.Snippet) (counts [synth.NumFaultKinds]int, frames int) {
	for i := range snippets {
		for j := range snippets[i].Frames {
			frames++
			if fl := snippets[i].Frames[j].Fault; fl != nil {
				counts[fl.Kind]++
			} else {
				counts[synth.FaultNone]++
			}
		}
	}
	return counts, frames
}

// injectSeed mixes the config seed and snippet ID (splitmix64 finaliser)
// into an independent per-snippet stream, distinct from the generation and
// runner streams.
func injectSeed(base int64, id int) int64 {
	z := uint64(base)*0xD1B54A32D192ED03 + uint64(id)*0x9E3779B97F4A7C15 + 0xFA17
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}
