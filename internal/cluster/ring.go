// Package cluster is the virtual-time cluster simulator: it shards N video
// streams across M simulated nodes — each node an instance of the
// internal/serve scheduler + supervisor — and layers cluster-level concerns
// on top: consistent-hash placement with bounded load, p95-driven
// autoscaling with virtual-time cooldown, overload-triggered stream
// migration, and node-blackout failover that carries each stream's
// resilient-session checkpoint to its new node.
//
// Everything runs on the same discrete-event virtual clock as the serving
// layer, so a cluster run is a pure function of (dataset seed, load seed,
// event plan, config): byte-identical across runs and worker counts, which
// is what makes the conservation invariant (offered == served + dropped,
// zero frames lost across migrations) testable as an exact equality rather
// than a statistical claim.
package cluster

import (
	"fmt"
	"sort"
)

// The stream→node placement layer: consistent hashing with bounded loads.
// Each node projects Replicas virtual points onto a 64-bit ring; a stream
// hashes to a ring position and walks clockwise to the first node whose
// assigned load is below the cap ceil(LoadFactor·K/M). The walk keeps the
// classic consistent-hashing property — node join/leave moves only the keys
// adjacent to the changed points (plus bounded-load cascade) — while the cap
// guarantees no node ever holds more than ~LoadFactor times its fair share.

// ringPoint is one virtual node position on the hash ring.
type ringPoint struct {
	hash uint64
	node int
}

// RingConfig parameterises the placement ring.
type RingConfig struct {
	// Replicas is the number of virtual points per node (more points,
	// smoother balance, slower rebuild). Default 64.
	Replicas int

	// LoadFactor bounds any node's load at ceil(LoadFactor·K/M) keys.
	// Default 1.25 — the classic bounded-load sweet spot: near-minimal
	// disruption with max/mean load provably ≤ LoadFactor (+ the ceiling's
	// rounding) for K ≳ 4M.
	LoadFactor float64

	// Seed perturbs every ring hash, so two clusters with different seeds
	// place streams independently.
	Seed int64
}

func (c RingConfig) withDefaults() RingConfig {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	return c
}

// Ring is a bounded-load consistent-hash ring over integer node IDs.
// Methods are not safe for concurrent use; the cluster simulator drives it
// from its single event-loop goroutine.
type Ring struct {
	cfg    RingConfig
	nodes  []int       // sorted node IDs
	points []ringPoint // sorted by (hash, node)
}

// NewRing builds an empty ring.
func NewRing(cfg RingConfig) *Ring {
	return &Ring{cfg: cfg.withDefaults()}
}

// Nodes returns the ring's node IDs in ascending order (shared slice; do
// not mutate).
func (r *Ring) Nodes() []int { return r.nodes }

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Has reports whether the node is on the ring.
func (r *Ring) Has(node int) bool {
	i := sort.SearchInts(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Add places a node on the ring. Adding a present node is a no-op.
func (r *Ring) Add(node int) {
	if r.Has(node) {
		return
	}
	i := sort.SearchInts(r.nodes, node)
	r.nodes = append(r.nodes, 0)
	copy(r.nodes[i+1:], r.nodes[i:])
	r.nodes[i] = node
	for rep := 0; rep < r.cfg.Replicas; rep++ {
		r.points = append(r.points, ringPoint{hash: ringHash(r.cfg.Seed, uint64(node), uint64(rep), 0xA11CE), node: node})
	}
	sortPoints(r.points)
}

// Remove takes a node off the ring. Removing an absent node is a no-op.
func (r *Ring) Remove(node int) {
	if !r.Has(node) {
		return
	}
	i := sort.SearchInts(r.nodes, node)
	r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sortPoints orders ring points by (hash, node) — the node tiebreak keeps
// the walk order deterministic even on (astronomically unlikely) hash
// collisions.
func sortPoints(ps []ringPoint) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].hash != ps[j].hash {
			return ps[i].hash < ps[j].hash
		}
		return ps[i].node < ps[j].node
	})
}

// Cap returns the bounded-load per-node cap for k keys: the maximum of
// ceil(k/M) (feasibility: the keys must fit) and floor(LoadFactor·k/M)
// (the balance bound ceil would loosen past LoadFactor on non-divisible
// loads).
func (r *Ring) Cap(k int) int {
	m := len(r.nodes)
	if m == 0 || k <= 0 {
		return 0
	}
	fair := (k + m - 1) / m
	bounded := int(r.cfg.LoadFactor * float64(k) / float64(m))
	if bounded > fair {
		return bounded
	}
	return fair
}

// Assign maps every key to a node under the bounded-load walk, processing
// keys in ascending order so the assignment is a deterministic function of
// (key set, ring state). Returns key→node. Panics if the ring is empty —
// the cluster simulator guarantees at least one node is always up.
func (r *Ring) Assign(keys []int) map[int]int {
	if len(r.nodes) == 0 {
		panic("cluster: assigning streams on an empty ring")
	}
	sorted := append([]int(nil), keys...)
	sort.Ints(sorted)
	cap := r.Cap(len(sorted))
	load := make(map[int]int, len(r.nodes))
	out := make(map[int]int, len(sorted))
	for _, k := range sorted {
		n := r.walk(k, func(node int) bool { return load[node] < cap })
		load[n]++
		out[k] = n
	}
	return out
}

// Owner returns the unbounded consistent-hash owner of a key: the first
// node clockwise from the key's ring position, ignoring load caps. The
// simulator uses it for single-stream placement decisions (migration
// targets); bulk placement goes through Assign.
func (r *Ring) Owner(key int) int {
	if len(r.nodes) == 0 {
		panic("cluster: looking up a stream on an empty ring")
	}
	return r.walk(key, func(int) bool { return true })
}

// walk finds the first acceptable node clockwise from the key's position.
// If every node rejects (all at cap — impossible when cap·M ≥ K), it
// falls back to the key's unbounded owner.
func (r *Ring) walk(key int, ok func(node int) bool) int {
	h := ringHash(r.cfg.Seed, uint64(key), 0, 0x5EED)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, len(r.nodes))
	for off := 0; off < len(r.points); off++ {
		p := r.points[(i+off)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if ok(p.node) {
			return p.node
		}
		if len(seen) == len(r.nodes) {
			break
		}
	}
	return r.points[i%len(r.points)].node
}

// ringHash mixes the seed and identifiers through a splitmix64-style
// finaliser — the same hashing idiom the fault and load layers use, kept
// separate from both by the salt so placement never correlates with
// arrival or fault draws.
func ringHash(seed int64, a, b, salt uint64) uint64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + a*0xBF58476D1CE4E5B9 + b*0x94D049BB133111EB + salt
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// String renders the ring for debugging: node count and per-node point
// counts.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{nodes=%d replicas=%d load_factor=%.2f}", len(r.nodes), r.cfg.Replicas, r.cfg.LoadFactor)
}
