package cluster

import (
	"fmt"
	"sort"
	"strings"

	"adascale/internal/obs"
)

// NodeReport is one node's cluster-run rollup.
type NodeReport struct {
	Node      int
	EpochsUp  int // epochs the node served (was up with work or chaos)
	Served    int
	Dropped   int
	SLOMisses int
}

// Report is the outcome of one cluster run. Offered counts every frame of
// every input stream; Served and Dropped are summed over each (node, epoch)
// serve report. The serve scheduler conserves frames within a window and
// every frame is routed to exactly one window on exactly one node, so
// Lost() == 0 is a structural invariant — the property, golden and fuzz
// layers all assert it stays one.
type Report struct {
	Streams   int
	Offered   int
	Served    int
	Dropped   int
	SLOMisses int

	Epochs     int
	DurationMS float64

	InitialNodes int
	FinalNodes   int
	Joins        int // plan joins
	Leaves       int // plan leaves (graceful)
	Blackouts    int // plan blackouts applied
	ScaleUps     int // autoscaler joins
	ScaleDowns   int // autoscaler removals
	Migrations   int // streams whose placement moved with session state
	Failovers    int // migrations whose origin node was down or gone

	// PerNode holds one rollup per node ever on the ring, in node-ID order.
	PerNode []NodeReport

	// Metrics is the cluster-wide registry: every (node, epoch) serving
	// registry merged in deterministic order. Its Snapshot() is the
	// cluster's golden surface.
	Metrics *obs.Metrics

	nodeIdx map[int]int // node ID -> index into PerNode
}

func newReport(initialNodes int) *Report {
	return &Report{InitialNodes: initialNodes, nodeIdx: map[int]int{}}
}

// node returns the rollup for a node ID, creating it on first sight.
func (r *Report) node(id int) *NodeReport {
	if i, ok := r.nodeIdx[id]; ok {
		return &r.PerNode[i]
	}
	r.nodeIdx[id] = len(r.PerNode)
	r.PerNode = append(r.PerNode, NodeReport{Node: id})
	return &r.PerNode[len(r.PerNode)-1]
}

// Lost returns the number of offered frames that were neither served nor
// dropped — zero by construction; the invariant every test layer asserts.
func (r *Report) Lost() int {
	return r.Offered - r.Served - r.Dropped
}

// String renders the report as deterministic text: the fixed-order summary
// block plus per-node rollups sorted by node ID. The cluster goldens and
// the cluster-smoke gate compare this byte for byte.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: streams=%d offered=%d served=%d dropped=%d lost=%d slo_miss=%d\n",
		r.Streams, r.Offered, r.Served, r.Dropped, r.Lost(), r.SLOMisses)
	fmt.Fprintf(&b, "epochs=%d duration_ms=%.3f\n", r.Epochs, r.DurationMS)
	fmt.Fprintf(&b, "nodes: initial=%d final=%d joins=%d leaves=%d blackouts=%d scale_up=%d scale_down=%d\n",
		r.InitialNodes, r.FinalNodes, r.Joins, r.Leaves, r.Blackouts, r.ScaleUps, r.ScaleDowns)
	fmt.Fprintf(&b, "migrations=%d failovers=%d\n", r.Migrations, r.Failovers)
	per := append([]NodeReport(nil), r.PerNode...)
	sort.Slice(per, func(i, j int) bool { return per[i].Node < per[j].Node })
	for _, n := range per {
		fmt.Fprintf(&b, "node %-3d epochs_up=%-3d served=%-6d dropped=%-5d slo_miss=%d\n",
			n.Node, n.EpochsUp, n.Served, n.Dropped, n.SLOMisses)
	}
	return b.String()
}
