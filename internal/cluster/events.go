package cluster

import (
	"fmt"
	"math/rand"
	"sort"
)

// Cluster event plans: the membership- and placement-level counterpart of
// faults.SystemPlan. Where a system plan perturbs one node's workers, a
// cluster plan perturbs the cluster itself — nodes joining and leaving,
// whole-node blackouts that force cross-node failover, and targeted stream
// migrations. A plan is a seeded, sorted schedule on the cluster's virtual
// clock; the simulator applies each event at the start of the epoch window
// containing its instant, so a cluster run is a pure function of (dataset
// seed, load seed, plan seed, config).

// EventKind enumerates the cluster events a plan can schedule.
type EventKind uint8

const (
	// EvJoin adds a fresh node to the ring (the simulator mints the next
	// monotonic node ID; the event's Node field is ignored).
	EvJoin EventKind = iota

	// EvLeave removes a node gracefully: its streams migrate to the
	// surviving nodes with their session checkpoints. Ignored when the
	// target is absent or is the last node up.
	EvLeave

	// EvBlackout takes a node down for DurationMS. Inside the event's own
	// epoch the simulator injects a faults.SysNodeBlackout into the node's
	// serving run (the node's supervisor sheds, retries and recovers); if
	// the outage extends past the epoch boundary the node leaves the ring
	// and its streams fail over — checkpoints restored on their new nodes —
	// until it recovers. Ignored for the last node up.
	EvBlackout

	// EvMigrate forcibly migrates one stream to the least-loaded other
	// node (a rebalance probe). Ignored when only one node is up.
	EvMigrate

	// NumEventKinds sizes per-kind counter arrays.
	NumEventKinds
)

// String names the kind for metrics and reports.
func (k EventKind) String() string {
	switch k {
	case EvJoin:
		return "join"
	case EvLeave:
		return "leave"
	case EvBlackout:
		return "blackout"
	case EvMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("cluster-event(%d)", uint8(k))
	}
}

// Event is one scheduled occurrence in a cluster plan.
type Event struct {
	// AtMS is the event's instant on the cluster's virtual clock. The
	// simulator applies it at the start of the epoch containing it.
	AtMS float64

	// Kind selects the event.
	Kind EventKind

	// Node is the target node ID for leave and blackout; ignored for join
	// (fresh IDs are minted) and migrate.
	Node int

	// Stream is the target stream ID for migrate.
	Stream int

	// DurationMS is the outage window for blackout events.
	DurationMS float64
}

// Plan is a deterministic schedule of cluster events, sorted by
// (AtMS, Kind, Node, Stream).
type Plan struct {
	Seed   int64
	Events []Event
}

// Count returns the number of events per kind.
func (p *Plan) Count() (counts [NumEventKinds]int) {
	for _, e := range p.Events {
		counts[e.Kind]++
	}
	return counts
}

// String summarises the plan for logs.
func (p *Plan) String() string {
	c := p.Count()
	return fmt.Sprintf("cluster plan (seed %d): %d joins, %d leaves, %d blackouts, %d migrations",
		p.Seed, c[EvJoin], c[EvLeave], c[EvBlackout], c[EvMigrate])
}

// sortEvents orders a plan deterministically.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.AtMS != b.AtMS {
			return a.AtMS < b.AtMS
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Stream < b.Stream
	})
}

// PlanConfig parameterises cluster plan generation.
type PlanConfig struct {
	// Seed drives every draw.
	Seed int64

	// HorizonMS is the window events are placed in.
	HorizonMS float64

	// Rate is the total event rate (events per virtual second) split
	// across kinds by the weights below.
	Rate float64

	// Nodes is the node-ID space leave and blackout draws target (the
	// cluster's initial node count).
	Nodes int

	// Streams is the stream-ID space migrate draws target.
	Streams int

	// BlackoutMS is the mean blackout duration. 0 means 900 (long enough
	// to span an epoch boundary at the default EpochMS, so blackouts
	// exercise cross-node failover, not just intra-node shedding).
	BlackoutMS float64
}

func (c PlanConfig) withDefaults() PlanConfig {
	if c.BlackoutMS <= 0 {
		c.BlackoutMS = 900
	}
	return c
}

// Validate reports configuration errors.
func (c *PlanConfig) Validate() error {
	switch {
	case c.HorizonMS <= 0:
		return fmt.Errorf("cluster: plan needs a positive horizon, got %v", c.HorizonMS)
	case c.Rate < 0:
		return fmt.Errorf("cluster: negative event rate %v", c.Rate)
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: plan needs the node-ID space, got %d", c.Nodes)
	case c.Streams <= 0:
		return fmt.Errorf("cluster: plan needs the stream-ID space, got %d", c.Streams)
	}
	return nil
}

// GenPlan builds a seeded cluster event plan: Poisson-ish event instants
// (exponential inter-arrivals at the configured rate) with kinds drawn
// join:leave:blackout:migrate at weights 2:2:3:3.
func GenPlan(cfg PlanConfig) (*Plan, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Seed: cfg.Seed}
	if cfg.Rate == 0 {
		return p, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed*0x9E37 + 0xC1))
	for t := rng.ExpFloat64() * 1000 / cfg.Rate; t < cfg.HorizonMS; t += rng.ExpFloat64() * 1000 / cfg.Rate {
		e := Event{AtMS: t}
		switch w := rng.Intn(10); {
		case w < 2:
			e.Kind = EvJoin
		case w < 4:
			e.Kind = EvLeave
			e.Node = rng.Intn(cfg.Nodes)
		case w < 7:
			e.Kind = EvBlackout
			e.Node = rng.Intn(cfg.Nodes)
			e.DurationMS = cfg.BlackoutMS * (0.5 + rng.Float64())
		default:
			e.Kind = EvMigrate
			e.Stream = rng.Intn(cfg.Streams)
		}
		p.Events = append(p.Events, e)
	}
	sortEvents(p.Events)
	return p, nil
}

// DecodePlan is the total decoder behind FuzzClusterEvents: every byte
// string decodes to a structurally valid plan over the given stream/node
// ID spaces and horizon — kinds, targets and instants are reduced
// modularly, never rejected — so the fuzzer explores event schedules, not
// parser error paths. Six bytes per event: kind, two instant bytes, node,
// stream, duration.
func DecodePlan(data []byte, nodes, streams int, horizonMS float64) *Plan {
	if nodes <= 0 {
		nodes = 1
	}
	if streams <= 0 {
		streams = 1
	}
	p := &Plan{}
	for i := 0; i+6 <= len(data); i += 6 {
		at := float64(uint16(data[i+1])<<8|uint16(data[i+2])) / 65536 * horizonMS
		e := Event{
			AtMS: at,
			Kind: EventKind(data[i] % uint8(NumEventKinds)),
		}
		switch e.Kind {
		case EvLeave, EvBlackout:
			e.Node = int(data[i+3]) % nodes
		case EvMigrate:
			e.Stream = int(data[i+4]) % streams
		}
		if e.Kind == EvBlackout {
			// 100..1600 ms: short enough to recover inside the run, long
			// enough that some outages span an epoch boundary.
			e.DurationMS = 100 + float64(data[i+5])/255*1500
		}
		p.Events = append(p.Events, e)
	}
	sortEvents(p.Events)
	return p
}
