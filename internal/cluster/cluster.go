package cluster

import (
	"fmt"
	"math"
	"sort"

	"adascale/internal/adascale"
	"adascale/internal/faults"
	"adascale/internal/obs"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/serve"
)

// The cluster simulator proper. Virtual time is divided into fixed epochs;
// at each epoch boundary the simulator applies cluster events (joins,
// leaves, blackouts, migrations), runs the autoscaler, recomputes the
// bounded-load placement, and then runs every up node's serve scheduler
// over the frames arriving in the window — each node an independent
// discrete-event simulation sharing the cluster's absolute clock. A node
// run drains completely (the serve layer runs to its last completion), so
// no queued frame ever crosses an epoch boundary: conservation at the
// cluster level is the sum of per-(node, epoch) conservation, which the
// serve scheduler already guarantees. Streams carry their resilient-session
// checkpoints between epochs and across nodes, so a migrated or failed-over
// stream resumes its scale ladder, last-good detections and deadline budget
// exactly where it left them.

// Autoscale tunes the p95-driven node autoscaler. The zero value disables
// autoscaling.
type Autoscale struct {
	// ScaleUpP95MS adds a node when the cluster's epoch p95 queue wait
	// exceeds it (0 disables scaling up).
	ScaleUpP95MS float64

	// ScaleDownP95MS removes the highest-ID node when the epoch p95 queue
	// wait falls below it (0 disables scaling down).
	ScaleDownP95MS float64

	// CooldownMS is the minimum virtual time between scaling actions.
	// 0 means twice the epoch.
	CooldownMS float64

	// MinNodes / MaxNodes bound the fleet. Defaults: 1 and 4× the initial
	// node count.
	MinNodes, MaxNodes int
}

// Config parameterises a cluster run.
type Config struct {
	// Nodes is the initial node count (IDs 0..Nodes-1).
	Nodes int

	// EpochMS is the placement epoch: events, scaling and rebalancing
	// happen at epoch boundaries. 0 means 1000.
	EpochMS float64

	// Ring tunes the bounded-load placement ring.
	Ring RingConfig

	// Autoscale tunes the node autoscaler (zero value: disabled).
	Autoscale Autoscale

	// MigrateP95MS is the overload-migration trigger: a node whose epoch
	// p95 queue wait exceeds it sheds a quarter of its streams to the
	// least-loaded peer at the next epoch. 0 disables.
	MigrateP95MS float64

	// Plan, when non-nil, is the cluster event schedule.
	Plan *Plan

	// Node is the per-node serving configuration. Workers must be
	// explicit (> 0): node capacity is part of the cluster's determinism
	// contract, and blackout injection reuses the serve chaos path, which
	// forbids a machine-derived worker count.
	Node serve.Config
}

func (c Config) withDefaults() Config {
	if c.EpochMS <= 0 {
		c.EpochMS = 1000
	}
	if c.Autoscale.CooldownMS <= 0 {
		c.Autoscale.CooldownMS = 2 * c.EpochMS
	}
	if c.Autoscale.MinNodes <= 0 {
		c.Autoscale.MinNodes = 1
	}
	if c.Autoscale.MaxNodes <= 0 {
		c.Autoscale.MaxNodes = 4 * c.Nodes
	}
	return c
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: need at least one node, got %d", c.Nodes)
	}
	if c.EpochMS < 0 {
		return fmt.Errorf("cluster: negative epoch %v", c.EpochMS)
	}
	if c.Node.Workers <= 0 {
		return fmt.Errorf("cluster: node config needs an explicit worker count (cluster determinism forbids a machine-derived capacity)")
	}
	if c.Node.Chaos != nil {
		return fmt.Errorf("cluster: the node config's Chaos plan is owned by the cluster (schedule blackouts through a cluster Plan instead)")
	}
	return c.Node.Validate()
}

// Cluster shards streams across simulated serve nodes.
type Cluster struct {
	cfg Config
	det *rfcn.Detector
	reg *regressor.Regressor
}

// New creates a cluster for a trained system; the detector and regressor
// are shared templates, cloned per node worker exactly as a single serve
// node would.
func New(det *rfcn.Detector, reg *regressor.Regressor, cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg.withDefaults(), det: det, reg: reg}, nil
}

// runState is the mutable state of one cluster run.
type runState struct {
	ring       *Ring
	down       map[int]float64 // node -> virtual instant it comes back up
	nextNode   int
	checkpoint map[int]*adascale.SessionCheckpoint
	prevAssign map[int]int // stream -> node last epoch
	overloaded []int       // nodes that tripped MigrateP95MS last epoch
	chaosFor   map[int][]faults.SystemEvent
	forced     []int // stream IDs with a forced migration this epoch
	lastScale  float64
	rep        *Report
}

// Run shards the streams across the cluster and serves them to completion.
func (c *Cluster) Run(streams []serve.Stream) *Report {
	cfg := c.cfg
	rep := newReport(cfg.Nodes)
	rep.Metrics = obs.NewMetrics()
	st := &runState{
		ring:       NewRing(cfg.Ring),
		down:       map[int]float64{},
		nextNode:   cfg.Nodes,
		checkpoint: map[int]*adascale.SessionCheckpoint{},
		prevAssign: map[int]int{},
		lastScale:  math.Inf(-1),
		rep:        rep,
	}
	for n := 0; n < cfg.Nodes; n++ {
		st.ring.Add(n)
		rep.node(n)
	}

	// Sort streams by ID and index their frames; loadgen emits frames in
	// arrival order per stream, which the epoch slicing relies on.
	ordered := append([]serve.Stream(nil), streams...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	horizon := 0.0
	cursor := make([]int, len(ordered))
	for _, s := range ordered {
		rep.Streams++
		rep.Offered += len(s.Frames)
		if n := len(s.Frames); n > 0 && s.Frames[n-1].ArrivalMS > horizon {
			horizon = s.Frames[n-1].ArrivalMS
		}
		if s.Checkpoint != nil {
			cp := *s.Checkpoint
			st.checkpoint[s.ID] = &cp
		}
	}
	if rep.Offered == 0 {
		rep.FinalNodes = st.ring.Len()
		return rep
	}
	epochs := int(horizon/cfg.EpochMS) + 1
	rep.Epochs = epochs

	eventIdx := 0
	var p95 float64 // last epoch's cluster p95 queue wait
	for epoch := 0; epoch < epochs; epoch++ {
		start := float64(epoch) * cfg.EpochMS
		end := start + cfg.EpochMS
		st.chaosFor = map[int][]faults.SystemEvent{}
		st.forced = st.forced[:0]

		c.syncMembership(st, start)
		if cfg.Plan != nil {
			for ; eventIdx < len(cfg.Plan.Events) && cfg.Plan.Events[eventIdx].AtMS < end; eventIdx++ {
				c.apply(st, cfg.Plan.Events[eventIdx], end)
			}
		}
		if epoch > 0 {
			c.autoscale(st, start, p95)
		}

		assign := c.place(st, ordered, cursor)
		p95 = c.runEpoch(st, ordered, cursor, assign, start, end)
		st.prevAssign = assign
	}

	rep.FinalNodes = st.ring.Len()
	sort.Slice(rep.PerNode, func(i, j int) bool { return rep.PerNode[i].Node < rep.PerNode[j].Node })
	return rep
}

// syncMembership reconciles blackout outages with the ring at an epoch
// boundary: nodes whose outage ended rejoin; nodes still inside one leave
// (their streams fail over this epoch). A node spends the epoch the
// blackout *starts* in still on the ring — its own supervisor rides the
// outage out via the injected faults.SysNodeBlackout — and leaves only
// from the next boundary, mirroring how a real cluster detects a dead node
// a health-check interval after it stops answering. The last node standing
// is never removed: the cluster always has somewhere to route frames.
func (c *Cluster) syncMembership(st *runState, startMS float64) {
	ids := make([]int, 0, len(st.down))
	for n := range st.down {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	for _, n := range ids {
		switch {
		case st.down[n] <= startMS:
			delete(st.down, n)
			st.ring.Add(n)
		case st.ring.Has(n):
			if st.ring.Len() > 1 {
				st.ring.Remove(n)
			} else {
				// The only node up: the outage is overridden — degraded
				// serving through the supervisor beats losing the fleet.
				delete(st.down, n)
			}
		}
	}
}

// apply folds one cluster event into the run state. Events that would take
// the last node down are ignored: the cluster never loses its only serving
// node, so every offered frame always has somewhere to go (the conservation
// invariant is unconditional, including under fuzzed plans).
func (c *Cluster) apply(st *runState, e Event, epochEndMS float64) {
	switch e.Kind {
	case EvJoin:
		n := st.nextNode
		st.nextNode++
		st.ring.Add(n)
		st.rep.node(n)
		st.rep.Joins++
	case EvLeave:
		if !st.ring.Has(e.Node) || st.ring.Len() <= 1 {
			return
		}
		st.ring.Remove(e.Node)
		st.rep.Leaves++
	case EvBlackout:
		if !st.ring.Has(e.Node) {
			return
		}
		st.rep.Blackouts++
		// Inside the event's own epoch the node rides the outage out on
		// its supervisor — the injected faults.SysNodeBlackout sheds and
		// recovers exactly as the single-node chaos path does.
		st.chaosFor[e.Node] = append(st.chaosFor[e.Node], faults.SystemEvent{
			AtMS: e.AtMS, Kind: faults.SysNodeBlackout, Worker: -1, DurationMS: e.DurationMS,
		})
		if upAt := e.AtMS + e.DurationMS; upAt >= epochEndMS {
			// The outage outlives the epoch: from the next boundary
			// (syncMembership) the node leaves the ring and its streams
			// fail over — checkpoints restored on their new nodes — until
			// it recovers.
			if upAt > st.down[e.Node] {
				st.down[e.Node] = upAt
			}
		}
	case EvMigrate:
		if st.ring.Len() <= 1 {
			return
		}
		st.forced = append(st.forced, e.Stream)
	}
}

// autoscale applies the p95-driven scaling policy at an epoch boundary.
func (c *Cluster) autoscale(st *runState, nowMS, p95 float64) {
	a := c.cfg.Autoscale
	if a.ScaleUpP95MS <= 0 && a.ScaleDownP95MS <= 0 {
		return
	}
	if nowMS-st.lastScale < a.CooldownMS {
		return
	}
	switch {
	case a.ScaleUpP95MS > 0 && p95 > a.ScaleUpP95MS && st.ring.Len() < a.MaxNodes:
		n := st.nextNode
		st.nextNode++
		st.ring.Add(n)
		st.rep.node(n)
		st.rep.ScaleUps++
		st.lastScale = nowMS
	case a.ScaleDownP95MS > 0 && p95 < a.ScaleDownP95MS && st.ring.Len() > a.MinNodes:
		nodes := st.ring.Nodes()
		st.ring.Remove(nodes[len(nodes)-1])
		st.rep.ScaleDowns++
		st.lastScale = nowMS
	}
}

// place computes the epoch's stream→node assignment: the bounded-load ring
// assignment over every stream with frames remaining, then the overload
// shed and forced migrations on top. Migration counting compares against
// the previous epoch's placement: a stream that has already served
// somewhere (it has a checkpoint) and lands on a different node is a
// migration; if its old node is gone from the ring it is a failover.
func (c *Cluster) place(st *runState, ordered []serve.Stream, cursor []int) map[int]int {
	keys := make([]int, 0, len(ordered))
	for i, s := range ordered {
		if cursor[i] < len(s.Frames) {
			keys = append(keys, s.ID)
		}
	}
	if len(keys) == 0 {
		return map[int]int{}
	}
	assign := st.ring.Assign(keys)

	load := map[int]int{}
	for _, n := range assign {
		load[n]++
	}

	// Overload shed: each tripped node moves the top quarter of its
	// streams (highest IDs — deterministic, and the streams placed there
	// most recently under ascending assignment) to the least-loaded peer.
	for _, n := range st.overloaded {
		if !st.ring.Has(n) || st.ring.Len() <= 1 {
			continue
		}
		var mine []int
		for k, nn := range assign {
			if nn == n {
				mine = append(mine, k)
			}
		}
		sort.Ints(mine)
		shed := len(mine) / 4
		for _, k := range mine[len(mine)-shed:] {
			if t := leastLoaded(st.ring, load, n); t >= 0 {
				assign[k] = t
				load[n]--
				load[t]++
			}
		}
	}

	// Forced migrations from the event plan.
	for _, k := range st.forced {
		n, ok := assign[k]
		if !ok {
			continue // stream already drained
		}
		if t := leastLoaded(st.ring, load, n); t >= 0 {
			assign[k] = t
			load[n]--
			load[t]++
		}
	}

	for _, k := range keys {
		prev, moved := st.prevAssign[k]
		if !moved || prev == assign[k] || st.checkpoint[k] == nil {
			continue
		}
		st.rep.Migrations++
		if !st.ring.Has(prev) {
			st.rep.Failovers++
		}
	}
	return assign
}

// leastLoaded returns the up node with the smallest assigned load other
// than exclude (lowest ID on ties), or -1 if none exists.
func leastLoaded(ring *Ring, load map[int]int, exclude int) int {
	best := -1
	for _, n := range ring.Nodes() {
		if n == exclude {
			continue
		}
		if best < 0 || load[n] < load[best] {
			best = n
		}
	}
	return best
}

// runEpoch runs every up node's serve scheduler over the epoch's arrivals
// and folds the results into the cluster report. Returns the epoch's
// cluster-wide p95 queue wait (the autoscaler's input signal).
func (c *Cluster) runEpoch(st *runState, ordered []serve.Stream, cursor []int, assign map[int]int, startMS, endMS float64) float64 {
	// Slice each stream's frames for the window and group by node.
	perNode := map[int][]serve.Stream{}
	for i := range ordered {
		s := &ordered[i]
		lo := cursor[i]
		hi := lo
		for hi < len(s.Frames) && s.Frames[hi].ArrivalMS < endMS {
			hi++
		}
		if hi == lo {
			continue
		}
		cursor[i] = hi
		n := assign[s.ID]
		perNode[n] = append(perNode[n], serve.Stream{
			ID: s.ID, Frames: s.Frames[lo:hi], Checkpoint: st.checkpoint[s.ID],
		})
	}

	epochM := obs.NewMetrics()
	var tripped []int
	for _, n := range st.ring.Nodes() {
		nodeStreams := perNode[n]
		if len(nodeStreams) == 0 && st.chaosFor[n] == nil {
			continue
		}
		nodeCfg := c.cfg.Node
		if ev := st.chaosFor[n]; ev != nil {
			nodeCfg.Chaos = &faults.SystemPlan{Seed: c.cfg.Ring.Seed, Events: ev}
		}
		srv, err := serve.New(c.det, c.reg, nodeCfg)
		if err != nil {
			// Config was validated at New; a per-epoch failure here is a
			// programming error, not an input condition.
			panic(fmt.Sprintf("cluster: node %d epoch config rejected: %v", n, err))
		}
		nodeRep := srv.Run(nodeStreams)

		nr := st.rep.node(n)
		nr.EpochsUp++
		for _, sr := range nodeRep.Streams {
			nr.Served += len(sr.Outputs)
			nr.Dropped += len(sr.Dropped)
			nr.SLOMisses += sr.SLOMisses
			st.rep.Served += len(sr.Outputs)
			st.rep.Dropped += len(sr.Dropped)
			st.rep.SLOMisses += sr.SLOMisses
			cp := sr.Checkpoint
			st.checkpoint[sr.ID] = &cp
		}
		if d := nodeRep.DurationMS; d > st.rep.DurationMS {
			st.rep.DurationMS = d
		}
		epochM.Merge(nodeRep.Metrics)
		if c.cfg.MigrateP95MS > 0 && nodeRep.Metrics.Quantile("queue/wait_ms", 0.95) > c.cfg.MigrateP95MS {
			tripped = append(tripped, n)
		}
	}
	st.overloaded = tripped
	p95 := epochM.Quantile("queue/wait_ms", 0.95)
	st.rep.Metrics.Merge(epochM)
	return p95
}
