package cluster

import (
	"testing"

	"adascale/internal/adascale"
	"adascale/internal/serve"
)

// FuzzClusterEvents decodes an arbitrary byte string into a cluster event
// script (DecodePlan is total: every input is a structurally valid plan)
// and replays it against a small model-only cluster. The invariants, on
// EVERY input: no panic; the conservation identity offered == served +
// dropped with Lost() == 0 — node blackouts, joins, leaves and forced
// migrations may move or drop frames but can never lose one — per-node
// rollups that sum to the cluster totals, and a byte-identical report on
// an immediate re-run (determinism under adversarial schedules, not just
// the curated ones the goldens pin).
func FuzzClusterEvents(f *testing.F) {
	f.Add([]byte{}, uint8(3))
	// One long blackout (spans the 400ms epoch → cross-node failover).
	f.Add([]byte{2, 0x20, 0x00, 1, 0, 200}, uint8(3))
	// Join, graceful leave of node 0, forced stream migration.
	f.Add([]byte{
		0, 0x08, 0x00, 0, 0, 0,
		1, 0x40, 0x00, 0, 0, 0,
		3, 0x60, 0x00, 0, 4, 0,
	}, uint8(2))
	// Leave every initial node of a 2-node cluster (the survivor guard).
	f.Add([]byte{
		1, 0x10, 0x00, 0, 0, 0,
		1, 0x10, 0x00, 1, 0, 0,
	}, uint8(2))
	// Truncated garbage: decoder must round down to whole events.
	f.Add([]byte{0xff, 0x01, 0x02}, uint8(1))

	_, sys := system(f)
	streams := load(f, sharedDS, 6, 10, 10, 11)

	f.Fuzz(func(t *testing.T, data []byte, nodes uint8) {
		n := int(nodes%4) + 1
		plan := DecodePlan(data, n, len(streams), 1200)
		cfg := Config{
			Nodes: n, EpochMS: 400, Plan: plan,
			Node: serve.Config{
				Workers: 2, QueueDepth: 3, SLOMS: 80,
				Resilient: adascale.DefaultResilientConfig(),
				// Model-only: scheduling, queueing and recovery are exactly
				// the real run's; only detector content is absent — which
				// keeps each fuzz iteration sub-millisecond.
				ModelOnly: true, CompactMetrics: true,
			},
		}
		c, err := New(sys.Detector, sys.Regressor, cfg)
		if err != nil {
			t.Fatalf("valid fuzz config rejected: %v", err)
		}
		rep := c.Run(streams)
		if rep.Lost() != 0 {
			t.Fatalf("plan %s lost %d frames (offered=%d served=%d dropped=%d)",
				plan, rep.Lost(), rep.Offered, rep.Served, rep.Dropped)
		}
		if rep.FinalNodes < 1 {
			t.Fatalf("cluster ended with %d nodes", rep.FinalNodes)
		}
		var served, dropped int
		for _, nr := range rep.PerNode {
			served += nr.Served
			dropped += nr.Dropped
		}
		if served != rep.Served || dropped != rep.Dropped {
			t.Fatalf("per-node rollups (%d/%d) disagree with totals (%d/%d)",
				served, dropped, rep.Served, rep.Dropped)
		}
		ref := rep.String() + rep.Metrics.Snapshot()
		c2, _ := New(sys.Detector, sys.Regressor, cfg)
		rep2 := c2.Run(streams)
		if got := rep2.String() + rep2.Metrics.Snapshot(); got != ref {
			t.Fatalf("cluster run not deterministic under plan %s", plan)
		}
	})
}
