package cluster

import (
	"strings"
	"sync"
	"testing"

	"adascale/internal/adascale"
	"adascale/internal/faults"
	"adascale/internal/parallel"
	"adascale/internal/serve"
	"adascale/internal/synth"
)

var (
	buildOnce sync.Once
	sharedDS  *synth.Dataset
	sharedSys *adascale.System
)

// system builds one small trained system shared across the package's tests
// (testing.TB so the fuzz harness can share the fixture).
func system(t testing.TB) (*synth.Dataset, *adascale.System) {
	t.Helper()
	buildOnce.Do(func() {
		cfg := synth.VIDLike(5)
		ds, err := synth.Generate(cfg, 12, 6)
		if err != nil {
			t.Fatal(err)
		}
		sharedDS = ds
		sharedSys = adascale.Build(ds, adascale.DefaultBuildConfig())
	})
	return sharedDS, sharedSys
}

// load generates an arrival schedule over the validation snippets.
func load(t testing.TB, ds *synth.Dataset, streams int, fps float64, frames int, seed int64) []serve.Stream {
	t.Helper()
	out, err := serve.GenLoad(ds.Val, serve.LoadConfig{Streams: streams, FPS: fps, FramesPerStream: frames, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// nodeConfig is the per-node template every cluster test shares.
func nodeConfig() serve.Config {
	return serve.Config{
		Workers: 2, QueueDepth: 4, SLOMS: 100,
		Resilient: adascale.DefaultResilientConfig(),
	}
}

func newCluster(t *testing.T, sys *adascale.System, cfg Config) *Cluster {
	t.Helper()
	c, err := New(sys.Detector, sys.Regressor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// checkConserved asserts the conservation invariant and internal
// consistency of a cluster report.
func checkConserved(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Lost() != 0 {
		t.Fatalf("cluster lost %d frames (offered=%d served=%d dropped=%d)",
			rep.Lost(), rep.Offered, rep.Served, rep.Dropped)
	}
	var served, dropped int
	for _, n := range rep.PerNode {
		served += n.Served
		dropped += n.Dropped
	}
	if served != rep.Served || dropped != rep.Dropped {
		t.Fatalf("per-node rollups (served=%d dropped=%d) disagree with totals (served=%d dropped=%d)",
			served, dropped, rep.Served, rep.Dropped)
	}
	if got := rep.Metrics.Counter("frames/served"); int(got) != rep.Served {
		t.Fatalf("merged metrics count %d served frames, report says %d", got, rep.Served)
	}
}

func TestClusterConservation(t *testing.T) {
	ds, sys := system(t)
	c := newCluster(t, sys, Config{Nodes: 3, EpochMS: 400, Node: nodeConfig()})
	rep := c.Run(load(t, ds, 9, 20, 10, 11))
	checkConserved(t, rep)
	if rep.Streams != 9 || rep.Offered != 90 {
		t.Fatalf("streams=%d offered=%d, want 9/90", rep.Streams, rep.Offered)
	}
	if rep.Served == 0 {
		t.Fatal("cluster served nothing")
	}
	if rep.FinalNodes != 3 {
		t.Fatalf("final nodes %d, want 3 (no plan, no autoscale)", rep.FinalNodes)
	}
	for _, want := range []string{"cluster:", "lost=0", "node 0", "node 2"} {
		if !strings.Contains(rep.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, rep.String())
		}
	}
}

// TestClusterDeterministic pins the cluster determinism contract: two runs
// with the same inputs — and runs at real worker counts 1 and 4 — produce
// byte-identical reports and metric snapshots.
func TestClusterDeterministic(t *testing.T) {
	ds, sys := system(t)
	plan, err := GenPlan(PlanConfig{Seed: 3, HorizonMS: 1200, Rate: 3, Nodes: 3, Streams: 8})
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		c := newCluster(t, sys, Config{Nodes: 3, EpochMS: 400, Plan: plan, Node: nodeConfig()})
		rep := c.Run(load(t, ds, 8, 20, 8, 11))
		checkConserved(t, rep)
		return rep.String() + rep.Metrics.Snapshot()
	}
	ref := run()
	if again := run(); again != ref {
		t.Fatalf("cluster run diverged across identical runs:\n--- A ---\n%s\n--- B ---\n%s", ref, again)
	}
	t.Cleanup(func() { parallel.SetWorkers(0) })
	for _, w := range []int{1, 4} {
		parallel.SetWorkers(w)
		if got := run(); got != ref {
			t.Fatalf("cluster run diverged at real workers=%d", w)
		}
	}
}

// TestClusterBlackoutFailover drives a blackout that outlives its epoch:
// the node must leave the ring, its streams must fail over with their
// checkpoints, the node must come back, and no frame may be lost.
func TestClusterBlackoutFailover(t *testing.T) {
	ds, sys := system(t)
	plan := &Plan{Events: []Event{
		{AtMS: 150, Kind: EvBlackout, Node: 1, DurationMS: 700},
	}}
	c := newCluster(t, sys, Config{Nodes: 3, EpochMS: 400, Plan: plan, Node: nodeConfig()})
	rep := c.Run(load(t, ds, 9, 15, 20, 11))
	checkConserved(t, rep)
	if rep.Blackouts != 1 {
		t.Fatalf("blackouts applied = %d, want 1", rep.Blackouts)
	}
	if rep.Failovers == 0 {
		t.Fatal("no failovers recorded through a node blackout")
	}
	if rep.FinalNodes != 3 {
		t.Fatalf("final nodes %d, want 3 (node 1 recovers at 850ms)", rep.FinalNodes)
	}
	// The blacked-out node must have sat out at least one epoch.
	for _, n := range rep.PerNode {
		if n.Node == 1 && n.EpochsUp >= rep.Epochs {
			t.Fatalf("node 1 up for all %d epochs despite a 700ms blackout", rep.Epochs)
		}
	}
}

// TestClusterJoinLeave checks membership bookkeeping: plan joins mint fresh
// node IDs, graceful leaves drain through migration, and the last node can
// never be removed.
func TestClusterJoinLeave(t *testing.T) {
	ds, sys := system(t)
	plan := &Plan{Events: []Event{
		{AtMS: 100, Kind: EvJoin},
		{AtMS: 500, Kind: EvLeave, Node: 0},
		{AtMS: 900, Kind: EvLeave, Node: 99}, // absent: ignored
	}}
	c := newCluster(t, sys, Config{Nodes: 2, EpochMS: 400, Plan: plan, Node: nodeConfig()})
	rep := c.Run(load(t, ds, 6, 20, 10, 11))
	checkConserved(t, rep)
	if rep.Joins != 1 || rep.Leaves != 1 {
		t.Fatalf("joins=%d leaves=%d, want 1/1", rep.Joins, rep.Leaves)
	}
	if rep.FinalNodes != 2 {
		t.Fatalf("final nodes %d, want 2 (2 initial + 1 join - 1 leave)", rep.FinalNodes)
	}
	if rep.Migrations == 0 {
		t.Fatal("membership churn produced no migrations")
	}

	// A plan that tries to remove every node must leave one standing.
	drain := &Plan{Events: []Event{
		{AtMS: 100, Kind: EvLeave, Node: 0},
		{AtMS: 100, Kind: EvLeave, Node: 1},
	}}
	c2 := newCluster(t, sys, Config{Nodes: 2, EpochMS: 400, Plan: drain, Node: nodeConfig()})
	rep2 := c2.Run(load(t, ds, 4, 20, 8, 11))
	checkConserved(t, rep2)
	if rep2.FinalNodes != 1 {
		t.Fatalf("final nodes %d, want exactly 1 survivor", rep2.FinalNodes)
	}
}

// TestClusterAutoscale overloads a single node and checks the p95 policy
// grows the fleet (within bounds, respecting cooldown) without losing
// frames.
func TestClusterAutoscale(t *testing.T) {
	ds, sys := system(t)
	node := nodeConfig()
	node.Workers = 1
	c := newCluster(t, sys, Config{
		Nodes: 1, EpochMS: 400,
		Autoscale: Autoscale{ScaleUpP95MS: 5, CooldownMS: 400, MaxNodes: 4},
		Node:      node,
	})
	rep := c.Run(load(t, ds, 12, 40, 12, 11))
	checkConserved(t, rep)
	if rep.ScaleUps == 0 {
		t.Fatalf("overloaded single node never scaled up:\n%s", rep.String())
	}
	if rep.FinalNodes > 4 {
		t.Fatalf("fleet grew past MaxNodes: %d", rep.FinalNodes)
	}
}

// TestClusterModelOnly checks the capacity-sweep fast path: model-only
// cluster runs conserve frames, produce deterministic compact snapshots,
// and serve every non-dropped frame through the propagation path.
func TestClusterModelOnly(t *testing.T) {
	ds, sys := system(t)
	node := nodeConfig()
	node.ModelOnly = true
	node.CompactMetrics = true
	run := func() string {
		c := newCluster(t, sys, Config{Nodes: 2, EpochMS: 400, Node: node})
		rep := c.Run(load(t, ds, 50, 15, 6, 11))
		checkConserved(t, rep)
		if rep.Served+rep.Dropped != 300 {
			t.Fatalf("served=%d dropped=%d, want total 300", rep.Served, rep.Dropped)
		}
		return rep.String() + rep.Metrics.Snapshot()
	}
	ref := run()
	if again := run(); again != ref {
		t.Fatal("model-only cluster run not deterministic")
	}
	if strings.Contains(ref, "stream/0/") {
		t.Fatal("compact metrics still emit per-stream keys")
	}
}

// TestClusterConfigValidation pins the config contract.
func TestClusterConfigValidation(t *testing.T) {
	_, sys := system(t)
	if _, err := New(sys.Detector, sys.Regressor, Config{Nodes: 0, Node: nodeConfig()}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad := nodeConfig()
	bad.Workers = 0
	if _, err := New(sys.Detector, sys.Regressor, Config{Nodes: 2, Node: bad}); err == nil {
		t.Fatal("machine-derived node worker count accepted")
	}
	withChaos := nodeConfig()
	withChaos.Chaos = &faults.SystemPlan{}
	if _, err := New(sys.Detector, sys.Regressor, Config{Nodes: 2, Node: withChaos}); err == nil {
		t.Fatal("caller-owned node chaos plan accepted")
	}
}
