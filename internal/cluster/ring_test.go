package cluster

import (
	"math/rand"
	"runtime"
	"testing"
)

// Property tests for the bounded-load placement ring. Three invariants from
// the issue: (1) balance — max/mean load ≤ LoadFactor for K ≳ 4M; (2)
// minimal disruption — a node join or leave moves at most ceil(K/M)+slack
// keys, where slack absorbs the bounded-load cascade; (3) determinism —
// the assignment is a pure function of (seed, key set, ring state),
// identical across repeated calls and GOMAXPROCS settings.

// seqKeys returns [0, k).
func seqKeys(k int) []int {
	keys := make([]int, k)
	for i := range keys {
		keys[i] = i
	}
	return keys
}

// ringWith builds a ring with nodes [0, m).
func ringWith(seed int64, m int) *Ring {
	r := NewRing(RingConfig{Seed: seed})
	for n := 0; n < m; n++ {
		r.Add(n)
	}
	return r
}

// loads tallies keys per node.
func loads(assign map[int]int) map[int]int {
	l := map[int]int{}
	for _, n := range assign {
		l[n]++
	}
	return l
}

func TestRingBalanceBound(t *testing.T) {
	cases := []struct {
		name  string
		keys  int
		nodes int
		seed  int64
	}{
		{"1k keys, 4 nodes", 1000, 4, 1},
		{"1k keys, 8 nodes", 1000, 8, 2},
		{"10k keys, 16 nodes", 10000, 16, 3},
		{"exact multiple", 1024, 8, 4},
		{"single node", 500, 1, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := ringWith(tc.seed, tc.nodes)
			assign := r.Assign(seqKeys(tc.keys))
			if len(assign) != tc.keys {
				t.Fatalf("assigned %d keys, want %d", len(assign), tc.keys)
			}
			l := loads(assign)
			mean := float64(tc.keys) / float64(tc.nodes)
			for n, cnt := range l {
				if ratio := float64(cnt) / mean; ratio > 1.25+1e-9 {
					t.Errorf("node %d load %d: max/mean = %.4f > 1.25", n, cnt, ratio)
				}
			}
			// Every node carries work when keys dwarf nodes: bounded-load
			// cannot starve a node out of the rotation entirely.
			if tc.keys >= 50*tc.nodes {
				for n := 0; n < tc.nodes; n++ {
					if l[n] == 0 {
						t.Errorf("node %d assigned no keys out of %d", n, tc.keys)
					}
				}
			}
		})
	}
}

// moved counts keys whose node changed between two assignments.
func moved(a, b map[int]int) int {
	n := 0
	for k, na := range a {
		if nb, ok := b[k]; ok && na != nb {
			n++
		}
	}
	return n
}

func TestRingMinimalDisruptionOnJoin(t *testing.T) {
	const keys, nodes = 2000, 8
	for seed := int64(0); seed < 5; seed++ {
		r := ringWith(seed, nodes)
		before := r.Assign(seqKeys(keys))
		r.Add(nodes) // join node 8
		after := r.Assign(seqKeys(keys))
		// A join should move roughly K/(M+1) keys to the newcomer, plus a
		// bounded cascade from the tightened caps. The bound from the
		// issue: moved ≤ ceil(K/M) + slack, slack = K/10 absorbing the
		// bounded-load cascade.
		bound := (keys+nodes-1)/nodes + keys/10
		if got := moved(before, after); got > bound {
			t.Errorf("seed %d: join moved %d keys, bound %d", seed, got, bound)
		}
		// The newcomer must actually receive load — a join that moves
		// nothing is a broken ring, not a minimal one.
		if l := loads(after)[nodes]; l == 0 {
			t.Errorf("seed %d: joined node received no keys", seed)
		}
	}
}

func TestRingMinimalDisruptionOnLeave(t *testing.T) {
	const keys, nodes = 2000, 8
	for seed := int64(0); seed < 5; seed++ {
		r := ringWith(seed, nodes)
		before := r.Assign(seqKeys(keys))
		r.Remove(3)
		after := r.Assign(seqKeys(keys))
		// Everything the departed node held must move (that is the point),
		// plus the cascade; nothing else should churn.
		departed := loads(before)[3]
		bound := departed + keys/10
		if got := moved(before, after); got > bound {
			t.Errorf("seed %d: leave moved %d keys, bound %d (departed held %d)", seed, got, bound, departed)
		}
		for k, n := range after {
			if n == 3 {
				t.Fatalf("seed %d: key %d still assigned to removed node", seed, k)
			}
		}
	}
}

func TestRingDeterminism(t *testing.T) {
	const keys, nodes = 1000, 6
	r := ringWith(42, nodes)
	first := r.Assign(seqKeys(keys))

	// Same ring, same keys: identical assignment on every call.
	for i := 0; i < 3; i++ {
		again := r.Assign(seqKeys(keys))
		if moved(first, again) != 0 {
			t.Fatalf("repeat assign %d diverged", i)
		}
	}

	// A rebuilt ring with the same seed and membership reproduces the
	// assignment regardless of GOMAXPROCS — placement is pure computation,
	// never scheduling-dependent.
	prev := runtime.GOMAXPROCS(1)
	serial := ringWith(42, nodes).Assign(seqKeys(keys))
	runtime.GOMAXPROCS(prev)
	if moved(first, serial) != 0 {
		t.Fatal("assignment diverged across GOMAXPROCS settings")
	}

	// Different seeds place differently (placements are seed-independent
	// draws, not a fixed layout wearing a seed parameter).
	other := ringWith(43, nodes).Assign(seqKeys(keys))
	if moved(first, other) == 0 {
		t.Error("seeds 42 and 43 produced identical placements — seed is not wired into the hash")
	}
}

// TestRingRandomizedProperties is the quick-style pass: random (seed, K, M)
// draws, asserting the full invariant set on each.
func TestRingRandomizedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(16)
		k := 4*m + rng.Intn(3000)
		seed := rng.Int63()
		r := ringWith(seed, m)
		assign := r.Assign(seqKeys(k))
		if len(assign) != k {
			t.Fatalf("trial %d (K=%d M=%d): assigned %d keys", trial, k, m, len(assign))
		}
		mean := float64(k) / float64(m)
		for n, cnt := range loads(assign) {
			if !r.Has(n) {
				t.Fatalf("trial %d: key assigned to absent node %d", trial, n)
			}
			if ratio := float64(cnt) / mean; ratio > 1.25+1e-9 {
				t.Errorf("trial %d (K=%d M=%d): node %d ratio %.4f > 1.25", trial, k, m, n, ratio)
			}
		}
		if moved(assign, r.Assign(seqKeys(k))) != 0 {
			t.Errorf("trial %d: assignment not stable across calls", trial)
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := ringWith(7, 4)
	r.Add(2) // already present
	if r.Len() != 4 {
		t.Fatalf("double-add changed node count: %d", r.Len())
	}
	if want, got := 4*r.cfg.Replicas, len(r.points); want != got {
		t.Fatalf("double-add changed point count: %d, want %d", got, want)
	}
	r.Remove(9) // absent
	if r.Len() != 4 {
		t.Fatalf("absent-remove changed node count: %d", r.Len())
	}
	r.Remove(2)
	if r.Has(2) || r.Len() != 3 {
		t.Fatalf("remove failed: has=%v len=%d", r.Has(2), r.Len())
	}
}
