// Package dff implements Deep Feature Flow (Zhu et al., CVPR 2017b) — the
// state-of-the-art video acceleration baseline the paper combines AdaScale
// with in Sec. 4.6 / Fig. 7. The expensive detection network runs only on
// key frames; intermediate frames reuse the key frame's outputs, propagated
// along optical flow estimated by a network an order of magnitude cheaper.
//
// Here the flow is real (block matching over rendered frames,
// internal/flow) and propagation operates on detections: boxes are warped
// by the measured motion, and confidence decays with propagation distance
// and flow residual — the same quality/speed trade the original system
// exhibits (accuracy sags as the key interval grows).
package dff

import (
	"math"

	"adascale/internal/adascale"
	"adascale/internal/detect"
	"adascale/internal/flow"
	"adascale/internal/raster"
	"adascale/internal/regressor"
	"adascale/internal/rfcn"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

// Config parameterises the DFF runner.
type Config struct {
	// KeyInterval is the key-frame period; the DFF paper's default is 10.
	KeyInterval int

	// FlowScale is the test scale (shortest side, native convention) at
	// which frames are rendered for flow estimation; flow runs on images
	// an order of magnitude smaller than detection, like FlowNet's input.
	FlowScale int

	// Block and Radius parameterise the block matcher at the flow render
	// resolution.
	Block, Radius int

	// DecayPerStep is the per-propagation-step confidence decay; flow
	// residual adds on top of it.
	DecayPerStep float64
}

// DefaultConfig mirrors the DFF paper's operating point.
func DefaultConfig() Config {
	return Config{KeyInterval: 5, FlowScale: 360, Block: 8, Radius: 8, DecayPerStep: 0.02}
}

// Run executes DFF over a snippet with key frames detected at a fixed
// scale. Non-key frames cost only flow estimation.
func Run(det *rfcn.Detector, sn *synth.Snippet, keyScale int, cfg Config) []adascale.FrameOutput {
	return run(det, nil, sn, keyScale, cfg)
}

// RunAdaptive composes DFF with AdaScale: key frames are detected at the
// adaptively regressed scale (the regressor reads the key frame's deep
// features and predicts the scale for the next key frame), non-key frames
// propagate. This is the paper's "DFF + AdaScale" Pareto point: an extra
// ~25% speedup at slightly better mAP.
func RunAdaptive(det *rfcn.Detector, reg *regressor.Regressor, sn *synth.Snippet, cfg Config) []adascale.FrameOutput {
	return run(det, reg, sn, adascale.InitialScale, cfg)
}

// Runner returns a factory for the fixed-scale DFF protocol. Each worker
// gets its own detector clone (key-frame detection drives the stateful
// backbone when composed with features; flow estimation is stateless).
func Runner(det *rfcn.Detector, keyScale int, cfg Config) adascale.RunnerFactory {
	return func() adascale.SnippetRunner {
		d := det.Clone()
		return func(sn *synth.Snippet) []adascale.FrameOutput { return Run(d, sn, keyScale, cfg) }
	}
}

// AdaptiveRunner returns a factory for DFF + AdaScale; detector and
// regressor are cloned per worker.
func AdaptiveRunner(det *rfcn.Detector, reg *regressor.Regressor, cfg Config) adascale.RunnerFactory {
	return func() adascale.SnippetRunner {
		d, r := det.Clone(), reg.Clone()
		return func(sn *synth.Snippet) []adascale.FrameOutput { return RunAdaptive(d, r, sn, cfg) }
	}
}

func run(det *rfcn.Detector, reg *regressor.Regressor, sn *synth.Snippet, keyScale int, cfg Config) []adascale.FrameOutput {
	if cfg.KeyInterval < 1 {
		cfg.KeyInterval = 1
	}
	renderShort := cfg.FlowScale / det.Data.RenderDiv
	if renderShort < 16 {
		renderShort = 16
	}
	maxLong := rfcn.MaxLongSide * det.Data.RenderDiv

	outputs := make([]adascale.FrameOutput, 0, len(sn.Frames))
	var keyDets []detect.Detection // key-frame detections, native coords
	var keyRender *raster.Image
	targetScale := keyScale

	for i := range sn.Frames {
		f := &sn.Frames[i]
		if i%cfg.KeyInterval == 0 {
			// Key frame: full detection (with features when adaptive).
			var r *rfcn.Result
			overhead := 0.0
			if reg != nil {
				r = det.DetectWithFeatures(f, targetScale)
				overhead = simclock.RegressorMS(reg.Kernels)
			} else {
				r = det.Detect(f, targetScale)
			}
			keyDets = r.PlainDetections()
			outputs = append(outputs, adascale.FrameOutput{
				Frame: f, Scale: targetScale,
				Detections: keyDets,
				DetectorMS: r.RuntimeMS,
				OverheadMS: overhead,
			})
			if reg != nil {
				targetScale = regressor.DecodeScale(reg.Predict(r.Features), targetScale)
				det.Recycle(r.Features)
				r.Features = nil
			}
			keyRender = f.Render(renderShort, maxLong, det.Data.RenderDiv)
			continue
		}

		// Non-key frame: estimate flow directly from the key frame so the
		// quantisation error of one match does not accumulate over the
		// interval; the search radius widens with temporal distance.
		steps := i % cfg.KeyInterval
		radius := cfg.Radius + 2*steps
		if radius > 20 {
			radius = 20
		}
		curRender := f.Render(renderShort, maxLong, det.Data.RenderDiv)
		fl, flErr := flow.Estimate(keyRender, curRender, cfg.Block, radius)
		if flErr != nil {
			// Flow failed on a malformed frame pair: degrade to propagating
			// the key detections unwarped (decayed as usual) instead of
			// aborting the snippet.
			decay := math.Pow(1-cfg.DecayPerStep, float64(steps))
			emitted := make([]detect.Detection, len(keyDets))
			for j, d := range keyDets {
				d.Score *= decay
				emitted[j] = d
			}
			outputs = append(outputs, adascale.FrameOutput{
				Frame: f, Scale: targetScale,
				Detections: emitted,
				DetectorMS: simclock.FlowMS,
				Health:     adascale.Health{Fallback: adascale.FallbackPropagate, Propagated: true},
			})
			continue
		}

		factor := raster.ScaleFactor(f.W, f.H, renderShort*det.Data.RenderDiv, maxLong) / float64(det.Data.RenderDiv)
		decay := math.Pow(1-cfg.DecayPerStep, float64(steps)) *
			(1 - math.Min(0.05, 0.5*fl.MeanResidual()))
		if decay < 0 {
			decay = 0
		}
		emitted := make([]detect.Detection, len(keyDets))
		for j, d := range keyDets {
			d.Box = fl.WarpBox(d.Box.Scaled(factor)).Scaled(1 / factor)
			d.Score *= decay
			emitted[j] = d
		}

		outputs = append(outputs, adascale.FrameOutput{
			Frame: f, Scale: targetScale,
			Detections: emitted,
			DetectorMS: simclock.FlowMS,
		})
	}
	return outputs
}
