package dff

import (
	"sync"
	"testing"

	"adascale/internal/adascale"
	"adascale/internal/eval"
	"adascale/internal/simclock"
	"adascale/internal/synth"
)

var (
	once sync.Once
	ds   *synth.Dataset
	sys  *adascale.System
)

func testSystem(t *testing.T) (*synth.Dataset, *adascale.System) {
	t.Helper()
	once.Do(func() {
		cfg := synth.VIDLike(21)
		var err error
		ds, err = synth.Generate(cfg, 24, 12)
		if err != nil {
			t.Fatal(err)
		}
		sys = adascale.Build(ds, adascale.DefaultBuildConfig())
	})
	return ds, sys
}

func toEval(outputs []adascale.FrameOutput) []eval.FrameDetections {
	out := make([]eval.FrameDetections, len(outputs))
	for i, o := range outputs {
		out[i] = eval.FrameDetections{Detections: o.Detections, GroundTruth: o.Frame.GroundTruth()}
	}
	return out
}

func TestKeyFrameSchedule(t *testing.T) {
	d, s := testSystem(t)
	cfg := DefaultConfig()
	cfg.KeyInterval = 4
	outs := Run(s.Detector, &d.Val[0], 600, cfg)
	if len(outs) != len(d.Val[0].Frames) {
		t.Fatal("output count mismatch")
	}
	for i, o := range outs {
		if i%4 == 0 {
			if o.DetectorMS < 70 {
				t.Fatalf("frame %d should be a key frame (cost %v)", i, o.DetectorMS)
			}
		} else if o.DetectorMS != simclock.FlowMS {
			t.Fatalf("frame %d should cost only flow (%v), got %v", i, simclock.FlowMS, o.DetectorMS)
		}
	}
}

func TestDFFFasterThanPerFrameDetection(t *testing.T) {
	d, s := testSystem(t)
	base := adascale.RunDataset(d.Val[:4], adascale.FixedRunner(s.Detector, 600))
	dffOut := adascale.RunDataset(d.Val[:4], Runner(s.Detector, 600, DefaultConfig()))
	if adascale.MeanRuntimeMS(dffOut) >= adascale.MeanRuntimeMS(base)/2 {
		t.Fatalf("DFF runtime %v not substantially below per-frame %v",
			adascale.MeanRuntimeMS(dffOut), adascale.MeanRuntimeMS(base))
	}
}

func TestPropagationTracksMotionBetterThanFreezing(t *testing.T) {
	// Flow-based propagation must beat naive box freezing on moving
	// objects: measure mean IoU of propagated boxes against ground truth.
	d, s := testSystem(t)
	cfg := DefaultConfig()
	cfg.KeyInterval = 12 // one key frame, eleven propagated
	nC := len(d.Config.Classes)

	frozen := func(sn *synth.Snippet) []adascale.FrameOutput {
		outs := Run(s.Detector, sn, 600, cfg)
		key := outs[0].Detections
		for i := 1; i < len(outs); i++ {
			outs[i].Detections = key
		}
		return outs
	}
	flowed := adascale.RunDataset(d.Val, Runner(s.Detector, 600, cfg))
	frozenOut := adascale.RunDataset(d.Val, adascale.SharedRunner(frozen))
	mFlow := eval.Evaluate(toEval(flowed), nC).MAP
	mFrozen := eval.Evaluate(toEval(frozenOut), nC).MAP
	if mFlow <= mFrozen {
		t.Fatalf("flow propagation (%.3f) must beat frozen boxes (%.3f)", mFlow, mFrozen)
	}
}

func TestAccuracyDegradesWithKeyInterval(t *testing.T) {
	d, s := testSystem(t)
	nC := len(d.Config.Classes)
	mAPAt := func(interval int) float64 {
		cfg := DefaultConfig()
		cfg.KeyInterval = interval
		outs := adascale.RunDataset(d.Val, Runner(s.Detector, 600, cfg))
		return eval.Evaluate(toEval(outs), nC).MAP
	}
	if m1, m12 := mAPAt(1), mAPAt(12); m12 >= m1 {
		t.Fatalf("mAP must degrade as the key interval grows: k=1 %.3f vs k=12 %.3f", m1, m12)
	}
}

func TestAdaptiveCheaperThanFixedDFF(t *testing.T) {
	d, s := testSystem(t)
	fixed := adascale.RunDataset(d.Val, Runner(s.Detector, 600, DefaultConfig()))
	adaptive := adascale.RunDataset(d.Val, AdaptiveRunner(s.Detector, s.Regressor, DefaultConfig()))
	if adascale.MeanRuntimeMS(adaptive) >= adascale.MeanRuntimeMS(fixed) {
		t.Fatalf("DFF+AdaScale (%v ms) must be cheaper than DFF (%v ms) — the paper's +25%%",
			adascale.MeanRuntimeMS(adaptive), adascale.MeanRuntimeMS(fixed))
	}
	// Key frames after the first should not all sit at 600.
	adapted := false
	for _, o := range adaptive {
		if o.Scale != 600 {
			adapted = true
		}
	}
	if !adapted {
		t.Fatal("adaptive DFF never changed scale")
	}
}

func TestKeyIntervalClamp(t *testing.T) {
	d, s := testSystem(t)
	cfg := DefaultConfig()
	cfg.KeyInterval = 0 // clamps to 1: every frame a key frame
	outs := Run(s.Detector, &d.Val[1], 600, cfg)
	for i, o := range outs {
		if o.DetectorMS < 70 {
			t.Fatalf("frame %d not a key frame under interval clamp", i)
		}
	}
}
