package synth

import "adascale/internal/raster"

// VIDClasses are the 30 ImageNet VID categories with simulator calibration
// derived from the paper's Table 1a. BaseQuality tracks the SS/SS AP
// column (AP/100). SizeFrac and Clutter are set so the categories the paper
// reports as most improved by AdaScale (lion, squirrel, horse, sheep, cat —
// filmed large and in cluttered scenes, so down-scaling removes distracting
// detail and shrinks over-large objects into the detector's sweet spot)
// favour lower scales, while near-neutral categories sit in the sweet spot
// at 600 already. MSConfusion encodes the paper's observation that
// multi-scale training hurts red panda and bear badly (Sec. 4.3).
var VIDClasses = []ClassProfile{
	{Name: "airplane", BaseQuality: 0.889, SizeFrac: 0.18, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.20, MSConfusion: 0.004},
	{Name: "antelope", BaseQuality: 0.845, SizeFrac: 0.30, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.45},
	{Name: "bear", BaseQuality: 0.860, SizeFrac: 0.22, SizeSpread: 0.35, Texture: raster.TextureSolid, Clutter: 0.30, MSConfusion: 0.070},
	{Name: "bicycle", BaseQuality: 0.658, SizeFrac: 0.28, SizeSpread: 0.35, Texture: raster.TextureChecker, Clutter: 0.65},
	{Name: "bird", BaseQuality: 0.722, SizeFrac: 0.27, SizeSpread: 0.40, Texture: raster.TextureDots, Clutter: 0.45},
	{Name: "bus", BaseQuality: 0.761, SizeFrac: 0.18, SizeSpread: 0.30, Texture: raster.TextureGradient, Clutter: 0.40, MSConfusion: 0.010},
	{Name: "car", BaseQuality: 0.583, SizeFrac: 0.15, SizeSpread: 0.40, Texture: raster.TextureGradient, Clutter: 0.70, MSConfusion: 0.010},
	{Name: "cattle", BaseQuality: 0.710, SizeFrac: 0.30, SizeSpread: 0.35, Texture: raster.TextureSolid, Clutter: 0.45},
	{Name: "dog", BaseQuality: 0.694, SizeFrac: 0.35, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.55},
	{Name: "domestic cat", BaseQuality: 0.760, SizeFrac: 0.38, SizeSpread: 0.35, Texture: raster.TextureStripes, Clutter: 0.55},
	{Name: "elephant", BaseQuality: 0.764, SizeFrac: 0.28, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.35},
	{Name: "fox", BaseQuality: 0.872, SizeFrac: 0.28, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.35},
	{Name: "giant panda", BaseQuality: 0.816, SizeFrac: 0.20, SizeSpread: 0.30, Texture: raster.TextureChecker, Clutter: 0.30, MSConfusion: 0.005},
	{Name: "hamster", BaseQuality: 0.898, SizeFrac: 0.36, SizeSpread: 0.30, Texture: raster.TextureDots, Clutter: 0.40},
	{Name: "horse", BaseQuality: 0.696, SizeFrac: 0.38, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.55},
	{Name: "lion", BaseQuality: 0.519, SizeFrac: 0.42, SizeSpread: 0.35, Texture: raster.TextureSolid, Clutter: 0.75},
	{Name: "lizard", BaseQuality: 0.791, SizeFrac: 0.17, SizeSpread: 0.35, Texture: raster.TextureDots, Clutter: 0.30, MSConfusion: 0.005},
	{Name: "monkey", BaseQuality: 0.512, SizeFrac: 0.28, SizeSpread: 0.45, Texture: raster.TextureChecker, Clutter: 0.60},
	{Name: "motorcycle", BaseQuality: 0.840, SizeFrac: 0.22, SizeSpread: 0.35, Texture: raster.TextureChecker, Clutter: 0.40},
	{Name: "rabbit", BaseQuality: 0.634, SizeFrac: 0.22, SizeSpread: 0.40, Texture: raster.TextureSolid, Clutter: 0.45, MSConfusion: 0.010},
	{Name: "red panda", BaseQuality: 0.768, SizeFrac: 0.20, SizeSpread: 0.35, Texture: raster.TextureStripes, Clutter: 0.35, MSConfusion: 0.110},
	{Name: "sheep", BaseQuality: 0.563, SizeFrac: 0.38, SizeSpread: 0.35, Texture: raster.TextureSolid, Clutter: 0.65},
	{Name: "snake", BaseQuality: 0.756, SizeFrac: 0.17, SizeSpread: 0.40, Texture: raster.TextureStripes, Clutter: 0.30, MSConfusion: 0.035},
	{Name: "squirrel", BaseQuality: 0.539, SizeFrac: 0.40, SizeSpread: 0.35, Texture: raster.TextureDots, Clutter: 0.70},
	{Name: "tiger", BaseQuality: 0.895, SizeFrac: 0.28, SizeSpread: 0.30, Texture: raster.TextureStripes, Clutter: 0.30},
	{Name: "train", BaseQuality: 0.824, SizeFrac: 0.19, SizeSpread: 0.30, Texture: raster.TextureGradient, Clutter: 0.30, MSConfusion: 0.005},
	{Name: "turtle", BaseQuality: 0.790, SizeFrac: 0.23, SizeSpread: 0.35, Texture: raster.TextureChecker, Clutter: 0.35},
	{Name: "watercraft", BaseQuality: 0.651, SizeFrac: 0.28, SizeSpread: 0.40, Texture: raster.TextureGradient, Clutter: 0.50},
	{Name: "whale", BaseQuality: 0.745, SizeFrac: 0.33, SizeSpread: 0.35, Texture: raster.TextureSolid, Clutter: 0.40},
	{Name: "zebra", BaseQuality: 0.913, SizeFrac: 0.19, SizeSpread: 0.30, Texture: raster.TextureStripes, Clutter: 0.20, MSConfusion: 0.010},
}

// VIDLike returns a dataset config standing in for ImageNet VID: 30
// classes, 1280×720 native frames.
func VIDLike(seed int64) Config {
	return Config{
		Name:             "vid-like",
		Classes:          VIDClasses,
		NativeW:          1280,
		NativeH:          720,
		RenderDiv:        4,
		FramesPerSnippet: 12,
		MaxObjects:       3,
		Seed:             seed,
	}
}
