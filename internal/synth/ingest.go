package synth

// This file is the externally-fed frame constructor: the HTTP ingestion
// path (internal/server) receives frame *content* over the network —
// geometry, objects, clutter, blur — but the behavioural detector also
// needs each frame's deterministic randomness base (Seed/TrackSeed), which
// generated frames derive from (dataset seed, snippet, index). NewFrame
// gives ingested frames the same property: the seeds are a pure function
// of (seed, stream, index), so a served stream's detections are a
// deterministic function of the admitted requests — the invariant the
// handler-layer golden tests replay byte for byte.

// FrameSpec is the externally-supplied content of one ingested frame.
// Stream plays the role a snippet ID plays for generated frames: it keys
// the track-consistency seed, so frames of one stream fail coherently
// (a detector that misses a hard object keeps missing it on neighbouring
// frames) just like frames of one generated snippet do.
type FrameSpec struct {
	Stream int
	Index  int
	W, H   int

	Objects []Object
	Clutter float64
	Blur    float64
}

// NewFrame builds a frame from externally-supplied content, deriving the
// deterministic randomness base exactly the way generated frames derive
// theirs: per-frame seed from (seed, stream, index), track seed shared by
// every frame of the stream.
func NewFrame(seed int64, spec FrameSpec) Frame {
	return Frame{
		SnippetID: spec.Stream,
		Index:     spec.Index,
		W:         spec.W,
		H:         spec.H,
		Objects:   spec.Objects,
		Clutter:   spec.Clutter,
		Blur:      spec.Blur,
		seed:      frameSeed(seed, spec.Stream, spec.Index),
		trackSeed: frameSeed(seed, spec.Stream, -1),
	}
}
