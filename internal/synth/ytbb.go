package synth

import "adascale/internal/raster"

// YTBBClasses are the 23 mini YouTube-BoundingBoxes categories with
// simulator calibration derived from the paper's Table 1b. YouTube-BB is
// user-generated video, so objects are filmed closer (larger SizeFrac on
// average than VID) — which is why the paper's AdaScale runtime on mini
// YTBB (41 ms) is lower than on VID (47 ms): the regressor down-scales more
// aggressively.
var YTBBClasses = []ClassProfile{
	{Name: "person", BaseQuality: 0.249, SizeFrac: 0.24, SizeSpread: 0.45, Texture: raster.TextureChecker, Clutter: 0.75},
	{Name: "bird", BaseQuality: 0.453, SizeFrac: 0.36, SizeSpread: 0.40, Texture: raster.TextureDots, Clutter: 0.60},
	{Name: "boat", BaseQuality: 0.393, SizeFrac: 0.30, SizeSpread: 0.40, Texture: raster.TextureGradient, Clutter: 0.55},
	{Name: "bicycle", BaseQuality: 0.491, SizeFrac: 0.46, SizeSpread: 0.35, Texture: raster.TextureChecker, Clutter: 0.70},
	{Name: "bus", BaseQuality: 0.831, SizeFrac: 0.26, SizeSpread: 0.30, Texture: raster.TextureGradient, Clutter: 0.30},
	{Name: "bear", BaseQuality: 0.678, SizeFrac: 0.36, SizeSpread: 0.35, Texture: raster.TextureSolid, Clutter: 0.50},
	{Name: "cow", BaseQuality: 0.718, SizeFrac: 0.27, SizeSpread: 0.35, Texture: raster.TextureSolid, Clutter: 0.40},
	{Name: "cat", BaseQuality: 0.865, SizeFrac: 0.34, SizeSpread: 0.35, Texture: raster.TextureStripes, Clutter: 0.35},
	{Name: "giraffe", BaseQuality: 0.837, SizeFrac: 0.33, SizeSpread: 0.35, Texture: raster.TextureDots, Clutter: 0.40},
	{Name: "potted plant", BaseQuality: 0.550, SizeFrac: 0.34, SizeSpread: 0.40, Texture: raster.TextureDots, Clutter: 0.55},
	{Name: "horse", BaseQuality: 0.744, SizeFrac: 0.30, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.40},
	{Name: "motorcycle", BaseQuality: 0.518, SizeFrac: 0.40, SizeSpread: 0.35, Texture: raster.TextureChecker, Clutter: 0.60},
	{Name: "knife", BaseQuality: 0.651, SizeFrac: 0.43, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.50},
	{Name: "airplane", BaseQuality: 0.899, SizeFrac: 0.19, SizeSpread: 0.30, Texture: raster.TextureGradient, Clutter: 0.25, MSConfusion: 0.003},
	{Name: "skateboard", BaseQuality: 0.542, SizeFrac: 0.16, SizeSpread: 0.40, Texture: raster.TextureStripes, Clutter: 0.50, MSConfusion: 0.020},
	{Name: "train", BaseQuality: 0.867, SizeFrac: 0.22, SizeSpread: 0.30, Texture: raster.TextureGradient, Clutter: 0.30},
	{Name: "truck", BaseQuality: 0.871, SizeFrac: 0.26, SizeSpread: 0.30, Texture: raster.TextureGradient, Clutter: 0.30},
	{Name: "zebra", BaseQuality: 0.885, SizeFrac: 0.26, SizeSpread: 0.30, Texture: raster.TextureStripes, Clutter: 0.30},
	{Name: "toilet", BaseQuality: 0.797, SizeFrac: 0.40, SizeSpread: 0.35, Texture: raster.TextureSolid, Clutter: 0.45},
	{Name: "dog", BaseQuality: 0.535, SizeFrac: 0.19, SizeSpread: 0.40, Texture: raster.TextureGradient, Clutter: 0.50, MSConfusion: 0.010},
	{Name: "elephant", BaseQuality: 0.828, SizeFrac: 0.19, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.35, MSConfusion: 0.015},
	{Name: "umbrella", BaseQuality: 0.611, SizeFrac: 0.40, SizeSpread: 0.35, Texture: raster.TextureSolid, Clutter: 0.55},
	{Name: "car", BaseQuality: 0.835, SizeFrac: 0.30, SizeSpread: 0.35, Texture: raster.TextureGradient, Clutter: 0.50},
}

// MiniYTBBLike returns a dataset config standing in for the paper's mini
// YouTube-BB sample (100 train / 10 val segments per category, 20 frames
// each; scaled down proportionally here).
func MiniYTBBLike(seed int64) Config {
	return Config{
		Name:             "mini-ytbb-like",
		Classes:          YTBBClasses,
		NativeW:          1280,
		NativeH:          720,
		RenderDiv:        4,
		FramesPerSnippet: 10,
		MaxObjects:       2,
		Seed:             seed,
	}
}
