package synth

import (
	"math"
	"testing"

	"adascale/internal/detect"
)

func tinyConfig(seed int64) Config {
	cfg := VIDLike(seed)
	cfg.FramesPerSnippet = 5
	return cfg
}

func TestGenerateCounts(t *testing.T) {
	ds, err := Generate(tinyConfig(1), 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 7 || len(ds.Val) != 4 {
		t.Fatalf("got %d/%d snippets", len(ds.Train), len(ds.Val))
	}
	for _, sn := range append(append([]Snippet{}, ds.Train...), ds.Val...) {
		if len(sn.Frames) != 5 {
			t.Fatalf("snippet %d has %d frames", sn.ID, len(sn.Frames))
		}
		for _, fr := range sn.Frames {
			if len(fr.Objects) == 0 || len(fr.Objects) > ds.Config.MaxObjects {
				t.Fatalf("frame has %d objects", len(fr.Objects))
			}
			if fr.W != 1280 || fr.H != 720 {
				t.Fatalf("frame size %dx%d", fr.W, fr.H)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(tinyConfig(42), 3, 2)
	b, _ := Generate(tinyConfig(42), 3, 2)
	for i := range a.Train {
		for j := range a.Train[i].Frames {
			fa, fb := a.Train[i].Frames[j], b.Train[i].Frames[j]
			if fa.Seed() != fb.Seed() || fa.Clutter != fb.Clutter {
				t.Fatal("generation not deterministic")
			}
			for k := range fa.Objects {
				if fa.Objects[k].Box != fb.Objects[k].Box {
					t.Fatal("object boxes not deterministic")
				}
			}
		}
	}
	c, _ := Generate(tinyConfig(43), 3, 2)
	if c.Train[0].Frames[0].Seed() == a.Train[0].Frames[0].Seed() {
		t.Fatal("different dataset seeds must differ")
	}
}

func TestTemporalConsistency(t *testing.T) {
	// Consecutive frames must have the same tracked objects with high box
	// overlap — the assumption AdaScale's frame-to-frame scale transfer
	// rests on (Sec. 3.2).
	ds, _ := Generate(tinyConfig(7), 10, 0)
	for _, sn := range ds.Train {
		for j := 1; j < len(sn.Frames); j++ {
			prev, cur := sn.Frames[j-1], sn.Frames[j]
			prevByID := map[int]Object{}
			for _, o := range prev.Objects {
				prevByID[o.ID] = o
			}
			for _, o := range cur.Objects {
				p, ok := prevByID[o.ID]
				if !ok {
					continue // track entered this frame (visibility window)
				}
				if iou := detect.IoU(p.Box, o.Box); iou < 0.5 {
					t.Fatalf("consecutive-frame IoU %v too low for temporal consistency", iou)
				}
			}
		}
	}
}

func TestObjectsWithinFrame(t *testing.T) {
	ds, _ := Generate(tinyConfig(9), 20, 0)
	for _, fr := range Frames(ds.Train) {
		for _, o := range fr.Objects {
			cx, cy := o.Box.Center()
			if cx < 0 || cx > float64(fr.W) || cy < 0 || cy > float64(fr.H) {
				t.Fatalf("object centre (%v,%v) outside frame", cx, cy)
			}
			if o.Box.Shortest() < 0.03*720 || o.Box.Shortest() > 0.95*720 {
				t.Fatalf("object shortest side %v outside sane range", o.Box.Shortest())
			}
		}
	}
}

func TestPrimaryClassRoundRobin(t *testing.T) {
	cfg := tinyConfig(3)
	ds, _ := Generate(cfg, len(cfg.Classes), 0)
	for i, sn := range ds.Train {
		if got := sn.Frames[0].Objects[0].Class; got != i%len(cfg.Classes) {
			t.Fatalf("snippet %d primary class %d, want %d", i, got, i%len(cfg.Classes))
		}
	}
}

func TestGroundTruthMatchesObjects(t *testing.T) {
	ds, _ := Generate(tinyConfig(5), 1, 0)
	fr := &ds.Train[0].Frames[0]
	gts := fr.GroundTruth()
	if len(gts) != len(fr.Objects) {
		t.Fatal("ground truth count mismatch")
	}
	for i := range gts {
		if gts[i].Box != fr.Objects[i].Box || gts[i].Class != fr.Objects[i].Class {
			t.Fatal("ground truth content mismatch")
		}
	}
}

func TestRenderSizesFollowScaleProtocol(t *testing.T) {
	ds, _ := Generate(tinyConfig(11), 1, 0)
	fr := &ds.Train[0].Frames[0]
	for _, scale := range []int{600, 480, 360, 240, 128} {
		im := fr.Render(scale/ds.Config.RenderDiv, 2000, ds.Config.RenderDiv)
		want := scale / ds.Config.RenderDiv
		if im.Shortest() != want {
			t.Fatalf("scale %d: rendered shortest %d, want %d", scale, im.Shortest(), want)
		}
		ratio := float64(im.Longest()) / float64(im.Shortest())
		if math.Abs(ratio-1280.0/720.0) > 0.02 {
			t.Fatalf("aspect ratio %v distorted", ratio)
		}
	}
}

func TestRenderDeterministicAndDistinct(t *testing.T) {
	ds, _ := Generate(tinyConfig(13), 1, 0)
	fr := &ds.Train[0].Frames[0]
	a := fr.Render(90, 2000, 4)
	b := fr.Render(90, 2000, 4)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("render not deterministic")
		}
	}
	fr2 := &ds.Train[0].Frames[1]
	c := fr2.Render(90, 2000, 4)
	same := true
	for i := range a.Pix {
		if i < len(c.Pix) && a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different frames rendered identically")
	}
}

func TestRenderPixelsInRange(t *testing.T) {
	ds, _ := Generate(tinyConfig(17), 2, 0)
	for _, fr := range Frames(ds.Train)[:4] {
		im := fr.Render(60, 2000, 4)
		for _, v := range im.Pix {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v out of range", v)
			}
		}
		if im.Mean() < 0.05 || im.Mean() > 0.95 {
			t.Fatalf("implausible mean brightness %v", im.Mean())
		}
	}
}

func TestObjectVisibleInRender(t *testing.T) {
	// A bright large object must make its region differ from background.
	cfg := tinyConfig(19)
	cfg.MaxObjects = 1
	ds, _ := Generate(cfg, 3, 0)
	fr := &ds.Train[0].Frames[0]
	im := fr.Render(150, 2000, 4)
	factor := float64(150) / 720
	o := fr.Objects[0]
	cx, cy := o.Box.Center()
	inVal := im.At(int(cx*factor), int(cy*factor))
	corner := im.At(2, 2)
	if math.Abs(float64(inVal-corner)) < 0.02 && math.Abs(float64(inVal)-float64(o.Intensity)) > 0.4 {
		t.Fatalf("object region (%v) indistinguishable from background (%v)", inVal, corner)
	}
}

func TestConfigValidate(t *testing.T) {
	good := VIDLike(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Classes = nil },
		func(c *Config) { c.NativeW = 0 },
		func(c *Config) { c.RenderDiv = 0 },
		func(c *Config) { c.FramesPerSnippet = 0 },
		func(c *Config) { c.MaxObjects = 0 },
	}
	for i, mutate := range cases {
		c := VIDLike(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
		if _, err := Generate(c, 1, 1); err == nil {
			t.Fatalf("case %d: Generate must reject invalid config", i)
		}
	}
}

func TestDatasetConfigsWellFormed(t *testing.T) {
	if len(VIDClasses) != 30 {
		t.Fatalf("VID has %d classes, want 30", len(VIDClasses))
	}
	if len(YTBBClasses) != 23 {
		t.Fatalf("YTBB has %d classes, want 23", len(YTBBClasses))
	}
	for _, set := range [][]ClassProfile{VIDClasses, YTBBClasses} {
		seen := map[string]bool{}
		for _, c := range set {
			if c.Name == "" || seen[c.Name] {
				t.Fatalf("bad or duplicate class name %q", c.Name)
			}
			seen[c.Name] = true
			if c.BaseQuality <= 0 || c.BaseQuality > 1 {
				t.Fatalf("%s: BaseQuality %v out of range", c.Name, c.BaseQuality)
			}
			if c.SizeFrac <= 0 || c.SizeFrac > 0.95 {
				t.Fatalf("%s: SizeFrac %v out of range", c.Name, c.SizeFrac)
			}
			if c.MSConfusion < 0 || c.MSConfusion > 0.2 {
				t.Fatalf("%s: MSConfusion %v out of range", c.Name, c.MSConfusion)
			}
		}
	}
}

func TestFramesFlattens(t *testing.T) {
	ds, _ := Generate(tinyConfig(23), 3, 0)
	frames := Frames(ds.Train)
	if len(frames) != 15 {
		t.Fatalf("Frames returned %d, want 15", len(frames))
	}
	// Mutating through the pointer must affect the dataset.
	frames[0].Clutter = 0.123
	if ds.Train[0].Frames[0].Clutter != 0.123 {
		t.Fatal("Frames must return pointers into the dataset")
	}
}
