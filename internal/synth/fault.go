package synth

import "fmt"

// FaultKind enumerates the sensor/transport faults the injector
// (internal/faults) can stamp onto a frame. The taxonomy follows what edge
// camera deployments actually see: frames that never arrive, stale
// re-delivered frames, saturated or blacked-out exposures, analog noise
// bursts, and late frames that eat the per-frame compute budget.
type FaultKind uint8

const (
	// FaultNone marks a clean frame (the zero value).
	FaultNone FaultKind = iota

	// FaultDrop: the frame never arrived; there is no sensed content.
	FaultDrop

	// FaultStale: the transport re-delivered an earlier frame; the sensed
	// content is old while the scene has moved on.
	FaultStale

	// FaultBlackout: the sensor delivered a (near-)black frame — lens cap,
	// exposure failure, tunnel entry.
	FaultBlackout

	// FaultOverexpose: the sensor saturated; content is washed out in
	// proportion to Severity.
	FaultOverexpose

	// FaultNoise: an additive noise burst degrades the frame in proportion
	// to Severity.
	FaultNoise

	// FaultJitter: the frame arrived late by JitterMS; content is intact
	// but the latency counts against any per-frame deadline.
	FaultJitter

	numFaultKinds
)

// NumFaultKinds is the number of distinct fault kinds including FaultNone,
// sized for per-kind counter arrays.
const NumFaultKinds = int(numFaultKinds)

// String names the fault kind for reports.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultStale:
		return "stale"
	case FaultBlackout:
		return "blackout"
	case FaultOverexpose:
		return "overexpose"
	case FaultNoise:
		return "noise"
	case FaultJitter:
		return "jitter"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// Fault tags a frame with the sensor fault injected into it, so downstream
// accounting is exact: the runner and the health summary read the tag, and
// the behavioural detector degrades its response accordingly.
type Fault struct {
	Kind FaultKind

	// Severity in [0, 1] grades partial faults (overexposure, noise).
	Severity float64

	// SourceIndex is the frame index whose content a stale frame
	// re-delivered (FaultStale only).
	SourceIndex int

	// JitterMS is the extra arrival latency of a late frame (FaultJitter
	// only); it counts against any per-frame deadline budget.
	JitterMS float64
}

// SensorObservable reports whether a deployed system can recognise the
// fault from the frame stream alone, without ground truth: a missing frame
// is self-evident, a black frame is one mean-intensity check away, and a
// duplicated frame is caught by differencing against the previous frame.
// Partial degradations (overexposure, noise) are not reliably separable
// from hard scenes, so a runner must cope with them rather than detect
// them. All nil-receiver (clean-frame) queries return the benign answer.
func (f *Fault) SensorObservable() bool {
	if f == nil {
		return false
	}
	switch f.Kind {
	case FaultDrop, FaultStale, FaultBlackout:
		return true
	}
	return false
}

// QualityFactor is the multiplicative penalty the fault applies to the
// detector's per-object detection probability. Frames with no sensed
// content (drop, blackout) carry no detectable objects at all; partial
// faults scale with severity.
func (f *Fault) QualityFactor() float64 {
	if f == nil {
		return 1
	}
	switch f.Kind {
	case FaultDrop, FaultBlackout:
		return 0
	case FaultOverexpose:
		return 1 - 0.75*f.Severity
	case FaultNoise:
		return 1 - 0.55*f.Severity
	}
	return 1
}

// FPFactor is the multiplicative adjustment the fault applies to the
// clutter false-positive intensity: empty frames spawn nothing, washed-out
// frames suppress background detail, and noise bursts activate extra
// spurious responses.
func (f *Fault) FPFactor() float64 {
	if f == nil {
		return 1
	}
	switch f.Kind {
	case FaultDrop, FaultBlackout:
		return 0
	case FaultOverexpose:
		return 1 - 0.5*f.Severity
	case FaultNoise:
		return 1 + 0.8*f.Severity
	}
	return 1
}

// ContentFault reports whether the fault corrupts the sensed content (as
// opposed to FaultJitter, which only delays an intact frame). The health
// accounting uses it to measure frames-to-recover runs.
func (f *Fault) ContentFault() bool {
	return f != nil && f.Kind != FaultNone && f.Kind != FaultJitter
}
