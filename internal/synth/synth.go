// Package synth procedurally generates labelled video datasets that stand in
// for ImageNet VID and mini YouTube-BoundingBoxes. Every factor AdaScale
// reacts to is under explicit control: per-class apparent-size
// distributions, texture complexity, object counts, background clutter,
// motion blur, and temporal consistency (objects move smoothly between
// consecutive frames). Ground truth is exact by construction.
//
// Scenes are parametric (boxes + texture descriptions), so frames can be
// rasterised on demand at the paper's native resolution divided by the
// configured render divisor, keeping CPU rendering and the convolutional
// backbone tractable while preserving all relative geometry.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"adascale/internal/detect"
	"adascale/internal/parallel"
	"adascale/internal/raster"
)

// Object is one tracked object instance in a frame. ID is stable across the
// frames of a snippet, which SeqNMS and the dynamics analysis rely on.
type Object struct {
	ID        int
	Class     int
	Box       detect.Box // native coordinates
	Texture   raster.Texture
	Intensity float32
	Speed     float64 // native px/frame, drives motion blur
}

// Frame is one video frame: native geometry plus rendering parameters.
type Frame struct {
	SnippetID int
	Index     int
	W, H      int
	Objects   []Object
	Clutter   float64 // background clutter density in [0, 1]
	Blur      float64 // motion-blur radius in native px
	seed      int64
	trackSeed int64

	// Fault records the sensor fault injected into this frame
	// (internal/faults); nil means the frame is clean. Objects always
	// holds the *sensed* content — what the detector gets to see.
	Fault *Fault

	// Truth holds the scene's real objects when a fault made the sensed
	// content (Objects) diverge from reality — a dropped/blacked-out frame
	// senses nothing, a stale frame senses an old scene. nil means Objects
	// is the truth. Evaluation always scores against the truth.
	Truth []Object

	// gts caches the GroundTruth conversion; gtsFor witnesses the object
	// slice it was computed from (first element's address + length), so a
	// wholesale replacement of Objects/Truth invalidates the cache and
	// GroundTruth falls back to computing fresh. In-place mutation of an
	// Object's fields is not detected — replace the slice instead.
	gts    []detect.GroundTruth
	gtsFor *Object
}

// TrackSeed returns a seed shared by every frame of the snippet. The
// behavioural detector mixes it into its detection draws so that failures
// are temporally correlated — a detector that misses a hard object tends to
// keep missing it on neighbouring frames rather than flickering randomly.
func (f *Frame) TrackSeed() int64 { return f.trackSeed }

// Seed returns the frame's deterministic randomness base, derived from the
// dataset seed, snippet ID and frame index. The behavioural detector uses
// it so detections are reproducible and consistent across test scales.
func (f *Frame) Seed() int64 { return f.seed }

// GroundTruth converts the frame's real objects to evaluation ground
// truth: the Truth override when a fault made the sensed content diverge
// from the scene, the sensed Objects otherwise.
// The result is cached at generation time (the eval loop asks for it once
// per frame per method); callers must treat it as read-only.
func (f *Frame) GroundTruth() []detect.GroundTruth {
	objs := f.Objects
	if f.Truth != nil {
		objs = f.Truth
	}
	if len(objs) == 0 {
		return nil
	}
	if f.gts != nil && f.gtsFor == &objs[0] && len(f.gts) == len(objs) {
		return f.gts
	}
	gts := make([]detect.GroundTruth, len(objs))
	for i, o := range objs {
		gts[i] = detect.GroundTruth{Box: o.Box, Class: o.Class}
	}
	return gts
}

// cacheGroundTruth fills the GroundTruth cache. Called once per frame at
// generation time, before the frame is shared across goroutines.
func (f *Frame) cacheGroundTruth() {
	f.gts, f.gtsFor = nil, nil
	if gts := f.GroundTruth(); len(gts) > 0 {
		objs := f.Objects
		if f.Truth != nil {
			objs = f.Truth
		}
		f.gts, f.gtsFor = gts, &objs[0]
	}
}

// Snippet is a short video: a sequence of temporally-consistent frames.
type Snippet struct {
	ID     int
	Frames []Frame
}

// ClassProfile describes one object category's statistics. The calibration
// values in vid.go / ytbb.go are derived from the paper's Table 1 so the
// simulator reproduces per-class behaviour shapes.
type ClassProfile struct {
	Name string

	// BaseQuality is the single-scale-trained detector's quality ceiling
	// for this class (≈ target SS/SS AP / 100).
	BaseQuality float64

	// SizeFrac is the mean object shortest side as a fraction of the frame
	// shortest side; SizeSpread is the lognormal sigma around it. Classes
	// that film large (lion close-ups, cats) benefit from down-scaling.
	SizeFrac   float64
	SizeSpread float64

	// Texture is the dominant texture; higher complexity produces more
	// distracting detail at high resolution.
	Texture raster.Texture

	// Clutter in [0,1] is how cluttered scenes containing this class are;
	// clutter spawns false positives whose count grows with test scale.
	Clutter float64

	// MSConfusion in [0,1] is the quality penalty multi-scale training
	// inflicts on this class (the paper observes large drops for red panda
	// and bear).
	MSConfusion float64
}

// Config parameterises dataset generation.
type Config struct {
	Name    string
	Classes []ClassProfile

	// NativeW×NativeH is the nominal video resolution (the paper's VID
	// frames are predominantly 1280×720-ish).
	NativeW, NativeH int

	// RenderDiv divides native resolution when rasterising, keeping CPU
	// rendering and convolution tractable. Geometry is unaffected.
	RenderDiv int

	FramesPerSnippet int
	MaxObjects       int // objects per snippet in [1, MaxObjects]
	Seed             int64
}

// NativeShortest returns the shorter native side.
func (c *Config) NativeShortest() int {
	if c.NativeW < c.NativeH {
		return c.NativeW
	}
	return c.NativeH
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case len(c.Classes) == 0:
		return fmt.Errorf("synth: config %q has no classes", c.Name)
	case c.NativeW <= 0 || c.NativeH <= 0:
		return fmt.Errorf("synth: config %q has invalid native size %dx%d", c.Name, c.NativeW, c.NativeH)
	case c.RenderDiv <= 0:
		return fmt.Errorf("synth: config %q has invalid render divisor %d", c.Name, c.RenderDiv)
	case c.FramesPerSnippet <= 0:
		return fmt.Errorf("synth: config %q has no frames per snippet", c.Name)
	case c.MaxObjects <= 0:
		return fmt.Errorf("synth: config %q allows no objects", c.Name)
	}
	return nil
}

// Dataset is a generated train/val corpus.
type Dataset struct {
	Config Config
	Train  []Snippet
	Val    []Snippet
}

// Frames returns all frames of the given split flattened in order.
func Frames(snippets []Snippet) []*Frame {
	var out []*Frame
	for i := range snippets {
		for j := range snippets[i].Frames {
			out = append(out, &snippets[i].Frames[j])
		}
	}
	return out
}

// Generate builds a dataset with the requested number of train and val
// snippets. Snippet classes cycle round-robin with jitter so every class is
// represented in both splits when counts permit.
//
// Each snippet's scene randomness comes from its own generator seeded by
// (dataset seed, snippet ID), so snippets are independent and generation
// fans out across the worker pool with deterministic, ID-ordered output:
// the same config always produces the same dataset at any worker count.
func Generate(cfg Config, trainSnippets, valSnippets int) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ds := &Dataset{Config: cfg}
	n := trainSnippets + valSnippets
	snippets := parallel.Map(n, func(id int) Snippet {
		split := id // index within the train split
		if id >= trainSnippets {
			split = id - trainSnippets
		}
		rng := rand.New(rand.NewSource(snippetSeed(cfg.Seed, id)))
		return genSnippet(&cfg, rng, id, split%len(cfg.Classes))
	})
	ds.Train = snippets[:trainSnippets:trainSnippets]
	ds.Val = snippets[trainSnippets:]
	return ds, nil
}

// snippetSeed derives the per-snippet generator seed; the distinct frame
// tag keeps it independent of every frameSeed stream.
func snippetSeed(base int64, id int) int64 { return frameSeed(base, id, -1337) }

// genSnippet generates one snippet whose primary object has the given
// class; secondary objects draw random classes.
func genSnippet(cfg *Config, rng *rand.Rand, id, primaryClass int) Snippet {
	w, h := float64(cfg.NativeW), float64(cfg.NativeH)
	short := math.Min(w, h)

	nObj := 1 + rng.Intn(cfg.MaxObjects)
	type track struct {
		obj        Object
		vx, vy     float64
		growth     float64 // per-frame multiplicative size drift
		sizeNative float64 // shortest side in native px
		aspect     float64
		cx, cy     float64
		from, to   int // visibility window (frames), inclusive
	}
	tracks := make([]track, nObj)
	clutter := 0.0
	for k := range tracks {
		class := primaryClass
		if k > 0 {
			class = rng.Intn(len(cfg.Classes))
		}
		p := cfg.Classes[class]
		size := p.SizeFrac * math.Exp(rng.NormFloat64()*p.SizeSpread) * short
		size = clampF(size, 0.04*short, 0.92*short)
		aspect := 0.7 + rng.Float64()*0.9
		speed := rng.Float64() * 0.02 * short
		ang := rng.Float64() * 2 * math.Pi
		tracks[k] = track{
			obj: Object{
				ID:        k,
				Class:     class,
				Texture:   p.Texture,
				Intensity: float32(0.55 + rng.Float64()*0.4),
				Speed:     speed,
			},
			vx:         math.Cos(ang) * speed,
			vy:         math.Sin(ang) * speed,
			growth:     1 + (rng.Float64()-0.5)*0.02,
			sizeNative: size,
			aspect:     aspect,
			cx:         w*0.15 + rng.Float64()*w*0.7,
			cy:         h*0.15 + rng.Float64()*h*0.7,
			from:       0,
			to:         cfg.FramesPerSnippet - 1,
		}
		// A quarter of the secondary tracks enter or leave mid-snippet
		// (objects walk into and out of real videos) — the failure mode
		// that punishes propagation-based systems like DFF. The primary
		// track stays for the whole snippet so every snippet represents
		// its class.
		if k > 0 && rng.Float64() < 0.25 && cfg.FramesPerSnippet >= 4 {
			half := cfg.FramesPerSnippet / 2
			if rng.Float64() < 0.5 {
				tracks[k].from = 1 + rng.Intn(half) // enters late
			} else {
				tracks[k].to = cfg.FramesPerSnippet - 2 - rng.Intn(half) // leaves early
			}
		}
		clutter += p.Clutter
	}
	clutter = clampF(clutter/float64(nObj)+rng.NormFloat64()*0.08, 0, 1)

	sn := Snippet{ID: id}
	for t := 0; t < cfg.FramesPerSnippet; t++ {
		fr := Frame{
			SnippetID: id,
			Index:     t,
			W:         cfg.NativeW,
			H:         cfg.NativeH,
			Clutter:   clutter,
			seed:      frameSeed(cfg.Seed, id, t),
			trackSeed: frameSeed(cfg.Seed, id, -1),
		}
		maxSpeed := 0.0
		for k := range tracks {
			tr := &tracks[k]
			bw := tr.sizeNative * math.Max(tr.aspect, 1)
			bh := tr.sizeNative * math.Max(1/tr.aspect, 1)
			if t >= tr.from && t <= tr.to {
				fr.Objects = append(fr.Objects, Object{
					ID:        tr.obj.ID,
					Class:     tr.obj.Class,
					Texture:   tr.obj.Texture,
					Intensity: tr.obj.Intensity,
					Speed:     tr.obj.Speed,
					Box: detect.Box{
						X1: tr.cx - bw/2, Y1: tr.cy - bh/2,
						X2: tr.cx + bw/2, Y2: tr.cy + bh/2,
					},
				})
			}
			if tr.obj.Speed > maxSpeed {
				maxSpeed = tr.obj.Speed
			}
			// Advance the track: drift, bounce off frame borders, drift size.
			tr.cx += tr.vx + rng.NormFloat64()*0.002*short
			tr.cy += tr.vy + rng.NormFloat64()*0.002*short
			if tr.cx < w*0.1 || tr.cx > w*0.9 {
				tr.vx = -tr.vx
				tr.cx = clampF(tr.cx, w*0.1, w*0.9)
			}
			if tr.cy < h*0.1 || tr.cy > h*0.9 {
				tr.vy = -tr.vy
				tr.cy = clampF(tr.cy, h*0.1, h*0.9)
			}
			tr.sizeNative = clampF(tr.sizeNative*tr.growth, 0.04*short, 0.92*short)
		}
		fr.Blur = maxSpeed * 0.35
		fr.cacheGroundTruth()
		sn.Frames = append(sn.Frames, fr)
	}
	return sn
}

// frameSeed mixes the dataset seed, snippet ID and frame index into a
// deterministic 64-bit seed (splitmix64-style finaliser).
func frameSeed(base int64, snippet, frame int) int64 {
	z := uint64(base) ^ uint64(snippet)*0x9E3779B97F4A7C15 ^ uint64(frame)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// RenderDims reports the pixel dimensions Render would rasterise this
// frame at, without rendering — the grouping key for anything that wants
// to know which (frame, scale) pairs produce same-sized images (the
// serving layer's cross-stream batcher keys on it).
func (f *Frame) RenderDims(renderShort, maxLongNative, renderDiv int) (w, h int) {
	w, h, _ = f.renderGeometry(renderShort, maxLongNative, renderDiv)
	return w, h
}

// renderGeometry computes the rendered dimensions and the native →
// render-space scale factor shared by Render and RenderDims.
func (f *Frame) renderGeometry(renderShort, maxLongNative, renderDiv int) (w, h int, factor float64) {
	// ScaleFactor maps native → test space (shortest side renderShort·div,
	// longest capped at maxLongNative); dividing by the render divisor
	// yields the native → render-space factor.
	factor = raster.ScaleFactor(f.W, f.H, renderShort*renderDiv, maxLongNative) / float64(renderDiv)
	w = int(math.Round(float64(f.W) * factor))
	h = int(math.Round(float64(f.H) * factor))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return w, h, factor
}

// Render rasterises the frame with its shortest side equal to renderShort
// pixels (longest side capped per the Fast R-CNN protocol scaled by the
// render divisor). The caller chooses renderShort = testScale / RenderDiv.
func (f *Frame) Render(renderShort, maxLongNative, renderDiv int) *raster.Image {
	rw, rh, factor := f.renderGeometry(renderShort, maxLongNative, renderDiv)
	im := raster.New(rw, rh)
	// Seeding a pooled generator reproduces rand.New(rand.NewSource(seed))
	// exactly (Seed resets the source and the generator's read state), so
	// renders stay bit-identical while the per-frame Rand+source
	// allocations disappear from the decode stage.
	rng := renderRng.Get().(*rand.Rand)
	rng.Seed(f.seed)

	// Dropped/blacked-out frames carry no scene content: a black image
	// (with residual sensor noise for a blackout) is what the feature
	// extractor — and any mean-intensity fault check — actually sees.
	if f.Fault != nil && (f.Fault.Kind == FaultDrop || f.Fault.Kind == FaultBlackout) {
		if f.Fault.Kind == FaultBlackout {
			im.AddNoise(rng, 0.01)
			im.Clamp()
		}
		renderRng.Put(rng)
		return im
	}

	// Background: base level with a soft vertical gradient.
	for y := 0; y < rh; y++ {
		v := float32(0.3 + 0.1*float64(y)/float64(rh))
		for x := 0; x < rw; x++ {
			im.Pix[y*rw+x] = v
		}
	}
	// Clutter: small high-contrast distractors whose count scales with the
	// clutter level. Drawn under the objects.
	nClutter := int(f.Clutter * 40)
	for i := 0; i < nClutter; i++ {
		cx := rng.Float64() * float64(rw)
		cy := rng.Float64() * float64(rh)
		s := (2 + rng.Float64()*6) * float64(rw) / 160
		tex := raster.Texture(rng.Intn(5))
		im.DrawRect(cx-s/2, cy-s/2, cx+s/2, cy+s/2, tex, float32(0.15+rng.Float64()*0.8), 2)
	}
	// Objects.
	for _, o := range f.Objects {
		b := o.Box.Scaled(factor)
		period := math.Max(2, b.W()/7)
		im.DrawEllipse(b.X1, b.Y1, b.X2, b.Y2, o.Texture, o.Intensity, period)
	}
	// Motion blur and sensor noise. An unblurred frame is finished in
	// place — BoxBlur(0) would clone the raster just to return it.
	blur := int(math.Round(f.Blur * factor))
	out := im
	if blur > 0 {
		out = im.BoxBlur(blur)
	}
	noise := 0.015
	if f.Fault != nil {
		switch f.Fault.Kind {
		case FaultNoise:
			noise += 0.2 * f.Fault.Severity
		case FaultOverexpose:
			// Push pixels toward saturation before the final clamp.
			sev := float32(f.Fault.Severity)
			for i, v := range out.Pix {
				out.Pix[i] = v + sev*(1.2-v)
			}
		}
	}
	out.AddNoise(rng, noise)
	out.Clamp()
	renderRng.Put(rng)
	return out
}

// renderRng pools the per-render random generator. Render fully re-seeds
// the generator before any draw, so a recycled instance produces the same
// stream as a freshly constructed one.
var renderRng = sync.Pool{New: func() any { return rand.New(rand.NewSource(1)) }}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
