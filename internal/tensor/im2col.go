package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution over an
// input of size in with the given kernel, stride and symmetric padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers a C×H×W input into a (C·K·K)×(Ho·Wo) matrix so that a
// convolution with Cout filters becomes a single (Cout)×(C·K·K) by
// (C·K·K)×(Ho·Wo) matrix multiplication. Out-of-bounds taps contribute 0.
//
// The returned matrix is freshly allocated; use Im2ColInto to reuse a
// buffer in training loops.
func Im2Col(x *Tensor, kernel, stride, pad int) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	ho := ConvOutSize(h, kernel, stride, pad)
	wo := ConvOutSize(w, kernel, stride, pad)
	out := New(c*kernel*kernel, ho*wo)
	Im2ColInto(out, x, kernel, stride, pad)
	return out
}

// Im2ColInto performs Im2Col into dst, which must have shape
// (C·K·K)×(Ho·Wo). dst is fully overwritten.
func Im2ColInto(dst, x *Tensor, kernel, stride, pad int) {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col requires a C×H×W input, got %v", x.shape))
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	ho := ConvOutSize(h, kernel, stride, pad)
	wo := ConvOutSize(w, kernel, stride, pad)
	if dst.Dim(0) != c*kernel*kernel || dst.Dim(1) != ho*wo {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v, want [%d %d]", dst.shape, c*kernel*kernel, ho*wo))
	}
	im2colAt(dst.data, ho*wo, 0, x, kernel, stride, pad, 0, ho, wo)
}

// im2colAt writes the im2col lowering of output rows [oy0, oy1) into a
// (C·K·K)×rowStride row-major buffer at column offset colOff — the shared
// core of Im2ColInto (rowStride = Ho·Wo, colOff = 0, all rows) and the
// batched convolution's cache-blocked lowering (conv_batch.go), which
// lowers a band of output rows at a time into a compact chunk
// (rowStride = (oy1−oy0)·Wo). Each value is the same image tap either way,
// so a chunk's column for an output pixel is identical to the full
// matrix's column for that pixel.
func im2colAt(dd []float32, rowStride, colOff int, x *Tensor, kernel, stride, pad, oy0, oy1, wo int) {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	xd := x.data
	// The in-bounds ox range for a given kx (ix = ox·stride − pad + kx in
	// [0, w)) does not depend on oy; precomputing it turns the interior of
	// each output row into a branch-free span — a straight copy when
	// stride is 1 — with zero fills only at the edges.
	ox0s := make([]int, kernel)
	ox1s := make([]int, kernel)
	for kx := 0; kx < kernel; kx++ {
		ox0 := 0
		if d := pad - kx; d > 0 {
			ox0 = (d + stride - 1) / stride
		}
		ox1 := 0
		if t := w - 1 + pad - kx; t >= 0 {
			ox1 = t/stride + 1
			if ox1 > wo {
				ox1 = wo
			}
		}
		if ox0 > ox1 {
			ox0 = ox1
		}
		ox0s[kx], ox1s[kx] = ox0, ox1
	}
	for ch := 0; ch < c; ch++ {
		plane := xd[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kernel; ky++ {
			for kx := 0; kx < kernel; kx++ {
				rowBase := ((ch*kernel+ky)*kernel+kx)*rowStride + colOff
				row := dd[rowBase : rowBase+(oy1-oy0)*wo]
				ox0, ox1 := ox0s[kx], ox1s[kx]
				for oy := oy0; oy < oy1; oy++ {
					iy := oy*stride - pad + ky
					seg := row[(oy-oy0)*wo : (oy-oy0)*wo+wo]
					if iy < 0 || iy >= h {
						clear(seg)
						continue
					}
					clear(seg[:ox0])
					clear(seg[ox1:])
					if stride == 1 {
						copy(seg[ox0:ox1], plane[iy*w+ox0+kx-pad:iy*w+ox1+kx-pad])
					} else {
						base := iy*w + kx - pad
						for ox := ox0; ox < ox1; ox++ {
							seg[ox] = plane[base+ox*stride]
						}
					}
				}
			}
		}
	}
}

// Col2Im scatters a (C·K·K)×(Ho·Wo) column matrix back into a C×H×W
// tensor, accumulating overlapping taps. It is the adjoint of Im2Col and
// is used for convolution input gradients.
func Col2Im(cols *Tensor, c, h, w, kernel, stride, pad int) *Tensor {
	ho := ConvOutSize(h, kernel, stride, pad)
	wo := ConvOutSize(w, kernel, stride, pad)
	if cols.Dim(0) != c*kernel*kernel || cols.Dim(1) != ho*wo {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v, want [%d %d]", cols.shape, c*kernel*kernel, ho*wo))
	}
	out := New(c, h, w)
	cd, od := cols.data, out.data
	n := ho * wo
	for ch := 0; ch < c; ch++ {
		plane := od[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kernel; ky++ {
			for kx := 0; kx < kernel; kx++ {
				row := cd[((ch*kernel+ky)*kernel+kx)*n : ((ch*kernel+ky)*kernel+kx+1)*n]
				idx := 0
				for oy := 0; oy < ho; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						idx += wo
						continue
					}
					base := iy * w
					for ox := 0; ox < wo; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							plane[base+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
	return out
}
