package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Dims() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(7.5, 1, 2)
	if x.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", x.At(1, 2))
	}
	if x.Data()[1*3+2] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	_ = x.At(2, 0)
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 1)
	if x.At(0, 1) != 99 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must copy storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	c := Add(a, b)
	want := []float32{5, 7, 9}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("Add[%d] = %v, want %v", i, v, want[i])
		}
	}
	a.MulInPlace(b)
	if a.At(2) != 18 {
		t.Fatalf("MulInPlace got %v", a.At(2))
	}
	a.ScaleInPlace(0.5)
	if a.At(0) != 2 {
		t.Fatalf("ScaleInPlace got %v", a.At(0))
	}
	a.SubInPlace(b)
	if a.At(0) != -2 {
		t.Fatalf("SubInPlace got %v", a.At(0))
	}
	a.AddScaledInPlace(2, b)
	if a.At(0) != 6 {
		t.Fatalf("AddScaledInPlace got %v", a.At(0))
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2), New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	a.AddInPlace(b)
}

func TestSumMeanNorms(t *testing.T) {
	x := FromSlice([]float32{-3, 4}, 2)
	if x.Sum() != 1 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 0.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	if !almostEqual(x.L2Norm(), 5, 1e-9) {
		t.Fatalf("L2Norm = %v", x.L2Norm())
	}
	empty := New(0)
	if empty.Mean() != 0 || empty.MaxAbs() != 0 {
		t.Fatal("empty tensor stats must be 0")
	}
}

// naiveMatMul is an index-by-index reference implementation.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	t.RandNormal(rng, 0, 1)
	return t
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		got, want := MatMul(a, b), naiveMatMul(a, b)
		for i := range got.Data() {
			if !almostEqual(float64(got.Data()[i]), float64(want.Data()[i]), 1e-4) {
				t.Fatalf("trial %d: MatMul mismatch at %d: %v vs %v", trial, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

func TestMatMulATBAndABT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := randTensor(rng, k, m), randTensor(rng, k, n)
		got := MatMulATB(a, b)
		want := naiveMatMul(Transpose2D(a), b)
		for i := range got.Data() {
			if !almostEqual(float64(got.Data()[i]), float64(want.Data()[i]), 1e-4) {
				t.Fatalf("MatMulATB mismatch")
			}
		}
		c, d := randTensor(rng, m, k), randTensor(rng, n, k)
		got2 := MatMulABT(c, d)
		want2 := naiveMatMul(c, Transpose2D(d))
		for i := range got2.Data() {
			if !almostEqual(float64(got2.Data()[i]), float64(want2.Data()[i]), 1e-4) {
				t.Fatalf("MatMulABT mismatch")
			}
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 4, 7)
	b := Transpose2D(Transpose2D(a))
	if !a.SameShape(b) {
		t.Fatal("shape changed")
	}
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("transpose not an involution")
		}
	}
}

// Property: matrix multiplication distributes over addition:
// A·(B+C) == A·B + A·C.
func TestMatMulDistributesOverAddition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randTensor(rng, m, k)
		b, c := randTensor(rng, k, n), randTensor(rng, k, n)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		for i := range lhs.Data() {
			if !almostEqual(float64(lhs.Data()[i]), float64(rhs.Data()[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{5, 3, 1, 1, 5},
		{5, 3, 1, 0, 3},
		{7, 3, 2, 1, 4},
		{1, 1, 1, 0, 1},
		{8, 5, 2, 2, 4},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

// naiveConv performs a direct convolution used to validate Im2Col+MatMul.
func naiveConv(x, w *Tensor, kernel, stride, pad int) *Tensor {
	cIn, h, wd := x.Dim(0), x.Dim(1), x.Dim(2)
	cOut := w.Dim(0)
	ho, wo := ConvOutSize(h, kernel, stride, pad), ConvOutSize(wd, kernel, stride, pad)
	out := New(cOut, ho, wo)
	for co := 0; co < cOut; co++ {
		for oy := 0; oy < ho; oy++ {
			for ox := 0; ox < wo; ox++ {
				var s float32
				for ci := 0; ci < cIn; ci++ {
					for ky := 0; ky < kernel; ky++ {
						for kx := 0; kx < kernel; kx++ {
							iy, ix := oy*stride-pad+ky, ox*stride-pad+kx
							if iy < 0 || iy >= h || ix < 0 || ix >= wd {
								continue
							}
							s += x.At(ci, iy, ix) * w.At(co, ci, ky, kx)
						}
					}
				}
				out.Set(s, co, oy, ox)
			}
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		cIn, cOut := 1+rng.Intn(3), 1+rng.Intn(3)
		kernel := []int{1, 3, 5}[rng.Intn(3)]
		h, w := kernel+rng.Intn(5), kernel+rng.Intn(5)
		stride, pad := 1+rng.Intn(2), kernel/2
		x := randTensor(rng, cIn, h, w)
		wt := randTensor(rng, cOut, cIn, kernel, kernel)
		cols := Im2Col(x, kernel, stride, pad)
		wm := wt.Reshape(cOut, cIn*kernel*kernel)
		got := MatMul(wm, cols)
		want := naiveConv(x, wt, kernel, stride, pad)
		if got.Size() != want.Size() {
			t.Fatalf("size mismatch %d vs %d", got.Size(), want.Size())
		}
		for i := range got.Data() {
			if !almostEqual(float64(got.Data()[i]), float64(want.Data()[i]), 1e-3) {
				t.Fatalf("trial %d: conv mismatch at %d", trial, i)
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. <Im2Col(x), y> == <x, Col2Im(y)>.
func TestCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		c := 1 + rng.Intn(3)
		kernel := []int{1, 3}[rng.Intn(2)]
		h, w := kernel+rng.Intn(4), kernel+rng.Intn(4)
		stride, pad := 1+rng.Intn(2), kernel/2
		x := randTensor(rng, c, h, w)
		cols := Im2Col(x, kernel, stride, pad)
		y := randTensor(rng, cols.Dim(0), cols.Dim(1))
		back := Col2Im(y, c, h, w, kernel, stride, pad)

		var lhs, rhs float64
		for i := range cols.Data() {
			lhs += float64(cols.Data()[i]) * float64(y.Data()[i])
		}
		for i := range x.Data() {
			rhs += float64(x.Data()[i]) * float64(back.Data()[i])
		}
		if !almostEqual(lhs, rhs, 1e-2*(1+math.Abs(lhs))) {
			t.Fatalf("trial %d: adjoint identity violated: %v vs %v", trial, lhs, rhs)
		}
	}
}

func TestInitialisers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := New(10000)
	x.HeInit(rng, 50)
	std := math.Sqrt(2.0 / 50.0)
	var s float64
	for _, v := range x.Data() {
		s += float64(v) * float64(v)
	}
	got := math.Sqrt(s / float64(x.Size()))
	if !almostEqual(got, std, std*0.1) {
		t.Fatalf("He std = %v, want ≈ %v", got, std)
	}
	y := New(10000)
	y.XavierInit(rng, 30, 40)
	limit := math.Sqrt(6.0 / 70.0)
	for _, v := range y.Data() {
		if float64(v) < -limit || float64(v) > limit {
			t.Fatal("Xavier sample outside limits")
		}
	}
	z := New(4)
	z.Fill(3)
	z.Zero()
	if z.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}
