package tensor

import (
	"fmt"
	"sync"
)

// Fused im2col-free convolution. The historical path lowers the input with
// Im2Col and multiplies by the reshaped weight matrix; that materialises a
// (C·K·K)×(Ho·Wo) matrix that is K·K times larger than the input and is
// read exactly once. ConvInto walks the input directly instead, and works
// from a precomputed list of the *nonzero* weight taps — the backbone's
// hand-designed filters are mostly exact zeros, so skipping them (as the
// serial matmul kernel does via its a-value skip) is where the flops go
// away. Interior output rows process taps in groups of four with one pass
// over the destination row per group instead of one per tap, which
// quarters the store traffic and amortises loop overhead.
//
// Bit-identity with the im2col path (DESIGN.md §4g): for an output element
// (co, oy, ox), the im2col route accumulates wm[co][p]·cols[p][oyx] in
// ascending p = ((ci·K+ky)·K+kx), skipping zero weights. ConvInto applies
// the nonzero taps in exactly that ascending order — the grouped
// expression `o += w0·x0 + w1·x1 + w2·x2 + w3·x3` is left-associative, so
// each element still receives the identical chain of float32 operations —
// and adds the bias once after the taps, as the historical bias loop did.
// Out-of-bounds taps, which contribute an exact ±0 product via the
// zero-padded cols matrix, are skipped instead; adding a ±0 product never
// changes a float32 partial sum (sums never equal -0: they start at +0 and
// exact cancellation rounds to +0), so results are bit-identical for all
// finite inputs.
//
// Parallel fan-out tiles over output rows (co·Ho of them); each row's
// elements are computed by one worker in serial order, so results are
// byte-identical across worker counts.

// tap is one nonzero weight of a convolution filter.
type tap struct {
	ci, ky, kx int
	w          float32
}

// Conv computes a 2-D convolution of a Cin×H×W input with an
// OutC×Cin×K×K weight tensor and an OutC bias vector (nil for no bias),
// returning OutC×Ho×Wo. Results are bit-identical to
// MatMul(weight reshaped, Im2Col(x)) plus bias.
func Conv(x, weight, bias *Tensor, stride, pad int) *Tensor {
	outC := weight.Dim(0)
	ho := ConvOutSize(x.Dim(1), weight.Dim(2), stride, pad)
	wo := ConvOutSize(x.Dim(2), weight.Dim(2), stride, pad)
	dst := &Tensor{shape: []int{outC, ho, wo}, data: make([]float32, outC*ho*wo)}
	ConvInto(dst, x, weight, bias, stride, pad)
	return dst
}

// ConvInto is Conv into a caller-owned OutC×Ho×Wo destination (typically
// pooled). dst is fully overwritten; it must not alias x.
func ConvInto(dst, x, weight, bias *Tensor, stride, pad int) {
	if x.Dims() != 3 || weight.Dims() != 4 || dst.Dims() != 3 {
		panic(fmt.Sprintf("tensor: ConvInto requires x C×H×W, weight O×C×K×K, dst O×Ho×Wo; got %v, %v, %v", x.shape, weight.shape, dst.shape))
	}
	cin, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	outC, kernel := weight.Dim(0), weight.Dim(2)
	if weight.Dim(1) != cin || weight.Dim(3) != kernel {
		panic(fmt.Sprintf("tensor: ConvInto weight %v does not match input %v", weight.shape, x.shape))
	}
	ho := ConvOutSize(h, kernel, stride, pad)
	wo := ConvOutSize(w, kernel, stride, pad)
	if dst.Dim(0) != outC || dst.Dim(1) != ho || dst.Dim(2) != wo {
		panic(fmt.Sprintf("tensor: ConvInto dst %v, want [%d %d %d]", dst.shape, outC, ho, wo))
	}
	if bias != nil && bias.Size() != outC {
		panic(fmt.Sprintf("tensor: ConvInto bias %v, want length %d", bias.shape, outC))
	}
	if wo == 0 || ho == 0 || outC == 0 {
		return
	}

	// Nonzero taps per output channel, in ascending (ci, ky, kx) order —
	// the accumulation order the im2col route uses and the goldens pin.
	// The plan (tap list + geometry slices) is rebuilt every call but its
	// storage recycles through a pool, so a steady-state convolution
	// allocates nothing here.
	wd := weight.data
	cv := convPlanPool.Get().(*convPlan)
	flat := cv.taps[:0]
	counts := cv.counts
	if cap(counts) < outC+1 {
		counts = make([]int, outC+1)
	}
	counts = counts[:outC+1]
	counts[0] = 0
	for co := 0; co < outC; co++ {
		base := co * cin * kernel * kernel
		for ci := 0; ci < cin; ci++ {
			for ky := 0; ky < kernel; ky++ {
				for kx := 0; kx < kernel; kx++ {
					if wv := wd[base+(ci*kernel+ky)*kernel+kx]; wv != 0 {
						flat = append(flat, tap{ci, ky, kx, wv})
					}
				}
			}
		}
		counts[co+1] = len(flat)
	}

	// Valid ox range per kx — where ix = ox·stride − pad + kx lands inside
	// the row — is independent of oy; precompute once.
	ox0s, ox1s := cv.ox0s, cv.ox1s
	if cap(ox0s) < kernel || cap(ox1s) < kernel {
		ox0s = make([]int, kernel)
		ox1s = make([]int, kernel)
	}
	ox0s, ox1s = ox0s[:kernel], ox1s[:kernel]
	for kx := 0; kx < kernel; kx++ {
		ox0 := 0
		if d := pad - kx; d > 0 {
			ox0 = (d + stride - 1) / stride
		}
		ox1 := 0
		if t := w - 1 + pad - kx; t >= 0 {
			ox1 = t/stride + 1
			if ox1 > wo {
				ox1 = wo
			}
		}
		if ox0 > ox1 {
			ox0 = ox1
		}
		ox0s[kx], ox1s[kx] = ox0, ox1
	}

	*cv = convPlan{
		xd: x.data, bias: bias,
		cin: cin, h: h, w: w, kernel: kernel, stride: stride, pad: pad,
		ho: ho, wo: wo,
		taps: flat, counts: counts, ox0s: ox0s, ox1s: ox1s,
	}
	rows := outC * ho
	flops := int64(len(flat)) * int64(ho) * int64(wo)
	if chunks := rowChunks(rows, flops); chunks > 0 {
		forEachRowChunk(chunks, rows, func(r0, r1 int) { cv.rows(dst.data, r0, r1) })
	} else {
		cv.rows(dst.data, 0, rows)
	}
	// forEachRowChunk has joined all workers; drop the input references and
	// recycle the plan's storage.
	cv.xd, cv.bias = nil, nil
	convPlanPool.Put(cv)
}

// convPlanPool recycles convPlan structs and their slice storage across
// ConvInto calls; every field is rebuilt before use.
var convPlanPool = sync.Pool{New: func() any { return new(convPlan) }}

// convPlan carries the per-call geometry and tap list to the row workers.
type convPlan struct {
	xd     []float32
	bias   *Tensor
	cin    int
	h, w   int
	kernel int
	stride int
	pad    int
	ho, wo int
	taps   []tap
	counts []int // taps[counts[co]:counts[co+1]] belong to channel co
	ox0s   []int
	ox1s   []int
}

// rows computes the flattened output rows [r0, r1), where row r = co·Ho+oy.
func (cv *convPlan) rows(dd []float32, r0, r1 int) {
	h, wo, stride, pad := cv.h, cv.wo, cv.stride, cv.pad
	for r := r0; r < r1; r++ {
		co := r / cv.ho
		oy := r - co*cv.ho
		orow := dd[r*wo : r*wo+wo]
		clear(orow)
		taps := cv.taps[cv.counts[co]:cv.counts[co+1]]

		// Interior rows — every ky maps inside the input — take the
		// grouped kernel; boundary rows fall back to tap-at-a-time.
		iyTop := oy*stride - pad
		if iyTop >= 0 && iyTop+cv.kernel <= h {
			cv.rowGrouped(orow, taps, iyTop)
		} else {
			cv.rowGeneric(orow, taps, oy)
		}

		if cv.bias != nil {
			bv := cv.bias.data[co]
			for j := range orow {
				orow[j] += bv
			}
		}
	}
}

// rowGrouped accumulates an interior output row, four taps per pass.
// iyTop is the input row of kernel row ky=0 (all kernel rows in bounds).
func (cv *convPlan) rowGrouped(orow []float32, taps []tap, iyTop int) {
	w, wo, stride, pad := cv.w, cv.wo, cv.stride, cv.pad
	var xr [4][]float32
	var off [4]int
	var wv [4]float32
	for g := 0; g < len(taps); g += 4 {
		n := len(taps) - g
		if n > 4 {
			n = 4
		}
		// Intersection of the taps' in-bounds ox ranges; the few columns
		// outside it are handled per element below.
		lo, hi := 0, wo
		for t := 0; t < n; t++ {
			tp := taps[g+t]
			base := (tp.ci*cv.h + iyTop + tp.ky) * w
			xr[t] = cv.xd[base : base+w]
			off[t] = tp.kx - pad
			wv[t] = tp.w
			if o := cv.ox0s[tp.kx]; o > lo {
				lo = o
			}
			if o := cv.ox1s[tp.kx]; o < hi {
				hi = o
			}
		}
		if lo > hi {
			lo = hi
		}
		// Edge columns: per element, taps in ascending order (skipping
		// out-of-bounds ±0 contributions keeps sums bit-identical).
		for _, ox := range [2][2]int{{0, lo}, {hi, wo}} {
			for c := ox[0]; c < ox[1]; c++ {
				for t := 0; t < n; t++ {
					if ix := c*stride + off[t]; ix >= 0 && ix < w {
						orow[c] += wv[t] * xr[t][ix]
					}
				}
			}
		}
		if lo >= hi {
			continue
		}
		ar := orow[lo:hi]
		if stride == 1 {
			switch n {
			case 4:
				x0 := xr[0][lo+off[0] : hi+off[0]]
				x1 := xr[1][lo+off[1] : hi+off[1]]
				x2 := xr[2][lo+off[2] : hi+off[2]]
				x3 := xr[3][lo+off[3] : hi+off[3]]
				w0, w1, w2, w3 := wv[0], wv[1], wv[2], wv[3]
				for i := range ar {
					ar[i] = ar[i] + w0*x0[i] + w1*x1[i] + w2*x2[i] + w3*x3[i]
				}
			case 3:
				x0 := xr[0][lo+off[0] : hi+off[0]]
				x1 := xr[1][lo+off[1] : hi+off[1]]
				x2 := xr[2][lo+off[2] : hi+off[2]]
				w0, w1, w2 := wv[0], wv[1], wv[2]
				for i := range ar {
					ar[i] = ar[i] + w0*x0[i] + w1*x1[i] + w2*x2[i]
				}
			case 2:
				x0 := xr[0][lo+off[0] : hi+off[0]]
				x1 := xr[1][lo+off[1] : hi+off[1]]
				w0, w1 := wv[0], wv[1]
				for i := range ar {
					ar[i] = ar[i] + w0*x0[i] + w1*x1[i]
				}
			default:
				x0 := xr[0][lo+off[0] : hi+off[0]]
				w0 := wv[0]
				for i := range ar {
					ar[i] += w0 * x0[i]
				}
			}
		} else {
			x0, x1, x2, x3 := xr[0], xr[0], xr[0], xr[0]
			if n > 1 {
				x1 = xr[1]
			}
			if n > 2 {
				x2 = xr[2]
			}
			if n > 3 {
				x3 = xr[3]
			}
			o0, o1, o2, o3 := off[0], off[1], off[2], off[3]
			w0, w1, w2, w3 := wv[0], wv[1], wv[2], wv[3]
			switch n {
			case 4:
				for i := range ar {
					ix := (lo + i) * stride
					ar[i] = ar[i] + w0*x0[ix+o0] + w1*x1[ix+o1] + w2*x2[ix+o2] + w3*x3[ix+o3]
				}
			case 3:
				for i := range ar {
					ix := (lo + i) * stride
					ar[i] = ar[i] + w0*x0[ix+o0] + w1*x1[ix+o1] + w2*x2[ix+o2]
				}
			case 2:
				for i := range ar {
					ix := (lo + i) * stride
					ar[i] = ar[i] + w0*x0[ix+o0] + w1*x1[ix+o1]
				}
			default:
				for i := range ar {
					ar[i] += w0 * x0[(lo+i)*stride+o0]
				}
			}
		}
	}
}

// rowGeneric accumulates a boundary output row one tap at a time, with the
// full iy/ix bounds handling.
func (cv *convPlan) rowGeneric(orow []float32, taps []tap, oy int) {
	h, w, stride, pad := cv.h, cv.w, cv.stride, cv.pad
	for _, tp := range taps {
		iy := oy*stride - pad + tp.ky
		if iy < 0 || iy >= h {
			continue
		}
		xrow := cv.xd[(tp.ci*h+iy)*w : (tp.ci*h+iy)*w+w]
		ox0, ox1 := cv.ox0s[tp.kx], cv.ox1s[tp.kx]
		if ox0 >= ox1 {
			continue
		}
		wv := tp.w
		if stride == 1 {
			xs := xrow[ox0+tp.kx-pad : ox1+tp.kx-pad]
			ar := orow[ox0:ox1]
			for i, xv := range xs {
				ar[i] += wv * xv
			}
		} else {
			base := tp.kx - pad
			for ox := ox0; ox < ox1; ox++ {
				orow[ox] += wv * xrow[ox*stride+base]
			}
		}
	}
}
