package tensor

// Packed, cache-blocked matmul — the raw-speed path behind MatMulInto for
// products large enough to pay for packing. The kernel follows the classic
// Goto scheme scaled down to the backbone's shapes (small m, small k, wide
// n):
//
//   - B is packed once into column-panels of width nr=4: panel j holds
//     b[p][j..j+3] contiguously for ascending p, so the micro-kernel
//     streams it linearly instead of striding across B's rows.
//   - A is packed into row-panels of height mr=4: panel i holds
//     a[i..i+3][p] interleaved by p, one contiguous load per step.
//   - The 4×4 micro-kernel keeps all 16 partial sums of a C tile in
//     registers for the whole k loop, so each C element is written exactly
//     once and B is read once per 4 output rows instead of once per row.
//
// Bit-identity argument (DESIGN.md §4g): every dst element is still the
// float32 sum of a[i][p]*b[p][j] accumulated in ascending-p order — the
// same per-element operation order as the serial kernel — so the packed
// result is bit-identical to the serial one for all finite inputs, for any
// worker count and any tile split. (The serial kernel's skip of zero
// a-values is also value-neutral: partial sums never equal -0 because they
// start at +0 and x+(±0) == x for every float32 x that is not -0, so
// adding the skipped ±0 products cannot change any sum.)
//
// Parallelism fans the mr-row bands out over the worker pool; each band's
// elements are computed by exactly one worker in the same order as the
// serial packed kernel, so results are byte-identical across worker
// counts — the invariant the conformance goldens replay at workers {1,4}.

const (
	// packMR × packNR is the register micro-tile. 4×4 keeps the 16
	// float32 accumulators within the 16 vector registers of amd64.
	packMR = 4
	packNR = 4

	// packThreshold is the multiply-add count above which packing pays for
	// itself (one extra pass over A and B each). The backbone convolutions
	// sit two orders of magnitude above it; the regressor's tiny dense
	// products stay on the serial kernel.
	packThreshold = 1 << 17
)

// kernelScratch recycles the pack buffers across matmul calls from any
// goroutine (workers contend only on the brief Get/Put critical section).
var kernelScratch = NewPool()

// usePacked reports whether the packed path handles an m×k · k×n product.
func usePacked(m, k, n int) bool {
	return int64(m)*int64(k)*int64(n) >= packThreshold && m >= packMR && n >= packNR && k > 0
}

// matMulPacked computes dst = A·B with packing and register blocking.
// dst is fully overwritten.
func matMulPacked(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)

	packedB := kernelScratch.Get(k * n)
	packB(packedB, b.data, k, n)
	packedA := kernelScratch.Get(m * k)
	packA(packedA, a.data, m, k)

	bands := (m + packMR - 1) / packMR
	chunks := rowChunks(bands, int64(m)*int64(k)*int64(n))
	if chunks > 0 {
		forEachRowChunk(chunks, bands, func(b0, b1 int) {
			matMulPackedBands(dst.data, packedA, packedB, m, k, n, b0, b1)
		})
	} else {
		matMulPackedBands(dst.data, packedA, packedB, m, k, n, 0, bands)
	}

	kernelScratch.Put(packedA)
	kernelScratch.Put(packedB)
}

// packB lays B (k×n row-major) out as ceil(n/4) column-panels, each k×4,
// padded with zeros past column n so the micro-kernel needs no edge case
// in its inner loop (the padded products land in scratch accumulators that
// are simply never stored).
func packB(dstBuf, bd []float32, k, n int) {
	full := n &^ (packNR - 1)
	for j := 0; j < full; j += packNR {
		panel := dstBuf[j*k : j*k+k*packNR]
		for p := 0; p < k; p++ {
			row := bd[p*n+j : p*n+j+packNR]
			q := p * packNR
			panel[q] = row[0]
			panel[q+1] = row[1]
			panel[q+2] = row[2]
			panel[q+3] = row[3]
		}
	}
	if rem := n - full; rem > 0 {
		panel := dstBuf[full*k : full*k+k*rem]
		for p := 0; p < k; p++ {
			copy(panel[p*rem:p*rem+rem], bd[p*n+full:p*n+n])
		}
	}
}

// packA interleaves A (m×k row-major) into ceil(m/4) row-panels: panel i
// stores a[i..i+3][p] contiguously for each ascending p. The last partial
// panel is stored row-major (handled by the edge kernel).
func packA(dstBuf, ad []float32, m, k int) {
	full := m &^ (packMR - 1)
	for i := 0; i < full; i += packMR {
		panel := dstBuf[i*k : i*k+k*packMR]
		r0 := ad[i*k : i*k+k]
		r1 := ad[(i+1)*k : (i+1)*k+k]
		r2 := ad[(i+2)*k : (i+2)*k+k]
		r3 := ad[(i+3)*k : (i+3)*k+k]
		for p := 0; p < k; p++ {
			q := p * packMR
			panel[q] = r0[p]
			panel[q+1] = r1[p]
			panel[q+2] = r2[p]
			panel[q+3] = r3[p]
		}
	}
	if full < m {
		copy(dstBuf[full*k:m*k], ad[full*k:m*k])
	}
}

// matMulPackedBands computes the mr-row bands [b0, b1) of dst.
func matMulPackedBands(cd, packedA, packedB []float32, m, k, n, b0, b1 int) {
	fullN := n &^ (packNR - 1)
	for band := b0; band < b1; band++ {
		i := band * packMR
		rows := m - i
		if rows >= packMR {
			ap := packedA[i*k : i*k+k*packMR]
			for j := 0; j < fullN; j += packNR {
				micro4x4(cd, packedB[j*k:j*k+k*packNR], ap, i, j, k, n)
			}
			if rem := n - fullN; rem > 0 {
				microEdge(cd, packedB[fullN*k:fullN*k+k*rem], packedA[i*k:m*k], i, fullN, k, n, packMR, rem, true)
			}
		} else {
			// Last partial band: packedA holds these rows row-major.
			ap := packedA[i*k : m*k]
			for j := 0; j < fullN; j += packNR {
				microEdge(cd, packedB[j*k:j*k+k*packNR], ap, i, j, k, n, rows, packNR, false)
			}
			if rem := n - fullN; rem > 0 {
				microEdge(cd, packedB[fullN*k:fullN*k+k*rem], ap, i, fullN, k, n, rows, rem, false)
			}
		}
	}
}

// micro4x4 computes the 4×4 tile of C at (i, j): sixteen register
// accumulators over the full k loop, one contiguous load from each panel
// per step. bp is the k×4 B panel, ap the 4×k interleaved A panel.
func micro4x4(cd, bp, ap []float32, i, j, k, n int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	// Walk the panels by re-slicing so the eight loads below carry no
	// bounds checks (two slice ops per panel step instead of eight checked
	// indexings).
	bpp, app := bp[:4*k], ap[:4*k]
	for p := 0; p < k; p++ {
		bq := bpp[:4:4]
		aq := app[:4:4]
		bpp, app = bpp[4:], app[4:]
		b0, b1, b2, b3 := bq[0], bq[1], bq[2], bq[3]
		a0, a1, a2, a3 := aq[0], aq[1], aq[2], aq[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	row := cd[i*n+j : i*n+j+4 : i*n+j+4]
	row[0], row[1], row[2], row[3] = c00, c01, c02, c03
	row = cd[(i+1)*n+j : (i+1)*n+j+4 : (i+1)*n+j+4]
	row[0], row[1], row[2], row[3] = c10, c11, c12, c13
	row = cd[(i+2)*n+j : (i+2)*n+j+4 : (i+2)*n+j+4]
	row[0], row[1], row[2], row[3] = c20, c21, c22, c23
	row = cd[(i+3)*n+j : (i+3)*n+j+4 : (i+3)*n+j+4]
	row[0], row[1], row[2], row[3] = c30, c31, c32, c33
}

// microEdge handles partial tiles (rows < 4 and/or cols < 4). bp is a
// k×cols B panel; ap is either the 4×k interleaved panel (interleaved
// true) or rows×k row-major. Accumulation stays ascending-p per element.
func microEdge(cd, bp, ap []float32, i, j, k, n, rows, cols int, interleaved bool) {
	for r := 0; r < rows; r++ {
		crow := cd[(i+r)*n+j : (i+r)*n+j+cols]
		for c := 0; c < cols; c++ {
			var s float32
			if interleaved {
				for p := 0; p < k; p++ {
					s += ap[p*packMR+r] * bp[p*cols+c]
				}
			} else {
				arow := ap[r*k : r*k+k]
				for p := 0; p < k; p++ {
					s += arow[p] * bp[p*cols+c]
				}
			}
			crow[c] = s
		}
	}
}
