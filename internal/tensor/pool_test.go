package tensor

import (
	"sync"
	"testing"
)

func TestPoolRecyclesBySizeClass(t *testing.T) {
	p := NewPool()
	a := p.Get(100) // class 7 (128)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("Get(100): len %d cap %d, want 100/128", len(a), cap(a))
	}
	p.Put(a)
	b := p.Get(120) // same class: must reuse a's backing array
	if &a[0] != &b[0] {
		t.Fatalf("Get after Put did not reuse the buffer")
	}
	if len(b) != 120 {
		t.Fatalf("reused buffer has len %d, want 120", len(b))
	}
	gets, hits, puts := p.Stats()
	if gets != 2 || hits != 1 || puts != 1 {
		t.Fatalf("Stats = %d/%d/%d, want 2/1/1", gets, hits, puts)
	}
}

func TestPoolNilSafety(t *testing.T) {
	var p *Pool
	buf := p.Get(16)
	if len(buf) != 16 {
		t.Fatalf("nil pool Get(16): len %d", len(buf))
	}
	for _, v := range buf {
		if v != 0 {
			t.Fatal("nil pool Get must allocate zeroed")
		}
	}
	p.Put(buf) // must not panic
	tt := p.GetTensorZeroed(2, 3)
	if tt.Dim(0) != 2 || tt.Dim(1) != 3 {
		t.Fatalf("nil pool GetTensorZeroed shape %v", tt.Shape())
	}
	p.PutTensor(tt)
}

func TestPoolGetZeroedClearsStaleContents(t *testing.T) {
	p := NewPool()
	a := p.Get(8)
	for i := range a {
		a[i] = 42
	}
	p.Put(a)
	b := p.GetZeroed(8)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %v, want 0", i, v)
		}
	}
}

func TestPoolBoundsRetention(t *testing.T) {
	p := NewPool()
	bufs := make([][]float32, poolMaxPerClass+3)
	for i := range bufs {
		bufs[i] = p.Get(64)
	}
	for _, b := range bufs {
		p.Put(b)
	}
	if got := len(p.classes[sizeClass(64)]); got != poolMaxPerClass {
		t.Fatalf("retained %d buffers, want cap %d", got, poolMaxPerClass)
	}
	// Oversized and foreign buffers are dropped, not stored.
	p.Put(make([]float32, 100)) // cap 100 is not a class size
	p.Put(nil)
	if got := len(p.classes[sizeClass(128)]); got != 0 {
		t.Fatalf("foreign buffer was retained")
	}
}

func TestPoolTensorRoundTrip(t *testing.T) {
	p := NewPool()
	a := p.GetTensorZeroed(3, 4, 5)
	if a.Size() != 60 {
		t.Fatalf("Size = %d", a.Size())
	}
	back := a.Data()
	p.PutTensor(a)
	b := p.GetTensor(5, 12)
	if &back[0] != &b.Data()[0] {
		t.Fatal("PutTensor/GetTensor did not recycle storage")
	}
}

func TestPoolConcurrentUse(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				buf := p.Get(1 << uint(i%10))
				buf[0] = float32(i)
				p.Put(buf)
			}
		}()
	}
	wg.Wait()
}
