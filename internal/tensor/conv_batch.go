package tensor

// Batched (N-stacked) convolution — the kernel behind the serving layer's
// cross-stream detector batching. Each image runs through a cache-blocked
// implicit matmul: bands of output rows are lowered (im2colAt) into a
// column chunk small enough to live in L2, packed into the matmul's
// column panels while still resident, and multiplied by the once-packed
// weight panels — so the (C·K·K)×(Ho·Wo) column matrix, which at serving
// shapes is far larger than cache, is never materialised or re-read from
// memory. The weight packing is shared across every image and chunk of the
// call, which is where the cross-image batching saves work on top of the
// per-image blocking.
//
// Bit-identity with the per-image path: every output element is the
// float32 dot product of the same weight row with the same lowered column,
// accumulated in ascending (ci,ky,kx) tap order by the same micro-kernels
// MatMulInto's packed path uses — the order ConvInto and all of
// MatMulInto's kernels are documented to share — with the bias added last
// exactly as ConvInto does. Chunking changes only which columns share a
// kernel invocation, never any value or accumulation order, so
// ConvBatchInto(outs, xs, ...) equals N sequential ConvInto(outs[j],
// xs[j], ...) calls bit for bit, regardless of batch size, blocking or
// worker count. The property tests in conv_batch_test.go pin this across
// batch sizes, odd shapes and worker counts.
//
// Products too small for packing to pay off fall back to whole-image
// im2col + MatMulInto, which routes to the serial kernels — bit-identical
// again.

import "fmt"

// convBatchChunkFloats bounds the per-chunk lowered column block, in
// floats (1<<14 floats = 64 KiB of float32): the chunk plus its packed
// copy and the output tile must fit comfortably in a per-core L2.
const convBatchChunkFloats = 1 << 14

// ConvBatchInto computes outs[j] = conv(xs[j]) for a batch of same-shape
// C×H×W inputs against one OutC×C×K×K weight tensor and OutC bias vector
// (nil bias adds nothing). Results are bit-identical to calling ConvInto
// per image. Scratch buffers come from pool (nil falls back to plain
// allocation); outs are caller-owned and fully overwritten, and must not
// alias any input.
func ConvBatchInto(outs, xs []*Tensor, weight, bias *Tensor, stride, pad int, pool *Pool) {
	convBatchInto(outs, xs, weight, bias, stride, pad, pool, false)
}

// ConvBatchAbsInto is ConvBatchInto followed by elementwise magnitude
// rectification |·|, fused into the pass that already touches every output
// element — bit-identical to ConvBatchInto plus a separate |·| sweep
// (rectification is per-element and |s| depends only on s), one full
// memory pass cheaper. It exists for the backbone's batched inference,
// whose nonlinearity is the magnitude.
func ConvBatchAbsInto(outs, xs []*Tensor, weight, bias *Tensor, stride, pad int, pool *Pool) {
	convBatchInto(outs, xs, weight, bias, stride, pad, pool, true)
}

func convBatchInto(outs, xs []*Tensor, weight, bias *Tensor, stride, pad int, pool *Pool, rectify bool) {
	n := len(xs)
	if len(outs) != n {
		panic(fmt.Sprintf("tensor: ConvBatchInto got %d outputs for %d inputs", len(outs), n))
	}
	if n == 0 {
		return
	}
	if weight.Dims() != 4 {
		panic(fmt.Sprintf("tensor: ConvBatchInto requires an O×C×K×K weight, got %v", weight.shape))
	}
	outC, cin, kernel := weight.Dim(0), weight.Dim(1), weight.Dim(2)
	c0, h0, w0 := xs[0].Dim(0), xs[0].Dim(1), xs[0].Dim(2)
	for j, x := range xs {
		if x.Dims() != 3 || x.Dim(0) != c0 || x.Dim(1) != h0 || x.Dim(2) != w0 {
			panic(fmt.Sprintf("tensor: ConvBatchInto image %d shape %v differs from %v — batch images must share a shape", j, x.shape, xs[0].shape))
		}
	}
	if c0 != cin {
		panic(fmt.Sprintf("tensor: ConvBatchInto weight expects %d input channels, images have %d", cin, c0))
	}
	ho := ConvOutSize(h0, kernel, stride, pad)
	wo := ConvOutSize(w0, kernel, stride, pad)
	n1 := ho * wo
	ckk := cin * kernel * kernel
	for j, o := range outs {
		if o.Dims() != 3 || o.Dim(0) != outC || o.Dim(1) != ho || o.Dim(2) != wo {
			panic(fmt.Sprintf("tensor: ConvBatchInto output %d shape %v, want [%d %d %d]", j, o.shape, outC, ho, wo))
		}
	}
	var bd []float32
	if bias != nil {
		bd = bias.Data()
	}

	if !usePacked(outC, ckk, n1) {
		// Small product: whole-image im2col + MatMulInto (serial kernels).
		convBatchSmall(outs, xs, weight, bd, kernel, stride, pad, ho, wo, pool, rectify)
		return
	}

	rowsPer := convBatchChunkFloats / (ckk * wo)
	if rowsPer < 1 {
		rowsPer = 1
	}
	if rowsPer > ho {
		rowsPer = ho
	}
	nc0 := rowsPer * wo
	packedA := kernelScratch.Get(outC * ckk)
	packA(packedA, weight.data, outC, ckk)
	cols := kernelScratch.Get(ckk * nc0)
	packedB := kernelScratch.Get(ckk * nc0)
	for j, x := range xs {
		od := outs[j].data
		for oy0 := 0; oy0 < ho; oy0 += rowsPer {
			oy1 := oy0 + rowsPer
			if oy1 > ho {
				oy1 = ho
			}
			nc := (oy1 - oy0) * wo
			im2colAt(cols, nc, 0, x, kernel, stride, pad, oy0, oy1, wo)
			packB(packedB, cols, ckk, nc)
			packedBandsAt(od[oy0*wo:], packedA, packedB, outC, ckk, n1, nc)
		}
		finishRows(od, bd, outC, n1, rectify)
	}
	kernelScratch.Put(packedB)
	kernelScratch.Put(cols)
	kernelScratch.Put(packedA)
}

// packedBandsAt runs the packed micro-kernels over one lowered chunk,
// writing the nc chunk columns of every output row band into cd, whose
// rows are rowStride apart (cd is the output data offset to the chunk's
// first column). Identical structure — and therefore identical per-element
// accumulation order — to matMulPackedBands.
func packedBandsAt(cd, packedA, packedB []float32, m, k, rowStride, nc int) {
	fullN := nc &^ (packNR - 1)
	bands := (m + packMR - 1) / packMR
	for band := 0; band < bands; band++ {
		i := band * packMR
		rows := m - i
		if rows >= packMR {
			ap := packedA[i*k : i*k+k*packMR]
			for j := 0; j < fullN; j += packNR {
				micro4x4(cd, packedB[j*k:j*k+k*packNR], ap, i, j, k, rowStride)
			}
			if rem := nc - fullN; rem > 0 {
				microEdge(cd, packedB[fullN*k:fullN*k+k*rem], packedA[i*k:m*k], i, fullN, k, rowStride, packMR, rem, true)
			}
		} else {
			// Last partial band: packedA holds these rows row-major.
			ap := packedA[i*k : m*k]
			for j := 0; j < fullN; j += packNR {
				microEdge(cd, packedB[j*k:j*k+k*packNR], ap, i, j, k, rowStride, rows, packNR, false)
			}
			if rem := nc - fullN; rem > 0 {
				microEdge(cd, packedB[fullN*k:fullN*k+k*rem], ap, i, fullN, k, rowStride, rows, rem, false)
			}
		}
	}
}

// convBatchSmall is the fallback for products below the packing threshold:
// per-image im2col into pooled scratch and MatMulInto (which routes to the
// serial kernels at these sizes), bias last.
func convBatchSmall(outs, xs []*Tensor, weight *Tensor, bd []float32, kernel, stride, pad, ho, wo int, pool *Pool, rectify bool) {
	outC := weight.Dim(0)
	ckk := weight.Dim(1) * kernel * kernel
	n1 := ho * wo
	wm := weight.Reshape(outC, ckk)
	cols := pool.GetTensor(ckk, n1)
	big := pool.GetTensor(outC, n1)
	for j, x := range xs {
		im2colAt(cols.data, n1, 0, x, kernel, stride, pad, 0, ho, wo)
		MatMulInto(big, wm, cols)
		od := outs[j].data
		copy(od, big.data[:outC*n1])
		finishRows(od, bd, outC, n1, rectify)
	}
	pool.PutTensor(big)
	pool.PutTensor(cols)
}

// finishRows applies the bias (nil adds nothing) and, when rectify is set,
// the fused magnitude rectification to an OutC×n1 output block. The bias
// lands after the full ascending-tap accumulation — the same single add
// per element as ConvInto — and |s+b| equals a separate rectification pass
// over the biased result, so both variants stay bit-identical to their
// unfused counterparts.
func finishRows(od, bd []float32, outC, n1 int, rectify bool) {
	for co := 0; co < outC; co++ {
		row := od[co*n1 : (co+1)*n1]
		var bv float32
		if bd != nil {
			bv = bd[co]
		}
		switch {
		case rectify:
			for i := range row {
				v := row[i] + bv
				if v < 0 {
					v = -v
				}
				row[i] = v
			}
		case bd != nil:
			for i := range row {
				row[i] += bv
			}
		}
	}
}
