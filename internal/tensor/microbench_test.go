package tensor

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the hot-path kernels, run informationally in CI via
// `make microbench`. Shapes mirror the backbone's real workloads at the
// 600-height operating point.

func benchMatMul(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, m, k)
	y := randTensor(rng, k, n)
	dst := New(m, n)
	b.SetBytes(int64(m*k+k*n+m*n) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMulSmall(b *testing.B)     { benchMatMul(b, 16, 16, 16) }
func BenchmarkMatMulConv1(b *testing.B)     { benchMatMul(b, 8, 9, 144000) }  // conv1 @600
func BenchmarkMatMulConv2(b *testing.B)     { benchMatMul(b, 12, 72, 36000) } // conv2 @600
func BenchmarkMatMulMidSquare(b *testing.B) { benchMatMul(b, 96, 96, 96) }

func BenchmarkMatMulPackedVsSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 12, 72)
	y := randTensor(rng, 72, 36000)
	dst := New(12, 36000)
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matMulPacked(dst, x, y)
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matMulRows(dst, x, y, 0, 12)
		}
	})
}

func BenchmarkIm2Col600(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randTensor(rng, 8, 300, 480)
	dst := New(8*9, 300*480)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(dst, x, 3, 1, 1)
	}
}

func benchConv(b *testing.B, cin, h, w, outC, kernel, stride, pad int) {
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, cin, h, w)
	weight := randTensor(rng, outC, cin, kernel, kernel)
	bias := randTensor(rng, outC)
	ho := ConvOutSize(h, kernel, stride, pad)
	wo := ConvOutSize(w, kernel, stride, pad)
	dst := New(outC, ho, wo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvInto(dst, x, weight, bias, stride, pad)
	}
}

func BenchmarkConvFused1(b *testing.B) { benchConv(b, 1, 600, 960, 8, 3, 2, 1) }  // backbone conv1
func BenchmarkConvFused2(b *testing.B) { benchConv(b, 8, 300, 480, 12, 3, 1, 1) } // backbone conv2

func BenchmarkConvIm2ColPath(b *testing.B) {
	// The historical lowering, for the before/after comparison in README.
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, 8, 300, 480)
	weight := randTensor(rng, 12, 8, 3, 3)
	wm := weight.Reshape(12, 72)
	cols := New(72, 300*480)
	out := New(12, 300*480)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(cols, x, 3, 1, 1)
		MatMulInto(out, wm, cols)
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	p := NewPool()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Get(1 << 16)
		p.Put(buf)
	}
}
