package tensor

import (
	"fmt"

	"adascale/internal/parallel"
)

// parallelThreshold is the approximate multiply-add count above which the
// matrix kernels tile their output rows across workers. Below it, goroutine
// startup and synchronisation dominate the arithmetic; the regressor's tiny
// fully-connected products stay serial while the im2col convolutions of the
// backbone cross the threshold comfortably.
const parallelThreshold = 1 << 18

// rowChunks decides how a kernel with m output rows and flops multiply-adds
// is split: it returns the number of contiguous row chunks to fan out, or 0
// to stay serial. Each output element is always computed by exactly one
// worker in the same inner-loop order as the serial kernel, so the parallel
// result is bit-identical to the serial one for any worker count.
func rowChunks(m int, flops int64) int {
	w := parallel.Workers()
	if w <= 1 || m < 2 || flops < parallelThreshold {
		return 0
	}
	if w > m {
		w = m
	}
	return w
}

// forEachRowChunk runs body over chunks contiguous row ranges of [0, m).
func forEachRowChunk(chunks, m int, body func(i0, i1 int)) {
	if err := parallel.ForEachN(chunks, chunks, func(c int) {
		body(c*m/chunks, (c+1)*m/chunks)
	}); err != nil {
		panic(err)
	}
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor. The inner loop is ordered i-k-j so B is traversed
// row-major, which keeps the kernel cache-friendly without external BLAS.
func MatMul(a, b *Tensor) *Tensor {
	c := New(a.Dim(0), b.Dim(1))
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n and
// is overwritten. It panics on shape mismatch. Large products are row-tiled
// across workers (see rowChunks); output values are identical either way.
func MatMulInto(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D tensors, got %v · %v -> %v", a.shape, b.shape, dst.shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v · %v -> %v", a.shape, b.shape, dst.shape))
	}
	if usePacked(m, k, n) {
		// Large products take the packed cache-blocked kernel; bit-identical
		// to the serial path below (see matmul_packed.go).
		matMulPacked(dst, a, b)
		return
	}
	if chunks := rowChunks(m, int64(m)*int64(k)*int64(n)); chunks > 0 {
		forEachRowChunk(chunks, m, func(i0, i1 int) { matMulRows(dst, a, b, i0, i1) })
		return
	}
	matMulRows(dst, a, b, 0, m)
}

// matMulRows computes rows [i0, i1) of dst = A·B, zeroing them first.
func matMulRows(dst, a, b *Tensor, i0, i1 int) {
	k, n := a.Dim(1), b.Dim(1)
	ad, bd, cd := a.data, b.data, dst.data
	for i := i0 * n; i < i1*n; i++ {
		cd[i] = 0
	}
	for i := i0; i < i1; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulATB computes C = Aᵀ·B for A (k×m) and B (k×n), returning m×n.
// Used in backward passes to avoid materialising explicit transposes.
func MatMulATB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulATB requires 2-D tensors")
	}
	c := New(a.Dim(1), b.Dim(1))
	MatMulATBInto(c, a, b)
	return c
}

// MatMulATBInto computes dst = Aᵀ·B, reusing dst's storage (m×n,
// overwritten). Output values are identical to MatMulATB.
func MatMulATBInto(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulATB requires 2-D tensors")
	}
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulATB shape mismatch %v vs %v -> %v", a.shape, b.shape, dst.shape))
	}
	clear(dst.data)
	if chunks := rowChunks(m, int64(m)*int64(k)*int64(n)); chunks > 0 {
		forEachRowChunk(chunks, m, func(i0, i1 int) { matMulATBRows(dst, a, b, i0, i1) })
		return
	}
	matMulATBRows(dst, a, b, 0, m)
}

// matMulATBRows computes output rows [i0, i1) of C = Aᵀ·B. The p (inner
// dimension) loop stays outermost exactly as in the historical serial
// kernel, so per-element accumulation order is unchanged.
func matMulATBRows(c, a, b *Tensor, i0, i1 int) {
	k, m := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	ad, bd, cd := a.data, b.data, c.data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i := i0; i < i1; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulABT computes C = A·Bᵀ for A (m×k) and B (n×k), returning m×n.
func MatMulABT(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulABT requires 2-D tensors")
	}
	c := New(a.Dim(0), b.Dim(0))
	MatMulABTInto(c, a, b)
	return c
}

// MatMulABTInto computes dst = A·Bᵀ, reusing dst's storage (m×n,
// overwritten). Output values are identical to MatMulABT.
func MatMulABTInto(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic("tensor: MatMulABT requires 2-D tensors")
	}
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulABT shape mismatch %v vs %v -> %v", a.shape, b.shape, dst.shape))
	}
	if chunks := rowChunks(m, int64(m)*int64(k)*int64(n)); chunks > 0 {
		forEachRowChunk(chunks, m, func(i0, i1 int) { matMulABTRows(dst, a, b, i0, i1) })
		return
	}
	matMulABTRows(dst, a, b, 0, m)
}

// matMulABTRows computes rows [i0, i1) of C = A·Bᵀ as plain dot products.
func matMulABTRows(c, a, b *Tensor, i0, i1 int) {
	k := a.Dim(1)
	n := b.Dim(0)
	ad, bd, cd := a.data, b.data, c.data
	for i := i0; i < i1; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	m, n := a.Dim(0), a.Dim(1)
	c := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.data[j*m+i] = a.data[i*n+j]
		}
	}
	return c
}
