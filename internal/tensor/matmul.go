package tensor

import "fmt"

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor. The inner loop is ordered i-k-j so B is traversed
// row-major, which keeps the kernel cache-friendly without external BLAS.
func MatMul(a, b *Tensor) *Tensor {
	c := New(a.Dim(0), b.Dim(1))
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n and
// is overwritten. It panics on shape mismatch.
func MatMulInto(dst, a, b *Tensor) {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D tensors, got %v · %v -> %v", a.shape, b.shape, dst.shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v · %v -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, cd := a.data, b.data, dst.data
	for i := range cd {
		cd[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulATB computes C = Aᵀ·B for A (k×m) and B (k×n), returning m×n.
// Used in backward passes to avoid materialising explicit transposes.
func MatMulATB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulATB requires 2-D tensors")
	}
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATB shape mismatch %v vs %v", a.shape, b.shape))
	}
	c := New(m, n)
	ad, bd, cd := a.data, b.data, c.data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatMulABT computes C = A·Bᵀ for A (m×k) and B (n×k), returning m×n.
func MatMulABT(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulABT requires 2-D tensors")
	}
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulABT shape mismatch %v vs %v", a.shape, b.shape))
	}
	c := New(m, n)
	ad, bd, cd := a.data, b.data, c.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
	return c
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	m, n := a.Dim(0), a.Dim(1)
	c := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.data[j*m+i] = a.data[i*n+j]
		}
	}
	return c
}
