package tensor

import (
	"math"
	"math/rand"
	"testing"

	"adascale/internal/parallel"
)

// The packed matmul and fused conv are only allowed to land because they
// are bit-identical to the serial reference kernels — the conformance
// goldens replay byte-for-byte at workers {1,4}. These property tests pin
// that contract across odd shapes (1×1, tall/skinny, tiles that don't
// divide by the 4×4 micro-kernel) and worker counts.

func randTensorWithZeros(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		// Mix in exact zeros and negatives: zeros exercise the serial
		// kernel's zero-skip, whose removal must stay value-neutral.
		switch rng.Intn(5) {
		case 0:
			d[i] = 0
		default:
			d[i] = float32(rng.NormFloat64())
		}
	}
	return t
}

func bitsEqual(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("%s: length %d, want %d", name, len(gd), len(wd))
	}
	for i := range gd {
		if math.Float32bits(gd[i]) != math.Float32bits(wd[i]) {
			t.Fatalf("%s: element %d = %v (bits %08x), want %v (bits %08x)",
				name, i, gd[i], math.Float32bits(gd[i]), wd[i], math.Float32bits(wd[i]))
		}
	}
}

func TestPackedMatMulBitIdentical(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},      // degenerate
		{4, 4, 4},      // one exact micro-tile
		{37, 3, 5},     // tall/skinny, nothing divides by 4
		{3, 129, 7},    // fewer rows than the micro-tile
		{6, 10, 6},     // partial tiles on both edges
		{5, 64, 130},   // wide with a 2-column remainder panel
		{64, 72, 96},   // above packThreshold: MatMul dispatches packed
		{65, 72, 97},   // above threshold with edge tiles in both dims
		{128, 9, 1920}, // backbone conv1-like shape
	}
	rng := rand.New(rand.NewSource(42))
	for _, s := range shapes {
		a := randTensorWithZeros(rng, s.m, s.k)
		b := randTensorWithZeros(rng, s.k, s.n)

		// Serial reference: the historical kernel, no dispatch.
		want := New(s.m, s.n)
		matMulRows(want, a, b, 0, s.m)

		// Packed kernel invoked directly, regardless of threshold.
		if s.m >= packMR && s.n >= packNR {
			got := New(s.m, s.n)
			matMulPacked(got, a, b)
			bitsEqual(t, "packed", got, want)
		}

		// Public dispatch at workers 1 and 4 (covers both the packed and
		// serial routes depending on size — all must agree bitwise).
		for _, workers := range []int{1, 4} {
			parallel.SetWorkers(workers)
			got := MatMul(a, b)
			parallel.SetWorkers(0)
			bitsEqual(t, "MatMul", got, want)
		}
	}
}

func TestMatMulIntoVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randTensorWithZeros(rng, 9, 13)
	b := randTensorWithZeros(rng, 9, 11) // for ATB: Aᵀ(13×9)·B(9×11)
	c := randTensorWithZeros(rng, 5, 13) // for ABT: a(9×13)·cᵀ(13×5)

	atb := New(13, 11)
	MatMulATBInto(atb, a, b)
	bitsEqual(t, "MatMulATBInto", atb, MatMulATB(a, b))

	abt := New(9, 5)
	MatMulABTInto(abt, a, c)
	bitsEqual(t, "MatMulABTInto", abt, MatMulABT(a, c))
}

// convReference is the historical im2col + matmul + bias path.
func convReference(x, weight, bias *Tensor, stride, pad int) *Tensor {
	outC, cin, kernel := weight.Dim(0), weight.Dim(1), weight.Dim(2)
	ho := ConvOutSize(x.Dim(1), kernel, stride, pad)
	wo := ConvOutSize(x.Dim(2), kernel, stride, pad)
	cols := Im2Col(x, kernel, stride, pad)
	wm := weight.Reshape(outC, cin*kernel*kernel)
	out := New(outC, ho*wo)
	matMulRows(out, wm, cols, 0, outC) // serial reference kernel
	od := out.Data()
	bd := bias.Data()
	n := ho * wo
	for co := 0; co < outC; co++ {
		bv := bd[co]
		row := od[co*n : (co+1)*n]
		for i := range row {
			row[i] += bv
		}
	}
	return out.Reshape(outC, ho, wo)
}

func TestFusedConvBitIdentical(t *testing.T) {
	cases := []struct {
		cin, h, w, outC, kernel, stride, pad int
	}{
		{1, 7, 9, 3, 3, 1, 1},   // same-pad 3×3
		{1, 16, 24, 8, 3, 2, 1}, // backbone conv1 shape family
		{8, 9, 15, 12, 3, 1, 1}, // backbone conv2 family
		{2, 5, 5, 4, 1, 1, 0},   // 1×1 kernel
		{3, 8, 8, 2, 3, 2, 0},   // stride 2, no pad
		{2, 6, 7, 3, 5, 1, 2},   // kernel larger than pad span
		{2, 4, 4, 3, 3, 3, 1},   // stride larger than kernel-1
		{1, 3, 3, 2, 3, 1, 2},   // padding wider than the input edge
	}
	rng := rand.New(rand.NewSource(99))
	for _, c := range cases {
		x := randTensorWithZeros(rng, c.cin, c.h, c.w)
		weight := randTensorWithZeros(rng, c.outC, c.cin, c.kernel, c.kernel)
		bias := randTensorWithZeros(rng, c.outC)
		want := convReference(x, weight, bias, c.stride, c.pad)

		for _, workers := range []int{1, 4} {
			parallel.SetWorkers(workers)
			got := Conv(x, weight, bias, c.stride, c.pad)
			parallel.SetWorkers(0)
			bitsEqual(t, "Conv", got, want)
		}

		// Pooled destination with stale contents must be fully overwritten.
		pool := NewPool()
		dirty := pool.GetTensor(c.outC, want.Dim(1), want.Dim(2))
		for i := range dirty.Data() {
			dirty.Data()[i] = float32(math.NaN())
		}
		ConvInto(dirty, x, weight, bias, c.stride, c.pad)
		bitsEqual(t, "ConvInto pooled", dirty, want)
		pool.PutTensor(dirty)
	}
}

func TestConvNilBias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randTensorWithZeros(rng, 2, 6, 6)
	weight := randTensorWithZeros(rng, 3, 2, 3, 3)
	zero := New(3)
	want := convReference(x, weight, zero, 1, 1)
	got := Conv(x, weight, nil, 1, 1)
	bitsEqual(t, "Conv nil bias", got, want)
}

func TestIm2ColFastPathMatchesReference(t *testing.T) {
	cases := []struct {
		c, h, w, kernel, stride, pad int
	}{
		{1, 5, 5, 3, 1, 1},
		{3, 8, 11, 3, 2, 1},
		{2, 4, 4, 1, 1, 0},
		{2, 6, 9, 5, 1, 2},
		{1, 3, 3, 3, 1, 3}, // pad wider than the input
		{2, 7, 5, 3, 3, 1},
	}
	rng := rand.New(rand.NewSource(11))
	for _, c := range cases {
		x := randTensorWithZeros(rng, c.c, c.h, c.w)
		ho := ConvOutSize(c.h, c.kernel, c.stride, c.pad)
		wo := ConvOutSize(c.w, c.kernel, c.stride, c.pad)

		// Reference: definitional gather, one element at a time.
		want := New(c.c*c.kernel*c.kernel, ho*wo)
		wd := want.Data()
		xd := x.Data()
		for ch := 0; ch < c.c; ch++ {
			for ky := 0; ky < c.kernel; ky++ {
				for kx := 0; kx < c.kernel; kx++ {
					p := (ch*c.kernel+ky)*c.kernel + kx
					for oy := 0; oy < ho; oy++ {
						for ox := 0; ox < wo; ox++ {
							iy := oy*c.stride - c.pad + ky
							ix := ox*c.stride - c.pad + kx
							var v float32
							if iy >= 0 && iy < c.h && ix >= 0 && ix < c.w {
								v = xd[(ch*c.h+iy)*c.w+ix]
							}
							wd[p*ho*wo+oy*wo+ox] = v
						}
					}
				}
			}
		}

		got := Im2Col(x, c.kernel, c.stride, c.pad)
		bitsEqual(t, "Im2Col", got, want)

		// Into with stale destination contents.
		dirty := New(c.c*c.kernel*c.kernel, ho*wo)
		dirty.Fill(float32(math.Inf(1)))
		Im2ColInto(dirty, x, c.kernel, c.stride, c.pad)
		bitsEqual(t, "Im2ColInto stale", dirty, want)
	}
}
