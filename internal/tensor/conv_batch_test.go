package tensor

import (
	"fmt"
	"math/rand"
	"testing"

	"adascale/internal/parallel"
)

// TestConvBatchMatchesConvInto pins the batched kernel bit-identical to N
// sequential fused convolutions across batch sizes, odd spatial shapes and
// matmul worker counts — the foundation of the serving layer's guarantee
// that batching never changes a detection bit.
func TestConvBatchMatchesConvInto(t *testing.T) {
	shapes := []struct {
		c, h, w             int
		outC                int
		kernel, stride, pad int
	}{
		{1, 37, 53, 8, 3, 2, 1},  // conv1-like, odd dims
		{8, 19, 33, 12, 3, 2, 1}, // conv2-like
		{12, 9, 17, 12, 3, 2, 1}, // conv3-like
		{3, 7, 7, 5, 3, 1, 1},    // stride 1
		{2, 11, 5, 4, 5, 2, 2},   // 5×5 kernel
	}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		for _, sh := range shapes {
			for _, n := range []int{1, 2, 7, 16} {
				name := fmt.Sprintf("w%d_c%dx%dx%d_n%d", workers, sh.c, sh.h, sh.w, n)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(sh.c*1000 + n)))
					weight := New(sh.outC, sh.c, sh.kernel, sh.kernel)
					bias := New(sh.outC)
					fillRand(weight, rng)
					fillRand(bias, rng)
					xs := make([]*Tensor, n)
					for i := range xs {
						xs[i] = New(sh.c, sh.h, sh.w)
						fillRand(xs[i], rng)
					}
					ho := ConvOutSize(sh.h, sh.kernel, sh.stride, sh.pad)
					wo := ConvOutSize(sh.w, sh.kernel, sh.stride, sh.pad)
					pool := NewPool()
					batched := make([]*Tensor, n)
					want := make([]*Tensor, n)
					for i := range xs {
						batched[i] = New(sh.outC, ho, wo)
						want[i] = New(sh.outC, ho, wo)
						ConvInto(want[i], xs[i], weight, bias, sh.stride, sh.pad)
					}
					ConvBatchInto(batched, xs, weight, bias, sh.stride, sh.pad, pool)
					for i := range xs {
						gd, wd := batched[i].Data(), want[i].Data()
						for j := range gd {
							if gd[j] != wd[j] {
								t.Fatalf("image %d element %d: batched %v != sequential %v", i, j, gd[j], wd[j])
							}
						}
					}
				})
			}
		}
	}
	parallel.SetWorkers(0)
}

// TestConvBatchNilBiasAndPool covers the optional arguments: a nil bias adds
// nothing and a nil pool falls back to plain allocation.
func TestConvBatchNilBiasAndPool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weight := New(4, 3, 3, 3)
	fillRand(weight, rng)
	xs := make([]*Tensor, 3)
	for i := range xs {
		xs[i] = New(3, 13, 11)
		fillRand(xs[i], rng)
	}
	ho := ConvOutSize(13, 3, 2, 1)
	wo := ConvOutSize(11, 3, 2, 1)
	got := make([]*Tensor, len(xs))
	want := make([]*Tensor, len(xs))
	for i := range xs {
		got[i] = New(4, ho, wo)
		want[i] = New(4, ho, wo)
		ConvInto(want[i], xs[i], weight, nil, 2, 1)
	}
	ConvBatchInto(got, xs, weight, nil, 2, 1, nil)
	for i := range xs {
		gd, wd := got[i].Data(), want[i].Data()
		for j := range gd {
			if gd[j] != wd[j] {
				t.Fatalf("image %d element %d: %v != %v", i, j, gd[j], wd[j])
			}
		}
	}
}

// TestConvBatchBlocking forces the cache-blocked path to split each image
// into several row chunks and checks the chunk boundaries change nothing.
func TestConvBatchBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	weight := New(4, 8, 3, 3)
	bias := New(4)
	fillRand(weight, rng)
	fillRand(bias, rng)
	xs := make([]*Tensor, 3)
	for i := range xs {
		xs[i] = New(8, 123, 123)
		fillRand(xs[i], rng)
	}
	ho := ConvOutSize(123, 3, 2, 1)
	wo := ConvOutSize(123, 3, 2, 1)
	if rowsPer := convBatchChunkFloats / (8 * 9 * wo); rowsPer >= ho {
		t.Fatalf("shape too small to force chunking: %d rows per chunk covers all %d", rowsPer, ho)
	}
	if !usePacked(4, 8*9, ho*wo) {
		t.Fatal("shape too small to take the packed path")
	}
	pool := NewPool()
	got := make([]*Tensor, len(xs))
	want := make([]*Tensor, len(xs))
	for i := range xs {
		got[i] = New(4, ho, wo)
		want[i] = New(4, ho, wo)
		ConvInto(want[i], xs[i], weight, bias, 2, 1)
	}
	ConvBatchInto(got, xs, weight, bias, 2, 1, pool)
	for i := range xs {
		gd, wd := got[i].Data(), want[i].Data()
		for j := range gd {
			if gd[j] != wd[j] {
				t.Fatalf("image %d element %d: %v != %v", i, j, gd[j], wd[j])
			}
		}
	}
}

// TestConvBatchShapeValidation pins the panic contract for malformed input.
func TestConvBatchShapeValidation(t *testing.T) {
	weight := New(4, 3, 3, 3)
	x := New(3, 9, 9)
	y := New(3, 9, 7) // mismatched shape
	out := func() *Tensor { return New(4, ConvOutSize(9, 3, 2, 1), ConvOutSize(9, 3, 2, 1)) }
	cases := map[string]func(){
		"count mismatch": func() { ConvBatchInto([]*Tensor{out()}, []*Tensor{x, x}, weight, nil, 2, 1, nil) },
		"mixed shapes":   func() { ConvBatchInto([]*Tensor{out(), out()}, []*Tensor{x, y}, weight, nil, 2, 1, nil) },
		"bad output":     func() { ConvBatchInto([]*Tensor{New(4, 1, 1)}, []*Tensor{x}, weight, nil, 2, 1, nil) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
