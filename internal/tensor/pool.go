package tensor

import "sync"

// This file is the memory side of the hot-path compute engine: a
// size-classed arena/free-list for float32 buffers so steady-state serving
// allocates near zero in the detect stage. Buffers are recycled by rounded
// power-of-two size class; a Get may return a slice whose backing array is
// larger than requested and whose contents are stale — every consumer in
// this package fully overwrites its buffers (Im2ColInto, MatMulInto,
// ConvInto), which is exactly what makes pooling safe.
//
// Ownership rules (see DESIGN.md §4g):
//
//   - A buffer/tensor obtained from a Pool is owned by the caller until it
//     is returned with Put/PutTensor. Returning it transfers ownership back
//     to the pool; using it afterwards is a use-after-free bug.
//   - Never Put the same buffer twice, and never Put a buffer that is
//     still referenced elsewhere (e.g. a features tensor retained by a
//     training label).
//   - Retaining a pooled tensor forever is safe and merely prevents that
//     one buffer from being recycled — the pool never reclaims by itself.
//   - A Pool is safe for concurrent use, but the intended deployment is
//     one pool per worker (per detector/regressor clone), where Get/Put
//     never contend.
//
// A nil *Pool is valid everywhere and degrades to plain allocation, so
// cold paths and tests need no pool plumbing.

// poolMaxClass bounds the size classes: 1<<poolMaxClass floats (256 MiB of
// float32 at 26) is far above any tensor in the pipeline; larger requests
// bypass the pool entirely.
const poolMaxClass = 26

// poolMaxPerClass bounds retained buffers per class so a burst cannot pin
// unbounded memory; excess Puts are dropped for the GC to collect.
const poolMaxPerClass = 8

// poolMaxHeaders bounds the recycled Tensor headers kept by a pool.
const poolMaxHeaders = 64

// Pool is a size-classed free list of float32 buffers. The zero value is
// ready to use; a nil *Pool is also valid and falls back to make/new (Put
// becomes a no-op), so callers thread pools only where recycling matters.
type Pool struct {
	mu      sync.Mutex
	classes [poolMaxClass + 1][][]float32

	// headers recycles the Tensor structs (and their shape slices)
	// travelling through GetTensor/PutTensor, so a steady-state
	// Get/Put cycle allocates neither storage nor header.
	headers []*Tensor

	gets, hits, puts int64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// sizeClass returns the class index for a request of n floats (smallest c
// with 1<<c >= n), or -1 if n is outside the pooled range.
func sizeClass(n int) int {
	if n <= 0 || n > 1<<poolMaxClass {
		return -1
	}
	c := 0
	for 1<<c < n {
		c++
	}
	return c
}

// Get returns a length-n float32 slice. Contents are unspecified (stale
// data from a previous user); callers must fully overwrite. A nil pool, or
// a request outside the pooled size range, allocates fresh (zeroed).
func (p *Pool) Get(n int) []float32 {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if p == nil || c < 0 {
		return make([]float32, n)
	}
	p.mu.Lock()
	p.gets++
	if l := len(p.classes[c]); l > 0 {
		buf := p.classes[c][l-1]
		p.classes[c][l-1] = nil
		p.classes[c] = p.classes[c][:l-1]
		p.hits++
		p.mu.Unlock()
		return buf[:n]
	}
	p.mu.Unlock()
	return make([]float32, n, 1<<c)
}

// GetZeroed is Get with the returned slice cleared to zero.
func (p *Pool) GetZeroed(n int) []float32 {
	buf := p.Get(n)
	clear(buf)
	return buf
}

// Put returns a buffer to the pool for reuse. The caller must not use buf
// afterwards. Buffers whose capacity is not an exact class size (i.e. not
// obtained from a Pool) and nil pools are accepted and dropped silently.
func (p *Pool) Put(buf []float32) {
	if p == nil || cap(buf) == 0 {
		return
	}
	c := sizeClass(cap(buf))
	if c < 0 || 1<<c != cap(buf) {
		return // not a pool-shaped buffer; let the GC have it
	}
	p.mu.Lock()
	p.puts++
	if len(p.classes[c]) < poolMaxPerClass {
		p.classes[c] = append(p.classes[c], buf[:cap(buf)])
	}
	p.mu.Unlock()
}

// GetTensor returns a tensor with the given shape backed by pooled
// storage. Contents are unspecified; callers must fully overwrite (or use
// GetTensorZeroed). Release with PutTensor.
func (p *Pool) GetTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in pooled shape")
		}
		n *= d
	}
	var t *Tensor
	if p != nil {
		p.mu.Lock()
		if l := len(p.headers); l > 0 {
			t = p.headers[l-1]
			p.headers[l-1] = nil
			p.headers = p.headers[:l-1]
		}
		p.mu.Unlock()
	}
	if t == nil {
		return &Tensor{shape: append([]int(nil), shape...), data: p.Get(n)}
	}
	t.shape = append(t.shape[:0], shape...)
	t.data = p.Get(n)
	return t
}

// GetTensorZeroed is GetTensor with zeroed contents — a drop-in for New.
func (p *Pool) GetTensorZeroed(shape ...int) *Tensor {
	t := p.GetTensor(shape...)
	clear(t.data)
	return t
}

// PutTensor returns a tensor's storage — and the Tensor header itself — to
// the pool. The tensor (and any view sharing its storage) must not be used
// afterwards: the header may be handed out again by the next GetTensor.
func (p *Pool) PutTensor(t *Tensor) {
	if t == nil {
		return
	}
	p.Put(t.data)
	t.data = nil
	if p == nil {
		return
	}
	t.shape = t.shape[:0]
	p.mu.Lock()
	if len(p.headers) < poolMaxHeaders {
		p.headers = append(p.headers, t)
	}
	p.mu.Unlock()
}

// Stats reports cumulative gets, free-list hits and puts — observability
// for tests and the microbenchmarks, not a public contract.
func (p *Pool) Stats() (gets, hits, puts int64) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.hits, p.puts
}
