package tensor

import (
	"math/rand"
	"testing"

	"adascale/internal/parallel"
)

// fillRand populates t with reproducible values, including exact zeros so
// the skip-zero fast path is exercised.
func fillRand(t *Tensor, rng *rand.Rand) {
	d := t.Data()
	for i := range d {
		if rng.Intn(8) == 0 {
			d[i] = 0
			continue
		}
		d[i] = float32(rng.NormFloat64())
	}
}

// TestMatMulParallelMatchesSerial asserts the tiled kernels are
// bit-identical to the serial ones across worker counts and across the
// parallel-threshold boundary.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{3, 5, 7},      // tiny, below threshold
		{8, 9, 10000},  // backbone conv1 shape class
		{8, 144, 700},  // regressor 3x3 branch shape class
		{64, 64, 512},  // above threshold, even split
		{37, 53, 301},  // odd sizes, uneven chunks
		{2, 4096, 64},  // m smaller than workers
		{1, 2048, 512}, // single row: must stay serial
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		b := New(k, n)
		at := New(k, m) // for ATB
		bt := New(n, k) // for ABT
		fillRand(a, rng)
		fillRand(b, rng)
		fillRand(at, rng)
		fillRand(bt, rng)

		parallel.SetWorkers(1)
		ab := MatMul(a, b)
		atb := MatMulATB(at, b)
		abt := MatMulABT(a, bt)

		for _, workers := range []int{2, 4, 7} {
			parallel.SetWorkers(workers)
			check := func(name string, want, got *Tensor) {
				t.Helper()
				if !want.SameShape(got) {
					t.Fatalf("%s %v workers=%d: shape %v vs %v", name, sh, workers, want.Shape(), got.Shape())
				}
				wd, gd := want.Data(), got.Data()
				for i := range wd {
					if wd[i] != gd[i] {
						t.Fatalf("%s %v workers=%d: element %d = %v, want %v (must be bit-identical)",
							name, sh, workers, i, gd[i], wd[i])
					}
				}
			}
			check("MatMul", ab, MatMul(a, b))
			check("MatMulATB", atb, MatMulATB(at, b))
			check("MatMulABT", abt, MatMulABT(a, bt))
		}
		parallel.SetWorkers(0)
	}
}

func TestMatMulIntoParallelOverwritesDst(t *testing.T) {
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(4)
	a := Full(1, 64, 128)
	b := Full(1, 128, 64)
	dst := Full(999, 64, 64)
	MatMulInto(dst, a, b)
	for i, v := range dst.Data() {
		if v != 128 {
			t.Fatalf("dst[%d] = %v, want 128 (stale values not overwritten)", i, v)
		}
	}
}
