// Package tensor provides dense float32 tensors and the numeric kernels
// (elementwise ops, matrix multiplication, im2col) used by the neural
// network framework in internal/nn. Tensors are row-major with an explicit
// shape; all operations are deterministic and allocation behaviour is
// documented per function so hot paths can reuse buffers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array with an explicit shape.
// The zero value is an empty tensor; use New or FromSlice to construct
// useful instances.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// FromSliceInto is FromSlice reusing a caller-owned header: it re-points t
// at data (not copied) with the given shape, recycling t's shape storage,
// and returns t. A nil t allocates a fresh tensor — so a struct-field
// header wired through FromSliceInto makes repeated wrapping allocation-free.
func FromSliceInto(t *Tensor, data []float32, shape ...int) *Tensor {
	if t == nil {
		return FromSlice(data, shape...)
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	t.shape = append(t.shape[:0], shape...)
	t.data = data
	return t
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape covering the same data.
// The element counts must match. The view shares storage with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// offset computes the flat index for the given multi-dimensional index.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong arity for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx...)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx...)] = v }

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

// AddInPlace adds u to t elementwise.
func (t *Tensor) AddInPlace(u *Tensor) {
	t.mustSameShape(u, "AddInPlace")
	for i, v := range u.data {
		t.data[i] += v
	}
}

// SubInPlace subtracts u from t elementwise.
func (t *Tensor) SubInPlace(u *Tensor) {
	t.mustSameShape(u, "SubInPlace")
	for i, v := range u.data {
		t.data[i] -= v
	}
}

// MulInPlace multiplies t by u elementwise (Hadamard product).
func (t *Tensor) MulInPlace(u *Tensor) {
	t.mustSameShape(u, "MulInPlace")
	for i, v := range u.data {
		t.data[i] *= v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScaledInPlace computes t += s*u elementwise (axpy).
func (t *Tensor) AddScaledInPlace(s float32, u *Tensor) {
	t.mustSameShape(u, "AddScaledInPlace")
	for i, v := range u.data {
		t.data[i] += s * v
	}
}

// Add returns t+u as a new tensor.
func Add(t, u *Tensor) *Tensor {
	c := t.Clone()
	c.AddInPlace(u)
	return c
}

// Sum returns the sum of all elements (accumulated in float64 for
// stability).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements; 0 for empty tensors.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// MaxAbs returns the largest absolute element value; 0 for empty tensors.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// RandNormal fills t with samples from N(mean, std²) drawn from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, mean, std float64) {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64()*std + mean)
	}
}

// RandUniform fills t with samples uniform in [lo, hi).
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// HeInit fills t with He-normal initialisation for a layer with the given
// fan-in, the standard choice before ReLU nonlinearities.
func (t *Tensor) HeInit(rng *rand.Rand, fanIn int) {
	if fanIn < 1 {
		fanIn = 1
	}
	t.RandNormal(rng, 0, math.Sqrt(2.0/float64(fanIn)))
}

// XavierInit fills t with Xavier-uniform initialisation.
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	if fanIn < 1 {
		fanIn = 1
	}
	if fanOut < 1 {
		fanOut = 1
	}
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	t.RandUniform(rng, -limit, limit)
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	if t.Size() <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%d elements]", t.shape, t.Size())
}
