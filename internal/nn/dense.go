package nn

import (
	"fmt"
	"math/rand"

	"adascale/internal/tensor"
)

// Dense is a fully-connected layer mapping a length-In vector to a
// length-Out vector: y = W·x + b.
type Dense struct {
	In, Out int
	Weight  *Param // Out × In
	Bias    *Param // Out

	lastX *tensor.Tensor
}

// NewDense creates a Dense layer with Xavier-initialised weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	w := tensor.New(out, in)
	w.XavierInit(rng, in, out)
	return &Dense{
		In: in, Out: out,
		Weight: NewParam("dense.weight", w),
		Bias:   NewParam("dense.bias", tensor.New(out)),
	}
}

// Forward computes W·x + b for a 1-D input of length In.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustDims(x, 1, "Dense")
	if x.Dim(0) != d.In {
		panic(fmt.Sprintf("nn: Dense expects input length %d, got %d", d.In, x.Dim(0)))
	}
	d.lastX = x
	out := tensor.MatMul(d.Weight.W, x.Reshape(d.In, 1))
	y := out.Reshape(d.Out)
	y.AddInPlace(d.Bias.W)
	return y
}

// Backward accumulates dW = dy·xᵀ and db = dy, and returns dx = Wᵀ·dy.
func (d *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if d.lastX == nil {
		panic("nn: Dense.Backward called before Forward")
	}
	dyCol := dy.Reshape(d.Out, 1)
	dw := tensor.MatMulABT(dyCol, d.lastX.Reshape(d.In, 1))
	d.Weight.Grad.AddInPlace(dw)
	d.Bias.Grad.AddInPlace(dy.Reshape(d.Out))
	dx := tensor.MatMulATB(d.Weight.W, dyCol)
	return dx.Reshape(d.In)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// Clone returns an independent deep copy with an empty forward cache.
func (d *Dense) Clone() *Dense {
	return &Dense{In: d.In, Out: d.Out, Weight: d.Weight.Clone(), Bias: d.Bias.Clone()}
}
