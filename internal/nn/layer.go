// Package nn is a small from-scratch neural network framework: layers with
// forward/backward passes, losses, SGD with momentum and step learning-rate
// schedules, and binary weight (de)serialisation. It exists to train the
// AdaScale scale-regressor (the paper's core contribution) for real, on CPU,
// with no dependencies beyond the standard library.
//
// Layers operate on single samples (the paper trains with batch size 2; the
// training loops accumulate gradients across a mini-batch before stepping).
// Layers cache their last input between Forward and Backward and are
// therefore not safe for concurrent use; clone a network per goroutine
// instead.
package nn

import (
	"fmt"

	"adascale/internal/tensor"
)

// Param is a trainable tensor together with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam allocates a parameter and a matching zeroed gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Clone returns a deep copy of the parameter: weights and accumulated
// gradients share no storage with the original, so per-worker network
// clones can train or run independently.
func (p *Param) Clone() *Param {
	return &Param{Name: p.Name, W: p.W.Clone(), Grad: p.Grad.Clone()}
}

// Layer is a differentiable module. Backward must be called after Forward
// with the gradient of the loss w.r.t. the layer output; it accumulates
// parameter gradients (without zeroing them first) and returns the gradient
// w.r.t. the layer input.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(dy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dy through the layers in reverse order.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// CountParams returns the total number of scalar parameters in ps.
func CountParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.W.Size()
	}
	return n
}

func mustDims(x *tensor.Tensor, dims int, layer string) {
	if x.Dims() != dims {
		panic(fmt.Sprintf("nn: %s expects a %d-D input, got shape %v", layer, dims, x.Shape()))
	}
}
