package nn

import "adascale/internal/tensor"

// MaxPool2D is a spatial max-pooling layer over C×H×W inputs with square
// windows and matching stride (the common non-overlapping configuration).
type MaxPool2D struct {
	Size int

	lastC, lastH, lastW int
	argmax              []int
}

// NewMaxPool2D creates a max-pooling layer with the given window size.
func NewMaxPool2D(size int) *MaxPool2D {
	if size < 1 {
		size = 1
	}
	return &MaxPool2D{Size: size}
}

// Forward pools each Size×Size window to its maximum. Trailing rows and
// columns that do not fill a window are dropped (floor semantics).
func (m *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustDims(x, 3, "MaxPool2D")
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	m.lastC, m.lastH, m.lastW = c, h, w
	ho, wo := h/m.Size, w/m.Size
	if ho < 1 {
		ho = 1
	}
	if wo < 1 {
		wo = 1
	}
	out := tensor.New(c, ho, wo)
	if cap(m.argmax) < c*ho*wo {
		m.argmax = make([]int, c*ho*wo)
	}
	m.argmax = m.argmax[:c*ho*wo]
	xd, od := x.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		plane := xd[ch*h*w : (ch+1)*h*w]
		for oy := 0; oy < ho; oy++ {
			for ox := 0; ox < wo; ox++ {
				bestI := (oy * m.Size * w) + ox*m.Size
				best := plane[bestI]
				for ky := 0; ky < m.Size && oy*m.Size+ky < h; ky++ {
					for kx := 0; kx < m.Size && ox*m.Size+kx < w; kx++ {
						i := (oy*m.Size+ky)*w + ox*m.Size + kx
						if plane[i] > best {
							best, bestI = plane[i], i
						}
					}
				}
				oi := (ch*ho+oy)*wo + ox
				od[oi] = best
				m.argmax[oi] = ch*h*w + bestI
			}
		}
	}
	return out
}

// Backward routes each output gradient to the input position that won the
// max.
func (m *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(m.lastC, m.lastH, m.lastW)
	od, dyd := out.Data(), dy.Data()
	for i, src := range m.argmax {
		od[src] += dyd[i]
	}
	return out
}

// Params returns nil; pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// Clone returns a fresh pool of the same window size (caches are per
// instance).
func (m *MaxPool2D) Clone() *MaxPool2D { return NewMaxPool2D(m.Size) }
