package nn

import (
	"math"
	"math/rand"
	"testing"

	"adascale/internal/tensor"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	target := tensor.New(8)
	target.RandNormal(rng, 0, 1)
	p := NewParam("w", tensor.New(8))
	opt := NewAdam(0.05)
	for it := 0; it < 500; it++ {
		p.ZeroGrad()
		for i := range p.Grad.Data() {
			p.Grad.Data()[i] = p.W.Data()[i] - target.Data()[i]
		}
		opt.Step([]*Param{p})
	}
	for i := range p.W.Data() {
		if math.Abs(float64(p.W.Data()[i]-target.Data()[i])) > 1e-2 {
			t.Fatalf("Adam did not converge: %v vs %v", p.W.Data()[i], target.Data()[i])
		}
	}
}

func TestAdamHandlesSparseScaleImbalance(t *testing.T) {
	// Two coordinates with gradients three orders of magnitude apart:
	// Adam's per-parameter normalisation must move both; fixed-LR SGD at
	// the same rate barely moves the small one.
	p := NewParam("w", tensor.FromSlice([]float32{1, 1}, 2))
	opt := NewAdam(0.01)
	for it := 0; it < 200; it++ {
		p.ZeroGrad()
		p.Grad.Data()[0] = 1000 * p.W.Data()[0]
		p.Grad.Data()[1] = 0.001 * p.W.Data()[1]
		opt.Step([]*Param{p})
		if v := p.W.Data()[0]; math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("Adam diverged on the large-gradient coordinate")
		}
	}
	if p.W.Data()[1] > 0.5 {
		t.Fatalf("small-gradient coordinate barely moved: %v", p.W.Data()[1])
	}
}

func TestAdamTrainsNetworkEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewSequential(
		NewConv2D(rng, 1, 4, 3, 1, -1),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(rng, 4, 1),
	)
	opt := NewAdam(0.02)
	var last float64
	for epoch := 0; epoch < 150; epoch++ {
		ZeroGrads(net.Params())
		var total float64
		for b := 0; b < 6; b++ {
			x := tensor.New(1, 5, 5)
			var tgt float32
			if b%2 == 0 {
				x.RandUniform(rng, 0.7, 1)
				tgt = 1
			} else {
				x.RandUniform(rng, 0, 0.3)
				tgt = -1
			}
			y := net.Forward(x)
			loss, grad := MSELoss(y, tensor.FromSlice([]float32{tgt}, 1))
			total += loss
			net.Backward(grad)
		}
		opt.Step(net.Params())
		last = total / 6
	}
	if last > 0.05 {
		t.Fatalf("Adam training failed to converge: final loss %v", last)
	}
}

func TestMaxPool2DForwardBackward(t *testing.T) {
	m := NewMaxPool2D(2)
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	y := m.Forward(x)
	if y.Dim(1) != 2 || y.Dim(2) != 2 {
		t.Fatalf("output shape %v", y.Shape())
	}
	want := []float32{6, 8, 14, 16}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("pool[%d] = %v, want %v", i, v, want[i])
		}
	}
	dx := m.Backward(tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2))
	if dx.At(0, 1, 1) != 1 || dx.At(0, 1, 3) != 2 || dx.At(0, 3, 1) != 3 || dx.At(0, 3, 3) != 4 {
		t.Fatalf("backward routing wrong: %v", dx.Data())
	}
	if dx.Sum() != 10 {
		t.Fatalf("backward must conserve gradient mass, sum %v", dx.Sum())
	}
}

func TestMaxPool2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMaxPool2D(2)
	x := tensor.New(2, 6, 6)
	x.RandNormal(rng, 0, 1)
	gradCheck(t, m, x, rng)
}

func TestMaxPool2DDegenerateSizes(t *testing.T) {
	m := NewMaxPool2D(0) // clamps to 1 (identity)
	if m.Size != 1 {
		t.Fatalf("size = %d", m.Size)
	}
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	y := m.Forward(x)
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatal("size-1 pooling must be identity")
		}
	}
	// Window larger than input still produces one output.
	big := NewMaxPool2D(8)
	out := big.Forward(x)
	if out.Dim(1) != 1 || out.Dim(2) != 1 || out.At(0, 0, 0) != 4 {
		t.Fatalf("oversized window output %v", out)
	}
}
