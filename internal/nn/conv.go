package nn

import (
	"fmt"
	"math/rand"

	"adascale/internal/tensor"
)

// Conv2D is a 2-D convolution over C×H×W inputs with square kernels,
// symmetric zero padding and stride. Implemented as im2col + matmul so the
// same tested kernels serve forward and backward passes.
type Conv2D struct {
	InC, OutC           int
	Kernel, Stride, Pad int

	Weight *Param // OutC × InC × K × K
	Bias   *Param // OutC

	// cached from the last Forward call
	lastCols       *tensor.Tensor
	lastH, lastW   int
	lastHo, lastWo int

	// wm is the OutC × (InC·K·K) view of Weight.W, built once — the
	// reshape shares storage, so weight updates flow through.
	wm *tensor.Tensor
}

// NewConv2D creates a convolution with He-initialised weights and zero
// biases. Pad defaults to "same" for stride 1 when pad < 0.
func NewConv2D(rng *rand.Rand, inC, outC, kernel, stride, pad int) *Conv2D {
	if pad < 0 {
		pad = kernel / 2
	}
	w := tensor.New(outC, inC, kernel, kernel)
	w.HeInit(rng, inC*kernel*kernel)
	return &Conv2D{
		InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad,
		Weight: NewParam(fmt.Sprintf("conv%dx%d.weight", kernel, kernel), w),
		Bias:   NewParam(fmt.Sprintf("conv%dx%d.bias", kernel, kernel), tensor.New(outC)),
	}
}

// Forward computes the convolution of a C×H×W input.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustDims(x, 3, "Conv2D")
	if x.Dim(0) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d input channels, got %d", c.InC, x.Dim(0)))
	}
	h, w := x.Dim(1), x.Dim(2)
	ho := tensor.ConvOutSize(h, c.Kernel, c.Stride, c.Pad)
	wo := tensor.ConvOutSize(w, c.Kernel, c.Stride, c.Pad)
	// Reuse the im2col scratch across calls when the spatial size repeats
	// (the training loop presents same-sized feature maps every step).
	cols := c.lastCols
	if cols == nil || cols.Dim(0) != c.InC*c.Kernel*c.Kernel || cols.Dim(1) != ho*wo {
		cols = tensor.New(c.InC*c.Kernel*c.Kernel, ho*wo)
	}
	tensor.Im2ColInto(cols, x, c.Kernel, c.Stride, c.Pad)
	out := tensor.MatMul(c.weightMatrix(), cols) // OutC × (Ho·Wo)
	od := out.Data()
	bd := c.Bias.W.Data()
	n := ho * wo
	for co := 0; co < c.OutC; co++ {
		b := bd[co]
		row := od[co*n : (co+1)*n]
		for i := range row {
			row[i] += b
		}
	}
	c.lastCols, c.lastH, c.lastW, c.lastHo, c.lastWo = cols, h, w, ho, wo
	return out.Reshape(c.OutC, ho, wo)
}

// Infer computes the convolution through the fused im2col-free kernel
// into pooled storage, which the caller owns (release via pool.Put).
// Results are bit-identical to Forward. Unlike Forward it touches no
// activation caches, so concurrent Infer calls on a shared layer are safe;
// it cannot be followed by Backward.
func (c *Conv2D) Infer(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	mustDims(x, 3, "Conv2D")
	if x.Dim(0) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d input channels, got %d", c.InC, x.Dim(0)))
	}
	ho := tensor.ConvOutSize(x.Dim(1), c.Kernel, c.Stride, c.Pad)
	wo := tensor.ConvOutSize(x.Dim(2), c.Kernel, c.Stride, c.Pad)
	out := pool.GetTensor(c.OutC, ho, wo)
	tensor.ConvInto(out, x, c.Weight.W, c.Bias.W, c.Stride, c.Pad)
	return out
}

// InferBatch computes the convolution of a batch of same-shape inputs
// through the N-stacked im2col + matmul kernel (tensor.ConvBatchInto) into
// pooled storage, which the caller owns (release via pool.PutTensor).
// Results are bit-identical to calling Infer per image; like Infer it
// touches no activation caches, so concurrent InferBatch calls on a shared
// layer are safe, and it cannot be followed by Backward.
func (c *Conv2D) InferBatch(xs []*tensor.Tensor, pool *tensor.Pool) []*tensor.Tensor {
	if len(xs) == 0 {
		return nil
	}
	if xs[0].Dim(0) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d input channels, got %d", c.InC, xs[0].Dim(0)))
	}
	ho := tensor.ConvOutSize(xs[0].Dim(1), c.Kernel, c.Stride, c.Pad)
	wo := tensor.ConvOutSize(xs[0].Dim(2), c.Kernel, c.Stride, c.Pad)
	outs := make([]*tensor.Tensor, len(xs))
	for i := range outs {
		outs[i] = pool.GetTensor(c.OutC, ho, wo)
	}
	tensor.ConvBatchInto(outs, xs, c.Weight.W, c.Bias.W, c.Stride, c.Pad, pool)
	return outs
}

// InferBatchAbs is InferBatch with the backbone's magnitude nonlinearity
// |·| fused into the kernel's output pass (tensor.ConvBatchAbsInto) —
// bit-identical to InferBatch followed by an elementwise |·| sweep, one
// memory pass cheaper per layer.
func (c *Conv2D) InferBatchAbs(xs []*tensor.Tensor, pool *tensor.Pool) []*tensor.Tensor {
	if len(xs) == 0 {
		return nil
	}
	if xs[0].Dim(0) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d input channels, got %d", c.InC, xs[0].Dim(0)))
	}
	ho := tensor.ConvOutSize(xs[0].Dim(1), c.Kernel, c.Stride, c.Pad)
	wo := tensor.ConvOutSize(xs[0].Dim(2), c.Kernel, c.Stride, c.Pad)
	outs := make([]*tensor.Tensor, len(xs))
	for i := range outs {
		outs[i] = pool.GetTensor(c.OutC, ho, wo)
	}
	tensor.ConvBatchAbsInto(outs, xs, c.Weight.W, c.Bias.W, c.Stride, c.Pad, pool)
	return outs
}

// weightMatrix returns the cached 2-D view of the weights.
func (c *Conv2D) weightMatrix() *tensor.Tensor {
	if c.wm == nil {
		c.wm = c.Weight.W.Reshape(c.OutC, c.InC*c.Kernel*c.Kernel)
	}
	return c.wm
}

// Backward accumulates weight/bias gradients and returns dL/dx.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic("nn: Conv2D.Backward called before Forward")
	}
	n := c.lastHo * c.lastWo
	dym := dy.Reshape(c.OutC, n)

	// dW = dy · colsᵀ
	dw := tensor.MatMulABT(dym, c.lastCols)
	c.Weight.Grad.AddInPlace(dw.Reshape(c.Weight.W.Shape()...))

	// db = row sums of dy
	bd := c.Bias.Grad.Data()
	dyd := dym.Data()
	for co := 0; co < c.OutC; co++ {
		var s float32
		for _, v := range dyd[co*n : (co+1)*n] {
			s += v
		}
		bd[co] += s
	}

	// dx = Col2Im(Wᵀ · dy)
	dcols := tensor.MatMulATB(c.weightMatrix(), dym)
	return tensor.Col2Im(dcols, c.InC, c.lastH, c.lastW, c.Kernel, c.Stride, c.Pad)
}

// Params returns the weight and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Clone returns an independent deep copy with empty forward caches. Layers
// cache activations between Forward and Backward and are not safe for
// concurrent use; the parallel pipeline gives each worker its own clone.
func (c *Conv2D) Clone() *Conv2D {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, Kernel: c.Kernel, Stride: c.Stride, Pad: c.Pad,
		Weight: c.Weight.Clone(),
		Bias:   c.Bias.Clone(),
	}
}
