package nn

import "adascale/internal/tensor"

// SGD implements stochastic gradient descent with classical momentum and
// optional L2 weight decay, matching the optimiser used by the paper's
// MXNet training recipe.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD creates an optimiser with the given base learning rate and
// momentum 0.9, the Fast R-CNN / R-FCN default.
func NewSGD(lr float64) *SGD {
	return &SGD{LR: lr, Momentum: 0.9, velocity: make(map[*Param]*tensor.Tensor)}
}

// Step applies one update to every parameter from its accumulated gradient,
// then leaves the gradients untouched (call ZeroGrads before the next
// accumulation).
func (s *SGD) Step(params []*Param) {
	lr := float32(s.LR)
	mom := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.W.Shape()...)
			s.velocity[p] = v
		}
		vd, gd, wdta := v.Data(), p.Grad.Data(), p.W.Data()
		for i := range wdta {
			g := gd[i]
			if wd != 0 {
				g += wd * wdta[i]
			}
			vd[i] = mom*vd[i] - lr*g
			wdta[i] += vd[i]
		}
	}
}

// StepSchedule is a piecewise-constant learning-rate schedule: the base
// rate is divided by Factor at each listed fraction of total training
// progress. The paper divides by 10 after 1.3/2 epochs for the regressor
// and after 1.3 and 2.6 of 4 epochs for detector fine-tuning.
type StepSchedule struct {
	Base   float64
	Drops  []float64 // progress fractions in [0,1] at which LR /= Factor
	Factor float64   // divisor applied at each drop (default 10)
}

// LR returns the learning rate at the given progress fraction in [0,1].
func (s StepSchedule) LR(progress float64) float64 {
	f := s.Factor
	if f == 0 {
		f = 10
	}
	lr := s.Base
	for _, d := range s.Drops {
		if progress >= d {
			lr /= f
		}
	}
	return lr
}
