package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// weightsMagic identifies the serialised weight format; bump the trailing
// digit on incompatible changes.
const weightsMagic = "ADASCALE-NN-1\n"

// SaveParams serialises parameters to w: magic, count, then for each
// parameter its name, shape and raw float32 data, all little-endian.
func SaveParams(w io.Writer, params []*Param) error {
	if _, err := io.WriteString(w, weightsMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(w, p.Name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		data := p.W.Data()
		buf := make([]byte, 4*len(data))
		for i, v := range data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadParams reads weights written by SaveParams into params, matching by
// position. Names and shapes must agree with the targets.
func LoadParams(r io.Reader, params []*Param) error {
	magic := make([]byte, len(weightsMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(magic) != weightsMagic {
		return fmt.Errorf("nn: bad weights magic %q", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: weight file has %d params, expected %d", count, len(params))
	}
	for _, p := range params {
		name, err := readString(r)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("nn: weight name %q does not match parameter %q", name, p.Name)
		}
		var ndim uint32
		if err := binary.Read(r, binary.LittleEndian, &ndim); err != nil {
			return err
		}
		shape := p.W.Shape()
		if int(ndim) != len(shape) {
			return fmt.Errorf("nn: param %q has %d dims on disk, expected %d", name, ndim, len(shape))
		}
		for i := range shape {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != shape[i] {
				return fmt.Errorf("nn: param %q dim %d is %d on disk, expected %d", name, i, d, shape[i])
			}
		}
		data := p.W.Data()
		buf := make([]byte, 4*len(data))
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("nn: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
