package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adascale/internal/tensor"
)

// projLoss is a deterministic scalar loss L = Σ r⊙y over the layer output,
// whose gradient w.r.t. y is simply r. Used to drive finite-difference
// gradient checks.
func projLoss(y, r *tensor.Tensor) float64 {
	var s float64
	yd, rd := y.Data(), r.Data()
	for i := range yd {
		s += float64(yd[i]) * float64(rd[i])
	}
	return s
}

// gradCheck verifies analytic input and parameter gradients of layer
// against central finite differences.
func gradCheck(t *testing.T, layer Layer, x *tensor.Tensor, rng *rand.Rand) {
	t.Helper()
	y := layer.Forward(x)
	r := tensor.New(y.Shape()...)
	r.RandNormal(rng, 0, 1)
	ZeroGrads(layer.Params())
	dx := layer.Backward(r)

	const eps = 1e-2
	const tol = 2e-2

	check := func(name string, w *tensor.Tensor, analytic *tensor.Tensor) {
		for _, idx := range sampleIndices(rng, w.Size(), 12) {
			orig := w.Data()[idx]
			w.Data()[idx] = orig + eps
			lp := projLoss(layer.Forward(x), r)
			w.Data()[idx] = orig - eps
			lm := projLoss(layer.Forward(x), r)
			w.Data()[idx] = orig
			fd := (lp - lm) / (2 * eps)
			an := float64(analytic.Data()[idx])
			if math.Abs(fd-an) > tol*(1+math.Abs(fd)) {
				t.Fatalf("%s grad[%d]: analytic %v vs finite-diff %v", name, idx, an, fd)
			}
		}
	}
	check("input", x, dx)
	for _, p := range layer.Params() {
		check(p.Name, p.W, p.Grad)
	}
	// Restore caches for any subsequent use.
	layer.Forward(x)
}

func sampleIndices(rng *rand.Rand, n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := map[int]bool{}
	var out []int
	for len(out) < k {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, kernel := range []int{1, 3, 5} {
		conv := NewConv2D(rng, 3, 4, kernel, 1, -1)
		x := tensor.New(3, 7, 6)
		x.RandNormal(rng, 0, 1)
		gradCheck(t, conv, x, rng)
	}
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	conv := NewConv2D(rng, 2, 3, 3, 2, 1)
	x := tensor.New(2, 9, 8)
	x.RandNormal(rng, 0, 1)
	gradCheck(t, conv, x, rng)
}

func TestConv2DOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	conv := NewConv2D(rng, 3, 8, 3, 1, -1)
	y := conv.Forward(tensor.New(3, 10, 14))
	if y.Dim(0) != 8 || y.Dim(1) != 10 || y.Dim(2) != 14 {
		t.Fatalf("same-pad conv output shape %v", y.Shape())
	}
}

func TestConv2DBiasApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	conv := NewConv2D(rng, 1, 2, 1, 1, 0)
	conv.Weight.W.Zero()
	conv.Bias.W.Set(1.5, 0)
	conv.Bias.W.Set(-2, 1)
	y := conv.Forward(tensor.Full(3, 1, 2, 2))
	if y.At(0, 0, 0) != 1.5 || y.At(1, 1, 1) != -2 {
		t.Fatalf("bias not applied: %v", y.Data())
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := NewDense(rng, 2, 2)
	copy(d.Weight.W.Data(), []float32{1, 2, 3, 4})
	copy(d.Bias.W.Data(), []float32{0.5, -0.5})
	y := d.Forward(tensor.FromSlice([]float32{1, 1}, 2))
	if y.At(0) != 3.5 || y.At(1) != 6.5 {
		t.Fatalf("Dense forward = %v", y.Data())
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	d := NewDense(rng, 6, 4)
	x := tensor.New(6)
	x.RandNormal(rng, 0, 1)
	gradCheck(t, d, x, rng)
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	y := r.Forward(x)
	if y.At(0) != 0 || y.At(1) != 0 || y.At(2) != 2 {
		t.Fatalf("ReLU forward = %v", y.Data())
	}
	dy := tensor.FromSlice([]float32{5, 5, 5}, 3)
	dx := r.Backward(dy)
	if dx.At(0) != 0 || dx.At(1) != 0 || dx.At(2) != 5 {
		t.Fatalf("ReLU backward = %v", dx.Data())
	}
}

func TestTanhGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	layer := NewTanh()
	x := tensor.New(5)
	x.RandNormal(rng, 0, 1)
	gradCheck(t, layer, x, rng)
}

func TestTanhSaturation(t *testing.T) {
	layer := NewTanh()
	y := layer.Forward(tensor.FromSlice([]float32{100, -100, 0}, 3))
	if y.At(0) != 1 || y.At(1) != -1 || y.At(2) != 0 {
		t.Fatalf("Tanh saturation = %v", y.Data())
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := NewGlobalAvgPool()
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 10, 10, 10}, 2, 2, 2)
	y := g.Forward(x)
	if y.At(0) != 2.5 || y.At(1) != 10 {
		t.Fatalf("avg pool = %v", y.Data())
	}
	dx := g.Backward(tensor.FromSlice([]float32{4, 8}, 2))
	if dx.At(0, 0, 0) != 1 || dx.At(1, 1, 1) != 2 {
		t.Fatalf("avg pool backward = %v", dx.Data())
	}
}

func TestGlobalMaxPool(t *testing.T) {
	g := NewGlobalMaxPool()
	x := tensor.FromSlice([]float32{1, 7, 3, 4, -1, -2, -3, -9}, 2, 2, 2)
	y := g.Forward(x)
	if y.At(0) != 7 || y.At(1) != -1 {
		t.Fatalf("max pool = %v", y.Data())
	}
	dx := g.Backward(tensor.FromSlice([]float32{1, 1}, 2))
	if dx.At(0, 0, 1) != 1 || dx.At(1, 0, 0) != 1 {
		t.Fatalf("max pool backward = %v", dx.Data())
	}
	if dx.Sum() != 2 {
		t.Fatalf("max pool backward should route exactly the incoming mass, sum=%v", dx.Sum())
	}
}

func TestSequentialComposesAndBackprops(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := NewSequential(
		NewConv2D(rng, 1, 2, 3, 1, -1),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(rng, 2, 1),
	)
	x := tensor.New(1, 6, 6)
	x.RandNormal(rng, 0, 1)
	y := net.Forward(x)
	if y.Dims() != 1 || y.Dim(0) != 1 {
		t.Fatalf("output shape %v", y.Shape())
	}
	if got := CountParams(net.Params()); got != 1*2*3*3+2+2+1 {
		t.Fatalf("CountParams = %d", got)
	}
	gradCheck(t, net, x, rng)
}

func TestMSELossValueAndGrad(t *testing.T) {
	pred := tensor.FromSlice([]float32{2, 0}, 2)
	target := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-1) > 1e-9 { // ½·(4+0)/2
		t.Fatalf("MSE loss = %v, want 1", loss)
	}
	if grad.At(0) != 1 || grad.At(1) != 0 {
		t.Fatalf("MSE grad = %v", grad.Data())
	}
}

func TestSmoothL1(t *testing.T) {
	if got := SmoothL1Scalar(0.5); got != 0.125 {
		t.Fatalf("SmoothL1(0.5) = %v", got)
	}
	if got := SmoothL1Scalar(-2); got != 1.5 {
		t.Fatalf("SmoothL1(-2) = %v", got)
	}
	if got := SmoothL1Scalar(1); got != 0.5 {
		t.Fatalf("SmoothL1(1) = %v (continuity point)", got)
	}
	p := tensor.FromSlice([]float32{1, 3}, 2)
	q := tensor.FromSlice([]float32{1, 0}, 2)
	if got := SmoothL1(p, q); got != 2.5 {
		t.Fatalf("SmoothL1 tensor = %v", got)
	}
}

// Property: softmax output is a probability simplex point.
func TestSoftmaxIsDistribution(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 500 {
				return true // skip pathological inputs
			}
		}
		p := Softmax([]float64{a, b, c})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEntropyClampsZero(t *testing.T) {
	v := CrossEntropy([]float64{0, 1}, 0)
	if math.IsInf(v, 0) || v <= 0 {
		t.Fatalf("CrossEntropy(0) = %v, want large finite positive", v)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimise f(w) = ½‖w - w*‖² with gradient w - w*.
	rng := rand.New(rand.NewSource(18))
	target := tensor.New(8)
	target.RandNormal(rng, 0, 1)
	p := NewParam("w", tensor.New(8))
	opt := NewSGD(0.1)
	for it := 0; it < 300; it++ {
		p.ZeroGrad()
		for i := range p.Grad.Data() {
			p.Grad.Data()[i] = p.W.Data()[i] - target.Data()[i]
		}
		opt.Step([]*Param{p})
	}
	for i := range p.W.Data() {
		if math.Abs(float64(p.W.Data()[i]-target.Data()[i])) > 1e-3 {
			t.Fatalf("SGD did not converge: %v vs %v", p.W.Data(), target.Data())
		}
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := NewParam("w", tensor.Full(1, 1))
	opt := NewSGD(0.1)
	opt.Momentum = 0
	opt.WeightDecay = 1
	p.ZeroGrad()
	opt.Step([]*Param{p})
	if p.W.At(0) >= 1 {
		t.Fatal("weight decay should shrink the weight with zero gradient")
	}
}

func TestStepSchedule(t *testing.T) {
	// Regressor recipe: base 1e-4, ÷10 after 1.3 of 2 epochs (fraction 0.65).
	s := StepSchedule{Base: 1e-4, Drops: []float64{0.65}}
	if got := s.LR(0); got != 1e-4 {
		t.Fatalf("LR(0) = %v", got)
	}
	if got := s.LR(0.64); got != 1e-4 {
		t.Fatalf("LR(0.64) = %v", got)
	}
	if got := s.LR(0.65); math.Abs(got-1e-5) > 1e-12 {
		t.Fatalf("LR(0.65) = %v", got)
	}
	two := StepSchedule{Base: 2.5e-4, Drops: []float64{0.325, 0.65}}
	if got := two.LR(1); math.Abs(got-2.5e-6) > 1e-15 {
		t.Fatalf("double drop LR = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewSequential(NewConv2D(rng, 2, 3, 3, 1, -1), NewDense(rng, 3, 1))
	var buf bytes.Buffer
	if err := SaveParams(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	net2 := NewSequential(NewConv2D(rng, 2, 3, 3, 1, -1), NewDense(rng, 3, 1))
	if err := LoadParams(&buf, net2.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Params() {
		q := net2.Params()[i]
		for j := range p.W.Data() {
			if p.W.Data()[j] != q.W.Data()[j] {
				t.Fatalf("param %s differs after round trip", p.Name)
			}
		}
	}
}

func TestLoadRejectsMismatchedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := NewDense(rng, 4, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	b := NewDense(rng, 5, 2)
	if err := LoadParams(&buf, b.Params()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := NewDense(rng, 2, 2)
	if err := LoadParams(bytes.NewReader([]byte("NOT-A-WEIGHT-FILE")), d.Params()); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	conv := NewConv2D(rng, 1, 1, 3, 1, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	conv.Backward(tensor.New(1, 3, 3))
}

// Integration: a tiny network can fit a simple nonlinear function, proving
// the full forward/backward/step loop learns.
func TestEndToEndLearning(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := NewSequential(
		NewConv2D(rng, 1, 4, 3, 1, -1),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(rng, 4, 1),
		NewTanh(),
	)
	// Target: bright images → +0.8, dark images → -0.8.
	sample := func(bright bool) (*tensor.Tensor, float32) {
		x := tensor.New(1, 5, 5)
		if bright {
			x.RandUniform(rng, 0.7, 1)
			return x, 0.8
		}
		x.RandUniform(rng, 0, 0.3)
		return x, -0.8
	}
	opt := NewSGD(0.05)
	var last float64
	for epoch := 0; epoch < 200; epoch++ {
		ZeroGrads(net.Params())
		var total float64
		for b := 0; b < 8; b++ {
			x, tgt := sample(b%2 == 0)
			y := net.Forward(x)
			loss, grad := MSELoss(y, tensor.FromSlice([]float32{tgt}, 1))
			total += loss
			net.Backward(grad)
		}
		opt.Step(net.Params())
		last = total / 8
	}
	if last > 0.02 {
		t.Fatalf("network failed to learn: final loss %v", last)
	}
}
