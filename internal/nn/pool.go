package nn

import "adascale/internal/tensor"

// GlobalAvgPool reduces a C×H×W tensor to a length-C vector by averaging
// each channel plane. The paper's Fig. 4 regressor uses global pooling as a
// "voting" stage over spatial positions, which also makes the module
// input-size agnostic — required because AdaScale feeds it feature maps
// from images at arbitrary scales.
type GlobalAvgPool struct {
	lastH, lastW int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages each channel plane.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustDims(x, 3, "GlobalAvgPool")
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	g.lastH, g.lastW = h, w
	out := tensor.New(c)
	xd, od := x.Data(), out.Data()
	n := h * w
	inv := 1 / float32(n)
	for ch := 0; ch < c; ch++ {
		var s float32
		for _, v := range xd[ch*n : (ch+1)*n] {
			s += v
		}
		od[ch] = s * inv
	}
	return out
}

// Backward spreads each channel gradient uniformly over its plane.
func (g *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	c := dy.Dim(0)
	n := g.lastH * g.lastW
	out := tensor.New(c, g.lastH, g.lastW)
	od, dyd := out.Data(), dy.Data()
	inv := 1 / float32(n)
	for ch := 0; ch < c; ch++ {
		v := dyd[ch] * inv
		row := od[ch*n : (ch+1)*n]
		for i := range row {
			row[i] = v
		}
	}
	return out
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Clone returns a fresh pool (the spatial-size cache is per instance).
func (g *GlobalAvgPool) Clone() *GlobalAvgPool { return NewGlobalAvgPool() }

// GlobalMaxPool reduces a C×H×W tensor to a length-C vector by taking the
// maximum of each channel plane.
type GlobalMaxPool struct {
	lastH, lastW int
	argmax       []int
}

// NewGlobalMaxPool returns a global max pooling layer.
func NewGlobalMaxPool() *GlobalMaxPool { return &GlobalMaxPool{} }

// Forward takes the per-channel maximum and records argmax positions.
func (g *GlobalMaxPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustDims(x, 3, "GlobalMaxPool")
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	g.lastH, g.lastW = h, w
	if cap(g.argmax) < c {
		g.argmax = make([]int, c)
	}
	g.argmax = g.argmax[:c]
	out := tensor.New(c)
	xd, od := x.Data(), out.Data()
	n := h * w
	for ch := 0; ch < c; ch++ {
		plane := xd[ch*n : (ch+1)*n]
		best, bestI := plane[0], 0
		for i, v := range plane {
			if v > best {
				best, bestI = v, i
			}
		}
		od[ch] = best
		g.argmax[ch] = bestI
	}
	return out
}

// Backward routes each channel gradient to its argmax position.
func (g *GlobalMaxPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	c := dy.Dim(0)
	n := g.lastH * g.lastW
	out := tensor.New(c, g.lastH, g.lastW)
	od, dyd := out.Data(), dy.Data()
	for ch := 0; ch < c; ch++ {
		od[ch*n+g.argmax[ch]] = dyd[ch]
	}
	return out
}

// Params returns nil; pooling has no parameters.
func (g *GlobalMaxPool) Params() []*Param { return nil }

// Clone returns a fresh pool (the argmax cache is per instance).
func (g *GlobalMaxPool) Clone() *GlobalMaxPool { return NewGlobalMaxPool() }
