package nn

import "adascale/internal/tensor"

// ReLU applies max(0, x) elementwise. Shape-preserving.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies the rectifier and records the active mask for Backward.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	if cap(r.mask) < len(d) {
		r.mask = make([]bool, len(d))
	}
	r.mask = r.mask[:len(d)]
	for i, v := range d {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			d[i] = 0
		}
	}
	return out
}

// Backward zeroes gradient entries where the input was non-positive.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	out := dy.Clone()
	d := out.Data()
	if len(r.mask) != len(d) {
		panic("nn: ReLU.Backward shape does not match last Forward")
	}
	for i := range d {
		if !r.mask[i] {
			d[i] = 0
		}
	}
	return out
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Clone returns a fresh ReLU (the active-mask cache is per instance).
func (r *ReLU) Clone() *ReLU { return NewReLU() }

// Tanh applies the hyperbolic tangent elementwise. The AdaScale regressor
// target is a normalised relative scale in [-1, 1] (Eq. 3), so a Tanh output
// head keeps predictions in range by construction.
type Tanh struct {
	lastY *tensor.Tensor
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh elementwise.
func (t *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = tanh32(v)
	}
	t.lastY = out
	return out
}

// Backward multiplies by 1 - y².
func (t *Tanh) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if t.lastY == nil {
		panic("nn: Tanh.Backward called before Forward")
	}
	out := dy.Clone()
	d := out.Data()
	yd := t.lastY.Data()
	for i := range d {
		d[i] *= 1 - yd[i]*yd[i]
	}
	return out
}

// Params returns nil; Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Clone returns a fresh Tanh (the last-output cache is per instance).
func (t *Tanh) Clone() *Tanh { return NewTanh() }

func tanh32(x float32) float32 {
	// Clamp to avoid overflow in exp; tanh saturates well before ±20.
	if x > 20 {
		return 1
	}
	if x < -20 {
		return -1
	}
	e2 := exp32(2 * x)
	return (e2 - 1) / (e2 + 1)
}
