package nn

import (
	"math"

	"adascale/internal/tensor"
)

// Adam implements the Adam optimiser (Kingma & Ba, 2015). The paper's
// recipe uses SGD with momentum; Adam is provided for downstream users of
// the framework who train the regressor on their own feature scales, where
// its per-parameter step sizes remove the learning-rate sweep.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	step int
	m, v map[*Param]*tensor.Tensor
}

// NewAdam creates an Adam optimiser with the standard defaults
// (β1 = 0.9, β2 = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: make(map[*Param]*tensor.Tensor),
		v: make(map[*Param]*tensor.Tensor),
	}
}

// Step applies one bias-corrected Adam update from the accumulated
// gradients (call ZeroGrads before the next accumulation).
func (a *Adam) Step(params []*Param) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.W.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.W.Shape()...)
		}
		v := a.v[p]
		md, vd, gd, wd := m.Data(), v.Data(), p.Grad.Data(), p.W.Data()
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		for i := range wd {
			g := gd[i]
			md[i] = b1*md[i] + (1-b1)*g
			vd[i] = b2*vd[i] + (1-b2)*g*g
			mHat := float64(md[i]) / c1
			vHat := float64(vd[i]) / c2
			wd[i] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon))
		}
	}
}
