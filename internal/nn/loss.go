package nn

import (
	"math"

	"adascale/internal/tensor"
)

func exp32(x float32) float32 { return float32(math.Exp(float64(x))) }

// MSELoss returns ½·mean((pred-target)²) and dL/dpred. The ½ factor keeps
// the gradient simply (pred-target)/n. Both tensors must share a shape.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic("nn: MSELoss shape mismatch")
	}
	n := pred.Size()
	grad := tensor.New(pred.Shape()...)
	gd, pd, td := grad.Data(), pred.Data(), target.Data()
	var loss float64
	inv := 1 / float32(n)
	for i := range pd {
		d := pd[i] - td[i]
		loss += 0.5 * float64(d) * float64(d)
		gd[i] = d * inv
	}
	return loss / float64(n), grad
}

// SmoothL1 computes the Huber-style smooth-L1 loss used for bounding-box
// regression in Fast R-CNN and R-FCN:
//
//	0.5·x²        if |x| < 1
//	|x| - 0.5     otherwise
//
// summed over the elements of pred-target.
func SmoothL1(pred, target *tensor.Tensor) float64 {
	if !pred.SameShape(target) {
		panic("nn: SmoothL1 shape mismatch")
	}
	pd, td := pred.Data(), target.Data()
	var loss float64
	for i := range pd {
		loss += SmoothL1Scalar(float64(pd[i]) - float64(td[i]))
	}
	return loss
}

// SmoothL1Scalar is the scalar smooth-L1 function.
func SmoothL1Scalar(x float64) float64 {
	if x < 0 {
		x = -x
	}
	if x < 1 {
		return 0.5 * x * x
	}
	return x - 0.5
}

// CrossEntropy returns -log p[label] for a probability vector p, clamping
// probabilities to avoid infinities. Used by the optimal-scale metric to
// score classification confidence (Eq. 1's L_cls term).
func CrossEntropy(p []float64, label int) float64 {
	q := p[label]
	if q < 1e-12 {
		q = 1e-12
	}
	return -math.Log(q)
}

// Softmax returns the softmax of logits in a numerically stable way.
func Softmax(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
