// Package raster provides grayscale float32 images plus the operations the
// AdaScale pipeline needs: bilinear resize following the Fast R-CNN
// protocol (shortest side = scale, longest side capped), primitive drawing
// with per-class texture patterns for the synthetic video renderer, additive
// noise, and box blur used to model motion blur and camera-focus failure.
package raster

import (
	"fmt"
	"math"
	"math/rand"
)

// Image is a grayscale image with float32 pixels, nominally in [0, 1],
// stored row-major.
type Image struct {
	W, H int
	Pix  []float32
}

// New returns a zero (black) image of the given size.
func New(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("raster: negative image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads return 0.
func (im *Image) At(x, y int) float32 {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v float32) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Fill sets every pixel to v.
func (im *Image) Fill(v float32) {
	for i := range im.Pix {
		im.Pix[i] = v
	}
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := New(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Mean returns the average pixel value; 0 for empty images.
func (im *Image) Mean() float64 {
	if len(im.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range im.Pix {
		s += float64(v)
	}
	return s / float64(len(im.Pix))
}

// Shortest returns the length of the shorter image side — the paper's
// definition of "scale".
func (im *Image) Shortest() int {
	if im.W < im.H {
		return im.W
	}
	return im.H
}

// Longest returns the length of the longer image side.
func (im *Image) Longest() int {
	if im.W > im.H {
		return im.W
	}
	return im.H
}

// ResizeBilinear resizes to exactly newW×newH with bilinear sampling.
func (im *Image) ResizeBilinear(newW, newH int) *Image {
	out := New(newW, newH)
	if newW == 0 || newH == 0 || im.W == 0 || im.H == 0 {
		return out
	}
	sx := float64(im.W) / float64(newW)
	sy := float64(im.H) / float64(newH)
	for y := 0; y < newH; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(math.Floor(fy))
		wy := float32(fy - float64(y0))
		y1 := y0 + 1
		y0 = clampInt(y0, 0, im.H-1)
		y1 = clampInt(y1, 0, im.H-1)
		for x := 0; x < newW; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(math.Floor(fx))
			wx := float32(fx - float64(x0))
			x1 := x0 + 1
			x0 = clampInt(x0, 0, im.W-1)
			x1 = clampInt(x1, 0, im.W-1)
			top := im.Pix[y0*im.W+x0]*(1-wx) + im.Pix[y0*im.W+x1]*wx
			bot := im.Pix[y1*im.W+x0]*(1-wx) + im.Pix[y1*im.W+x1]*wx
			out.Pix[y*newW+x] = top*(1-wy) + bot*wy
		}
	}
	return out
}

// ScaleFactor returns the resize factor that maps an image of size w×h to a
// target shortest-side scale with the longest side capped at maxLong (the
// Fast R-CNN protocol the paper follows; the paper uses maxLong = 2000).
func ScaleFactor(w, h, scale, maxLong int) float64 {
	short, long := w, h
	if short > long {
		short, long = long, short
	}
	if short == 0 {
		return 1
	}
	f := float64(scale) / float64(short)
	if maxLong > 0 && float64(long)*f > float64(maxLong) {
		f = float64(maxLong) / float64(long)
	}
	return f
}

// ResizeToScale resizes so the shortest side equals scale, capping the
// longest side at maxLong per the Fast R-CNN protocol.
func (im *Image) ResizeToScale(scale, maxLong int) *Image {
	f := ScaleFactor(im.W, im.H, scale, maxLong)
	nw := int(math.Round(float64(im.W) * f))
	nh := int(math.Round(float64(im.H) * f))
	if nw < 1 {
		nw = 1
	}
	if nh < 1 {
		nh = 1
	}
	return im.ResizeBilinear(nw, nh)
}

// AddNoise adds zero-mean Gaussian noise with the given sigma.
func (im *Image) AddNoise(rng *rand.Rand, sigma float64) {
	for i := range im.Pix {
		im.Pix[i] += float32(rng.NormFloat64() * sigma)
	}
}

// Clamp limits every pixel to [0, 1].
func (im *Image) Clamp() {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 1 {
			im.Pix[i] = 1
		}
	}
}

// BoxBlur applies a separable box blur of the given radius; radius 0 is a
// no-op. Used to model motion blur and de-focus.
func (im *Image) BoxBlur(radius int) *Image {
	if radius <= 0 {
		return im.Clone()
	}
	tmp := New(im.W, im.H)
	out := New(im.W, im.H)
	n := float32(2*radius + 1)
	// Horizontal pass with running sum.
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.W : (y+1)*im.W]
		trow := tmp.Pix[y*im.W : (y+1)*im.W]
		var sum float32
		for x := -radius; x <= radius; x++ {
			sum += row[clampInt(x, 0, im.W-1)]
		}
		for x := 0; x < im.W; x++ {
			trow[x] = sum / n
			sum -= row[clampInt(x-radius, 0, im.W-1)]
			sum += row[clampInt(x+radius+1, 0, im.W-1)]
		}
	}
	// Vertical pass.
	for x := 0; x < im.W; x++ {
		var sum float32
		for y := -radius; y <= radius; y++ {
			sum += tmp.Pix[clampInt(y, 0, im.H-1)*im.W+x]
		}
		for y := 0; y < im.H; y++ {
			out.Pix[y*im.W+x] = sum / n
			sum -= tmp.Pix[clampInt(y-radius, 0, im.H-1)*im.W+x]
			sum += tmp.Pix[clampInt(y+radius+1, 0, im.H-1)*im.W+x]
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
