package raster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	im := New(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 12 {
		t.Fatalf("bad image %dx%d len %d", im.W, im.H, len(im.Pix))
	}
	im.Set(2, 1, 0.5)
	if im.At(2, 1) != 0.5 {
		t.Fatal("Set/At round trip failed")
	}
	if im.At(-1, 0) != 0 || im.At(4, 0) != 0 || im.At(0, 3) != 0 {
		t.Fatal("out-of-bounds reads must be 0")
	}
	im.Set(-1, -1, 9) // must not panic
}

func TestShortestLongest(t *testing.T) {
	im := New(600, 1067)
	if im.Shortest() != 600 || im.Longest() != 1067 {
		t.Fatalf("Shortest/Longest = %d/%d", im.Shortest(), im.Longest())
	}
}

func TestResizeBilinearConstantStaysConstant(t *testing.T) {
	im := New(10, 7)
	im.Fill(0.37)
	out := im.ResizeBilinear(23, 5)
	for _, v := range out.Pix {
		if math.Abs(float64(v)-0.37) > 1e-6 {
			t.Fatalf("constant image changed after resize: %v", v)
		}
	}
}

func TestResizeBilinearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := New(8, 6)
	for i := range im.Pix {
		im.Pix[i] = rng.Float32()
	}
	out := im.ResizeBilinear(8, 6)
	for i := range im.Pix {
		if math.Abs(float64(im.Pix[i]-out.Pix[i])) > 1e-6 {
			t.Fatal("identity resize must preserve pixels")
		}
	}
}

// Property: bilinear resize never exceeds the input value range.
func TestResizeBilinearRangePreserving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := New(3+rng.Intn(20), 3+rng.Intn(20))
		lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
		for i := range im.Pix {
			im.Pix[i] = rng.Float32()
			if im.Pix[i] < lo {
				lo = im.Pix[i]
			}
			if im.Pix[i] > hi {
				hi = im.Pix[i]
			}
		}
		out := im.ResizeBilinear(1+rng.Intn(30), 1+rng.Intn(30))
		for _, v := range out.Pix {
			if v < lo-1e-5 || v > hi+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFactorProtocol(t *testing.T) {
	// 720p frame scaled to shortest 600: factor 600/720, long side 1067 < 2000.
	f := ScaleFactor(1280, 720, 600, 2000)
	if math.Abs(f-600.0/720.0) > 1e-12 {
		t.Fatalf("factor = %v", f)
	}
	// Extreme aspect ratio triggers the longest-side cap.
	f = ScaleFactor(6000, 100, 600, 2000)
	if math.Abs(f-2000.0/6000.0) > 1e-12 {
		t.Fatalf("capped factor = %v", f)
	}
	if ScaleFactor(0, 10, 600, 2000) != 1 {
		t.Fatal("degenerate size must return 1")
	}
}

func TestResizeToScale(t *testing.T) {
	im := New(1280, 720)
	out := im.ResizeToScale(600, 2000)
	if out.Shortest() != 600 {
		t.Fatalf("shortest side = %d, want 600", out.Shortest())
	}
	if out.Longest() != 1067 {
		t.Fatalf("longest side = %d, want 1067", out.Longest())
	}
	small := im.ResizeToScale(240, 2000)
	if small.Shortest() != 240 {
		t.Fatalf("shortest side = %d, want 240", small.Shortest())
	}
}

func TestBoxBlurPreservesMeanAndSmooths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := New(32, 32)
	for i := range im.Pix {
		im.Pix[i] = rng.Float32()
	}
	blurred := im.BoxBlur(2)
	if math.Abs(im.Mean()-blurred.Mean()) > 0.02 {
		t.Fatalf("blur shifted mean: %v vs %v", im.Mean(), blurred.Mean())
	}
	varOf := func(p *Image) float64 {
		m := p.Mean()
		var s float64
		for _, v := range p.Pix {
			s += (float64(v) - m) * (float64(v) - m)
		}
		return s / float64(len(p.Pix))
	}
	if varOf(blurred) >= varOf(im) {
		t.Fatal("blur must reduce variance of a noise image")
	}
	same := im.BoxBlur(0)
	for i := range im.Pix {
		if same.Pix[i] != im.Pix[i] {
			t.Fatal("radius 0 must be identity")
		}
	}
}

func TestClampAndNoise(t *testing.T) {
	im := New(4, 4)
	im.Fill(0.5)
	im.AddNoise(rand.New(rand.NewSource(3)), 10)
	im.Clamp()
	for _, v := range im.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("clamp failed: %v", v)
		}
	}
}

func TestDrawEllipseInside(t *testing.T) {
	im := New(40, 40)
	im.DrawEllipse(10, 10, 30, 30, TextureSolid, 0.9, 8)
	if im.At(20, 20) != 0.9 {
		t.Fatal("ellipse centre not drawn")
	}
	if im.At(11, 11) != 0 {
		t.Fatal("ellipse corner should remain background")
	}
	if im.At(5, 20) != 0 {
		t.Fatal("outside box must be untouched")
	}
}

func TestDrawRectTexturesDiffer(t *testing.T) {
	variance := func(tex Texture) float64 {
		im := New(32, 32)
		im.DrawRect(0, 0, 32, 32, tex, 0.9, 4)
		m := im.Mean()
		var s float64
		for _, v := range im.Pix {
			s += (float64(v) - m) * (float64(v) - m)
		}
		return s / float64(len(im.Pix))
	}
	if variance(TextureSolid) != 0 {
		t.Fatal("solid texture must have zero variance")
	}
	if variance(TextureChecker) <= variance(TextureGradient) {
		t.Fatal("checker should be higher-frequency than gradient")
	}
}

func TestTextureComplexityOrdering(t *testing.T) {
	order := []Texture{TextureSolid, TextureGradient, TextureStripes, TextureChecker, TextureDots}
	for i := 1; i < len(order); i++ {
		if order[i].Complexity() <= order[i-1].Complexity() {
			t.Fatalf("complexity not increasing at %v", order[i])
		}
	}
	for _, tex := range order {
		if tex.String() == "unknown" {
			t.Fatalf("missing name for %d", tex)
		}
	}
}

func TestDrawDegenerateBoxesNoPanic(t *testing.T) {
	im := New(10, 10)
	im.DrawEllipse(5, 5, 5, 5, TextureDots, 1, 2)
	im.DrawRect(3, 3, 3, 9, TextureStripes, 1, 2)
}
