package raster

import "math"

// Texture selects the fill pattern used when rendering a synthetic object.
// Texture complexity is one of the signals the paper says the scale
// regressor should react to ("if the object is large or has simple texture
// … down-sample the image").
type Texture int

// Texture kinds, roughly ordered by spatial-frequency content.
const (
	TextureSolid Texture = iota
	TextureGradient
	TextureStripes
	TextureChecker
	TextureDots
)

// String names the texture for logs and experiment dumps.
func (t Texture) String() string {
	switch t {
	case TextureSolid:
		return "solid"
	case TextureGradient:
		return "gradient"
	case TextureStripes:
		return "stripes"
	case TextureChecker:
		return "checker"
	case TextureDots:
		return "dots"
	default:
		return "unknown"
	}
}

// Complexity returns a rough [0,1] measure of the texture's spatial
// frequency content, used by the synthetic dataset to correlate texture
// with optimal scale.
func (t Texture) Complexity() float64 {
	switch t {
	case TextureSolid:
		return 0.05
	case TextureGradient:
		return 0.2
	case TextureStripes:
		return 0.55
	case TextureChecker:
		return 0.75
	case TextureDots:
		return 0.95
	default:
		return 0.5
	}
}

// texValue evaluates a texture at local coordinates (u, v) in [0,1]² with
// base intensity base and pattern period (in pixels at native resolution).
func texValue(t Texture, u, v float64, base float32, periodPx float64, wPx, hPx float64) float32 {
	switch t {
	case TextureSolid:
		return base
	case TextureGradient:
		return base * float32(0.6+0.4*u)
	case TextureStripes:
		phase := u * wPx / math.Max(periodPx, 1)
		if int(math.Floor(phase))%2 == 0 {
			return base
		}
		return base * 0.45
	case TextureChecker:
		pu := int(math.Floor(u * wPx / math.Max(periodPx, 1)))
		pv := int(math.Floor(v * hPx / math.Max(periodPx, 1)))
		if (pu+pv)%2 == 0 {
			return base
		}
		return base * 0.4
	case TextureDots:
		du := math.Mod(u*wPx, math.Max(periodPx, 1)) / math.Max(periodPx, 1)
		dv := math.Mod(v*hPx, math.Max(periodPx, 1)) / math.Max(periodPx, 1)
		r := math.Hypot(du-0.5, dv-0.5)
		if r < 0.3 {
			return base * 0.35
		}
		return base
	default:
		return base
	}
}

// DrawEllipse renders a filled textured ellipse inscribed in the box
// (x0,y0)-(x1,y1) (half-open, native-resolution pixel coordinates).
func (im *Image) DrawEllipse(x0, y0, x1, y1 float64, tex Texture, base float32, periodPx float64) {
	cx, cy := (x0+x1)/2, (y0+y1)/2
	rx, ry := (x1-x0)/2, (y1-y0)/2
	if rx <= 0 || ry <= 0 {
		return
	}
	for y := int(math.Floor(y0)); y <= int(math.Ceil(y1)); y++ {
		for x := int(math.Floor(x0)); x <= int(math.Ceil(x1)); x++ {
			dx := (float64(x) + 0.5 - cx) / rx
			dy := (float64(y) + 0.5 - cy) / ry
			if dx*dx+dy*dy > 1 {
				continue
			}
			u := (float64(x) + 0.5 - x0) / (x1 - x0)
			v := (float64(y) + 0.5 - y0) / (y1 - y0)
			im.Set(x, y, texValue(tex, u, v, base, periodPx, x1-x0, y1-y0))
		}
	}
}

// DrawRect renders a filled textured axis-aligned rectangle.
func (im *Image) DrawRect(x0, y0, x1, y1 float64, tex Texture, base float32, periodPx float64) {
	for y := int(math.Floor(y0)); y < int(math.Ceil(y1)); y++ {
		for x := int(math.Floor(x0)); x < int(math.Ceil(x1)); x++ {
			u := (float64(x) + 0.5 - x0) / math.Max(x1-x0, 1e-9)
			v := (float64(y) + 0.5 - y0) / math.Max(y1-y0, 1e-9)
			if u < 0 || u >= 1 || v < 0 || v >= 1 {
				continue
			}
			im.Set(x, y, texValue(tex, u, v, base, periodPx, x1-x0, y1-y0))
		}
	}
}
