package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"adascale/internal/parallel"
)

// synthSpans builds a deterministic span set: frames per stream, one span
// per pipeline stage per frame, durations derived from the ids.
func synthSpans(streams, frames int) []Span {
	var out []Span
	clock := 0.0
	for s := 0; s < streams; s++ {
		for f := 0; f < frames; f++ {
			for st := Stage(0); st < NumStages; st++ {
				d := float64(s+1) + float64(f)/10 + float64(st)/100
				out = append(out, Span{Stream: s, Frame: f, Stage: st, StartMS: clock, DurMS: d})
				clock += d
			}
		}
	}
	return out
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(0, 0, StageDetect, 0, 1)
	tr.Add([]Span{{Stage: StageDetect}})
	tr.Reset()
	if tr.Spans() != nil || tr.Len() != 0 || tr.Format() != "" || tr.Wall() {
		t.Fatal("nil tracer not a no-op")
	}
	if bd := tr.Breakdown(); bd != [NumStages]float64{} {
		t.Fatal("nil tracer breakdown non-zero")
	}
	if !tr.Now().IsZero() || tr.SinceMS(time.Now()) != 0 {
		t.Fatal("nil tracer reads the wall clock")
	}
	if tr.Dur(3.5, 9.9) != 3.5 {
		t.Fatal("nil tracer Dur must pick the virtual duration")
	}
	tr.ObserveStages(NewMetrics())
}

func TestTracerFormatSortsArrivalOrder(t *testing.T) {
	spans := synthSpans(2, 3)
	fwd, rev := NewTracer(), NewTracer()
	for _, s := range spans {
		fwd.Record(s.Stream, s.Frame, s.Stage, s.StartMS, s.DurMS)
	}
	for i := len(spans) - 1; i >= 0; i-- {
		s := spans[i]
		rev.Record(s.Stream, s.Frame, s.Stage, s.StartMS, s.DurMS)
	}
	if fwd.Format() != rev.Format() {
		t.Fatal("trace text depends on recording order")
	}
	if got := fwd.Len(); got != len(spans) {
		t.Fatalf("Len = %d, want %d", got, len(spans))
	}
}

func TestTracerDeterministicAcrossWorkerCounts(t *testing.T) {
	// Per-worker buffering with bulk Add — the merge path every parallel
	// runner uses — must yield byte-identical traces at any worker count.
	produce := func(workers int) string {
		tr := NewTracer()
		type buf struct{ spans []Span }
		parallel.MapWorkersN(workers, 8, func() *buf { return &buf{} },
			func(b *buf, i int) int {
				local := synthSpans(1, 2)
				for j := range local {
					local[j].Stream = i
				}
				tr.Add(local)
				return i
			})
		return tr.Format()
	}
	ref := produce(1)
	if ref == "" {
		t.Fatal("empty trace")
	}
	for _, w := range []int{2, 4} {
		if got := produce(w); got != ref {
			t.Fatalf("trace diverged at workers=%d", w)
		}
	}
}

func TestTracerOrderingUnderPoolPanicRebuild(t *testing.T) {
	// A persistent pool whose jobs sometimes panic (forcing worker-state
	// rebuilds) must still produce the canonical trace: panicking jobs
	// record nothing, surviving jobs' spans sort identically to a serial
	// run. This pins the per-worker span merge against the pool's
	// panic-recovery path.
	run := func(workers int) (string, int) {
		tr := NewTracer()
		pool := parallel.NewPool(workers, func() int { return 0 })
		done := make(chan struct{}, 16)
		for i := 0; i < 16; i++ {
			i := i
			pool.Submit(func(int) {
				defer func() { done <- struct{}{} }()
				if i%5 == 2 {
					panic(fmt.Sprintf("poisoned frame %d", i))
				}
				local := synthSpans(1, 1)
				for j := range local {
					local[j].Stream = i
				}
				tr.Add(local)
			})
		}
		for i := 0; i < 16; i++ {
			<-done
		}
		pool.Close()
		return tr.Format(), pool.Panics()
	}
	ref, panics := run(1)
	if panics != 3 {
		t.Fatalf("panics = %d, want 3", panics)
	}
	if got, _ := run(4); got != ref {
		t.Fatal("trace diverged between pool workers 1 and 4 under panic-rebuild")
	}
	for i := 0; i < 16; i++ {
		want := fmt.Sprintf("span s%03d/00", i)
		if (i%5 == 2) == strings.Contains(ref, want) {
			t.Fatalf("span presence wrong for job %d:\n%s", i, ref)
		}
	}
}

func TestTracerFormatShape(t *testing.T) {
	tr := NewTracer()
	tr.Record(3, 7, StageSeqNMS, 123.456, 1.5)
	tr.Record(-1, -1, StageEval, 0, 42)
	got := tr.Format()
	want := "span agg     eval         start=0.000 dur=42.000\n" +
		"span s003/07 seqnms       start=123.456 dur=1.500\n"
	if got != want {
		t.Fatalf("format:\n got %q\nwant %q", got, want)
	}
}

func TestTracerBreakdown(t *testing.T) {
	tr := NewTracer()
	tr.Record(0, 0, StageDetect, 0, 60)
	tr.Record(0, 1, StageDetect, 0, 20)
	tr.Record(0, 0, StageRegress, 0, 20)
	bd := tr.Breakdown()
	if bd[StageDetect] != 80 || bd[StageRegress] != 20 || bd[StageDecode] != 0 {
		t.Fatalf("breakdown = %v", bd)
	}
	text := tr.FormatBreakdown()
	for _, want := range []string{"stage detect", "ms=80.000", "share=80.0%", "stage regress", "share=20.0%"} {
		if !strings.Contains(text, want) {
			t.Fatalf("breakdown text missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "decode") {
		t.Fatalf("breakdown renders a stage that never ran:\n%s", text)
	}
	m := NewMetrics()
	tr.ObserveStages(m)
	if m.Count("stage/detect/ms") != 1 || m.Mean("stage/detect/ms") != 80 {
		t.Fatal("ObserveStages did not record stage/detect/ms")
	}
	if m.Count("stage/decode/ms") != 0 {
		t.Fatal("ObserveStages recorded an empty stage")
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Format() != "" {
		t.Fatal("Reset did not clear spans")
	}
}

func TestWallTracerMode(t *testing.T) {
	tr := NewWallTracer()
	if !tr.Wall() {
		t.Fatal("wall tracer not in wall mode")
	}
	ref := tr.Now()
	if ref.IsZero() {
		t.Fatal("wall tracer Now returned zero time")
	}
	if ms := tr.SinceMS(ref); ms < 0 {
		t.Fatalf("SinceMS negative: %v", ms)
	}
	if tr.Dur(5, 2.5) != 2.5 {
		t.Fatal("wall tracer Dur must prefer the measured duration")
	}
	if tr.Dur(5, 0) != 5 {
		t.Fatal("wall tracer Dur must fall back to the modelled duration")
	}
	vt := NewTracer()
	if !vt.Now().IsZero() || vt.SinceMS(ref) != 0 {
		t.Fatal("virtual tracer must not read the wall clock")
	}
	if vt.Dur(5, 2.5) != 5 {
		t.Fatal("virtual tracer Dur must pick the modelled duration")
	}
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != int(NumStages) {
		t.Fatalf("StageNames len = %d, want %d", len(names), NumStages)
	}
	want := []string{"decode", "fault-inject", "rescale", "detect", "regress", "seqnms", "eval"}
	for i, n := range names {
		if n != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, n, want[i])
		}
		if Stage(i).String() != n {
			t.Fatalf("Stage(%d).String() = %q", i, Stage(i).String())
		}
	}
	if got := Stage(99).String(); got != "stage(99)" {
		t.Fatalf("out-of-range stage = %q", got)
	}
}
