package obs

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestStartPprofServes(t *testing.T) {
	addr, err := StartPprof("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ status = %d", resp.StatusCode)
	}
}

// TestPprofMuxIsolated pins the dedicated-mux contract: a handler
// registered on http.DefaultServeMux must not be reachable through the
// pprof server, and the pprof mux itself serves nothing but /debug/pprof —
// so the debug surface can never leak onto (or collide with) an API
// server's routes.
func TestPprofMuxIsolated(t *testing.T) {
	http.DefaultServeMux.HandleFunc("/obs-test-canary", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	addr, err := StartPprof("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/obs-test-canary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("canary on DefaultServeMux reachable via pprof server: status %d", resp.StatusCode)
	}
}

func TestStartPprofBadAddr(t *testing.T) {
	if _, err := StartPprof("256.256.256.256:99999"); err == nil {
		t.Fatal("want error for unusable address")
	}
}

func TestProfileDumps(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// A sliver of work so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1e5; i++ {
		x += float64(i)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}

	heap := filepath.Join(dir, "heap.out")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}

	if _, err := StartCPUProfile(filepath.Join(dir, "no", "such", "dir.out")); err == nil {
		t.Fatal("want error for unwritable cpu profile path")
	}
	if err := WriteHeapProfile(filepath.Join(dir, "no", "such", "dir.out")); err == nil {
		t.Fatal("want error for unwritable heap profile path")
	}
}
