package obs

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestStartPprofServes(t *testing.T) {
	addr, err := StartPprof("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ status = %d", resp.StatusCode)
	}
}

func TestStartPprofBadAddr(t *testing.T) {
	if _, err := StartPprof("256.256.256.256:99999"); err == nil {
		t.Fatal("want error for unusable address")
	}
}

func TestProfileDumps(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// A sliver of work so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1e5; i++ {
		x += float64(i)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}

	heap := filepath.Join(dir, "heap.out")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}

	if _, err := StartCPUProfile(filepath.Join(dir, "no", "such", "dir.out")); err == nil {
		t.Fatal("want error for unwritable cpu profile path")
	}
	if err := WriteHeapProfile(filepath.Join(dir, "no", "such", "dir.out")); err == nil {
		t.Fatal("want error for unwritable heap profile path")
	}
}
