package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	if m.Counter("missing") != 0 || m.Gauge("missing") != 0 {
		t.Fatal("unset counter/gauge not zero")
	}
	m.Inc("frames/served", 3)
	m.Inc("frames/served", 2)
	if got := m.Counter("frames/served"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	m.Set("time/final_ms", 12.5)
	if got := m.Gauge("time/final_ms"); got != 12.5 {
		t.Fatalf("gauge = %v, want 12.5", got)
	}
	m.SetMax("queue/peak_depth", 3)
	m.SetMax("queue/peak_depth", 1)
	m.SetMax("queue/peak_depth", 7)
	if got := m.Gauge("queue/peak_depth"); got != 7 {
		t.Fatalf("SetMax gauge = %v, want 7", got)
	}
	// SetMax must also establish a gauge whose first value is negative.
	m.SetMax("neg", -4)
	if got := m.Gauge("neg"); got != -4 {
		t.Fatalf("SetMax first value = %v, want -4", got)
	}
}

func TestMetricsQuantilesExact(t *testing.T) {
	m := NewMetrics()
	if m.Quantile("empty", 0.5) != 0 || m.Mean("empty") != 0 || m.Count("empty") != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	// 1..100 inserted out of order: nearest-rank quantiles are exact.
	for _, v := range []float64{50, 1, 100, 99} {
		m.Observe("lat", v)
	}
	for v := 2.0; v <= 98; v++ {
		if v != 50 && v != 99 {
			m.Observe("lat", v)
		}
	}
	if n := m.Count("lat"); n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}, {0.01, 1},
	} {
		if got := m.Quantile("lat", tc.q); got != tc.want {
			t.Fatalf("p%v = %v, want %v", tc.q*100, got, tc.want)
		}
	}
	if got := m.Mean("lat"); got != 50.5 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
}

func TestMetricsSnapshotDeterministic(t *testing.T) {
	build := func(order []string) *Metrics {
		m := NewMetrics()
		for _, k := range order {
			m.Inc("c/"+k, 1)
			m.Set("g/"+k, 2)
			m.Observe("h/"+k, 3)
		}
		return m
	}
	a := build([]string{"x", "a", "m"}).Snapshot()
	b := build([]string{"m", "x", "a"}).Snapshot()
	if a != b {
		t.Fatalf("snapshot depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"counter c/a", "gauge   g/m", "hist    h/x", "p99="} {
		if !strings.Contains(a, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, a)
		}
	}
	// Sections appear in fixed counter → gauge → hist order.
	ci, gi, hi := strings.Index(a, "counter"), strings.Index(a, "gauge"), strings.Index(a, "hist")
	if !(ci < gi && gi < hi) {
		t.Fatalf("sections out of order in:\n%s", a)
	}
	if NewMetrics().Snapshot() != "" {
		t.Fatal("empty registry renders a non-empty snapshot")
	}
}

func TestMetricsConcurrentAccess(t *testing.T) {
	// Hammer every method from many goroutines; under -race this pins the
	// registry's locking. The final state must equal the serial sum.
	m := NewMetrics()
	var wg sync.WaitGroup
	const goroutines, perG = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Inc("c", 1)
				m.Set("g", float64(i))
				m.SetMax("peak", float64(g*perG+i))
				m.Observe("h", float64(i))
				_ = m.Counter("c")
				_ = m.Gauge("g")
				_ = m.Quantile("h", 0.5)
				_ = m.Mean("h")
				_ = m.Count("h")
				_ = m.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := m.Counter("c"); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := m.Count("h"); got != goroutines*perG {
		t.Fatalf("hist count = %d, want %d", got, goroutines*perG)
	}
	if got := m.Gauge("peak"); got != goroutines*perG-1 {
		t.Fatalf("peak = %v, want %d", got, goroutines*perG-1)
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Inc("frames/served", 3)
	a.Set("time/final_ms", 100)
	a.SetMax("queue/peak_depth", 2)
	a.Observe("latency/ms", 10)
	b.Inc("frames/served", 4)
	b.Inc("frames/dropped", 1)
	b.Set("time/final_ms", 80)
	b.SetMax("queue/peak_depth", 5)
	b.Observe("latency/ms", 30)
	b.Observe("queue/wait_ms", 7)

	a.Merge(b)
	if got := a.Counter("frames/served"); got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("frames/dropped"); got != 1 {
		t.Fatalf("merged new counter = %d, want 1", got)
	}
	// Gauges merge as high-water marks: the larger side wins regardless of
	// which registry held it.
	if got := a.Gauge("time/final_ms"); got != 100 {
		t.Fatalf("merged gauge = %v, want 100 (max)", got)
	}
	if got := a.Gauge("queue/peak_depth"); got != 5 {
		t.Fatalf("merged peak gauge = %v, want 5 (max)", got)
	}
	if got := a.Count("latency/ms"); got != 2 {
		t.Fatalf("merged hist count = %d, want 2", got)
	}
	if got := a.Quantile("latency/ms", 1.0); got != 30 {
		t.Fatalf("merged hist max = %v, want 30", got)
	}
	if got := a.Count("queue/wait_ms"); got != 1 {
		t.Fatalf("merged new hist count = %d, want 1", got)
	}
	// The source registry must not be mutated by the merge.
	if b.Counter("frames/served") != 4 || b.Count("latency/ms") != 1 {
		t.Fatal("Merge mutated its source registry")
	}
	// Self-merge and nil-merge are no-ops, not double counts.
	a.Merge(a)
	a.Merge(nil)
	if got := a.Counter("frames/served"); got != 7 {
		t.Fatalf("self/nil merge changed counter to %d, want 7", got)
	}
}
