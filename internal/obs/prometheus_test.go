package obs

import (
	"regexp"
	"strings"
	"testing"
)

// TestPrometheusRender pins the exposition format end to end: section
// order (counters, gauges, summaries), HELP/TYPE lines, exact quantiles
// and shortest-round-trip floats.
func TestPrometheusRender(t *testing.T) {
	m := NewMetrics()
	m.Inc("frames/served", 3)
	m.Inc("stream/1/slo_miss", 1)
	m.Set("time/final_ms", 125.5)
	for _, v := range []float64{4, 1, 3, 2} {
		m.Observe("latency/ms", v)
	}

	want := strings.Join([]string{
		"# HELP adascale_frames_served counter frames/served",
		"# TYPE adascale_frames_served counter",
		"adascale_frames_served 3",
		"# HELP adascale_stream_1_slo_miss counter stream/1/slo_miss",
		"# TYPE adascale_stream_1_slo_miss counter",
		"adascale_stream_1_slo_miss 1",
		"# HELP adascale_time_final_ms gauge time/final_ms",
		"# TYPE adascale_time_final_ms gauge",
		"adascale_time_final_ms 125.5",
		"# HELP adascale_latency_ms summary latency/ms",
		"# TYPE adascale_latency_ms summary",
		`adascale_latency_ms{quantile="0.5"} 2`,
		`adascale_latency_ms{quantile="0.95"} 4`,
		`adascale_latency_ms{quantile="0.99"} 4`,
		"adascale_latency_ms_sum 10",
		"adascale_latency_ms_count 4",
		"",
	}, "\n")
	got := m.Prometheus("adascale")
	if got != want {
		t.Fatalf("Prometheus render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if again := m.Prometheus("adascale"); again != got {
		t.Fatal("Prometheus render not deterministic across calls")
	}
}

// promLine validates one sample line of the exposition format: a legal
// metric name, an optional quantile label, and a float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{quantile="[0-9.]+"\})? [^ ]+$`)

// TestPrometheusGrammar checks every rendered line is either a HELP/TYPE
// comment or a well-formed sample, and that each TYPE is one Prometheus
// knows — the property a real scraper depends on for any registry state.
func TestPrometheusGrammar(t *testing.T) {
	m := NewMetrics()
	m.Inc("a/b-c.d", 1) // hostile name: sanitised, not emitted raw
	m.Set("gauge/x", -0.25)
	m.Observe("h/ms", 1.5)
	m.Observe("h/ms", 2.5)

	for _, line := range strings.Split(strings.TrimSuffix(m.Prometheus("ns"), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "summary") {
				t.Fatalf("bad TYPE line %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("bad sample line %q", line)
		}
	}
	if got := PromName("ns", "a/b-c.d"); got != "ns_a_b_c_d" {
		t.Fatalf("PromName sanitisation: got %q", got)
	}
}

// TestPrometheusEmpty keeps the empty registry rendering empty (no stray
// headers), and histograms with no samples suppressed like Snapshot does.
func TestPrometheusEmpty(t *testing.T) {
	m := NewMetrics()
	if got := m.Prometheus("x"); got != "" {
		t.Fatalf("empty registry rendered %q", got)
	}
}
