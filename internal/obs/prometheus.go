package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the Prometheus side of the registry: Snapshot() stays the
// deterministic internal contract (fixed-width text, committed goldens),
// Prometheus() renders the same registry in the text exposition format
// (version 0.0.4) a real scrape expects. Counters map to counters, gauges
// to gauges, and the exact-quantile histograms to summaries (quantile
// labels + _sum + _count) — the registry keeps every observation, so the
// quantiles are exact, not sketched. Rendering is deterministic: metrics
// sort by name, and values format with the shortest round-trip float
// representation, so a scrape of a virtual-time registry is as
// golden-testable as its Snapshot.

// promQuantiles are the summary quantiles exported per histogram, chosen
// to match the percentiles Snapshot() renders.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// PromName sanitises a slash-delimited registry name ("frames/served",
// "stream/3/slo_miss") into a legal Prometheus metric name under the
// given namespace: every character outside [a-zA-Z0-9_] becomes "_", and
// the namespace prefix keeps names starting with a digit legal.
func PromName(namespace, name string) string {
	var b strings.Builder
	b.WriteString(namespace)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way Prometheus clients do: the
// shortest representation that round-trips, deterministic for a given
// bit pattern.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Prometheus renders the whole registry in Prometheus text exposition
// format under the given namespace (e.g. "adascale"). Each metric carries
// its # HELP line (the original registry name, so a dashboard can be
// traced back to the snapshot vocabulary) and # TYPE line. The output is
// a pure function of the registry's state: names sorted, no timestamps.
func (m *Metrics) Prometheus(namespace string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	names := make([]string, 0, len(m.counters))
	for k := range m.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		pn := PromName(namespace, k)
		fmt.Fprintf(&b, "# HELP %s counter %s\n", pn, k)
		fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&b, "%s %d\n", pn, m.counters[k])
	}

	names = names[:0]
	for k := range m.gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		pn := PromName(namespace, k)
		fmt.Fprintf(&b, "# HELP %s gauge %s\n", pn, k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promFloat(m.gauges[k]))
	}

	names = names[:0]
	for k := range m.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		s := m.sortedLocked(k)
		if len(s) == 0 {
			continue
		}
		var sum float64
		for _, v := range s {
			sum += v
		}
		pn := PromName(namespace, k)
		fmt.Fprintf(&b, "# HELP %s summary %s\n", pn, k)
		fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
		for _, q := range promQuantiles {
			fmt.Fprintf(&b, "%s{quantile=%q} %s\n", pn, promFloat(q), promFloat(quantile(s, q)))
		}
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, len(s))
	}
	return b.String()
}
