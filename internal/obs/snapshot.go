package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the parse side of the metrics snapshot: Snapshot() renders
// the registry as deterministic text, ParseSnapshot reads that text back
// into a structured form whose String() re-renders it byte-identically.
// The round-trip does two jobs: downstream tooling (the regression gate,
// dashboards) can consume snapshots without scraping, and the conformance
// suite can assert the snapshot grammar never drifts — a snapshot that
// stops round-tripping is a snapshot some consumer just lost the ability
// to read.

// SnapshotCounter is one parsed counter line.
type SnapshotCounter struct {
	Name  string
	Value int64
}

// SnapshotGauge is one parsed gauge line.
type SnapshotGauge struct {
	Name  string
	Value float64
}

// SnapshotHist is one parsed histogram summary line.
type SnapshotHist struct {
	Name                          string
	N                             int
	Mean, Min, P50, P95, P99, Max float64
}

// ParsedSnapshot is the structured form of a Metrics.Snapshot text.
type ParsedSnapshot struct {
	Counters []SnapshotCounter
	Gauges   []SnapshotGauge
	Hists    []SnapshotHist
}

// Counter returns the named parsed counter's value (0 if absent).
func (p *ParsedSnapshot) Counter(name string) int64 {
	for _, c := range p.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named parsed gauge's value (0 if absent).
func (p *ParsedSnapshot) Gauge(name string) float64 {
	for _, g := range p.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// ParseSnapshot parses the text produced by Metrics.Snapshot. Unknown line
// shapes are errors: the snapshot format is a contract, and a consumer
// that skips lines it cannot read would hide a format drift.
func ParseSnapshot(s string) (*ParsedSnapshot, error) {
	p := &ParsedSnapshot{}
	for ln, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		bad := func(err error) error {
			return fmt.Errorf("obs: snapshot line %d %q: %w", ln+1, line, err)
		}
		switch {
		case fields[0] == "counter" && len(fields) == 3:
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, bad(err)
			}
			p.Counters = append(p.Counters, SnapshotCounter{Name: fields[1], Value: v})
		case fields[0] == "gauge" && len(fields) == 3:
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, bad(err)
			}
			p.Gauges = append(p.Gauges, SnapshotGauge{Name: fields[1], Value: v})
		case fields[0] == "hist" && len(fields) == 9:
			h := SnapshotHist{Name: fields[1]}
			dsts := []struct {
				key string
				n   *int
				f   *float64
			}{
				{key: "n", n: &h.N}, {key: "mean", f: &h.Mean}, {key: "min", f: &h.Min},
				{key: "p50", f: &h.P50}, {key: "p95", f: &h.P95}, {key: "p99", f: &h.P99},
				{key: "max", f: &h.Max},
			}
			for i, d := range dsts {
				k, v, ok := strings.Cut(fields[2+i], "=")
				if !ok || k != d.key {
					return nil, bad(fmt.Errorf("want field %q", d.key))
				}
				if d.n != nil {
					iv, err := strconv.Atoi(v)
					if err != nil {
						return nil, bad(err)
					}
					*d.n = iv
					continue
				}
				fv, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, bad(err)
				}
				*d.f = fv
			}
			p.Hists = append(p.Hists, h)
		default:
			return nil, bad(fmt.Errorf("unrecognised snapshot line"))
		}
	}
	return p, nil
}

// String re-renders the parsed snapshot in the exact Snapshot() format.
// For any s produced by Metrics.Snapshot, ParseSnapshot(s).String() == s —
// the round-trip invariant the conformance suite pins.
func (p *ParsedSnapshot) String() string {
	var b strings.Builder
	for _, c := range p.Counters {
		fmt.Fprintf(&b, "counter %-24s %d\n", c.Name, c.Value)
	}
	for _, g := range p.Gauges {
		fmt.Fprintf(&b, "gauge   %-24s %.3f\n", g.Name, g.Value)
	}
	for _, h := range p.Hists {
		fmt.Fprintf(&b, "hist    %-24s n=%d mean=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
			h.Name, h.N, h.Mean, h.Min, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}
