// Package obs is the shared observability layer: the dependency-free
// metrics registry (counters, gauges, exact-quantile histograms with a
// deterministic text snapshot), the per-frame stage tracer, and the
// profiling hooks (net/http/pprof wiring, CPU/heap dumps) every subsystem
// and command shares.
//
// The registry began life inside internal/serve; it was promoted here so
// the offline runners, the experiments layer and the benchmark harness can
// record into the same structures the serving scheduler uses. The text
// snapshot format is a contract — internal/serve re-exports these types,
// and the committed golden snapshots under internal/regress/testdata
// remain byte-identical across the move.
//
// Everything in this package is deterministic by construction when fed
// deterministic inputs: snapshots render sections in fixed order with
// names sorted and floats fixed-precision, and traces sort spans by
// (stream, frame, stage) before rendering, so the registry's and tracer's
// output is a pure function of what was recorded, never of goroutine
// interleaving.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Metrics is the dependency-free metrics registry: counters, gauges and
// sample histograms keyed by slash-delimited names ("frames/served",
// "stream/3/dropped", "latency/ms"). Recorded in virtual simulation time,
// the registry's final state — and therefore Snapshot() — is
// byte-identical across runs and worker counts, which is what makes
// throughput/SLO experiments reproducible.
//
// Histograms keep every observation (exact quantiles, deterministic
// snapshots); a serving simulation records a few samples per frame, so
// memory stays proportional to the frames served.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string][]float64
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string][]float64{},
	}
}

// Inc adds d to the named counter (creating it at 0).
func (m *Metrics) Inc(name string, d int64) {
	m.mu.Lock()
	m.counters[name] += d
	m.mu.Unlock()
}

// Counter returns the named counter's value (0 if never incremented).
func (m *Metrics) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Set sets the named gauge.
func (m *Metrics) Set(name string, v float64) {
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// SetMax raises the named gauge to v if v is greater (peak tracking).
func (m *Metrics) SetMax(name string, v float64) {
	m.mu.Lock()
	if cur, ok := m.gauges[name]; !ok || v > cur {
		m.gauges[name] = v
	}
	m.mu.Unlock()
}

// Gauge returns the named gauge's value (0 if never set).
func (m *Metrics) Gauge(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Observe appends one sample to the named histogram.
func (m *Metrics) Observe(name string, v float64) {
	m.mu.Lock()
	m.hists[name] = append(m.hists[name], v)
	m.mu.Unlock()
}

// Merge folds another registry into this one: counters add, gauges keep
// the maximum (the gauges this codebase records — final virtual time,
// peak queue depth — are all high-water marks), and histograms append
// src's samples. The cluster simulator uses it to roll per-node,
// per-epoch serving registries up into one cluster-wide registry; called
// in a deterministic (epoch, node) order on deterministic inputs, the
// merged registry — and its Snapshot — stays byte-identical across runs
// and worker counts. src is read under its own lock and not mutated.
func (m *Metrics) Merge(src *Metrics) {
	if src == nil || src == m {
		return
	}
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v
	}
	gauges := make(map[string]float64, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v
	}
	hists := make(map[string][]float64, len(src.hists))
	for k, v := range src.hists {
		hists[k] = append([]float64(nil), v...)
	}
	src.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range counters {
		m.counters[k] += v
	}
	for k, v := range gauges {
		if cur, ok := m.gauges[k]; !ok || v > cur {
			m.gauges[k] = v
		}
	}
	for k, v := range hists {
		m.hists[k] = append(m.hists[k], v...)
	}
}

// Count returns the number of samples in the named histogram.
func (m *Metrics) Count(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.hists[name])
}

// Quantile returns the q-quantile (nearest-rank, q in (0, 1]) of the named
// histogram, or 0 if it has no samples.
func (m *Metrics) Quantile(name string, q float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return quantile(m.sortedLocked(name), q)
}

// Mean returns the mean of the named histogram's samples (0 when empty).
func (m *Metrics) Mean(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.hists[name]
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// sortedLocked returns an ascending copy of the histogram's samples; the
// caller holds m.mu.
func (m *Metrics) sortedLocked(name string) []float64 {
	s := append([]float64(nil), m.hists[name]...)
	sort.Float64s(s)
	return s
}

// quantile is nearest-rank over an ascending sample slice.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(float64(n)*q+0.999999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// Snapshot renders the whole registry as deterministic text: sections in
// fixed order, names sorted within each, fixed float formatting. Two runs
// with the same seed and config produce byte-identical snapshots.
func (m *Metrics) Snapshot() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	names := make([]string, 0, len(m.counters))
	for k := range m.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "counter %-24s %d\n", k, m.counters[k])
	}

	names = names[:0]
	for k := range m.gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "gauge   %-24s %.3f\n", k, m.gauges[k])
	}

	names = names[:0]
	for k := range m.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		s := m.sortedLocked(k)
		if len(s) == 0 {
			continue
		}
		var sum float64
		for _, v := range s {
			sum += v
		}
		fmt.Fprintf(&b, "hist    %-24s n=%d mean=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
			k, len(s), sum/float64(len(s)), s[0],
			quantile(s, 0.50), quantile(s, 0.95), quantile(s, 0.99), s[len(s)-1])
	}
	return b.String()
}
