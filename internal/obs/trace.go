package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage identifies one step of the per-frame pipeline. The order is the
// pipeline order: a frame is decoded from the synthetic generator, faults
// are injected, the image is rescaled to the test scale, the backbone +
// detection head run, the scale regressor predicts the next frame's scale,
// Seq-NMS links detections across frames, and evaluation scores the
// output.
type Stage int

const (
	StageDecode Stage = iota
	StageFaultInject
	StageRescale
	StageDetect
	StageRegress
	StageSeqNMS
	StageEval
	NumStages
)

var stageNames = [NumStages]string{
	"decode", "fault-inject", "rescale", "detect", "regress", "seqnms", "eval",
}

// String returns the stage's canonical short name, used in trace files,
// metric names ("stage/<name>/ms") and the bench report's stage map.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// StageNames returns the canonical stage names in pipeline order.
func StageNames() []string {
	out := make([]string, NumStages)
	for i := range stageNames {
		out[i] = stageNames[i]
	}
	return out
}

// Span is one traced stage execution for one frame. Stream and Frame
// identify the frame (-1/-1 marks a whole-dataset aggregate such as the
// eval pass); StartMS and DurMS are milliseconds on the tracer's clock —
// simclock virtual time in the default deterministic mode, wall time in
// wall mode.
type Span struct {
	Stream  int
	Frame   int
	Stage   Stage
	StartMS float64
	DurMS   float64
}

// Tracer collects spans. The zero-value *Tracer (nil) is a valid no-op:
// every method is nil-safe, so instrumented code never branches on
// "tracing enabled".
//
// In the default virtual-time mode every span duration comes from the
// simclock cost model, so a trace is a pure function of the inputs —
// byte-identical across runs and worker counts — and safe to pin as a
// golden file. In wall-clock mode (NewWallTracer, the -trace-wall flag)
// SinceMS returns real elapsed time for the stages that do real compute;
// the resulting trace is a profiling aid for hardware and is explicitly
// not deterministic.
//
// Recording is mutex-guarded so per-worker goroutines can add spans
// concurrently; determinism comes from Format sorting spans by
// (stream, frame, stage, start) before rendering, which erases arrival
// order. Workers that buffer locally and Add in bulk get the same result.
type Tracer struct {
	mu    sync.Mutex
	wall  bool
	spans []Span
}

// NewTracer creates a deterministic virtual-time tracer.
func NewTracer() *Tracer { return &Tracer{} }

// NewWallTracer creates a wall-clock tracer for profiling on hardware.
// Its traces are NOT deterministic; never pin them as goldens.
func NewWallTracer() *Tracer { return &Tracer{wall: true} }

// Wall reports whether the tracer is in wall-clock mode (false for nil).
func (t *Tracer) Wall() bool { return t != nil && t.wall }

// Record appends one span. No-op on a nil tracer.
func (t *Tracer) Record(stream, frame int, stage Stage, startMS, durMS float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stream: stream, Frame: frame, Stage: stage, StartMS: startMS, DurMS: durMS})
	t.mu.Unlock()
}

// Add appends a batch of spans in one lock acquisition — the per-worker
// merge path: each worker buffers its snippet's spans locally and adds
// them in bulk, so the tracer sees whole snippets, not interleaved
// fragments. No-op on a nil tracer.
func (t *Tracer) Add(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Reset discards all recorded spans. No-op on a nil tracer.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in canonical order:
// (stream, frame, stage, start). Nil tracer returns nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sortSpans(out)
	return out
}

// Len returns the number of recorded spans (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

func sortSpans(s []Span) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Stream != s[j].Stream {
			return s[i].Stream < s[j].Stream
		}
		if s[i].Frame != s[j].Frame {
			return s[i].Frame < s[j].Frame
		}
		if s[i].Stage != s[j].Stage {
			return s[i].Stage < s[j].Stage
		}
		return s[i].StartMS < s[j].StartMS
	})
}

// Format renders the trace as deterministic text, one line per span in
// canonical order:
//
//	span s003/07 seqnms       start=123.456 dur=1.500
//
// Aggregate spans (Stream/Frame == -1) render the ids as "agg". In
// virtual-time mode the output is byte-identical across runs and worker
// counts. Nil tracer renders "".
func (t *Tracer) Format() string {
	var b strings.Builder
	for _, s := range t.Spans() {
		id := fmt.Sprintf("s%03d/%02d", s.Stream, s.Frame)
		if s.Stream < 0 && s.Frame < 0 {
			id = "agg    "
		}
		fmt.Fprintf(&b, "span %s %-12s start=%.3f dur=%.3f\n", id, s.Stage, s.StartMS, s.DurMS)
	}
	return b.String()
}

// Breakdown sums span durations per stage, returning total milliseconds
// indexed by Stage. Nil tracer returns a zero array.
func (t *Tracer) Breakdown() [NumStages]float64 {
	var out [NumStages]float64
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		if s.Stage >= 0 && s.Stage < NumStages {
			out[s.Stage] += s.DurMS
		}
	}
	return out
}

// FormatBreakdown renders the per-stage totals as deterministic text with
// percentage shares, one line per stage in pipeline order (stages that
// never ran are omitted):
//
//	stage detect       ms=512.000 share=87.4%
func (t *Tracer) FormatBreakdown() string {
	bd := t.Breakdown()
	var total float64
	for _, ms := range bd {
		total += ms
	}
	var b strings.Builder
	for st, ms := range bd {
		if ms == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * ms / total
		}
		fmt.Fprintf(&b, "stage %-12s ms=%.3f share=%.1f%%\n", Stage(st), ms, share)
	}
	return b.String()
}

// ObserveStages records each stage's total milliseconds from the tracer
// into the registry as "stage/<name>/ms" histograms (one observation per
// stage per call). Used by commands that want the stage breakdown to show
// up in a metrics snapshot next to everything else.
func (t *Tracer) ObserveStages(m *Metrics) {
	if t == nil || m == nil {
		return
	}
	bd := t.Breakdown()
	for st, ms := range bd {
		if ms == 0 {
			continue
		}
		m.Observe("stage/"+Stage(st).String()+"/ms", ms)
	}
}

// --- wall-clock helpers -------------------------------------------------
//
// Instrumented code uses these so the same call sites serve both modes:
// in virtual mode Now/SinceMS cost nothing and return zero, and Dur picks
// the modelled duration; in wall mode SinceMS measures real elapsed time
// and Dur prefers it.

// Now returns a wall reference for SinceMS, or the zero Time in virtual
// mode (including on a nil tracer) so the deterministic path never reads
// the real clock.
func (t *Tracer) Now() time.Time {
	if t == nil || !t.wall {
		return time.Time{}
	}
	return time.Now()
}

// SinceMS returns wall milliseconds elapsed since ref (a Now() result), or
// 0 in virtual mode.
func (t *Tracer) SinceMS(ref time.Time) float64 {
	if t == nil || !t.wall || ref.IsZero() {
		return 0
	}
	return float64(time.Since(ref)) / float64(time.Millisecond)
}

// Dur selects the span duration for the tracer's mode: the modelled
// virtual duration normally, the measured wall duration in wall mode
// (falling back to the modelled value when no measurement was taken,
// e.g. for stages whose cost is purely modelled).
func (t *Tracer) Dur(virtualMS, wallMS float64) float64 {
	if t != nil && t.wall && wallMS > 0 {
		return wallMS
	}
	return virtualMS
}
