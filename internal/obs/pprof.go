package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// StartPprof binds a net/http/pprof server on addr (e.g. "localhost:6060",
// or "localhost:0" for an ephemeral port) and serves it on a background
// goroutine. It returns the bound address so callers using port 0 can
// print where the profiler actually lives. The server runs for the life of
// the process — these are short-lived CLI tools, so there is no shutdown
// path.
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	go func() {
		// DefaultServeMux carries the /debug/pprof handlers registered by
		// the net/http/pprof import.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}

// StartCPUProfile begins a CPU profile written to path and returns a stop
// function that finishes the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes a heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
