package obs

import (
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// PprofMux returns a dedicated mux carrying only the /debug/pprof
// handlers. The debug surface must never ride on http.DefaultServeMux:
// serving the default mux would expose every handler any imported package
// happens to register there, and — now that the process can also run the
// internal/server API — risks colliding with or leaking application
// routes onto the profiler port. A private mux keeps the two surfaces
// disjoint by construction.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// StartPprof binds a net/http/pprof server on addr (e.g. "localhost:6060",
// or "localhost:0" for an ephemeral port) and serves it on a background
// goroutine, on its own mux (PprofMux) rather than DefaultServeMux. It
// returns the bound address so callers using port 0 can print where the
// profiler actually lives. The server runs for the life of the process —
// these are short-lived CLI tools, so there is no shutdown path.
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	go func() {
		_ = http.Serve(ln, PprofMux())
	}()
	return ln.Addr().String(), nil
}

// StartCPUProfile begins a CPU profile written to path and returns a stop
// function that finishes the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes a heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
