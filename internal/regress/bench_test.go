package regress

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	r := NewReport(map[string]string{"dataset": "vid"})
	r.Add("table1", Sample{NsPerOp: 1000, AllocsPerOp: 50, Iters: 3},
		map[string]float64{"map/adascale": 0.75, "mean_scale/adascale": 420})
	r.Add("robustness", Sample{NsPerOp: 2000, AllocsPerOp: 80, Iters: 1},
		map[string]float64{"map/resilient_worst": 0.60})
	return r
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := sampleReport()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.Schema != SchemaVersion {
		t.Fatalf("round-trip lost data: %+v", got)
	}
	e := got.Entry("table1")
	if e == nil || e.NsPerOp != 1000 || e.Metrics["map/adascale"] != 0.75 {
		t.Fatalf("entry mangled: %+v", e)
	}
	if got.Config["dataset"] != "vid" {
		t.Fatalf("config lost: %+v", got.Config)
	}
}

func TestLoadReportRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not-json.json": "ns/op 123",
		"empty.json":    `{"schema": 1, "entries": []}`,
		"schema.json":   `{"schema": 99, "entries": [{"name": "x"}]}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadReport(path); err == nil {
			t.Errorf("%s: LoadReport accepted invalid report", name)
		}
	}
	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadReport accepted a missing file")
	}
}

func TestCompareIdenticalReportsClean(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	if regs := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("self-comparison found regressions: %v", regs)
	}
}

func TestCompareFlagsTimeRegression(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Entries[0].NsPerOp = 1300 // +30% > default 25% tolerance
	regs := Compare(base, cand, CompareOptions{})
	if len(regs) != 1 || regs[0].Kind != "time" || regs[0].Entry != "table1" {
		t.Fatalf("regressions = %v", regs)
	}
	// Within a wider tolerance the same delta passes.
	if regs := Compare(base, cand, CompareOptions{MaxTimeRegressPct: 50}); len(regs) != 0 {
		t.Fatalf("50%% tolerance still flagged: %v", regs)
	}
	// Faster is never a regression.
	cand.Entries[0].NsPerOp = 100
	if regs := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("speedup flagged: %v", regs)
	}
}

func TestCompareFlagsAccuracyRegression(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Entries[0].Metrics["map/adascale"] = 0.70
	regs := Compare(base, cand, CompareOptions{})
	if len(regs) != 1 || regs[0].Kind != "accuracy" {
		t.Fatalf("regressions = %v", regs)
	}
	// An accuracy *improvement* passes; informational metrics are never
	// gated even when they fall.
	cand = sampleReport()
	cand.Entries[0].Metrics["map/adascale"] = 0.80
	cand.Entries[0].Metrics["mean_scale/adascale"] = 1
	if regs := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareFlagsMissingCoverage(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Entries = cand.Entries[:1] // drop robustness
	delete(cand.Entries[0].Metrics, "map/adascale")
	regs := Compare(base, cand, CompareOptions{})
	kinds := map[string]bool{}
	for _, r := range regs {
		kinds[r.Kind] = true
	}
	if !kinds["missing-entry"] || !kinds["missing-metric"] {
		t.Fatalf("regressions = %v", regs)
	}
	// Extra entries and metrics in the candidate are fine.
	base, cand = sampleReport(), sampleReport()
	cand.Add("new-bench", Sample{NsPerOp: 1}, map[string]float64{"map/new": 0.5})
	cand.Entries[0].Metrics["map/extra"] = 0.9
	if regs := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("grown coverage flagged: %v", regs)
	}
}

func TestCompareFlagsStageRegression(t *testing.T) {
	stages := func(detect int64) map[string]int64 {
		return map[string]int64{"decode": 100, "detect": detect, "regress": 50}
	}
	base, cand := sampleReport(), sampleReport()
	base.SetStages("table1", stages(500), nil)
	// The total stays within tolerance while one stage blows past it:
	// the gate localises the regression to the stage by name.
	cand.Entries[0].NsPerOp = 1100             // +10% < 25% tolerance
	cand.SetStages("table1", stages(900), nil) // +80% on detect
	regs := Compare(base, cand, CompareOptions{})
	if len(regs) != 1 || regs[0].Kind != "stage" || !strings.Contains(regs[0].Detail, "stage detect") {
		t.Fatalf("regressions = %v", regs)
	}
	// IgnoreTime silences stage findings along with the total-time gate.
	if regs := Compare(base, cand, CompareOptions{IgnoreTime: true}); len(regs) != 0 {
		t.Fatalf("IgnoreTime still flagged: %v", regs)
	}
	// Identical stages are clean; a v1 baseline without stages never
	// triggers the stage gate against a v2 candidate.
	cand.SetStages("table1", stages(500), nil)
	if regs := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("identical stages flagged: %v", regs)
	}
	base.Entry("table1").Stages = nil
	cand.SetStages("table1", stages(9999), nil)
	if regs := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("stage gate fired without baseline stages: %v", regs)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Entries[0].AllocsPerOp = 60 // +20% > default 10% tolerance
	regs := Compare(base, cand, CompareOptions{})
	if len(regs) != 1 || regs[0].Kind != "alloc" || regs[0].Entry != "table1" {
		t.Fatalf("regressions = %v", regs)
	}
	// A wider tolerance passes the same delta; fewer allocations never
	// regress; IgnoreTime (cross-machine) silences the gate entirely.
	if regs := Compare(base, cand, CompareOptions{MaxAllocRegressPct: 50}); len(regs) != 0 {
		t.Fatalf("50%% tolerance still flagged: %v", regs)
	}
	if regs := Compare(base, cand, CompareOptions{IgnoreTime: true}); len(regs) != 0 {
		t.Fatalf("IgnoreTime still flagged allocs: %v", regs)
	}
	cand.Entries[0].AllocsPerOp = 5
	if regs := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("alloc reduction flagged: %v", regs)
	}
}

func TestCompareFlagsStageAllocRegression(t *testing.T) {
	stages := func(detect int64) map[string]int64 {
		return map[string]int64{"decode": 10, "detect": detect, "regress": 5}
	}
	base, cand := sampleReport(), sampleReport()
	base.SetStages("table1", nil, stages(30))
	// Total allocs stay inside the 10% tolerance while the detect stage
	// alone doubles: the gate names the stage.
	cand.Entries[0].AllocsPerOp = 52 // +4%
	cand.SetStages("table1", nil, stages(60))
	regs := Compare(base, cand, CompareOptions{})
	if len(regs) != 1 || regs[0].Kind != "alloc" || !strings.Contains(regs[0].Detail, "stage detect") {
		t.Fatalf("regressions = %v", regs)
	}
	// A baseline without per-stage allocs (schema v2 and older) never
	// triggers the stage-alloc gate.
	base.Entry("table1").StageAllocs = nil
	cand.SetStages("table1", nil, stages(9999))
	if regs := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("stage-alloc gate fired without baseline stages: %v", regs)
	}
}

func TestCompareFlagsSchemaDowngrade(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Schema = SchemaVersion - 1
	regs := Compare(base, cand, CompareOptions{})
	if len(regs) != 1 || regs[0].Kind != "schema" {
		t.Fatalf("schema downgrade regressions = %v", regs)
	}
	// Newer candidate against an older baseline is fine.
	base.Schema = SchemaVersion - 1
	cand.Schema = SchemaVersion
	if regs := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("schema upgrade flagged: %v", regs)
	}
}

func TestCompareIgnoreTimeStillGatesAccuracy(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Entries[0].NsPerOp = 99999 // huge time regression, ignored
	if regs := Compare(base, cand, CompareOptions{IgnoreTime: true}); len(regs) != 0 {
		t.Fatalf("IgnoreTime still flagged time: %v", regs)
	}
	cand.Entries[0].Metrics["map/adascale"] = 0.1
	regs := Compare(base, cand, CompareOptions{IgnoreTime: true})
	if len(regs) != 1 || regs[0].Kind != "accuracy" {
		t.Fatalf("regressions = %v", regs)
	}
}

func TestMachineStamp(t *testing.T) {
	m := CurrentMachine()
	if !m.Equal(CurrentMachine()) {
		t.Fatal("machine stamp not equal to itself")
	}
	o := m
	o.NumCPU++
	if m.Equal(o) {
		t.Fatal("different machine stamps compare equal")
	}
	if s := m.String(); !strings.Contains(s, m.GoVersion) {
		t.Fatalf("stamp %q does not name the Go version", s)
	}
}

func TestGuardedMetric(t *testing.T) {
	for key, want := range map[string]bool{
		"map/adascale":        true,
		"map/resilient_worst": true,
		"mean_scale/adascale": false,
		"runtime_ms/x":        false,
		"fps/rfcn":            false,
	} {
		if GuardedMetric(key) != want {
			t.Errorf("GuardedMetric(%q) = %v, want %v", key, !want, want)
		}
	}
}

func TestMeasureCountsWorkAndIterations(t *testing.T) {
	calls := 0
	s := Measure(func() {
		calls++
		_ = make([]byte, 1024)
	}, 0)
	// Warmup + at least one timed iteration.
	if calls < 2 || s.Iters < 1 {
		t.Fatalf("calls=%d sample=%+v", calls, s)
	}
	if s.NsPerOp < 0 || s.AllocsPerOp < 0 {
		t.Fatalf("negative sample: %+v", s)
	}
	// A minimum time forces multiple iterations of a fast op.
	calls = 0
	s = Measure(func() { calls++ }, 2*time.Millisecond)
	if s.Iters < 2 {
		t.Fatalf("minTime ignored: %+v", s)
	}
}

func TestFirstDiff(t *testing.T) {
	got := firstDiff("a\nb\nc\n", "a\nX\nc\n")
	if !strings.Contains(got, "line 2") || !strings.Contains(got, `"b"`) {
		t.Fatalf("firstDiff = %q", got)
	}
	got = firstDiff("a\n", "a\nb\n")
	if !strings.Contains(got, "line count") {
		t.Fatalf("firstDiff on length mismatch = %q", got)
	}
}
