package regress

// The golden-trace conformance suite: every pipeline the repo claims is
// deterministic — Algorithm 1, the resilient degradation ladder, the
// experiment tables/figures, the multi-stream serving layer — is replayed
// at workers 1 and 4 and must reproduce its committed golden trace byte
// for byte. A failure here means either an intended behaviour change
// (rerun with -update and review the diff) or a determinism break (fix the
// code; never update the golden to paper over divergence between worker
// counts — AtWorkers fails before Golden ever sees such a trace).

import (
	"sync"
	"testing"

	"adascale/internal/adascale"
	"adascale/internal/cluster"
	"adascale/internal/experiments"
	"adascale/internal/faults"
	"adascale/internal/serve"
)

var (
	bundleOnce sync.Once
	bundle     *experiments.Bundle
	bundleErr  error
)

// conformanceBundle is the shared reduced-size bundle behind every golden:
// small enough to keep the suite fast, large enough that every method
// disagrees with every other (so the traces actually discriminate).
func conformanceBundle(t *testing.T) *experiments.Bundle {
	t.Helper()
	bundleOnce.Do(func() {
		bundle, bundleErr = experiments.Prepare(experiments.Config{
			Dataset: "vid", TrainSnippets: 12, ValSnippets: 6, Seed: 5,
		})
	})
	if bundleErr != nil {
		t.Fatal(bundleErr)
	}
	return bundle
}

// TestGoldenTraceAdaScale pins Algorithm 1's per-frame scale decisions and
// detection digests over the validation split.
func TestGoldenTraceAdaScale(t *testing.T) {
	b := conformanceBundle(t)
	sys := b.DefaultSystem()
	trace := AtWorkers(t, func() string {
		outs := adascale.RunDataset(b.DS.Val, adascale.AdaScaleRunner(sys.Detector, sys.Regressor))
		return adascale.FormatTrace(outs)
	})
	Golden(t, "trace_adascale", trace)
}

// TestGoldenTraceResilient pins the degradation ladder on a deterministic
// fault-injected stream under a per-frame deadline, including the Health
// accounting on every frame and the aggregate HealthSummary.
func TestGoldenTraceResilient(t *testing.T) {
	b := conformanceBundle(t)
	sys := b.DefaultSystem()
	val, err := faults.Inject(b.DS.Val, faults.Mixed(0.15, 99))
	if err != nil {
		t.Fatal(err)
	}
	cfg := adascale.DefaultResilientConfig()
	cfg.DeadlineMS = 60
	trace := AtWorkers(t, func() string {
		outs := adascale.RunDataset(val, adascale.ResilientRunner(sys.Detector, sys.Regressor, cfg))
		return adascale.FormatTrace(outs) + "summary: " + adascale.Summarize(outs).String() + "\n"
	})
	Golden(t, "trace_resilient", trace)
}

// TestGoldenExperiments pins the rendered report of every paper table and
// figure plus the robustness and serving sweeps — the stable serialization
// of each experiment result.
func TestGoldenExperiments(t *testing.T) {
	b := conformanceBundle(t)
	// Reduced sweeps keep the suite fast; the full-size sweeps run from
	// cmd/adascale-bench and are pinned by the BENCH_*.json trajectory.
	servingCfg := experiments.ServingConfig{
		StreamCounts:    []int{2, 4},
		SLOs:            []float64{0, 40},
		Workers:         4,
		FPS:             8,
		FramesPerStream: 10,
		QueueDepth:      4,
	}
	chaosCfg := experiments.ChaosConfig{
		Rates:           []float64{0, 2},
		Streams:         3,
		FPS:             12,
		FramesPerStream: 12,
		Workers:         2,
		QueueDepth:      4,
		SLOMS:           80,
	}
	clusterCfg := experiments.ClusterSweepConfig{
		Streams:         []int{30, 90},
		Nodes:           []int{2, 4},
		FPS:             10,
		FramesPerStream: 6,
		Workers:         2,
		EventRate:       2,
	}
	cases := []struct {
		name    string
		produce func() (experiments.Printer, error)
	}{
		{"qualitative", func() (experiments.Printer, error) { return b.Qualitative(8), nil }},
		{"table1", func() (experiments.Printer, error) { return b.Table1(), nil }},
		{"table2", func() (experiments.Printer, error) { return b.Table2(), nil }},
		{"table3", func() (experiments.Printer, error) { return b.Table3(), nil }},
		{"fig5", func() (experiments.Printer, error) { return b.Fig5(), nil }},
		{"fig6", func() (experiments.Printer, error) { return b.Fig6(), nil }},
		{"fig7", func() (experiments.Printer, error) { return b.Fig7(), nil }},
		{"fig9", func() (experiments.Printer, error) { return b.Fig9(), nil }},
		{"fig10", func() (experiments.Printer, error) { return b.Fig10(), nil }},
		{"robustness", func() (experiments.Printer, error) { return b.Robustness([]float64{0, 0.2}, 60) }},
		{"serving", func() (experiments.Printer, error) { return b.Serving(servingCfg) }},
		{"chaos", func() (experiments.Printer, error) { return b.Chaos(chaosCfg) }},
		{"cluster", func() (experiments.Printer, error) { return b.Cluster(clusterCfg) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			trace := AtWorkers(t, func() string {
				p, err := c.produce()
				if err != nil {
					t.Fatal(err)
				}
				return experiments.Render(p)
			})
			Golden(t, "exp_"+c.name, trace)
		})
	}
}

// TestGoldenServeSnapshot pins the serving layer's final metrics snapshot
// for a small loaded run, and asserts the snapshot round-trips through
// serve.ParseSnapshot byte-identically (the consumer contract).
func TestGoldenServeSnapshot(t *testing.T) {
	b := conformanceBundle(t)
	sys := b.DefaultSystem()
	trace := AtWorkers(t, func() string {
		load, err := serve.GenLoad(b.DS.Val, serve.LoadConfig{
			Streams: 3, FPS: 10, FramesPerStream: 8, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(sys.Detector, sys.Regressor, serve.Config{
			Workers: 2, QueueDepth: 4, SLOMS: 100,
			Resilient: adascale.DefaultResilientConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := srv.Run(load)
		snap := rep.Metrics.Snapshot()
		parsed, err := serve.ParseSnapshot(snap)
		if err != nil {
			t.Fatalf("snapshot does not parse: %v", err)
		}
		if parsed.String() != snap {
			t.Fatalf("snapshot round-trip not byte-identical\n%s", firstDiff(snap, parsed.String()))
		}
		return snap + "health: " + rep.Summary.String() + "\n"
	})
	Golden(t, "serve_snapshot", trace)
}

// TestGoldenChaosServe pins a full supervised chaos run — seeded worker
// kills/stalls, node blackouts and queue saturation recovered by retry,
// circuit breakers, watchdog and stream migration — byte for byte at
// workers 1 and 4. Every recovery decision lives on the virtual clock, so
// the trace must not depend on the run or the machine's core count, and
// the fault plan must lose no frames (served + dropped = offered exactly).
func TestGoldenChaosServe(t *testing.T) {
	b := conformanceBundle(t)
	sys := b.DefaultSystem()
	trace := AtWorkers(t, func() string {
		load, err := serve.GenLoad(b.DS.Val, serve.LoadConfig{
			Streams: 3, FPS: 15, FramesPerStream: 12, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := faults.GenSystemPlan(faults.ScaledSystemConfig(1.5, 41, 1400, 2))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(sys.Detector, sys.Regressor, serve.Config{
			Workers: 2, QueueDepth: 4, SLOMS: 80,
			Resilient: adascale.DefaultResilientConfig(),
			Chaos:     plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := srv.Run(load)
		if n := rep.Lost(); n != 0 {
			t.Fatalf("chaos run lost %d frames (neither served nor dropped)", n)
		}
		return rep.Metrics.Snapshot() + "health: " + rep.Summary.String() + "\n"
	})
	Golden(t, "serve_chaos", trace)
}

// TestGoldenClusterSnapshot pins a full cluster simulation — streams
// sharded across simulated nodes by the bounded-load ring, a blackout that
// outlives its epoch (cross-node failover carrying session checkpoints), a
// node join, a graceful leave and a forced stream migration — byte for
// byte at workers 1 and 4. The trace is the cluster report (which carries
// the conservation identity: lost=0) plus the merged cluster-wide metrics
// snapshot.
func TestGoldenClusterSnapshot(t *testing.T) {
	b := conformanceBundle(t)
	sys := b.DefaultSystem()
	plan := &cluster.Plan{Events: []cluster.Event{
		{AtMS: 100, Kind: cluster.EvJoin},
		{AtMS: 150, Kind: cluster.EvBlackout, Node: 1, DurationMS: 700},
		{AtMS: 700, Kind: cluster.EvMigrate, Stream: 2},
		{AtMS: 900, Kind: cluster.EvLeave, Node: 0},
	}}
	trace := AtWorkers(t, func() string {
		load, err := serve.GenLoad(b.DS.Val, serve.LoadConfig{
			Streams: 8, FPS: 15, FramesPerStream: 14, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(sys.Detector, sys.Regressor, cluster.Config{
			Nodes: 3, EpochMS: 400, Plan: plan,
			Node: serve.Config{
				Workers: 2, QueueDepth: 4, SLOMS: 80,
				Resilient: adascale.DefaultResilientConfig(),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := cl.Run(load)
		if n := rep.Lost(); n != 0 {
			t.Fatalf("cluster run lost %d frames (neither served nor dropped)", n)
		}
		if rep.Failovers == 0 {
			t.Fatal("golden cluster plan produced no cross-node failover")
		}
		return rep.String() + rep.Metrics.Snapshot()
	})
	Golden(t, "cluster_snapshot", trace)
}
