package regress

// The HTTP serving front end's golden conformance: each committed request
// script under testdata/http/ is replayed through the full handler chain
// (httptest, no sockets) against a synchronous server on a scripted clock,
// at workers 1 and 4, and the transcript — every status, every JSON body,
// the drain accounting line and the canonicalised /metrics scrape — must
// reproduce the committed golden byte for byte. This is the end-to-end
// determinism contract of internal/server: responses are a pure function
// of (script, config, trained system), never of goroutine interleaving or
// wall time.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adascale/internal/adascale"
	"adascale/internal/server"
)

// httpConformanceCases pairs each committed script with the server
// configuration it exercises. Workers stays 0 so the AtWorkers matrix
// actually varies the compute pool size.
var httpConformanceCases = []struct {
	name string
	cfg  server.Config
}{
	{
		name: "basic",
		cfg: server.Config{
			Seed: 11,
			Sync: true,
		},
	},
	{
		name: "limits",
		cfg: server.Config{
			Seed:          11,
			Sync:          true,
			QueueDepth:    2,
			MaxStreams:    2,
			TenantStreams: 1,
			SLOMS:         100,
			Rate:          server.RateLimit{RPS: 1, Burst: 2},
		},
	},
}

// TestGoldenHTTPReplay replays every committed request script and pins the
// full transcript.
func TestGoldenHTTPReplay(t *testing.T) {
	b := conformanceBundle(t)
	sys := b.DefaultSystem()
	for _, tc := range httpConformanceCases {
		t.Run(tc.name, func(t *testing.T) {
			script, err := os.ReadFile(filepath.Join("testdata", "http", tc.name+".script"))
			if err != nil {
				t.Fatal(err)
			}
			steps, err := server.ParseScript(string(script))
			if err != nil {
				t.Fatal(err)
			}
			transcript := AtWorkers(t, func() string {
				cfg := tc.cfg
				cfg.Clock = server.NewScriptClock()
				cfg.Resilient = adascale.DefaultResilientConfig()
				srv, err := server.New(sys.Detector, sys.Regressor, cfg)
				if err != nil {
					t.Fatal(err)
				}
				out, err := srv.Replay(steps, cfg.Clock.(*server.ScriptClock))
				if err != nil {
					t.Fatal(err)
				}
				return out
			})
			if !strings.Contains(transcript, "lost=0") {
				t.Fatalf("transcript drain line does not show zero loss:\n%s", transcript)
			}
			Golden(t, "http_"+tc.name, transcript)
		})
	}
}
