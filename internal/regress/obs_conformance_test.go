package regress

// Observability conformance: tracing is strictly opt-in (every committed
// golden above must stay byte-identical whether or not a tracer is
// attached), and the tracer's own outputs — per-frame stage spans, the
// aggregated breakdown, the serving layer's stage histograms — are
// themselves deterministic goldens, replayed at workers 1 and 4 like
// every other trace.

import (
	"testing"

	"adascale/internal/adascale"
	"adascale/internal/obs"
	"adascale/internal/serve"
)

// TestGoldenStageBreakdown pins the per-frame stage spans and the
// aggregated per-stage breakdown of Algorithm 1 over the conformance
// split — the decode/rescale/backbone/regress decomposition every
// profiling consumer reads.
func TestGoldenStageBreakdown(t *testing.T) {
	b := conformanceBundle(t)
	sys := b.DefaultSystem()
	trace := AtWorkers(t, func() string {
		tr := obs.NewTracer()
		factory := adascale.TracedRunner(adascale.AdaScaleRunner(sys.Detector, sys.Regressor), tr)
		adascale.RunDataset(b.DS.Val, factory)
		return tr.Format() + "\n" + tr.FormatBreakdown()
	})
	Golden(t, "stage_breakdown", trace)
}

// TestGoldenServeStageSnapshot pins the serving snapshot with the
// per-stage, per-stream and per-SLO histograms the scheduler records when
// a tracer is attached, and asserts the extended snapshot still
// round-trips through serve.ParseSnapshot byte-identically.
func TestGoldenServeStageSnapshot(t *testing.T) {
	b := conformanceBundle(t)
	sys := b.DefaultSystem()
	trace := AtWorkers(t, func() string {
		load, err := serve.GenLoad(b.DS.Val, serve.LoadConfig{
			Streams: 3, FPS: 10, FramesPerStream: 8, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.NewTracer()
		srv, err := serve.New(sys.Detector, sys.Regressor, serve.Config{
			Workers: 2, QueueDepth: 4, SLOMS: 30,
			Resilient: adascale.DefaultResilientConfig(),
			Tracer:    tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := srv.Run(load)
		snap := rep.Metrics.Snapshot()
		parsed, err := serve.ParseSnapshot(snap)
		if err != nil {
			t.Fatalf("snapshot does not parse: %v", err)
		}
		if parsed.String() != snap {
			t.Fatalf("snapshot round-trip not byte-identical\n%s", firstDiff(snap, parsed.String()))
		}
		return snap + "\n" + tr.FormatBreakdown()
	})
	Golden(t, "serve_stage_snapshot", trace)
}
